package hybridloop_test

import (
	"math"
	"sync/atomic"
	"testing"

	"hybridloop"
)

var everyStrategy = []hybridloop.Strategy{
	hybridloop.Hybrid, hybridloop.Static, hybridloop.DynamicStealing,
	hybridloop.DynamicSharing, hybridloop.Guided, hybridloop.Auto,
}

// TestReduceSumIdenticalAcrossAllStrategies covers the deterministic-
// reduction guarantee for every strategy including Auto, and with the
// serial cutoff engaged: fixed block boundaries make the result identical
// bit for bit no matter how chunks were scheduled.
func TestReduceSumIdenticalAcrossAllStrategies(t *testing.T) {
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(7))
	defer pool.Close()
	const n = 30000
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Cos(float64(i) * 0.001)
	}
	f := func(i int) float64 { return data[i] }

	want := hybridloop.Sum(pool, 0, n, f, hybridloop.WithStrategy(hybridloop.Hybrid))
	for _, s := range everyStrategy {
		// Repeat Auto invocations so exploration visits several arms; a
		// single pass would only test one configuration.
		reps := 1
		if s == hybridloop.Auto {
			reps = 25
		}
		for r := 0; r < reps; r++ {
			if got := hybridloop.Sum(pool, 0, n, f, hybridloop.WithStrategy(s)); got != want {
				t.Fatalf("Sum under %v rep %d = %v, want %v", s, r, got, want)
			}
			got := hybridloop.Reduce(pool, 0, n, 512, 0.0,
				func(lo, hi int) float64 {
					var acc float64
					for i := lo; i < hi; i++ {
						acc += data[i]
					}
					return acc
				},
				func(a, b float64) float64 { return a + b },
				hybridloop.WithStrategy(s))
			if gotCut := hybridloop.Reduce(pool, 0, n, 512, 0.0,
				func(lo, hi int) float64 {
					var acc float64
					for i := lo; i < hi; i++ {
						acc += data[i]
					}
					return acc
				},
				func(a, b float64) float64 { return a + b },
				hybridloop.WithStrategy(s), hybridloop.WithSerialCutoff(4096)); gotCut != got {
				t.Fatalf("Reduce under %v with serial cutoff = %v, without = %v", s, gotCut, got)
			}
		}
	}
}

func TestAutoLoopCoversEveryIteration(t *testing.T) {
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(3))
	defer pool.Close()
	const n = 8192
	for rep := 0; rep < 30; rep++ {
		counts := make([]int32, n)
		pool.For(0, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		}, hybridloop.WithAuto())
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("rep %d: iteration %d ran %d times", rep, i, c)
			}
		}
	}
	sites := pool.TunerSites()
	if len(sites) == 0 {
		t.Fatal("Auto loop left no tuner profile")
	}
	if sites[0].Decisions != 30 {
		t.Fatalf("30 invocations, %d decisions", sites[0].Decisions)
	}
}

// TestAutoSiteIdentity checks that two distinct Auto call sites keep
// distinct profiles, and that Reduce attributes its inner loop to the
// caller rather than to parallel.go.
func TestAutoSiteIdentity(t *testing.T) {
	pool := hybridloop.NewPool(2, hybridloop.WithSeed(5))
	defer pool.Close()
	body := func(lo, hi int) {}
	pool.For(0, 5000, body, hybridloop.WithAuto()) // site A
	pool.For(0, 5000, body, hybridloop.WithAuto()) // site B
	_ = hybridloop.Sum(pool, 0, 5000, func(i int) float64 { return 1 },
		hybridloop.WithAuto()) // site C, via Reduce
	sites := pool.TunerSites()
	if len(sites) != 3 {
		t.Fatalf("three distinct call sites produced %d profiles: %+v", len(sites), sites)
	}
	for _, s := range sites {
		if s.Site == "" {
			t.Fatalf("profile with empty site name: %+v", s)
		}
		// Reduce's inner p.For lives in parallel.go; attribution must
		// point at this test file instead.
		if containsStr(s.Site, "parallel.go") {
			t.Fatalf("wrapper attribution leak: site %q", s.Site)
		}
		if !containsStr(s.Site, "auto_test.go") {
			t.Fatalf("site %q does not name the caller's file", s.Site)
		}
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// TestTunerSnapshotWarmStart round-trips learned profiles through the
// public snapshot API: a second pool loading the snapshot starts on the
// committed configuration instead of exploring.
func TestTunerSnapshotWarmStart(t *testing.T) {
	const n = 4096
	run := func(p *hybridloop.Pool, reps int) {
		for r := 0; r < reps; r++ {
			p.For(0, n, func(lo, hi int) {}, hybridloop.WithAuto())
		}
	}
	p1 := hybridloop.NewPool(4, hybridloop.WithSeed(11))
	run(p1, 40)
	// A transient re-exploration (cost drift on a noisy machine) can be
	// in flight at any fixed rep count; keep invoking until the site is
	// committed again.
	sites := p1.TunerSites()
	for tries := 0; len(sites) == 1 && sites[0].State != "committed" && tries < 50; tries++ {
		run(p1, 5)
		sites = p1.TunerSites()
	}
	if len(sites) != 1 || sites[0].State != "committed" {
		t.Fatalf("first pool did not converge: %+v", sites)
	}
	snap, err := p1.TunerSnapshot()
	p1.Close()
	if err != nil {
		t.Fatal(err)
	}

	p2 := hybridloop.NewPool(4, hybridloop.WithSeed(12))
	defer p2.Close()
	if err := p2.LoadTunerSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	run(p2, 1)
	s2 := p2.TunerSites()
	if len(s2) != 1 {
		t.Fatalf("warm pool has %d sites", len(s2))
	}
	if s2[0].State != "committed" {
		t.Fatalf("warm-started site is %s, want committed from the snapshot", s2[0].State)
	}
	if s2[0].Committed != sites[0].Committed {
		t.Fatalf("warm start committed to arm %d, snapshot had %d", s2[0].Committed, sites[0].Committed)
	}
}

// TestAutoReproducibleUnderSeed: the arm sequence handed out for an
// identical invocation sequence is identical across runs with the same
// pool seed (observations differ — wall clock — but the exploration
// schedule and the committed choice's identity may not depend on them
// until costs actually differ enough to matter; here we assert the
// deterministic part: the set and order of explored arms).
func TestAutoReproducibleUnderSeed(t *testing.T) {
	played := func(seed uint64) []int64 {
		p := hybridloop.NewPool(4, hybridloop.WithSeed(seed))
		defer p.Close()
		// Exactly enough invocations to cover the exploration schedule of
		// the single site, so every decision is schedule-driven and none
		// depends on measured cost.
		var arms []int64
		for r := 0; r < 10; r++ {
			p.For(0, 100000, func(lo, hi int) {}, hybridloop.WithAuto())
		}
		for _, s := range p.TunerSites() {
			for i, a := range s.Arms {
				for k := int64(0); k < a.Plays; k++ {
					arms = append(arms, int64(i))
				}
			}
		}
		return arms
	}
	a, b := played(99), played(99)
	if len(a) != len(b) {
		t.Fatalf("play multisets differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("play multisets differ at %d: %v vs %v", i, a, b)
		}
	}
}
