// Benchmarks regenerating the paper's tables and figures. Each
// BenchmarkFigN_* runs the corresponding simulated experiment and reports
// the figure's headline metrics via b.ReportMetric, so
//
//	go test -bench=Fig -benchmem
//
// prints one row per (figure, workload, strategy) with the same
// quantities the paper plots: work efficiency Ts/T1, scalability T1/T32,
// affinity percentages, and inferred memory latency. The sizes here are
// reduced relative to cmd/* so the full suite runs in seconds; the
// commands regenerate the full-size figures.
//
// The BenchmarkRuntime_* benchmarks measure the real goroutine runtime
// (scheduling overhead per strategy, claim costs, fork-join costs) with
// testing.B timing.
package hybridloop_test

import (
	"fmt"
	"testing"

	"hybridloop"
	"hybridloop/internal/harness"
	"hybridloop/internal/loop"
	"hybridloop/internal/nas"
	"hybridloop/internal/sim"
	"hybridloop/internal/topology"
	"hybridloop/internal/workload"
)

var benchStrategies = []loop.Strategy{
	loop.Hybrid, loop.DynamicStealing, loop.Static, loop.DynamicSharing, loop.Guided,
}

func microBench(balanced bool, mb int64) sim.Workload {
	return workload.Micro(workload.MicroConfig{
		N:              512,
		OuterLoops:     4,
		TotalBytes:     mb << 20,
		Balanced:       balanced,
		ComputePerLine: 2,
	})
}

// BenchmarkFig1 reproduces Figure 1: for each microbenchmark variant and
// strategy, report work efficiency (Ts/T1) and scalability at 32 cores
// (T1/T32).
func BenchmarkFig1(b *testing.B) {
	m := topology.Paper()
	for _, bal := range []bool{true, false} {
		name := "unbalanced"
		if bal {
			name = "balanced"
		}
		for _, mb := range []int64{12, 64} {
			w := microBench(bal, mb)
			for _, s := range benchStrategies {
				b.Run(fmt.Sprintf("%s/%dMB/%v", name, mb, s), func(b *testing.B) {
					var ts, t1, t32 float64
					for i := 0; i < b.N; i++ {
						ts = sim.RunSequential(m, w)
						t1 = sim.Run(sim.Config{Machine: m, P: 1, Strategy: s, Seed: uint64(i + 1)}, w).Cycles
						t32 = sim.Run(sim.Config{Machine: m, P: 32, Strategy: s, Seed: uint64(i + 1)}, w).Cycles
					}
					b.ReportMetric(ts/t1, "Ts/T1")
					b.ReportMetric(t1/t32, "T1/T32")
				})
			}
		}
	}
}

// BenchmarkFig2 reproduces Figure 2: same-core percentage at 32 cores.
func BenchmarkFig2(b *testing.B) {
	m := topology.Paper()
	for _, bal := range []bool{true, false} {
		name := "unbalanced"
		if bal {
			name = "balanced"
		}
		w := microBench(bal, 48)
		for _, s := range benchStrategies {
			b.Run(fmt.Sprintf("%s/%v", name, s), func(b *testing.B) {
				var aff float64
				for i := 0; i < b.N; i++ {
					aff = sim.Run(sim.Config{Machine: m, P: 32, Strategy: s, Seed: uint64(i + 1)}, w).Affinity
				}
				b.ReportMetric(100*aff, "same-core-%")
			})
		}
	}
}

// BenchmarkFig3 reproduces Figure 3: NAS kernel profile scalability.
func BenchmarkFig3(b *testing.B) {
	m := topology.Paper()
	profiles := []sim.Workload{
		workload.MGProfile(5, 3),
		workload.EPProfile(1024, 1024),
		workload.FTProfile(32, 32, 32, 3),
		workload.ISProfile(1<<21, 3),
		workload.CGProfile(1<<16, 6, 2, 8, 271828),
	}
	for _, w := range profiles {
		for _, s := range benchStrategies {
			b.Run(fmt.Sprintf("%s/%v", w.Name, s), func(b *testing.B) {
				var t1, t32 float64
				for i := 0; i < b.N; i++ {
					t1 = sim.Run(sim.Config{Machine: m, P: 1, Strategy: s, Seed: uint64(i + 1)}, w).Cycles
					t32 = sim.Run(sim.Config{Machine: m, P: 32, Strategy: s, Seed: uint64(i + 1)}, w).Cycles
				}
				b.ReportMetric(t1/t32, "T1/T32")
			})
		}
	}
}

// BenchmarkFig4 reproduces Figure 4: per-level access counts, reported as
// the inferred latency (without L1) and the remote fraction of DRAM-level
// traffic.
func BenchmarkFig4(b *testing.B) {
	m := topology.Paper()
	profiles := []sim.Workload{
		workload.FTProfile(32, 32, 32, 3),
		workload.ISProfile(1<<21, 3),
		workload.CGProfile(1<<16, 6, 2, 8, 271828),
	}
	for _, w := range profiles {
		for _, s := range []loop.Strategy{loop.Hybrid, loop.DynamicStealing, loop.Static} {
			b.Run(fmt.Sprintf("%s/%v", w.Name, s), func(b *testing.B) {
				var r sim.Result
				for i := 0; i < b.N; i++ {
					r = sim.Run(sim.Config{Machine: m, P: 32, Strategy: s, Seed: uint64(i + 1)}, w)
				}
				c := r.Counts
				b.ReportMetric(c.InferredLatency(m.Lat, false), "inferred-latency-cycles")
				remote := float64(c[topology.RemoteL3] + c[topology.RemoteDRAM])
				beyondL2 := remote + float64(c[topology.LocalL3]+c[topology.LocalDRAM])
				if beyondL2 > 0 {
					b.ReportMetric(100*remote/beyondL2, "remote-%")
				}
			})
		}
	}
}

// BenchmarkFig5 reports the latency table (the cost model itself).
func BenchmarkFig5(b *testing.B) {
	m := topology.Paper()
	for l := topology.Level(0); l < topology.NumLevels; l++ {
		b.Run(l.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = m.Lat[l]
			}
			b.ReportMetric(m.Lat[l], "cycles")
		})
	}
}

// --- real-runtime benchmarks -------------------------------------------

// BenchmarkRuntime_LoopOverhead measures the per-loop overhead of each
// strategy on the goroutine runtime with an empty body: the cost of
// partitioning, claiming and joining a loop.
func BenchmarkRuntime_LoopOverhead(b *testing.B) {
	for _, p := range []int{1, 4} {
		pool := hybridloop.NewPool(p, hybridloop.WithSeed(1))
		for _, s := range benchStrategies {
			b.Run(fmt.Sprintf("P%d/%v", p, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pool.For(0, 4096, func(lo, hi int) {}, hybridloop.WithStrategy(hybridloop.Strategy(s)))
				}
			})
		}
		pool.Close()
	}
}

// BenchmarkRuntime_SumReduction measures a real memory-bound reduction
// under each strategy.
func BenchmarkRuntime_SumReduction(b *testing.B) {
	const n = 1 << 20
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(1))
	defer pool.Close()
	partials := make([]float64, 1024)
	for _, s := range benchStrategies {
		b.Run(s.String(), func(b *testing.B) {
			b.SetBytes(n * 8)
			for i := 0; i < b.N; i++ {
				pool.For(0, 1024, func(lo, hi int) {
					for blk := lo; blk < hi; blk++ {
						var sum float64
						for j := blk * (n / 1024); j < (blk+1)*(n/1024); j++ {
							sum += data[j]
						}
						partials[blk] = sum
					}
				}, hybridloop.WithStrategy(hybridloop.Strategy(s)))
			}
		})
	}
}

// BenchmarkRuntime_NASKernels times the real NAS kernels under the hybrid
// strategy.
func BenchmarkRuntime_NASKernels(b *testing.B) {
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(1))
	defer pool.Close()
	b.Run("ep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nas.EP{M: 16, LogBlock: 8}.Parallel(pool)
		}
	})
	b.Run("is", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nas.IS{N: 1 << 17, MaxKey: 1 << 11, Iterations: 2}.Parallel(pool)
		}
	})
	b.Run("cg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nas.CG{N: 4000, NIters: 1, InnerIters: 10}.Parallel(pool)
		}
	})
	b.Run("mg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nas.MG{Log2N: 4, Cycles: 2}.Parallel(pool)
		}
	})
	b.Run("ft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nas.FT{N1: 16, N2: 16, N3: 16, Iterations: 2}.Parallel(pool)
		}
	})
}

// BenchmarkRuntime_AffinityTable is Figure 2 on the *real* runtime: it
// reports the measured same-core fraction across consecutive loops.
func BenchmarkRuntime_AffinityTable(b *testing.B) {
	const n = 1 << 14
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(1))
	defer pool.Close()
	data := make([]float64, n)
	for _, s := range benchStrategies {
		b.Run(s.String(), func(b *testing.B) {
			tr := hybridloop.NewAffinityTracker(n)
			var sum float64
			loops := 0
			for i := 0; i < b.N; i++ {
				pool.For(0, n, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						data[j]++
					}
				}, hybridloop.WithStrategy(hybridloop.Strategy(s)), hybridloop.WithRecorder(tr))
				frac := tr.EndLoop()
				if i > 0 {
					sum += frac
					loops++
				}
			}
			if loops > 0 {
				b.ReportMetric(100*sum/float64(loops), "same-core-%")
			}
		})
	}
}

// BenchmarkHarnessScalability exercises the full harness path (the code
// behind the cmd/ tools) at reduced size.
func BenchmarkHarnessScalability(b *testing.B) {
	m := topology.Paper()
	w := microBench(true, 8)
	for i := 0; i < b.N; i++ {
		res := harness.Scalability{
			Machine: m, Workload: w,
			Ps:    []int{1, 8, 32},
			Seeds: []uint64{1},
		}.Run()
		if res.Ts <= 0 {
			b.Fatal("bad harness result")
		}
	}
}
