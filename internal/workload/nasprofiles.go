package workload

import (
	"math"

	"hybridloop/internal/rng"
	"hybridloop/internal/sim"
)

// This file defines simulator loop profiles for the five NAS kernels of
// the paper's Figure 3. A profile mirrors the kernel's parallel-loop
// structure — how many loops run per outer iteration, their iteration
// counts, per-iteration compute, and which bytes each iteration walks —
// as implemented by the real kernels in internal/nas. The profiles drive
// the simulated machine, so Figure 3's scalability curves and Figure 4's
// hierarchy counts can be produced for a 32-core machine that does not
// physically exist here (see DESIGN.md).

// cyclesPerFlop is the rough compute cost charged per floating-point
// operation in the profiles (superscalar cores retire several flops per
// cycle; memory costs come from the hierarchy model, not from this).
const cyclesPerFlop = 0.5

// EPProfile mirrors nas.EP: a single parallel loop over blocks of pair
// generation — pure compute, perfectly balanced, almost no memory.
func EPProfile(blocks int, pairsPerBlock int) sim.Workload {
	perIter := float64(pairsPerBlock) * 40 * cyclesPerFlop // ~40 flops/pair
	ep := sim.Loop{
		N:     blocks,
		Space: 0,
		Cost: func(i int) sim.IterCost {
			// Each block writes its 128-byte result slot (sums + counts).
			lo := int64(i) * 128
			return sim.IterCost{
				Compute: perIter,
				Touches: []sim.Touch{{Region: 0, Lo: lo, Hi: lo + 128}},
			}
		},
	}
	return sim.Workload{
		Name:    "ep",
		Regions: []int64{int64(blocks) * 128}, // per-block result slots
		Loops:   []sim.Loop{ep},
	}
}

// MGProfile mirrors nas.MG: per V-cycle, a sweep down the grid hierarchy
// (restriction) and back up (interpolate + residual + smooth), each level
// contributing plane-parallel loops whose iteration count equals the
// level's grid size — many *small* loops at the coarse levels, which is
// what makes mg scheduling-overhead sensitive (the paper's omp wins here,
// with hybrid second).
func MGProfile(log2n, cycles int) sim.Workload {
	nFine := 1 << log2n
	// Region l holds level l's grids (u, r, tmp interleaved: 3 arrays).
	var regions []int64
	var sizes []int
	for s := 2; s <= nFine; s *= 2 {
		sizes = append(sizes, s)
		regions = append(regions, 3*int64(s)*int64(s)*int64(s)*8)
	}
	planeLoop := func(level, space int, arrays float64) sim.Loop {
		s := sizes[level]
		planeBytes := int64(s) * int64(s) * 8
		touch := int64(arrays * float64(planeBytes))
		flops := float64(s*s) * 27 * cyclesPerFlop
		return sim.Loop{
			N:     s,
			Space: space,
			Cost: func(i int) sim.IterCost {
				lo := int64(i) * 3 * planeBytes
				return sim.IterCost{
					Compute: flops,
					Touches: []sim.Touch{{Region: level, Lo: lo, Hi: lo + touch}},
				}
			},
		}
	}
	var loops []sim.Loop
	top := len(sizes) - 1
	for c := 0; c < cycles; c++ {
		// Down: restriction at every level (reads fine, writes coarse —
		// charge the fine level's planes).
		for l := top; l > 0; l-- {
			loops = append(loops, planeLoop(l, l, 1))
		}
		// Coarsest smooth.
		loops = append(loops, planeLoop(0, 0, 2))
		// Up: interp + residual + smooth per level (three sweeps).
		for l := 1; l <= top; l++ {
			loops = append(loops, planeLoop(l, l, 1))
			loops = append(loops, planeLoop(l, l, 2))
			loops = append(loops, planeLoop(l, l, 2))
		}
	}
	return sim.Workload{
		Name:    "mg",
		Regions: regions,
		Init:    []sim.Loop{planeLoop(top, top, 3)},
		Loops:   loops,
	}
}

// FTProfile mirrors nas.FT: per evolution step, an evolve sweep and three
// FFT passes. Evolve, pass 1 and pass 2 are plane-parallel over the
// contiguous k-planes (one shared index space — the iterative-affinity
// carrier); pass 3 transforms along the third dimension, touching strided
// 1 KiB runs across the whole array (a different space).
func FTProfile(n1, n2, n3, iters int) sim.Workload {
	elem := int64(16) // complex128
	planeBytes := int64(n1) * int64(n2) * elem
	total := planeBytes * int64(n3)
	fftFlops := func(n, lines int) float64 {
		return float64(lines) * 5 * float64(n) * math.Log2(float64(n)) * cyclesPerFlop
	}
	planeSpace, colSpace := 0, 1
	planeLoop := func(flops float64) sim.Loop {
		return sim.Loop{
			N:     n3,
			Space: planeSpace,
			Cost: func(k int) sim.IterCost {
				lo := int64(k) * planeBytes
				return sim.IterCost{
					Compute: flops,
					Touches: []sim.Touch{{Region: 0, Lo: lo, Hi: lo + planeBytes}},
				}
			},
		}
	}
	evolve := planeLoop(float64(n1*n2) * 10 * cyclesPerFlop)
	pass1 := planeLoop(fftFlops(n1, n2))
	pass2 := planeLoop(fftFlops(n2, n1))
	// Pass 3: iteration j touches n3 strided runs of n1*elem bytes.
	rowBytes := int64(n1) * elem
	stride := planeBytes
	pass3 := sim.Loop{
		N:     n2,
		Space: colSpace,
		Cost: func(j int) sim.IterCost {
			touches := make([]sim.Touch, n3)
			base := int64(j) * rowBytes
			for k := 0; k < n3; k++ {
				lo := base + int64(k)*stride
				touches[k] = sim.Touch{Region: 0, Lo: lo, Hi: lo + rowBytes}
			}
			return sim.IterCost{Compute: fftFlops(n3, n1), Touches: touches}
		},
	}
	var loops []sim.Loop
	loops = append(loops, pass1, pass2, pass3) // initial forward FFT
	for it := 0; it < iters; it++ {
		loops = append(loops, evolve, pass1, pass2, pass3)
	}
	return sim.Workload{
		Name:    "ft",
		Regions: []int64{total},
		Init:    []sim.Loop{planeLoop(0)},
		Loops:   loops,
	}
}

// ISProfile mirrors nas.IS: per ranking round, a histogram sweep and a
// rank-assignment sweep over the key array in fixed blocks — two
// memory-heavy loops per round over the same index space.
func ISProfile(nKeys, rounds int) sim.Workload {
	const blockKeys = 4096
	nb := (nKeys + blockKeys - 1) / blockKeys
	keysBytes := int64(blockKeys) * 4
	histLoop := sim.Loop{
		N:     nb,
		Space: 0,
		Cost: func(b int) sim.IterCost {
			lo := int64(b) * keysBytes
			return sim.IterCost{
				Compute: float64(blockKeys) * 2 * cyclesPerFlop,
				Touches: []sim.Touch{{Region: 0, Lo: lo, Hi: lo + keysBytes}},
			}
		},
	}
	rankLoop := sim.Loop{
		N:     nb,
		Space: 0,
		Cost: func(b int) sim.IterCost {
			lo := int64(b) * keysBytes
			return sim.IterCost{
				Compute: float64(blockKeys) * 3 * cyclesPerFlop,
				Touches: []sim.Touch{
					{Region: 0, Lo: lo, Hi: lo + keysBytes}, // keys
					{Region: 1, Lo: lo, Hi: lo + keysBytes}, // ranks
				},
			}
		},
	}
	var loops []sim.Loop
	for r := 0; r < rounds; r++ {
		loops = append(loops, histLoop, rankLoop)
	}
	return sim.Workload{
		Name:    "is",
		Regions: []int64{int64(nb) * keysBytes, int64(nb) * keysBytes},
		Init:    []sim.Loop{histLoop},
		Loops:   loops,
	}
}

// CGProfile mirrors nas.CG: per inner CG iteration, a sparse
// matrix-vector product over rows with irregular row lengths (the
// imbalance carrier), two reduction loops and three axpy sweeps over the
// dense vectors.
func CGProfile(n, nnzPerRow, outer, inner int, seed uint64) sim.Workload {
	// Deterministic irregular row lengths around 2*nnzPerRow+1.
	g := rng.NewXoshiro256(seed)
	rowNNZ := make([]int, n)
	rowOff := make([]int64, n+1)
	for i := range rowNNZ {
		rowNNZ[i] = 1 + g.Intn(4*nnzPerRow)
		rowOff[i+1] = rowOff[i] + int64(rowNNZ[i])*12 // 8B val + 4B col
	}
	matBytes := rowOff[n]
	vecBytes := int64(n) * 8
	const rowsPerIter = 64
	nRowBlocks := (n + rowsPerIter - 1) / rowsPerIter
	spmv := sim.Loop{
		N:     nRowBlocks,
		Space: 0,
		Cost: func(b int) sim.IterCost {
			lo := b * rowsPerIter
			hi := lo + rowsPerIter
			if hi > n {
				hi = n
			}
			var flops float64
			for i := lo; i < hi; i++ {
				flops += float64(rowNNZ[i]) * 2 * cyclesPerFlop
			}
			// The x gather hits scattered columns; approximate it as a
			// same-sized slice of x at a shifted, wrapped position.
			xb := (2 * b) % nRowBlocks
			xlo := int64(xb) * rowsPerIter * 8
			xhi := xlo + rowsPerIter*8
			if xhi > vecBytes {
				xhi = vecBytes
			}
			return sim.IterCost{
				Compute: flops,
				Touches: []sim.Touch{
					{Region: 0, Lo: rowOff[lo], Hi: rowOff[hi]},       // matrix slice
					{Region: 1, Lo: int64(lo) * 8, Hi: int64(hi) * 8}, // y
					{Region: 2, Lo: xlo, Hi: xhi},                     // x gather (approx.)
				},
			}
		},
	}
	const vecBlock = 4096 * 2
	nVecBlocks := int((vecBytes + vecBlock - 1) / vecBlock)
	vecLoop := func(regions ...int) sim.Loop {
		return sim.Loop{
			N:     nVecBlocks,
			Space: 1,
			Cost: func(b int) sim.IterCost {
				lo := int64(b) * vecBlock
				hi := lo + vecBlock
				if hi > vecBytes {
					hi = vecBytes
				}
				touches := make([]sim.Touch, len(regions))
				for t, reg := range regions {
					touches[t] = sim.Touch{Region: reg, Lo: lo, Hi: hi}
				}
				return sim.IterCost{
					Compute: float64(hi-lo) / 8 * 2 * cyclesPerFlop,
					Touches: touches,
				}
			},
		}
	}
	var loops []sim.Loop
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			loops = append(loops, spmv, vecLoop(1, 2), vecLoop(1), vecLoop(2))
		}
	}
	return sim.Workload{
		Name:    "cg",
		Regions: []int64{matBytes, vecBytes, vecBytes},
		Init:    []sim.Loop{spmv},
		Loops:   loops,
	}
}

// NASProfiles returns the paper's five kernels at simulator scale
// (footprints chosen so the per-socket working sets exercise the L3/DRAM
// boundary on the paper's machine, as the class B/C inputs did).
func NASProfiles() []sim.Workload {
	return []sim.Workload{
		MGProfile(6, 6),                    // 64^3 fine grid, 6 V-cycles
		EPProfile(4096, 4096),              // 2^24 pairs
		FTProfile(64, 64, 64, 6),           // 64^3, 6 evolution steps
		ISProfile(1<<24, 6),                // 16M keys (128 MB with ranks)
		CGProfile(1<<19, 6, 4, 12, 271828), // 524k rows (~80 MB matrix)
	}
}
