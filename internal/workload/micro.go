// Package workload defines the simulated workloads of the paper's
// evaluation: the balanced/unbalanced microbenchmarks of Section V and
// loop profiles mirroring the five NAS kernels (mg, ft, ep, is, cg).
//
// The microbenchmarks reproduce the paper's construction: an outer
// sequential loop around an inner parallel loop, where parallel iteration
// i walks its own disjoint array segment "in strides of 13 modulo the
// size of the array" — a pattern chosen to defeat the hardware prefetcher,
// so every element access costs a full cache-line fetch from wherever the
// data resides. In the block-granular memory model this walk is a full
// touch of the segment's blocks (see internal/memmodel).
package workload

import (
	"fmt"

	"hybridloop/internal/sim"
)

// MicroConfig parameterizes a microbenchmark instance.
type MicroConfig struct {
	// N is the number of parallel iterations per loop.
	N int
	// OuterLoops is the number of sequential repetitions of the parallel
	// loop (the iterative-application structure).
	OuterLoops int
	// TotalBytes is the overall working-set size: the sum of all
	// iterations' segments. The paper reports per-socket footprints of
	// 11.90 MB, 15.87 MB and 79.35 MB on a 4-socket machine.
	TotalBytes int64
	// Balanced selects equal segment sizes; otherwise segment sizes ramp
	// linearly from 25% to 175% of the mean (same total), so the later
	// partitions carry most of the work.
	Balanced bool
	// ComputePerLine is cycles of arithmetic overlapped per line touched
	// (address computation of the strided walk).
	ComputePerLine float64
}

// segSizes returns per-iteration segment sizes summing to TotalBytes.
func (c MicroConfig) segSizes() []int64 {
	sizes := make([]int64, c.N)
	if c.Balanced {
		base := c.TotalBytes / int64(c.N)
		rem := c.TotalBytes - base*int64(c.N)
		for i := range sizes {
			sizes[i] = base
			if int64(i) < rem {
				sizes[i]++
			}
		}
		return sizes
	}
	// Unbalanced: weight w(i) = 0.25 + 1.5 * i/(N-1), normalized to the
	// total. Deterministic, so runs are exactly reproducible.
	weights := make([]float64, c.N)
	var sum float64
	for i := range weights {
		f := 0.0
		if c.N > 1 {
			f = float64(i) / float64(c.N-1)
		}
		weights[i] = 0.25 + 1.5*f
		sum += weights[i]
	}
	var assigned int64
	for i := range sizes {
		sizes[i] = int64(weights[i] / sum * float64(c.TotalBytes))
		assigned += sizes[i]
	}
	// Push rounding leftovers onto the last segment.
	sizes[c.N-1] += c.TotalBytes - assigned
	return sizes
}

// Micro builds the microbenchmark workload. Region 0 is the shared array;
// iteration i of every loop touches the same segment, which is what gives
// iterative applications their inherent locality.
func Micro(c MicroConfig) sim.Workload {
	if c.N <= 0 || c.OuterLoops <= 0 || c.TotalBytes <= 0 {
		panic(fmt.Sprintf("workload: bad MicroConfig %+v", c))
	}
	sizes := c.segSizes()
	offs := make([]int64, c.N+1)
	for i, s := range sizes {
		offs[i+1] = offs[i] + s
	}
	cost := func(i int) sim.IterCost {
		lines := float64(sizes[i]+63) / 64
		return sim.IterCost{
			Compute: c.ComputePerLine * lines,
			Touches: []sim.Touch{{Region: 0, Lo: offs[i], Hi: offs[i+1]}},
		}
	}
	inner := sim.Loop{N: c.N, Space: 0, Cost: cost}
	loops := make([]sim.Loop, c.OuterLoops)
	for i := range loops {
		loops[i] = inner
	}
	name := "unbalanced"
	if c.Balanced {
		name = "balanced"
	}
	return sim.Workload{
		Name:    fmt.Sprintf("%s/%dMB", name, c.TotalBytes>>20),
		Regions: []int64{c.TotalBytes},
		// The initialization loop is run by the simulator with *static*
		// partitioning regardless of the measured strategy, modeling the
		// paper's explicit NUMA-aware data placement ("we have used
		// NUMA-aware memory allocation to distribute the data across
		// sockets to allow the static partitioning to exploit the
		// locality benefit").
		Init:  []sim.Loop{inner},
		Loops: loops,
	}
}

// PaperSizes returns the paper's three per-socket working-set footprints
// in bytes (Figure 2's column headers), scaled by the number of sockets
// that share them at full machine width.
func PaperSizes(sockets int) []int64 {
	perSocket := []float64{11.90, 15.87, 79.35}
	out := make([]int64, len(perSocket))
	for i, mb := range perSocket {
		out[i] = int64(mb * float64(sockets) * (1 << 20))
	}
	return out
}
