package workload

import (
	"testing"
	"testing/quick"

	"hybridloop/internal/sim"
)

func TestMicroSegmentsCoverTotal(t *testing.T) {
	for _, bal := range []bool{true, false} {
		c := MicroConfig{N: 100, OuterLoops: 2, TotalBytes: 1 << 20, Balanced: bal}
		sizes := c.segSizes()
		var sum int64
		for _, s := range sizes {
			if s < 0 {
				t.Fatalf("balanced=%v: negative segment", bal)
			}
			sum += s
		}
		if sum != c.TotalBytes {
			t.Fatalf("balanced=%v: segments sum to %d, want %d", bal, sum, c.TotalBytes)
		}
	}
}

func TestMicroBalancedIsBalanced(t *testing.T) {
	c := MicroConfig{N: 64, OuterLoops: 1, TotalBytes: 1<<20 + 13, Balanced: true}
	sizes := c.segSizes()
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 1 {
		t.Fatalf("balanced sizes spread %d..%d", min, max)
	}
}

func TestMicroUnbalancedRamps(t *testing.T) {
	c := MicroConfig{N: 64, OuterLoops: 1, TotalBytes: 8 << 20, Balanced: false}
	sizes := c.segSizes()
	if sizes[0] >= sizes[len(sizes)-2] {
		t.Fatalf("unbalanced sizes do not ramp: first %d, near-last %d", sizes[0], sizes[len(sizes)-2])
	}
	// ~7x spread between lightest and heaviest (0.25 to 1.75 weight).
	ratio := float64(sizes[len(sizes)-2]) / float64(sizes[0])
	if ratio < 4 || ratio > 10 {
		t.Fatalf("imbalance ratio %.1f outside expected range", ratio)
	}
}

func TestMicroTouchesAreDisjointAndComplete(t *testing.T) {
	w := Micro(MicroConfig{N: 32, OuterLoops: 1, TotalBytes: 1 << 18, Balanced: false, ComputePerLine: 1})
	l := w.Loops[0]
	var pos int64
	for i := 0; i < l.N; i++ {
		ic := l.Cost(i)
		if len(ic.Touches) != 1 {
			t.Fatalf("iteration %d has %d touches", i, len(ic.Touches))
		}
		tc := ic.Touches[0]
		if tc.Lo != pos {
			t.Fatalf("iteration %d starts at %d, want %d (gap/overlap)", i, tc.Lo, pos)
		}
		pos = tc.Hi
		if ic.Compute < 0 {
			t.Fatalf("negative compute at %d", i)
		}
	}
	if pos != w.Regions[0] {
		t.Fatalf("touches cover %d bytes, region is %d", pos, w.Regions[0])
	}
}

func TestMicroPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad config")
		}
	}()
	Micro(MicroConfig{N: 0, OuterLoops: 1, TotalBytes: 1})
}

func TestPaperSizes(t *testing.T) {
	sizes := PaperSizes(4)
	if len(sizes) != 3 {
		t.Fatalf("%d sizes", len(sizes))
	}
	// 11.90 MB * 4 sockets.
	if sizes[0] < 47<<20 || sizes[0] > 48<<20 {
		t.Fatalf("first size %d out of range", sizes[0])
	}
	if !(sizes[0] < sizes[1] && sizes[1] < sizes[2]) {
		t.Fatal("sizes not increasing")
	}
}

func checkProfile(t *testing.T, w sim.Workload) {
	t.Helper()
	if w.Name == "" || len(w.Loops) == 0 {
		t.Fatalf("profile %q malformed", w.Name)
	}
	for li, l := range append(append([]sim.Loop{}, w.Init...), w.Loops...) {
		if l.N <= 0 {
			t.Fatalf("%s loop %d has N=%d", w.Name, li, l.N)
		}
		for i := 0; i < l.N; i++ {
			ic := l.Cost(i)
			if ic.Compute < 0 {
				t.Fatalf("%s loop %d iter %d negative compute", w.Name, li, i)
			}
			for _, tc := range ic.Touches {
				if tc.Region < 0 || tc.Region >= len(w.Regions) {
					t.Fatalf("%s loop %d iter %d touches region %d of %d", w.Name, li, i, tc.Region, len(w.Regions))
				}
				if tc.Lo < 0 || tc.Hi > w.Regions[tc.Region] || tc.Lo > tc.Hi {
					t.Fatalf("%s loop %d iter %d touch [%d,%d) outside region of %d bytes",
						w.Name, li, i, tc.Lo, tc.Hi, w.Regions[tc.Region])
				}
			}
		}
	}
}

func TestNASProfilesWellFormed(t *testing.T) {
	small := []sim.Workload{
		MGProfile(4, 2),
		EPProfile(64, 128),
		FTProfile(8, 8, 8, 2),
		ISProfile(1<<14, 2),
		CGProfile(1<<12, 4, 1, 3, 7),
	}
	names := map[string]bool{}
	for _, w := range small {
		checkProfile(t, w)
		names[w.Name] = true
	}
	for _, want := range []string{"mg", "ep", "ft", "is", "cg"} {
		if !names[want] {
			t.Fatalf("missing profile %q", want)
		}
	}
}

func TestCGProfileIrregularRows(t *testing.T) {
	w := CGProfile(1<<12, 6, 1, 1, 7)
	spmv := w.Loops[0]
	flops := map[float64]bool{}
	for i := 0; i < spmv.N; i++ {
		flops[spmv.Cost(i).Compute] = true
	}
	if len(flops) < spmv.N/4 {
		t.Fatalf("spmv row blocks too uniform: %d distinct costs over %d blocks", len(flops), spmv.N)
	}
}

func TestMicroDeterministic(t *testing.T) {
	prop := func(nRaw uint8, balanced bool) bool {
		n := int(nRaw)%100 + 1
		c := MicroConfig{N: n, OuterLoops: 1, TotalBytes: 1 << 20, Balanced: balanced}
		a, b := c.segSizes(), c.segSizes()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
