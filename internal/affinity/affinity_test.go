package affinity

import (
	"testing"
	"testing/quick"
)

func TestFirstLoopReturnsZero(t *testing.T) {
	tr := NewTracker(10)
	tr.Record(0, 0, 10)
	if frac := tr.EndLoop(); frac != 0 {
		t.Fatalf("first EndLoop = %v, want 0", frac)
	}
}

func TestPerfectAffinity(t *testing.T) {
	tr := NewTracker(100)
	for loop := 0; loop < 3; loop++ {
		tr.Record(1, 0, 50)
		tr.Record(2, 50, 100)
		frac := tr.EndLoop()
		if loop > 0 && frac != 1.0 {
			t.Fatalf("loop %d: frac = %v, want 1.0", loop, frac)
		}
	}
}

func TestZeroAffinity(t *testing.T) {
	tr := NewTracker(100)
	tr.Record(1, 0, 100)
	tr.EndLoop()
	tr.Record(2, 0, 100)
	if frac := tr.EndLoop(); frac != 0 {
		t.Fatalf("frac = %v, want 0", frac)
	}
}

func TestPartialAffinity(t *testing.T) {
	tr := NewTracker(100)
	tr.Record(1, 0, 100)
	tr.EndLoop()
	tr.Record(1, 0, 25)
	tr.Record(2, 25, 100)
	if frac := tr.EndLoop(); frac != 0.25 {
		t.Fatalf("frac = %v, want 0.25", frac)
	}
}

func TestCovered(t *testing.T) {
	tr := NewTracker(10)
	tr.Record(0, 0, 5)
	if tr.Covered() {
		t.Fatal("Covered true with half the space recorded")
	}
	tr.Record(1, 5, 10)
	if !tr.Covered() {
		t.Fatal("Covered false with full space recorded")
	}
	tr.EndLoop()
	if tr.Covered() {
		t.Fatal("Covered true right after EndLoop")
	}
}

func TestAssignmentSnapshot(t *testing.T) {
	tr := NewTracker(4)
	tr.Record(3, 0, 2)
	tr.Record(7, 2, 4)
	tr.EndLoop()
	a := tr.Assignment()
	want := []int32{3, 3, 7, 7}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("Assignment = %v, want %v", a, want)
		}
	}
	// Mutating the copy must not affect the tracker.
	a[0] = 99
	if tr.Assignment()[0] != 3 {
		t.Fatal("Assignment returned a live reference")
	}
}

func TestRecordOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Record did not panic")
		}
	}()
	NewTracker(5).Record(0, 3, 9)
}

func TestMeanSame(t *testing.T) {
	var m MeanSame
	if m.Mean() != 0 || m.Loops() != 0 {
		t.Fatal("zero-value MeanSame not zero")
	}
	m.Add(1.0)
	m.Add(0.5)
	if m.Mean() != 0.75 || m.Loops() != 2 {
		t.Fatalf("Mean = %v Loops = %d", m.Mean(), m.Loops())
	}
}

// Property: the same-core fraction is always in [0, 1], and equals 1 when
// consecutive loops share an arbitrary identical assignment.
func TestQuickSelfAffinityIsOne(t *testing.T) {
	prop := func(workers []uint8) bool {
		if len(workers) == 0 {
			return true
		}
		tr := NewTracker(len(workers))
		for loop := 0; loop < 2; loop++ {
			for i, w := range workers {
				tr.Record(int(w), i, i+1)
			}
			frac := tr.EndLoop()
			if loop == 1 && frac != 1.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
