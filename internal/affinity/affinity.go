// Package affinity measures loop affinity: the fraction of iterations of a
// parallel loop executed by the same worker as in the previous execution
// of a loop over the same index space. This is the metric of the paper's
// Figure 2, where static partitioning scores 100%, the hybrid scheme stays
// near 100% (balanced) / ~67% (unbalanced), and the purely dynamic schemes
// fall to a few percent.
package affinity

import "fmt"

const unassigned = -1

// Tracker implements loop.Recorder. Use one Tracker per iteration space;
// call EndLoop after each parallel loop completes to obtain the same-core
// fraction relative to the previous loop and roll the epoch forward.
//
// Record may be called concurrently for disjoint iteration ranges (which
// is what a correct loop scheduler produces — each iteration is executed
// exactly once per loop).
type Tracker struct {
	prev []int32
	cur  []int32
}

// NewTracker returns a Tracker for iterations [0, n).
func NewTracker(n int) *Tracker {
	t := &Tracker{prev: make([]int32, n), cur: make([]int32, n)}
	for i := range t.prev {
		t.prev[i] = unassigned
		t.cur[i] = unassigned
	}
	return t
}

// N returns the size of the tracked iteration space.
func (t *Tracker) N() int { return len(t.cur) }

// Record notes that worker executed iterations [begin, end) in the current
// loop. Out-of-range indexes panic — they indicate a scheduler bug.
func (t *Tracker) Record(worker, begin, end int) {
	if begin < 0 || end > len(t.cur) {
		panic(fmt.Sprintf("affinity: Record range [%d,%d) outside [0,%d)", begin, end, len(t.cur)))
	}
	w := int32(worker)
	for i := begin; i < end; i++ {
		t.cur[i] = w
	}
}

// EndLoop finishes the current loop: it returns the fraction of iterations
// executed by the same worker as in the previous loop, then makes the
// current assignment the previous one. The first EndLoop (no previous
// loop) returns 0. Iterations not recorded in the current loop never count
// as matching.
func (t *Tracker) EndLoop() float64 {
	same, total := 0, 0
	first := true
	for i := range t.cur {
		if t.prev[i] != unassigned {
			first = false
		}
		if t.cur[i] != unassigned {
			total++
			if t.cur[i] == t.prev[i] {
				same++
			}
		}
	}
	t.prev, t.cur = t.cur, t.prev
	for i := range t.cur {
		t.cur[i] = unassigned
	}
	if first || total == 0 {
		return 0
	}
	return float64(same) / float64(total)
}

// Assignment returns a copy of the most recently completed loop's
// iteration-to-worker map (after EndLoop), with -1 for unexecuted
// iterations.
func (t *Tracker) Assignment() []int32 {
	return append([]int32(nil), t.prev...)
}

// Covered reports whether every iteration was recorded in the current
// (not yet ended) loop — a correctness check used by tests.
func (t *Tracker) Covered() bool {
	for i := range t.cur {
		if t.cur[i] == unassigned {
			return false
		}
	}
	return true
}

// MeanSame runs EndLoop-style comparison bookkeeping over a whole
// experiment: it is a small helper aggregating per-loop fractions.
type MeanSame struct {
	sum   float64
	loops int
}

// Add records one loop's same-core fraction (skip the first loop of a
// sequence, which has no predecessor).
func (m *MeanSame) Add(frac float64) {
	m.sum += frac
	m.loops++
}

// Mean returns the average fraction, or 0 with no samples.
func (m *MeanSame) Mean() float64 {
	if m.loops == 0 {
		return 0
	}
	return m.sum / float64(m.loops)
}

// Loops returns how many loop transitions were recorded.
func (m *MeanSame) Loops() int { return m.loops }
