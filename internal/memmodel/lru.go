package memmodel

// lruCache is a fixed-capacity LRU set of block IDs, implemented with an
// intrusive doubly-linked list over preallocated nodes plus a map for
// O(1) lookup. It models one cache (an L1, an L2, or a socket's L3) at
// block granularity.
type lruCache struct {
	cap   int
	nodes []lruNode
	index map[uint64]int32 // block -> node index
	head  int32            // most recently used; -1 if empty
	tail  int32            // least recently used; -1 if empty
	free  int32            // free-list head; -1 if full
}

type lruNode struct {
	block      uint64
	prev, next int32
}

const nilNode = int32(-1)

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	c := &lruCache{
		cap:   capacity,
		nodes: make([]lruNode, capacity),
		index: make(map[uint64]int32, capacity),
		head:  nilNode,
		tail:  nilNode,
	}
	for i := range c.nodes {
		c.nodes[i].next = int32(i + 1)
	}
	c.nodes[capacity-1].next = nilNode
	c.free = 0
	return c
}

// contains reports whether block is cached, without touching recency.
func (c *lruCache) contains(block uint64) bool {
	_, ok := c.index[block]
	return ok
}

// unlink removes node i from the recency list (it stays in the map).
func (c *lruCache) unlink(i int32) {
	n := &c.nodes[i]
	if n.prev != nilNode {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nilNode {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
}

// pushFront makes node i the most recently used.
func (c *lruCache) pushFront(i int32) {
	n := &c.nodes[i]
	n.prev = nilNode
	n.next = c.head
	if c.head != nilNode {
		c.nodes[c.head].prev = i
	}
	c.head = i
	if c.tail == nilNode {
		c.tail = i
	}
}

// touch inserts block (evicting the LRU entry if full) or refreshes its
// recency. It returns the evicted block and true if an eviction happened.
func (c *lruCache) touch(block uint64) (evicted uint64, didEvict bool) {
	if i, ok := c.index[block]; ok {
		if c.head != i {
			c.unlink(i)
			c.pushFront(i)
		}
		return 0, false
	}
	var i int32
	if c.free != nilNode {
		i = c.free
		c.free = c.nodes[i].next
	} else {
		// Evict the least recently used block.
		i = c.tail
		evicted = c.nodes[i].block
		didEvict = true
		delete(c.index, evicted)
		c.unlink(i)
	}
	c.nodes[i].block = block
	c.index[block] = i
	c.pushFront(i)
	return evicted, didEvict
}

// remove drops block from the cache if present.
func (c *lruCache) remove(block uint64) {
	i, ok := c.index[block]
	if !ok {
		return
	}
	delete(c.index, block)
	c.unlink(i)
	c.nodes[i].next = c.free
	c.free = i
}

// len returns the number of cached blocks.
func (c *lruCache) len() int { return len(c.index) }

// reset empties the cache.
func (c *lruCache) reset() {
	clear(c.index)
	c.head, c.tail = nilNode, nilNode
	for i := range c.nodes {
		c.nodes[i].next = int32(i + 1)
	}
	c.nodes[len(c.nodes)-1].next = nilNode
	c.free = 0
}
