package memmodel

import (
	"testing"
	"testing/quick"

	"hybridloop/internal/topology"
)

// tiny returns a small machine so cache capacity effects are easy to hit:
// 2 sockets x 2 cores, L1 = 2 blocks, L2 = 4 blocks, L3 = 8 blocks.
func tiny() topology.Machine {
	m := topology.Paper()
	m.Sockets = 2
	m.CoresPerSocket = 2
	m.BlockSize = 4096
	m.L1Size = 2 * 4096
	m.L2Size = 4 * 4096
	m.L3Size = 8 * 4096
	return m
}

func TestFirstTouchHomesLocally(t *testing.T) {
	h := New(tiny())
	h.Access(0, 100) // core 0 is on socket 0
	if home := h.Home(100); home != 0 {
		t.Fatalf("home = %d, want 0", home)
	}
	h.Access(2, 200) // core 2 is on socket 1
	if home := h.Home(200); home != 1 {
		t.Fatalf("home = %d, want 1", home)
	}
	if h.Home(999) != -1 {
		t.Fatal("untouched block has a home")
	}
}

func TestAccessLevelProgression(t *testing.T) {
	h := New(tiny())
	lat := h.Machine().TimeLat

	// First access: cold -> local DRAM (first touch homes it here).
	cost := h.Access(0, 7)
	if want := float64(h.Machine().LinesPerBlock()) * lat[topology.LocalDRAM]; cost != want {
		t.Fatalf("cold access cost %v, want %v", cost, want)
	}
	// Second access: L1 hit.
	cost = h.Access(0, 7)
	if want := float64(h.Machine().LinesPerBlock()) * lat[topology.L1]; cost != want {
		t.Fatalf("warm access cost %v, want %v", cost, want)
	}
	c := h.Counts()
	if c[topology.LocalDRAM] == 0 || c[topology.L1] == 0 {
		t.Fatalf("counters not recorded: %+v", c)
	}
}

func TestL1EvictionFallsToL2(t *testing.T) {
	h := New(tiny()) // L1 holds 2 blocks
	h.Access(0, 1)
	h.Access(0, 2)
	h.Access(0, 3) // evicts block 1 from L1; block 1 still in L2
	h.ResetCounts()
	h.Access(0, 1)
	c := h.Counts()
	if c[topology.L2] == 0 {
		t.Fatalf("expected L2 hit after L1 eviction, got %+v", c)
	}
}

func TestRemoteL3Detection(t *testing.T) {
	h := New(tiny())
	h.Access(0, 42) // socket 0 caches it, homes it on socket 0
	h.ResetCounts()
	h.Access(2, 42) // core 2, socket 1: should be serviced by remote L3
	c := h.Counts()
	if c[topology.RemoteL3] == 0 {
		t.Fatalf("expected remote L3 hit, got %+v", c)
	}
}

func TestRemoteDRAM(t *testing.T) {
	h := New(tiny())
	h.Access(0, 42) // homed on socket 0
	h.FlushAll()    // no cache holds it anymore
	h.ResetCounts()
	h.Access(2, 42) // socket 1 misses everywhere; home is socket 0
	c := h.Counts()
	if c[topology.RemoteDRAM] == 0 {
		t.Fatalf("expected remote DRAM access, got %+v", c)
	}
}

func TestLocalDRAMAfterCapacityEviction(t *testing.T) {
	h := New(tiny()) // L3 holds 8 blocks
	// Touch 9 distinct blocks from core 0: block 1 must leave the L3.
	for b := uint64(1); b <= 9; b++ {
		h.Access(0, b)
	}
	h.ResetCounts()
	h.Access(0, 1)
	c := h.Counts()
	if c[topology.LocalDRAM] == 0 {
		t.Fatalf("expected local DRAM after L3 eviction, got %+v", c)
	}
}

func TestSharedL3WithinSocket(t *testing.T) {
	h := New(tiny())
	h.Access(0, 5) // core 0 (socket 0)
	h.ResetCounts()
	h.Access(1, 5) // core 1 shares socket 0's L3
	c := h.Counts()
	if c[topology.LocalL3] == 0 {
		t.Fatalf("expected local L3 hit for socket-mate, got %+v", c)
	}
}

func TestCountsAddAndTotal(t *testing.T) {
	var a, b Counts
	a[topology.L1] = 5
	b[topology.L1] = 3
	b[topology.RemoteDRAM] = 2
	a.Add(b)
	if a[topology.L1] != 8 || a[topology.RemoteDRAM] != 2 || a.Total() != 10 {
		t.Fatalf("Add/Total wrong: %+v", a)
	}
}

func TestInferredLatency(t *testing.T) {
	var c Counts
	c[topology.L1] = 10
	c[topology.LocalDRAM] = 2
	lat := topology.Paper().Lat
	withL1 := c.InferredLatency(lat, true)
	without := c.InferredLatency(lat, false)
	if withL1 <= without {
		t.Fatal("including L1 did not increase inferred latency")
	}
	if want := 2 * lat[topology.LocalDRAM]; without != want {
		t.Fatalf("inferred latency %v, want %v", without, want)
	}
}

func TestAllocatorNonOverlapping(t *testing.T) {
	a := NewAllocator(tiny())
	r1 := a.Alloc(10000) // 3 blocks
	r2 := a.Alloc(4096)  // 1 block
	if r1.Blocks() != 3 || r2.Blocks() != 1 {
		t.Fatalf("blocks: %d, %d", r1.Blocks(), r2.Blocks())
	}
	if r1.Block(2) >= r2.Block(0) {
		t.Fatal("regions overlap")
	}
	if r1.BlockOf(0) != r1.Block(0) || r1.BlockOf(9999) != r1.Block(2) {
		t.Fatal("BlockOf misaligned")
	}
}

func TestBlockOfPanicsOutside(t *testing.T) {
	a := NewAllocator(tiny())
	r := a.Alloc(100)
	defer func() {
		if recover() == nil {
			t.Fatal("BlockOf outside region did not panic")
		}
	}()
	r.BlockOf(100)
}

func TestTouchRangeCountsLines(t *testing.T) {
	m := tiny()
	h := New(m)
	a := NewAllocator(m)
	r := a.Alloc(3 * int64(m.BlockSize))
	h.TouchRange(0, r, 0, 3*int64(m.BlockSize))
	want := int64(3 * m.LinesPerBlock())
	if got := h.Counts().Total(); got != want {
		t.Fatalf("touched %d lines, want %d", got, want)
	}
	// Partial range: half a block = half the lines (rounded up).
	h.ResetCounts()
	h.TouchRange(1, r, 0, int64(m.BlockSize)/2)
	if got := h.Counts().Total(); got != int64(m.LinesPerBlock()/2) {
		t.Fatalf("partial touch %d lines, want %d", got, m.LinesPerBlock()/2)
	}
}

func TestHomeRange(t *testing.T) {
	m := tiny()
	h := New(m)
	a := NewAllocator(m)
	r := a.Alloc(4 * int64(m.BlockSize))
	h.HomeRange(r, 0, 2*int64(m.BlockSize), 1)
	if h.Home(r.Block(0)) != 1 || h.Home(r.Block(1)) != 1 {
		t.Fatal("HomeRange did not set homes")
	}
	if h.Home(r.Block(2)) != -1 {
		t.Fatal("HomeRange set homes beyond range")
	}
	// Explicit homing wins over first touch.
	h.ResetCounts()
	h.Access(0, r.Block(0)) // core 0 = socket 0, but home = socket 1
	c := h.Counts()
	if c[topology.RemoteDRAM] == 0 {
		t.Fatalf("explicitly homed block not serviced remotely: %+v", c)
	}
}

func TestLRUSemantics(t *testing.T) {
	c := newLRU(2)
	if ev, did := c.touch(1); did || ev != 0 {
		t.Fatal("eviction on insert into empty cache")
	}
	c.touch(2)
	c.touch(1) // refresh 1; LRU is now 2
	if ev, did := c.touch(3); !did || ev != 2 {
		t.Fatalf("evicted %d (did=%v), want 2", ev, did)
	}
	if !c.contains(1) || !c.contains(3) || c.contains(2) {
		t.Fatal("wrong contents after eviction")
	}
	c.remove(1)
	if c.contains(1) || c.len() != 1 {
		t.Fatal("remove failed")
	}
	c.touch(7)
	c.touch(8) // uses freed slot then evicts 3
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

// TestQuickLRUModel compares the intrusive LRU against a simple slice
// model under random operation sequences.
func TestQuickLRUModel(t *testing.T) {
	prop := func(ops []uint8) bool {
		const capa = 4
		c := newLRU(capa)
		var model []uint64 // model[0] = MRU
		find := func(b uint64) int {
			for i, v := range model {
				if v == b {
					return i
				}
			}
			return -1
		}
		for _, op := range ops {
			b := uint64(op % 8)
			if op < 200 { // touch
				c.touch(b)
				if i := find(b); i >= 0 {
					model = append(model[:i], model[i+1:]...)
				} else if len(model) == capa {
					model = model[:capa-1]
				}
				model = append([]uint64{b}, model...)
			} else { // remove
				c.remove(b)
				if i := find(b); i >= 0 {
					model = append(model[:i], model[i+1:]...)
				}
			}
			if c.len() != len(model) {
				return false
			}
			for _, v := range model {
				if !c.contains(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
