// Package memmodel simulates the memory hierarchy of a NUMA multicore at
// cache-block granularity: a private L1 and L2 per core, a shared L3 per
// socket, and DRAM homed per socket (first-touch / NUMA-aware placement).
// It produces exactly the counters of the paper's Figure 4 — accesses
// serviced by L1, L2, local L3, local DRAM, remote L3, and remote DRAM —
// and the inferred latency obtained by weighting them with the Figure 5
// latencies.
//
// Modeling choices (see DESIGN.md): blocks of 4 KiB stand in for runs of
// cache lines. The paper's microbenchmarks walk arrays in stride 13
// (> one line) precisely so that every element access misses the line
// prefetcher; a block therefore contributes LinesPerBlock accesses, each
// serviced at the level where the whole block currently resides. Caches
// are LRU and non-inclusive; coherence is not modeled (the workloads under
// study write disjoint regions per iteration).
package memmodel

import (
	"fmt"

	"hybridloop/internal/topology"
)

// Counts records accesses serviced per hierarchy level, in units of cache
// lines — the quantity hardware counters report in the paper's Figure 4.
type Counts [topology.NumLevels]int64

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	for i := range c {
		c[i] += other[i]
	}
}

// Total returns total accesses across all levels.
func (c Counts) Total() int64 {
	var t int64
	for _, v := range c {
		t += v
	}
	return t
}

// InferredLatency returns the latency-weighted access count (cycles), the
// paper's "inferred latency" column, optionally excluding L1 (the paper
// reports it without L1 because OpenMP's redundant computation shows up
// as extra L1 hits).
func (c Counts) InferredLatency(lat topology.Latencies, includeL1 bool) float64 {
	var total float64
	for l := topology.Level(0); l < topology.NumLevels; l++ {
		if l == topology.L1 && !includeL1 {
			continue
		}
		total += float64(c[l]) * lat[l]
	}
	return total
}

// Hierarchy is the simulated cache/DRAM system for one machine.
type Hierarchy struct {
	m      topology.Machine
	l1, l2 []*lruCache // per core
	l3     []*lruCache // per socket
	home   map[uint64]int8
	counts Counts
}

// New returns a Hierarchy for machine m. It panics if m is inconsistent.
func New(m topology.Machine) *Hierarchy {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{
		m:    m,
		l1:   make([]*lruCache, m.P()),
		l2:   make([]*lruCache, m.P()),
		l3:   make([]*lruCache, m.Sockets),
		home: make(map[uint64]int8),
	}
	for c := 0; c < m.P(); c++ {
		h.l1[c] = newLRU(m.L1Size / m.BlockSize)
		h.l2[c] = newLRU(m.L2Size / m.BlockSize)
	}
	for s := 0; s < m.Sockets; s++ {
		h.l3[s] = newLRU(m.L3Size / m.BlockSize)
	}
	return h
}

// Machine returns the machine description this hierarchy simulates.
func (h *Hierarchy) Machine() topology.Machine { return h.m }

// Counts returns the accumulated per-level access counts.
func (h *Hierarchy) Counts() Counts { return h.counts }

// ResetCounts zeroes the counters without disturbing cache contents —
// used to exclude warm-up/initialization from measurements, mirroring the
// paper's counter start "right before the first top-level parallel region".
func (h *Hierarchy) ResetCounts() { h.counts = Counts{} }

// Home returns the socket whose DRAM holds block, or -1 if never touched.
func (h *Hierarchy) Home(block uint64) int {
	if s, ok := h.home[block]; ok {
		return int(s)
	}
	return -1
}

// SetHome explicitly places a block's DRAM page on a socket (NUMA-aware
// allocation). First-touch placement happens automatically on access.
func (h *Hierarchy) SetHome(block uint64, socket int) {
	if socket < 0 || socket >= h.m.Sockets {
		panic(fmt.Sprintf("memmodel: SetHome socket %d out of range", socket))
	}
	h.home[block] = int8(socket)
}

// service determines which level services an access by core to block,
// without modifying any state.
func (h *Hierarchy) service(core int, block uint64) topology.Level {
	if h.l1[core].contains(block) {
		return topology.L1
	}
	if h.l2[core].contains(block) {
		return topology.L2
	}
	sock := h.m.Socket(core)
	if h.l3[sock].contains(block) {
		return topology.LocalL3
	}
	for s := 0; s < h.m.Sockets; s++ {
		if s != sock && h.l3[s].contains(block) {
			return topology.RemoteL3
		}
	}
	if home, ok := h.home[block]; ok && int(home) != sock {
		return topology.RemoteDRAM
	}
	return topology.LocalDRAM
}

// install brings block into core's L1, L2 and its socket's L3. A block
// evicted from L1 falls back to L2 recency implicitly (it is installed in
// both); L3 eviction drops the block from that socket entirely.
func (h *Hierarchy) install(core int, block uint64) {
	h.l1[core].touch(block)
	h.l2[core].touch(block)
	h.l3[h.m.Socket(core)].touch(block)
}

// Access simulates core touching every line of the given block (the
// stride-13 full-block walk of the microbenchmarks): lines accesses are
// recorded at the servicing level and the cost in cycles is returned.
// On first touch the block's DRAM page is homed on the accessing core's
// socket (first-touch NUMA placement).
func (h *Hierarchy) Access(core int, block uint64) float64 {
	return h.AccessLines(core, block, h.m.LinesPerBlock())
}

// AccessLines is Access for a partial block of the given number of lines.
func (h *Hierarchy) AccessLines(core int, block uint64, lines int) float64 {
	if lines <= 0 {
		return 0
	}
	if _, ok := h.home[block]; !ok {
		h.home[block] = int8(h.m.Socket(core))
	}
	lvl := h.service(core, block)
	h.counts[lvl] += int64(lines)
	h.install(core, block)
	// Time is charged at the effective (overlapped) cost; the counters
	// above keep the raw event counts for inferred-latency reporting.
	return float64(lines) * h.m.TimeLat[lvl]
}

// FlushCore empties a core's private caches (used by tests and by
// experiments that model context loss).
func (h *Hierarchy) FlushCore(core int) {
	h.l1[core].reset()
	h.l2[core].reset()
}

// FlushAll empties every cache but keeps DRAM homing and counters.
func (h *Hierarchy) FlushAll() {
	for c := range h.l1 {
		h.l1[c].reset()
		h.l2[c].reset()
	}
	for s := range h.l3 {
		h.l3[s].reset()
	}
}

// Region maps a contiguous byte array into the global block space. Regions
// are allocated sequentially and never overlap.
type Region struct {
	base  uint64 // first block ID
	bytes int64
	bs    int64
}

// Allocator hands out non-overlapping Regions in a Hierarchy's block space.
type Allocator struct {
	m    topology.Machine
	next uint64
}

// NewAllocator returns an Allocator for machine m. Block 0 is reserved so
// a zero Region is recognizably invalid.
func NewAllocator(m topology.Machine) *Allocator {
	return &Allocator{m: m, next: 1}
}

// Alloc reserves a region of the given size in bytes.
func (a *Allocator) Alloc(bytes int64) Region {
	if bytes < 0 {
		panic("memmodel: Alloc with negative size")
	}
	blocks := uint64(a.m.BlocksIn(bytes))
	r := Region{base: a.next, bytes: bytes, bs: int64(a.m.BlockSize)}
	a.next += blocks
	return r
}

// Bytes returns the region's size in bytes.
func (r Region) Bytes() int64 { return r.bytes }

// Blocks returns the number of simulation blocks the region spans.
func (r Region) Blocks() int64 {
	return (r.bytes + r.bs - 1) / r.bs
}

// Block returns the global block ID of the i-th block of the region.
func (r Region) Block(i int64) uint64 { return r.base + uint64(i) }

// BlockOf returns the global block ID containing byte offset off.
func (r Region) BlockOf(off int64) uint64 {
	if off < 0 || off >= r.bytes {
		panic(fmt.Sprintf("memmodel: offset %d outside region of %d bytes", off, r.bytes))
	}
	return r.base + uint64(off/r.bs)
}

// TouchRange simulates core walking every line of the region's byte range
// [lo, hi), block by block, returning the total cost in cycles.
func (h *Hierarchy) TouchRange(core int, r Region, lo, hi int64) float64 {
	if hi > r.bytes {
		hi = r.bytes
	}
	if lo < 0 || lo >= hi {
		return 0
	}
	bs := int64(h.m.BlockSize)
	lineSz := int64(h.m.CacheLine)
	var cost float64
	for b := lo / bs; b*bs < hi; b++ {
		blkLo, blkHi := b*bs, (b+1)*bs
		if blkLo < lo {
			blkLo = lo
		}
		if blkHi > hi {
			blkHi = hi
		}
		lines := int((blkHi - blkLo + lineSz - 1) / lineSz)
		cost += h.AccessLines(core, r.base+uint64(b), lines)
	}
	return cost
}

// HomeRange places the DRAM pages of the region's byte range [lo, hi) on
// the given socket (explicit NUMA-aware allocation).
func (h *Hierarchy) HomeRange(r Region, lo, hi int64, socket int) {
	if hi > r.bytes {
		hi = r.bytes
	}
	bs := int64(h.m.BlockSize)
	for b := lo / bs; b*bs < hi; b++ {
		h.SetHome(r.base+uint64(b), socket)
	}
}
