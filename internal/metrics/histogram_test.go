package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"hybridloop/internal/latency"
)

func TestBucketAssignment(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=1: {0.5, 1}; le=2: {1.5, 2}; le=4: {3, 4}; +Inf: {100}
	want := []int64{2, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-112) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	h := NewHistogram([]float64{1, 2})
	h.Observe(50) // lands in +Inf
	if q := h.Quantile(0.99); q != 2 {
		t.Fatalf("+Inf rank must clamp to largest finite bound, got %v", q)
	}
}

// TestQuantileVsLatencySampler is the satellite's percentile
// cross-check: feed the identical duration stream to internal/latency's
// exact sampler and to a DefBuckets histogram, and require the
// bucket-interpolated P50/P95/P99 to land within one power-of-two bucket
// of the exact statistic. DefBuckets doubles per bucket, so the exact
// value and the estimate must share a bucket: ratio bounded by 2 on
// either side (plus interpolation slack at the bucket edge).
func TestQuantileVsLatencySampler(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dist := range []struct {
		name string
		gen  func() time.Duration
	}{
		{"uniform", func() time.Duration {
			return time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
		}},
		{"exponentialish", func() time.Duration {
			// Heavy-tailed: mostly fast with occasional 100x stragglers,
			// the shape loop latencies actually take under stealing.
			d := time.Duration(rng.Int63n(int64(100 * time.Microsecond)))
			if rng.Intn(50) == 0 {
				d *= 100
			}
			return d
		}},
	} {
		t.Run(dist.name, func(t *testing.T) {
			sampler := latency.NewSampler(0)
			h := NewHistogram(nil)
			for i := 0; i < 20000; i++ {
				d := dist.gen()
				sampler.Observe(d)
				h.Observe(d.Seconds())
			}
			sum := sampler.Summary()
			for _, tc := range []struct {
				q     float64
				exact time.Duration
			}{{0.50, sum.P50}, {0.95, sum.P95}, {0.99, sum.P99}} {
				est := h.Quantile(tc.q)
				exact := tc.exact.Seconds()
				if exact == 0 {
					continue
				}
				if est < exact/2.05 || est > exact*2.05 {
					t.Errorf("P%02.0f: histogram %.6fs vs exact %.6fs — outside one bucket",
						tc.q*100, est, exact)
				}
			}
		})
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	a.Observe(1.5)
	b.Observe(1.5)
	b.Observe(9)
	var m HistSnapshot
	m.Merge(a.Snapshot())
	m.Merge(b.Snapshot())
	if m.Count != 4 {
		t.Fatalf("merged count = %d", m.Count)
	}
	if got := []int64{m.Counts[0], m.Counts[1], m.Counts[2]}; got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("merged counts = %v", got)
	}
	if math.Abs(m.Sum-12.5) > 1e-9 {
		t.Fatalf("merged sum = %v", m.Sum)
	}
	// Merging into zero adopts bounds.
	var z HistSnapshot
	z.Merge(a.Snapshot())
	if len(z.Bounds) != 2 || z.Count != 2 {
		t.Fatalf("zero-merge: %+v", z)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 2, 3)
	if lin[0] != 0 || lin[1] != 2 || lin[2] != 4 {
		t.Fatalf("linear: %v", lin)
	}
	exp := ExponentialBuckets(1, 4, 3)
	if exp[0] != 1 || exp[1] != 4 || exp[2] != 16 {
		t.Fatalf("exponential: %v", exp)
	}
	if len(DefBuckets) != 23 {
		t.Fatalf("DefBuckets has %d bounds", len(DefBuckets))
	}
	if DefBuckets[0] != 1e-6 {
		t.Fatalf("DefBuckets[0] = %v", DefBuckets[0])
	}
}
