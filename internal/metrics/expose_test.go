package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("hl_tasks_total", "tasks executed", L("worker", "0")).Add(10)
	r.Counter("hl_tasks_total", "tasks executed", L("worker", "1")).Add(20)
	r.Gauge("hl_demand", "outstanding demand", nil).Set(3)
	h := r.Histogram("hl_chunk_iterations", "iterations per chunk", L("site", "a"), []float64{1, 8, 64})
	for _, v := range []float64{1, 4, 4, 32, 512} {
		h.Observe(v)
	}
	w := r.Windowed("hl_loop_seconds", "loop wall time", L("site", "a"), []float64{0.001, 0.01, 0.1}, 2)
	w.Observe(0.005)
	w.Rotate()
	w.Observe(0.05)
	r.OnCollect("hl_const", "a const family", KindCounter, func(emit func(Labels, float64)) {
		emit(L("kind", `weird"value`+"\n"), 7)
	})
	return r
}

// TestWriteParseRoundTrip is the acceptance criterion's scrape-parse
// round trip: everything written by WriteText must come back out of
// ParseText with the same values.
func TestWriteParseRoundTrip(t *testing.T) {
	r := buildTestRegistry()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	s, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse back our own exposition: %v\n%s", err, sb.String())
	}

	for key, want := range map[string]float64{
		`hl_tasks_total{worker="0"}`:                     10,
		`hl_tasks_total{worker="1"}`:                     20,
		`hl_demand`:                                      3,
		`hl_chunk_iterations_bucket{le="1",site="a"}`:    1,
		`hl_chunk_iterations_bucket{le="8",site="a"}`:    3,
		`hl_chunk_iterations_bucket{le="64",site="a"}`:   4,
		`hl_chunk_iterations_bucket{le="+Inf",site="a"}`: 5,
		`hl_chunk_iterations_count{site="a"}`:            5,
		`hl_chunk_iterations_sum{site="a"}`:              553,
		`hl_loop_seconds_count{site="a"}`:                2,
		`hl_const{kind="weird\"value\n"}`:                7,
	} {
		got, ok := s.Value(key)
		if !ok {
			t.Errorf("series %s missing; have %v", key, keys(s.Values))
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}

	for fam, typ := range map[string]string{
		"hl_tasks_total":         "counter",
		"hl_demand":              "gauge",
		"hl_chunk_iterations":    "histogram",
		"hl_loop_seconds":        "histogram",
		"hl_loop_seconds_recent": "summary",
		"hl_const":               "counter",
	} {
		if s.Types[fam] != typ {
			t.Errorf("TYPE %s = %q, want %q", fam, s.Types[fam], typ)
		}
	}

	// Windowed recent summary exposes the three quantile ranks.
	for _, q := range []string{"0.5", "0.95", "0.99"} {
		key := `hl_loop_seconds_recent{quantile="` + q + `",site="a"}`
		if _, ok := s.Value(key); !ok {
			t.Errorf("missing recent quantile series %s", key)
		}
	}
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestBucketCumulative checks the _bucket series are cumulative and end
// at the _count value, the invariant Prometheus' histogram_quantile
// relies on.
func TestBucketCumulative(t *testing.T) {
	r := buildTestRegistry()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	s, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	inf, _ := s.Value(`hl_chunk_iterations_bucket{le="+Inf",site="a"}`)
	count, _ := s.Value(`hl_chunk_iterations_count{site="a"}`)
	if inf != count {
		t.Fatalf("le=+Inf bucket %v != count %v", inf, count)
	}
	prev := -1.0
	for _, le := range []string{"1", "8", "64", "+Inf"} {
		v, ok := s.Value(`hl_chunk_iterations_bucket{le="` + le + `",site="a"}`)
		if !ok {
			t.Fatalf("missing le=%s", le)
		}
		if v < prev {
			t.Fatalf("buckets not cumulative at le=%s: %v < %v", le, v, prev)
		}
		prev = v
	}
}

func TestHandler(t *testing.T) {
	srv := httptest.NewServer(Handler(buildTestRegistry()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	s, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Sum("hl_tasks_total"); got != 30 {
		t.Fatalf("tasks total over labels = %v", got)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("nil registry: code %d body %q", rec.Code, rec.Body.String())
	}
}

func TestScrapeHelpers(t *testing.T) {
	s, err := ParseText(strings.NewReader("a{x=\"1\"} 2\na{x=\"2\"} 3\nb 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Sum("a"); got != 5 {
		t.Fatalf("Sum(a) = %v", got)
	}
	if fam := s.Family("a"); len(fam) != 2 {
		t.Fatalf("Family(a) = %v", fam)
	}
	if _, ok := s.Value("b"); !ok {
		t.Fatal("missing unlabeled series b")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"name_only",
		`x{unterminated="v 1`,
		"x notanumber",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted garbage", bad)
		}
	}
}
