package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// quantiles exposed for windowed histograms' recent view.
var summaryQuantiles = []float64{0.5, 0.95, 0.99}

// WriteText writes the registry's current state in the Prometheus text
// exposition format (version 0.0.4): one `# HELP` and `# TYPE` comment
// per family, then one line per series. Families appear in registration
// order, series in creation order, const-sample collectors after the
// direct families — all deterministic, so tests can diff scrapes.
//
// Histogram families emit the conventional `_bucket{le="..."}` series
// (cumulative, ending at le="+Inf"), `_sum` and `_count`. Windowed
// histograms additionally emit a `<name>_recent` summary with
// quantile="0.5|0.95|0.99" series computed over the retained windows
// only — the bounded-history percentile view.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	fams, cols := r.snapshotFamilies()
	for _, f := range fams {
		if err := writeFamily(bw, f); err != nil {
			return err
		}
	}
	for _, c := range cols {
		if err := writeCollector(bw, c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeHeader(w *bufio.Writer, name, help string, kind Kind) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
}

func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(h)
}

func writeFamily(w *bufio.Writer, f *family) error {
	series := f.snapshotSeries()
	if len(series) == 0 {
		return nil
	}
	writeHeader(w, f.name, f.help, f.kind)
	var recents []*series2snap
	for _, s := range series {
		switch {
		case s.ctr != nil:
			writeSample(w, f.name, s.labels, "", float64(s.ctr.Value()))
		case s.gauge != nil:
			writeSample(w, f.name, s.labels, "", float64(s.gauge.Value()))
		case s.hist != nil:
			writeHist(w, f.name, s.labels, s.hist.Snapshot())
		case s.win != nil:
			writeHist(w, f.name, s.labels, s.win.Cumulative())
			recents = append(recents, &series2snap{labels: s.labels, snap: s.win.Recent()})
		}
	}
	// Recent-window percentile summaries for windowed series, as a
	// sibling family so the histogram family above stays well-formed.
	if len(recents) > 0 {
		rn := f.name + "_recent"
		writeHeader(w, rn, "recent-window quantiles of "+f.name, KindSummary)
		for _, rs := range recents {
			for _, q := range summaryQuantiles {
				ls := append(append(Labels(nil), rs.labels...), Label{Name: "quantile", Value: formatFloat(q)})
				writeSample(w, rn, ls, "", rs.snap.Quantile(q))
			}
			writeSample(w, rn, rs.labels, "_sum", rs.snap.Sum)
			writeSample(w, rn, rs.labels, "_count", float64(rs.snap.Count))
		}
	}
	return nil
}

type series2snap struct {
	labels Labels
	snap   HistSnapshot
}

func writeCollector(w *bufio.Writer, c *collector) error {
	var samples []Sample
	c.fn(func(labels Labels, value float64) {
		samples = append(samples, Sample{Labels: append(Labels(nil), labels...), Value: value})
	})
	writeHeader(w, c.name, c.help, c.kind)
	for _, s := range sortedSamples(samples) {
		writeSample(w, c.name, s.Labels, "", s.Value)
	}
	return nil
}

func writeHist(w *bufio.Writer, name string, labels Labels, s HistSnapshot) {
	var cum int64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		ls := append(append(Labels(nil), labels...), Label{Name: "le", Value: formatFloat(b)})
		writeSample(w, name, ls, "_bucket", float64(cum))
	}
	if len(s.Counts) > 0 {
		cum += s.Counts[len(s.Counts)-1]
	}
	ls := append(append(Labels(nil), labels...), Label{Name: "le", Value: "+Inf"})
	writeSample(w, name, ls, "_bucket", float64(cum))
	writeSample(w, name, labels, "_sum", s.Sum)
	writeSample(w, name, labels, "_count", float64(s.Count))
}

func writeSample(w *bufio.Writer, name string, labels Labels, suffix string, v float64) {
	w.WriteString(name)
	w.WriteString(suffix)
	if k := labels.key(); k != "" {
		w.WriteByte('{')
		w.WriteString(k)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in text
// exposition format; mount it at /metrics. A nil registry serves an
// empty (valid) exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// Scrape is a parsed exposition: series key (name + sorted label
// fragment) → value, plus the TYPE declarations seen. It exists for
// tests — the scrape-parse round-trip and the server bench's
// monotonicity assertions — not as a general Prometheus client.
type Scrape struct {
	Values map[string]float64
	Types  map[string]string // family name → type string
}

// ParseText parses Prometheus text exposition into a Scrape. Label
// fragments in series keys are sorted by label name so lookups don't
// depend on writer order. Unparseable lines return an error.
func ParseText(rd io.Reader) (*Scrape, error) {
	s := &Scrape{Values: map[string]float64{}, Types: map[string]string{}}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if fields := strings.Fields(line); len(fields) >= 4 && fields[1] == "TYPE" {
				s.Types[fields[2]] = fields[3]
			}
			continue
		}
		key, val, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: parse line %d: %w", ln, err)
		}
		s.Values[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseSampleLine(line string) (key string, val float64, err error) {
	// name{labels} value  |  name value
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return "", 0, fmt.Errorf("no value in %q", line)
	}
	name := line[:nameEnd]
	rest := line[nameEnd:]
	var labels Labels
	if rest[0] == '{' {
		close := strings.LastIndexByte(rest, '}')
		if close < 0 {
			return "", 0, fmt.Errorf("unterminated labels in %q", line)
		}
		labels, err = parseLabels(rest[1:close])
		if err != nil {
			return "", 0, err
		}
		rest = rest[close+1:]
	}
	f := strings.Fields(rest)
	if len(f) < 1 {
		return "", 0, fmt.Errorf("no value in %q", line)
	}
	switch f[0] {
	case "+Inf":
		val = math.Inf(1)
	case "-Inf":
		val = math.Inf(-1)
	default:
		val, err = strconv.ParseFloat(f[0], 64)
		if err != nil {
			return "", 0, fmt.Errorf("bad value %q: %v", f[0], err)
		}
	}
	sort.SliceStable(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
	key = name
	if k := labels.key(); k != "" {
		key += "{" + k + "}"
	}
	return key, val, nil
}

func parseLabels(s string) (Labels, error) {
	var out Labels
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("bad label fragment %q", s)
		}
		name := s[:eq]
		rest := s[eq+2:]
		var b strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		out = append(out, Label{Name: name, Value: b.String()})
		s = rest[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}

// Value returns the value for an exact series key ("name" or
// `name{l1="v1",...}` with labels sorted by name), and whether it was
// present.
func (s *Scrape) Value(key string) (float64, bool) {
	v, ok := s.Values[key]
	return v, ok
}

// Family returns every series of the named family (exact name match
// before any '{'), keyed by full series key.
func (s *Scrape) Family(name string) map[string]float64 {
	out := map[string]float64{}
	for k, v := range s.Values {
		base := k
		if i := strings.IndexByte(k, '{'); i >= 0 {
			base = k[:i]
		}
		if base == name {
			out[k] = v
		}
	}
	return out
}

// Sum adds up every series of the named family — handy for "total
// across labels" assertions.
func (s *Scrape) Sum(name string) float64 {
	var t float64
	for _, v := range s.Family(name) {
		t += v
	}
	return t
}
