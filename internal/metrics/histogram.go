package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram: observations are counted into
// the first bucket whose upper bound is >= the value, plus an implicit
// +Inf bucket. Observe is lock-free — one binary search over a small
// immutable bounds slice and two atomic adds — so event-driven producers
// can call it from any worker without serializing.
//
// Values are float64; duration producers observe seconds (see
// ObserveSince and DurationBuckets), matching Prometheus base-unit
// conventions.
type Histogram struct {
	bounds  []float64      // ascending upper bounds, exclusive of +Inf
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, accumulated by CAS
}

// DefBuckets are general-purpose duration buckets in seconds: powers of
// two from 1µs to ~4.2s plus +Inf, fine enough that a bucket-interpolated
// percentile lands within a factor of two of the exact statistic.
var DefBuckets = func() []float64 {
	var b []float64
	for us := int64(1); us <= 1<<22; us <<= 1 {
		b = append(b, time.Duration(us*int64(time.Microsecond)).Seconds())
	}
	return b
}()

// LinearBuckets returns count buckets starting at start with the given
// width.
func LinearBuckets(start, width float64, count int) []float64 {
	b := make([]float64, count)
	for i := range b {
		b[i] = start + width*float64(i)
	}
	return b
}

// ExponentialBuckets returns count buckets starting at start, each
// factor times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	b := make([]float64, count)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// NewHistogram builds a histogram with the given ascending upper bounds
// (DefBuckets if nil/empty).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start. Nil-safe.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

func (h *Histogram) bucketOf(v float64) int {
	// sort.SearchFloat64s returns the first bound >= v when v is present;
	// we need the first bound >= v in general (le semantics).
	return sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
}

// Count returns the total observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistSnapshot is an immutable copy of a histogram's state, mergeable
// with others sharing the same bounds.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64 // len(Bounds)+1, last is +Inf
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram's current state. The per-bucket reads
// are individually atomic, not mutually consistent — fine for
// monitoring, where a scrape racing an Observe may see the bucket
// increment before the total. Count is recomputed from the buckets so
// the snapshot is internally consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Merge adds o's buckets into s (bounds must match; merging a zero
// snapshot adopts o's bounds).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(o.Counts) == 0 {
		return
	}
	if len(s.Counts) == 0 {
		s.Bounds = o.Bounds
		s.Counts = append([]int64(nil), o.Counts...)
		s.Count = o.Count
		s.Sum = o.Sum
		return
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile estimates the q-th quantile (0 < q < 1) by linear
// interpolation within the bucket holding the target rank, the standard
// Prometheus histogram_quantile estimator. Returns 0 with no
// observations; a rank landing in the +Inf bucket returns the largest
// finite bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i >= len(s.Bounds) {
				// +Inf bucket: clamp to the largest finite bound.
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			// Position of the target rank within this bucket's count.
			frac := (rank - float64(cum-c)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantile is Snapshot().Quantile(q) (0 on nil).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}
