package metrics

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestMetricsConcurrentStress is the -race satellite: concurrent label
// lookups (the getOrCreate double-checked path), histogram observes,
// window rotation, and scrapes all at once. Correctness check at the
// end: no increments lost, cumulative windowed count equals observes.
func TestMetricsConcurrentStress(t *testing.T) {
	r := NewRegistry()
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	const perWorker = 2000
	labels := []string{"alpha", "beta", "gamma", "delta"}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				site := labels[(g+i)%len(labels)]
				// Re-resolve every iteration on purpose: this hammers the
				// RWMutex read path and the create race, which is exactly
				// what the race detector should vet.
				r.Counter("stress_total", "", L("site", site)).Inc()
				r.Windowed("stress_seconds", "", L("site", site), []float64{0.001, 0.1}, 3).
					Observe(float64(i%10) * 0.01)
				if i%64 == 0 {
					r.Gauge("stress_gauge", "", L("site", site)).Set(int64(i))
				}
			}
		}(g)
	}

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // rotator
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Rotate()
			}
		}
	}()
	go func() { // scraper
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := r.WriteText(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	close(start)
	wg.Wait()
	close(stop)
	aux.Wait()

	total := int64(workers) * perWorker
	var gotC int64
	var gotW int64
	for _, site := range labels {
		gotC += r.Counter("stress_total", "", L("site", site)).Value()
		gotW += r.Windowed("stress_seconds", "", L("site", site), nil, 3).Cumulative().Count
	}
	if gotC != total {
		t.Fatalf("lost counter increments: %d / %d", gotC, total)
	}
	if gotW != total {
		t.Fatalf("lost windowed observations across rotation: %d / %d", gotW, total)
	}

	// The final scrape parses and the counter family sums to the total.
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	s, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Sum("stress_total"); int64(got) != total {
		t.Fatalf("scraped total %v, want %d", got, total)
	}
	for i, site := range labels {
		_ = i
		if _, ok := s.Value(fmt.Sprintf(`stress_seconds_count{site=%q}`, site)); !ok {
			t.Fatalf("missing windowed count for site %s", site)
		}
	}
}
