package metrics

import (
	"strings"
	"sync/atomic"
	"testing"
)

// TestNilRegistryIsOff pins the package's rule 1: a nil registry and the
// nil instruments it hands out are complete no-ops, so producers can be
// wired unconditionally.
func TestNilRegistryIsOff(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "", nil)
	g := r.Gauge("x", "", nil)
	h := r.Histogram("x_seconds", "", nil, nil)
	w := r.Windowed("x_win_seconds", "", nil, nil, 4)
	if c != nil || g != nil || h != nil || w != nil {
		t.Fatalf("nil registry must return nil instruments, got %v %v %v %v", c, g, h, w)
	}
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(-1)
	h.Observe(1.5)
	w.Observe(2.5)
	w.Rotate()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || w.Rotations() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	r.OnCollect("y", "", KindGauge, func(emit func(Labels, float64)) { t.Fatal("collector on nil registry") })
	r.Rotate()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v out=%q", err, sb.String())
	}
}

func TestCounterGaugeIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("tasks_total", "help", L("worker", "0"))
	b := r.Counter("tasks_total", "help", L("worker", "0"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("tasks_total", "help", L("worker", "1"))
	if a == other {
		t.Fatal("different labels must return distinct series")
	}
	a.Inc()
	a.Add(2)
	if a.Value() != 3 || other.Value() != 0 {
		t.Fatalf("counter values: %d, %d", a.Value(), other.Value())
	}
	g := r.Gauge("level", "", nil)
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge value: %d", g.Value())
	}
}

func TestLBuilder(t *testing.T) {
	ls := L("a", "1", "b", "2")
	if len(ls) != 2 || ls[0] != (Label{"a", "1"}) || ls[1] != (Label{"b", "2"}) {
		t.Fatalf("L built %v", ls)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd pair count must panic")
		}
	}()
	L("a")
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a family under a new kind must panic")
		}
	}()
	r.Gauge("x", "", nil)
}

func TestLabelKeyEscaping(t *testing.T) {
	ls := L("path", `a\b"c`+"\n")
	got := ls.key()
	want := `path="a\\b\"c\n"`
	if got != want {
		t.Fatalf("key = %q, want %q", got, want)
	}
}

func TestOnCollectAndSampleInt64(t *testing.T) {
	r := NewRegistry()
	var word int64
	atomic.StoreInt64(&word, 42)
	r.SampleInt64("sampled", "a sampled word", L("kind", "raw"), &word)
	r.OnCollect("collected", "const samples", KindCounter, func(emit func(Labels, float64)) {
		emit(L("k", "b"), 2)
		emit(L("k", "a"), 1)
	})
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`sampled{kind="raw"} 42`,
		`collected{k="a"} 1`,
		`collected{k="b"} 2`,
		"# TYPE sampled gauge",
		"# TYPE collected counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic ordering: collector samples sorted by label key.
	if strings.Index(out, `k="a"`) > strings.Index(out, `k="b"`) {
		t.Fatalf("collector samples not sorted:\n%s", out)
	}
}

func TestRegistryRotateReachesAllWindowed(t *testing.T) {
	r := NewRegistry()
	w1 := r.Windowed("a_seconds", "", L("s", "1"), nil, 2)
	w2 := r.Windowed("a_seconds", "", L("s", "2"), nil, 2)
	r.Rotate()
	r.Rotate()
	if w1.Rotations() != 2 || w2.Rotations() != 2 {
		t.Fatalf("rotations: %d, %d", w1.Rotations(), w2.Rotations())
	}
	// Same labels → same windowed handle, not re-registered for rotation.
	w1b := r.Windowed("a_seconds", "", L("s", "1"), nil, 2)
	if w1b != w1 {
		t.Fatal("same name+labels must return the same windowed histogram")
	}
	r.mu.RLock()
	n := len(r.windowed)
	r.mu.RUnlock()
	if n != 2 {
		t.Fatalf("windowed registered %d times, want 2", n)
	}
}
