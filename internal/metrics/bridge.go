package metrics

import (
	"strconv"

	"hybridloop/internal/trace"
)

// BridgeTrace post-processes a trace.Log into registry series: chunk
// sizes feed a histogram, LoopStart→LoopEnd deltas feed the loop
// duration histogram, and claim/steal/split/cancel events become
// counters. This is the trace→metrics bridge: tracing already pays a
// per-chunk critical section, so the bridge runs at scrape/harvest time
// over Events() instead of adding a second hot-path producer.
//
// Counters are labeled by the given site label (the loop's WithLabel
// name, or the caller's choice); chunk histograms additionally do not
// carry per-worker labels — worker-level detail stays in the scheduler's
// own collectors, keeping cardinality at (sites × families), not
// (sites × workers × families).
//
// Call it once per harvested log; calling it again on the same log
// double-counts (Reset the log between bridges, as examples do).
func (r *Registry) BridgeTrace(site string, l *trace.Log) {
	if r == nil || l == nil {
		return
	}
	ls := L("site", site)
	chunkIters := r.Histogram("hybridloop_trace_chunk_iterations", "iterations per executed chunk, from trace logs",
		ls, ExponentialBuckets(1, 2, 16))
	loopDur := r.Histogram("hybridloop_trace_loop_duration_seconds", "loop wall time from trace LoopStart/LoopEnd pairs",
		ls, nil)
	splitIters := r.Histogram("hybridloop_trace_split_iterations", "iterations moved per range-split steal, from trace logs",
		ls, ExponentialBuckets(1, 2, 16))
	events := r.Counter("hybridloop_trace_events_total", "trace events bridged into metrics", ls)
	dropped := r.Counter("hybridloop_trace_dropped_total", "trace events dropped by the bounded log", ls)

	counter := func(kind string) *Counter {
		return r.Counter("hybridloop_trace_kind_total", "trace events by kind",
			L("site", site, "kind", kind))
	}

	var openStart map[int32]int64 // worker → LoopStart When (ns); loops are per-log so worker-keyed is enough
	evs := l.Events()
	events.Add(int64(len(evs)))
	dropped.Add(l.Dropped())
	for _, ev := range evs {
		counter(ev.Kind.String()).Inc()
		switch ev.Kind {
		case trace.Chunk:
			chunkIters.Observe(float64(ev.B - ev.A))
		case trace.RangeSplit:
			splitIters.Observe(float64(ev.B - ev.A))
		case trace.LoopStart:
			if openStart == nil {
				openStart = map[int32]int64{}
			}
			openStart[ev.Worker] = int64(ev.When)
		case trace.LoopEnd:
			if start, ok := openStart[ev.Worker]; ok {
				loopDur.Observe(float64(int64(ev.When)-start) / 1e9)
				delete(openStart, ev.Worker)
			}
		case trace.Cancel:
			r.Counter("hybridloop_trace_abandoned_iterations_total",
				"iterations abandoned after cancellation, from trace logs", ls).Add(ev.B - ev.A)
		}
	}

	// Per-worker chunk counts as a gauge family — bounded by pool size.
	for _, ws := range l.Summary() {
		r.Gauge("hybridloop_trace_worker_chunks", "chunks executed per worker in the bridged log",
			L("site", site, "worker", strconv.Itoa(ws.Worker))).Set(int64(ws.Chunks))
	}
}
