package metrics

import (
	"testing"
)

// TestMergeOnEvict pins the tentpole's bounded-history contract: after
// arbitrarily many rotations the cumulative view has lost nothing, while
// the recent view covers only ring+active windows.
func TestMergeOnEvict(t *testing.T) {
	w := NewWindowed([]float64{1, 10, 100}, 2)
	// 5 windows of one observation each, value = window index.
	for i := 0; i < 5; i++ {
		w.Observe(float64(i))
		w.Rotate()
	}
	w.Observe(99) // active window

	cum := w.Cumulative()
	if cum.Count != 6 {
		t.Fatalf("cumulative count = %d, want 6 (nothing lost across eviction)", cum.Count)
	}
	if cum.Sum != 0+1+2+3+4+99 {
		t.Fatalf("cumulative sum = %v", cum.Sum)
	}

	// Ring holds the last 2 sealed windows (values 3, 4) plus active (99).
	rec := w.Recent()
	if rec.Count != 3 {
		t.Fatalf("recent count = %d, want 3 (2 sealed + active)", rec.Count)
	}
	if rec.Sum != 3+4+99 {
		t.Fatalf("recent sum = %v", rec.Sum)
	}
	if w.Rotations() != 5 {
		t.Fatalf("rotations = %d", w.Rotations())
	}
}

func TestWindowedBeforeAnyRotation(t *testing.T) {
	w := NewWindowed(nil, 3)
	w.Observe(0.5)
	if c := w.Cumulative(); c.Count != 1 {
		t.Fatalf("cumulative = %+v", c)
	}
	if r := w.Recent(); r.Count != 1 {
		t.Fatalf("recent = %+v", r)
	}
}

func TestWindowedDefaults(t *testing.T) {
	w := NewWindowed(nil, 0)
	if w.size != DefaultWindows {
		t.Fatalf("default ring size = %d", w.size)
	}
	if len(w.bounds) != len(DefBuckets) {
		t.Fatalf("default bounds len = %d", len(w.bounds))
	}
}

// TestRingStaysBounded rotates far past capacity and checks the ring
// never grows beyond its size while the eviction accumulator absorbs
// the history.
func TestRingStaysBounded(t *testing.T) {
	const rounds = 100
	w := NewWindowed([]float64{1}, 4)
	for i := 0; i < rounds; i++ {
		w.Observe(0.5)
		w.Rotate()
	}
	w.mu.RLock()
	ringLen, ringCap := len(w.ring), cap(w.ring)
	evicted := w.evicted.Count
	w.mu.RUnlock()
	if ringLen != 4 {
		t.Fatalf("ring len = %d, want 4", ringLen)
	}
	if ringCap > 8 {
		t.Fatalf("ring backing array grew to %d — eviction should shift in place", ringCap)
	}
	if evicted != rounds-4 {
		t.Fatalf("evicted count = %d, want %d", evicted, rounds-4)
	}
	if c := w.Cumulative(); c.Count != rounds {
		t.Fatalf("cumulative count = %d, want %d", c.Count, rounds)
	}
}
