// Package metrics is the runtime's metrics plane: label-based counters,
// gauges, and fixed-bucket histograms with Prometheus text-format
// exposition — the systematic measurement infrastructure that "OpenMP
// Loop Scheduling Revisited" argues schedule selection demands, and that
// production operation of the multi-tenant serving mode requires.
//
// The design follows two rules born from the repository's benchmark
// discipline:
//
//  1. Nil is off. Every producer holds a possibly-nil *Registry (or a
//     possibly-nil instrument obtained from one) and all methods on nil
//     receivers are no-ops, so a pool built without metrics pays exactly
//     one nil check per already-slow event and zero on per-chunk paths.
//
//  2. Scrape-time collection beats hot-path double counting. The
//     scheduler, admission gate, and autotuner already maintain atomic
//     counters for their own purposes; those layers register CollectFunc
//     callbacks that emit constant samples when the registry is scraped,
//     so even a live registry leaves the scheduling hot paths untouched.
//     Direct instruments (Counter/Gauge/Histogram and their label-vector
//     forms) exist for event-driven producers whose events are already
//     slow-path: loop start/end, park edges, trace post-processing.
//
// Label cardinality is the producer's responsibility: labels must come
// from small closed sets (worker IDs, strategy names, user-chosen loop
// site labels, quantile ranks). Never label by request, iteration, or
// loop instance ID — per-live-loop series are permissible only because
// admission control bounds how many loops are live at once.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition type of a metric family.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	// KindSummary is used for pre-aggregated quantile series (the
	// windowed aggregator's recent-percentile view).
	KindSummary
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindSummary:
		return "summary"
	}
	return "untyped"
}

// Labels is an ordered list of label name/value pairs. Order is part of
// a series' identity within this package (producers use a fixed order
// per family, so identical label sets always collide correctly), and
// makes exposition deterministic without sorting maps.
type Labels []Label

// Label is one name/value pair.
type Label struct{ Name, Value string }

// L builds Labels from alternating name, value strings:
// L("worker", "3", "kind", "steal"). Panics on an odd count
// (programming error).
func L(pairs ...string) Labels {
	if len(pairs)%2 != 0 {
		panic("metrics: L requires an even number of strings")
	}
	ls := make(Labels, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		ls = append(ls, Label{Name: pairs[i], Value: pairs[i+1]})
	}
	return ls
}

// key renders the labels as a map key / exposition fragment:
// `name="value",...` with value escaping per the Prometheus text format.
func (ls Labels) key() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing int64. The zero value is unusable;
// obtain counters from a Registry. All methods are nil-safe no-ops.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 for the exposition to stay monotone).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level. Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores the level.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the level by n (negative allowed).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// series is one exposed time series: a label set plus its instrument.
type series struct {
	labels Labels
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	win    *Windowed
}

// family is a named group of series sharing a kind and help string.
type family struct {
	name string
	help string
	kind Kind

	mu     sync.RWMutex
	byKey  map[string]*series
	series []*series // insertion order, for deterministic exposition
}

func (f *family) lookup(labels Labels) (*series, bool) {
	k := labels.key()
	f.mu.RLock()
	s, ok := f.byKey[k]
	f.mu.RUnlock()
	if ok {
		return s, true
	}
	return nil, false
}

func (f *family) getOrCreate(labels Labels, mk func() *series) *series {
	k := labels.key()
	f.mu.RLock()
	s, ok := f.byKey[k]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.byKey[k]; ok {
		return s
	}
	s = mk()
	s.labels = append(Labels(nil), labels...)
	f.byKey[k] = s
	f.series = append(f.series, s)
	return s
}

// snapshotSeries copies the series slice for lock-free iteration.
func (f *family) snapshotSeries() []*series {
	f.mu.RLock()
	out := append([]*series(nil), f.series...)
	f.mu.RUnlock()
	return out
}

// Sample is one constant scrape-time measurement emitted by a
// CollectFunc.
type Sample struct {
	Labels Labels
	Value  float64
}

// CollectFunc emits constant samples for one family at scrape time. The
// emit callback must only be used during the call.
type CollectFunc func(emit func(labels Labels, value float64))

// collector is a scrape-time const-sample family.
type collector struct {
	name string
	help string
	kind Kind
	fn   CollectFunc
}

// Registry holds metric families. A nil *Registry is the "metrics off"
// state: every method is a no-op and every instrument constructor
// returns nil (whose methods are in turn no-ops), so producers never
// branch beyond a nil check.
//
// Lookup is lock-light: family and series maps are guarded by RWMutexes
// taken in read mode on the steady-state path, and producers are
// expected to resolve instruments once and cache the handles — With on a
// vector is for setup and slow paths, not per-iteration use.
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	order      []*family // registration order
	collectors []*collector
	windowed   []*Windowed // rotation targets (see Rotate)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) familyFor(name, help string, kind Kind) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if ok {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: family %q reregistered as %v, was %v", name, kind, f.kind))
		}
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok = r.families[name]; ok {
		return f
	}
	f = &family{name: name, help: help, kind: kind, byKey: map[string]*series{}}
	r.families[name] = f
	r.order = append(r.order, f)
	return f
}

// Counter returns the counter for name+labels, creating it if needed.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, KindCounter)
	s := f.getOrCreate(labels, func() *series { return &series{ctr: &Counter{}} })
	return s.ctr
}

// Gauge returns the gauge for name+labels, creating it if needed.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, KindGauge)
	s := f.getOrCreate(labels, func() *series { return &series{gauge: &Gauge{}} })
	return s.gauge
}

// Histogram returns the histogram for name+labels with the given bucket
// upper bounds (used only on first creation of the family's series;
// callers must use consistent buckets per family).
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, KindHistogram)
	s := f.getOrCreate(labels, func() *series { return &series{hist: NewHistogram(buckets)} })
	return s.hist
}

// Windowed returns the windowed histogram for name+labels: a histogram
// whose samples land in a rotating ring of windows (see window.go),
// giving bounded-memory recent-percentile views on top of the cumulative
// exposition. windows is the ring size; buckets as for Histogram.
func (r *Registry) Windowed(name, help string, labels Labels, buckets []float64, windows int) *Windowed {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, KindHistogram)
	var created *Windowed
	s := f.getOrCreate(labels, func() *series {
		created = NewWindowed(buckets, windows)
		return &series{win: created}
	})
	if created != nil {
		r.mu.Lock()
		r.windowed = append(r.windowed, created)
		r.mu.Unlock()
	}
	return s.win
}

// OnCollect registers a scrape-time const-sample family: fn is invoked
// on every scrape and emits the family's current samples. This is how
// layers that already keep their own atomic counters (sched.Stats, the
// admission gate, the autotuner) expose them with zero added hot-path
// cost.
func (r *Registry) OnCollect(name, help string, kind Kind, fn CollectFunc) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, &collector{name: name, help: help, kind: kind, fn: fn})
	r.mu.Unlock()
}

// SampleInt64 exposes *p as a scrape-time gauge read with
// atomic.LoadInt64. The pointed-to word becomes part of the concurrent
// scrape surface: every write to it anywhere in the module must use
// sync/atomic (enforced statically by schedlint's metricsample
// analyzer). Prefer OnCollect over this when the producer already owns a
// typed atomic.
func (r *Registry) SampleInt64(name, help string, labels Labels, p *int64) {
	if r == nil {
		return
	}
	ls := append(Labels(nil), labels...)
	r.OnCollect(name, help, KindGauge, func(emit func(Labels, float64)) {
		emit(ls, float64(atomic.LoadInt64(p)))
	})
}

// Rotate advances every windowed histogram registered with the registry
// by one window (see Windowed.Rotate). Call it periodically — directly,
// or via RotateEvery — so long-running pools keep bounded recent history.
func (r *Registry) Rotate() {
	if r == nil {
		return
	}
	r.mu.RLock()
	ws := append([]*Windowed(nil), r.windowed...)
	r.mu.RUnlock()
	for _, w := range ws {
		w.Rotate()
	}
}

// snapshotFamilies returns the family list in registration order.
func (r *Registry) snapshotFamilies() ([]*family, []*collector) {
	r.mu.RLock()
	fs := append([]*family(nil), r.order...)
	cs := append([]*collector(nil), r.collectors...)
	r.mu.RUnlock()
	return fs, cs
}

// sortedSamples sorts const samples by label key for deterministic
// exposition (collect funcs may emit from map iteration).
func sortedSamples(samples []Sample) []Sample {
	sort.SliceStable(samples, func(i, j int) bool {
		return samples[i].Labels.key() < samples[j].Labels.key()
	})
	return samples
}
