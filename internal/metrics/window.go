package metrics

import (
	"sync"
	"time"
)

// Windowed is a histogram whose observations land in the currently
// active window of a fixed-size ring. Rotating seals the active window
// into the ring; when the ring is full the oldest window is merged into
// a cumulative "evicted" snapshot before being dropped, so
//
//   - total counts are never lost (the cumulative exposition — evicted +
//     ring + active — stays monotone, as Prometheus counters must), and
//   - memory stays bounded at windows+1 histograms regardless of how
//     long the pool runs, and
//   - Recent() gives percentile digests over just the ring+active
//     windows — the "current behaviour" view a long-running server needs,
//     which a since-process-start histogram cannot provide once old
//     traffic dominates the buckets.
//
// Observe is as cheap as Histogram.Observe plus one RWMutex read-lock
// (rotation is the only writer). All methods are nil-safe.
type Windowed struct {
	mu      sync.RWMutex
	active  *Histogram
	ring    []HistSnapshot // sealed windows, oldest first
	size    int            // ring capacity
	evicted HistSnapshot   // merge-on-evict accumulator
	bounds  []float64
	rotated int64 // total rotations, for tests/observability
}

// DefaultWindows is the ring size used when NewWindowed is given
// windows <= 0: with a 10s rotation period this keeps ~1 minute of
// recent history.
const DefaultWindows = 6

// NewWindowed builds a windowed histogram with the given bucket bounds
// (DefBuckets if empty) and ring capacity (DefaultWindows if <= 0).
func NewWindowed(bounds []float64, windows int) *Windowed {
	if windows <= 0 {
		windows = DefaultWindows
	}
	h := NewHistogram(bounds)
	return &Windowed{active: h, size: windows, bounds: h.bounds}
}

// Observe records one value into the active window.
func (w *Windowed) Observe(v float64) {
	if w == nil {
		return
	}
	w.mu.RLock()
	w.active.Observe(v)
	w.mu.RUnlock()
}

// ObserveSince records the seconds elapsed since start.
func (w *Windowed) ObserveSince(start time.Time) {
	if w == nil {
		return
	}
	w.Observe(time.Since(start).Seconds())
}

// Rotate seals the active window into the ring, evicting (merging) the
// oldest sealed window if the ring is full, and starts a fresh active
// window.
func (w *Windowed) Rotate() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	sealed := w.active.Snapshot()
	w.active = NewHistogram(w.bounds)
	w.ring = append(w.ring, sealed)
	if len(w.ring) > w.size {
		w.evicted.Merge(w.ring[0])
		// Shift rather than reslice so the backing array doesn't grow
		// without bound across rotations.
		copy(w.ring, w.ring[1:])
		w.ring = w.ring[:w.size]
	}
	w.rotated++
}

// Rotations returns how many times the window has rotated.
func (w *Windowed) Rotations() int64 {
	if w == nil {
		return 0
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.rotated
}

// Cumulative merges everything ever observed — evicted windows, sealed
// ring, and the active window — into one snapshot. This is the series
// exposed as the Prometheus histogram (monotone _bucket/_count/_sum).
func (w *Windowed) Cumulative() HistSnapshot {
	if w == nil {
		return HistSnapshot{}
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	var out HistSnapshot
	out.Merge(w.evicted)
	for _, s := range w.ring {
		out.Merge(s)
	}
	out.Merge(w.active.Snapshot())
	return out
}

// Recent merges only the retained windows (ring + active): the
// bounded-history view, covering at most (windows+1) rotation periods.
func (w *Windowed) Recent() HistSnapshot {
	if w == nil {
		return HistSnapshot{}
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	var out HistSnapshot
	for _, s := range w.ring {
		out.Merge(s)
	}
	out.Merge(w.active.Snapshot())
	return out
}

// RotateEvery starts a goroutine rotating every windowed histogram in
// the registry each period, and returns a stop function (idempotent).
// This is the periodic aggregator long-running pools mount once at
// startup; examples/server uses it.
func (r *Registry) RotateEvery(period time.Duration) (stop func()) {
	if r == nil || period <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Rotate()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
