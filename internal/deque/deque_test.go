package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestEmptyPop(t *testing.T) {
	d := New()
	if _, ok := d.PopBottom(); ok {
		t.Fatal("PopBottom on empty deque returned a task")
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("Steal on empty deque returned a task")
	}
	if !d.Empty() || d.Size() != 0 {
		t.Fatal("empty deque reports nonzero size")
	}
}

func TestLIFOOwner(t *testing.T) {
	d := New()
	for i := 0; i < 10; i++ {
		d.PushBottom(i)
	}
	for i := 9; i >= 0; i-- {
		v, ok := d.PopBottom()
		if !ok || v.(int) != i {
			t.Fatalf("PopBottom = %v,%v; want %d", v, ok, i)
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("deque not empty after draining")
	}
}

func TestFIFOThief(t *testing.T) {
	d := New()
	for i := 0; i < 10; i++ {
		d.PushBottom(i)
	}
	for i := 0; i < 10; i++ {
		v, ok := d.Steal()
		if !ok || v.(int) != i {
			t.Fatalf("Steal = %v,%v; want %d", v, ok, i)
		}
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("deque not empty after stealing all")
	}
}

func TestMixedEnds(t *testing.T) {
	d := New()
	for i := 0; i < 6; i++ {
		d.PushBottom(i)
	}
	// Steal the two oldest, pop the two newest.
	if v, _ := d.Steal(); v.(int) != 0 {
		t.Fatalf("first steal = %v", v)
	}
	if v, _ := d.Steal(); v.(int) != 1 {
		t.Fatalf("second steal = %v", v)
	}
	if v, _ := d.PopBottom(); v.(int) != 5 {
		t.Fatalf("first pop = %v", v)
	}
	if v, _ := d.PopBottom(); v.(int) != 4 {
		t.Fatalf("second pop = %v", v)
	}
	if d.Size() != 2 {
		t.Fatalf("size = %d, want 2", d.Size())
	}
}

func TestGrowth(t *testing.T) {
	d := New()
	const n = 10 * minCapacity
	for i := 0; i < n; i++ {
		d.PushBottom(i)
	}
	if d.Size() != n {
		t.Fatalf("size = %d, want %d", d.Size(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := d.Steal()
		if !ok || v.(int) != i {
			t.Fatalf("steal %d = %v,%v after growth", i, v, ok)
		}
	}
}

func TestGrowthPreservesAfterWrap(t *testing.T) {
	// Force top/bottom well past the initial capacity, with interleaved
	// pops, so the ring indexes wrap before growing.
	d := New()
	next := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < minCapacity-1; i++ {
			d.PushBottom(next)
			next++
		}
		for i := 0; i < minCapacity/2; i++ {
			if _, ok := d.Steal(); !ok {
				t.Fatal("unexpected empty deque")
			}
		}
		for i := 0; i < minCapacity/2-1; i++ {
			if _, ok := d.PopBottom(); !ok {
				t.Fatal("unexpected empty deque")
			}
		}
	}
	// Drain and check all remaining values are distinct and were pushed.
	seen := map[int]bool{}
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		i := v.(int)
		if i < 0 || i >= next || seen[i] {
			t.Fatalf("duplicate or alien value %d", i)
		}
		seen[i] = true
	}
}

// TestConcurrentStealExactlyOnce pushes n tasks and lets several thieves
// race the owner for them; every task must be received exactly once.
func TestConcurrentStealExactlyOnce(t *testing.T) {
	const n = 100000
	const thieves = 4
	d := New()
	var got [n]atomic.Int32
	var wg sync.WaitGroup
	var stop atomic.Bool

	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if v, ok := d.Steal(); ok {
					got[v.(int)].Add(1)
				}
			}
			// Final drain so nothing is stranded.
			for {
				v, ok := d.Steal()
				if !ok {
					return
				}
				got[v.(int)].Add(1)
			}
		}()
	}

	for i := 0; i < n; i++ {
		d.PushBottom(i)
		if i%3 == 0 {
			if v, ok := d.PopBottom(); ok {
				got[v.(int)].Add(1)
			}
		}
	}
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		got[v.(int)].Add(1)
	}
	stop.Store(true)
	wg.Wait()

	for i := 0; i < n; i++ {
		if c := got[i].Load(); c != 1 {
			t.Fatalf("task %d received %d times", i, c)
		}
	}
}

// TestQuickSequentialModel checks the deque against a straightforward
// slice model under random single-threaded operation sequences.
func TestQuickSequentialModel(t *testing.T) {
	prop := func(ops []uint8) bool {
		d := New()
		var model []int
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				d.PushBottom(next)
				model = append(model, next)
				next++
			case 1: // pop bottom
				v, ok := d.PopBottom()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || v.(int) != want {
					return false
				}
			case 2: // steal
				v, ok := d.Steal()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[0]
				model = model[1:]
				if !ok || v.(int) != want {
					return false
				}
			}
		}
		return d.Size() == len(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	d := New()
	task := struct{}{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBottom(task)
		d.PopBottom()
	}
}

func BenchmarkStealUncontended(b *testing.B) {
	d := New()
	task := struct{}{}
	for i := 0; i < b.N; i++ {
		d.PushBottom(task)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Steal()
	}
}
