package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// newInt returns a deque configured for int elements (v = the value,
// arg = its negation, so tests can verify the element travels together).
func newInt() *Deque { return New(0, 0, 0) }

// pushInt pushes i routed through the primary field for even i and the
// alternate field (ab = i, nonzero) for odd i, so every test exercises
// both element types and the tag's field selection.
func pushInt(d *Deque, i int) { d.PushBottom(i, -i, abFor(i)) }

func abFor(i int) int64 {
	if i%2 == 1 {
		return int64(i)
	}
	return 0
}

func checkElem(t *testing.T, v, arg any, ab int64, ok bool, want int) {
	t.Helper()
	if !ok || v.(int) != want || arg.(int) != -want || ab != abFor(want) {
		t.Fatalf("got (%v, %v, %d, %v), want (%d, %d, %d, true)",
			v, arg, ab, ok, want, -want, abFor(want))
	}
}

func TestEmptyPop(t *testing.T) {
	d := newInt()
	if _, _, _, ok := d.PopBottom(); ok {
		t.Fatal("PopBottom on empty deque returned a task")
	}
	if _, _, _, ok, _ := d.Steal(); ok {
		t.Fatal("Steal on empty deque returned a task")
	}
	if !d.Empty() || d.Size() != 0 {
		t.Fatal("empty deque reports nonzero size")
	}
}

func TestLIFOOwner(t *testing.T) {
	d := newInt()
	for i := 0; i < 10; i++ {
		pushInt(d, i)
	}
	for i := 9; i >= 0; i-- {
		v, arg, ab, ok := d.PopBottom()
		checkElem(t, v, arg, ab, ok, i)
	}
	if _, _, _, ok := d.PopBottom(); ok {
		t.Fatal("deque not empty after draining")
	}
}

func TestFIFOThief(t *testing.T) {
	d := newInt()
	for i := 0; i < 10; i++ {
		pushInt(d, i)
	}
	for i := 0; i < 10; i++ {
		v, arg, ab, ok, _ := d.Steal()
		checkElem(t, v, arg, ab, ok, i)
	}
	if _, _, _, ok, _ := d.Steal(); ok {
		t.Fatal("deque not empty after stealing all")
	}
}

func TestMixedEnds(t *testing.T) {
	d := newInt()
	for i := 0; i < 6; i++ {
		pushInt(d, i)
	}
	// Steal the two oldest, pop the two newest.
	v, arg, ab, ok, _ := d.Steal()
	checkElem(t, v, arg, ab, ok, 0)
	v, arg, ab, ok, _ = d.Steal()
	checkElem(t, v, arg, ab, ok, 1)
	v, arg, ab, ok = d.PopBottom()
	checkElem(t, v, arg, ab, ok, 5)
	v, arg, ab, ok = d.PopBottom()
	checkElem(t, v, arg, ab, ok, 4)
	if d.Size() != 2 {
		t.Fatalf("size = %d, want 2", d.Size())
	}
}

func TestGrowth(t *testing.T) {
	d := newInt()
	const n = 10 * minCapacity
	for i := 0; i < n; i++ {
		pushInt(d, i)
	}
	if d.Size() != n {
		t.Fatalf("size = %d, want %d", d.Size(), n)
	}
	for i := 0; i < n; i++ {
		v, arg, ab, ok, _ := d.Steal()
		checkElem(t, v, arg, ab, ok, i)
	}
}

func TestGrowthPreservesAfterWrap(t *testing.T) {
	// Force top/bottom well past the initial capacity, with interleaved
	// pops, so the ring indexes wrap before growing.
	d := newInt()
	next := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < minCapacity-1; i++ {
			pushInt(d, next)
			next++
		}
		for i := 0; i < minCapacity/2; i++ {
			if _, _, _, ok, _ := d.Steal(); !ok {
				t.Fatal("unexpected empty deque")
			}
		}
		for i := 0; i < minCapacity/2-1; i++ {
			if _, _, _, ok := d.PopBottom(); !ok {
				t.Fatal("unexpected empty deque")
			}
		}
	}
	// Drain and check all remaining values are distinct and were pushed.
	seen := map[int]bool{}
	for {
		v, arg, ab, ok := d.PopBottom()
		if !ok {
			break
		}
		i := v.(int)
		if i < 0 || i >= next || seen[i] || arg.(int) != -i || ab != abFor(i) {
			t.Fatalf("duplicate, alien, or torn value %d (arg %v, ab %d)", i, arg, ab)
		}
		seen[i] = true
	}
}

// TestCleanClearsSlots verifies the quiescence hygiene contract: pops
// deliberately leave slot contents behind (hot-path cost), and Clean —
// which the scheduler runs when a worker parks — must overwrite every
// slot, primary and alternate fields alike, with the zero values.
func TestCleanClearsSlots(t *testing.T) {
	d := New("zfn", "zalt", "zarg")
	d.PushBottom("a", "b", 0)
	d.PushBottom("c", "d", 7)
	for i := 0; i < 2; i++ {
		if _, _, _, ok := d.PopBottom(); !ok {
			t.Fatal("pop failed")
		}
	}

	d.Clean()
	r := d.active.Load()
	// Every slot must hold either its zero value or nothing at all
	// (virgin slots outside the dirty range are never touched).
	clean := func(v any, zero string) bool { return v == nil || v.(string) == zero }
	for i := range r.buf {
		s := &r.buf[i]
		if fn, alt, arg := s.fn.Load(), s.alt.Load(), s.arg.Load(); !clean(fn, "zfn") ||
			!clean(alt, "zalt") || !clean(arg, "zarg") {
			t.Fatalf("slot %d not cleared: (%v, %v, %v)", i, fn, alt, arg)
		}
	}

	// Clean on a non-empty deque must refuse to touch anything.
	d.PushBottom("live", "payload", 0)
	d.Clean()
	if v, arg, ab, ok := d.PopBottom(); !ok || v.(string) != "live" || arg.(string) != "payload" || ab != 0 {
		t.Fatalf("Clean on non-empty deque corrupted the element: (%v, %v, %d, %v)", v, arg, ab, ok)
	}
}

// TestConcurrentStealExactlyOnce pushes n tasks and lets several thieves
// race the owner for them; every task must be received exactly once, and
// every received element must be intact (v/arg/ab from the same push).
func TestConcurrentStealExactlyOnce(t *testing.T) {
	const n = 100000
	const thieves = 4
	d := newInt()
	var got [n]atomic.Int32
	var torn atomic.Int32
	var wg sync.WaitGroup
	var stop atomic.Bool

	receive := func(v, arg any, ab int64) {
		i := v.(int)
		if arg.(int) != -i || ab != abFor(i) {
			torn.Add(1)
			return
		}
		got[i].Add(1)
	}

	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if v, arg, ab, ok, _ := d.Steal(); ok {
					receive(v, arg, ab)
				}
			}
			// Final drain so nothing is stranded.
			for {
				v, arg, ab, ok, _ := d.Steal()
				if !ok {
					return
				}
				receive(v, arg, ab)
			}
		}()
	}

	for i := 0; i < n; i++ {
		pushInt(d, i)
		if i%3 == 0 {
			if v, arg, ab, ok := d.PopBottom(); ok {
				receive(v, arg, ab)
			}
		}
	}
	for {
		v, arg, ab, ok := d.PopBottom()
		if !ok {
			break
		}
		receive(v, arg, ab)
	}
	stop.Store(true)
	wg.Wait()

	if torn.Load() != 0 {
		t.Fatalf("%d torn elements received", torn.Load())
	}
	for i := 0; i < n; i++ {
		if c := got[i].Load(); c != 1 {
			t.Fatalf("task %d received %d times", i, c)
		}
	}
}

// TestQuickSequentialModel checks the deque against a straightforward
// slice model under random single-threaded operation sequences.
func TestQuickSequentialModel(t *testing.T) {
	prop := func(ops []uint8) bool {
		d := newInt()
		var model []int
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				pushInt(d, next)
				model = append(model, next)
				next++
			case 1: // pop bottom
				v, arg, ab, ok := d.PopBottom()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || v.(int) != want || arg.(int) != -want || ab != abFor(want) {
					return false
				}
			case 2: // steal
				v, arg, ab, ok, _ := d.Steal()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[0]
				model = model[1:]
				if !ok || v.(int) != want || arg.(int) != -want || ab != abFor(want) {
					return false
				}
			}
		}
		return d.Size() == len(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	d := newInt()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBottom(1, 2, 1)
		d.PopBottom()
	}
}

func BenchmarkStealUncontended(b *testing.B) {
	d := newInt()
	for i := 0; i < b.N; i++ {
		d.PushBottom(1, 2, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Steal()
	}
}
