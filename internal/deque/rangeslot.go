// RangeSlot is the atomically splittable range descriptor behind the lazy
// loop-splitting scheme: instead of eagerly pushing a binary tree of
// lg(n/chunk) range splits into the deque, the worker executing a loop
// range publishes its remaining [lo, hi) interval in one uint64 word and
// consumes it one chunk at a time from the front, while a thief may CAS
// off the upper half from the back (steal-half). Both ends shrink under
// CAS on the same word, so a chunk take and a half steal can never hand
// out overlapping iterations, and an interval is never lost: every CAS
// either transfers a sub-interval to exactly one party or fails and is
// retried against the freshly observed remainder.
//
// Bounds are packed as two int32 halves (lo in the low word, hi in the
// high word); the canonical empty state is the packed value 0. Publish
// rejects bounds outside int32 — callers fall back to the eager
// SpawnRange lowering, mirroring SpawnRange's own int32-overflow
// fallback — and also rejects publishing over a non-empty slot, which is
// how re-entrant nested entries (a worker helping inside a Wait while its
// own slot still holds a suspended range) are detected and routed to the
// eager path.

package deque

import "sync/atomic"

// RangeSlot holds one published iteration range [lo, hi), shrinkable from
// the front by its owner and from the back by thieves. The zero value is
// an empty slot, ready for use.
//
// RangeSlots live in per-worker arrays (rangeSet.slots, indexed by
// worker ID) where the owner CASes its own slot once per chunk while
// thieves CAS their victims', so each slot is padded to a full cache
// line: eight unpadded 8-byte slots would share one line and every
// TakeFront would invalidate seven other workers' hot word — exactly
// the false sharing the paper's static partitioning is meant to avoid.
//
//sched:cacheline
type RangeSlot struct {
	// v is the packed [lo,hi) word. Every occupied value is "published";
	// the canonical empty word 0 is the only sentinel, so the protocol
	// has one dynamic state and one constant one. Shrinks from either
	// end (TakeFront, StealBack) are published→published CASes; the
	// final take's published→empty CAS and the Reset/Abandon poison
	// writes are the only ways back to empty.
	//
	//sched:protocol rangeslot
	//sched:state empty = 0
	//sched:state published = dyn
	//sched:trans empty -> published
	//sched:trans published -> published
	//sched:trans published -> empty
	//sched:trans any -> empty
	v atomic.Uint64
	_ [56]byte
}

// packRange packs lo and hi into one word, or ok == false if either bound
// needs more than 32 bits. An empty range (hi <= lo) must not be packed;
// the empty state is represented by the zero word.
func packSlotRange(lo, hi int) (uint64, bool) {
	if int(int32(lo)) != lo || int(int32(hi)) != hi {
		return 0, false
	}
	return uint64(uint32(int32(lo))) | uint64(uint32(int32(hi)))<<32, true
}

func unpackSlotRange(w uint64) (lo, hi int) {
	return int(int32(uint32(w))), int(int32(uint32(w >> 32)))
}

// Publish installs [lo, hi) as the slot's content. It fails (without
// storing anything) if either bound exceeds int32, or if the slot is
// already occupied — the caller must then fall back to eager splitting.
// Owner only.
//
//sched:noalloc
func (s *RangeSlot) Publish(lo, hi int) bool {
	if hi <= lo {
		return false
	}
	w, ok := packSlotRange(lo, hi)
	if !ok || w == 0 {
		return false
	}
	return s.v.CompareAndSwap(0, w)
}

// TakeFront removes and returns up to n iterations [lo, lo+n) from the
// front of the published range, or ok == false if the slot is empty.
// Owner only (thieves must use StealHalf); the CAS loop is still required
// because thieves concurrently shrink the back.
//
//sched:noalloc
func (s *RangeSlot) TakeFront(n int) (lo, hi int, ok bool) {
	if n < 1 {
		n = 1
	}
	for {
		w := s.v.Load()
		if w == 0 {
			return 0, 0, false
		}
		l, h := unpackSlotRange(w)
		take := l + n
		if take >= h {
			// Final chunk: the slot transitions to the canonical empty word.
			if s.v.CompareAndSwap(w, 0) {
				return l, h, true
			}
			continue
		}
		nw, _ := packSlotRange(take, h) // take < h <= int32 max: always packs
		if s.v.CompareAndSwap(w, nw) {
			return l, take, true
		}
	}
}

// StealHalf removes and returns the upper half [mid, hi) of the published
// range, or ok == false if fewer than min+1 iterations remain (the owner
// always keeps at least one iteration, so only the owner ever empties the
// slot). Callable from any goroutine. A single successful CAS transfers
// the half; there is no per-split deque traffic.
//
//sched:noalloc
func (s *RangeSlot) StealHalf(min int) (lo, hi int, ok bool) {
	return s.StealBack(min, 1, 2)
}

// StealBack removes and returns the upper num/den fraction [mid, hi) of
// the published range, or ok == false if fewer than min+1 iterations
// remain. StealHalf is StealBack(min, 1, 2); a cross-socket thief takes a
// larger fraction (default ¾) so the remote-line cost of reaching the
// victim's data is amortized over more iterations per transfer. Requires
// 0 < num < den and min >= 1 (callers pass the chunk size): the thief's
// share rounds down, so take < h-l and l < mid < h always hold — the
// owner keeps at least one iteration, preserving the invariant that only
// the owner ever empties the slot. Callable from any goroutine.
//
//sched:noalloc
func (s *RangeSlot) StealBack(min, num, den int) (lo, hi int, ok bool) {
	for {
		w := s.v.Load()
		if w == 0 {
			return 0, 0, false
		}
		l, h := unpackSlotRange(w)
		if h-l <= min {
			return 0, 0, false
		}
		// Thief takes ⌊(h-l)·num/den⌋ from the back, at least one
		// iteration; bounds fit int32 so the product fits int64-safe int.
		take := (h - l) * num / den
		if take < 1 {
			take = 1
		}
		mid := h - take
		nw, _ := packSlotRange(l, mid) // l < mid < h: always packs
		if s.v.CompareAndSwap(w, nw) {
			return mid, h, true
		}
	}
}

// Remaining returns the number of unconsumed iterations at some recent
// moment. Cheap (one load); used by owners to decide whether surplus
// remains worth advertising and by thieves to skip empty slots.
//
//sched:noalloc
func (s *RangeSlot) Remaining() int {
	w := s.v.Load()
	if w == 0 {
		return 0
	}
	l, h := unpackSlotRange(w)
	return h - l
}

// Reset forces the slot empty, abandoning whatever range it held. Owner
// only; used on the panic-unwind path so a dying loop never advertises
// stealable work. A thief racing with Reset either completed its CAS
// first (and owns its half) or fails it (the word changed) — no interval
// is ever handed out twice.
//
//sched:noalloc
func (s *RangeSlot) Reset() { s.v.Store(0) }

// Abandon atomically empties the slot and returns the range it held, or
// ok == false if it was already empty. Owner only. The cancellation path
// uses it to poison a published descriptor: after the swap a thief's
// StealHalf observes the canonical empty word and returns ok == false,
// while a StealHalf whose CAS completed before the swap owns its half
// exactly as usual — the returned range then reflects the post-steal
// remainder, so no iteration is reported abandoned and stolen at once.
//
//sched:noalloc
func (s *RangeSlot) Abandon() (lo, hi int, ok bool) {
	w := s.v.Swap(0)
	if w == 0 {
		return 0, 0, false
	}
	l, h := unpackSlotRange(w)
	return l, h, true
}
