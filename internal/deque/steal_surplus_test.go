package deque

import "testing"

// TestStealSurplusSnapshot pins the more result's semantics: it reports
// whether the steal's OWN validated (top, bottom) snapshot saw at least
// one element queued behind the stolen one. It must be true exactly when
// a subsequent steal is guaranteed to find work — the scheduler's wake
// chaining keys off it, and a stale post-steal Empty() probe (the old
// protocol) could report surplus that the owner had already drained,
// waking a worker into a guaranteed-failed sweep.
func TestStealSurplusSnapshot(t *testing.T) {
	d := newInt()

	if _, _, _, ok, more := d.Steal(); ok || more {
		t.Fatalf("empty deque: Steal = (ok=%v, more=%v), want (false, false)", ok, more)
	}

	// Singleton: the stolen element was the last one.
	d.PushBottom(1, 1, 0)
	if _, _, _, ok, more := d.Steal(); !ok || more {
		t.Fatalf("singleton: Steal = (ok=%v, more=%v), want (true, false)", ok, more)
	}

	// Two queued: the first steal's snapshot sees the survivor, the
	// second steal takes the last element.
	d.PushBottom(1, 1, 0)
	d.PushBottom(2, 2, 0)
	if _, _, _, ok, more := d.Steal(); !ok || !more {
		t.Fatalf("first of two: Steal = (ok=%v, more=%v), want (true, true)", ok, more)
	}
	if _, _, _, ok, more := d.Steal(); !ok || more {
		t.Fatalf("second of two: Steal = (ok=%v, more=%v), want (true, false)", ok, more)
	}

	// A run of n elements reports surplus on every steal but the last.
	const n = 17
	for i := 0; i < n; i++ {
		d.PushBottom(i, i, 0)
	}
	for i := 0; i < n; i++ {
		_, _, _, ok, more := d.Steal()
		if !ok {
			t.Fatalf("steal %d of %d failed", i, n)
		}
		if want := i < n-1; more != want {
			t.Fatalf("steal %d of %d: more = %v, want %v", i, n, more, want)
		}
	}

	// The owner draining from the bottom consumes the surplus the thief
	// would otherwise have been promised.
	d.PushBottom(1, 1, 0)
	d.PushBottom(2, 2, 0)
	if _, _, _, ok := d.PopBottom(); !ok {
		t.Fatal("PopBottom failed")
	}
	if _, _, _, ok, more := d.Steal(); !ok || more {
		t.Fatalf("after owner pop: Steal = (ok=%v, more=%v), want (true, false)", ok, more)
	}
}
