package deque

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRangeSlotPublishTake(t *testing.T) {
	var s RangeSlot
	if s.Remaining() != 0 {
		t.Fatal("zero slot not empty")
	}
	if _, _, ok := s.TakeFront(4); ok {
		t.Fatal("TakeFront on empty slot succeeded")
	}
	if !s.Publish(10, 25) {
		t.Fatal("Publish failed on empty slot")
	}
	if s.Remaining() != 15 {
		t.Fatalf("Remaining = %d, want 15", s.Remaining())
	}
	// Front consumption in chunk-sized bites, remainder as the last bite.
	want := [][2]int{{10, 14}, {14, 18}, {18, 22}, {22, 25}}
	for _, w := range want {
		lo, hi, ok := s.TakeFront(4)
		if !ok || lo != w[0] || hi != w[1] {
			t.Fatalf("TakeFront = (%d,%d,%v), want (%d,%d,true)", lo, hi, ok, w[0], w[1])
		}
	}
	if _, _, ok := s.TakeFront(4); ok {
		t.Fatal("slot not empty after draining")
	}
	if !s.Publish(0, 1) {
		t.Fatal("slot not reusable after draining")
	}
}

func TestRangeSlotPublishRejections(t *testing.T) {
	var s RangeSlot
	if s.Publish(5, 5) || s.Publish(7, 3) {
		t.Fatal("Publish accepted an empty range")
	}
	// int32 overflow in either bound: the caller must fall back to eager
	// splitting, so Publish must refuse rather than truncate.
	big := int64(1) << 40
	if s.Publish(int(big), int(big)+100) {
		t.Fatal("Publish accepted lo beyond int32")
	}
	if s.Publish(0, int(big)) {
		t.Fatal("Publish accepted hi beyond int32")
	}
	if s.Publish(-int(big), 0) {
		t.Fatal("Publish accepted lo beyond -2^31")
	}
	// Occupied slot: re-entrant publish must fail and leave the content.
	if !s.Publish(3, 9) {
		t.Fatal("Publish failed on empty slot")
	}
	if s.Publish(100, 200) {
		t.Fatal("Publish succeeded over an occupied slot")
	}
	if s.Remaining() != 6 {
		t.Fatalf("occupied content clobbered: Remaining = %d", s.Remaining())
	}
	// Negative bounds within int32 are fine.
	s.Reset()
	if !s.Publish(-50, -10) {
		t.Fatal("Publish rejected a valid negative range")
	}
	lo, hi, ok := s.TakeFront(100)
	if !ok || lo != -50 || hi != -10 {
		t.Fatalf("TakeFront = (%d,%d,%v)", lo, hi, ok)
	}
}

func TestRangeSlotStealHalf(t *testing.T) {
	var s RangeSlot
	if _, _, ok := s.StealHalf(1); ok {
		t.Fatal("StealHalf on empty slot succeeded")
	}
	s.Publish(0, 100)
	lo, hi, ok := s.StealHalf(10)
	if !ok || lo != 50 || hi != 100 {
		t.Fatalf("StealHalf = (%d,%d,%v), want (50,100,true)", lo, hi, ok)
	}
	if s.Remaining() != 50 {
		t.Fatalf("victim Remaining = %d, want 50", s.Remaining())
	}
	// Halving continues only while more than min remains.
	for s.Remaining() > 10 {
		if _, _, ok := s.StealHalf(10); !ok {
			t.Fatalf("StealHalf failed with %d > min remaining", s.Remaining())
		}
	}
	if _, _, ok := s.StealHalf(10); ok {
		t.Fatal("StealHalf took below the min threshold")
	}
	// The owner still drains the remainder: thieves never empty a slot.
	if s.Remaining() == 0 {
		t.Fatal("thief emptied the slot")
	}
	s.Reset()
	if s.Remaining() != 0 {
		t.Fatal("Reset left content")
	}
}

// TestRangeSlotConcurrentExactlyOnce hammers one slot with an owner
// taking chunks and many thieves stealing halves, asserting every
// iteration of the published range is handed out exactly once. Run with
// -race for the full effect.
func TestRangeSlotConcurrentExactlyOnce(t *testing.T) {
	const n, chunk, thieves = 1 << 16, 7, 8
	var s RangeSlot
	counts := make([]atomic.Int32, n)
	claim := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			counts[i].Add(1)
		}
	}
	var wg sync.WaitGroup
	var stop atomic.Bool
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if lo, hi, ok := s.StealHalf(chunk); ok {
					claim(lo, hi)
				}
			}
		}()
	}
	if !s.Publish(0, n) {
		t.Fatal("Publish failed")
	}
	for {
		lo, hi, ok := s.TakeFront(chunk)
		if !ok {
			break
		}
		claim(lo, hi)
	}
	stop.Store(true)
	wg.Wait()
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("iteration %d handed out %d times", i, c)
		}
	}
}

// TestRangeSlotAbandon: Abandon atomically takes the whole remainder out
// of circulation — it returns the abandoned range exactly once, leaves
// the slot empty for thieves and owner alike, and reports nothing on an
// already-empty slot.
func TestRangeSlotAbandon(t *testing.T) {
	var s RangeSlot
	if _, _, ok := s.Abandon(); ok {
		t.Fatal("Abandon on empty slot reported a range")
	}
	if !s.Publish(100, 500) {
		t.Fatal("Publish failed")
	}
	lo, hi, ok := s.Abandon()
	if !ok || lo != 100 || hi != 500 {
		t.Fatalf("Abandon = [%d, %d) ok=%v, want [100, 500) true", lo, hi, ok)
	}
	if _, _, ok := s.Abandon(); ok {
		t.Fatal("second Abandon reported a range")
	}
	if s.Remaining() != 0 {
		t.Fatal("Abandon left content in the slot")
	}
	if _, _, ok := s.StealHalf(1); ok {
		t.Fatal("StealHalf succeeded on an abandoned slot")
	}
	if _, _, ok := s.TakeFront(1); ok {
		t.Fatal("TakeFront succeeded on an abandoned slot")
	}
	// The slot is reusable after abandonment.
	if !s.Publish(0, 10) {
		t.Fatal("Publish failed after Abandon")
	}
}

// TestRangeSlotAbandonStealRace races Abandon against thieves: every
// iteration of the published range must end up either stolen or
// abandoned, exactly once — the poisoning guarantee cancellation relies
// on (a steal CAS that completed first owns its half; later thieves see
// the empty word).
func TestRangeSlotAbandonStealRace(t *testing.T) {
	const n, chunk, thieves, rounds = 1 << 12, 5, 4, 200
	for round := 0; round < rounds; round++ {
		var s RangeSlot
		counts := make([]atomic.Int32, n)
		claim := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				counts[i].Add(1)
			}
		}
		if !s.Publish(0, n) {
			t.Fatal("Publish failed")
		}
		var wg sync.WaitGroup
		var start sync.WaitGroup
		start.Add(1)
		for i := 0; i < thieves; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				start.Wait()
				for {
					lo, hi, ok := s.StealHalf(chunk)
					if !ok {
						return
					}
					claim(lo, hi)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			if lo, hi, ok := s.Abandon(); ok {
				claim(lo, hi)
			}
		}()
		start.Done()
		wg.Wait()
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("round %d: iteration %d claimed %d times", round, i, c)
			}
		}
	}
}
