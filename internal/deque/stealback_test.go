package deque

import "testing"

// TestStealBackFraction pins the parameterized steal-size policy: a
// thief takes ⌊remaining·num/den⌋ from the back (at least one
// iteration), and StealHalf is exactly StealBack at ½. The ¾ setting is
// what the hierarchical scheduler uses for cross-socket transfers.
func TestStealBackFraction(t *testing.T) {
	var s RangeSlot

	if _, _, ok := s.StealBack(1, 3, 4); ok {
		t.Fatal("StealBack on empty slot succeeded")
	}

	// ¾ of 100: the thief gets [25, 100), the owner keeps [0, 25).
	s.Publish(0, 100)
	lo, hi, ok := s.StealBack(1, 3, 4)
	if !ok || lo != 25 || hi != 100 {
		t.Fatalf("StealBack(1, 3, 4) on [0,100) = (%d,%d,%v), want (25,100,true)", lo, hi, ok)
	}
	if r := s.Remaining(); r != 25 {
		t.Fatalf("owner remainder = %d, want 25", r)
	}
	s.Reset()

	// The ½ fraction matches StealHalf bit for bit.
	s.Publish(10, 25)
	lo, hi, ok = s.StealBack(1, 1, 2)
	if !ok {
		t.Fatal("StealBack(1, 1, 2) failed")
	}
	var h RangeSlot
	h.Publish(10, 25)
	hlo, hhi, hok := h.StealHalf(1)
	if !hok || lo != hlo || hi != hhi {
		t.Fatalf("StealBack(1,1,2) = (%d,%d), StealHalf = (%d,%d,%v) — must agree",
			lo, hi, hlo, hhi, hok)
	}
	s.Reset()
	h.Reset()

	// min guard: a remainder of min or fewer is not worth splitting.
	s.Publish(0, 4)
	if _, _, ok := s.StealBack(4, 3, 4); ok {
		t.Fatal("StealBack split a remainder of exactly min")
	}
	s.Reset()

	// Rounding floor would take 0 of a 2-element range at ¾·2 = 1.5 → 1;
	// the ≥1 clamp guarantees progress and the owner still keeps one.
	s.Publish(0, 2)
	lo, hi, ok = s.StealBack(1, 3, 4)
	if !ok || lo != 1 || hi != 2 {
		t.Fatalf("StealBack(1, 3, 4) on [0,2) = (%d,%d,%v), want (1,2,true)", lo, hi, ok)
	}
	if r := s.Remaining(); r != 1 {
		t.Fatalf("owner remainder = %d, want 1", r)
	}
}
