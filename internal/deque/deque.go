// Package deque implements the Chase–Lev lock-free work-stealing deque
// (Chase & Lev, SPAA 2005, with the memory-order fixes of Lê et al.,
// PPoPP 2013, expressed through Go's sync/atomic, which provides
// sequentially consistent semantics).
//
// The owner worker pushes and pops tasks at the bottom in LIFO order;
// thieves steal from the top in FIFO order. This is the queue discipline
// the paper's Cilk substrate relies on: the oldest (topmost) frame is the
// one with the most work behind it, so steals grab big pieces and the
// owner keeps its cache-hot recent work.
//
// Elements are held in separate per-slot atomics, so a push performs no
// heap allocation: boxing a func value or a pointer into an interface is
// a (type, pointer) pair with no copy. Each element is a triple
// (v, arg, ab): v is one of two caller-fixed concrete types (the scheduler
// uses a plain task func and a range-task func), arg is a pointer payload
// (the join group), and ab is an int64 the caller can use to carry data
// inline (a packed iteration range). ab doubles as the element-type tag:
// ab == 0 means v has the primary type, ab != 0 the alternate — this is
// what lets one atomic slot alternate between two concrete func types
// without violating sync/atomic.Value's store-type-consistency rule,
// because each type always lives in its own per-slot atomic.Value.
//
// Removed slots are not cleared on the pop/steal hot path (two XCHG-class
// stores per task that profiling shows dominate fine-grained loop
// overhead); a consumed element lingers until its slot is reused —
// retention bounded by one ring's capacity. The owner calls Clean when it
// goes idle to overwrite every slot with caller-supplied zero values, so
// a quiescent deque pins nothing.
package deque

import "sync/atomic"

const (
	// minCapacity is the initial ring capacity. Must be a power of two.
	minCapacity = 64
)

// slot holds one queued element as independently-atomic words. A reader
// may observe a torn element (fields from different pushes) only for an
// index whose claim CAS it is guaranteed to lose, so torn reads are
// always discarded — see the validation argument in Steal.
//
// Only one of fn/alt is meaningful per element (chosen by ab); the other
// may hold a stale value from an earlier element in the same physical
// slot, retained until the slot is next reused with that type — the same
// bounded retention Steal already accepts for un-cleared stolen slots.
type slot struct {
	fn  atomic.Value // primary element type (ab == 0)
	alt atomic.Value // alternate element type (ab != 0)
	arg atomic.Value
	ab  atomic.Int64
}

// ring is a fixed-capacity circular array. Grown copies share no state with
// their predecessor; readers that hold an old ring still read valid slots
// for indexes they were entitled to.
type ring struct {
	buf  []slot
	mask int64
}

func newRing(capacity int64) *ring {
	return &ring{buf: make([]slot, capacity), mask: capacity - 1}
}

//sched:noalloc
func (r *ring) get(i int64) (v, arg any, ab int64) {
	s := &r.buf[i&r.mask]
	ab = s.ab.Load()
	if ab == 0 {
		v = s.fn.Load()
	} else {
		v = s.alt.Load()
	}
	return v, s.arg.Load(), ab
}

//sched:noalloc
func (r *ring) put(i int64, v, arg any, ab int64) {
	s := &r.buf[i&r.mask]
	// Skip stores whose slot already holds the value: a loop pushing
	// splits of one range reuses a handful of physical slots with the
	// same group pointer and (for plain tasks) the same tag, so an atomic
	// load replaces an XCHG-class store on most pushes. v cannot get the
	// same treatment — func-typed interfaces are not comparable. Skipping
	// is sound because a reader cannot distinguish a rewritten value from
	// an identical retained one.
	if s.ab.Load() != ab {
		s.ab.Store(ab)
	}
	if ab == 0 {
		s.fn.Store(v)
	} else {
		s.alt.Store(v)
	}
	if s.arg.Load() != arg {
		s.arg.Store(arg)
	}
}

func (r *ring) capacity() int64 { return int64(len(r.buf)) }

// grow returns a ring of twice the capacity holding elements [top, bottom).
func (r *ring) grow(top, bottom int64) *ring {
	nr := newRing(r.capacity() * 2)
	for i := top; i < bottom; i++ {
		v, arg, ab := r.get(i)
		nr.put(i, v, arg, ab)
	}
	return nr
}

// Deque is a Chase–Lev work-stealing deque. The zero value is not usable;
// call New. PushBottom and PopBottom may be called only by the owning
// worker; Steal may be called by any goroutine.
//
// Layout: top is the word thieves CAS, so it sits on its own cache line
// away from bottom and the owner-private bookkeeping — otherwise every
// steal attempt would invalidate the line the owner's push/pop hot path
// reads. The struct as a whole is padded to a multiple of the line so
// adjacently allocated deques (one per worker, same size class) never
// share a boundary line.
//
//sched:cacheline
type Deque struct {
	top    atomic.Int64 // next slot to steal from; CASed by thieves
	_      [56]byte     // keep thief traffic off the owner's line
	bottom atomic.Int64 // next slot to push to (owner-private except for reads)
	active atomic.Pointer[ring]

	// zeroFn/zeroAlt/zeroArg are what Clean overwrites slots with. They
	// must be typed non-nil interface values of the same concrete types
	// every push uses (sync/atomic.Value requires store-type consistency)
	// — e.g. typed nil funcs and a typed nil pointer.
	zeroFn  any
	zeroAlt any
	zeroArg any

	// Owner-private dirty-range bookkeeping for Clean: slots for indexes
	// in [cleanedTo, hw) of the active ring may hold consumed elements;
	// everything below cleanedTo is zeroed and everything at or above hw
	// is virgin. Plain fields — only the owner reads or writes them.
	cleanedTo int64
	hw        int64 // high-water bottom since the ring was last clean

	_ [48]byte // tail padding to a cache-line multiple (see type comment)
}

// New returns an empty deque. zeroFn, zeroAlt and zeroArg are the values
// Clean overwrites slots with; they must have the same concrete types as
// the values later passed to PushBottom with ab == 0, ab != 0, and as arg
// respectively (typed nils are the usual choice) and must not be untyped
// nil interfaces.
func New(zeroFn, zeroAlt, zeroArg any) *Deque {
	d := &Deque{zeroFn: zeroFn, zeroAlt: zeroAlt, zeroArg: zeroArg}
	d.active.Store(newRing(minCapacity))
	return d
}

// PushBottom adds the element (v, arg, ab) at the bottom of the deque.
// Owner only. ab selects v's concrete type: pass 0 for the primary type
// and any non-zero value for the alternate. Does not allocate (outside
// amortized ring growth, which lives in the unannotated grow) when v and
// arg are pointer-shaped values of the deque's fixed concrete types.
//
//sched:noalloc
func (d *Deque) PushBottom(v, arg any, ab int64) {
	b := d.bottom.Load()
	tp := d.top.Load()
	r := d.active.Load()
	if b-tp >= r.capacity() {
		r = r.grow(tp, b)
		d.active.Store(r)
		// The new ring is virgin outside the live range [tp, b): reset the
		// dirty range so Clean doesn't sweep slots that were never used.
		d.cleanedTo = tp
		d.hw = b
	}
	r.put(b, v, arg, ab)
	if b+1 > d.hw {
		d.hw = b + 1
	}
	d.bottom.Store(b + 1)
}

// PopBottom removes and returns the most recently pushed element, or
// ok == false if the deque is empty. Owner only.
//
//sched:noalloc
func (d *Deque) PopBottom() (v, arg any, ab int64, ok bool) {
	b := d.bottom.Load() - 1
	r := d.active.Load()
	d.bottom.Store(b)
	tp := d.top.Load()
	if b < tp {
		// Deque was empty; restore the canonical empty state.
		d.bottom.Store(tp)
		return nil, nil, 0, false
	}
	v, arg, ab = r.get(b)
	if b > tp {
		return v, arg, ab, true
	}
	// Single element left: race with thieves via CAS on top.
	won := d.top.CompareAndSwap(tp, tp+1)
	d.bottom.Store(tp + 1)
	if !won {
		return nil, nil, 0, false
	}
	return v, arg, ab, true
}

// Clean overwrites every slot with the zero values, releasing whatever the
// consumed elements still pin. Owner only, and only while the deque is
// empty (it returns without touching anything otherwise) — the scheduler
// calls it on the way into a park, so a busy worker pays no per-pop
// clearing (two removed XCHG-class stores per task) while an idle one
// retains nothing. Stale slots of a busy deque are bounded by one ring's
// capacity either way. Doomed thieves may read a slot mid-clean; their
// validating CAS fails (top == bottom here, so any index they could have
// read is already claimed or out of range) and the torn read is discarded.
//
//sched:noalloc
func (d *Deque) Clean() {
	b := d.bottom.Load()
	if d.top.Load() != b {
		return
	}
	r := d.active.Load()
	lo := d.hw - r.capacity()
	if d.cleanedTo > lo {
		lo = d.cleanedTo
	}
	for i := lo; i < d.hw; i++ {
		s := &r.buf[i&r.mask]
		s.fn.Store(d.zeroFn)
		s.alt.Store(d.zeroAlt)
		s.arg.Store(d.zeroArg)
	}
	d.cleanedTo = d.hw
}

// Steal removes and returns the oldest element, or ok == false if the
// deque is empty or the steal lost a race. Callable from any goroutine.
//
// more reports whether further elements remained behind the stolen one in
// the steal's own snapshot: the bottom read that validated the steal saw
// at least one element beyond index tp. It is the surplus signal wake
// chaining wants — "work existed behind this steal" — computed from the
// state the steal itself claimed, not from a separate Empty() probe after
// the fact. The post-steal probe could race the victim draining the
// remainder and report phantom surplus from a stale bottom read, waking a
// worker into a guaranteed-failed sweep (and, with live loops registered,
// a phantom demand unit); the snapshot cannot name surplus that was not
// really queued behind the stolen element.
//
//sched:noalloc
func (d *Deque) Steal() (v, arg any, ab int64, ok, more bool) {
	tp := d.top.Load()
	b := d.bottom.Load()
	if tp >= b {
		return nil, nil, 0, false, false
	}
	r := d.active.Load()
	v, arg, ab = r.get(tp)
	if !d.top.CompareAndSwap(tp, tp+1) {
		// Lost the race: the element read above may even be torn (an owner
		// overwrite interleaved between the loads), but it is discarded
		// here, so only CAS winners observe consistent elements.
		return nil, nil, 0, false, false
	}
	// Unlike the owner-side pops, a thief must NOT clear its slot: after
	// top advances to tp+1 the owner may push index tp+capacity — the same
	// physical slot — without growing (occupancy is then capacity-1), and
	// a deferred clear would destroy that push. A stolen task therefore
	// lingers in the victim's ring until the slot is reused or the ring is
	// dropped — retention bounded by one ring's capacity.
	return v, arg, ab, true, b-tp > 1
}

// Size returns a linearizable-at-some-point estimate of the number of
// queued tasks. Useful for monitoring and tests, not for synchronization.
func (d *Deque) Size() int {
	b := d.bottom.Load()
	tp := d.top.Load()
	if b < tp {
		return 0
	}
	return int(b - tp)
}

// Empty reports whether the deque appeared empty at some recent moment.
func (d *Deque) Empty() bool { return d.Size() == 0 }
