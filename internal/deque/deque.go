// Package deque implements the Chase–Lev lock-free work-stealing deque
// (Chase & Lev, SPAA 2005, with the memory-order fixes of Lê et al.,
// PPoPP 2013, expressed through Go's sync/atomic, which provides
// sequentially consistent semantics).
//
// The owner worker pushes and pops tasks at the bottom in LIFO order;
// thieves steal from the top in FIFO order. This is the queue discipline
// the paper's Cilk substrate relies on: the oldest (topmost) frame is the
// one with the most work behind it, so steals grab big pieces and the
// owner keeps its cache-hot recent work.
package deque

import "sync/atomic"

// Task is the unit of schedulable work held by a deque. It is defined here
// (rather than in the scheduler) so the deque does not depend on scheduler
// internals; the scheduler stores *its* task type behind this interface.
type Task interface{}

const (
	// minCapacity is the initial ring capacity. Must be a power of two.
	minCapacity = 64
)

// ring is a fixed-capacity circular array. Grown copies share no state with
// their predecessor; readers that hold an old ring still read valid slots
// for indexes they were entitled to.
type ring struct {
	buf  []atomic.Value
	mask int64
}

func newRing(capacity int64) *ring {
	return &ring{buf: make([]atomic.Value, capacity), mask: capacity - 1}
}

func (r *ring) get(i int64) Task    { return r.buf[i&r.mask].Load() }
func (r *ring) put(i int64, t Task) { r.buf[i&r.mask].Store(t) }
func (r *ring) capacity() int64     { return int64(len(r.buf)) }

// grow returns a ring of twice the capacity holding elements [top, bottom).
func (r *ring) grow(top, bottom int64) *ring {
	nr := newRing(r.capacity() * 2)
	for i := top; i < bottom; i++ {
		nr.put(i, r.get(i))
	}
	return nr
}

// Deque is a Chase–Lev work-stealing deque. The zero value is not usable;
// call New. PushBottom and PopBottom may be called only by the owning
// worker; Steal may be called by any goroutine.
type Deque struct {
	top    atomic.Int64 // next slot to steal from
	bottom atomic.Int64 // next slot to push to (owner-private except for reads)
	active atomic.Pointer[ring]
}

// New returns an empty deque.
func New() *Deque {
	d := &Deque{}
	d.active.Store(newRing(minCapacity))
	return d
}

// PushBottom adds t at the bottom of the deque. Owner only.
func (d *Deque) PushBottom(t Task) {
	b := d.bottom.Load()
	tp := d.top.Load()
	r := d.active.Load()
	if b-tp >= r.capacity() {
		r = r.grow(tp, b)
		d.active.Store(r)
	}
	r.put(b, t)
	d.bottom.Store(b + 1)
}

// PopBottom removes and returns the most recently pushed task, or
// (nil, false) if the deque is empty. Owner only.
func (d *Deque) PopBottom() (Task, bool) {
	b := d.bottom.Load() - 1
	r := d.active.Load()
	d.bottom.Store(b)
	tp := d.top.Load()
	if b < tp {
		// Deque was empty; restore the canonical empty state.
		d.bottom.Store(tp)
		return nil, false
	}
	t := r.get(b)
	if b > tp {
		return t, true
	}
	// Single element left: race with thieves via CAS on top.
	won := d.top.CompareAndSwap(tp, tp+1)
	d.bottom.Store(tp + 1)
	if !won {
		return nil, false
	}
	return t, true
}

// Steal removes and returns the oldest task, or (nil, false) if the deque
// is empty or the steal lost a race. Callable from any goroutine.
func (d *Deque) Steal() (Task, bool) {
	tp := d.top.Load()
	b := d.bottom.Load()
	if tp >= b {
		return nil, false
	}
	r := d.active.Load()
	t := r.get(tp)
	if !d.top.CompareAndSwap(tp, tp+1) {
		return nil, false
	}
	return t, true
}

// Size returns a linearizable-at-some-point estimate of the number of
// queued tasks. Useful for monitoring and tests, not for synchronization.
func (d *Deque) Size() int {
	b := d.bottom.Load()
	tp := d.top.Load()
	if b < tp {
		return 0
	}
	return int(b - tp)
}

// Empty reports whether the deque appeared empty at some recent moment.
func (d *Deque) Empty() bool { return d.Size() == 0 }
