package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LoopCapture flags the classic parallel-loop data race: a closure
// passed as a loop body to For/ForEach/ForErr/Reduce/... that plainly
// assigns to a variable captured from outside the closure. Chunks of
// one loop run concurrently on different workers, so
//
//	sum := 0.0
//	pool.ForEach(0, n, func(i int) { sum += f(i) })
//
// is a lost-update race on sum even though it reads naturally. The fix
// is Reduce/Sum (deterministic block-ordered combination), a sync/atomic
// accumulator, or per-worker slots combined after the join; genuinely
// synchronized writes (a mutex inside the body) carry a
// //lint:ignore loopcapture <reason> annotation.
//
// Writes through index or field expressions (out[i] = ..., s.f = ...)
// are not flagged: indexing disjoint elements per iteration is the
// intended output pattern, and the analyzer cannot prove disjointness
// either way. Only the captured variable word itself is protected.
var LoopCapture = &Analyzer{
	Name: "loopcapture",
	Doc:  "flags parallel loop bodies that plainly write variables captured from outside the closure",
	Run:  runLoopCapture,
}

// parallelBodyParams maps the module's loop entry points — by the full
// name go/types reports for the callee — to the parameter names whose
// closure argument executes concurrently on multiple workers. Reduce's
// combine and the option funcs run sequentially on the caller and are
// deliberately absent.
var parallelBodyParams = map[string][]string{
	"(*hybridloop.Pool).For":        {"body"},
	"(*hybridloop.Pool).ForEach":    {"body"},
	"(*hybridloop.Pool).ForErr":     {"body"},
	"(*hybridloop.Pool).ForEachErr": {"body"},
	"(*hybridloop.Pool).ForCtx":     {"body"},
	"(*hybridloop.Pool).ForWorker":  {"body"},
	"(*hybridloop.Pool).For2D":      {"body"},
	"hybridloop.For":                {"body"},
	"hybridloop.ForWorkerNested":    {"body"},
	"hybridloop.Reduce":             {"chunk"},
	"hybridloop.Sum":                {"f"},

	"hybridloop/internal/loop.For":        {"body"},
	"hybridloop/internal/loop.ForW":       {"body"},
	"hybridloop/internal/loop.WorkerFor":  {"body"},
	"hybridloop/internal/loop.WorkerForW": {"body"},
}

func runLoopCapture(ctx *Context) {
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil {
					return true
				}
				params, ok := parallelBodyParams[fn.FullName()]
				if !ok {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					return true
				}
				for i, arg := range call.Args {
					lit, ok := arg.(*ast.FuncLit)
					if !ok {
						continue
					}
					if !isParallelParam(sig, i, params) {
						continue
					}
					checkBodyCaptures(ctx, pkg, fn, lit)
				}
				return true
			})
		}
	}
}

// calleeFunc resolves the called function object, unwrapping parens and
// generic instantiation expressions. Returns nil for calls the analyzer
// cannot name (function values, method expressions through interfaces).
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch fx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(fx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(fx.X)
	}
	var id *ast.Ident
	switch fx := fun.(type) {
	case *ast.Ident:
		id = fx
	case *ast.SelectorExpr:
		id = fx.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// isParallelParam reports whether argument index i of a call binds to a
// parameter named in params (the variadic tail maps to the last one).
func isParallelParam(sig *types.Signature, i int, params []string) bool {
	tuple := sig.Params()
	if tuple.Len() == 0 {
		return false
	}
	idx := i
	if idx >= tuple.Len() {
		if !sig.Variadic() {
			return false
		}
		idx = tuple.Len() - 1
	}
	name := tuple.At(idx).Name()
	for _, p := range params {
		if name == p {
			return true
		}
	}
	return false
}

// checkBodyCaptures reports every plain write inside lit to a variable
// declared outside it. Variables declared inside the closure (including
// its parameters and any nested closures' locals) are chunk-local and
// safe; everything with a declaration position outside [lit.Pos(),
// lit.End()) is shared across the loop's workers.
func checkBodyCaptures(ctx *Context, pkg *Package, fn *types.Func, lit *ast.FuncLit) {
	flag := func(id *ast.Ident) {
		obj, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return // declared inside the closure: chunk-local
		}
		ctx.Reportf(id.Pos(),
			"parallel loop body passed to %s writes captured variable %s: chunks run concurrently on multiple workers, so this is a data race; use Reduce/Sum, a sync/atomic accumulator, or per-worker slots",
			fn.Name(), id.Name)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					flag(id)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(st.X).(*ast.Ident); ok {
				flag(id)
			}
		case *ast.RangeStmt:
			if st.Tok == token.ASSIGN {
				for _, e := range []ast.Expr{st.Key, st.Value} {
					if id, ok := e.(*ast.Ident); ok {
						flag(id)
					}
				}
			}
		}
		return true
	})
}
