package lint

import (
	"go/ast"
	"go/token"
)

// This file is the intra-procedural control-flow core shared by the
// dataflow-capable analyzers (lockorder's held-lock analysis; protocol
// and noalloc reuse the constant-propagation half in constprop.go). It
// deliberately implements only what a lint pass needs: basic blocks of
// *leaf* nodes — simple statements and the condition/range expressions
// of compound ones — connected by may-execute edges. Compound statements
// (if/for/switch/select) never appear in a block themselves; their
// pieces are distributed into the blocks that actually execute them, so
// a transfer function can ast.Inspect every node of a block without
// double-visiting a nested branch.
//
// Unsupported control flow degrades safely rather than wrongly: a goto
// is modeled as an edge to the exit block (the repository has none; a
// fixture that acquires a lock and gotos away simply isn't tracked past
// the jump), and a call to the panic builtin terminates its path.

// cfgBlock is one basic block. nodes holds leaf statements and
// standalone expressions (an if condition, a range operand) in execution
// order; succs are the possible successors.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body. Entry is the
// first block executed; exit is a virtual block reached by every return,
// every fall-off-the-end path, and every modeled panic.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock // all blocks, entry first, exit last
}

// buildCFG constructs the control-flow graph of body. The builder keeps
// a current block; statements append to it, and compound statements
// split it. A nil current block means the remaining statements of the
// enclosing block are unreachable (after return/break/continue); they
// are still parsed but contribute no nodes.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{cfg: &funcCFG{}}
	b.cfg.entry = b.newBlock()
	b.cfg.exit = &cfgBlock{}
	b.cur = b.cfg.entry
	b.stmtList(body.List)
	if b.cur != nil { // fall off the end of the body
		b.edge(b.cur, b.cfg.exit)
	}
	b.cfg.exit.index = len(b.cfg.blocks)
	b.cfg.blocks = append(b.cfg.blocks, b.cfg.exit)
	return b.cfg
}

type cfgBuilder struct {
	cfg *funcCFG
	cur *cfgBlock

	// loop/switch context for break and continue, innermost last. The
	// label (if any) the construct was declared under rides along so
	// labeled branches resolve without a separate pass.
	breaks    []branchTarget
	continues []branchTarget

	// pendingLabel is the label of a LabeledStmt whose statement is about
	// to be built (so `outer: for {...}` registers its targets as outer).
	pendingLabel string
}

type branchTarget struct {
	label string
	block *cfgBlock
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	nb := &cfgBlock{index: len(b.cfg.blocks)}
	b.cfg.blocks = append(b.cfg.blocks, nb)
	return nb
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// add appends a leaf node to the current block (dropped if unreachable).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// findTarget resolves a break/continue to its block: the innermost
// target when the branch is unlabeled, the matching label otherwise.
func findTarget(stack []branchTarget, label string) *cfgBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// isPanicCall reports whether s is a statement-level call to the panic
// builtin, which terminates the path.
func isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic" && id.Obj == nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.LabeledStmt:
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(st)
		if b.cur != nil {
			b.edge(b.cur, b.cfg.exit)
			b.cur = nil
		}

	case *ast.BranchStmt:
		lbl := ""
		if st.Label != nil {
			lbl = st.Label.Name
		}
		switch st.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, lbl); t != nil && b.cur != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := findTarget(b.continues, lbl); t != nil && b.cur != nil {
				b.edge(b.cur, t)
			}
			b.cur = nil
		case token.GOTO:
			// Conservative: the jump leaves the analyzed region.
			if b.cur != nil {
				b.edge(b.cur, b.cfg.exit)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled structurally by the switch construction: the case
			// body's current block falls into the next clause's block.
		}

	case *ast.IfStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Cond)
		if b.cur == nil {
			return
		}
		head := b.cur
		join := b.newBlock()
		b.cur = b.newBlock()
		b.edge(head, b.cur)
		b.stmt(st.Body)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
		if st.Else != nil {
			b.cur = b.newBlock()
			b.edge(head, b.cur)
			b.stmt(st.Else)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		} else {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		if b.cur == nil {
			return
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if st.Cond != nil {
			b.add(st.Cond)
		}
		join := b.newBlock()
		post := b.newBlock()
		if st.Cond != nil {
			b.edge(head, join) // condition false
		}
		body := b.newBlock()
		b.edge(head, body)
		b.breaks = append(b.breaks, branchTarget{label, join})
		b.continues = append(b.continues, branchTarget{label, post})
		b.cur = body
		b.stmt(st.Body)
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = post
		if st.Post != nil {
			b.add(st.Post)
		}
		b.edge(post, head)
		b.cur = join

	case *ast.RangeStmt:
		b.add(st.X)
		if b.cur == nil {
			return
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		join := b.newBlock()
		b.edge(head, join) // range exhausted
		body := b.newBlock()
		b.edge(head, body)
		b.breaks = append(b.breaks, branchTarget{label, join})
		b.continues = append(b.continues, branchTarget{label, head})
		b.cur = body
		b.stmt(st.Body)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = join

	case *ast.SwitchStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		if st.Tag != nil {
			b.add(st.Tag)
		}
		b.switchClauses(st.Body.List, label, false)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Assign)
		b.switchClauses(st.Body.List, label, false)

	case *ast.SelectStmt:
		b.switchClauses(st.Body.List, label, true)

	case *ast.GoStmt, *ast.DeferStmt, *ast.ExprStmt, *ast.AssignStmt,
		*ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt, *ast.EmptyStmt:
		b.add(s)
		if isPanicCall(s) {
			if b.cur != nil {
				b.edge(b.cur, b.cfg.exit)
			}
			b.cur = nil
		}

	default:
		b.add(s)
	}
}

// switchClauses builds the clause bodies of a switch/type-switch/select.
// Each clause starts from the head; a clause without a terminating jump
// falls to the join. A switch with no default clause may skip every
// clause, so the head also edges to the join. comm marks a select, whose
// clauses carry a communication statement instead of expressions. The
// bodies of case clauses chain for fallthrough: clause i's current block
// gets an edge to clause i+1's block when its last statement is a
// fallthrough (Go restricts fallthrough to the final statement).
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, comm bool) {
	if b.cur == nil {
		return
	}
	head := b.cur
	join := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label, join})
	hasDefault := false
	blocks := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
	}
	for i, c := range clauses {
		b.cur = blocks[i]
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				b.add(e)
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				b.add(cc.Comm)
			}
			body = cc.Body
		}
		fallsThrough := false
		if !comm && len(body) > 0 {
			if br, ok := body[len(body)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(body)
		if b.cur != nil {
			if fallsThrough && i+1 < len(blocks) {
				b.edge(b.cur, blocks[i+1])
			} else {
				b.edge(b.cur, join)
			}
		}
	}
	if !hasDefault {
		b.edge(head, join)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

// inspectLeaf walks the leaf node n calling fn on every descendant,
// pruning nested function literals: a closure's body executes at some
// later call, not at this program point, so its effects (locks, atomic
// transitions, allocations) belong to the closure, never to the block
// that merely creates it.
func inspectLeaf(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		return fn(x)
	})
}
