// Package lint is the analysis engine behind cmd/schedlint: a small,
// stdlib-only static-analysis framework (go/ast + go/types, packages
// located with `go list -json`) hosting the concurrency-invariant
// analyzers this runtime depends on.
//
// The paper's hybrid scheme is correct only because of delicate
// invariants — every partition claimed exactly once via the XOR walk,
// the steal-half CAS protocol on RangeSlot, a single-atomic-word
// cancellation token — and those invariants are invisible to the type
// system: one plain read of an atomically-written field, or one hot
// struct that silently loses its cache-line padding, reintroduces
// exactly the races and false sharing the design exists to avoid.
// Ordinary tests miss these failures (they are probabilistic and
// machine-dependent), so the invariants are enforced statically:
//
//   - atomicmix: a struct field or package-level variable whose address
//     is passed to sync/atomic anywhere in the module must never be
//     plainly read or written elsewhere.
//   - cacheline: structs annotated //sched:cacheline must have a size
//     that is a multiple of the 64-byte cache line per types.Sizes.
//   - loopcapture: closures passed as parallel loop bodies
//     (For/ForEach/ForErr/Reduce/...) must not plainly write variables
//     captured from outside the closure.
//   - looperr: the error results of ForErr/ForEachErr/ForCtx must not
//     be discarded.
//   - metricsample: a word registered with the metrics registry's
//     pointer-sampling collectors (metrics.SampleInt64) is read with
//     sync/atomic at scrape time, so it must never be plainly written.
//   - protocol: atomic fields annotated //sched:protocol carry a
//     declared state machine; every CompareAndSwap/Store/Swap on the
//     field, module-wide, must perform a declared transition between
//     declared states (arguments are constant-folded through go/types
//     and single-assignment locals).
//   - noalloc: functions annotated //sched:noalloc must contain no
//     allocating construct — escaping composite literals, make/append,
//     map writes, string concatenation, value-to-interface boxing,
//     capturing closures.
//   - lockorder: the module-wide mutex-acquisition graph must be
//     acyclic (a cycle is a potential deadlock), and every acquired
//     lock must be released on every return path.
//
// Deliberate violations are annotated in the source with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the offending line or a directive line directly above it
// (consecutive directive lines stack); the reason is mandatory, so
// every suppression documents why the code is safe. The engine keeps
// the suppressions honest in both directions: a directive naming an
// analyzer that is not registered, and a directive that no longer
// matches any finding (stale), are themselves findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: which analyzer fired, where, and why.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check. Run receives the full set of
// loaded packages (analyses like atomicmix are module-wide: the atomic
// and the plain access of one field may live in different packages) and
// reports findings through the Context.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(ctx *Context)
}

// Analyzers lists every check cmd/schedlint runs, in output order.
var Analyzers = []*Analyzer{
	AtomicMix,
	CacheLine,
	LockOrder,
	LoopCapture,
	LoopErr,
	MetricSample,
	NoAlloc,
	Protocol,
}

// Context carries the loaded module through the analyzers and collects
// their findings. All packages share one token.FileSet, so positions
// are comparable across packages.
type Context struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	diags []Diagnostic

	current *Analyzer
}

// Reportf records a finding of the current analyzer at pos.
func (c *Context) Reportf(pos token.Pos, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Analyzer: c.current.Name,
		Pos:      c.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over the loaded packages and returns
// the surviving findings, suppressions applied, sorted by position.
func Run(ctx *Context, analyzers []*Analyzer) []Diagnostic {
	for _, a := range analyzers {
		ctx.current = a
		a.Run(ctx)
	}
	ctx.current = nil
	known := map[string]bool{"lint": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sup := collectSuppressions(ctx, known)
	kept := ctx.diags[:0]
	for _, d := range ctx.diags {
		if !sup.suppressed(d) {
			kept = append(kept, d)
		}
	}
	// Stale pass: every suppression must have earned its keep. A
	// directive (or one name of a multi-analyzer directive) that removed
	// no finding this run is dead weight at best and a masked regression
	// at worst — the code it excused has changed, so the excuse must be
	// re-justified or deleted.
	for _, dir := range sup.all {
		for _, name := range dir.analyzers {
			if dir.used[name] {
				continue
			}
			stale := Diagnostic{
				Analyzer: "lint",
				Pos:      dir.pos,
				Message:  fmt.Sprintf("stale suppression: no %s finding matches this //lint:ignore; remove or re-justify it", name),
			}
			if !sup.suppressed(stale) {
				kept = append(kept, stale)
			}
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	ctx.diags = kept
	return kept
}

// directive is one parsed //lint:ignore comment. used tracks, per
// analyzer name, whether the directive suppressed at least one finding
// this run — the input to the stale-suppression check.
type directive struct {
	pos       token.Position
	analyzers []string
	used      map[string]bool
}

// suppressions indexes the parsed directives by file and line.
type suppressions struct {
	byLine map[string]map[int][]*directive
	all    []*directive
}

// collectSuppressions scans every file's comments for
// //lint:ignore <analyzer>[,<analyzer>...] <reason> directives. Three
// malformations are themselves findings: a directive with no reason (an
// undocumented suppression defeats the point of requiring one), an
// empty name in the comma list, and a name that matches no analyzer in
// this run (a typo there silently un-suppresses nothing and suppresses
// nothing — loud is the only safe behavior).
func collectSuppressions(ctx *Context, known map[string]bool) *suppressions {
	sup := &suppressions{byLine: map[string]map[int][]*directive{}}
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "lint:ignore") {
						continue
					}
					fields := strings.Fields(text)
					pos := ctx.Fset.Position(c.Pos())
					if len(fields) < 3 {
						ctx.diags = append(ctx.diags, Diagnostic{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "malformed directive: want //lint:ignore <analyzer> <reason>",
						})
						continue
					}
					dir := &directive{pos: pos, used: map[string]bool{}}
					for _, name := range strings.Split(fields[1], ",") {
						if name == "" {
							ctx.diags = append(ctx.diags, Diagnostic{
								Analyzer: "lint",
								Pos:      pos,
								Message:  "malformed directive: empty analyzer name in //lint:ignore list",
							})
							continue
						}
						if !known[name] {
							ctx.diags = append(ctx.diags, Diagnostic{
								Analyzer: "lint",
								Pos:      pos,
								Message:  fmt.Sprintf("unknown analyzer %q in //lint:ignore (run `schedlint -list` for the registered names)", name),
							})
							continue
						}
						dir.analyzers = append(dir.analyzers, name)
					}
					byLine := sup.byLine[pos.Filename]
					if byLine == nil {
						byLine = map[int][]*directive{}
						sup.byLine[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], dir)
					sup.all = append(sup.all, dir)
				}
			}
		}
	}
	return sup
}

// suppressed reports whether a matching ignore directive covers the
// diagnostic: on its own line, or on the directive line(s) directly
// above it — consecutive directive lines stack, so several analyzers
// can be suppressed above one statement without sharing a line.
// Matching marks the directive used for the stale check.
func (s *suppressions) suppressed(d Diagnostic) bool {
	byLine := s.byLine[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	match := func(line int) bool {
		for _, dir := range byLine[line] {
			for _, name := range dir.analyzers {
				if name == d.Analyzer {
					dir.used[name] = true
					return true
				}
			}
		}
		return false
	}
	if match(d.Pos.Line) {
		return true
	}
	for line := d.Pos.Line - 1; len(byLine[line]) > 0; line-- {
		if match(line) {
			return true
		}
	}
	return false
}

// walkStack traverses the AST below root, calling fn with each node and
// the stack of its ancestors (outermost first, not including n itself).
// fn returning false prunes the subtree. Analyzers use the stack to
// answer contextual questions plain ast.Inspect cannot, such as "is
// this selector a composite-literal key" or "which function declaration
// encloses this access".
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Pruned: Inspect sends no closing nil for a node whose visit
			// returned false, so nothing is pushed either.
			return false
		}
		stack = append(stack, n)
		return true
	})
}
