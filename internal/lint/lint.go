// Package lint is the analysis engine behind cmd/schedlint: a small,
// stdlib-only static-analysis framework (go/ast + go/types, packages
// located with `go list -json`) hosting the concurrency-invariant
// analyzers this runtime depends on.
//
// The paper's hybrid scheme is correct only because of delicate
// invariants — every partition claimed exactly once via the XOR walk,
// the steal-half CAS protocol on RangeSlot, a single-atomic-word
// cancellation token — and those invariants are invisible to the type
// system: one plain read of an atomically-written field, or one hot
// struct that silently loses its cache-line padding, reintroduces
// exactly the races and false sharing the design exists to avoid.
// Ordinary tests miss these failures (they are probabilistic and
// machine-dependent), so the invariants are enforced statically:
//
//   - atomicmix: a struct field or package-level variable whose address
//     is passed to sync/atomic anywhere in the module must never be
//     plainly read or written elsewhere.
//   - cacheline: structs annotated //sched:cacheline must have a size
//     that is a multiple of the 64-byte cache line per types.Sizes.
//   - loopcapture: closures passed as parallel loop bodies
//     (For/ForEach/ForErr/Reduce/...) must not plainly write variables
//     captured from outside the closure.
//   - looperr: the error results of ForErr/ForEachErr/ForCtx must not
//     be discarded.
//   - metricsample: a word registered with the metrics registry's
//     pointer-sampling collectors (metrics.SampleInt64) is read with
//     sync/atomic at scrape time, so it must never be plainly written.
//
// Deliberate violations are annotated in the source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it; the reason is
// mandatory, so every suppression documents why the code is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: which analyzer fired, where, and why.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check. Run receives the full set of
// loaded packages (analyses like atomicmix are module-wide: the atomic
// and the plain access of one field may live in different packages) and
// reports findings through the Context.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(ctx *Context)
}

// Analyzers lists every check cmd/schedlint runs, in output order.
var Analyzers = []*Analyzer{
	AtomicMix,
	CacheLine,
	LoopCapture,
	LoopErr,
	MetricSample,
}

// Context carries the loaded module through the analyzers and collects
// their findings. All packages share one token.FileSet, so positions
// are comparable across packages.
type Context struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	diags []Diagnostic

	current *Analyzer
}

// Reportf records a finding of the current analyzer at pos.
func (c *Context) Reportf(pos token.Pos, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Analyzer: c.current.Name,
		Pos:      c.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the given analyzers over the loaded packages and returns
// the surviving findings, suppressions applied, sorted by position.
func Run(ctx *Context, analyzers []*Analyzer) []Diagnostic {
	for _, a := range analyzers {
		ctx.current = a
		a.Run(ctx)
	}
	ctx.current = nil
	sup := collectSuppressions(ctx)
	kept := ctx.diags[:0]
	for _, d := range ctx.diags {
		if !sup.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	ctx.diags = kept
	return kept
}

// suppressions maps (file, line) to the analyzer names ignored there.
type suppressions map[string]map[int][]string

// collectSuppressions scans every file's comments for
// //lint:ignore <analyzer> <reason> directives. A directive with no
// reason is itself a finding: an undocumented suppression defeats the
// point of requiring one.
func collectSuppressions(ctx *Context) suppressions {
	sup := suppressions{}
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "lint:ignore") {
						continue
					}
					fields := strings.Fields(text)
					pos := ctx.Fset.Position(c.Pos())
					if len(fields) < 3 {
						ctx.diags = append(ctx.diags, Diagnostic{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "malformed directive: want //lint:ignore <analyzer> <reason>",
						})
						continue
					}
					byLine := sup[pos.Filename]
					if byLine == nil {
						byLine = map[int][]string{}
						sup[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], fields[1])
				}
			}
		}
	}
	return sup
}

// suppressed reports whether a matching ignore directive sits on the
// diagnostic's line or the line directly above it.
func (s suppressions) suppressed(d Diagnostic) bool {
	byLine := s[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// walkStack traverses the AST below root, calling fn with each node and
// the stack of its ancestors (outermost first, not including n itself).
// fn returning false prunes the subtree. Analyzers use the stack to
// answer contextual questions plain ast.Inspect cannot, such as "is
// this selector a composite-literal key" or "which function declaration
// encloses this access".
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Pruned: Inspect sends no closing nil for a node whose visit
			// returned false, so nothing is pushed either.
			return false
		}
		stack = append(stack, n)
		return true
	})
}
