package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc turns the hot paths' benchmark-only 0-alloc claims into a
// build-time guarantee: a function annotated //sched:noalloc must not
// contain a construct that forces a heap allocation. AllocsPerRun tests
// pin a handful of call sites on one machine; the annotation pins every
// line of the function on every machine, and survives refactors that
// the benchmarks never exercise.
//
// Flagged inside annotated functions (and their nested closures):
//
//   - make/new/append builtins and map index writes,
//   - slice and map composite literals, and &-taken composite literals,
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions,
//   - value-to-interface conversions at call arguments, assignments,
//     returns, and channel sends (constants, pointer-shaped values,
//     zero-size values, and interface-to-interface are exempt: none of
//     them box),
//   - closures that capture variables (a deferred closure outside any
//     loop is exempt — the compiler open-codes it on the stack),
//   - go statements, and defer inside a loop.
//
// The check is intra-procedural by design: a call is trusted, because
// the callee either carries its own annotation or was judged too cold
// to need one. Deliberate cold-path allocations inside an annotated
// function carry //lint:ignore noalloc <reason>.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "flags allocating constructs inside functions annotated //sched:noalloc",
	Run:  runNoAlloc,
}

func runNoAlloc(ctx *Context) {
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasDirective(fd.Doc, "sched:noalloc") {
					continue
				}
				name := fd.Name.Name
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					name = funcDisplay(obj)
				}
				nc := &noallocCheck{ctx: ctx, pkg: pkg, fn: name, decl: fd}
				nc.check()
			}
		}
	}
}

// hasDirective reports whether the comment group contains a line whose
// first field is the given machine-readable directive.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		fields := strings.Fields(text)
		if len(fields) > 0 && fields[0] == directive {
			return true
		}
	}
	return false
}

type noallocCheck struct {
	ctx  *Context
	pkg  *Package
	fn   string
	decl *ast.FuncDecl
}

func (nc *noallocCheck) reportf(pos token.Pos, format string, args ...any) {
	nc.ctx.Reportf(pos, "noalloc function %s: "+format, append([]any{nc.fn}, args...)...)
}

func (nc *noallocCheck) typeOf(e ast.Expr) types.Type {
	if tv, ok := nc.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (nc *noallocCheck) check() {
	walkStack(nc.decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			nc.call(n)
		case *ast.CompositeLit:
			nc.compositeLit(n, stack)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && nc.isNonConstString(n) {
				nc.reportf(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			nc.assign(n)
		case *ast.ValueSpec:
			if n.Type != nil {
				dst := nc.typeOf(n.Type)
				for _, v := range n.Values {
					nc.ifaceConv(dst, v, "assignment")
				}
			}
		case *ast.ReturnStmt:
			nc.returnStmt(n, stack)
		case *ast.SendStmt:
			if ch, ok := nc.typeOf(n.Chan).Underlying().(*types.Chan); ok {
				nc.ifaceConv(ch.Elem(), n.Value, "channel send")
			}
		case *ast.FuncLit:
			nc.funcLit(n, stack)
		case *ast.GoStmt:
			nc.reportf(n.Pos(), "go statement allocates a goroutine")
		case *ast.DeferStmt:
			if loopBetween(stack, nc.decl) {
				nc.reportf(n.Pos(), "defer inside a loop heap-allocates the deferred call")
			}
		}
		return true
	})
}

func (nc *noallocCheck) call(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := nc.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				nc.reportf(call.Pos(), "make allocates")
			case "new":
				nc.reportf(call.Pos(), "new allocates")
			case "append":
				nc.reportf(call.Pos(), "append may grow and reallocate the slice")
			}
			return
		}
	}
	// Conversions: T(x).
	if tv, ok := nc.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		dst, src := tv.Type, nc.typeOf(call.Args[0])
		if src == nil {
			return
		}
		if isStringSliceConv(dst, src) {
			nc.reportf(call.Pos(), "string/slice conversion copies and allocates")
			return
		}
		nc.ifaceConv(dst, call.Args[0], "conversion")
		return
	}
	// Ordinary calls: check each argument against the parameter type for
	// interface boxing, and flag variadic calls that materialize the
	// argument slice.
	ft := nc.typeOf(call.Fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	fixed := params.Len()
	if sig.Variadic() {
		fixed--
		if !call.Ellipsis.IsValid() && len(call.Args) > fixed {
			nc.reportf(call.Pos(), "variadic call allocates the argument slice")
		}
	}
	for i, arg := range call.Args {
		var dst types.Type
		switch {
		case i < fixed:
			dst = params.At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			dst = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case sig.Variadic():
			dst = params.At(params.Len() - 1).Type() // xs... spread: same type
		default:
			continue
		}
		nc.ifaceConv(dst, arg, "argument")
	}
}

func (nc *noallocCheck) compositeLit(lit *ast.CompositeLit, stack []ast.Node) {
	t := nc.typeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		nc.reportf(lit.Pos(), "slice literal allocates")
		return
	case *types.Map:
		nc.reportf(lit.Pos(), "map literal allocates")
		return
	}
	// A value struct/array literal lives in its assignment target; only
	// taking its address forces a (potential) heap allocation.
	if len(stack) > 0 {
		if un, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && un.Op == token.AND {
			nc.reportf(un.Pos(), "address-taken composite literal may escape to the heap")
		}
	}
}

func (nc *noallocCheck) assign(st *ast.AssignStmt) {
	if st.Tok == token.ADD_ASSIGN && len(st.Lhs) == 1 {
		if t := nc.typeOf(st.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				nc.reportf(st.Pos(), "string concatenation allocates")
			}
		}
	}
	for _, lhs := range st.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := nc.typeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					nc.reportf(lhs.Pos(), "map write may allocate (bucket growth)")
				}
			}
		}
	}
	if st.Tok == token.ASSIGN && len(st.Lhs) == len(st.Rhs) {
		for i := range st.Lhs {
			nc.ifaceConv(nc.typeOf(st.Lhs[i]), st.Rhs[i], "assignment")
		}
	}
}

func (nc *noallocCheck) returnStmt(ret *ast.ReturnStmt, stack []ast.Node) {
	results := enclosingResults(nc.pkg, stack, nc.decl)
	if results == nil || len(ret.Results) != results.Len() {
		return
	}
	for i, r := range ret.Results {
		nc.ifaceConv(results.At(i).Type(), r, "return")
	}
}

// funcLit flags closures that capture variables: the captured-variable
// record and the func value generally live on the heap once the closure
// leaves the frame (and every closure handed to Spawn does). A deferred
// closure outside any loop is exempt — the compiler open-codes the
// defer and keeps the closure on the stack.
func (nc *noallocCheck) funcLit(lit *ast.FuncLit, stack []ast.Node) {
	if deferredOutsideLoop(stack, nc.decl) {
		return
	}
	var captured []string
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := nc.pkg.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the closure
		}
		if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return true // package-level: static address, no capture record
		}
		seen[obj] = true
		captured = append(captured, obj.Name())
		return true
	})
	if len(captured) > 0 {
		nc.reportf(lit.Pos(), "closure captures %s and heap-allocates its environment", strings.Join(captured, ", "))
	}
}

// ifaceConv flags an implicit value-to-interface conversion of e into
// dst, which boxes the value on the heap. Exemptions are the cases the
// compiler provably does not box: constants (read-only static data),
// pointer-shaped values (stored directly in the interface word),
// zero-size values (shared singleton), nil, and values already behind
// an interface.
func (nc *noallocCheck) ifaceConv(dst types.Type, e ast.Expr, what string) {
	if dst == nil {
		return
	}
	if _, isTP := dst.(*types.TypeParam); isTP {
		return
	}
	if !types.IsInterface(dst) {
		return
	}
	tv, ok := nc.pkg.Info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return
	}
	src := tv.Type
	if types.IsInterface(src) || pointerShaped(src) {
		return
	}
	if nc.pkg.Sizes.Sizeof(src) == 0 {
		return
	}
	nc.reportf(e.Pos(), "%s converts %s to interface %s, boxing the value on the heap",
		what, types.TypeString(src, shortPkg), types.TypeString(dst, shortPkg))
}

func (nc *noallocCheck) isNonConstString(e *ast.BinaryExpr) bool {
	tv, ok := nc.pkg.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pointerShaped reports whether values of t fit in one pointer word and
// need no boxing when converted to an interface.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isStringSliceConv reports a string <-> []byte/[]rune conversion.
func isStringSliceConv(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteRuneSlice(src)) || (isByteRuneSlice(dst) && isStr(src))
}

// loopBetween reports whether a for/range statement sits between the
// top of stack and the function declaration fd.
func loopBetween(stack []ast.Node, fd *ast.FuncDecl) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncDecl, *ast.FuncLit:
			if stack[i] == ast.Node(fd) {
				return false
			}
			// A loop outside an intervening closure doesn't repeat the
			// defer per iteration of *this* frame.
			return false
		}
	}
	return false
}

// deferredOutsideLoop reports whether the node whose ancestors are
// stack is the immediate callee of a defer statement with no enclosing
// loop — the open-coded defer case.
func deferredOutsideLoop(stack []ast.Node, fd *ast.FuncDecl) bool {
	if len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	def, ok := stack[len(stack)-2].(*ast.DeferStmt)
	if !ok || def.Call != call {
		return false
	}
	return !loopBetween(stack[:len(stack)-2], fd)
}

// enclosingResults returns the result tuple of the innermost function
// enclosing the current node.
func enclosingResults(pkg *Package, stack []ast.Node, fd *ast.FuncDecl) *types.Tuple {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			if sig, ok := pkg.Info.Types[fn.Type].Type.(*types.Signature); ok {
				return sig.Results()
			}
			return nil
		case *ast.FuncDecl:
			if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
				return obj.Type().(*types.Signature).Results()
			}
			return nil
		}
	}
	if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		return obj.Type().(*types.Signature).Results()
	}
	return nil
}
