package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix enforces the runtime's single-discipline rule for shared
// words: a struct field or package-level variable whose address is
// passed to a sync/atomic function anywhere in the module is an atomic
// word, and every other access to it must go through sync/atomic too.
// A plain read of such a word is a data race the race detector only
// catches on the schedules that happen to exercise it, and a plain
// write can tear against a concurrent CAS — exactly the failure mode
// that breaks the claim-exactly-once and steal-half protocols.
//
// Initialization before publication is exempt: accesses inside
// functions named New*/new*/init and composite-literal keys are
// ignored, because a value not yet shared cannot race. Everything else
// needs a //lint:ignore atomicmix <reason> annotation.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags plain accesses to fields touched by sync/atomic elsewhere in the module",
	Run:  runAtomicMix,
}

// atomicUse records where a variable was used atomically, for the
// diagnostic message.
type atomicUse struct {
	name string // display name, e.g. sched.Worker.tasks
	pos  token.Position
}

func runAtomicMix(ctx *Context) {
	// Phase 1: collect every variable (struct field or package-level
	// var) whose address flows into a sync/atomic call, across the whole
	// module. Identity is the declaration's file:line:col — stable across
	// packages even when the same field is reached through the source
	// importer's independently type-checked copy of its package.
	atomicVars := map[string]atomicUse{}
	// skip marks the identifiers that *are* the atomic accesses, so
	// phase 2 does not flag the legitimate uses.
	skip := map[*ast.Ident]bool{}
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					id, obj := addressedVar(pkg, un.X)
					if id == nil || !trackable(pkg, obj) {
						continue
					}
					skip[id] = true
					key := ctx.Fset.Position(obj.Pos()).String()
					if _, seen := atomicVars[key]; !seen {
						atomicVars[key] = atomicUse{
							name: displayName(pkg, un.X, obj),
							pos:  ctx.Fset.Position(un.Pos()),
						}
					}
				}
				return true
			})
		}
	}
	if len(atomicVars) == 0 {
		return
	}
	// Phase 2: flag every remaining plain use of those variables.
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			walkStack(f, func(n ast.Node, stack []ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || skip[id] {
					return true
				}
				obj, ok := pkg.Info.Uses[id].(*types.Var)
				if !ok || !trackable(pkg, obj) {
					return true
				}
				use, tracked := atomicVars[ctx.Fset.Position(obj.Pos()).String()]
				if !tracked || exemptAtomicAccess(id, stack) {
					return true
				}
				ctx.Reportf(id.Pos(), "plain %s of %s, which is accessed with sync/atomic (e.g. at %s); use sync/atomic here too",
					accessKind(id, stack), use.name, use.pos)
				return true
			})
		}
	}
}

// isAtomicCall reports whether call invokes a function of sync/atomic.
func isAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// addressedVar resolves the &-operand x to the identifier naming the
// variable and its object: the Sel of a field selection, or a bare
// (possibly package-qualified) identifier.
func addressedVar(pkg *Package, x ast.Expr) (*ast.Ident, *types.Var) {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return x.Sel, v
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
			return x, v
		}
	}
	return nil, nil
}

// trackable limits the analysis to variables whose accesses are
// meaningfully cross-referenced module-wide: struct fields and
// package-level variables. Function-local words synchronized by a
// surrounding join are the caller's business.
func trackable(pkg *Package, v *types.Var) bool {
	if v == nil {
		return false
	}
	if v.IsField() {
		return true
	}
	return v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// displayName renders a readable identity for the variable: the
// receiver type for a field selection, or the qualified name.
func displayName(pkg *Package, x ast.Expr, v *types.Var) string {
	if sel, ok := x.(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok {
			t := s.Recv()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			return types.TypeString(t, shortPkg) + "." + v.Name()
		}
	}
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

// shortPkg qualifies type names with the package name rather than the
// full import path — diagnostics read better and stay stable when the
// module moves.
func shortPkg(p *types.Package) string { return p.Name() }

// exemptAtomicAccess reports whether the plain access at id is one of
// the sanctioned pre-publication forms: a composite-literal key or any
// access inside a constructor (New*/new*) or init function.
func exemptAtomicAccess(id *ast.Ident, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.KeyValueExpr:
			if n.Key == ast.Expr(id) {
				if i > 0 {
					if _, ok := stack[i-1].(*ast.CompositeLit); ok {
						return true
					}
				}
			}
		case *ast.FuncDecl:
			name := strings.ToLower(n.Name.Name)
			if strings.HasPrefix(name, "new") || name == "init" {
				return true
			}
		}
	}
	return false
}

// accessKind classifies the plain access for the message: write, read,
// or address-taken (an escaping pointer that may be dereferenced
// plainly anywhere).
func accessKind(id *ast.Ident, stack []ast.Node) string {
	// The effective expression is the field selection containing id, if
	// any; otherwise id itself.
	top := ast.Node(id)
	i := len(stack) - 1
	if i >= 0 {
		if sel, ok := stack[i].(*ast.SelectorExpr); ok && sel.Sel == id {
			top = sel
			i--
		}
	}
	if i < 0 {
		return "read"
	}
	switch parent := stack[i].(type) {
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == top {
				return "write"
			}
		}
	case *ast.IncDecStmt:
		if parent.X == top {
			return "write"
		}
	case *ast.UnaryExpr:
		if parent.Op == token.AND && parent.X == top {
			return "address-taking"
		}
	}
	return "read"
}
