package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Protocol checks atomic state machines against declared specifications.
// The runtime's lock-free protocols — the futex-style parking word, the
// RangeSlot steal-half CAS, the one-shot Canceller — are each a single
// atomic word whose legal transitions live only in the heads of the
// people who wrote them. A spec writes them down next to the field:
//
//	//sched:protocol parkword
//	//sched:state active = wActive
//	//sched:state parked = wParked
//	//sched:trans active -> parked
//	state atomic.Uint32
//
// and the analyzer resolves every CompareAndSwap/Store/Swap on that
// field across the whole module, constant-folds the arguments (through
// go/types and single-assignment locals, see constprop.go), and flags:
//
//   - a CAS whose (old, new) pair is not a declared transition,
//   - a Store/Swap of state S with no declared `any -> S` transition
//     (an unconditional write can fire from any current state),
//   - a constant argument matching no declared state,
//   - a non-constant argument when the spec declares no dynamic state,
//   - Add/Or/And arithmetic on the word,
//   - plain (non-atomic) writes to the field outside constructors.
//
// A state declared `= dyn` stands for "any non-constant value" — the
// RangeSlot's published word is a packed [lo,hi) pair that only the
// empty sentinel 0 distinguishes, so its spec is `empty = 0`,
// `published = dyn`.
var Protocol = &Analyzer{
	Name: "protocol",
	Doc:  "checks atomic fields annotated //sched:protocol against their declared state machines",
	Run:  runProtocol,
}

// protoState is one declared state: a name bound to a constant value,
// or to dyn (val == nil), meaning any value the analyzer cannot fold.
type protoState struct {
	name string
	val  constant.Value
	raw  string // the value token as written, for diagnostics and docs
}

// protoSpec is one parsed //sched:protocol block.
type protoSpec struct {
	name      string
	fieldName string // display name, e.g. sched.Worker.state
	fieldKey  string // position key of the field's types.Var
	pos       token.Pos
	states    []*protoState
	trans     map[[2]string]bool
	transList [][2]string // declaration order, for docs
	dynState  string      // name of the dyn state ("" if none)
}

// stateFor maps a folded argument value to a declared state name.
// v == nil means the argument did not fold; it maps to the dyn state
// if one is declared.
func (sp *protoSpec) stateFor(v constant.Value) (string, bool) {
	if v == nil {
		return sp.dynState, sp.dynState != ""
	}
	for _, st := range sp.states {
		if st.val != nil && constEq(st.val, v) {
			return st.name, true
		}
	}
	return "", false
}

func (sp *protoSpec) hasState(name string) bool {
	for _, st := range sp.states {
		if st.name == name {
			return true
		}
	}
	return false
}

func constEq(a, b constant.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	return constant.Compare(a, token.EQL, b)
}

// protoOp is one resolved atomic operation on a protocol field,
// retained for the generated documentation.
type protoOp struct {
	spec *protoSpec
	kind string // "CAS", "Store", "Swap", "Load"
	from string // CAS old state ("" for Store/Swap/Load)
	to   string // target state ("" for Load)
	fn   string // enclosing function, e.g. (*Worker).wake
	pos  token.Position
}

func runProtocol(ctx *Context) {
	specs := collectProtocolSpecs(ctx, true)
	if len(specs) == 0 {
		return
	}
	resolveProtocolOps(ctx, specs, true)
	checkProtocolPlainWrites(ctx, specs)
}

// collectProtocolSpecs parses every //sched:protocol annotation in the
// loaded packages. Specs hang off struct fields and package-level vars;
// the field's identity is its declaration position, stable across the
// source importer's duplicate package copies. report=false runs the
// same parse silently for the documentation generator.
func collectProtocolSpecs(ctx *Context, report bool) map[string]*protoSpec {
	specs := map[string]*protoSpec{}
	byName := map[string]*protoSpec{}
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.StructType:
					for _, field := range n.Fields.List {
						if field.Doc == nil || len(field.Names) == 0 {
							continue
						}
						obj, _ := pkg.Info.Defs[field.Names[0]].(*types.Var)
						parseProtocolSpec(ctx, pkg, field.Doc, obj, specs, byName, report)
					}
				case *ast.GenDecl:
					if n.Tok != token.VAR {
						return true
					}
					for _, s := range n.Specs {
						vs, ok := s.(*ast.ValueSpec)
						if !ok || len(vs.Names) == 0 {
							continue
						}
						doc := vs.Doc
						if doc == nil && len(n.Specs) == 1 {
							doc = n.Doc
						}
						if doc == nil {
							continue
						}
						obj, _ := pkg.Info.Defs[vs.Names[0]].(*types.Var)
						parseProtocolSpec(ctx, pkg, doc, obj, specs, byName, report)
					}
				}
				return true
			})
		}
	}
	return specs
}

func parseProtocolSpec(ctx *Context, pkg *Package, doc *ast.CommentGroup, obj *types.Var,
	specs map[string]*protoSpec, byName map[string]*protoSpec, report bool) {
	reportf := func(pos token.Pos, format string, args ...any) {
		if report {
			ctx.Reportf(pos, format, args...)
		}
	}
	var sp *protoSpec
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "sched:protocol":
			if len(fields) != 2 {
				reportf(c.Pos(), "malformed directive: want //sched:protocol <name>")
				continue
			}
			if obj == nil {
				reportf(c.Pos(), "//sched:protocol on an unnamed or untyped declaration")
				continue
			}
			name := fields[1]
			if prev, dup := byName[name]; dup {
				reportf(c.Pos(), "duplicate protocol name %q (also declared on %s)", name, prev.fieldName)
				continue
			}
			sp = &protoSpec{
				name:      name,
				fieldName: protoFieldDisplay(pkg, obj),
				fieldKey:  ctx.Fset.Position(obj.Pos()).String(),
				pos:       c.Pos(),
				trans:     map[[2]string]bool{},
			}
			specs[sp.fieldKey] = sp
			byName[name] = sp
		case "sched:state":
			if sp == nil {
				reportf(c.Pos(), "//sched:state before //sched:protocol in the same comment block")
				continue
			}
			if len(fields) != 4 || fields[2] != "=" {
				reportf(c.Pos(), "malformed directive: want //sched:state <name> = <value>")
				continue
			}
			name, raw := fields[1], fields[3]
			if name == "any" {
				reportf(c.Pos(), "state name %q is reserved for transitions", name)
				continue
			}
			if sp.hasState(name) {
				reportf(c.Pos(), "duplicate state %q in protocol %s", name, sp.name)
				continue
			}
			st := &protoState{name: name, raw: raw}
			switch {
			case raw == "dyn":
				if sp.dynState != "" {
					reportf(c.Pos(), "protocol %s declares a second dyn state %q (only one is resolvable)", sp.name, name)
					continue
				}
				sp.dynState = name
			case raw == "true" || raw == "false":
				st.val = constant.MakeBool(raw == "true")
			default:
				if i, err := strconv.ParseInt(raw, 0, 64); err == nil {
					st.val = constant.MakeInt64(i)
				} else if co, ok := pkg.Types.Scope().Lookup(raw).(*types.Const); ok {
					st.val = co.Val()
				} else {
					reportf(c.Pos(), "state value %q is neither a literal nor a package-level constant of %s", raw, pkg.Types.Name())
					continue
				}
			}
			sp.states = append(sp.states, st)
		case "sched:trans":
			if sp == nil {
				reportf(c.Pos(), "//sched:trans before //sched:protocol in the same comment block")
				continue
			}
			if len(fields) != 4 || fields[2] != "->" {
				reportf(c.Pos(), "malformed directive: want //sched:trans <from> -> <to>")
				continue
			}
			from, to := fields[1], fields[3]
			if from != "any" && !sp.hasState(from) {
				reportf(c.Pos(), "transition from undeclared state %q in protocol %s", from, sp.name)
				continue
			}
			if !sp.hasState(to) {
				reportf(c.Pos(), "transition to undeclared state %q in protocol %s", to, sp.name)
				continue
			}
			key := [2]string{from, to}
			if !sp.trans[key] {
				sp.trans[key] = true
				sp.transList = append(sp.transList, key)
			}
		}
	}
}

func protoFieldDisplay(pkg *Package, obj *types.Var) string {
	if obj.IsField() {
		// Find the named type owning the field by scanning the package
		// scope; falls back to the bare name for anonymous structs.
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == obj {
					return pkg.Types.Name() + "." + tn.Name() + "." + obj.Name()
				}
			}
		}
		return pkg.Types.Name() + "." + obj.Name()
	}
	return pkg.Types.Name() + "." + obj.Name()
}

// atomicMethods classifies the sync/atomic type methods by the checks
// they need. Package-level sync/atomic functions reduce to the same
// kinds by name prefix.
var atomicMethods = map[string]string{
	"Load":           "Load",
	"Store":          "Store",
	"Swap":           "Swap",
	"CompareAndSwap": "CAS",
	"Add":            "RMW",
	"Or":             "RMW",
	"And":            "RMW",
}

// resolveProtocolOps finds every sync/atomic operation on a spec'd
// field — method form (w.state.CompareAndSwap(a, b)) and package-
// function form (atomic.StoreUint32(&w.state, v)) — checks it against
// the spec when report is true, and returns the resolved ops for the
// documentation generator.
func resolveProtocolOps(ctx *Context, specs map[string]*protoSpec, report bool) []protoOp {
	var ops []protoOp
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			walkStack(f, func(n ast.Node, stack []ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				var obj *types.Var
				var kind string
				var valArgs []ast.Expr
				if k, isMethod := atomicMethods[fn.Name()]; isMethod && fn.Type().(*types.Signature).Recv() != nil {
					obj = protoFieldOperand(pkg, sel.X)
					kind = k
					valArgs = call.Args
				} else if fn.Type().(*types.Signature).Recv() == nil {
					// atomic.StoreUint32(&f, v) and friends.
					for prefix, k := range atomicMethods {
						if strings.HasPrefix(fn.Name(), prefix) {
							kind = k
							break
						}
					}
					if kind == "" || len(call.Args) == 0 {
						return true
					}
					un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						return true
					}
					obj = protoFieldOperand(pkg, un.X)
					valArgs = call.Args[1:]
				}
				if obj == nil {
					return true
				}
				sp, ok := specs[ctx.Fset.Position(obj.Pos()).String()]
				if !ok {
					return true
				}
				op := checkProtocolOp(ctx, pkg, sp, kind, call, valArgs, stack, report)
				if op != nil {
					ops = append(ops, *op)
				}
				return true
			})
		}
	}
	return ops
}

// protoFieldOperand resolves the receiver/operand expression of an
// atomic op to the underlying variable: the Sel of a field selection
// (handling chains like ps.flags[r].v) or a bare identifier.
func protoFieldOperand(pkg *Package, x ast.Expr) *types.Var {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		v, _ := pkg.Info.Uses[x.Sel].(*types.Var)
		return v
	case *ast.Ident:
		v, _ := pkg.Info.Uses[x].(*types.Var)
		return v
	case *ast.StarExpr:
		return protoFieldOperand(pkg, x.X)
	}
	return nil
}

// checkProtocolOp validates one resolved atomic op against the spec and
// returns it for documentation (nil for RMW ops, which are findings,
// not protocol steps).
func checkProtocolOp(ctx *Context, pkg *Package, sp *protoSpec, kind string,
	call *ast.CallExpr, valArgs []ast.Expr, stack []ast.Node, report bool) *protoOp {
	reportf := func(pos token.Pos, format string, args ...any) {
		if report {
			ctx.Reportf(pos, format, args...)
		}
	}
	body, fnName := enclosingFunc(pkg, stack)
	op := &protoOp{spec: sp, kind: kind, fn: fnName, pos: ctx.Fset.Position(call.Pos())}

	resolve := func(e ast.Expr, role string) (string, bool) {
		v, _ := constValueOf(pkg, body, e)
		st, ok := sp.stateFor(v)
		if ok {
			return st, true
		}
		if v != nil {
			reportf(e.Pos(), "protocol %s: %s value %s matches no declared state of %s", sp.name, role, v.ExactString(), sp.fieldName)
		} else {
			reportf(e.Pos(), "protocol %s: non-constant %s value on %s and no dyn state is declared", sp.name, role, sp.fieldName)
		}
		return "", false
	}

	switch kind {
	case "Load":
		return op
	case "RMW":
		reportf(call.Pos(), "protocol %s: arithmetic/bitwise atomic op on %s; protocol words move only by Store/Swap/CompareAndSwap of declared states", sp.name, sp.fieldName)
		return nil
	case "Store", "Swap":
		if len(valArgs) != 1 {
			return nil
		}
		st, ok := resolve(valArgs[0], "stored")
		if !ok {
			return nil
		}
		op.to = st
		if !sp.trans[[2]string{"any", st}] {
			reportf(call.Pos(), "protocol %s: %s of state %s on %s but no `any -> %s` transition is declared (an unconditional write can fire from any state)",
				sp.name, kind, st, sp.fieldName, st)
		}
		return op
	case "CAS":
		if len(valArgs) != 2 {
			return nil
		}
		from, okf := resolve(valArgs[0], "compare (old)")
		to, okt := resolve(valArgs[1], "swap (new)")
		if !okf || !okt {
			return nil
		}
		op.from, op.to = from, to
		if !sp.trans[[2]string{from, to}] && !sp.trans[[2]string{"any", to}] {
			reportf(call.Pos(), "protocol %s: undeclared transition %s -> %s on %s", sp.name, from, to, sp.fieldName)
		}
		return op
	}
	return nil
}

// enclosingFunc returns the innermost function body containing the
// current node (for local constant propagation) and the name of the
// innermost enclosing function declaration (for documentation).
func enclosingFunc(pkg *Package, stack []ast.Node) (*ast.BlockStmt, string) {
	var body *ast.BlockStmt
	name := "package scope"
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			if body == nil {
				body = fn.Body
			}
		case *ast.FuncDecl:
			if body == nil {
				body = fn.Body
			}
			if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
				name = funcDisplay(obj)
			} else {
				name = fn.Name.Name
			}
			return body, name
		}
	}
	return body, name
}

// funcDisplay renders (*Worker).wake / sched.notify style names.
func funcDisplay(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s", types.TypeString(sig.Recv().Type(), shortPkg), fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// checkProtocolPlainWrites flags non-atomic writes to spec'd fields:
// assigning over an atomic word (or the struct holding it) bypasses the
// state machine entirely. Constructor/init code is exempt, matching
// atomicmix's pre-publication rule.
func checkProtocolPlainWrites(ctx *Context, specs map[string]*protoSpec) {
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			walkStack(f, func(n ast.Node, stack []ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj, ok := pkg.Info.Uses[id].(*types.Var)
				if !ok {
					return true
				}
				sp, tracked := specs[ctx.Fset.Position(obj.Pos()).String()]
				if !tracked || exemptAtomicAccess(id, stack) {
					return true
				}
				if accessKind(id, stack) != "write" {
					return true
				}
				ctx.Reportf(id.Pos(), "protocol %s: plain write to %s bypasses the declared state machine; use its atomic ops", sp.name, sp.fieldName)
				return true
			})
		}
	}
}
