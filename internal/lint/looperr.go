package lint

import (
	"go/ast"
)

// LoopErr flags discarded results of the fallible loop entry points.
// ForErr/ForEachErr/ForCtx exist to deliver the first body error (or
// the context's cancellation cause) to the caller; a call statement
// that drops the result silently converts "the loop stopped after an
// error, an unspecified subset of iterations never ran" into "the loop
// completed" — a correctness bug invisible at the call site. Explicit
// discards (_ = p.ForErr(...)) are permitted: they survive code review,
// an ignored ExprStmt does not. defer and go statements of these calls
// discard the result by construction and are flagged too.
var LoopErr = &Analyzer{
	Name: "looperr",
	Doc:  "flags ignored error results of ForErr/ForEachErr/ForCtx/TryFor",
	Run:  runLoopErr,
}

// fallibleLoops are the loop entry points whose error result must be
// consumed, by full callee name.
var fallibleLoops = map[string]bool{
	"(*hybridloop.Pool).ForErr":     true,
	"(*hybridloop.Pool).ForEachErr": true,
	"(*hybridloop.Pool).ForCtx":     true,
	// TryFor's error is the admission verdict: dropping it turns "the
	// gate rejected this loop, nothing ran" into "the loop completed".
	"(*hybridloop.Pool).TryFor": true,
}

func runLoopErr(ctx *Context) {
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				var how string
				switch st := n.(type) {
				case *ast.ExprStmt:
					call, _ = ast.Unparen(st.X).(*ast.CallExpr)
					how = "ignored"
				case *ast.DeferStmt:
					call, how = st.Call, "discarded by defer"
				case *ast.GoStmt:
					call, how = st.Call, "discarded by go"
				default:
					return true
				}
				if call == nil {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil || !fallibleLoops[fn.FullName()] {
					return true
				}
				ctx.Reportf(call.Pos(),
					"error result of %s %s: the first body error (or cancellation cause) is lost and the loop's truncation goes unnoticed",
					fn.Name(), how)
				return true
			})
		}
	}
}
