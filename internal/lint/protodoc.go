package lint

import (
	"fmt"
	"sort"
	"strings"
)

// Markers delimiting the generated protocol section in DESIGN.md.
// Everything between them is owned by `schedlint -protodoc`; hand edits
// there are overwritten.
const (
	ProtoDocBegin = "<!-- BEGIN GENERATED: protocol-tables (schedlint -protodoc) -->"
	ProtoDocEnd   = "<!-- END GENERATED: protocol-tables -->"
)

// ProtocolDoc renders the declared protocols and their observed atomic
// operations as the markdown section DESIGN.md embeds. The tables are
// generated from the same spec parse and op resolution the protocol
// analyzer checks against, so the documentation cannot drift from what
// is enforced. Observed operations are attributed to their enclosing
// functions, not line numbers, so the section stays stable under
// unrelated edits.
func ProtocolDoc(ctx *Context) string {
	specs := collectProtocolSpecs(ctx, false)
	ops := resolveProtocolOps(ctx, specs, false)

	ordered := make([]*protoSpec, 0, len(specs))
	for _, sp := range specs {
		ordered = append(ordered, sp)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].name < ordered[j].name })

	// transition -> sorted unique "Kind in fn" attributions; plus the
	// read-only observers per spec.
	type transKey struct {
		spec     *protoSpec
		from, to string
	}
	attrib := map[transKey]map[string]bool{}
	loads := map[*protoSpec]map[string]bool{}
	for _, op := range ops {
		if op.kind == "Load" {
			if loads[op.spec] == nil {
				loads[op.spec] = map[string]bool{}
			}
			loads[op.spec][op.fn] = true
			continue
		}
		from := op.from
		if from == "" {
			from = "any"
		}
		k := transKey{op.spec, from, op.to}
		if attrib[k] == nil {
			attrib[k] = map[string]bool{}
		}
		attrib[k][fmt.Sprintf("`%s` in `%s`", op.kind, op.fn)] = true
	}
	sortedSet := func(m map[string]bool) []string {
		out := make([]string, 0, len(m))
		for s := range m {
			out = append(out, s)
		}
		sort.Strings(out)
		return out
	}

	var b strings.Builder
	b.WriteString(ProtoDocBegin + "\n\n")
	for _, sp := range ordered {
		fmt.Fprintf(&b, "#### Protocol `%s` — `%s`\n\n", sp.name, sp.fieldName)
		b.WriteString("| state | value |\n|---|---|\n")
		for _, st := range sp.states {
			fmt.Fprintf(&b, "| %s | `%s` |\n", st.name, st.raw)
		}
		b.WriteString("\n| transition | performed by |\n|---|---|\n")
		// Declared transitions first, in declaration order; any observed
		// `any ->` op not literally declared rides under its `any` row.
		for _, tr := range sp.transList {
			who := sortedSet(attrib[transKey{sp, tr[0], tr[1]}])
			cell := "—"
			if len(who) > 0 {
				cell = strings.Join(who, ", ")
			}
			fmt.Fprintf(&b, "| %s → %s | %s |\n", tr[0], tr[1], cell)
		}
		if obs := sortedSet(loads[sp]); len(obs) > 0 {
			fmt.Fprintf(&b, "\nRead-only observers (`Load`): %s.\n", strings.Join(obs, ", "))
		}
		b.WriteString("\n")
	}
	b.WriteString(ProtoDocEnd + "\n")
	return b.String()
}

// SpliceProtocolDoc replaces the marked generated section inside a
// DESIGN.md body with the given section, returning the new content. An
// error means the markers are missing or out of order — the document
// has no slot for the generated tables.
func SpliceProtocolDoc(content, section string) (string, error) {
	begin := strings.Index(content, ProtoDocBegin)
	end := strings.Index(content, ProtoDocEnd)
	if begin < 0 || end < 0 || end < begin {
		return "", fmt.Errorf("missing or misordered %q / %q markers", ProtoDocBegin, ProtoDocEnd)
	}
	rest := strings.TrimPrefix(content[end+len(ProtoDocEnd):], "\n")
	return content[:begin] + section + rest, nil
}
