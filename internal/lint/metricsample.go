package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MetricSample closes a gap atomicmix cannot see: the metrics registry's
// pointer-sampling collectors (metrics.SampleInt64) read the registered
// word with atomic.LoadInt64 at scrape time, concurrently with whatever
// goroutine owns it. The atomic access is inside the metrics package,
// applied to a parameter — so atomicmix never learns that the caller's
// field is an atomic word, and a plain `x++` on it compiles, passes
// tests, and tears against a scrape on a bad schedule.
//
// The check mirrors atomicmix's two-phase shape: collect every variable
// whose address flows into a metrics sampling call anywhere in the
// module, then flag plain writes to those variables. Reads are left to
// atomicmix (they only become races once the writes are atomic), and
// writes inside New*/init functions are exempt for the usual
// pre-publication reason — registration itself normally happens there
// too.
var MetricSample = &Analyzer{
	Name: "metricsample",
	Doc:  "flags plain writes to words registered for atomic metrics sampling",
	Run:  runMetricSample,
}

func runMetricSample(ctx *Context) {
	// Phase 1: every trackable variable whose address is an argument to a
	// metrics sampling call is sampled atomically at scrape time.
	sampled := map[string]atomicUse{}
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isMetricSampleCall(pkg, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					id, obj := addressedVar(pkg, un.X)
					if id == nil || !trackable(pkg, obj) {
						continue
					}
					key := ctx.Fset.Position(obj.Pos()).String()
					if _, seen := sampled[key]; !seen {
						sampled[key] = atomicUse{
							name: displayName(pkg, un.X, obj),
							pos:  ctx.Fset.Position(un.Pos()),
						}
					}
				}
				return true
			})
		}
	}
	if len(sampled) == 0 {
		return
	}
	// Phase 2: flag plain writes. Atomic mutation (atomic.AddInt64(&x, 1))
	// passes &x, which classifies as address-taking, not write, so the
	// sanctioned discipline is never flagged.
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			walkStack(f, func(n ast.Node, stack []ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj, ok := pkg.Info.Uses[id].(*types.Var)
				if !ok || !trackable(pkg, obj) {
					return true
				}
				use, tracked := sampled[ctx.Fset.Position(obj.Pos()).String()]
				if !tracked || accessKind(id, stack) != "write" || exemptAtomicAccess(id, stack) {
					return true
				}
				ctx.Reportf(id.Pos(), "plain write to %s, which is sampled atomically by the metrics registry (registered at %s); use sync/atomic here",
					use.name, use.pos)
				return true
			})
		}
	}
}

// isMetricSampleCall reports whether call invokes a pointer-sampling
// registration of the metrics package (currently Registry.SampleInt64).
// Matching by package-path suffix keeps the check working from the
// fixture packages, which import the real metrics package through the
// source importer under the same path.
func isMetricSampleCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/metrics") {
		return false
	}
	return strings.HasPrefix(fn.Name(), "Sample")
}
