// Package looperr is the golden-file fixture for the looperr analyzer:
// dropped ForErr/ForEachErr/ForCtx results (positive cases), consumed
// and explicitly discarded results (negative cases), and a suppressed
// deliberate drop.
package looperr

import (
	"context"

	"hybridloop"
)

func fail(i int) error { return nil }

func ignored(p *hybridloop.Pool, ctx context.Context, n int) {
	p.ForErr(0, n, func(lo, hi int) error { return nil })       // want: ignored
	p.ForEachErr(0, n, fail)                                    // want: ignored
	p.ForCtx(ctx, 0, n, func(lo, hi int) {})                    // want: ignored
	defer p.ForErr(0, n, func(lo, hi int) error { return nil }) // want: discarded by defer
	go p.ForEachErr(0, n, fail)                                 // want: discarded by go
}

func consumed(p *hybridloop.Pool, ctx context.Context, n int) error {
	if err := p.ForErr(0, n, func(lo, hi int) error { return nil }); err != nil {
		return err
	}
	err := p.ForEachErr(0, n, fail)
	// An explicit blank assignment is a reviewable, deliberate discard.
	_ = p.ForCtx(ctx, 0, n, func(lo, hi int) {})
	// For has no error result; nothing to check.
	p.For(0, n, func(lo, hi int) {})
	return err
}

func admission(p *hybridloop.Pool, n int) error {
	p.TryFor(0, n, func(lo, hi int) {}) // want: the admission verdict is lost
	// Consumed: rejection and completion stay distinguishable.
	return p.TryFor(0, n, func(lo, hi int) {})
}

func suppressed(p *hybridloop.Pool, n int) {
	//lint:ignore looperr error path exercised separately in tests
	p.ForErr(0, n, func(lo, hi int) error { return nil })
}
