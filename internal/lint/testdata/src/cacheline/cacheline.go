// Package cacheline is the golden-file fixture for the cacheline
// analyzer: unpadded is annotated but 16 bytes (positive), padded and
// exact are correctly sized (negative), unannotated is never checked,
// and the suppressed case shows an annotated deliberate violation.
package cacheline

import "sync/atomic"

// unpadded is a hot per-worker slot missing its padding.
//
//sched:cacheline
type unpadded struct { // want: 16 bytes, add 48
	v     atomic.Uint64
	owner int32
}

// padded is the corrected form.
//
//sched:cacheline
type padded struct {
	v     atomic.Uint64
	owner int32
	_     [52]byte
}

// exact is 64 bytes with no explicit padding field.
//
//sched:cacheline
type exact struct {
	a, b, c, d, e, f, g, h int64
}

// unannotated is small and unpadded, but carries no annotation, so the
// analyzer must not touch it.
type unannotated struct {
	v atomic.Uint32
}

// notAStruct is annotated but not a struct: the annotation itself is
// the defect.
//
//sched:cacheline
type notAStruct int64 // want: not a struct

// tiny is a deliberate violation kept for the suppression case.
//
//sched:cacheline
//lint:ignore cacheline single instance, never in an array
type tiny struct {
	v atomic.Uint32
}

var _ = []any{unpadded{}, padded{}, exact{}, unannotated{}, notAStruct(0), tiny{}}
