// Package loopcapture is the golden-file fixture for the loopcapture
// analyzer: racy sums into captured variables (positive cases),
// disjoint-element writes and closure-local accumulators (negative
// cases), and a mutex-guarded write with a suppression annotation.
package loopcapture

import (
	"sync"

	"hybridloop"
)

func racy(p *hybridloop.Pool, data []float64) float64 {
	sum := 0.0
	count := 0
	p.ForEach(0, len(data), func(i int) {
		sum += data[i] // want: captured write
		count++        // want: captured write
	})
	p.For(0, len(data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum = sum + data[i] // want: captured write
		}
	})
	hybridloop.Sum(p, 0, len(data), func(i int) float64 {
		count-- // want: captured write even inside Sum's value func
		return data[i]
	})
	return sum + float64(count)
}

func racyNested(p *hybridloop.Pool, data []float64) int {
	worst := 0
	p.ForWorker(0, len(data), func(w *hybridloop.Worker, lo, hi int) {
		helper := func() {
			worst = hi // want: captured write through a nested closure
		}
		helper()
	})
	return worst
}

func clean(p *hybridloop.Pool, in, out []float64) float64 {
	p.ForEach(0, len(in), func(i int) {
		out[i] = in[i] * 2 // disjoint element write: fine
	})
	p.For(0, len(in), func(lo, hi int) {
		local := 0.0 // closure-local accumulator: fine
		for i := lo; i < hi; i++ {
			local += in[i]
		}
		out[lo] = local
	})
	// Reduce's combine runs sequentially on the caller; writes there
	// are not parallel.
	acc := 0.0
	return hybridloop.Reduce(p, 0, len(in), 0, 0.0,
		func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += in[i]
			}
			return s
		},
		func(a, b float64) float64 {
			acc = a + b // sequential combine: fine
			return acc
		})
}

func suppressedWrite(p *hybridloop.Pool, data []float64) float64 {
	var mu sync.Mutex
	sum := 0.0
	p.For(0, len(data), func(lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += data[i]
		}
		mu.Lock()
		//lint:ignore loopcapture guarded by mu
		sum += s
		mu.Unlock()
	})
	return sum
}
