// Package protocol is the golden-file fixture for the protocol
// analyzer: declared transitions and folded constants pass, undeclared
// transitions, off-spec stores, arithmetic ops, and plain writes are
// reported, and one deliberate violation is suppressed.
package protocol

import "sync/atomic"

const (
	gIdle    = 0
	gRunning = 1
	gDone    = 2
)

func external() uint32

// gate is a fully constant protocol word.
type gate struct {
	//sched:protocol gate
	//sched:state idle = gIdle
	//sched:state running = gRunning
	//sched:state done = gDone
	//sched:trans idle -> running
	//sched:trans running -> done
	//sched:trans any -> idle
	word atomic.Uint32
}

func declared(g *gate) {
	g.word.CompareAndSwap(gIdle, gRunning) // declared transition
	g.word.CompareAndSwap(gRunning, gDone) // declared transition
	g.word.Store(gIdle)                    // any -> idle is declared
	_ = g.word.Load()                      // loads are always legal
}

// folded proves constants reach the checker through single-assignment
// locals, not only literal arguments.
func folded(g *gate) {
	next := uint32(gDone)
	g.word.CompareAndSwap(gRunning, next) // folds to running -> done
}

func violations(g *gate) {
	g.word.CompareAndSwap(gDone, gRunning) // want: undeclared transition done -> running
	g.word.Store(gRunning)                 // want: no any -> running transition
	g.word.Store(7)                        // want: 7 matches no declared state
	g.word.Add(1)                          // want: arithmetic on a protocol word
	v := external()
	g.word.Store(v) // want: non-constant store, no dyn state declared
}

func plainWrite(g *gate) {
	g.word = atomic.Uint32{} // want: plain write bypasses the state machine
}

func suppressed(g *gate) {
	//lint:ignore protocol deliberate off-spec probe for the fixture
	g.word.Store(gRunning)
}

// slot has a dyn state: any non-constant value is "full".
type slot struct {
	//sched:protocol slot
	//sched:state empty = 0
	//sched:state full = dyn
	//sched:trans empty -> full
	//sched:trans any -> empty
	v atomic.Uint64
}

func publish(s *slot, w uint64) {
	s.v.CompareAndSwap(0, w) // empty -> full: w is the dyn state
	s.v.Store(0)             // any -> empty is declared
}

// badspec exercises the spec parser's own diagnostics.
type badspec struct {
	//sched:protocol badspec
	//sched:state any = 1
	//sched:state a = 0
	//sched:state a = 2
	//sched:state b = nosuchconst
	//sched:trans a -> missing
	w atomic.Uint32
}
