// Package suppress exercises the suppression engine itself: a
// malformed directive (missing the mandatory reason) is reported as a
// finding, and a directive naming the wrong analyzer does not suppress
// anything.
package suppress

import "sync/atomic"

//lint:ignore cacheline
// ^ malformed: no reason given; want a "lint" diagnostic.

// mismatch stays flagged: the directive below names the wrong analyzer.
//
//sched:cacheline
//lint:ignore atomicmix wrong analyzer name, must not suppress
type mismatch struct { // want: cacheline finding survives
	v atomic.Uint32
}

var _ = mismatch{}
