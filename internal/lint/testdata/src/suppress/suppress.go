// Package suppress exercises the suppression engine itself: malformed
// and unknown-analyzer directives are reported as findings, a directive
// naming the wrong analyzer does not suppress anything (and is reported
// stale), a comma list binds several analyzers to one line with
// per-name staleness, and stacked directive lines are transparent — a
// directive reaches past other directives to the code below.
package suppress

import "sync/atomic"

//lint:ignore cacheline
// ^ malformed: no reason given; want a "lint" diagnostic.

// mismatch stays flagged: the directive below names the wrong analyzer,
// which also makes the directive itself stale.
//
//sched:cacheline
//lint:ignore atomicmix wrong analyzer name, must not suppress
type mismatch struct { // want: cacheline finding survives + stale directive
	v atomic.Uint32
}

// unknownName stays flagged too, and the typoed analyzer name is its
// own finding — a misspelled suppression must not fail silently.
//
//sched:cacheline
//lint:ignore nosuchanalyzer typo in the analyzer name
type unknownName struct { // want: cacheline survives + unknown analyzer
	v atomic.Uint32
}

// commaList: one directive, two analyzers. cacheline is used by the
// finding below; looperr matches nothing and is reported stale —
// staleness is tracked per name, not per directive.
//
//sched:cacheline
//lint:ignore cacheline,looperr alignment is a non-goal in this fixture
type commaList struct {
	v atomic.Uint32
}

// stacked: consecutive directive lines are transparent, so the first
// directive still binds to the type declaration two lines down and
// suppresses its cacheline finding; the second matches nothing and is
// reported stale.
//
//sched:cacheline
//lint:ignore cacheline alignment is a non-goal in this fixture
//lint:ignore looperr stale on purpose: nothing fallible on this line
type stacked struct {
	v atomic.Uint32
}

var _ = mismatch{}
var _ = unknownName{}
var _ = commaList{}
var _ = stacked{}
