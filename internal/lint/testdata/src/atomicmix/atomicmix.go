// Package atomicmix is the golden-file fixture for the atomicmix
// analyzer: counters mixes atomic and plain access to the same field
// (positive cases), cleanCounters keeps the disciplines separate
// (negative cases), and the suppressed section shows an annotated
// deliberate violation.
package atomicmix

import "sync/atomic"

type counters struct {
	hits   int64 // accessed via sync/atomic in bump; plain access is a race
	misses int64
	plain  int64 // never touched atomically; plain access is fine
}

// globalHits is a package-level atomic word.
var globalHits int64

// bump establishes hits, misses and globalHits as atomic words.
func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&globalHits, 1)
	if atomic.LoadInt64(&c.misses) > 0 {
		atomic.StoreInt64(&c.misses, 0)
	}
}

// broken performs the plain accesses the analyzer must flag.
func broken(c *counters) int64 {
	c.hits++       // want: plain write
	c.misses = 3   // want: plain write
	globalHits = 0 // want: plain write of the package-level word
	p := &c.hits   // want: plain address-taking
	_ = p
	return c.hits + globalHits // want: two plain reads
}

// clean shows the accesses that must NOT be flagged.
func clean(c *counters) int64 {
	c.plain++ // never atomic: fine
	return atomic.LoadInt64(&c.hits) + c.plain
}

// newCounters is constructor scope: plain initialization before the
// value is published cannot race and is exempt.
func newCounters() *counters {
	c := &counters{hits: 1} // composite-literal key: exempt
	c.misses = 0            // constructor scope: exempt
	return c
}

// suppressed shows a documented deliberate violation.
func suppressed(c *counters) int64 {
	//lint:ignore atomicmix read under the stop-the-world lock in tests
	return c.hits
}
