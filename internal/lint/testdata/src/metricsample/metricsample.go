// Package metricsample is the golden-file fixture for the metricsample
// analyzer: served, dropped and globalRetries are registered with the
// registry's atomic pointer-sampling collector and then plainly written
// (positive cases — note no sync/atomic call in this package touches
// them, so atomicmix is blind to all three), unregistered stays plain
// throughout (negative case), acked shows the sanctioned atomic
// discipline, and the suppressed section shows an annotated deliberate
// violation.
package metricsample

import (
	"sync/atomic"

	"hybridloop/internal/metrics"
)

type server struct {
	served       int64 // sampled by the registry; plain writes race with scrapes
	dropped      int64 // likewise
	acked        int64 // sampled and mutated atomically: the correct discipline
	unregistered int64 // never sampled; plain access is fine
}

// globalRetries is a sampled package-level word.
var globalRetries int64

// newServer registers the sampled words. The registration itself takes
// their addresses, and the zeroing write is pre-publication — neither
// may be flagged.
func newServer(r *metrics.Registry) *server {
	s := &server{}
	s.served = 0
	r.SampleInt64("fixture_served_total", "requests served", nil, &s.served)
	r.SampleInt64("fixture_dropped_total", "requests dropped", nil, &s.dropped)
	r.SampleInt64("fixture_acked_total", "requests acked", nil, &s.acked)
	r.SampleInt64("fixture_retries_total", "global retries", nil, &globalRetries)
	return s
}

// broken performs the plain writes the analyzer must flag.
func (s *server) broken() {
	s.served++          // want: plain write
	s.dropped = 7       // want: plain write
	globalRetries += 2  // want: plain write
	s.unregistered += 1 // fine: never registered for sampling
}

// disciplined mutates a sampled word the sanctioned way; the &-arg to
// sync/atomic classifies as address-taking, not a write. The plain read
// of served is also fine — reads only become races once the writes are
// atomic, at which point atomicmix takes over.
func (s *server) disciplined() int64 {
	atomic.AddInt64(&s.acked, 1)
	return s.served
}

// tornButJustified shows the suppression form: the write races in
// principle but the author has taken responsibility in writing.
func (s *server) tornButJustified() {
	//lint:ignore metricsample fixture demonstrating an annotated suppression
	s.dropped = -1
}
