// Package lockorder is the golden-file fixture for the lockorder
// analyzer: an A->B / B->A ordering disagreement (reported once as a
// cycle), a conditional return that leaks a lock, recursive
// acquisition both directly and through a callee, and a deliberate
// lock handoff under suppression.
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

func lockAB() { // establishes muA -> muB
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func lockBA() { // want: cycle with lockAB, reported at the earlier edge
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

func lockA() {
	muA.Lock()
	muA.Unlock()
}

func heldAcrossCall() { // want: muA held across a call that reacquires it
	muA.Lock()
	lockA()
	muA.Unlock()
}

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) leak(cond bool) { // want: not released on the early return
	b.mu.Lock()
	if cond {
		return
	}
	b.mu.Unlock()
}

func (b *box) deferred() int { // deferred unlock covers every path
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n > 0 {
		return b.n
	}
	return 0
}

func (b *box) deferredClosure() { // unlock inside a deferred closure counts
	b.mu.Lock()
	defer func() {
		b.n++
		b.mu.Unlock()
	}()
}

func (b *box) recursive() { // want: second Lock self-deadlocks
	b.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	b.mu.Unlock()
}

func (b *box) panics() { // a panic exit is a crash, not a leaked return
	b.mu.Lock()
	if b.n < 0 {
		panic("negative")
	}
	b.mu.Unlock()
}

func (b *box) handoff() {
	//lint:ignore lockorder the lock is handed to the caller by contract
	b.mu.Lock()
}
