// Package broken deliberately fails to type-check: the loader test
// asserts that Load refuses to analyze a reduced package set and says
// why, instead of silently dropping this package.
package broken

func oops() int {
	return "not an int"
}
