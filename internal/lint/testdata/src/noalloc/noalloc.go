// Package noalloc is the golden-file fixture for the noalloc analyzer:
// every allocating construct fires inside an annotated function, an
// identical unannotated function stays silent, the provably non-boxing
// interface conversions pass, and one cold-path allocation is
// suppressed.
package noalloc

import "sync/atomic"

type point struct{ x, y int }

func variadic(xs ...int) int { return len(xs) }

func sink(v any)

//sched:noalloc
func allocating(m map[int]int, s string, b []byte, n int) string {
	_ = make([]int, n)    // want: make
	_ = new(point)        // want: new
	b = append(b, 1)      // want: append
	m[1] = 2              // want: map write
	_ = []int{1, 2}       // want: slice literal
	_ = map[int]int{1: 2} // want: map literal
	p := &point{x: 1}     // want: address-taken composite literal
	_ = p
	t := s + string(b) // want: concatenation + string conversion
	_ = t
	_ = variadic(1, 2, n) // want: variadic argument slice
	sink(n)               // want: int boxed into any
	k := n
	f := func() int { return k } // want: closure captures k
	go f()                       // want: go statement
	for i := 0; i < n; i++ {
		defer f() // want: defer inside a loop
	}
	return s
}

// identical constructs outside an annotation are not the analyzer's
// business.
func unannotated(n int) []int {
	return make([]int, n)
}

//sched:noalloc
func clean(w *atomic.Uint64, p *point, n int) int {
	w.Store(uint64(n))
	sink(p)     // pointer-shaped: stored directly in the interface word
	sink(nil)   // nil never boxes
	sink("lit") // constants are static data
	var a any = p
	sink(a)        // interface to interface
	defer w.Add(1) // open-coded defer outside any loop
	if p != nil {
		return p.x + n
	}
	return n
}

//sched:noalloc
func coldFallback(n int) []int {
	//lint:ignore noalloc cold path allocates by design in this fixture
	return make([]int, n)
}
