package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// TestGolden runs every analyzer over each fixture package under
// testdata/src and compares the surviving diagnostics against the
// committed golden file. Each fixture mixes positive cases (must be
// reported), negative cases (must not be), and suppressed cases
// (reported by the analyzer, removed by a //lint:ignore directive) —
// the golden file pins all three behaviors at once, since a suppressed
// or negative case leaking through changes the output.
//
// Regenerate with: go test ./internal/lint -run TestGolden -update
func TestGolden(t *testing.T) {
	fixtures := []string{"atomicmix", "cacheline", "lockorder", "loopcapture", "looperr", "metricsample", "noalloc", "protocol", "suppress"}
	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			root := moduleRoot(t)
			ctx, err := Load(root, []string{"./internal/lint/testdata/src/" + name}, false)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", name, err)
			}
			diags := Run(ctx, Analyzers)
			var b strings.Builder
			for _, d := range diags {
				fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			}
			// Messages may embed positions (atomicmix points at an example
			// atomic access); strip the machine-dependent module root so the
			// golden files are stable across checkouts.
			got := strings.ReplaceAll(b.String(), root+string(filepath.Separator), "")

			golden := filepath.Join("testdata", "golden", name+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden file (run with -update to create it): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestGoldenHasFindings guards the guard: a golden file that becomes
// empty means the fixture's positive cases stopped firing — the
// analyzer went blind, which a pure golden comparison would happily
// pin as the new expected output via -update.
func TestGoldenHasFindings(t *testing.T) {
	for _, name := range []string{"atomicmix", "cacheline", "lockorder", "loopcapture", "looperr", "metricsample", "noalloc", "protocol", "suppress"} {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", name+".txt"))
		if err != nil {
			t.Fatalf("reading golden for %s: %v", name, err)
		}
		if len(strings.TrimSpace(string(data))) == 0 {
			t.Errorf("golden file for %s is empty: the fixture's positive cases no longer fire", name)
		}
		if name == "suppress" {
			continue // exercises the engine, not one analyzer
		}
		if !strings.Contains(string(data), ": "+name+": ") {
			t.Errorf("golden file for %s contains no %s findings", name, name)
		}
	}
}

// TestRepoIsClean asserts that schedlint finds nothing in the module
// itself: every true positive is fixed and every deliberate exception
// carries an annotated suppression. go list's ./... wildcard skips
// testdata directories, so the deliberately broken fixtures above do
// not trip this.
func TestRepoIsClean(t *testing.T) {
	ctx, err := Load(moduleRoot(t), []string{"./..."}, false)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := Run(ctx, Analyzers)
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestLoadFailureIsLoud pins the loader's failure mode: a package that
// does not compile must fail the whole run with a diagnostic naming the
// problem — never silently shrink the analyzed set, which would turn
// "the linter saw nothing" into "the linter saw nothing it could load".
func TestLoadFailureIsLoud(t *testing.T) {
	_, err := Load(moduleRoot(t), []string{"./internal/lint/testdata/src/broken"}, false)
	if err == nil {
		t.Fatal("Load succeeded on a package that does not type-check")
	}
	msg := err.Error()
	if !strings.Contains(msg, "refusing to analyze a reduced set") {
		t.Errorf("error does not state the refusal policy: %v", err)
	}
	if !strings.Contains(msg, "broken.go") {
		t.Errorf("error does not name the offending file: %v", err)
	}
}

// TestSuppressionEdgeCases spells out the engine behaviors the suppress
// golden file pins implicitly, so a regression names the broken rule
// instead of showing a wall of golden diff.
func TestSuppressionEdgeCases(t *testing.T) {
	ctx, err := Load(moduleRoot(t), []string{"./internal/lint/testdata/src/suppress"}, false)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var got []string
	for _, d := range Run(ctx, Analyzers) {
		got = append(got, fmt.Sprintf("%s: %s", d.Analyzer, d.Message))
	}
	all := strings.Join(got, "\n")

	contains := func(what, substr string) {
		t.Helper()
		if !strings.Contains(all, substr) {
			t.Errorf("no %s finding (want substring %q) in:\n%s", what, substr, all)
		}
	}
	contains("unknown-analyzer", `unknown analyzer "nosuchanalyzer"`)
	contains("stale-suppression", "stale suppression")
	// The wrong-analyzer directive must not have eaten the cacheline
	// finding on the mismatch type.
	contains("surviving cacheline", "cacheline: ")

	// Per-name bookkeeping: the used cacheline name in the comma list
	// must NOT be stale, so exactly the two unused names (the mismatch
	// atomicmix and the stacked/comma looperr directives) plus nothing
	// else may go stale.
	stale := 0
	for _, g := range got {
		if strings.Contains(g, "stale suppression") {
			stale++
		}
	}
	if stale != 3 {
		t.Errorf("want exactly 3 stale-suppression findings (atomicmix mismatch, comma-list looperr, stacked looperr), got %d in:\n%s", stale, all)
	}
}

// TestProtodocInSync guards the generated section of DESIGN.md: the
// committed tables must match what schedlint -protodoc would write for
// the current source, or the docs describe a protocol nobody runs.
func TestProtodocInSync(t *testing.T) {
	root := moduleRoot(t)
	ctx, err := Load(root, []string{"./..."}, false)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	section := ProtocolDoc(ctx)
	design := filepath.Join(root, "DESIGN.md")
	content, err := os.ReadFile(design)
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	want, err := SpliceProtocolDoc(string(content), section)
	if err != nil {
		t.Fatalf("splicing: %v", err)
	}
	if string(content) != want {
		t.Error("DESIGN.md protocol tables are out of date: run `go run ./cmd/schedlint -protodoc DESIGN.md ./...`")
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}
