package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Lightweight constant propagation for the protocol analyzer. go/types
// already folds untyped and declared constants (wParked, iota chains,
// 1<<3 | 2); what it cannot fold is the common runtime idiom of staging
// a transition argument through a local:
//
//	next := wNotified
//	w.state.CompareAndSwap(wParking, next)
//
// constValueOf recovers exactly that case — a local variable assigned
// precisely once in the enclosing function, from an expression that
// itself folds to a constant — and nothing more. A variable written
// twice, written through a pointer, or fed from a call stays
// non-constant, which the protocol analyzer maps to the spec's dynamic
// state (if declared) or a finding (if not).

// constValueOf resolves expr to a constant value, using go/types
// folding first and single-assignment local propagation second. fn is
// the enclosing function body used to enumerate assignments; it may be
// nil, which disables local propagation.
func constValueOf(pkg *Package, fn *ast.BlockStmt, expr ast.Expr) (constant.Value, bool) {
	return constValueRec(pkg, fn, expr, 0)
}

func constValueRec(pkg *Package, fn *ast.BlockStmt, expr ast.Expr, depth int) (constant.Value, bool) {
	expr = ast.Unparen(expr)
	if tv, ok := pkg.Info.Types[expr]; ok && tv.Value != nil {
		return tv.Value, true
	}
	if depth > 4 { // defensive bound; real chains are one or two hops
		return nil, false
	}
	id, ok := expr.(*ast.Ident)
	if !ok || fn == nil {
		return nil, false
	}
	obj, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return nil, false
	}
	// Only locals of the enclosing function: the declaration must sit
	// inside the body's extent.
	if obj.Pos() < fn.Pos() || obj.Pos() >= fn.End() {
		return nil, false
	}
	rhs, n := soleAssignment(pkg, fn, obj)
	if n != 1 || rhs == nil {
		return nil, false
	}
	return constValueRec(pkg, fn, rhs, depth+1)
}

// soleAssignment finds the expressions assigned to obj anywhere in fn
// (including its nested closures — a closure write makes the variable
// multi-assigned from this analysis' point of view) and returns the
// single RHS if there is exactly one, along with the assignment count.
// Address-taking counts as an assignment of unknown value.
func soleAssignment(pkg *Package, fn *ast.BlockStmt, obj *types.Var) (ast.Expr, int) {
	var rhs ast.Expr
	count := 0
	record := func(e ast.Expr) {
		count++
		rhs = e
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if pkg.Info.Defs[id] == obj || pkg.Info.Uses[id] == obj {
					if len(st.Lhs) == len(st.Rhs) {
						record(st.Rhs[i])
					} else {
						record(nil) // multi-value: not propagatable
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if pkg.Info.Defs[name] != obj {
					continue
				}
				if i < len(st.Values) {
					record(st.Values[i])
				} else if len(st.Values) == 1 && len(st.Names) > 1 {
					record(nil)
				}
				// `var x T` with no value: the zero value. Leave it
				// unrecorded; a later assignment becomes the sole one.
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(st.X).(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
				record(nil)
			}
		case *ast.UnaryExpr:
			if st.Op == token.AND {
				if id, ok := ast.Unparen(st.X).(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
					record(nil) // escaped: anything may write it
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{st.Key, st.Value} {
				if id, ok := e.(*ast.Ident); ok && (pkg.Info.Defs[id] == obj || pkg.Info.Uses[id] == obj) {
					record(nil)
				}
			}
		}
		return true
	})
	return rhs, count
}
