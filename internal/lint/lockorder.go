package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the module-wide mutex-acquisition graph and reports
// order cycles — the static shadow of a deadlock — plus locks that may
// not be released on every return path. Lock identity is the mutex
// *declaration* (the struct field or package-level var), not the
// instance: "injectMu is taken before loopsMu" is a property of the
// code, and one pair of functions disagreeing about the order is a
// deadlock waiting for the scheduler to interleave them.
//
// The analysis runs the shared CFG (cfg.go) with a may-held dataflow:
// Lock/RLock/TryLock add the class to the held set, Unlock/RUnlock
// remove it, joins union. While a class is held, acquiring another adds
// an order edge; calling a module function adds edges to every class
// that callee may transitively acquire (a fixpoint over the call
// graph). Deferred unlocks — including those inside deferred closures —
// count as releases on every return path. Calls through interfaces,
// function values, and closures are not resolved; a lock handed across
// such a boundary needs a //lint:ignore lockorder <reason> where the
// analyzer misjudges it.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "reports mutex acquisition-order cycles and locks not released on every return path",
	Run:  runLockOrder,
}

// lockEvent is one lock-relevant action inside a basic block, in
// program order: an acquisition or release of a lock class, or a call
// to a (resolvable) module function.
type lockEvent struct {
	kind   int // evAcquire, evRelease, evCall
	key    string
	name   string
	callee string // evCall: funcKey of the callee
	cname  string // evCall: display name
	pos    token.Pos
}

const (
	evAcquire = iota
	evRelease
	evCall
)

// lockEdge is one observed ordering: to was acquired while from was
// held, at pos (via desc, for call-mediated edges).
type lockEdge struct {
	from, to         string
	fromName, toName string
	pos              token.Position
	desc             string
}

type lockFunc struct {
	pkg  *Package
	key  string // funcKey; "" for function literals
	name string // display name for messages
	body *ast.BlockStmt
	decl *ast.FuncDecl // nil for literals
	pos  token.Pos
}

func runLockOrder(ctx *Context) {
	fns := collectLockFuncs(ctx)

	// Interprocedural fixpoint: the set of lock classes each named
	// function may acquire, directly or through its callees. Monotone
	// (sets only grow), so iterate until stable.
	direct := map[string]map[string]string{} // funcKey -> lockKey -> name
	calls := map[string]map[string]bool{}    // funcKey -> callee funcKeys
	events := map[*lockFunc][]blockEvents{}
	for _, fn := range fns {
		evs := lockEventsOf(ctx, fn)
		events[fn] = evs
		if fn.key == "" {
			continue
		}
		d := map[string]string{}
		c := map[string]bool{}
		for _, be := range evs {
			for _, e := range be.events {
				switch e.kind {
				case evAcquire:
					d[e.key] = e.name
				case evCall:
					c[e.callee] = true
				}
			}
		}
		direct[fn.key] = d
		calls[fn.key] = c
	}
	summary := map[string]map[string]string{}
	for k, d := range direct {
		s := map[string]string{}
		for lk, n := range d {
			s[lk] = n
		}
		summary[k] = s
	}
	for changed := true; changed; {
		changed = false
		for k := range summary {
			for callee := range calls[k] {
				for lk, n := range summary[callee] {
					if _, ok := summary[k][lk]; !ok {
						summary[k][lk] = n
						changed = true
					}
				}
			}
		}
	}

	// Per-function dataflow: compute may-held sets, then replay each
	// block once for reporting and edge collection.
	var edges []lockEdge
	for _, fn := range fns {
		edges = append(edges, analyzeLockFunc(ctx, fn, events[fn], summary)...)
	}
	reportLockCycles(ctx, edges)
}

// blockEvents pairs a CFG block with its extracted lock events and
// whether the block ends in a panic (its exit edge is a crash, not a
// return, so held locks there are not a release leak).
type blockEvents struct {
	block  *cfgBlock
	events []lockEvent
	panics bool
	ret    *ast.ReturnStmt // last node if a return
}

func collectLockFuncs(ctx *Context) []*lockFunc {
	var fns []*lockFunc
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				name := fd.Name.Name
				key := ""
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					name = funcDisplay(obj)
					key = ctx.Fset.Position(obj.Pos()).String()
				}
				fns = append(fns, &lockFunc{pkg: pkg, key: key, name: name, body: fd.Body, decl: fd, pos: fd.Pos()})
				// Function literals are analyzed as their own frames: their
				// bodies run at some later call site, with their own
				// lock/unlock balance. They stay out of the interprocedural
				// summaries (no caller can be resolved to them).
				parent := name
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						fns = append(fns, &lockFunc{
							pkg:  pkg,
							name: "func literal in " + parent,
							body: lit.Body,
							pos:  lit.Pos(),
						})
					}
					return true
				})
			}
		}
	}
	return fns
}

// lockEventsOf builds the CFG and extracts per-block lock events.
func lockEventsOf(ctx *Context, fn *lockFunc) []blockEvents {
	cfg := buildCFG(fn.body)
	out := make([]blockEvents, len(cfg.blocks))
	for i, b := range cfg.blocks {
		be := blockEvents{block: b}
		for _, n := range b.nodes {
			if st, ok := n.(ast.Stmt); ok && isPanicCall(st) {
				be.panics = true
			} else {
				be.panics = false
			}
			if r, ok := n.(*ast.ReturnStmt); ok {
				be.ret = r
			} else {
				be.ret = nil
			}
			inspectLeaf(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if e, ok := lockCallEvent(ctx, fn.pkg, call); ok {
					be.events = append(be.events, e)
					return true
				}
				if cf := calleeFunc(fn.pkg, call); cf != nil {
					be.events = append(be.events, lockEvent{
						kind:   evCall,
						callee: ctx.Fset.Position(cf.Pos()).String(),
						cname:  funcDisplay(cf),
						pos:    call.Pos(),
					})
				}
				return true
			})
		}
		out[i] = be
	}
	return out
}

// lockCallEvent classifies call as a lock operation on a trackable
// class: a sync.Mutex/RWMutex method whose receiver resolves to a
// struct field or package-level variable.
func lockCallEvent(ctx *Context, pkg *Package, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockEvent{}, false
	}
	var kind int
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		kind = evAcquire
	case "Unlock", "RUnlock":
		kind = evRelease
	default:
		return lockEvent{}, false
	}
	v := protoFieldOperand(pkg, sel.X)
	if v == nil || !trackable(pkg, v) {
		return lockEvent{}, false
	}
	return lockEvent{
		kind: kind,
		key:  ctx.Fset.Position(v.Pos()).String(),
		name: displayName(pkg, ast.Unparen(sel.X), v),
		pos:  call.Pos(),
	}, true
}

// analyzeLockFunc runs the may-held dataflow over one function and
// reports release leaks and recursive acquisitions; it returns the
// order edges observed.
func analyzeLockFunc(ctx *Context, fn *lockFunc, evs []blockEvents, summary map[string]map[string]string) []lockEdge {
	if len(evs) == 0 {
		return nil
	}
	// Deferred releases: every lock class unlocked by a defer statement
	// (directly or inside a deferred closure) anywhere in the function.
	// May-analysis keeps this function-wide: a conditional defer still
	// releases on the paths that matter, and the cost of the
	// approximation is a missed leak, never a false one.
	deferred := map[string]bool{}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		scan := ast.Node(ds.Call)
		if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			scan = lit.Body
		}
		ast.Inspect(scan, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if e, ok := lockCallEvent(ctx, fn.pkg, call); ok && e.kind == evRelease {
					deferred[e.key] = true
				}
			}
			return true
		})
		return true
	})

	// Fixpoint: in[b] = union of out[preds]; out = transfer(in).
	n := len(evs)
	preds := make([][]int, n)
	for i, be := range evs {
		for _, s := range be.block.succs {
			preds[s.index] = append(preds[s.index], i)
		}
	}
	in := make([]map[string]token.Pos, n)
	outs := make([]map[string]token.Pos, n)
	for i := range in {
		in[i] = map[string]token.Pos{}
	}
	transfer := func(i int) map[string]token.Pos {
		cur := map[string]token.Pos{}
		for k, p := range in[i] {
			cur[k] = p
		}
		for _, e := range evs[i].events {
			switch e.kind {
			case evAcquire:
				if _, held := cur[e.key]; !held {
					cur[e.key] = e.pos
				}
			case evRelease:
				delete(cur, e.key)
			}
		}
		return cur
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			merged := map[string]token.Pos{}
			for _, p := range preds[i] {
				if outs[p] == nil {
					continue
				}
				for k, pos := range outs[p] {
					if old, ok := merged[k]; !ok || pos < old {
						merged[k] = pos
					}
				}
			}
			if i == 0 { // entry keeps its (empty) boundary state
				merged = map[string]token.Pos{}
			}
			grew := len(merged) != len(in[i])
			if !grew {
				for k := range merged {
					if _, ok := in[i][k]; !ok {
						grew = true
						break
					}
				}
			}
			in[i] = merged
			nout := transfer(i)
			if outs[i] == nil || len(nout) != len(outs[i]) {
				changed = true
			} else {
				for k := range nout {
					if _, ok := outs[i][k]; !ok {
						changed = true
						break
					}
				}
			}
			outs[i] = nout
		}
	}

	// Reporting replay.
	var edges []lockEdge
	names := map[string]string{}
	reportedLeak := map[string]bool{}
	reportedRec := map[string]bool{}
	exitIdx := n - 1
	for i, be := range evs {
		cur := map[string]token.Pos{}
		for k, p := range in[i] {
			cur[k] = p
		}
		for _, e := range be.events {
			switch e.kind {
			case evAcquire:
				names[e.key] = e.name
				if _, held := cur[e.key]; held {
					if !reportedRec[e.key] {
						reportedRec[e.key] = true
						ctx.Reportf(e.pos, "%s acquired in %s while it may already be held (acquired at %s): recursive locking self-deadlocks",
							e.name, fn.name, ctx.Fset.Position(cur[e.key]))
					}
				} else {
					for held := range cur {
						edges = append(edges, lockEdge{
							from: held, to: e.key,
							fromName: names[held], toName: e.name,
							pos:  ctx.Fset.Position(e.pos),
							desc: "in " + fn.name,
						})
					}
					cur[e.key] = e.pos
				}
			case evRelease:
				delete(cur, e.key)
			case evCall:
				acq := summary[e.callee]
				if len(acq) == 0 || len(cur) == 0 {
					continue
				}
				for held := range cur {
					for lk, ln := range acq {
						names[lk] = ln
						if lk == held {
							if !reportedRec[lk] {
								reportedRec[lk] = true
								ctx.Reportf(e.pos, "%s held in %s across a call to %s, which may acquire it again: recursive locking self-deadlocks",
									names[lk], fn.name, e.cname)
							}
							continue
						}
						edges = append(edges, lockEdge{
							from: held, to: lk,
							fromName: names[held], toName: ln,
							pos:  ctx.Fset.Position(e.pos),
							desc: fmt.Sprintf("in %s via call to %s", fn.name, e.cname),
						})
					}
				}
			}
		}
		// Release-leak check at blocks flowing into the virtual exit:
		// anything still held that no defer releases may leak out of the
		// function on some path. Panic-terminated blocks are crashes, not
		// returns.
		flowsToExit := false
		for _, s := range be.block.succs {
			if s.index == exitIdx {
				flowsToExit = true
			}
		}
		if !flowsToExit || be.panics {
			continue
		}
		leakKeys := make([]string, 0, len(cur))
		for k := range cur {
			if !deferred[k] {
				leakKeys = append(leakKeys, k)
			}
		}
		sort.Strings(leakKeys)
		for _, k := range leakKeys {
			if reportedLeak[k] {
				continue
			}
			reportedLeak[k] = true
			ctx.Reportf(cur[k], "%s acquired in %s may not be released on every return path",
				names[k], fn.name)
		}
	}
	return edges
}

// reportLockCycles finds strongly connected components in the order
// graph and reports each cycle once, at its earliest edge.
func reportLockCycles(ctx *Context, edges []lockEdge) {
	adj := map[string]map[string]*lockEdge{}
	nodes := map[string]bool{}
	for i := range edges {
		e := &edges[i]
		if e.from == e.to {
			continue // self-edges were reported as recursive acquisition
		}
		nodes[e.from], nodes[e.to] = true, true
		m := adj[e.from]
		if m == nil {
			m = map[string]*lockEdge{}
			adj[e.from] = m
		}
		if old, ok := m[e.to]; !ok || posLess(e.pos, old.pos) {
			m[e.to] = e
		}
	}
	keys := make([]string, 0, len(nodes))
	for k := range nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Tarjan's SCC, iterative over the sorted node list for determinism.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		targets := make([]string, 0, len(adj[v]))
		for t := range adj[v] {
			targets = append(targets, t)
		}
		sort.Strings(targets)
		for _, w := range targets {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				sccs = append(sccs, comp)
			}
		}
	}
	for _, k := range keys {
		if _, seen := index[k]; !seen {
			strongconnect(k)
		}
	}

	for _, comp := range sccs {
		in := map[string]bool{}
		for _, k := range comp {
			in[k] = true
		}
		var cycleEdges []*lockEdge
		for _, from := range comp {
			for to, e := range adj[from] {
				if in[to] {
					cycleEdges = append(cycleEdges, e)
				}
			}
		}
		sort.Slice(cycleEdges, func(i, j int) bool { return posLess(cycleEdges[i].pos, cycleEdges[j].pos) })
		var parts []string
		for _, e := range cycleEdges {
			parts = append(parts, fmt.Sprintf("%s -> %s (%s at %s)", e.fromName, e.toName, e.desc, e.pos))
		}
		first := cycleEdges[0]
		ctx.diags = append(ctx.diags, Diagnostic{
			Analyzer: "lockorder",
			Pos:      first.pos,
			Message:  "lock-order cycle (potential deadlock): " + strings.Join(parts, "; "),
		})
	}
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}
