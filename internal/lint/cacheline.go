package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// cacheLineSize is the unit the runtime pads hot shared structs to.
// 64 bytes covers every amd64/arm64 part this repository targets (the
// M-series' 128-byte lines are handled by the padding being a multiple
// of 64 — annotated structs that need full 128-byte isolation can pad
// to 128, which is still a multiple of 64 and passes).
const cacheLineSize = 64

// CacheLine enforces the padding contract behind the //sched:cacheline
// annotation: a struct so marked participates in a per-worker array or
// adjacent hot allocation (RangeSlot descriptors, per-worker deques,
// tuner arm slices) where neighboring elements are written by different
// workers. Unless sizeof(T) is a multiple of the cache line, two
// workers' elements share a line and every CAS invalidates the
// neighbor's cache — reintroducing precisely the false sharing the
// paper's static partitioning exists to avoid. The check uses the real
// types.Sizes for the build platform, so a field added without
// re-padding fails the lint run instead of silently costing 10x on the
// steal path.
var CacheLine = &Analyzer{
	Name: "cacheline",
	Doc:  "checks that //sched:cacheline structs are padded to a 64-byte multiple",
	Run:  runCacheLine,
}

func runCacheLine(ctx *Context) {
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !hasCachelineAnnotation(gd, ts) {
						continue
					}
					checkCacheline(ctx, pkg, ts)
				}
			}
		}
	}
}

// hasCachelineAnnotation reports whether the declaration carries a
// //sched:cacheline directive in its doc comment (on the type spec or,
// for single-spec declarations, the surrounding GenDecl).
func hasCachelineAnnotation(gd *ast.GenDecl, ts *ast.TypeSpec) bool {
	for _, cg := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == "sched:cacheline" {
				return true
			}
		}
	}
	return false
}

func checkCacheline(ctx *Context, pkg *Package, ts *ast.TypeSpec) {
	obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	if _, ok := ts.Type.(*ast.StructType); !ok {
		ctx.Reportf(ts.Pos(), "//sched:cacheline annotation on %s, which is not a struct", ts.Name.Name)
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}
	if named.TypeParams().Len() > 0 {
		ctx.Reportf(ts.Pos(), "//sched:cacheline cannot check generic struct %s: sizes depend on the instantiation", ts.Name.Name)
		return
	}
	size := pkg.Sizes.Sizeof(named.Underlying())
	if size%cacheLineSize == 0 && size > 0 {
		return
	}
	pad := (cacheLineSize - size%cacheLineSize) % cacheLineSize
	if pad == 0 { // size 0: an empty annotated struct still needs a line
		pad = cacheLineSize
	}
	ctx.Reportf(ts.Pos(), "//sched:cacheline struct %s is %d bytes on %s; add %d bytes of padding (e.g. _ [%d]byte) to reach a multiple of %d",
		ts.Name.Name, size, buildArch(pkg), pad, pad, cacheLineSize)
}

// buildArch names the architecture the sizes were computed for.
func buildArch(pkg *Package) string {
	if s, ok := pkg.Sizes.(*types.StdSizes); ok && s.WordSize == 4 {
		return "a 32-bit target"
	}
	return "this target"
}
