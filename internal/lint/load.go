package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Sizes   types.Sizes
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir         string
	ImportPath  string
	Name        string
	GoFiles     []string
	CgoFiles    []string
	TestGoFiles []string
	Error       *struct{ Err string }
}

// Load locates the packages matching patterns with `go list -json`
// (run in dir), parses them, and type-checks them against a shared
// FileSet. Dependencies — including the module's own internal packages
// when imported across package boundaries — are resolved by the
// stdlib source importer, so the loader needs nothing outside the
// standard library and the go tool already on PATH. includeTests adds
// each package's in-package _test.go files to the check.
//
// Failures are loud and complete: a package that fails go list,
// parsing, or type-checking does not silently drop out of the analyzed
// set — every broken package's diagnostics are aggregated into the
// returned error, and no Context is returned. Analyzing a reduced
// package set would report "clean" for code that was never looked at,
// which is worse than failing.
func Load(dir string, patterns []string, includeTests bool) (*Context, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// One source importer for the whole run: it caches every dependency
	// package it type-checks, so shared deps are checked once.
	imp := importer.ForCompiler(fset, "source", nil)
	sizes := types.SizesFor("gc", runtime.GOARCH)
	ctx := &Context{Fset: fset}
	var broken []string
	fail := func(format string, args ...any) {
		broken = append(broken, fmt.Sprintf(format, args...))
	}
	for _, lp := range listed {
		if lp.Error != nil {
			fail("%s: %s", lp.ImportPath, strings.TrimSpace(lp.Error.Err))
			continue
		}
		names := append([]string{}, lp.GoFiles...)
		names = append(names, lp.CgoFiles...)
		if includeTests {
			names = append(names, lp.TestGoFiles...)
		}
		if len(names) == 0 {
			continue
		}
		var files []*ast.File
		parseFailed := false
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				fail("%v", err)
				parseFailed = true
				continue
			}
			files = append(files, f)
		}
		if parseFailed {
			continue
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Sizes:    sizes,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
		if len(typeErrs) > 0 {
			for _, te := range typeErrs {
				fail("type-checking %s: %v", lp.ImportPath, te)
			}
			continue
		}
		ctx.Pkgs = append(ctx.Pkgs, &Package{
			PkgPath: lp.ImportPath,
			Dir:     lp.Dir,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			Sizes:   sizes,
		})
	}
	if len(broken) > 0 {
		return nil, fmt.Errorf("%d package(s) failed to load; refusing to analyze a reduced set:\n\t%s",
			len(broken), strings.Join(broken, "\n\t"))
	}
	return ctx, nil
}

// goList expands patterns into package metadata via the go tool.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	// -e keeps broken packages in the output with their Error field set
	// instead of aborting the listing: Load aggregates and reports every
	// broken package rather than whichever one go list hit first.
	args := append([]string{"list", "-e", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(patterns, " "), msg)
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}
