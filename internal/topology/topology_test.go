package topology

import (
	"strings"
	"testing"
)

func TestPaperMachineValid(t *testing.T) {
	m := Paper()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.P() != 32 {
		t.Fatalf("P() = %d, want 32", m.P())
	}
	if m.LinesPerBlock() != 64 {
		t.Fatalf("LinesPerBlock = %d, want 64", m.LinesPerBlock())
	}
}

func TestCompactPinning(t *testing.T) {
	m := Paper()
	cases := map[int]int{0: 0, 7: 0, 8: 1, 15: 1, 16: 2, 31: 3}
	for core, want := range cases {
		if got := m.Socket(core); got != want {
			t.Errorf("Socket(%d) = %d, want %d", core, got, want)
		}
	}
}

func TestLatenciesMatchFigure5(t *testing.T) {
	m := Paper()
	// The paper's Figure 5 values (ranges collapsed to midpoints).
	if m.Lat[L1] != 4.1 || m.Lat[L2] != 12.2 || m.Lat[LocalL3] != 41.4 {
		t.Fatalf("cache latencies diverge from Figure 5: %+v", m.Lat)
	}
	if m.Lat[LocalDRAM] != 246.7 {
		t.Fatalf("local DRAM latency %v, want 246.7", m.Lat[LocalDRAM])
	}
	// Monotone up the hierarchy.
	for l := L2; l < NumLevels; l++ {
		if m.Lat[l] <= m.Lat[l-1] && !(l == RemoteL3 && m.Lat[l] > m.Lat[LocalDRAM]) {
			t.Errorf("latency not increasing at %v: %v <= %v", l, m.Lat[l], m.Lat[l-1])
		}
	}
	for l := Level(1); l < NumLevels; l++ {
		if m.TimeLat[l] < m.TimeLat[l-1] {
			t.Errorf("time cost not monotone at %v", l)
		}
	}
}

func TestBlocksIn(t *testing.T) {
	m := Paper()
	cases := map[int64]int64{0: 0, 1: 1, 4096: 1, 4097: 2, 1 << 20: 256}
	for in, want := range cases {
		if got := m.BlocksIn(in); got != want {
			t.Errorf("BlocksIn(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestValidateCatchesBadMachines(t *testing.T) {
	bad := []func(*Machine){
		func(m *Machine) { m.Sockets = 0 },
		func(m *Machine) { m.BlockSize = 100 }, // not multiple of line
		func(m *Machine) { m.L1Size = 0 },
		func(m *Machine) { m.L3Size = m.L2Size / 2 },
		func(m *Machine) { m.Lat[L1] = 0 },
		func(m *Machine) { m.TimeLat[RemoteDRAM] = -1 },
	}
	for i, mutate := range bad {
		m := Paper()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("bad machine %d passed validation", i)
		}
	}
}

func TestLevelStrings(t *testing.T) {
	want := []string{"L1", "L2", "local L3", "local DRAM", "remote L3", "remote DRAM"}
	for l := Level(0); l < NumLevels; l++ {
		if l.String() != want[l] {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), l.String(), want[l])
		}
	}
	if !strings.Contains(Level(99).String(), "99") {
		t.Error("unknown level string unhelpful")
	}
}
