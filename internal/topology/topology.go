// Package topology describes the simulated machine: socket/core layout,
// cache capacities, memory-access latencies per hierarchy level, and the
// scheduler cost model. The default machine is the paper's testbed — a
// 32-core, four-socket Intel Xeon E5-4620 — with the latencies of the
// paper's Figure 5 adopted verbatim as simulator parameters.
package topology

import "fmt"

// Level identifies which part of the memory hierarchy serviced an access.
type Level int

const (
	// L1 is a hit in the core's private L1 data cache.
	L1 Level = iota
	// L2 is a hit in the core's private L2 cache.
	L2
	// LocalL3 is a hit in the core's own socket's shared L3.
	LocalL3
	// LocalDRAM is a miss serviced by the socket's own DRAM.
	LocalDRAM
	// RemoteL3 is a miss serviced by another socket's L3.
	RemoteL3
	// RemoteDRAM is a miss serviced by another socket's DRAM.
	RemoteDRAM
	// NumLevels is the number of hierarchy levels.
	NumLevels
)

// String returns the label used in the paper's Figure 4.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case LocalL3:
		return "local L3"
	case LocalDRAM:
		return "local DRAM"
	case RemoteL3:
		return "remote L3"
	case RemoteDRAM:
		return "remote DRAM"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Latencies gives a per-hierarchy-level cost in cycles. It is used in two
// roles: Machine.Lat holds the *dependent-access* latencies of the paper's
// Figure 5 (what a pointer chase pays, and what the inferred-latency
// metric weighs counters with), while Machine.TimeLat holds the *effective
// per-line time cost* of the independent, overlapping accesses the
// workloads actually issue — modern cores keep many misses in flight, so
// the throughput cost of a strided sweep is far below the raw latency,
// and the remote:local ratio compresses toward the bandwidth ratio.
type Latencies [NumLevels]float64

// SchedCosts is the scheduler cost model, in cycles. The values are not
// measurements — they are plausible magnitudes for the operations involved
// (an uncontended CAS, a cross-socket cache-line transfer, a function
// dispatch) chosen so that work efficiency stays near one, matching the
// calibrated platforms of Section V.
type SchedCosts struct {
	// StealAttempt is one randomized steal attempt (probe a victim deque).
	StealAttempt float64
	// StealSuccess is the extra cost of a successful steal (acquiring the
	// frame, cache-line transfer of loop state).
	StealSuccess float64
	// Claim is one claim attempt in the hybrid heuristic (fetch-and-or on
	// a possibly-contended cache line).
	Claim float64
	// ChunkDispatch is the per-chunk scheduling overhead common to every
	// strategy (loop bookkeeping, function call into the body).
	ChunkDispatch float64
	// SharedQueueAccess is the cost of one grab from a central work-sharing
	// queue (OpenMP dynamic/guided), excluding serialization delay.
	SharedQueueAccess float64
	// SharedQueueSerial is the exclusive-occupancy window of the central
	// queue: concurrent grabs are serialized SharedQueueSerial cycles apart.
	SharedQueueSerial float64
	// LoopStartup is the per-loop setup cost on the initiating core
	// (partition structure init for hybrid, team wake-up for OpenMP).
	LoopStartup float64
	// StealBackoff is the delay before an idle core retries after failing
	// to find any victim with work.
	StealBackoff float64
	// Barrier is the per-core cost of the join/barrier ending a loop.
	Barrier float64
	// BarrierJitter is the spread of core release times out of a barrier:
	// each core arrives at the next loop up to this many cycles late,
	// uniformly at random. Real barriers never release symmetrically;
	// without this skew, central-queue schedulers would drain chunks in
	// the same core order every loop and show artificially high affinity.
	BarrierJitter float64
}

// Machine is a simulated shared-memory multicore.
type Machine struct {
	Sockets        int
	CoresPerSocket int
	CacheLine      int // bytes
	BlockSize      int // cache-model granularity, bytes (multiple of CacheLine)
	L1Size         int // per core, bytes
	L2Size         int // per core, bytes
	L3Size         int // per socket, bytes
	// Lat is the dependent-access latency per level (Figure 5); it is
	// what counters are converted to inferred latency with.
	Lat Latencies
	// TimeLat is the effective per-line cost, in cycles, charged to a
	// core's clock when a line is serviced at each level. It reflects
	// memory-level parallelism: independent strided accesses overlap, so
	// effective costs sit near bandwidth limits, not raw latencies.
	TimeLat  Latencies
	Cost     SchedCosts
	ClockGHz float64 // for reporting only; simulation is in cycles
}

// Paper returns the paper's testbed: four sockets of eight 2.2 GHz cores,
// 32 KiB L1d + 256 KiB L2 per core, 16 MiB shared L3 per socket, with the
// Figure 5 latencies (ranges collapsed to their midpoints, as the paper
// itself does for the inferred-latency computation).
func Paper() Machine {
	return Machine{
		Sockets:        4,
		CoresPerSocket: 8,
		CacheLine:      64,
		BlockSize:      4096,
		L1Size:         32 << 10,
		L2Size:         256 << 10,
		L3Size:         16 << 20,
		Lat: Latencies{
			L1:         4.1,
			L2:         12.2,
			LocalL3:    41.4,
			LocalDRAM:  246.7,
			RemoteL3:   (381.5 + 648.8) / 2,
			RemoteDRAM: (643.2 + 650.9) / 2,
		},
		TimeLat: Latencies{
			L1:         2,
			L2:         4,
			LocalL3:    10,
			LocalDRAM:  25,
			RemoteL3:   25,
			RemoteDRAM: 40,
		},
		Cost: SchedCosts{
			StealAttempt:      150,
			StealSuccess:      400,
			Claim:             60,
			ChunkDispatch:     40,
			SharedQueueAccess: 80,
			SharedQueueSerial: 120,
			LoopStartup:       600,
			StealBackoff:      500,
			Barrier:           200,
			BarrierJitter:     150,
		},
		ClockGHz: 2.2,
	}
}

// Scaled returns a machine with the requested socket/core layout and the
// paper testbed's per-core caches, latencies, and scheduler costs — the
// "what if the paper's machine were bigger" topology behind the simulated
// 64–256-core runs. Per-core L1/L2 and per-socket L3 stay at the paper's
// sizes (adding sockets adds L3+DRAM domains; it does not grow any one
// cache), and the Figure 5 latencies carry over unchanged: scaling the
// interconnect would change the remote constants in ways the paper gives
// no data for, so holding them fixed isolates the scheduling effect.
func Scaled(sockets, coresPerSocket int) Machine {
	m := Paper()
	m.Sockets = sockets
	m.CoresPerSocket = coresPerSocket
	return m
}

// P returns the total number of cores.
func (m Machine) P() int { return m.Sockets * m.CoresPerSocket }

// Socket returns the socket housing the given core under the paper's
// compact pinning (cores 0–7 on socket 0, 8–15 on socket 1, ...): if fewer
// than CoresPerSocket threads are used, only one socket is employed.
func (m Machine) Socket(core int) int { return core / m.CoresPerSocket }

// LinesPerBlock returns how many cache lines one simulation block holds.
func (m Machine) LinesPerBlock() int { return m.BlockSize / m.CacheLine }

// BlocksIn returns how many simulation blocks cover n bytes.
func (m Machine) BlocksIn(n int64) int64 {
	bs := int64(m.BlockSize)
	return (n + bs - 1) / bs
}

// Validate checks internal consistency; it returns an error describing the
// first problem found, or nil.
func (m Machine) Validate() error {
	switch {
	case m.Sockets < 1 || m.CoresPerSocket < 1:
		return fmt.Errorf("topology: bad core layout %dx%d", m.Sockets, m.CoresPerSocket)
	case m.CacheLine <= 0 || m.BlockSize <= 0 || m.BlockSize%m.CacheLine != 0:
		return fmt.Errorf("topology: block size %d not a multiple of line size %d", m.BlockSize, m.CacheLine)
	case m.L1Size < m.BlockSize || m.L2Size < m.L1Size || m.L3Size < m.L2Size:
		return fmt.Errorf("topology: cache sizes not increasing: %d/%d/%d", m.L1Size, m.L2Size, m.L3Size)
	}
	for l := Level(0); l < NumLevels; l++ {
		if m.Lat[l] <= 0 {
			return fmt.Errorf("topology: nonpositive latency for %v", l)
		}
		if m.TimeLat[l] <= 0 {
			return fmt.Errorf("topology: nonpositive time cost for %v", l)
		}
	}
	return nil
}
