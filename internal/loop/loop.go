// Package loop implements the five parallel-loop scheduling strategies the
// paper studies, on top of the work-stealing runtime in internal/sched:
//
//   - Static: the iteration space is split into P equal partitions, each
//     pinned to its designated worker — OpenMP schedule(static) and
//     FastFlow's static mode. Deterministic allocation, no load balancing.
//   - DynamicStealing: the "vanilla" Cilk cilk_for — recursive binary
//     splitting down to a chunk, with randomized work stealing for load
//     balance. Allocation depends entirely on scheduling.
//   - DynamicSharing: OpenMP schedule(dynamic, chunk) — a central shared
//     counter from which every worker grabs fixed-size chunks.
//   - Guided: OpenMP schedule(guided, chunk) — a central counter handing
//     out geometrically decreasing chunks (proportional to remaining/P,
//     never below the minimum chunk).
//   - Hybrid: the paper's contribution — static partitioning into R = 2^k
//     partitions plus the XOR claiming heuristic (internal/core) and the
//     DoHybridLoop steal protocol, with dynamic work stealing *inside*
//     each partition.
//
// All strategies use the paper's chunking rule, chunk = min(2048, N/(8P)),
// unless overridden, so their work efficiency is comparable (Section V,
// "the reason why we separately show Ts/T1").
package loop

import (
	"fmt"
	"sync/atomic"
	"time"

	"hybridloop/internal/adaptive"
	"hybridloop/internal/core"
	"hybridloop/internal/sched"
	"hybridloop/internal/trace"
)

// Strategy selects a loop-scheduling scheme.
type Strategy int

const (
	// Static is static partitioning: P equal pinned partitions.
	Static Strategy = iota
	// DynamicStealing is dynamic partitioning with work stealing
	// (vanilla cilk_for).
	DynamicStealing
	// DynamicSharing is dynamic partitioning with work sharing
	// (OpenMP schedule(dynamic)).
	DynamicSharing
	// Guided is guided partitioning with work sharing
	// (OpenMP schedule(guided)).
	Guided
	// Hybrid is the paper's hybrid scheme: static partitioning, the XOR
	// claiming heuristic, and work stealing as fallback.
	Hybrid
	// Auto defers the choice to the per-pool adaptive tuner
	// (internal/adaptive): each call site is profiled online and the
	// tuner picks a concrete strategy, chunk size, and serial cutoff
	// before the loop runs. Requires Options.Tuner; without one, Auto
	// degrades to Hybrid with the default chunk.
	Auto
)

// String returns the name used in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case Static:
		return "omp_static"
	case DynamicStealing:
		return "vanilla"
	case DynamicSharing:
		return "omp_dynamic"
	case Guided:
		return "omp_guided"
	case Hybrid:
		return "hybrid"
	case Auto:
		return "auto"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Strategies lists all implemented strategies in the paper's display order.
var Strategies = []Strategy{Hybrid, DynamicStealing, Static, DynamicSharing, Guided}

// Body is a loop body applied to a range of iterations [begin, end). Bodies
// receive a contiguous range rather than a single index so that tight
// kernels are not forced through a per-iteration function call; apply the
// body index-wise inside if needed.
type Body func(begin, end int)

// BodyW is a loop body that also receives the worker executing the chunk.
// Use it when the body starts nested parallel loops or spawns tasks: those
// operations must go through the *executing* worker, which for every
// strategy other than a serial run differs from the worker that started
// the loop.
type BodyW func(w *sched.Worker, begin, end int)

// Recorder observes which worker executed which iterations; used by the
// affinity experiments (Figure 2). Implementations must be safe for
// concurrent use.
type Recorder interface {
	Record(worker, begin, end int)
}

// Options configures a parallel loop.
type Options struct {
	// Strategy selects the scheduling scheme. Default Hybrid.
	Strategy Strategy
	// Chunk is the number of consecutive iterations executed as one unit.
	// Zero means the paper's default, min(2048, N/(8P)), clamped to >= 1.
	Chunk int
	// Recorder, if non-nil, is notified of every executed chunk.
	Recorder Recorder
	// Weight, if non-nil, gives iteration i's relative cost. Static and
	// Hybrid partition by equal total weight instead of equal count (the
	// annotation-driven extension of the paper's related work); the
	// purely dynamic strategies ignore it.
	Weight func(i int) float64
	// SerialCutoff runs loops of at most this many iterations inline on
	// the calling worker, skipping all scheduling machinery — the
	// tiny-workload shortcut of adaptive schedulers (cf. Thoman et al. in
	// the paper's related work). Zero disables the shortcut.
	SerialCutoff int
	// Priority is the loop's cross-loop fairness weight: when several
	// loops are live on the pool at once, idle workers are steered to the
	// live loop with the smallest served/priority ratio, so a loop with
	// priority 2 is entitled to roughly twice the steal-protocol service
	// of a priority-1 loop under contention. Zero or negative selects the
	// default weight 1. Meaningful only for the registry-probing
	// strategies (Hybrid, DynamicStealing); the team-based strategies pin
	// their whole team up front.
	Priority int
	// Trace, if non-nil, records scheduling events (loop boundaries,
	// claims, chunk executions) for this loop.
	Trace *trace.Log
	// Cancel is the loop's cooperative cancellation token. Every strategy
	// polls it once per scheduling chunk: a tripped token makes workers
	// skip the remaining chunks, abandon published range descriptors, and
	// drain unclaimed hybrid partitions without executing their bodies, so
	// the loop's join completes within about one chunk per worker. Nil
	// selects a loop-private token, which a captured body panic still
	// trips (so a panicking loop halts its surviving workers); callers
	// that want external cancellation (errors, context deadlines) supply
	// their own and trip it themselves.
	Cancel *sched.Canceller
	// Tuner drives the Auto strategy: the pool's adaptive autotuner,
	// consulted per invocation for the concrete configuration and fed the
	// invocation's outcome. Ignored unless Strategy == Auto.
	Tuner *adaptive.Tuner
	// Label is a caller-chosen name for the loop site, used as the "site"
	// label on the metrics plane's loop-duration series. Empty selects the
	// pool-level default series. Labels must come from a small closed set
	// (one per loop call site, like a route name) — never derive them from
	// request data.
	Label string
	// Site identifies the loop's call site (caller PC) for the tuner.
	// Zero means "unknown site": all unattributed Auto loops of the same
	// trip-count bucket share one profile.
	Site uintptr

	// obs, when non-nil, collects this invocation's per-worker busy time
	// and chunk count for the tuner. Internal: set by the Auto resolution
	// in WorkerForW only.
	obs *invObs
	// pollStride is the per-chunk check stride (see pacer.go): the
	// cancel/demand/inject polls run every pollStride-th chunk. Zero means
	// "no estimate yet" — striding strategies time their first chunk and
	// derive it online. Internal: set from the tuner's chunk-cost estimate
	// by beginAuto only.
	pollStride int32
}

// split partitions [begin, end) into n ranges honoring the weight hint.
func (o *Options) split(begin, end, n int) []core.Range {
	return core.WeightedSplit(core.Range{Begin: begin, End: end}, n, o.Weight)
}

// DefaultChunk returns the paper's default chunk size min(2048, N/(8P)),
// at least 1.
func DefaultChunk(n, p int) int {
	c := n / (8 * p)
	if c > 2048 {
		c = 2048
	}
	if c < 1 {
		c = 1
	}
	return c
}

func (o *Options) chunk(n, p int) int {
	if o.Chunk > 0 {
		return o.Chunk
	}
	return DefaultChunk(n, p)
}

// For executes body over [begin, end) on pool using the options' strategy.
// It must be called from outside the pool; use Worker.For from inside a
// running task.
func For(pool *sched.Pool, begin, end int, body Body, opts Options) {
	if end <= begin {
		return
	}
	pool.Run(func(w *sched.Worker) {
		WorkerFor(w, begin, end, body, opts)
	})
}

// WorkerFor is For callable from inside a running task (nested loops).
func WorkerFor(w *sched.Worker, begin, end int, body Body, opts Options) {
	WorkerForW(w, begin, end, func(_ *sched.Worker, lo, hi int) { body(lo, hi) }, opts)
}

// ForW is For with a worker-aware body.
func ForW(pool *sched.Pool, begin, end int, body BodyW, opts Options) {
	if end <= begin {
		return
	}
	pool.Run(func(w *sched.Worker) {
		WorkerForW(w, begin, end, body, opts)
	})
}

// WorkerForW is the worker-aware core all loop forms funnel into.
func WorkerForW(w *sched.Worker, begin, end int, body BodyW, opts Options) {
	if end <= begin {
		return
	}
	if opts.Trace != nil {
		opts.Trace.Add(w.ID(), trace.LoopStart, int64(begin), int64(end))
		defer opts.Trace.Add(w.ID(), trace.LoopEnd, int64(begin), int64(end))
	}
	if opts.Strategy == Auto {
		// Resolve Auto into a concrete strategy/chunk/cutoff before
		// dispatch; finish (run before the deferred LoopEnd) reports the
		// invocation's outcome back to the tuner.
		if finish := beginAuto(w, begin, end, &opts); finish != nil {
			defer finish()
		}
	}
	// A panic unwinding out of the strategy dispatch inline on this worker
	// (as opposed to one captured into the loop's group on another worker,
	// which the group's BindCancel hook covers) must also trip the token:
	// otherwise spawned partitions and stolen halves still in flight would
	// execute to completion with nobody waiting for them. Registered after
	// beginAuto so it runs before the finish closure, which discards the
	// truncated sample when it observes the tripped token.
	defer func() {
		if r := recover(); r != nil {
			opts.Cancel.Cancel(sched.ErrPanicked)
			panic(r)
		}
	}()
	if end-begin <= opts.SerialCutoff {
		runChunk(w, body, &opts, begin, end)
		return
	}
	if opts.Cancel == nil {
		// Every parallel loop gets a token, even without external
		// cancellation: the Group hook and the recover above route body
		// panics through it so the other workers stop within one chunk
		// instead of grinding through the remaining iterations. Allocated
		// after the serial shortcut, which involves no other workers and
		// stays allocation-free.
		opts.Cancel = new(sched.Canceller)
	} else if opts.Cancel.Cancelled() {
		// Already cancelled (a context that expired before the loop
		// started, or a nested loop under a tripped outer token): run
		// nothing.
		return
	}
	switch opts.Strategy {
	case Static:
		staticFor(w, begin, end, body, &opts)
	case DynamicStealing:
		stealingFor(w, begin, end, body, &opts)
	case DynamicSharing:
		sharingFor(w, begin, end, body, &opts)
	case Guided:
		guidedFor(w, begin, end, body, &opts)
	case Hybrid:
		hybridFor(w, begin, end, body, &opts)
	default:
		panic(fmt.Sprintf("loop: unknown strategy %d", int(opts.Strategy)))
	}
}

// runChunk executes one contiguous chunk, polling the cancellation token
// first. A tripped token skips the chunk entirely — no body call, no
// Chunk trace event — which is the check granularity of the cancellation
// protocol for the strategies that call runChunk per chunk; the strided
// strategies call execChunk directly and poll at their stride boundary
// instead (see pacer.go).
func runChunk(w *sched.Worker, body BodyW, opts *Options, lo, hi int) {
	if opts.Cancel.Cancelled() {
		if opts.Trace != nil {
			opts.Trace.Add(w.ID(), trace.Cancel, int64(lo), int64(hi))
		}
		return
	}
	execChunk(w, body, opts, lo, hi)
}

// execChunk executes one contiguous chunk with optional recording and
// tracing, without polling cancellation. For Auto invocations (opts.obs
// non-nil) the chunk is timed into the executing worker's busy slot —
// two clock reads per chunk, paid only by observed tuner plays.
func execChunk(w *sched.Worker, body BodyW, opts *Options, lo, hi int) {
	if opts.Recorder != nil {
		opts.Recorder.Record(w.ID(), lo, hi)
	}
	if opts.Trace != nil {
		opts.Trace.Add(w.ID(), trace.Chunk, int64(lo), int64(hi))
	}
	if o := opts.obs; o != nil {
		o.runTimed(w, body, lo, hi)
		return
	}
	body(w, lo, hi)
}

// staticFor pins partition i to worker i. The calling worker executes its
// own partition inline (it "arrives at the region" first), the others are
// pinned tasks.
func staticFor(w *sched.Worker, begin, end int, body BodyW, opts *Options) {
	p := w.Pool().P()
	parts := opts.split(begin, end, p)
	var g sched.Group
	g.BindCancel(opts.Cancel)
	for i := 0; i < p; i++ {
		if i == w.ID() || parts[i].Empty() {
			continue
		}
		part := parts[i]
		w.Pool().SpawnOn(i, &g, func(cw *sched.Worker) {
			runChunk(cw, body, opts, part.Begin, part.End)
		})
	}
	mine := parts[w.ID()]
	if !mine.Empty() {
		runChunk(w, body, opts, mine.Begin, mine.End)
	}
	w.Wait(&g)
}

// stealingFor is the cilk_for strategy, lowered lazily: instead of
// eagerly spawning the binary tree of lg(n/chunk) range splits into the
// deque, the initiating worker publishes its remaining range in a
// steal-half descriptor and consumes it one chunk at a time; idle workers
// discover the loop through the registry probe and CAS off the upper half
// of the biggest published remainder on demand. When no thief shows up
// the loop runs with zero per-split deque traffic.
func stealingFor(w *sched.Worker, begin, end int, body BodyW, opts *Options) {
	pool := w.Pool()
	chunk := opts.chunk(end-begin, pool.P())
	if end-begin <= chunk {
		runChunk(w, body, opts, begin, end)
		return
	}
	l := &lazyLoop{}
	l.g.BindCancel(opts.Cancel)
	l.rs.init(pool.P(), &l.g, body, opts, chunk)
	pool.RegisterLoopWeighted(l, opts.Priority)
	// Unregister even if the body panics mid-range (the slot itself is
	// drained by runOwned's unwind path) so the registry never holds a
	// dead loop.
	defer pool.UnregisterLoop(l)
	l.rs.runOwned(w, begin, end)
	w.Wait(&l.g)
}

// sharingFor is OpenMP schedule(dynamic, chunk): every worker joins the
// team and repeatedly grabs fixed-size chunks from a shared counter. The
// cancel and inject polls run once per poll stride of grabs rather than
// per grab (see pacer.go); each team worker derives its stride from its
// own first chunk when the tuner gave no estimate.
func sharingFor(w *sched.Worker, begin, end int, body BodyW, opts *Options) {
	chunk := opts.chunk(end-begin, w.Pool().P())
	var next atomic.Int64
	next.Store(int64(begin))
	grab := func(cw *sched.Worker) {
		pool := cw.Pool()
		stride := opts.pollStride
		countdown := stride
		if opts.Cancel.Cancelled() {
			// Cancelled before this worker's first grab: poison the shared
			// counter so teammates between polls observe an exhausted loop
			// on their next grab; the first worker through records the
			// abandoned tail.
			if old := next.Swap(int64(end)); int(old) < end && opts.Trace != nil {
				opts.Trace.Add(cw.ID(), trace.Cancel, old, int64(end))
			}
			return
		}
		for {
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= end {
				return
			}
			hi := lo + chunk
			if hi > end {
				hi = end
			}
			if stride == 0 {
				t0 := time.Now()
				execChunk(cw, body, opts, lo, hi)
				stride = pollStrideFor(time.Since(t0).Nanoseconds())
				countdown = stride
			} else {
				execChunk(cw, body, opts, lo, hi)
			}
			if countdown--; countdown > 0 {
				continue
			}
			countdown = stride
			if opts.Cancel.Cancelled() {
				if old := next.Swap(int64(end)); int(old) < end && opts.Trace != nil {
					opts.Trace.Add(cw.ID(), trace.Cancel, old, int64(end))
				}
				return
			}
			// Cross-loop latency fairness, as in rangeSet.runOwned: a team
			// worker grinding a long shared counter services one pending
			// submission per poll window.
			if pool.InjectPending() {
				pool.HelpOneInjected(cw)
			}
		}
	}
	teamRun(w, opts, grab)
}

// guidedFor is OpenMP schedule(guided, chunk): chunks shrink in proportion
// to the remaining iterations divided by the team size, never below the
// minimum chunk. The shared position advances under CAS so chunk sizing
// and claiming are atomic together. Guided keeps its per-grab polls
// instead of the pacer's stride: the grab sizes decrease geometrically
// from remaining/2P, so early polls are amortized over huge chunks by
// construction and the small-grab tail is exactly where per-grab
// responsiveness is wanted.
func guidedFor(w *sched.Worker, begin, end int, body BodyW, opts *Options) {
	p := w.Pool().P()
	minChunk := opts.chunk(end-begin, p)
	var next atomic.Int64
	next.Store(int64(begin))
	grab := func(cw *sched.Worker) {
		for {
			if opts.Cancel.Cancelled() {
				if old := next.Swap(int64(end)); int(old) < end && opts.Trace != nil {
					opts.Trace.Add(cw.ID(), trace.Cancel, old, int64(end))
				}
				return
			}
			lo64 := next.Load()
			lo := int(lo64)
			if lo >= end {
				return
			}
			remaining := end - lo
			size := (remaining + 2*p - 1) / (2 * p)
			if size < minChunk {
				size = minChunk
			}
			hi := lo + size
			if hi > end {
				hi = end
			}
			if !next.CompareAndSwap(lo64, int64(hi)) {
				continue
			}
			runChunk(cw, body, opts, lo, hi)
			if cw.Pool().InjectPending() {
				cw.Pool().HelpOneInjected(cw)
			}
		}
	}
	teamRun(w, opts, grab)
}

// teamRun executes fn on every worker in the pool (pinned), with the
// calling worker participating inline — the OpenMP "parallel region"
// model where each team thread runs the scheduling loop itself.
func teamRun(w *sched.Worker, opts *Options, fn func(cw *sched.Worker)) {
	var g sched.Group
	g.BindCancel(opts.Cancel)
	p := w.Pool().P()
	for i := 0; i < p; i++ {
		if i == w.ID() {
			continue
		}
		w.Pool().SpawnOn(i, &g, fn)
	}
	fn(w)
	w.Wait(&g)
}
