package loop

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"hybridloop/internal/sched"
	"hybridloop/internal/trace"
)

var errStop = errors.New("stop")

// TestCancelStopsEveryStrategy trips the token early in a fine-grained
// loop and asserts, for every strategy, that the join still completes,
// the token surfaces the cause, every executed iteration ran exactly
// once, and — for the dynamically scheduled strategies, whose chunk is
// the check granularity — most of the iteration space was abandoned.
// Static is exempt from the abandonment bound: its "chunks" are whole
// partitions, all typically started before the token trips, so
// cancellation can only skip partitions that have not begun.
func TestCancelStopsEveryStrategy(t *testing.T) {
	pool := sched.NewPool(4, 99)
	defer pool.Close()
	const n, chunk, cancelAt = 1 << 15, 16, 100
	for _, s := range allStrategies {
		c := new(sched.Canceller)
		counts := make([]atomic.Int32, n)
		var executed atomic.Int64
		For(pool, 0, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				counts[i].Add(1)
			}
			if executed.Add(int64(hi-lo)) >= cancelAt {
				c.Cancel(errStop)
			}
		}, Options{Strategy: s, Chunk: chunk, Cancel: c})
		if !errors.Is(c.Err(), errStop) {
			t.Fatalf("%v: token cause = %v, want errStop", s, c.Err())
		}
		for i := range counts {
			if cnt := counts[i].Load(); cnt > 1 {
				t.Fatalf("%v: iteration %d executed %d times", s, i, cnt)
			}
		}
		if s != Static {
			if got := executed.Load(); got > n/2 {
				t.Fatalf("%v: %d of %d iterations ran after an early cancel", s, got, n)
			}
		}
		// The pool must be fully functional for the next strategy.
		var after atomic.Int64
		For(pool, 0, 1000, func(lo, hi int) { after.Add(int64(hi - lo)) },
			Options{Strategy: s})
		if after.Load() != 1000 {
			t.Fatalf("%v: pool degraded after cancellation — %d iterations", s, after.Load())
		}
	}
}

// TestCancelAlreadyTrippedRunsNothing: a token tripped before the loop
// starts (an expired context, a dead outer loop) must prevent every body
// call.
func TestCancelAlreadyTrippedRunsNothing(t *testing.T) {
	pool := sched.NewPool(4, 98)
	defer pool.Close()
	for _, s := range allStrategies {
		c := new(sched.Canceller)
		c.Cancel(errStop)
		var ran atomic.Int64
		For(pool, 0, 10000, func(lo, hi int) { ran.Add(1) },
			Options{Strategy: s, Chunk: 64, Cancel: c})
		if ran.Load() != 0 {
			t.Fatalf("%v: %d chunks ran under a pre-tripped token", s, ran.Load())
		}
	}
}

// TestCancelStressChunkBound is the acceptance stress test: 8 workers on
// a 1M-iteration fine-grained hybrid loop, cancelled after a fixed
// number of chunks. The trace must show the loop stopped within the
// strided cancellation bound — the chunks completed before the trip plus
// one poll window (at most maxPollStride chunks, since an empty body
// measures as maximally cheap) and one in-flight chunk per worker — out
// of the ~16384 chunks a full run would execute. Also asserts the run
// leaks no goroutines.
func TestCancelStressChunkBound(t *testing.T) {
	const p, n, chunk, cancelAfter = 8, 1 << 20, 64, 100
	pool := sched.NewPool(p, 0xCA)
	defer pool.Close()

	// Settle, then baseline the goroutine count with the pool running.
	time.Sleep(10 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	for round := 0; round < 5; round++ {
		tl := trace.New(1 << 16)
		c := new(sched.Canceller)
		var chunks atomic.Int64
		ForW(pool, 0, n, func(w *sched.Worker, lo, hi int) {
			if chunks.Add(1) >= cancelAfter {
				c.Cancel(errStop)
			}
		}, Options{Strategy: Hybrid, Chunk: chunk, Cancel: c, Trace: tl})

		var chunkEvents, cancelEvents int
		for _, ev := range tl.Events() {
			switch ev.Kind {
			case trace.Chunk:
				chunkEvents++
			case trace.Cancel:
				cancelEvents++
			}
		}
		if chunkEvents > cancelAfter+p*(maxPollStride+1) {
			t.Fatalf("round %d: %d chunks executed after cancel at %d — workers did not stop within a poll window",
				round, chunkEvents, cancelAfter)
		}
		if cancelEvents == 0 {
			t.Fatalf("round %d: cancellation abandoned no work on a 1M-iteration loop", round)
		}
		if !errors.Is(c.Err(), errStop) {
			t.Fatalf("round %d: token cause = %v", round, c.Err())
		}
	}

	// No goroutine may outlive the cancelled loops: poll because worker
	// wakeups from the final round can still be settling.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d live, baseline %d", g, baseline)
		}
		time.Sleep(time.Millisecond)
	}

	// And the pool still executes a full loop exactly once per iteration.
	counts := make([]atomic.Int32, 1<<16)
	For(pool, 0, len(counts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			counts[i].Add(1)
		}
	}, Options{Strategy: Hybrid, Chunk: chunk})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("post-stress loop executed iteration %d %d times", i, c)
		}
	}
}

// TestCancelLatencyBoundWithStride pins the documented cancellation-
// latency bound of the poll-stride pacer deterministically: with the
// stride forced to its worst case (maxPollStride — no online measurement,
// no dependence on clock resolution), a cancelled 1M-iteration fine loop
// must stop within cancelAfter + P·(maxPollStride+1) chunks — each
// participant finishes at most one full poll window plus the chunk in
// flight. Covers every strided strategy (the steal-half owners behind
// Hybrid and DynamicStealing, and the shared-counter team).
func TestCancelLatencyBoundWithStride(t *testing.T) {
	const p, n, chunk, cancelAfter = 8, 1 << 20, 16, 100
	pool := sched.NewPool(p, 0x57)
	defer pool.Close()
	for _, s := range []Strategy{Hybrid, DynamicStealing, DynamicSharing} {
		c := new(sched.Canceller)
		var chunks atomic.Int64
		pool.Run(func(w *sched.Worker) {
			opts := Options{Strategy: s, Chunk: chunk, Cancel: c}
			opts.pollStride = maxPollStride
			WorkerForW(w, 0, n, func(cw *sched.Worker, lo, hi int) {
				if chunks.Add(1) >= cancelAfter {
					c.Cancel(errStop)
				}
			}, opts)
		})
		bound := int64(cancelAfter + p*(maxPollStride+1))
		if got := chunks.Load(); got > bound {
			t.Fatalf("%v: %d chunks executed, bound %d (cancel at %d, stride %d, %d workers)",
				s, got, bound, cancelAfter, maxPollStride, p)
		}
		if !errors.Is(c.Err(), errStop) {
			t.Fatalf("%v: token cause = %v, want errStop", s, c.Err())
		}
	}
}

// TestPanickingOwnerWithThief is the satellite-1 regression test: a thief
// steals half of an owner's published range, then the owner panics
// mid-partition. The unwind must reset the owner's slot and release the
// partition claim state so (a) the panic surfaces as *TaskPanicError at
// the initiating Wait rather than hanging the join, (b) no iteration runs
// twice, and (c) the pool stays fully usable. The first chunk is gated on
// the pool's RangeSteals counter so the steal provably happens before the
// panic, even on a single-CPU runner.
func TestPanickingOwnerWithThief(t *testing.T) {
	for _, s := range []Strategy{Hybrid, DynamicStealing} {
		pool := sched.NewPool(4, 0xBAD)
		counts := make([]atomic.Int32, 1<<14)
		rec := func() (r any) {
			defer func() { r = recover() }()
			ForW(pool, 0, len(counts), gateFirstChunk(pool, func(w *sched.Worker, lo, hi int) {
				for i := lo; i < hi; i++ {
					counts[i].Add(1)
				}
				if lo == 0 {
					panic("owner boom")
				}
			}), Options{Strategy: s, Chunk: 8})
			return nil
		}()
		if rec == nil {
			t.Fatalf("%v: panic did not surface", s)
		}
		if _, ok := rec.(*sched.TaskPanicError); !ok {
			t.Fatalf("%v: recovered %T, want *sched.TaskPanicError", s, rec)
		}
		if pool.Stats().RangeSteals == 0 {
			t.Fatalf("%v: no range steal happened; the owner/thief race was not exercised", s)
		}
		for i := range counts {
			if c := counts[i].Load(); c > 1 {
				t.Fatalf("%v: iteration %d executed %d times across the panic", s, i, c)
			}
		}
		var after atomic.Int64
		For(pool, 0, 4096, func(lo, hi int) { after.Add(int64(hi - lo)) },
			Options{Strategy: s, Chunk: 8})
		if after.Load() != 4096 {
			t.Fatalf("%v: pool degraded after owner panic — %d iterations", s, after.Load())
		}
		pool.Close()
	}
}

// TestNoStaleDemandSplits is the satellite-2 behavioral test: loop A runs
// wide open so failing thieves raise the pool's demand flag; loop B then
// runs with every other worker pinned busy (nobody parked, nobody
// probing). A stale flag surviving loop A would make loop B's owner see
// phantom demand on its very first chunk; with the flag retired at park
// and at loop completion the follow-up loop must run without a single
// RangeSplit.
func TestNoStaleDemandSplits(t *testing.T) {
	pool := sched.NewPool(4, 0xDF)
	defer pool.Close()

	// Loop A: fine chunks over a wide pool to drive steal traffic and
	// failed sweeps (which raise the demand flag).
	for r := 0; r < 8; r++ {
		For(pool, 0, 1<<14, func(lo, hi int) {}, Options{Strategy: DynamicStealing, Chunk: 4})
	}
	// Quiesce: every worker parks, retiring any raised flag.
	time.Sleep(20 * time.Millisecond)

	tl := trace.New(1 << 14)
	pool.Run(func(w *sched.Worker) {
		var g sched.Group
		var release atomic.Bool
		for i := 0; i < pool.P(); i++ {
			if i == w.ID() {
				continue
			}
			pool.SpawnOn(i, &g, func(cw *sched.Worker) {
				for !release.Load() {
					runtime.Gosched() // busy: never parks, never probes
				}
			})
		}
		WorkerForW(w, 0, 1<<14, func(cw *sched.Worker, lo, hi int) {},
			Options{Strategy: DynamicStealing, Chunk: 8, Trace: tl})
		release.Store(true)
		w.Wait(&g)
	})
	for _, ev := range tl.Events() {
		if ev.Kind == trace.RangeSplit {
			t.Fatal("uncontended follow-up loop split its range — stale demand signal")
		}
	}
}
