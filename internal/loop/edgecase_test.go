package loop

import (
	"sync"
	"sync/atomic"
	"testing"

	"hybridloop/internal/sched"
)

// recordChunks collects every (lo, hi) chunk a loop hands to its body.
type recordChunks struct {
	mu     sync.Mutex
	chunks [][2]int
}

func (r *recordChunks) body(lo, hi int) {
	r.mu.Lock()
	r.chunks = append(r.chunks, [2]int{lo, hi})
	r.mu.Unlock()
}

func (r *recordChunks) verifyExactlyOnce(t *testing.T, begin, end int) {
	t.Helper()
	seen := make(map[int]int)
	for _, c := range r.chunks {
		if c[0] >= c[1] {
			t.Fatalf("empty chunk [%d, %d) handed to body", c[0], c[1])
		}
		for i := c[0]; i < c[1]; i++ {
			seen[i]++
		}
	}
	for i := begin; i < end; i++ {
		if seen[i] != 1 {
			t.Fatalf("iteration %d executed %d times, want 1", i, seen[i])
		}
	}
	if len(seen) != end-begin {
		t.Fatalf("body saw %d distinct iterations, want %d", len(seen), end-begin)
	}
}

// TestChunkLargerThanRange: chunk > n must degenerate into a single body
// call covering the whole range for every strategy — no strategy may hand
// out a chunk past the end or split below its floor.
func TestChunkLargerThanRange(t *testing.T) {
	pool := sched.NewPool(4, 11)
	defer pool.Close()
	for _, s := range allStrategies {
		for _, n := range []int{1, 5, 63} {
			rec := &recordChunks{}
			For(pool, 0, n, rec.body, Options{Strategy: s, Chunk: n + 100})
			rec.verifyExactlyOnce(t, 0, n)
			for _, c := range rec.chunks {
				if c[1] > n || c[0] < 0 {
					t.Fatalf("%v n=%d: chunk [%d, %d) outside the range", s, n, c[0], c[1])
				}
			}
		}
	}
}

// TestBeginEqualsEnd: a zero-trip loop must not call the body, must not
// touch the registry, and must leave the group balanced (no hang, no
// panic) for every strategy and every entry form.
func TestBeginEqualsEnd(t *testing.T) {
	pool := sched.NewPool(2, 3)
	defer pool.Close()
	for _, s := range allStrategies {
		var ran atomic.Bool
		body := func(lo, hi int) { ran.Store(true) }
		For(pool, 42, 42, body, Options{Strategy: s})
		For(pool, -7, -7, body, Options{Strategy: s, Chunk: 1})
		pool.Run(func(w *sched.Worker) {
			WorkerFor(w, 0, 0, body, Options{Strategy: s})
		})
		if ran.Load() {
			t.Fatalf("%v: body ran for begin == end", s)
		}
	}
}

// TestFewerIterationsThanWorkers: n < P leaves workers without a full
// share; every strategy must still cover [0, n) exactly once and the
// chunk rule must floor at 1 (DefaultChunk(n, p) with n/(8p) == 0).
func TestFewerIterationsThanWorkers(t *testing.T) {
	pool := sched.NewPool(8, 19)
	defer pool.Close()
	for _, s := range allStrategies {
		for _, n := range []int{1, 3, 7} {
			for _, chunk := range []int{0, 1, 2} {
				rec := &recordChunks{}
				For(pool, 0, n, rec.body, Options{Strategy: s, Chunk: chunk})
				rec.verifyExactlyOnce(t, 0, n)
			}
		}
	}
}

// TestSerialCutoffInteraction: loops at or below the cutoff run inline as
// one chunk on the calling worker regardless of strategy or chunk
// setting; loops above it schedule normally. The cutoff comparison is on
// the trip count, not the chunk.
func TestSerialCutoffInteraction(t *testing.T) {
	pool := sched.NewPool(4, 29)
	defer pool.Close()
	for _, s := range allStrategies {
		// n <= cutoff: exactly one body call with the full range, executed
		// by the initiating worker.
		rec := &recordChunks{}
		var caller, executor atomic.Int32
		pool.Run(func(w *sched.Worker) {
			caller.Store(int32(w.ID()))
			WorkerForW(w, 0, 50, func(cw *sched.Worker, lo, hi int) {
				executor.Store(int32(cw.ID()))
				rec.body(lo, hi)
			}, Options{Strategy: s, Chunk: 4, SerialCutoff: 50})
		})
		if len(rec.chunks) != 1 || rec.chunks[0] != [2]int{0, 50} {
			t.Fatalf("%v: cutoff loop chunks = %v, want one [0, 50)", s, rec.chunks)
		}
		if caller.Load() != executor.Load() {
			t.Fatalf("%v: cutoff loop ran on worker %d, caller was %d",
				s, executor.Load(), caller.Load())
		}
		// n just above the cutoff: scheduled normally, chunk setting
		// honored (more than one chunk for chunk < n), still exactly once.
		rec = &recordChunks{}
		For(pool, 0, 51, rec.body, Options{Strategy: s, Chunk: 4, SerialCutoff: 50})
		rec.verifyExactlyOnce(t, 0, 51)
		if s != Static && len(rec.chunks) < 2 {
			t.Fatalf("%v: above-cutoff loop ran as %d chunk(s), want scheduled chunks", s, len(rec.chunks))
		}
	}
}

// TestSharingChunkMath: schedule(dynamic)'s fixed-size grabs must all be
// exactly chunk long except a single remainder, and the count must match
// ceil(n/chunk).
func TestSharingChunkMath(t *testing.T) {
	pool := sched.NewPool(4, 37)
	defer pool.Close()
	const n, chunk = 1009, 64 // prime n: guaranteed remainder
	rec := &recordChunks{}
	For(pool, 0, n, rec.body, Options{Strategy: DynamicSharing, Chunk: chunk})
	rec.verifyExactlyOnce(t, 0, n)
	if want := (n + chunk - 1) / chunk; len(rec.chunks) != want {
		t.Fatalf("sharing handed out %d chunks, want %d", len(rec.chunks), want)
	}
	remainders := 0
	for _, c := range rec.chunks {
		switch c[1] - c[0] {
		case chunk:
		case n % chunk:
			remainders++
		default:
			t.Fatalf("sharing chunk [%d, %d) has size %d, want %d or remainder %d",
				c[0], c[1], c[1]-c[0], chunk, n%chunk)
		}
	}
	if remainders != 1 {
		t.Fatalf("sharing produced %d remainder chunks, want 1", remainders)
	}
}

// TestGuidedChunkMath: schedule(guided)'s grabs are bounded above by
// ceil(remaining/2P) at grab time (so never larger than the first grab)
// and below by the minimum chunk, except the final remainder.
func TestGuidedChunkMath(t *testing.T) {
	pool := sched.NewPool(4, 41)
	defer pool.Close()
	const n, minChunk = 10000, 16
	p := 4
	rec := &recordChunks{}
	For(pool, 0, n, rec.body, Options{Strategy: Guided, Chunk: minChunk})
	rec.verifyExactlyOnce(t, 0, n)
	first := (n + 2*p - 1) / (2 * p)
	for i, c := range rec.chunks {
		size := c[1] - c[0]
		if size > first {
			t.Fatalf("guided chunk %d has size %d, above the first-grab bound %d", i, size, first)
		}
		if size < minChunk && c[1] != n {
			t.Fatalf("guided chunk %d has size %d below the floor %d and is not the tail", i, size, minChunk)
		}
	}
}

// TestLoopBoundsBeyondInt32 runs the two lazily split strategies over a
// base beyond 2^31, where range descriptors and deque words cannot pack:
// the whole loop must flow through the eager SpawnRange closure fallback
// and still cover every iteration exactly once.
func TestLoopBoundsBeyondInt32(t *testing.T) {
	pool := sched.NewPool(4, 43)
	defer pool.Close()
	const n = 50000
	base := 1 << 31
	for _, s := range []Strategy{DynamicStealing, Hybrid, Static, DynamicSharing, Guided} {
		counts := make([]atomic.Int32, n)
		For(pool, base, base+n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				counts[i-base].Add(1)
			}
		}, Options{Strategy: s, Chunk: 64})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("%v: iteration base+%d ran %d times", s, i, c)
			}
		}
	}
}
