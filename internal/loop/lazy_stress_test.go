package loop

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridloop/internal/sched"
)

// gateFirstChunk returns a BodyW wrapper that makes the chunk containing
// iteration 0 spin — repeatedly waking parked workers — until the pool's
// RangeSteals counter moves past its value at loop start (or a deadline
// passes, so a broken steal path fails the assertion instead of hanging
// the suite). This pins the owner mid-range with its descriptor
// published, forcing the steal-half race even on a single-CPU machine
// where an ungated owner would drain its whole range before any thief is
// scheduled.
func gateFirstChunk(pool *sched.Pool, inner BodyW) BodyW {
	before := pool.Stats().RangeSteals
	return func(w *sched.Worker, lo, hi int) {
		if lo == 0 {
			deadline := time.Now().Add(5 * time.Second)
			for pool.Stats().RangeSteals == before && time.Now().Before(deadline) {
				w.Pool().Notify() // recruit a parked worker to come steal
				runtime.Gosched()
			}
		}
		inner(w, lo, hi)
	}
}

// TestStealHalfOversubscribed hammers the steal-half protocol with a pool
// far wider than the machine: 16 workers multiplexed over however many
// cores the test runner has, several concurrent loops, fine chunks, and
// the first chunk of each loop gated until a range steal lands. Every
// iteration must execute exactly once and Stats.RangeSteals must
// actually move — the point of the test is to drive the owner TakeFront
// / thief StealHalf race; run with -race for the full effect. Both
// lazily split strategies are exercised.
func TestStealHalfOversubscribed(t *testing.T) {
	const p = 16
	pool := sched.NewPool(p, 0xC0FFEE)
	defer pool.Close()
	pool.ResetStats()

	const loops, n, rounds = 4, 1 << 14, 3
	for _, s := range []Strategy{DynamicStealing, Hybrid} {
		for round := 0; round < rounds; round++ {
			var wg sync.WaitGroup
			fail := make(chan string, loops)
			for l := 0; l < loops; l++ {
				wg.Add(1)
				go func(l int) {
					defer wg.Done()
					counts := make([]atomic.Int32, n)
					ForW(pool, 0, n, gateFirstChunk(pool, func(w *sched.Worker, lo, hi int) {
						for i := lo; i < hi; i++ {
							counts[i].Add(1)
						}
					}), Options{Strategy: s, Chunk: 8})
					for i := range counts {
						if c := counts[i].Load(); c != 1 {
							fail <- s.String()
							return
						}
					}
				}(l)
			}
			wg.Wait()
			close(fail)
			for bad := range fail {
				t.Fatalf("%s round %d: iterations lost or duplicated under oversubscription", bad, round)
			}
		}
	}
	if pool.Stats().RangeSteals == 0 {
		t.Fatal("oversubscribed stress drove zero range steals; the steal-half path was not exercised")
	}
}

// TestStealHalfNestedReentry drives the re-entrant fallback: a lazy outer
// loop whose body runs nested lazy loops, so a worker can reach runOwned
// while its own slot still holds the suspended outer range. The nested
// entry must detect the occupied slot, take the eager path, and cover
// everything exactly once.
func TestStealHalfNestedReentry(t *testing.T) {
	pool := sched.NewPool(4, 555)
	defer pool.Close()
	const outerN, innerN = 64, 2048
	var inner atomic.Int64
	outerCounts := make([]atomic.Int32, outerN)
	pool.Run(func(w *sched.Worker) {
		WorkerForW(w, 0, outerN, func(cw *sched.Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				outerCounts[i].Add(1)
				WorkerFor(cw, 0, innerN, func(l2, h2 int) {
					inner.Add(int64(h2 - l2))
				}, Options{Strategy: DynamicStealing, Chunk: 16})
			}
		}, Options{Strategy: DynamicStealing, Chunk: 2})
	})
	for i := range outerCounts {
		if c := outerCounts[i].Load(); c != 1 {
			t.Fatalf("outer iteration %d ran %d times", i, c)
		}
	}
	if got := inner.Load(); got != outerN*innerN {
		t.Fatalf("inner iterations = %d, want %d", got, outerN*innerN)
	}
}

// TestStealHalfPanicUnwind: a body that panics mid-range while thieves
// are active must surface exactly one TaskPanicError at the initiating
// Wait, and the pool must stay usable — the unwind path Resets the
// published slot so the dead loop stops advertising work.
func TestStealHalfPanicUnwind(t *testing.T) {
	pool := sched.NewPool(8, 321)
	defer pool.Close()
	for _, s := range []Strategy{DynamicStealing, Hybrid} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%v: panic did not surface", s)
				}
				if _, ok := r.(*sched.TaskPanicError); !ok {
					t.Fatalf("%v: recovered %T, want *sched.TaskPanicError", s, r)
				}
			}()
			For(pool, 0, 1<<14, func(lo, hi int) {
				if lo >= 1<<12 {
					panic("boom")
				}
			}, Options{Strategy: s, Chunk: 8})
		}()
		// The pool must still run clean loops afterwards.
		var count atomic.Int64
		For(pool, 0, 10000, func(lo, hi int) {
			count.Add(int64(hi - lo))
		}, Options{Strategy: s, Chunk: 8})
		if count.Load() != 10000 {
			t.Fatalf("%v: pool broken after panic: %d/10000 iterations", s, count.Load())
		}
	}
}
