package loop

// The per-chunk tax: every scheduling chunk of the chunk-at-a-time
// strategies used to pay a cancellation poll, a demand-census probe, and
// an injection-queue probe — four to six atomic loads that dominate the
// loop once chunks shrink toward the paper's fine-grained regime. The
// pacer amortizes them: the checks run once every k-th chunk, with k
// derived from the measured body cost so the *time* between polls stays
// bounded no matter how small the chunks are.
//
//	k = clamp(pollBudgetNanos / chunkNanos, 1, maxPollStride)
//
// chunkNanos comes from the tuner's EWMA chunk-cost estimate when the
// loop went through Auto (Decision.ChunkCostNanos); fixed-strategy
// entries time their first chunk with two clock reads and derive k
// online. Either way the responsiveness bound is the same: a worker
// notices a tripped canceller, a hungry thief, or a pending submission
// within at most k chunks ≈ pollBudgetNanos of body work (plus the chunk
// in flight), and never more than maxPollStride chunks even when the
// cost estimate is wrong.
//
// Which loops stride: the steal-half owners (rangeSet.runOwned — serving
// DynamicStealing and the hybrid partitions) and the shared-counter team
// (sharingFor). Guided keeps its per-grab polls: its grabs shrink
// geometrically from remaining/2P, so the polls are already amortized
// over large chunks and the tail's small grabs are exactly where
// responsiveness matters. The hybrid claim walk polls per *claim*, not
// per chunk — there are at most R = 2^⌈log2 P⌉+1 claims per loop — so it
// keeps its per-claim poll too.

const (
	// pollBudgetNanos is the target interval between poll windows: about
	// 100µs of body work, the documented cancellation-latency budget.
	pollBudgetNanos = 100_000
	// maxPollStride caps the stride so a bad (too-cheap) first sample or
	// a stale tuner estimate cannot defer polls indefinitely.
	maxPollStride = 64
)

// pollStrideFor derives the poll stride from an estimated per-chunk cost
// in nanoseconds, clamped to [1, maxPollStride]. Callers pass a positive
// estimate; zero or negative (no estimate) maps to stride 1.
func pollStrideFor(chunkNanos int64) int32 {
	if chunkNanos <= 0 {
		return 1
	}
	k := pollBudgetNanos / chunkNanos
	if k < 1 {
		return 1
	}
	if k > maxPollStride {
		return maxPollStride
	}
	return int32(k)
}
