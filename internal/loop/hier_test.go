package loop

import (
	"sync/atomic"
	"testing"

	"hybridloop/internal/sched"
	"hybridloop/internal/trace"
)

// stealOnce hand-publishes [lo, hi) in victimID's descriptor slot of a
// fresh rangeSet and has thief run one trySteal sweep against it,
// returning the trace of the attempt plus the stolen bounds.
//
// The pools used by the callers are shaped so the sweep is free of any
// shared state the pool's own (possibly still-starting) workers touch:
// every victim list the thief sweeps has length ≤ 1, so the rotation
// start never draws from the thief's RNG, and chunk is sized so the
// stolen piece executes inline on the test goroutine — no publish in the
// thief's slot, no demand poll, no wakeups.
func stealOnce(t *testing.T, pool *sched.Pool, victimID, lo, hi, chunk int) (tr *trace.Log, slo, shi int) {
	t.Helper()
	tr = trace.New(1 << 10)
	var g sched.Group
	var rs rangeSet
	rs.init(pool.P(), &g, func(w *sched.Worker, lo, hi int) {}, &Options{Trace: tr}, chunk)
	if !rs.slots[victimID].Publish(lo, hi) {
		t.Fatalf("Publish failed for victim %d", victimID)
	}
	g.Add(1)
	rs.active.Add(1)
	if !rs.trySteal(pool.Worker(0)) {
		t.Fatalf("trySteal found nothing with victim %d published", victimID)
	}
	for _, ev := range tr.Events() {
		if ev.Kind == trace.RangeSplit || ev.Kind == trace.RangeSplitRemote {
			return tr, int(ev.A), int(ev.B)
		}
	}
	t.Fatalf("no range-split event traced for victim %d", victimID)
	return nil, 0, 0
}

// TestRemoteStealTakesLargerFraction drives one steal sweep against a
// hand-published range descriptor and pins the steal-size policy end to
// end: a cross-socket thief takes the remote fraction (default ¾) of
// the victim's remainder where a same-socket thief takes half, the
// trace records the transfer under the distance-specific kind, and the
// scheduler counters attribute the distance.
func TestRemoteStealTakesLargerFraction(t *testing.T) {
	// Two sockets, one worker each: worker 1 is worker 0's only victim,
	// and it is remote. Chunk 80 keeps the stolen ¾ (75) inline.
	pool := sched.NewPoolPlaced(2, 7, false, sched.CompactPlacement(2, 1))
	defer pool.Close()
	pool.ResetStats()

	tr, lo, hi := stealOnce(t, pool, 1, 0, 100, 80)
	if lo != 25 || hi != 100 {
		t.Fatalf("remote steal took [%d,%d), want [25,100) — the ¾ fraction", lo, hi)
	}
	if n := countKind(tr, trace.RangeSplitRemote); n != 1 {
		t.Fatalf("remote steal traced %d RangeSplitRemote events, want 1", n)
	}
	if n := countKind(tr, trace.RangeSplit); n != 0 {
		t.Fatalf("remote steal traced %d local RangeSplit events, want 0", n)
	}
	if st := pool.Stats(); st.RangeSteals != 1 || st.RemoteRangeSteals != 1 {
		t.Fatalf("placed Stats: RangeSteals=%d RemoteRangeSteals=%d, want 1 and 1",
			st.RangeSteals, st.RemoteRangeSteals)
	}

	// Same victim shape on a flat pool: worker 1 is local, steal-half.
	flat := sched.NewPool(2, 7)
	defer flat.Close()
	flat.ResetStats()

	tr, lo, hi = stealOnce(t, flat, 1, 0, 100, 80)
	if lo != 50 || hi != 100 {
		t.Fatalf("local steal took [%d,%d), want [50,100) — steal-half", lo, hi)
	}
	if n := countKind(tr, trace.RangeSplit); n != 1 {
		t.Fatalf("local steal traced %d RangeSplit events, want 1", n)
	}
	if n := countKind(tr, trace.RangeSplitRemote); n != 0 {
		t.Fatalf("local steal traced %d RangeSplitRemote events, want 0", n)
	}
	if st := flat.Stats(); st.RangeSteals != 1 || st.RemoteRangeSteals != 0 {
		t.Fatalf("flat Stats: RangeSteals=%d RemoteRangeSteals=%d, want 1 and 0",
			st.RangeSteals, st.RemoteRangeSteals)
	}
}

// TestRemoteStealFractionTunable checks that SetRemoteStealFraction
// reaches the steal path: with a ⅞ remote fraction configured, a
// cross-socket thief takes ⅞ of the remainder.
func TestRemoteStealFractionTunable(t *testing.T) {
	pl := sched.CompactPlacement(2, 1).SetRemoteStealFraction(7, 8)
	pool := sched.NewPoolPlaced(2, 7, false, pl)
	defer pool.Close()

	// ⅞ of [0,80) is 70, inline under chunk 75.
	_, lo, hi := stealOnce(t, pool, 1, 0, 80, 75)
	if lo != 10 || hi != 80 {
		t.Fatalf("remote steal took [%d,%d), want [10,80) — the configured ⅞", lo, hi)
	}
}

// TestHierarchicalRangeStealReconciliation is the placed-pool version of
// TestRangeSplitMatchesRangeSteals: under a 2×4 placement the trace
// splits range steals into RangeSplit (same-socket) and
// RangeSplitRemote (cross-socket), and the two views must reconcile
// exactly — RangeSteals counts both kinds together, RemoteRangeSteals
// exactly the remote kind.
func TestHierarchicalRangeStealReconciliation(t *testing.T) {
	pool := sched.NewPoolPlaced(8, 4242, false, sched.CompactPlacement(2, 4))
	defer pool.Close()
	pool.ResetStats()
	tr := trace.New(1 << 20)

	loops := 10
	if testing.Short() {
		loops = 4
	}
	var sink atomic.Int64
	for i := 0; i < loops; i++ {
		s := DynamicStealing
		if i%2 == 1 {
			s = Hybrid
		}
		ForW(pool, 0, 1<<14, gateFirstChunk(pool, func(w *sched.Worker, lo, hi int) {
			sink.Add(int64(hi - lo))
		}), Options{Strategy: s, Chunk: 8, Trace: tr})
	}

	local := countKind(tr, trace.RangeSplit)
	remote := countKind(tr, trace.RangeSplitRemote)
	st := pool.Stats()
	if local+remote != int(st.RangeSteals) {
		t.Fatalf("trace has %d local + %d remote split events, Stats.RangeSteals = %d — views disagree",
			local, remote, st.RangeSteals)
	}
	if remote != int(st.RemoteRangeSteals) {
		t.Fatalf("trace has %d RangeSplitRemote events, Stats.RemoteRangeSteals = %d — views disagree",
			remote, st.RemoteRangeSteals)
	}
	if st.RangeSteals == 0 {
		t.Fatal("no range steals occurred; the reconciliation was vacuous")
	}
	if tr.Dropped() != 0 {
		t.Fatalf("trace dropped %d events; enlarge the log for this test", tr.Dropped())
	}
}
