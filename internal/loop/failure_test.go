package loop

import (
	"fmt"
	"sync/atomic"
	"testing"

	"hybridloop/internal/rng"
	"hybridloop/internal/sched"
)

// TestFailureInjectionRandomPanics injects panics at random iterations of
// random strategies and verifies three properties every time: the panic
// surfaces to the caller as a *sched.TaskPanicError (never kills a worker
// goroutine), the pool remains fully functional afterwards, and runs
// without injected panics still execute every iteration exactly once.
func TestFailureInjectionRandomPanics(t *testing.T) {
	gen := rng.NewXoshiro256(777)
	pool := sched.NewPool(4, 42)
	defer pool.Close()

	runOnce := func(strat Strategy, n, panicAt int) (recovered any) {
		defer func() { recovered = recover() }()
		For(pool, 0, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if i == panicAt {
					panic(fmt.Sprintf("injected@%d", i))
				}
			}
		}, Options{Strategy: strat, Chunk: 1 + gen.Intn(32)})
		return nil
	}

	for round := 0; round < 60; round++ {
		strat := allStrategies[gen.Intn(len(allStrategies))]
		n := 100 + gen.Intn(5000)
		inject := gen.Intn(2) == 0
		panicAt := -1
		if inject {
			panicAt = gen.Intn(n)
		}
		rec := runOnce(strat, n, panicAt)
		if inject && rec == nil {
			t.Fatalf("round %d (%v): injected panic did not surface", round, strat)
		}
		if !inject && rec != nil {
			t.Fatalf("round %d (%v): unexpected panic %v", round, strat, rec)
		}
		if rec != nil {
			if _, ok := rec.(*sched.TaskPanicError); !ok {
				t.Fatalf("round %d (%v): panic type %T, want *TaskPanicError", round, strat, rec)
			}
		}
		// The pool must still work perfectly right after.
		var count atomic.Int64
		For(pool, 0, 1000, func(lo, hi int) {
			count.Add(int64(hi - lo))
		}, Options{Strategy: strat})
		if count.Load() != 1000 {
			t.Fatalf("round %d (%v): pool degraded after panic — %d iterations", round, strat, count.Load())
		}
	}
}

// TestFailureInjectionNestedPanic: a panic in an inner nested loop must
// surface through the outer loop to the caller, and the hybrid loop
// registry must not be left holding dead loops.
func TestFailureInjectionNestedPanic(t *testing.T) {
	pool := sched.NewPool(4, 43)
	defer pool.Close()
	caught := false
	func() {
		defer func() { caught = recover() != nil }()
		pool.Run(func(w *sched.Worker) {
			WorkerForW(w, 0, 8, func(cw *sched.Worker, lo, hi int) {
				for i := lo; i < hi; i++ {
					WorkerFor(cw, 0, 50, func(l2, h2 int) {
						if l2 >= 25 {
							panic("inner boom")
						}
					}, Options{Strategy: Hybrid, Chunk: 5})
				}
			}, Options{Strategy: Hybrid, Chunk: 1})
		})
	}()
	if !caught {
		t.Fatal("nested panic did not surface")
	}
	// Subsequent hybrid loops must work (registry not corrupted).
	var count atomic.Int64
	For(pool, 0, 2000, func(lo, hi int) { count.Add(int64(hi - lo)) },
		Options{Strategy: Hybrid})
	if count.Load() != 2000 {
		t.Fatalf("hybrid loop after nested panic: %d iterations", count.Load())
	}
}

// TestPanicInRecorder: even instrumentation panics (a Recorder blowing
// up) must not kill workers.
type bombRecorder struct{ calls atomic.Int64 }

func (b *bombRecorder) Record(worker, begin, end int) {
	if b.calls.Add(1) == 3 {
		panic("recorder boom")
	}
}

func TestPanicInRecorder(t *testing.T) {
	pool := sched.NewPool(2, 44)
	defer pool.Close()
	func() {
		defer func() { recover() }()
		For(pool, 0, 1000, func(lo, hi int) {}, Options{
			Strategy: Hybrid, Chunk: 10, Recorder: &bombRecorder{},
		})
	}()
	var count atomic.Int64
	For(pool, 0, 500, func(lo, hi int) { count.Add(int64(hi - lo)) }, Options{})
	if count.Load() != 500 {
		t.Fatalf("pool degraded after recorder panic: %d", count.Load())
	}
}
