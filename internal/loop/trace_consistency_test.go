package loop

import (
	"sync/atomic"
	"testing"

	"hybridloop/internal/core"
	"hybridloop/internal/sched"
	"hybridloop/internal/trace"
)

func countKind(tr *trace.Log, k trace.Kind) int {
	n := 0
	for _, ev := range tr.Events() {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// TestStealEntryOnlyOnClaim is the regression test for the phantom
// steal-entry bug: TrySteal used to emit trace.StealEntry before the
// claim walk, so a thief that lost every claim race logged an entry while
// Stats.LoopEntries (which counts TrySteal returning true) did not. The
// event must be emitted iff a partition was actually claimed. The claim
// race is reproduced by a goroutine claiming partitions concurrently with
// TrySteal; over many iterations both the win and lose branches occur,
// and the invariant must hold on every one.
func TestStealEntryOnlyOnClaim(t *testing.T) {
	pool := sched.NewPool(2, 1)
	defer pool.Close()
	thief := pool.Worker(1)

	for iter := 0; iter < 300; iter++ {
		ps := core.NewPartitionSet(0, 64, 4)
		tr := trace.New(256)
		h := &hybridLoop{
			ps:   ps,
			body: func(w *sched.Worker, lo, hi int) {},
			opts: &Options{Trace: tr, Chunk: 64},
			// chunk >= the whole range: claimed partitions execute inline
			// with no published range descriptors and no nested spawns, so
			// TrySteal is safe to call from the test goroutine (it touches
			// neither the worker's deque nor its RNG — the steal-half sweep
			// bails out on active == 0 before selecting a victim).
			chunk: 64,
		}
		h.initRanges(pool.P())
		h.g.Add(ps.R())

		raced := make(chan struct{})
		go func() {
			defer close(raced)
			c := core.NewClaimer(ps, 0)
			for {
				if _, ok := c.Next(); !ok {
					return
				}
			}
		}()
		entered := false
		if !ps.PeekClaimed(thief.ID()) {
			entered = h.TrySteal(thief)
		}
		<-raced

		want := 0
		if entered {
			want = 1
		}
		if got := countKind(tr, trace.StealEntry); got != want {
			t.Fatalf("iter %d: %d StealEntry events for TrySteal=%v, want %d",
				iter, got, entered, want)
		}
	}
}

// TestRangeSplitMatchesRangeSteals reconciles the trace's RangeSplit
// events against the scheduler's Stats.RangeSteals counter: both count
// exactly the successful StealHalf CASes, so across any set of fully
// traced loops on a freshly reset pool they must agree. Both lazily
// split strategies feed the same rangeSet.trySteal, so both are run,
// with each loop's first chunk gated until a steal lands (so the
// reconciliation is non-vacuous even on one CPU).
func TestRangeSplitMatchesRangeSteals(t *testing.T) {
	pool := sched.NewPool(8, 4242)
	defer pool.Close()
	pool.ResetStats()
	tr := trace.New(1 << 20)

	loops := 10
	if testing.Short() {
		loops = 4
	}
	var sink atomic.Int64
	for i := 0; i < loops; i++ {
		s := DynamicStealing
		if i%2 == 1 {
			s = Hybrid
		}
		ForW(pool, 0, 1<<14, gateFirstChunk(pool, func(w *sched.Worker, lo, hi int) {
			sink.Add(int64(hi - lo))
		}), Options{Strategy: s, Chunk: 8, Trace: tr})
	}

	got := countKind(tr, trace.RangeSplit)
	want := int(pool.Stats().RangeSteals)
	if got != want {
		t.Fatalf("trace has %d RangeSplit events, Stats.RangeSteals = %d — views disagree", got, want)
	}
	if want == 0 {
		t.Fatal("no range steals occurred; the reconciliation was vacuous")
	}
	if tr.Dropped() != 0 {
		t.Fatalf("trace dropped %d events; enlarge the log for this test", tr.Dropped())
	}
}

// TestTraceStealEntriesMatchLoopEntries checks end-to-end that, across
// many traced hybrid loops under real contention, the trace's StealEntry
// count equals the scheduler's LoopEntries counter exactly — the two
// views of "a worker entered a loop via the steal protocol" must agree.
func TestTraceStealEntriesMatchLoopEntries(t *testing.T) {
	pool := sched.NewPool(4, 42)
	defer pool.Close()
	pool.ResetStats()
	tr := trace.New(1 << 20)

	loops := 40
	if testing.Short() {
		loops = 10
	}
	var sink atomic.Int64
	for i := 0; i < loops; i++ {
		For(pool, 0, 1<<13, func(lo, hi int) {
			s := 0
			for j := lo; j < hi; j++ {
				s += j
			}
			sink.Add(int64(s))
		}, Options{Strategy: Hybrid, Chunk: 32, Trace: tr})
	}

	got := countKind(tr, trace.StealEntry)
	want := int(pool.Stats().LoopEntries)
	if got != want {
		t.Fatalf("trace has %d StealEntry events, Stats.LoopEntries = %d — views disagree", got, want)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("trace dropped %d events; enlarge the log for this test", tr.Dropped())
	}
}
