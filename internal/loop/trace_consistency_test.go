package loop

import (
	"sync/atomic"
	"testing"

	"hybridloop/internal/core"
	"hybridloop/internal/sched"
	"hybridloop/internal/trace"
)

func countKind(tr *trace.Log, k trace.Kind) int {
	n := 0
	for _, ev := range tr.Events() {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// TestStealEntryOnlyOnClaim is the regression test for the phantom
// steal-entry bug: TrySteal used to emit trace.StealEntry before the
// claim walk, so a thief that lost every claim race logged an entry while
// Stats.LoopEntries (which counts TrySteal returning true) did not. The
// event must be emitted iff a partition was actually claimed. The claim
// race is reproduced by a goroutine claiming partitions concurrently with
// TrySteal; over many iterations both the win and lose branches occur,
// and the invariant must hold on every one.
func TestStealEntryOnlyOnClaim(t *testing.T) {
	pool := sched.NewPool(2, 1)
	defer pool.Close()
	thief := pool.Worker(1)

	for iter := 0; iter < 300; iter++ {
		ps := core.NewPartitionSet(0, 64, 4)
		tr := trace.New(256)
		h := &hybridLoop{
			ps:   ps,
			body: func(w *sched.Worker, lo, hi int) {},
			opts: &Options{Trace: tr, Chunk: 64},
			// chunk >= the whole range: claimed partitions execute inline
			// with no nested spawns, so TrySteal is safe to call from the
			// test goroutine (it never touches the worker's deque).
			chunk: 64,
		}
		h.g.Add(ps.R())

		raced := make(chan struct{})
		go func() {
			defer close(raced)
			c := core.NewClaimer(ps, 0)
			for {
				if _, ok := c.Next(); !ok {
					return
				}
			}
		}()
		entered := false
		if !ps.PeekClaimed(thief.ID()) {
			entered = h.TrySteal(thief)
		}
		<-raced

		want := 0
		if entered {
			want = 1
		}
		if got := countKind(tr, trace.StealEntry); got != want {
			t.Fatalf("iter %d: %d StealEntry events for TrySteal=%v, want %d",
				iter, got, entered, want)
		}
	}
}

// TestTraceStealEntriesMatchLoopEntries checks end-to-end that, across
// many traced hybrid loops under real contention, the trace's StealEntry
// count equals the scheduler's LoopEntries counter exactly — the two
// views of "a worker entered a loop via the steal protocol" must agree.
func TestTraceStealEntriesMatchLoopEntries(t *testing.T) {
	pool := sched.NewPool(4, 42)
	defer pool.Close()
	pool.ResetStats()
	tr := trace.New(1 << 20)

	loops := 40
	if testing.Short() {
		loops = 10
	}
	var sink atomic.Int64
	for i := 0; i < loops; i++ {
		For(pool, 0, 1<<13, func(lo, hi int) {
			s := 0
			for j := lo; j < hi; j++ {
				s += j
			}
			sink.Add(int64(s))
		}, Options{Strategy: Hybrid, Chunk: 32, Trace: tr})
	}

	got := countKind(tr, trace.StealEntry)
	want := int(pool.Stats().LoopEntries)
	if got != want {
		t.Fatalf("trace has %d StealEntry events, Stats.LoopEntries = %d — views disagree", got, want)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("trace dropped %d events; enlarge the log for this test", tr.Dropped())
	}
}
