package loop

import (
	"sync/atomic"
	"time"

	"hybridloop/internal/deque"
	"hybridloop/internal/sched"
	"hybridloop/internal/trace"
)

// rangeSet is the shared stealable-range state of one lazily split loop
// (or of the per-partition doWork of one hybrid loop): a published range
// descriptor per worker, plus the loop body and the accounting group that
// Wait joins on. Both loop strategies that used eager divide-and-conquer
// (DynamicStealing's stealingFor and Hybrid's runPartition) run on it.
//
// The lazy protocol replaces the eager binary tree of lg(n/chunk) deque
// pushes per range with a single published word: the executing worker
// keeps its remaining [lo, hi) interval in its RangeSlot, consumes it one
// chunk at a time from the front, and polls the pool's thief-demand hint
// each chunk. When no thief ever shows up — the common case, because the
// claim phase already balanced the load — the whole range executes with
// zero deque traffic and zero allocations. A thief CASes off the upper
// half of a victim's remaining range (steal-half) and becomes a lazy
// owner of the stolen half in its own slot, so splitting recurses exactly
// as deep as demand drives it.
//
// Accounting invariants (all atomics are sequentially consistent):
//
//   - A published slot counts as one pending unit in g ("the hold"),
//     added before consumption starts and released by the owner after it
//     observes its slot empty. Only the owner ever empties its slot:
//     StealHalf always leaves at least one iteration behind.
//   - A thief Adds to g BEFORE attempting its CAS and Dones after
//     executing the stolen half (or immediately, if the CAS failed). A
//     successful steal CAS precedes the owner's emptying CAS in the
//     slot's modification order, so by the time the owner releases its
//     hold the thief's Add is already visible — the group can never hit
//     zero while stolen work is in flight.
//
// Ranges whose bounds exceed int32, and re-entrant entries whose slot is
// still occupied (a worker helping inside a nested Wait while its own
// published range is suspended), fall back to the eager SpawnRange
// lowering — correct, merely eager.
type rangeSet struct {
	slots  []deque.RangeSlot // indexed by worker ID
	active atomic.Int32      // published, not-yet-released slots
	g      *sched.Group
	body   BodyW
	opts   *Options
	chunk  int
	stride atomic.Int32    // measured poll stride, shared across entries (0 = not yet measured)
	task   sched.RangeTask // eager-fallback task; re-enters runOwned
}

// initRangeSet wires a rangeSet for a pool of p workers. The single task
// closure is the only per-loop allocation besides the slot array.
func (rs *rangeSet) init(p int, g *sched.Group, body BodyW, opts *Options, chunk int) {
	rs.slots = make([]deque.RangeSlot, p)
	rs.g = g
	rs.body = body
	rs.opts = opts
	rs.chunk = chunk
	rs.task = func(cw *sched.Worker, lo, hi int) { rs.runOwned(cw, lo, hi) }
}

// runOwned executes [lo, hi) on w as its lazy owner: publish the range in
// w's slot, then consume chunk-at-a-time while thieves may halve the
// remainder. Falls back to the eager spawn lowering when the range does
// not pack (int32 overflow) or the slot is occupied (re-entrant nested
// entry).
//
//sched:noalloc
func (rs *rangeSet) runOwned(w *sched.Worker, lo, hi int) {
	cc := rs.opts.Cancel
	if cc.Cancelled() {
		// A range handed to a dead loop (an eager-fallback spawn or a
		// stolen half dequeued after the token tripped) is abandoned
		// before it is ever published.
		if rs.opts.Trace != nil {
			rs.opts.Trace.Add(w.ID(), trace.Cancel, int64(lo), int64(hi))
		}
		return
	}
	if hi-lo <= rs.chunk {
		runChunk(w, rs.body, rs.opts, lo, hi)
		return
	}
	s := &rs.slots[w.ID()]
	if !s.Publish(lo, hi) {
		rs.runEager(w, lo, hi)
		return
	}
	rs.g.Add(1) // the hold: the published slot is outstanding work
	rs.active.Add(1)
	defer func() {
		// On the normal path the slot is already empty and Reset is a
		// no-op; on a panic unwind it abandons the remainder so a dying
		// loop stops advertising stealable work and a thief mid-probe
		// finds nothing to steal from the unwinding owner.
		s.Reset()
		rs.active.Add(-1)
		rs.g.Done()
	}()
	pool := w.Pool()
	// The cancel, demand, and inject polls — and, crucially, the TakeFront
	// CAS itself — run once per poll window of stride chunks (see
	// pacer.go): the owner claims a whole window from its slot in ONE CAS
	// and slices it into chunk-sized body calls with plain arithmetic, so
	// steady-state consumption costs one atomic op per ~pollBudgetNanos of
	// body work instead of one per chunk. The stride comes from the
	// tuner's chunk-cost estimate when set; otherwise the first entry
	// times one chunk and publishes the stride in rs.stride for every
	// later entry of the same loop (other partitions, stolen halves).
	//
	// The window bounds both responsiveness and privatization: a claimed
	// window is no longer visible to StealHalf, and cancellation is only
	// polled between windows, so a worker holds at most stride chunks
	// (≈ pollBudgetNanos of work, ≤ maxPollStride chunks) beyond any
	// external event. The entry Cancelled check above covers the first
	// window.
	stride := rs.opts.pollStride
	if stride == 0 {
		stride = rs.stride.Load()
	}
	if stride == 0 {
		clo, chi, ok := s.TakeFront(rs.chunk)
		if !ok {
			return
		}
		t0 := time.Now()
		execChunk(w, rs.body, rs.opts, clo, chi)
		stride = pollStrideFor(time.Since(t0).Nanoseconds())
		rs.stride.Store(stride)
	}
	window := int(stride) * rs.chunk
	for {
		wlo, whi, ok := s.TakeFront(window)
		if !ok {
			return
		}
		for clo := wlo; clo < whi; clo += rs.chunk {
			chi := clo + rs.chunk
			if chi > whi {
				chi = whi
			}
			execChunk(w, rs.body, rs.opts, clo, chi)
		}
		if cc.Cancelled() {
			// Poison the published descriptor: the remainder is taken out
			// of circulation atomically, so a concurrent StealHalf either
			// completed first (its half is drained by the thief's own
			// runOwned entry check) or observes an empty slot.
			if alo, ahi, ok := s.Abandon(); ok && rs.opts.Trace != nil {
				rs.opts.Trace.Add(w.ID(), trace.Cancel, int64(alo), int64(ahi))
			}
			return
		}
		// The demand poll: only when idle capacity exists AND surplus
		// remains does the owner spend a wakeup routing a thief to its
		// published range.
		if s.Remaining() > rs.chunk && pool.Demand() {
			pool.MeetDemand()
		}
		// Cross-loop latency fairness: a newly submitted loop's root sits
		// in the injection queue, and with every worker mid-partition
		// nobody would return to runOne for a long time — so owners
		// service one pending submission per poll window. The detour
		// leaves this loop's published range stealable, so its load
		// balancing continues underneath the helper.
		if pool.InjectPending() {
			pool.HelpOneInjected(w)
		}
	}
}

// runEager is the pre-lazy lowering kept as the fallback: recursive
// binary division spawned into the deque so thieves steal the biggest
// remaining pieces. Stolen subtrees re-enter runOwned on the thief and
// turn lazy again.
func (rs *rangeSet) runEager(w *sched.Worker, lo, hi int) {
	for hi-lo > rs.chunk {
		mid := lo + (hi-lo)/2
		w.SpawnRange(rs.g, rs.task, mid, hi)
		hi = mid
	}
	runChunk(w, rs.body, rs.opts, lo, hi)
}

// trySteal makes one steal sweep over the published slots, hierarchically:
// same-socket victims first (steal-half), then remote sockets (a larger
// StealBack fraction — default ¾ of the remainder — so the ~515-cycle
// remote-L3 line cost is amortized over more iterations per transfer).
// Victim lists come precomputed from the worker (self excluded, so the
// random rotation first-probes every victim with equal probability). On
// success the thief executes the stolen piece as a lazy owner (protected,
// so a panicking body surfaces at the loop's Wait rather than killing the
// worker) and returns true.
func (rs *rangeSet) trySteal(w *sched.Worker) bool {
	if len(rs.slots) == 0 || rs.active.Load() == 0 || rs.opts.Cancel.Cancelled() {
		// A cancelled loop feeds no thieves: whatever its slots still
		// hold is being abandoned by their owners.
		return false
	}
	local, remote := w.Victims()
	if rs.sweepSteal(w, local, false) {
		return true
	}
	return rs.sweepSteal(w, remote, true)
}

// sweepSteal probes each victim's published slot once, rotating from a
// uniformly drawn start; remote selects the cross-socket transfer
// fraction and the distance attribution (counters + trace kind).
func (rs *rangeSet) sweepSteal(w *sched.Worker, victims []*sched.Worker, remote bool) bool {
	n := len(victims)
	if n == 0 {
		return false
	}
	num, den := 1, 2
	if remote {
		num, den = w.Pool().Placement().RemoteStealFraction()
	}
	start := 0
	if n > 1 {
		start = w.RNG().Intn(n)
	}
	for k := 0; k < n; k++ {
		s := &rs.slots[victims[(start+k)%n].ID()]
		if s.Remaining() <= rs.chunk {
			continue
		}
		// Optimistic Add: ordered before the CAS, so a successful steal
		// is enrolled in the group before the victim can possibly release
		// its hold (see the invariant note on rangeSet).
		rs.g.Add(1)
		lo, hi, ok := s.StealBack(rs.chunk, num, den)
		if !ok {
			rs.g.Done()
			continue
		}
		w.NoteRangeSteal(remote)
		if rs.opts.Trace != nil {
			kind := trace.RangeSplit
			if remote {
				kind = trace.RangeSplitRemote
			}
			rs.opts.Trace.Add(w.ID(), kind, int64(lo), int64(hi))
			rs.opts.Trace.Add(w.ID(), trace.StealEntry, int64(w.ID()), 0)
		}
		if s.Remaining() > rs.chunk {
			// Wake chaining: the victim still has surplus after this
			// steal; recruit the next parked worker toward it.
			w.Pool().Notify()
		}
		rs.g.Protect(func() { rs.runOwned(w, lo, hi) })
		rs.g.Done()
		return true
	}
	return false
}

// lazyLoop adapts a rangeSet to the pool's loop registry so idle workers
// discover published ranges through the same probe that serves the hybrid
// steal protocol. DynamicStealing loops register one for their lifetime;
// thieves then reach the descriptor slots with a registry probe instead
// of popping pre-spawned subtree nodes off a deque.
type lazyLoop struct {
	rs rangeSet
	g  sched.Group
}

// Live reports whether any published range still holds work. Claim-free
// loops are live exactly while a slot is outstanding.
func (l *lazyLoop) Live() bool { return l.rs.active.Load() > 0 }

// TrySteal attempts one steal-half sweep on behalf of idle worker w.
func (l *lazyLoop) TrySteal(w *sched.Worker) bool { return l.rs.trySteal(w) }
