package loop

import (
	"bytes"
	"runtime"
	"sync/atomic"
	"testing"

	"hybridloop/internal/adaptive"
	"hybridloop/internal/sched"
	"hybridloop/internal/trace"
)

func autoTuner(seed uint64, workers int) *adaptive.Tuner {
	return adaptive.NewTuner(adaptive.Config{
		Seed:    seed,
		Workers: workers,
		Arms:    AutoArms,
	})
}

func sitePC() uintptr {
	var pcs [1]uintptr
	runtime.Callers(1, pcs[:])
	return pcs[0]
}

func TestAutoExecutesEveryIteration(t *testing.T) {
	pool := sched.NewPool(4, 1)
	defer pool.Close()
	tu := autoTuner(1, 4)
	pc := sitePC()

	const n = 4096
	// Enough invocations to run through exploration and well into the
	// committed regime; every invocation must still execute each
	// iteration exactly once, whatever arm the tuner picked.
	for inv := 0; inv < 40; inv++ {
		counts := make([]int32, n)
		For(pool, 0, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		}, Options{Strategy: Auto, Tuner: tu, Site: pc})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("invocation %d: iteration %d executed %d times", inv, i, c)
			}
		}
	}
	sites := tu.Sites()
	if len(sites) != 1 {
		t.Fatalf("one call site produced %d profiles", len(sites))
	}
	if sites[0].Decisions != 40 {
		t.Fatalf("40 invocations, %d decisions recorded", sites[0].Decisions)
	}
	// A cost-drift re-exploration can be in flight at any fixed
	// invocation count on a noisy machine; keep invoking until the site
	// commits (mirrors the warm-start test in the public package).
	for tries := 0; sites[0].State != "committed" && tries < 50; tries++ {
		For(pool, 0, n, func(lo, hi int) {}, Options{Strategy: Auto, Tuner: tu, Site: pc})
		sites = tu.Sites()
	}
	if sites[0].State != "committed" {
		t.Fatalf("site still %s after 40+ invocations of <=9 arms x 2 plays", sites[0].State)
	}
}

func TestAutoWithoutTunerFallsBackToHybrid(t *testing.T) {
	pool := sched.NewPool(2, 1)
	defer pool.Close()
	var ran atomic.Int64
	For(pool, 0, 1000, func(lo, hi int) {
		ran.Add(int64(hi - lo))
	}, Options{Strategy: Auto})
	if ran.Load() != 1000 {
		t.Fatalf("ran %d of 1000 iterations", ran.Load())
	}
}

func TestAutoEmitsTuneDecision(t *testing.T) {
	pool := sched.NewPool(2, 1)
	defer pool.Close()
	tu := autoTuner(3, 2)
	tl := trace.New(0)
	pc := sitePC()
	for i := 0; i < 3; i++ {
		For(pool, 0, 512, func(lo, hi int) {}, Options{
			Strategy: Auto, Tuner: tu, Site: pc, Trace: tl,
		})
	}
	tunes := 0
	sawStart := false
	for _, ev := range tl.Events() {
		switch ev.Kind {
		case trace.LoopStart:
			sawStart = true
		case trace.TuneDecision:
			if !sawStart {
				t.Fatal("TuneDecision before any LoopStart")
			}
			if ev.B < 1 && ev.A != -1 {
				t.Fatalf("tune decision with chunk %d", ev.B)
			}
			tunes++
		}
	}
	if tunes != 3 {
		t.Fatalf("3 Auto invocations emitted %d TuneDecision events", tunes)
	}
	var buf bytes.Buffer
	tl.Render(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("tunes")) {
		t.Fatalf("Render lacks the tunes column:\n%s", buf.String())
	}
}

func TestAutoDeterministicDecisionSequence(t *testing.T) {
	// Same seed, same call sequence -> the tuner must hand out the same
	// arm sequence (decision determinism; observations differ run to run
	// but the exploration schedule may not).
	run := func() []string {
		pool := sched.NewPool(4, 42)
		defer pool.Close()
		tu := autoTuner(42, 4)
		pc := sitePC()
		for i := 0; i < 18; i++ {
			For(pool, 0, 2048, func(lo, hi int) {}, Options{Strategy: Auto, Tuner: tu, Site: pc})
		}
		var names []string
		for _, s := range tu.Sites() {
			for _, a := range s.Arms {
				if a.Plays > 0 {
					names = append(names, Strategy(a.Strategy).String())
				}
			}
		}
		return names
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("played-arm sets differ in size: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("played arms differ: %v vs %v", a, b)
		}
	}
}

func TestAutoArmsShape(t *testing.T) {
	big := AutoArms(1<<20, 8)
	for _, a := range big {
		if a.Serial {
			t.Fatal("serial arm offered for a 1M-iteration loop")
		}
	}
	if len(big) < 5 {
		t.Fatalf("large-n arm set too small: %d", len(big))
	}
	small := AutoArms(100, 8)
	hasSerial := false
	for _, a := range small {
		if a.Serial {
			hasSerial = true
		}
	}
	if !hasSerial {
		t.Fatal("no serial arm for a 100-iteration loop")
	}
	for _, arms := range [][]adaptive.Arm{big, small} {
		for _, a := range arms {
			if !a.Serial && (a.Strategy < int(Static) || a.Strategy > int(Hybrid)) {
				t.Fatalf("arm with out-of-range strategy %d", a.Strategy)
			}
		}
	}
}
