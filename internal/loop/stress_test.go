package loop

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridloop/internal/rng"
	"hybridloop/internal/sched"
)

// TestStressRandomPrograms is a mini-fuzzer: random sequences of parallel
// loops — random strategies, sizes, chunk settings, nesting depth, and
// concurrent outer goroutines — all verified for exactly-once execution.
// Run with -race for the full effect.
func TestStressRandomPrograms(t *testing.T) {
	gen := rng.NewXoshiro256(2026)
	for _, p := range []int{1, 3, 4, 8} {
		pool := sched.NewPool(p, gen.Next())
		for round := 0; round < 15; round++ {
			n := 1 + gen.Intn(20000)
			counts := make([]atomic.Int32, n)
			strat := allStrategies[gen.Intn(len(allStrategies))]
			chunk := gen.Intn(200) // 0 = default
			nested := gen.Intn(3) == 0
			For(pool, 0, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					counts[i].Add(1)
				}
			}, Options{Strategy: strat, Chunk: chunk})
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("P=%d round=%d %v chunk=%d: iteration %d ran %d times",
						p, round, strat, chunk, i, c)
				}
			}
			if !nested {
				continue
			}
			// Nested program: an outer loop whose body runs inner loops
			// of a second random strategy.
			inner := allStrategies[gen.Intn(len(allStrategies))]
			innerN := 1 + gen.Intn(300)
			outerN := 1 + gen.Intn(12)
			innerChunk := 1 + gen.Intn(50)
			var total atomic.Int64
			pool.Run(func(w *sched.Worker) {
				// Nested loops must run through the *executing* worker
				// (the BodyW parameter), never a captured outer worker.
				WorkerForW(w, 0, outerN, func(cw *sched.Worker, lo, hi int) {
					for i := lo; i < hi; i++ {
						WorkerFor(cw, 0, innerN, func(l2, h2 int) {
							total.Add(int64(h2 - l2))
						}, Options{Strategy: inner, Chunk: innerChunk})
					}
				}, Options{Strategy: strat, Chunk: 1})
			})
			if total.Load() != int64(outerN*innerN) {
				t.Fatalf("P=%d nested %v/%v: total %d, want %d",
					p, strat, inner, total.Load(), outerN*innerN)
			}
		}
		pool.Close()
	}
}

// TestStressConcurrentMixedLoops launches several goroutines that each run
// sequences of loops with different strategies against one pool at the
// same time — multiple live parallel regions, as in the paper's
// observation that "a task-parallel platform can schedule multiple
// parallel regions at the same time such that not all P are always
// available to execute a given parallel loop".
func TestStressConcurrentMixedLoops(t *testing.T) {
	pool := sched.NewPool(4, 7)
	defer pool.Close()
	const goroutines = 5
	const loopsEach = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen := rng.NewXoshiro256(uint64(g) * 31)
			for l := 0; l < loopsEach; l++ {
				n := 500 + gen.Intn(5000)
				strat := allStrategies[gen.Intn(len(allStrategies))]
				var count atomic.Int64
				For(pool, 0, n, func(lo, hi int) {
					count.Add(int64(hi - lo))
				}, Options{Strategy: strat, Chunk: 1 + gen.Intn(64)})
				if count.Load() != int64(n) {
					errs <- strat.String()
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for s := range errs {
		t.Fatalf("concurrent loop under %s lost iterations", s)
	}
}

// TestHybridLateArrival models the paper's different-arrival-time
// scenario: most workers are pinned down by long-running tasks when a
// hybrid loop starts; the initiating worker must make progress alone, and
// the stragglers must still be able to enter through the steal protocol
// once they free up — the loop completes either way.
func TestHybridLateArrival(t *testing.T) {
	const p = 4
	pool := sched.NewPool(p, 99)
	defer pool.Close()
	var release atomic.Bool
	var busy sched.Group
	// Pin down workers 1..3 with spin tasks that only end on release.
	for i := 1; i < p; i++ {
		pool.SpawnOn(i, &busy, func(cw *sched.Worker) {
			for !release.Load() {
				time.Sleep(50 * time.Microsecond)
			}
		})
	}
	// Release the stragglers midway through the loop.
	var executed atomic.Int64
	const n = 4000
	done := make(chan struct{})
	go func() {
		defer close(done)
		For(pool, 0, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				executed.Add(1)
				if executed.Load() == n/4 {
					release.Store(true)
				}
			}
		}, Options{Strategy: Hybrid, Chunk: 16})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("hybrid loop with late-arriving workers did not complete")
	}
	release.Store(true) // in case the loop was too fast to hit n/4 exactly
	pool.Run(func(w *sched.Worker) { w.Wait(&busy) })
	if executed.Load() != n {
		t.Fatalf("executed %d iterations, want %d", executed.Load(), n)
	}
}
