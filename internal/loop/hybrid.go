package loop

import (
	"hybridloop/internal/core"
	"hybridloop/internal/sched"
	"hybridloop/internal/trace"
)

// hybridLoop is one dynamic execution of a hybrid parallel loop: the
// partition structure A shared by all participating workers plus the
// bookkeeping to join the loop. It implements sched.HybridLoop so idle
// workers enter via the DoHybridLoop steal protocol.
type hybridLoop struct {
	ps    *core.PartitionSet
	body  BodyW
	opts  *Options
	chunk int
	g     sched.Group // partition completions + outstanding lazy ranges
	rs    rangeSet    // per-worker steal-half descriptors (doWork state)
}

// initRanges wires the lazy-splitting state for a pool of p workers. Must
// be called before the loop is registered or executed.
func (h *hybridLoop) initRanges(p int) {
	h.rs.init(p, &h.g, h.body, h.opts, h.chunk)
}

// hybridFor is InitHybridLoop (Algorithm 1): build the partition structure,
// register the loop for the steal protocol, run DoHybridLoop with the
// initiating worker's ID, and sync.
func hybridFor(w *sched.Worker, begin, end int, body BodyW, opts *Options) {
	p := w.Pool().P()
	var ps *core.PartitionSet
	if opts.Weight != nil {
		ps = core.NewPartitionSetParts(opts.split(begin, end, core.NextPow2(p)))
	} else {
		ps = core.NewPartitionSet(begin, end, p)
	}
	h := &hybridLoop{
		ps:    ps,
		body:  body,
		opts:  opts,
		chunk: opts.chunk(end-begin, p),
	}
	h.g.BindCancel(opts.Cancel)
	h.initRanges(p)
	// Every partition must be executed before the loop completes; the
	// group counts partition completions (Theorem 3: exactly R of them)
	// plus, transiently, the published ranges and stolen halves of the
	// lazy doWork inside each partition.
	h.g.Add(ps.R())
	w.Pool().RegisterLoopWeighted(h, opts.Priority)
	// Deferred so a body panic re-raised by Wait still removes the loop
	// from the registry.
	defer w.Pool().UnregisterLoop(h)
	h.doHybridLoop(w, false)
	w.Wait(&h.g)
}

// Live reports whether the loop can still feed a thief: unclaimed
// partitions remain, or some claimed partition's published range still
// has stealable iterations. Dead loops are skipped by the steal protocol
// without touching the flags.
func (h *hybridLoop) Live() bool {
	return h.ps.Unclaimed() > 0 || h.rs.active.Load() > 0
}

// TrySteal implements the steal protocol of Section III, extended with
// steal-half range stealing: a thief w first checks whether its
// designated partition r = w XOR 0 has been claimed; if not it enters
// DoHybridLoop with its own worker ID. With no claimable partition left
// it tries to CAS the upper half off another worker's published
// in-partition range before reverting to ordinary randomized work
// stealing. The trace.StealEntry event is emitted only once a partition
// is actually claimed or a half actually stolen, so a thief that loses
// every race logs no entry — the trace and the scheduler's
// Stats.LoopEntries counter (which counts TrySteal returning true)
// always agree.
func (h *hybridLoop) TrySteal(w *sched.Worker) bool {
	if h.opts.Cancel.Cancelled() {
		// A cancelled loop is drained, not entered: claim whatever is
		// left so the join's partition holds are released, execute
		// nothing. Returns false — the worker did no loop work.
		h.drain(w)
		return false
	}
	if !h.ps.PeekClaimed(w.ID()) && h.doHybridLoop(w, true) {
		return true
	}
	return h.rs.trySteal(w)
}

// drain claims every remaining partition without executing its body and
// releases the corresponding group holds, so the initiating Wait of a
// cancelled loop completes instead of blocking on partitions no worker
// will ever claim. Any worker may drain; the claim flags make each
// partition's release happen exactly once.
func (h *hybridLoop) drain(w *sched.Worker) {
	for r := 0; r < h.ps.R(); r++ {
		if h.ps.Claimed(r) || !h.ps.ClaimPartition(r) {
			continue
		}
		if h.opts.Trace != nil {
			part := h.ps.Partition(r)
			h.opts.Trace.Add(w.ID(), trace.Cancel, int64(part.Begin), int64(part.End))
		}
		h.g.Done()
	}
}

// doHybridLoop is Algorithm 3 for worker w: walk the claim sequence,
// executing each successfully claimed partition. The paper's work-first
// Cilk executes doWork immediately after a claim while the rest of the
// claim loop sits in the deque as a stealable continuation; here the
// continuation is reachable through the loop registry instead, with
// identical effect — other workers enter concurrently with their own IDs.
// viaSteal marks an entry through the steal protocol (for tracing).
// Returns whether any partition was claimed.
func (h *hybridLoop) doHybridLoop(w *sched.Worker, viaSteal bool) bool {
	c := core.NewClaimer(h.ps, w.ID())
	cc := h.opts.Cancel
	any := false
	failedBefore := 0
	for {
		if cc.Cancelled() {
			// The loop died mid-claim-sequence (a body error, panic, or
			// context cancellation): stop executing and drain whatever
			// the claim phase has not handed out yet.
			h.drain(w)
			return any
		}
		r, ok := c.Next()
		if ok && !any {
			// First successful claim: this worker has definitely entered
			// the loop. Record the steal entry now (not before the walk,
			// where a thief losing every race would log a phantom entry),
			// and chain the wakeup — partitions left unclaimed are surplus
			// another parked worker could be claiming concurrently.
			if viaSteal && h.opts.Trace != nil {
				h.opts.Trace.Add(w.ID(), trace.StealEntry, int64(w.ID()), 0)
			}
			if h.ps.Unclaimed() > 0 {
				w.Pool().Notify()
			}
		}
		if h.opts.Trace != nil {
			for f := failedBefore; f < c.Failed(); f++ {
				// The failed partition indexes are internal to the claim
				// sequence; only the count is reported.
				h.opts.Trace.Add(w.ID(), trace.ClaimFail, -1, 0)
			}
			failedBefore = c.Failed()
			if ok {
				h.opts.Trace.Add(w.ID(), trace.ClaimOK, int64(r), 0)
			}
		}
		if !ok {
			return any
		}
		any = true
		// Protect: a panicking body must surface at the loop's initiating
		// Wait, not kill the worker that entered via the steal protocol.
		h.g.Protect(func() { h.runPartition(w, r) })
		h.g.Done()
	}
}

// runPartition executes one claimed partition via the lazy doWork: the
// claiming worker publishes the partition's range in its steal-half
// descriptor and consumes it chunk by chunk, so an unbalanced partition
// can still be load balanced — but a partition nobody contends for runs
// with zero deque traffic instead of the former lg(n/chunk) eager
// splits. The worker does not wait here: outstanding stolen halves are
// enrolled in the loop group, so the claimer moves straight on to its
// next claim (work-conserving) and the initiating Wait joins everything.
func (h *hybridLoop) runPartition(w *sched.Worker, r int) {
	part := h.ps.Partition(r)
	if part.Empty() {
		return
	}
	h.rs.runOwned(w, part.Begin, part.End)
}
