package loop

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"hybridloop/internal/affinity"
	"hybridloop/internal/sched"
)

var allStrategies = []Strategy{Static, DynamicStealing, DynamicSharing, Guided, Hybrid}

func TestStrategyNames(t *testing.T) {
	want := map[Strategy]string{
		Static:          "omp_static",
		DynamicStealing: "vanilla",
		DynamicSharing:  "omp_dynamic",
		Guided:          "omp_guided",
		Hybrid:          "hybrid",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), name)
		}
	}
	if got := Strategy(99).String(); got != "Strategy(99)" {
		t.Errorf("unknown strategy String() = %q", got)
	}
}

func TestDefaultChunk(t *testing.T) {
	cases := []struct{ n, p, want int }{
		{100, 4, 3},        // 100/32 = 3
		{1 << 20, 4, 2048}, // capped at 2048
		{10, 32, 1},        // floor to 1
		{0, 8, 1},
	}
	for _, c := range cases {
		if got := DefaultChunk(c.n, c.p); got != c.want {
			t.Errorf("DefaultChunk(%d,%d) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
}

// checkExactlyOnce runs a loop and verifies every iteration executes
// exactly once.
func checkExactlyOnce(t *testing.T, pool *sched.Pool, s Strategy, n, chunk int) {
	t.Helper()
	counts := make([]atomic.Int32, n)
	For(pool, 0, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			counts[i].Add(1)
		}
	}, Options{Strategy: s, Chunk: chunk})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("%v n=%d chunk=%d: iteration %d ran %d times", s, n, chunk, i, c)
		}
	}
}

func TestAllStrategiesExactlyOnce(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5, 8} {
		pool := sched.NewPool(p, uint64(p)*7+1)
		for _, s := range allStrategies {
			for _, n := range []int{0, 1, 2, 7, 64, 1000, 4096} {
				for _, chunk := range []int{0, 1, 13, 512} {
					checkExactlyOnce(t, pool, s, n, chunk)
				}
			}
		}
		pool.Close()
	}
}

func TestNonZeroBase(t *testing.T) {
	pool := sched.NewPool(4, 3)
	defer pool.Close()
	for _, s := range allStrategies {
		var sum atomic.Int64
		For(pool, 100, 200, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum.Add(int64(i))
			}
		}, Options{Strategy: s})
		want := int64((100 + 199) * 100 / 2)
		if sum.Load() != want {
			t.Fatalf("%v: sum over [100,200) = %d, want %d", s, sum.Load(), want)
		}
	}
}

func TestEmptyAndReversedRanges(t *testing.T) {
	pool := sched.NewPool(2, 1)
	defer pool.Close()
	for _, s := range allStrategies {
		ran := atomic.Bool{}
		For(pool, 5, 5, func(lo, hi int) { ran.Store(true) }, Options{Strategy: s})
		For(pool, 10, 3, func(lo, hi int) { ran.Store(true) }, Options{Strategy: s})
		if ran.Load() {
			t.Fatalf("%v: body ran for empty range", s)
		}
	}
}

func TestUnbalancedBodyCompletes(t *testing.T) {
	pool := sched.NewPool(4, 9)
	defer pool.Close()
	for _, s := range allStrategies {
		var work atomic.Int64
		For(pool, 0, 256, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				// Triangular workload: iteration i costs ~i units.
				acc := 0
				for k := 0; k < i*10; k++ {
					acc += k
				}
				work.Add(int64(acc % 7))
				_ = acc
			}
		}, Options{Strategy: s, Chunk: 4})
	}
}

func TestNestedParallelLoops(t *testing.T) {
	pool := sched.NewPool(4, 17)
	defer pool.Close()
	for _, outer := range []Strategy{DynamicStealing, Hybrid} {
		for _, inner := range []Strategy{DynamicStealing, Hybrid} {
			var count atomic.Int64
			pool.Run(func(w *sched.Worker) {
				WorkerForW(w, 0, 10, func(cw *sched.Worker, lo, hi int) {
					for i := lo; i < hi; i++ {
						WorkerFor(cw, 0, 20, func(l2, h2 int) {
							count.Add(int64(h2 - l2))
						}, Options{Strategy: inner, Chunk: 3})
					}
				}, Options{Strategy: outer, Chunk: 1})
			})
			if count.Load() != 200 {
				t.Fatalf("outer=%v inner=%v: count = %d, want 200", outer, inner, count.Load())
			}
		}
	}
}

func TestRecorderCoversAllIterations(t *testing.T) {
	const n = 2048
	pool := sched.NewPool(4, 23)
	defer pool.Close()
	for _, s := range allStrategies {
		tr := affinity.NewTracker(n)
		For(pool, 0, n, func(lo, hi int) {}, Options{Strategy: s, Recorder: tr})
		if !tr.Covered() {
			t.Fatalf("%v: recorder did not cover all iterations", s)
		}
		tr.EndLoop()
	}
}

// TestStaticDeterministicAssignment: static partitioning must assign
// iteration i to the same worker in every execution — the property that
// gives it perfect loop affinity (Figure 2: omp_static = 100%).
func TestStaticDeterministicAssignment(t *testing.T) {
	const n, p = 1000, 4
	pool := sched.NewPool(p, 31)
	defer pool.Close()
	tr := affinity.NewTracker(n)
	For(pool, 0, n, func(lo, hi int) {}, Options{Strategy: Static, Recorder: tr})
	tr.EndLoop()
	first := tr.Assignment()
	for loopIdx := 0; loopIdx < 10; loopIdx++ {
		For(pool, 0, n, func(lo, hi int) {}, Options{Strategy: Static, Recorder: tr})
		if frac := tr.EndLoop(); frac != 1.0 {
			t.Fatalf("static loop %d: same-core fraction %v, want 1.0", loopIdx, frac)
		}
	}
	// And the partition map must be the canonical Split: iteration i on
	// worker i*p/n (equal partitions).
	for i, w := range first {
		wantLow := i * p / n
		if int(w) != wantLow && int(w) != wantLow+1 && int(w) != wantLow-1 {
			t.Fatalf("iteration %d on worker %d, far from block owner %d", i, w, wantLow)
		}
	}
}

// TestHybridSoloAffinity: with a single worker the hybrid claim order is
// fully deterministic, so affinity across consecutive loops is 100%.
func TestHybridSoloAffinity(t *testing.T) {
	const n = 512
	pool := sched.NewPool(1, 5)
	defer pool.Close()
	tr := affinity.NewTracker(n)
	for loopIdx := 0; loopIdx < 5; loopIdx++ {
		For(pool, 0, n, func(lo, hi int) {}, Options{Strategy: Hybrid, Recorder: tr})
		frac := tr.EndLoop()
		if loopIdx > 0 && frac != 1.0 {
			t.Fatalf("hybrid P=1 loop %d: same-core fraction %v, want 1.0", loopIdx, frac)
		}
	}
}

// TestHybridReductionCorrect exercises the hybrid path with a reduction
// whose result is order-independent, under concurrency (run with -race).
func TestHybridReductionCorrect(t *testing.T) {
	const n = 100000
	pool := sched.NewPool(8, 77)
	defer pool.Close()
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i % 97)
	}
	var want int64
	for _, v := range data {
		want += v
	}
	for round := 0; round < 5; round++ {
		var sum atomic.Int64
		For(pool, 0, n, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += data[i]
			}
			sum.Add(local)
		}, Options{Strategy: Hybrid})
		if sum.Load() != want {
			t.Fatalf("round %d: sum = %d, want %d", round, sum.Load(), want)
		}
	}
}

// TestConcurrentIndependentLoops runs several hybrid loops concurrently
// from different goroutines against one pool; each must complete correctly
// (this exercises multiple live loops in the steal-protocol registry).
func TestConcurrentIndependentLoops(t *testing.T) {
	pool := sched.NewPool(4, 13)
	defer pool.Close()
	const loops, n = 6, 5000
	var wg sync.WaitGroup
	errs := make([]int64, loops)
	for l := 0; l < loops; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			var count atomic.Int64
			For(pool, 0, n, func(lo, hi int) {
				count.Add(int64(hi - lo))
			}, Options{Strategy: Hybrid, Chunk: 64})
			errs[l] = count.Load()
		}(l)
	}
	wg.Wait()
	for l, c := range errs {
		if c != n {
			t.Fatalf("loop %d executed %d iterations, want %d", l, c, n)
		}
	}
}

// TestQuickStrategiesSumEquivalent: all strategies compute the same
// reduction for arbitrary sizes and chunk settings.
func TestQuickStrategiesSumEquivalent(t *testing.T) {
	pool := sched.NewPool(3, 41)
	defer pool.Close()
	prop := func(nRaw uint16, chunkRaw uint8) bool {
		n := int(nRaw) % 3000
		chunk := int(chunkRaw) % 100
		var want int64 = int64(n) * int64(n-1) / 2
		for _, s := range allStrategies {
			var sum atomic.Int64
			For(pool, 0, n, func(lo, hi int) {
				var local int64
				for i := lo; i < hi; i++ {
					local += int64(i)
				}
				sum.Add(local)
			}, Options{Strategy: s, Chunk: chunk})
			if sum.Load() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGuidedChunksDecrease(t *testing.T) {
	// With P=1 the guided schedule is sequential and the grabbed chunk
	// sizes must be non-increasing until the floor is reached.
	pool := sched.NewPool(1, 2)
	defer pool.Close()
	var sizes []int
	var mu sync.Mutex
	For(pool, 0, 10000, func(lo, hi int) {
		mu.Lock()
		sizes = append(sizes, hi-lo)
		mu.Unlock()
	}, Options{Strategy: Guided, Chunk: 16})
	if len(sizes) < 3 {
		t.Fatalf("guided produced only %d chunks", len(sizes))
	}
	for i := 1; i < len(sizes)-1; i++ { // last chunk may be a remainder
		if sizes[i] > sizes[i-1] {
			t.Fatalf("guided chunk %d grew: %v", i, sizes)
		}
	}
	if min := sizes[len(sizes)-2]; min < 16 && min != sizes[len(sizes)-1] {
		t.Fatalf("guided chunk fell below the floor: %v", sizes)
	}
}

// TestNestedInnerLoopInsideHybridBody runs a hybrid loop whose body itself
// contains sequential work per iteration, under odd worker counts (P=5 ->
// R=8 with unearmarked partitions), confirming the generalization of
// Section III for non-power-of-two P.
func TestHybridNonPowerOfTwoWorkers(t *testing.T) {
	for _, p := range []int{3, 5, 6, 7} {
		pool := sched.NewPool(p, uint64(p)*3)
		var count atomic.Int64
		For(pool, 0, 10007, func(lo, hi int) {
			count.Add(int64(hi - lo))
		}, Options{Strategy: Hybrid, Chunk: 32})
		if count.Load() != 10007 {
			t.Fatalf("P=%d: executed %d iterations, want 10007", p, count.Load())
		}
		pool.Close()
	}
}
