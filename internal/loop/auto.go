package loop

import (
	"sync/atomic"
	"time"

	"hybridloop/internal/adaptive"
	"hybridloop/internal/sched"
	"hybridloop/internal/trace"
)

// AutoArms builds the candidate configurations the tuner explores for an
// Auto loop of n iterations on workers workers — the Config.Arms
// callback of the pool tuner. The set covers the strategy choice the
// paper studies ({Hybrid, DynamicStealing, Static, Guided}; the shared-
// counter DynamicSharing is dominated by Guided on every workload in the
// ablation, so it is left out to keep exploration short), the serial
// shortcut for small trip counts, and coarser/finer chunking around the
// paper's default where the default chunk leaves room to scale.
func AutoArms(n, workers int) []adaptive.Arm {
	arms := []adaptive.Arm{
		{Strategy: int(Hybrid), ChunkScale: 1},
		{Strategy: int(DynamicStealing), ChunkScale: 1},
		{Strategy: int(Static), ChunkScale: 1, NoBalance: true},
		{Strategy: int(Guided), ChunkScale: 1},
	}
	if n <= 1<<14 {
		// Small enough that running inline can beat any parallel schedule
		// once per-loop overhead is counted.
		arms = append(arms, adaptive.Arm{ChunkScale: 1, Serial: true, NoBalance: true})
	}
	if DefaultChunk(n, workers) >= 8 {
		arms = append(arms,
			adaptive.Arm{Strategy: int(Hybrid), ChunkScale: 0.25},
			adaptive.Arm{Strategy: int(Hybrid), ChunkScale: 4},
			adaptive.Arm{Strategy: int(DynamicStealing), ChunkScale: 0.25},
			adaptive.Arm{Strategy: int(DynamicStealing), ChunkScale: 4},
		)
	}
	return arms
}

// paddedNanos is an atomic nanosecond counter on its own cache line, so
// concurrent workers timing chunks of one invocation do not false-share.
type paddedNanos struct {
	nanos atomic.Int64
	_     [56]byte
}

// invObs collects one Auto invocation's feedback: executed chunks and
// per-worker busy time, from which the finish closure derives the
// imbalance signal (max − min busy time over participating workers).
type invObs struct {
	start  time.Time
	chunks atomic.Int64
	busy   []paddedNanos // indexed by worker ID
}

func (o *invObs) runTimed(w *sched.Worker, body BodyW, lo, hi int) {
	t0 := time.Now()
	body(w, lo, hi)
	o.busy[w.ID()].nanos.Add(time.Since(t0).Nanoseconds())
	o.chunks.Add(1)
}

// beginAuto consults the tuner and rewrites opts in place with the
// decided concrete strategy, chunk, and serial cutoff. The returned
// closure (deferred by WorkerForW, so it runs even when the body panics)
// reports the invocation's outcome. Without a tuner — a nested free loop
// on a bare sched.Pool — Auto degrades to Hybrid.
func beginAuto(w *sched.Worker, begin, end int, opts *Options) func() {
	if opts.Tuner == nil {
		opts.Strategy = Hybrid
		return nil
	}
	n := end - begin
	pool := w.Pool()
	tuner := opts.Tuner
	d := tuner.Decide(opts.Site, n, opts.chunk(n, pool.P()))
	opts.Strategy = Strategy(d.Arm.Strategy)
	opts.Chunk = d.Chunk
	if d.SerialCutoff > opts.SerialCutoff {
		opts.SerialCutoff = d.SerialCutoff
	}
	if d.ChunkCostNanos > 0 {
		// The committed arm's chunk-cost estimate seeds the poll stride,
		// so strided strategies skip the online first-chunk measurement.
		opts.pollStride = pollStrideFor(d.ChunkCostNanos)
	}
	if opts.Trace != nil {
		strat := int64(d.Arm.Strategy)
		if d.Arm.Serial {
			strat = -1
		}
		opts.Trace.Add(w.ID(), trace.TuneDecision, strat, int64(d.Chunk))
	}
	if !d.Observe {
		// A steady-state play from the tuner's lock-free fast path: no
		// timing, no counter snapshots, no Report — the invocation runs
		// the committed configuration with zero observation overhead.
		return nil
	}
	o := &invObs{start: time.Now(), busy: make([]paddedNanos, pool.P())}
	opts.obs = o
	before := pool.Stats()
	return func() {
		if opts.Cancel.Cancelled() {
			// A cancelled (or panicked) run measures where the cancel
			// landed, not what the configuration costs: discard the
			// sample so the tuner is never trained on truncated loops.
			tuner.Discard(d)
			return
		}
		after := pool.Stats()
		elapsed := time.Since(o.start)
		// Imbalance over participating workers only: a serial or
		// single-worker run has nothing to balance, so it reports zero
		// rather than penalizing itself against idle workers.
		var minBusy, maxBusy int64
		participants := 0
		for i := range o.busy {
			b := o.busy[i].nanos.Load()
			if b <= 0 {
				continue
			}
			participants++
			if participants == 1 || b < minBusy {
				minBusy = b
			}
			if b > maxBusy {
				maxBusy = b
			}
		}
		var imb time.Duration
		if participants > 1 {
			imb = time.Duration(maxBusy - minBusy)
		}
		tuner.Report(d, adaptive.Observation{
			Elapsed:      elapsed,
			Iterations:   n,
			Chunks:       o.chunks.Load(),
			Steals:       after.Steals - before.Steals,
			FailedSteals: after.FailedSteals - before.FailedSteals,
			RangeSteals:  after.RangeSteals - before.RangeSteals,
			LoopEntries:  after.LoopEntries - before.LoopEntries,
			Imbalance:    imb,
		})
	}
}
