package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestAddAndEvents(t *testing.T) {
	l := New(10)
	l.Add(0, LoopStart, 0, 100)
	l.Add(1, Chunk, 0, 50)
	l.Add(2, Chunk, 50, 100)
	l.Add(0, LoopEnd, 0, 100)
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Kind != LoopStart || evs[1].Worker != 1 || evs[2].B != 100 {
		t.Fatalf("events wrong: %+v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].When < evs[i-1].When {
			t.Fatal("timestamps not monotone")
		}
	}
}

func TestCapacityAndDropped(t *testing.T) {
	l := New(3)
	for i := 0; i < 10; i++ {
		l.Add(0, Chunk, int64(i), int64(i+1))
	}
	if len(l.Events()) != 3 {
		t.Fatalf("%d events kept", len(l.Events()))
	}
	if l.Dropped() != 7 {
		t.Fatalf("Dropped = %d", l.Dropped())
	}
	l.Reset()
	if len(l.Events()) != 0 || l.Dropped() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestSummaryAggregates(t *testing.T) {
	l := New(0)
	l.Add(0, Chunk, 0, 10)
	l.Add(0, Chunk, 10, 30)
	l.Add(0, ClaimOK, 0, 0)
	l.Add(1, ClaimFail, -1, 0)
	l.Add(1, StealEntry, 1, 0)
	s := l.Summary()
	if len(s) != 2 {
		t.Fatalf("%d workers in summary", len(s))
	}
	if s[0].Worker != 0 || s[0].Chunks != 2 || s[0].Iterations != 30 || s[0].Claims != 1 {
		t.Fatalf("worker 0 summary %+v", s[0])
	}
	if s[1].FailedClaims != 1 || s[1].StealEntries != 1 {
		t.Fatalf("worker 1 summary %+v", s[1])
	}
}

func TestRenderAndDump(t *testing.T) {
	l := New(0)
	l.Add(3, Chunk, 0, 7)
	var buf bytes.Buffer
	l.Render(&buf)
	if !strings.Contains(buf.String(), "worker") || !strings.Contains(buf.String(), "1 events recorded") {
		t.Fatalf("render output:\n%s", buf.String())
	}
	buf.Reset()
	l.Dump(&buf)
	if !strings.Contains(buf.String(), "chunk") || !strings.Contains(buf.String(), "w3") {
		t.Fatalf("dump output:\n%s", buf.String())
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		LoopStart: "loop-start", LoopEnd: "loop-end", ClaimOK: "claim",
		ClaimFail: "claim-fail", StealEntry: "steal-entry", Chunk: "chunk",
		RangeSplit: "range-split", TuneDecision: "tune",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind string unhelpful")
	}
}

func TestConcurrentAdd(t *testing.T) {
	l := New(100000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Add(w, Chunk, int64(i), int64(i+1))
			}
		}(w)
	}
	wg.Wait()
	if len(l.Events()) != 8000 {
		t.Fatalf("%d events after concurrent adds", len(l.Events()))
	}
}
