// Package trace records scheduling events from parallel-loop executions —
// loop boundaries, claim attempts, partition executions, chunk runs — with
// timestamps and worker IDs, for debugging scheduling behaviour and for
// observing the hybrid scheme's claim dynamics on the real runtime.
//
// A Log is attached to loops via the public API's WithTrace option. The
// hot path pays one nil check when tracing is off and one short critical
// section per *chunk* (not per iteration) when on.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Kind classifies a scheduling event.
type Kind uint8

const (
	// LoopStart marks a parallel loop beginning; A = begin, B = end.
	LoopStart Kind = iota
	// LoopEnd marks the loop's completion on the initiating worker.
	LoopEnd
	// ClaimOK is a successful hybrid claim; A = partition.
	ClaimOK
	// ClaimFail is an unsuccessful hybrid claim; A = partition.
	ClaimFail
	// StealEntry is a worker entering a hybrid loop via the steal
	// protocol.
	StealEntry
	// Chunk is an executed chunk; A = begin, B = end.
	Chunk
	// RangeSplit is a lazy split: a thief CASed the upper half [A, B) off
	// a victim's published range descriptor (steal-half). Recorded by the
	// thief; one event per successful steal, so the per-log count equals
	// the scheduler's Stats.RangeSteals delta when every loop is traced.
	RangeSplit
	// TuneDecision is the adaptive autotuner choosing a configuration for
	// an Auto loop invocation: A = the chosen strategy (internal/loop's
	// enum; -1 for the serial shortcut), B = the resolved chunk size.
	// Emitted on the initiating worker right after LoopStart.
	TuneDecision
	// Cancel records work abandoned because the loop's cancellation token
	// tripped: [A, B) is the iteration range the recording worker gave up
	// without executing — a poisoned range descriptor's remainder, a
	// drained unclaimed partition, or the untouched tail of a shared
	// counter. One loop cancellation typically produces several Cancel
	// events, one per abandoning worker or drained partition.
	Cancel
	// RangeSplitRemote is a cross-socket lazy split: the thief and the
	// victim sit on different placement sockets, so the thief CASed off
	// the larger remote fraction [A, B) of the victim's published range.
	// Disjoint from RangeSplit — the scheduler's Stats.RangeSteals delta
	// equals the RangeSplit + RangeSplitRemote count, and its
	// Stats.RemoteRangeSteals delta equals the RangeSplitRemote count
	// alone, when every loop is traced.
	RangeSplitRemote
)

// String returns a short label for the event kind.
func (k Kind) String() string {
	switch k {
	case LoopStart:
		return "loop-start"
	case LoopEnd:
		return "loop-end"
	case ClaimOK:
		return "claim"
	case ClaimFail:
		return "claim-fail"
	case StealEntry:
		return "steal-entry"
	case Chunk:
		return "chunk"
	case RangeSplit:
		return "range-split"
	case RangeSplitRemote:
		return "range-split-remote"
	case TuneDecision:
		return "tune"
	case Cancel:
		return "cancel"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded scheduling event.
type Event struct {
	When   time.Duration // since the Log was created
	Worker int32
	Kind   Kind
	A, B   int64
}

// Log is a bounded in-memory event recorder, safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	start   time.Time
	events  []Event
	max     int
	dropped int64
}

// New returns a Log keeping at most capacity events (older events are
// retained; once full, further events are counted as dropped). capacity
// <= 0 selects a default of 1 << 16.
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Log{start: time.Now(), max: capacity}
}

// Add records an event. Safe for concurrent use.
func (l *Log) Add(worker int, k Kind, a, b int64) {
	now := time.Since(l.start)
	l.mu.Lock()
	if len(l.events) < l.max {
		l.events = append(l.events, Event{When: now, Worker: int32(worker), Kind: k, A: a, B: b})
	} else {
		l.dropped++
	}
	l.mu.Unlock()
}

// Events returns a copy of the recorded events in arrival order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Dropped returns how many events were discarded after the log filled.
func (l *Log) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Reset clears the log and restarts its clock.
func (l *Log) Reset() {
	l.mu.Lock()
	l.events = l.events[:0]
	l.dropped = 0
	l.start = time.Now()
	l.mu.Unlock()
}

// WorkerSummary aggregates one worker's activity.
type WorkerSummary struct {
	Worker       int
	Chunks       int
	Iterations   int64
	Claims       int
	FailedClaims int
	StealEntries int
	RangeSplits  int
	// RangeSplitsRemote counts the cross-socket subset separately (a
	// RangeSplitRemote event does NOT also count as a RangeSplit; sum the
	// two fields for total lazy splits).
	RangeSplitsRemote int
	TuneDecisions     int
	// Cancels counts Cancel events; AbandonedIters sums their ranges —
	// iterations this worker gave up unexecuted after its loop's token
	// tripped.
	Cancels        int
	AbandonedIters int64
}

// Summary returns per-worker aggregates, sorted by worker ID.
func (l *Log) Summary() []WorkerSummary {
	byWorker := map[int32]*WorkerSummary{}
	for _, ev := range l.Events() {
		s := byWorker[ev.Worker]
		if s == nil {
			s = &WorkerSummary{Worker: int(ev.Worker)}
			byWorker[ev.Worker] = s
		}
		switch ev.Kind {
		case Chunk:
			s.Chunks++
			s.Iterations += ev.B - ev.A
		case ClaimOK:
			s.Claims++
		case ClaimFail:
			s.FailedClaims++
		case StealEntry:
			s.StealEntries++
		case RangeSplit:
			s.RangeSplits++
		case RangeSplitRemote:
			s.RangeSplitsRemote++
		case TuneDecision:
			s.TuneDecisions++
		case Cancel:
			s.Cancels++
			s.AbandonedIters += ev.B - ev.A
		}
	}
	out := make([]WorkerSummary, 0, len(byWorker))
	for _, s := range byWorker {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// Render writes the per-worker summary followed by the event count.
func (l *Log) Render(w io.Writer) {
	fmt.Fprintf(w, "%-7s %8s %12s %7s %11s %13s %12s %6s %8s\n",
		"worker", "chunks", "iterations", "claims", "claim-fails", "steal-entries", "range-splits", "tunes", "cancels")
	for _, s := range l.Summary() {
		fmt.Fprintf(w, "%-7d %8d %12d %7d %11d %13d %12d %6d %8d\n",
			s.Worker, s.Chunks, s.Iterations, s.Claims, s.FailedClaims, s.StealEntries, s.RangeSplits, s.TuneDecisions, s.Cancels)
	}
	l.mu.Lock()
	n, dropped := len(l.events), l.dropped
	l.mu.Unlock()
	fmt.Fprintf(w, "%d events recorded, %d dropped\n", n, dropped)
}

// Dump writes every event, one per line, for detailed inspection.
func (l *Log) Dump(w io.Writer) {
	for _, ev := range l.Events() {
		fmt.Fprintf(w, "%12v w%-3d %-11s A=%d B=%d\n", ev.When, ev.Worker, ev.Kind, ev.A, ev.B)
	}
}
