package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateTryAcquireInFlightBudget(t *testing.T) {
	g := NewGate(2, 0, 0) // two slots, no rate limit
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("TryAcquire failed with free slots")
	}
	if g.TryAcquire() {
		t.Fatal("TryAcquire succeeded past the in-flight budget")
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("TryAcquire failed after Release freed a slot")
	}
	g.Release()
	g.Release()
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after full release, want 0", got)
	}
}

func TestGateTokenBucket(t *testing.T) {
	// 10 tokens/sec, burst 3: three immediate admits, then rejection until
	// the bucket refills (~100ms per token).
	g := NewGate(0, 10, 3)
	for i := 0; i < 3; i++ {
		if !g.TryAcquire() {
			t.Fatalf("TryAcquire %d rejected within burst capacity", i)
		}
		g.Release()
	}
	if g.TryAcquire() {
		t.Fatal("TryAcquire succeeded with an empty token bucket")
	}
	// After enough refill time one token must be back. Generous deadline
	// to stay robust on loaded CI machines.
	deadline := time.Now().Add(2 * time.Second)
	for !g.TryAcquire() {
		if time.Now().After(deadline) {
			t.Fatal("token bucket never refilled")
		}
		time.Sleep(10 * time.Millisecond)
	}
	g.Release()
}

func TestGateTokenFailureRollsBackSlot(t *testing.T) {
	// One slot, empty bucket after the first admit: the second TryAcquire
	// fails on the token and must give its slot back, or the gate wedges.
	g := NewGate(1, 0.001, 1)
	if !g.TryAcquire() {
		t.Fatal("first TryAcquire rejected")
	}
	g.Release()
	if g.TryAcquire() {
		t.Fatal("TryAcquire succeeded with an empty bucket")
	}
	if got := g.InFlight(); got != 0 {
		t.Fatalf("token rejection leaked an in-flight slot: InFlight = %d", got)
	}
}

func TestGateAcquireBlocksUntilRelease(t *testing.T) {
	g := NewGate(1, 0, 0)
	if !g.TryAcquire() {
		t.Fatal("TryAcquire rejected with a free slot")
	}
	done := make(chan error, 1)
	go func() { done <- g.Acquire(context.Background()) }()
	select {
	case err := <-done:
		t.Fatalf("Acquire returned %v with the budget exhausted", err)
	case <-time.After(20 * time.Millisecond):
	}
	g.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Acquire = %v after a slot freed, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire never unblocked after Release")
	}
	g.Release()
	if s := g.Stats(); s.Waited != 1 {
		t.Fatalf("Waited = %d, want 1", s.Waited)
	}
}

func TestGateAcquireCtxCancelDoesNotLeakSlot(t *testing.T) {
	g := NewGate(1, 0, 0)
	if !g.TryAcquire() {
		t.Fatal("TryAcquire rejected with a free slot")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire = %v, want DeadlineExceeded", err)
	}
	g.Release()
	// The cancelled waiter must not have consumed the slot it never got.
	if !g.TryAcquire() {
		t.Fatal("cancelled Acquire leaked the in-flight slot")
	}
	g.Release()
}

func TestGateAcquireCtxCancelDuringTokenWaitReleasesSlot(t *testing.T) {
	// Free slot but a drained, near-frozen bucket: Acquire gets the slot,
	// then times out waiting for a token — the slot must be returned.
	g := NewGate(1, 0.001, 1)
	if !g.TryAcquire() {
		t.Fatal("burst token unavailable")
	}
	g.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire = %v, want DeadlineExceeded", err)
	}
	if got := g.InFlight(); got != 0 {
		t.Fatalf("token-wait cancellation leaked a slot: InFlight = %d", got)
	}
}

func TestGateStatsCounters(t *testing.T) {
	g := NewGate(1, 0, 0)
	g.TryAcquire() // admitted
	g.TryAcquire() // rejected
	g.NoteInline()
	g.Release()
	s := g.Stats()
	if s.Admitted != 1 || s.Rejected != 1 || s.Inline != 1 || s.InFlight != 0 {
		t.Fatalf("Stats = %+v, want Admitted=1 Rejected=1 Inline=1 InFlight=0", s)
	}
}

// TestGateConcurrentAcquireRelease hammers the gate from many goroutines
// and checks the invariant the whole design exists for: the number of
// holders never exceeds the budget. Run with -race.
func TestGateConcurrentAcquireRelease(t *testing.T) {
	const budget = 4
	g := NewGate(budget, 0, 0)
	var cur, peak atomicMax
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if err := g.Acquire(context.Background()); err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				peak.observe(cur.add(1))
				cur.add(-1)
				g.Release()
			}
		}()
	}
	wg.Wait()
	if p := peak.load(); p > budget {
		t.Fatalf("observed %d concurrent holders, budget %d", p, budget)
	}
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after all released, want 0", got)
	}
}

// atomicMax is a tiny helper tracking a running value and its maximum.
type atomicMax struct {
	mu  sync.Mutex
	v   int
	max int
}

func (a *atomicMax) add(d int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.v += d
	return a.v
}

func (a *atomicMax) observe(v int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if v > a.max {
		a.max = v
	}
}

func (a *atomicMax) load() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.max
}
