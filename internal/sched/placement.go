package sched

import "fmt"

// Placement describes where the pool's workers run: which socket houses
// each worker. The steal paths use it to sweep hierarchically — a thief
// probes victims on its own socket before crossing to remote sockets, and
// a cross-socket range steal transfers a larger fraction of the victim's
// remainder so the ~515-cycle remote-L3 line cost (Figure 5) is amortized
// over more iterations per transfer.
//
// A nil *Placement is the flat default: every worker on one socket, which
// reduces both steal paths to the plain unbiased rotation over all P−1
// victims — the pre-topology behaviour. Placements are immutable after
// construction and safe to share between pools of compatible sizes (a
// worker beyond the described cores wraps around, mirroring how an
// oversubscribed pool would be pinned round-robin).
type Placement struct {
	socketOf []int32
	sockets  int
	// remoteNum/remoteDen is the fraction of a victim's remaining range a
	// cross-socket StealBack transfers (local steals always take half).
	remoteNum, remoteDen int
}

// DefaultRemoteStealFraction is the fraction of the victim's remainder a
// cross-socket range steal transfers when the placement does not override
// it: ¾, versus the ½ of a socket-local steal. Stealing more per remote
// transfer means fewer remote transfers for the same balancing effect.
const (
	defaultRemoteNum = 3
	defaultRemoteDen = 4
)

// NewPlacement builds a placement from an explicit worker→socket map:
// worker i runs on socket socketOf[i]. Socket numbers must be a
// contiguous range starting at 0. Panics on an empty or non-contiguous
// map (programming error, caught at pool construction).
func NewPlacement(socketOf []int) *Placement {
	if len(socketOf) == 0 {
		panic("sched: NewPlacement with empty socket map")
	}
	max := 0
	for _, s := range socketOf {
		if s < 0 {
			panic(fmt.Sprintf("sched: NewPlacement with negative socket %d", s))
		}
		if s > max {
			max = s
		}
	}
	seen := make([]bool, max+1)
	so := make([]int32, len(socketOf))
	for i, s := range socketOf {
		seen[s] = true
		so[i] = int32(s)
	}
	for s, ok := range seen {
		if !ok {
			panic(fmt.Sprintf("sched: NewPlacement socket numbering has a hole at %d", s))
		}
	}
	return &Placement{
		socketOf:  so,
		sockets:   max + 1,
		remoteNum: defaultRemoteNum,
		remoteDen: defaultRemoteDen,
	}
}

// CompactPlacement is NewPlacement for the compact pinning every
// experiment in the paper uses: cores 0..coresPerSocket-1 on socket 0,
// the next coresPerSocket on socket 1, and so on — the layout
// internal/topology.Machine.Socket describes.
func CompactPlacement(sockets, coresPerSocket int) *Placement {
	if sockets < 1 || coresPerSocket < 1 {
		panic(fmt.Sprintf("sched: CompactPlacement %dx%d", sockets, coresPerSocket))
	}
	so := make([]int, sockets*coresPerSocket)
	for i := range so {
		so[i] = i / coresPerSocket
	}
	return NewPlacement(so)
}

// SetRemoteStealFraction overrides the fraction num/den of a victim's
// remaining range that a cross-socket range steal transfers (default ¾).
// Must satisfy 0 < num < den (a remote steal must leave the owner
// something and must take something). Returns the placement for chaining
// at construction; not safe to call once the placement is in use.
func (pl *Placement) SetRemoteStealFraction(num, den int) *Placement {
	if num < 1 || den <= num {
		panic(fmt.Sprintf("sched: remote steal fraction %d/%d outside (0, 1)", num, den))
	}
	pl.remoteNum, pl.remoteDen = num, den
	return pl
}

// RemoteStealFraction returns the configured cross-socket transfer
// fraction as a num/den pair. Nil-safe: the flat placement has no remote
// victims, but callers may still ask (they get the default).
func (pl *Placement) RemoteStealFraction() (num, den int) {
	if pl == nil {
		return defaultRemoteNum, defaultRemoteDen
	}
	return pl.remoteNum, pl.remoteDen
}

// Sockets returns the number of sockets. Nil-safe: the flat placement is
// one socket.
func (pl *Placement) Sockets() int {
	if pl == nil {
		return 1
	}
	return pl.sockets
}

// Socket returns the socket housing the given worker. Workers beyond the
// described cores wrap around. Nil-safe: the flat placement puts every
// worker on socket 0.
func (pl *Placement) Socket(worker int) int {
	if pl == nil {
		return 0
	}
	return int(pl.socketOf[worker%len(pl.socketOf)])
}

// SameSocket reports whether two workers share a socket. Nil-safe (flat:
// always true).
func (pl *Placement) SameSocket(a, b int) bool {
	if pl == nil {
		return true
	}
	return pl.Socket(a) == pl.Socket(b)
}
