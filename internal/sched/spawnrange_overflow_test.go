package sched

import (
	"sync/atomic"
	"testing"
)

// TestSpawnRangeInt32Overflow exercises SpawnRange's fallback for bounds
// that do not fit the packed int32 deque word: beyond 2^31-1, below
// -2^31, and one packable control case for the fast path. Each spawned
// range must execute exactly once with the exact bounds it was spawned
// with — the fallback wrapper must not truncate.
func TestSpawnRangeInt32Overflow(t *testing.T) {
	pool := NewPool(2, 1)
	defer pool.Close()

	cases := []struct {
		name   string
		lo, hi int
	}{
		{"lo-beyond-int32-max", 1 << 31, 1<<31 + 10},
		{"hi-beyond-int32-max", 1<<31 - 5, 1<<31 + 5},
		{"lo-below-int32-min", -(1 << 31) - 10, -(1 << 31)},
		{"both-beyond", -(1 << 40), 1 << 40},
		{"packable-control", -100, 100},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var calls atomic.Int32
			var gotLo, gotHi atomic.Int64
			pool.Run(func(w *Worker) {
				var g Group
				w.SpawnRange(&g, func(cw *Worker, lo, hi int) {
					calls.Add(1)
					gotLo.Store(int64(lo))
					gotHi.Store(int64(hi))
				}, c.lo, c.hi)
				w.Wait(&g)
			})
			if n := calls.Load(); n != 1 {
				t.Fatalf("range task ran %d times, want 1", n)
			}
			if gotLo.Load() != int64(c.lo) || gotHi.Load() != int64(c.hi) {
				t.Fatalf("task received [%d, %d), want [%d, %d)",
					gotLo.Load(), gotHi.Load(), c.lo, c.hi)
			}
		})
	}
}

// TestSpawnRangeOverflowMany spawns a mix of packable and overflowing
// ranges from one task and checks the join sees all of them — the
// heap-allocated fallback and the inline fast path share the same group
// accounting.
func TestSpawnRangeOverflowMany(t *testing.T) {
	pool := NewPool(4, 7)
	defer pool.Close()
	const each = 64
	base := 1 << 31 // first unpackable positive bound
	var sum atomic.Int64
	pool.Run(func(w *Worker) {
		var g Group
		for i := 0; i < each; i++ {
			w.SpawnRange(&g, func(cw *Worker, lo, hi int) {
				sum.Add(int64(hi - lo))
			}, base+i, base+i+i+1) // hi-lo = i+1, bounds never pack
			w.SpawnRange(&g, func(cw *Worker, lo, hi int) {
				sum.Add(int64(hi - lo))
			}, i, i+i+1) // same lengths, packable
		}
		w.Wait(&g)
	})
	want := int64(2 * each * (each + 1) / 2)
	if got := sum.Load(); got != want {
		t.Fatalf("joined iteration count = %d, want %d", got, want)
	}
}
