package sched

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestTimeAccountingOffByDefault(t *testing.T) {
	p := NewPool(4, 1)
	defer p.Close()
	if p.TimeAccounting() {
		t.Fatal("time accounting on by default")
	}
	p.Run(func(w *Worker) {
		var g Group
		for i := 0; i < 32; i++ {
			w.Spawn(&g, func(w *Worker) { time.Sleep(100 * time.Microsecond) })
		}
		w.Wait(&g)
	})
	s := p.Stats()
	if s.BusyNanos != 0 || s.IdleNanos != 0 {
		t.Fatalf("accounting off but BusyNanos=%d IdleNanos=%d", s.BusyNanos, s.IdleNanos)
	}
}

func TestTimeAccountingCounters(t *testing.T) {
	p := NewPool(4, 1)
	defer p.Close()
	p.SetTimeAccounting(true)

	var ran atomic.Int64
	p.Run(func(w *Worker) {
		var g Group
		for i := 0; i < 64; i++ {
			w.Spawn(&g, func(w *Worker) {
				time.Sleep(200 * time.Microsecond)
				ran.Add(1)
			})
		}
		w.Wait(&g)
	})
	// Let the workers park so idle time starts accruing, then poke them
	// awake so the parked span is folded into the counters.
	time.Sleep(20 * time.Millisecond)
	p.Run(func(w *Worker) {})

	s := p.Stats()
	if len(s.WorkerBusyNanos) != 4 || len(s.WorkerIdleNanos) != 4 {
		t.Fatalf("per-worker slices sized %d/%d, want 4/4",
			len(s.WorkerBusyNanos), len(s.WorkerIdleNanos))
	}
	if s.BusyNanos <= 0 {
		t.Fatalf("64 sleeping tasks ran (%d) but BusyNanos = %d", ran.Load(), s.BusyNanos)
	}
	// 64 tasks x 200us spread over 4 workers is >= ~3ms of aggregate busy
	// time; parking between the two Runs accrues idle time on at least
	// the workers the second Run woke.
	if s.BusyNanos < (3 * time.Millisecond).Nanoseconds() {
		t.Fatalf("BusyNanos = %v, implausibly small for 64x200us of work",
			time.Duration(s.BusyNanos))
	}
	if s.IdleNanos <= 0 {
		t.Fatalf("workers parked between runs but IdleNanos = %d", s.IdleNanos)
	}
	var sum int64
	for _, b := range s.WorkerBusyNanos {
		sum += b
	}
	if sum != s.BusyNanos {
		t.Fatalf("BusyNanos %d != sum of WorkerBusyNanos %d", s.BusyNanos, sum)
	}

	p.ResetStats()
	s = p.Stats()
	if s.BusyNanos != 0 || s.IdleNanos != 0 {
		t.Fatalf("ResetStats left BusyNanos=%d IdleNanos=%d", s.BusyNanos, s.IdleNanos)
	}
}
