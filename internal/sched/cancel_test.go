package sched

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestCancellerBasics covers the token's state machine: live until the
// first Cancel, which alone observes the transition edge; the first
// non-nil cause wins; Err is nil while live and non-nil forever after.
func TestCancellerBasics(t *testing.T) {
	c := new(Canceller)
	if c.Cancelled() {
		t.Fatal("fresh token reports cancelled")
	}
	if c.Err() != nil {
		t.Fatalf("fresh token has error %v", c.Err())
	}
	first := errors.New("first")
	if !c.Cancel(first) {
		t.Fatal("first Cancel did not report the transition edge")
	}
	if c.Cancel(errors.New("second")) {
		t.Fatal("second Cancel reported the transition edge")
	}
	if !c.Cancelled() {
		t.Fatal("token not cancelled after Cancel")
	}
	if !errors.Is(c.Err(), first) {
		t.Fatalf("Err() = %v, want the first cause", c.Err())
	}
}

// TestCancellerNilReceiver: loop code polls tokens through fields that
// can legitimately be nil (a Group without BindCancel); every method
// must be a safe no-op on a nil receiver.
func TestCancellerNilReceiver(t *testing.T) {
	var c *Canceller
	if c.Cancel(errors.New("x")) {
		t.Fatal("nil token reported a cancel edge")
	}
	if c.Cancelled() {
		t.Fatal("nil token reports cancelled")
	}
	if c.Err() != nil {
		t.Fatalf("nil token has error %v", c.Err())
	}
}

// TestCancellerCancelNilCause: cancelling without a cause still trips the
// token and surfaces the generic sentinel.
func TestCancellerCancelNilCause(t *testing.T) {
	c := new(Canceller)
	if !c.Cancel(nil) {
		t.Fatal("Cancel(nil) did not trip the token")
	}
	if !errors.Is(c.Err(), ErrCancelled) {
		t.Fatalf("Err() = %v, want ErrCancelled", c.Err())
	}
}

// TestCancellerConcurrentFirstWins races N cancellers: exactly one may
// observe the edge, and the surviving cause must be one of the injected
// errors and stable across reads.
func TestCancellerConcurrentFirstWins(t *testing.T) {
	c := new(Canceller)
	const n = 16
	causes := make([]error, n)
	for i := range causes {
		causes[i] = errors.New("cause")
	}
	var wg sync.WaitGroup
	edges := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if c.Cancel(causes[i]) {
				edges <- i
			}
		}(i)
	}
	wg.Wait()
	close(edges)
	won := 0
	for range edges {
		won++
	}
	if won != 1 {
		t.Fatalf("%d goroutines observed the cancel edge, want exactly 1", won)
	}
	got := c.Err()
	found := false
	for _, cause := range causes {
		if errors.Is(got, cause) {
			found = true
		}
	}
	if !found {
		t.Fatalf("Err() = %v, not one of the injected causes", got)
	}
	if c.Err() != got {
		t.Fatal("Err() not stable across reads")
	}
}

// TestGroupPanicTripsBoundCanceller: a panic captured by a bound group
// must trip the token (so surviving loop workers stop within a chunk)
// and still re-raise as *TaskPanicError at Wait.
func TestGroupPanicTripsBoundCanceller(t *testing.T) {
	p := NewPool(2, 1)
	defer p.Close()
	c := new(Canceller)
	caught := false
	p.Run(func(w *Worker) {
		var g Group
		g.BindCancel(c)
		g.Add(1)
		w.Spawn(&g, func(cw *Worker) {
			defer g.Done()
			g.Protect(func() { panic("boom") })
		})
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(*TaskPanicError); !ok {
						t.Errorf("Wait re-raised %T, want *TaskPanicError", r)
					}
					caught = true
				}
			}()
			w.Wait(&g)
		}()
	})
	if !caught {
		t.Fatal("panic did not surface at Wait")
	}
	if !c.Cancelled() {
		t.Fatal("captured panic did not trip the bound canceller")
	}
	if !errors.Is(c.Err(), ErrPanicked) {
		t.Fatalf("Err() = %v, want ErrPanicked", c.Err())
	}
}

// waitDemandZero polls the pool's demand count until it reads zero or the
// deadline passes. The retirements under test happen on worker park,
// which is asynchronous with the test goroutine.
func waitDemandZero(p *Pool) bool {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.demand.Load() == 0 {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// TestDemandRetiredOnPark: the demand count must not outlive the hungry
// thieves — a worker that gives up and parks retires its own unit (its
// idleness is represented by nparked from then on), so a quiescent pool
// always converges to a zero count and no staleness survives into the
// next loop.
func TestDemandRetiredOnPark(t *testing.T) {
	p := NewPool(2, 2)
	defer p.Close()
	// Wake every worker: each sweeps, finds nothing (transiently marking
	// itself hungry after the failed sweep), re-parks, and must retire
	// its demand unit on the way down.
	p.WakeAll()
	p.Notify()
	if !waitDemandZero(p) {
		t.Fatal("demand count still nonzero after every worker re-parked")
	}
}

// idleLoop is a registry entry that never feeds a thief; it exists so the
// unregister path can be driven directly.
type idleLoop struct{}

func (idleLoop) Live() bool            { return false }
func (idleLoop) TrySteal(*Worker) bool { return false }

// TestDemandQuiescesAfterLastUnregister: registering and unregistering a
// loop (waking workers into failed sweeps along the way) must leave no
// stale demand behind once the pool quiesces — the per-worker accounting
// that replaced the old sticky flag retires itself without the unregister
// path having to clean anything up.
func TestDemandQuiescesAfterLastUnregister(t *testing.T) {
	p := NewPool(2, 3)
	defer p.Close()
	var l idleLoop
	p.RegisterLoop(l)
	p.UnregisterLoop(l)
	if !waitDemandZero(p) {
		t.Fatal("demand count still nonzero after the last loop unregistered and the pool quiesced")
	}
}

// TestWakeAllPoolStaysFunctional: WakeAll on a quiescent pool is a
// spurious wake of every worker — each must sweep, find nothing, and
// re-park without disturbing subsequent work.
func TestWakeAllPoolStaysFunctional(t *testing.T) {
	p := NewPool(4, 4)
	defer p.Close()
	time.Sleep(10 * time.Millisecond)
	p.WakeAll()
	p.WakeAll() // second delivery while tokens may still be pending
	done := false
	p.Run(func(w *Worker) { done = true })
	if !done {
		t.Fatal("pool did not run work after WakeAll")
	}
}
