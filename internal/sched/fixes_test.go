package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestInjectedTasksCollectable is the regression test for the injection
// queue retaining popped tasks: the old implementation popped with
// p.inject = p.inject[1:], which kept every consumed Task reachable
// through the shared backing array forever. The ring must release a task
// as soon as it is popped, so memory captured by a Run root becomes
// collectable once Run returns.
func TestInjectedTasksCollectable(t *testing.T) {
	pool := NewPool(2, 1)
	defer pool.Close()

	type blob struct{ b [1 << 20]byte }
	collected := make(chan struct{})
	func() {
		x := new(blob)
		runtime.SetFinalizer(x, func(*blob) { close(collected) })
		pool.Run(func(w *Worker) { _ = x })
	}()

	// A few follow-up submissions, so the test also passes if a future
	// implementation only releases slots lazily on reuse.
	for i := 0; i < 4; i++ {
		pool.Run(func(w *Worker) {})
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
	t.Fatal("popped injected task still reachable: finalizer never ran")
}

// TestRunCloseRace exercises Run racing Close. Every Run must either
// panic ("Run on closed pool") or execute its root and return — no Run
// may hang with its root enqueued but never executed. Before close/submit
// were made mutually exclusive under the inject lock, a Run that passed
// the closed check concurrently with Close could enqueue after the
// workers' final sweep and block on <-done forever.
func TestRunCloseRace(t *testing.T) {
	const rounds = 30
	const runners = 8
	for round := 0; round < rounds; round++ {
		pool := NewPool(2, uint64(round))
		var executed, panicked atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < runners; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if recover() != nil {
						panicked.Add(1)
					}
				}()
				<-start
				pool.Run(func(w *Worker) { executed.Add(1) })
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			pool.Close()
		}()

		close(start)
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: Run/Close race deadlocked", round)
		}
		if got := executed.Load() + panicked.Load(); got != runners {
			t.Fatalf("round %d: %d executed + %d panicked, want %d total",
				round, executed.Load(), panicked.Load(), runners)
		}
	}
}

// TestSubmitBeforeCloseAlwaysRuns pins the winning side of the race: a
// Run whose submit acquired the inject lock before Close did must have
// its root executed by the shutdown drain, even though the pool closes
// immediately afterwards.
func TestSubmitBeforeCloseAlwaysRuns(t *testing.T) {
	for i := 0; i < 50; i++ {
		pool := NewPool(1, uint64(i))
		var ran atomic.Bool
		outcome := make(chan string, 1)
		go func() {
			defer func() {
				if recover() != nil {
					outcome <- "panicked"
				}
			}()
			pool.Run(func(w *Worker) { ran.Store(true) })
			outcome <- "returned"
		}()
		pool.Close()
		select {
		case o := <-outcome:
			if o == "returned" && !ran.Load() {
				t.Fatalf("iteration %d: Run returned without executing its root", i)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("iteration %d: Run neither panicked nor returned — root stranded", i)
		}
	}
}

// TestNotifyWakesPinnedTarget pins the targeted-wake requirement: with
// every worker parked, SpawnOn(id) must wake worker id specifically — a
// round-robin wake of some other worker would leave the pinned task
// stranded (the bug class the single-wake policy must not introduce).
func TestNotifyWakesPinnedTarget(t *testing.T) {
	pool := NewPool(4, 7)
	defer pool.Close()
	for target := 0; target < pool.P(); target++ {
		for round := 0; round < 50; round++ {
			// Let the pool go quiescent so workers are parked, then pin.
			var g Group
			ran := make(chan int, 1)
			pool.SpawnOn(target, &g, func(cw *Worker) { ran <- cw.ID() })
			select {
			case id := <-ran:
				if id != target {
					t.Fatalf("pinned task ran on worker %d, want %d", id, target)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("pinned task for worker %d never ran (lost wakeup)", target)
			}
			for !g.Finished() {
				runtime.Gosched()
			}
		}
	}
}
