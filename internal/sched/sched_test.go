package sched

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func withPool(t *testing.T, p int, fn func(pool *Pool)) {
	t.Helper()
	pool := NewPool(p, 12345)
	defer pool.Close()
	fn(pool)
}

func TestRunExecutes(t *testing.T) {
	withPool(t, 4, func(pool *Pool) {
		ran := false
		pool.Run(func(w *Worker) { ran = true })
		if !ran {
			t.Fatal("root task did not run")
		}
	})
}

func TestSpawnWaitCompletesAll(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		withPool(t, p, func(pool *Pool) {
			const n = 500
			var count atomic.Int64
			pool.Run(func(w *Worker) {
				var g Group
				for i := 0; i < n; i++ {
					w.Spawn(&g, func(cw *Worker) { count.Add(1) })
				}
				w.Wait(&g)
			})
			if count.Load() != n {
				t.Fatalf("P=%d: %d tasks ran, want %d", p, count.Load(), n)
			}
		})
	}
}

// fib computes Fibonacci with naive fork-join recursion — the classic
// work-stealing stress test exercising deep spawn trees and helping Waits.
func fib(w *Worker, n int) int {
	if n < 2 {
		return n
	}
	var g Group
	var a int
	w.Spawn(&g, func(cw *Worker) { a = fib(cw, n-1) })
	b := fib(w, n-2)
	w.Wait(&g)
	return a + b
}

func TestForkJoinFib(t *testing.T) {
	want := map[int]int{10: 55, 15: 610, 20: 6765}
	for _, p := range []int{1, 2, 4, 7} {
		withPool(t, p, func(pool *Pool) {
			for n, expect := range want {
				var got int
				pool.Run(func(w *Worker) { got = fib(w, n) })
				if got != expect {
					t.Fatalf("P=%d: fib(%d) = %d, want %d", p, n, got, expect)
				}
			}
		})
	}
}

func TestNestedGroups(t *testing.T) {
	withPool(t, 4, func(pool *Pool) {
		var total atomic.Int64
		pool.Run(func(w *Worker) {
			var outer Group
			for i := 0; i < 10; i++ {
				w.Spawn(&outer, func(cw *Worker) {
					var inner Group
					for j := 0; j < 10; j++ {
						cw.Spawn(&inner, func(iw *Worker) { total.Add(1) })
					}
					cw.Wait(&inner)
				})
			}
			w.Wait(&outer)
		})
		if total.Load() != 100 {
			t.Fatalf("total = %d, want 100", total.Load())
		}
	})
}

func TestSequentialRunsReusePool(t *testing.T) {
	withPool(t, 3, func(pool *Pool) {
		for round := 0; round < 20; round++ {
			var count atomic.Int64
			pool.Run(func(w *Worker) {
				var g Group
				for i := 0; i < 50; i++ {
					w.Spawn(&g, func(cw *Worker) { count.Add(1) })
				}
				w.Wait(&g)
			})
			if count.Load() != 50 {
				t.Fatalf("round %d: count = %d", round, count.Load())
			}
		}
	})
}

func TestStatsCount(t *testing.T) {
	withPool(t, 2, func(pool *Pool) {
		pool.ResetStats()
		pool.Run(func(w *Worker) {
			var g Group
			for i := 0; i < 100; i++ {
				w.Spawn(&g, func(cw *Worker) {})
			}
			w.Wait(&g)
		})
		s := pool.Stats()
		// 100 spawned tasks + 1 injected root.
		if s.Tasks != 101 {
			t.Fatalf("Tasks = %d, want 101", s.Tasks)
		}
	})
}

func TestWorkerIDsDistinct(t *testing.T) {
	withPool(t, 6, func(pool *Pool) {
		if pool.P() != 6 {
			t.Fatalf("P() = %d", pool.P())
		}
		seen := map[int]bool{}
		for i := 0; i < 6; i++ {
			id := pool.Worker(i).ID()
			if seen[id] {
				t.Fatalf("duplicate worker id %d", id)
			}
			seen[id] = true
			if pool.Worker(i).Pool() != pool {
				t.Fatal("worker Pool() mismatch")
			}
		}
	})
}

func TestGroupDonePanicsBelowZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Done below zero did not panic")
		}
	}()
	var g Group
	g.Done()
}

func TestCloseIdempotent(t *testing.T) {
	pool := NewPool(2, 1)
	pool.Close()
	pool.Close() // must not panic or hang
}

// fakeLoop implements HybridLoop to verify the steal-protocol plumbing:
// idle workers must probe registered loops and report entries.
type fakeLoop struct {
	live    atomic.Bool
	entries atomic.Int64
}

func (f *fakeLoop) Live() bool { return f.live.Load() }
func (f *fakeLoop) TrySteal(w *Worker) bool {
	if !f.live.Load() {
		return false
	}
	f.live.Store(false)
	f.entries.Add(1)
	return true
}

func TestStealProtocolProbesRegisteredLoops(t *testing.T) {
	withPool(t, 4, func(pool *Pool) {
		f := &fakeLoop{}
		f.live.Store(true)
		pool.RegisterLoop(f)
		defer pool.UnregisterLoop(f)
		// Give idle workers the chance to probe: run a trivial root and
		// wait for the entry to be recorded.
		deadline := 0
		for f.entries.Load() == 0 && deadline < 1000 {
			pool.Run(func(w *Worker) {})
			deadline++
		}
		if f.entries.Load() == 0 {
			t.Fatal("no worker entered the registered loop via the steal protocol")
		}
		if got := pool.Stats().LoopEntries; got == 0 {
			t.Fatal("LoopEntries stat not incremented")
		}
	})
}

func TestUnregisterLoopStopsProbing(t *testing.T) {
	withPool(t, 2, func(pool *Pool) {
		f := &fakeLoop{}
		f.live.Store(true)
		pool.RegisterLoop(f)
		pool.UnregisterLoop(f)
		for i := 0; i < 50; i++ {
			pool.Run(func(w *Worker) {})
		}
		if f.entries.Load() != 0 {
			t.Fatal("unregistered loop was probed")
		}
	})
}

func BenchmarkSpawnWait(b *testing.B) {
	pool := NewPool(4, 1)
	defer pool.Close()
	b.ResetTimer()
	pool.Run(func(w *Worker) {
		for i := 0; i < b.N; i++ {
			var g Group
			w.Spawn(&g, func(cw *Worker) {})
			w.Wait(&g)
		}
	})
}

func BenchmarkFib20(b *testing.B) {
	pool := NewPool(4, 1)
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Run(func(w *Worker) { fib(w, 20) })
	}
}

func TestPanicPropagatesFromSpawnedTask(t *testing.T) {
	withPool(t, 4, func(pool *Pool) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic did not propagate")
			}
			tpe, ok := r.(*TaskPanicError)
			if !ok {
				t.Fatalf("recovered %T, want *TaskPanicError", r)
			}
			if tpe.Value != "boom" {
				t.Fatalf("panic value %v, want boom", tpe.Value)
			}
			if len(tpe.Stack) == 0 || tpe.Error() == "" {
				t.Fatal("panic missing stack/message")
			}
		}()
		pool.Run(func(w *Worker) {
			var g Group
			for i := 0; i < 16; i++ {
				i := i
				w.Spawn(&g, func(cw *Worker) {
					if i == 7 {
						panic("boom")
					}
				})
			}
			w.Wait(&g)
		})
	})
}

func TestPanicPropagatesFromRoot(t *testing.T) {
	withPool(t, 2, func(pool *Pool) {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("root panic did not propagate")
			}
		}()
		pool.Run(func(w *Worker) { panic("root boom") })
	})
}

func TestPoolUsableAfterPanic(t *testing.T) {
	withPool(t, 4, func(pool *Pool) {
		func() {
			defer func() { recover() }()
			pool.Run(func(w *Worker) {
				var g Group
				w.Spawn(&g, func(cw *Worker) { panic("transient") })
				w.Wait(&g)
			})
		}()
		// The pool must still schedule work correctly afterwards.
		var count atomic.Int64
		pool.Run(func(w *Worker) {
			var g Group
			for i := 0; i < 100; i++ {
				w.Spawn(&g, func(cw *Worker) { count.Add(1) })
			}
			w.Wait(&g)
		})
		if count.Load() != 100 {
			t.Fatalf("pool broken after panic: %d tasks ran", count.Load())
		}
	})
}

func TestPanicFromPinnedTask(t *testing.T) {
	withPool(t, 3, func(pool *Pool) {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("pinned-task panic did not propagate")
			}
		}()
		pool.Run(func(w *Worker) {
			var g Group
			pool.SpawnOn((w.ID()+1)%pool.P(), &g, func(cw *Worker) { panic("pinned boom") })
			w.Wait(&g)
		})
	})
}

func TestCloseStopsAllWorkerGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		pool := NewPool(8, uint64(i))
		pool.Run(func(w *Worker) {
			var g Group
			for j := 0; j < 100; j++ {
				w.Spawn(&g, func(cw *Worker) {})
			}
			w.Wait(&g)
		})
		pool.Close()
	}
	// Workers park on channels and exit on quit; give the scheduler a
	// moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
