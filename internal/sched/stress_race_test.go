package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStressSpawnStealParkNotify drives every hot path at once under more
// workers than CPUs: concurrent Spawn (forcing deque growth well past the
// initial ring), randomized stealing, external injection, and the
// park/notify handshake with targeted wakeups and wake chaining. Run it
// under -race (`make race`); in -short mode (and therefore in tier-1's
// plain `go test ./...` it still runs, just scaled down) it uses a
// smaller task count.
func TestStressSpawnStealParkNotify(t *testing.T) {
	p := 4 * runtime.NumCPU() // deliberately oversubscribed: P > NumCPU
	if p < 8 {
		p = 8
	}
	submitters, rounds, width := 8, 16, 512
	if testing.Short() {
		submitters, rounds, width = 4, 6, 256
	}

	pool := NewPool(p, 0xdeadbeef)
	defer pool.Close()

	var executed atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				pool.Run(func(w *Worker) {
					var g Group
					// A wide wave of tiny tasks: the owner's deque grows
					// past minCapacity, and parked workers must be
					// recruited by single wakeups + chaining to drain it.
					for i := 0; i < width; i++ {
						w.Spawn(&g, func(cw *Worker) {
							executed.Add(1)
							// A few grandchildren from whichever worker
							// stole this task, so foreign deques fill too.
							if i := executed.Load(); i%7 == 0 {
								var gg Group
								cw.Spawn(&gg, func(iw *Worker) { executed.Add(1) })
								cw.Spawn(&gg, func(iw *Worker) { executed.Add(1) })
								cw.Wait(&gg)
							}
						})
					}
					w.Wait(&g)
				})
				// Let the pool quiesce sometimes so parking actually
				// happens mid-test rather than only at the end.
				if r%5 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(s)
	}
	wg.Wait()

	min := int64(submitters * rounds * width)
	if got := executed.Load(); got < min {
		t.Fatalf("executed %d tasks, want at least %d", got, min)
	}
	// The pool must be quiescent and reusable afterwards.
	var final atomic.Int64
	pool.Run(func(w *Worker) {
		var g Group
		for i := 0; i < 100; i++ {
			w.Spawn(&g, func(cw *Worker) { final.Add(1) })
		}
		w.Wait(&g)
	})
	if final.Load() != 100 {
		t.Fatalf("pool unhealthy after stress: %d/100 tasks ran", final.Load())
	}
}
