// Admission control for multi-tenant loop serving: a Gate bounds how many
// loops may be in flight on a pool at once (an in-flight budget) and how
// fast new loops may be submitted (a token bucket), so a flood of
// submissions from request goroutines degrades gracefully — callers
// observe backpressure (ErrBackpressure, or a ctx-bounded wait) instead of
// oversubscribing the fixed worker set until every loop's latency
// collapses. The policy shapes follow the standard serving control plane:
// token-bucket rate limiting for the submit edge and a semaphore for the
// concurrency budget (cf. the GoSim policy sandbox referenced in
// ROADMAP.md).
package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBackpressure is returned by non-blocking admission (Gate.TryAcquire
// consumers such as the public TryFor) when the gate rejects a submission:
// the in-flight budget is exhausted or the token bucket is empty. Callers
// shed, queue, or degrade — the signal exists precisely so overload is
// the caller's decision rather than a silent pile-up on the pool.
var ErrBackpressure = errors.New("sched: loop admission rejected (backpressure)")

// GateStats are the admission gate's counters, for observability.
type GateStats struct {
	Admitted int64 // submissions admitted (including after a wait)
	Rejected int64 // non-blocking rejections + ctx-expired waits
	Waited   int64 // admissions that had to block first
	Inline   int64 // submissions the caller degraded to serial-inline
	InFlight int   // currently admitted, not-yet-released loops
}

// Gate is the admission controller for loop submissions: an optional
// bounded in-flight budget plus an optional token bucket on the submit
// rate. The zero Gate must not be used; construct with NewGate. All
// methods are safe for concurrent use.
type Gate struct {
	slots chan struct{} // in-flight budget; nil = unlimited
	rate  float64       // tokens per second; <= 0 disables the bucket
	burst float64

	mu     sync.Mutex // guards tokens/last
	tokens float64
	last   time.Time

	admitted atomic.Int64
	rejected atomic.Int64
	waited   atomic.Int64
	inline   atomic.Int64
}

// NewGate builds a gate admitting at most maxInFlight concurrent loops
// (<= 0 means unlimited) and at most rate submissions per second with the
// given burst capacity (rate <= 0 disables the token bucket; burst is
// clamped to >= 1 when the bucket is enabled). The bucket starts full.
func NewGate(maxInFlight int, rate float64, burst int) *Gate {
	g := &Gate{rate: rate}
	if maxInFlight > 0 {
		g.slots = make(chan struct{}, maxInFlight)
	}
	if rate > 0 {
		if burst < 1 {
			burst = 1
		}
		g.burst = float64(burst)
		g.tokens = g.burst
		g.last = time.Now()
	}
	return g
}

// refillLocked accrues tokens for the time elapsed since the last refill.
func (g *Gate) refillLocked(now time.Time) {
	if dt := now.Sub(g.last); dt > 0 {
		g.tokens += dt.Seconds() * g.rate
		if g.tokens > g.burst {
			g.tokens = g.burst
		}
	}
	g.last = now
}

// takeToken consumes one bucket token if available (true when the bucket
// is disabled).
func (g *Gate) takeToken() bool {
	if g.rate <= 0 {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.refillLocked(time.Now())
	if g.tokens >= 1 {
		g.tokens--
		return true
	}
	return false
}

// tokenDelay consumes a token if one is available (taken == true), or
// returns how long until one accrues.
func (g *Gate) tokenDelay() (d time.Duration, taken bool) {
	if g.rate <= 0 {
		return 0, true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.refillLocked(time.Now())
	if g.tokens >= 1 {
		g.tokens--
		return 0, true
	}
	d = time.Duration((1 - g.tokens) / g.rate * float64(time.Second))
	if d < 100*time.Microsecond {
		d = 100 * time.Microsecond
	}
	return d, false
}

// TryAcquire attempts a non-blocking admission. On success the caller
// holds one in-flight slot and must Release it when the loop completes.
// On failure nothing is held and the caller observes backpressure.
func (g *Gate) TryAcquire() bool {
	if g.slots != nil {
		select {
		case g.slots <- struct{}{}:
		default:
			g.rejected.Add(1)
			return false
		}
	}
	if !g.takeToken() {
		if g.slots != nil {
			<-g.slots
		}
		g.rejected.Add(1)
		return false
	}
	g.admitted.Add(1)
	return true
}

// Acquire blocks until the submission is admitted or ctx is done. On
// success the caller holds one in-flight slot and must Release it; on
// ctx expiry nothing is held and ctx.Err() is returned. Waiters for the
// in-flight budget are served approximately FIFO (blocked channel sends).
func (g *Gate) Acquire(ctx context.Context) error {
	waited := false
	if g.slots != nil {
		select {
		case g.slots <- struct{}{}:
		default:
			waited = true
			select {
			case g.slots <- struct{}{}:
			case <-ctx.Done():
				g.rejected.Add(1)
				return ctx.Err()
			}
		}
	}
	for {
		d, ok := g.tokenDelay()
		if ok {
			break
		}
		waited = true
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			if g.slots != nil {
				<-g.slots
			}
			g.rejected.Add(1)
			return ctx.Err()
		}
	}
	if waited {
		g.waited.Add(1)
	}
	g.admitted.Add(1)
	return nil
}

// Release returns an in-flight slot acquired by TryAcquire or a
// successful Acquire. Exactly one Release per successful acquisition.
func (g *Gate) Release() {
	if g.slots != nil {
		<-g.slots
	}
}

// NoteInline records one submission that the caller, upon rejection,
// degraded to a serial inline run instead of entering the pool — the
// "run it yourself rather than oversubscribe" fallback of the public For.
func (g *Gate) NoteInline() { g.inline.Add(1) }

// InFlight returns the number of currently admitted loops (0 when the
// in-flight budget is unlimited and therefore untracked).
func (g *Gate) InFlight() int {
	if g.slots == nil {
		return 0
	}
	return len(g.slots)
}

// Stats snapshots the gate's counters.
func (g *Gate) Stats() GateStats {
	return GateStats{
		Admitted: g.admitted.Load(),
		Rejected: g.rejected.Load(),
		Waited:   g.waited.Load(),
		Inline:   g.inline.Load(),
		InFlight: g.InFlight(),
	}
}
