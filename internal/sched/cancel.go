package sched

import (
	"errors"
	"sync/atomic"
)

// ErrCancelled is returned by Canceller.Err when the token was cancelled
// without a specific cause (a bare Cancel(nil)).
var ErrCancelled = errors.New("sched: loop cancelled")

// ErrPanicked is the cause a Canceller carries when it was tripped by a
// panic captured into its bound Group. The panic itself still propagates
// as a *TaskPanicError from the joining Wait; the token merely tells the
// surviving workers to stop executing further chunks.
var ErrPanicked = errors.New("sched: loop body panicked")

// Canceller is a cooperative cancellation token for one parallel loop:
// a single atomic word that loop strategies poll once per chunk, plus the
// first cause recorded for the caller. The zero value is a live (not
// cancelled) token. All methods are safe on a nil receiver — a nil
// *Canceller is a token that can never be cancelled — so un-cancellable
// loops pay only a nil check on the polling path.
//
// The word and the cause are separate atomics, ordered so a cause
// supplied to Cancel is published before the word flips: any observer of
// Cancelled() == true that then reads Err() sees the winning cause.
type Canceller struct {
	// word is the one-shot cancellation latch. The only legal move is the
	// live→cancelled CAS in Cancel, whose success edge pays the one-time
	// wake/trace work; there is no way back.
	//
	//sched:protocol cancel
	//sched:state live = 0
	//sched:state cancelled = 1
	//sched:trans live -> cancelled
	word  atomic.Uint32 // 0 = live, 1 = cancelled
	cause atomic.Pointer[error]
}

// Cancel trips the token with err as the cause. The first non-nil cause
// wins; later calls cannot overwrite it. Returns true iff this call is
// the one that transitioned the token from live to cancelled — callers
// use that edge to pay one-time work (waking parked workers, tracing)
// exactly once.
func (c *Canceller) Cancel(err error) bool {
	if c == nil {
		return false
	}
	if err != nil {
		c.cause.CompareAndSwap(nil, &err)
	}
	return c.word.CompareAndSwap(0, 1)
}

// Cancelled reports whether the token has been tripped. One atomic load;
// this is the per-chunk poll.
func (c *Canceller) Cancelled() bool {
	return c != nil && c.word.Load() != 0
}

// Err returns nil while the token is live, the first recorded cause once
// cancelled, or ErrCancelled if it was cancelled without a cause.
func (c *Canceller) Err() error {
	if c == nil || c.word.Load() == 0 {
		return nil
	}
	if p := c.cause.Load(); p != nil {
		return *p
	}
	return ErrCancelled
}
