package sched

import (
	"testing"
	"time"
)

// waitAllParked blocks until every worker has COMMITTED to parking
// (state wParked, not merely announced via nparked — the announce is
// followed by one more steal sweep that still touches the worker's RNG
// and deque), so a test can safely drive a worker's steal path from the
// test goroutine: each state atomic orders that worker's final pre-park
// writes before the test's reads, and a committed-parked worker touches
// nothing until notified.
func waitAllParked(t *testing.T, pool *Pool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		parked := 0
		for _, w := range pool.workers {
			if w.state.Load() == wParked {
				parked++
			}
		}
		if parked == pool.P() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never quiesced: %d/%d workers committed-parked",
				parked, pool.P())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// pushVictimTask plants one range task in v's deque whose lo encodes v's
// ID, so a test observing a steal can tell which victim it came from.
// Only safe against a parked pool (PushBottom is owner-side).
func pushVictimTask(t *testing.T, g *Group, noop RangeTask, v *Worker) {
	t.Helper()
	ab, ok := packRange(v.id, v.id+1)
	if !ok {
		t.Fatalf("packRange(%d, %d) failed", v.id, v.id+1)
	}
	g.Add(1)
	v.dq.PushBottom(noop, g, ab)
}

// TestFirstProbeDistributionUniform is the regression test for the
// victim-selection bias: the old rotation drew its start over all P
// workers and skipped self in the loop, which made worker w.id+1 the
// first probe twice as often as any other victim. The victim lists now
// exclude self by construction and the start is drawn over the list, so
// with every victim holding work, each must win the first steal of a
// sweep with equal probability. The pool RNG is seeded, so the observed
// counts are deterministic — a reintroduced bias fails every run.
func TestFirstProbeDistributionUniform(t *testing.T) {
	const p = 8
	pool := NewPool(p, 99)
	defer pool.Close()
	waitAllParked(t, pool)

	w := pool.workers[0]
	local, remote := w.Victims()
	if len(local) != p-1 || len(remote) != 0 {
		t.Fatalf("flat pool victim lists: %d local, %d remote, want %d local, 0 remote",
			len(local), len(remote), p-1)
	}
	for _, v := range local {
		if v.id == w.id {
			t.Fatalf("worker %d appears in its own victim list", w.id)
		}
	}

	g := &Group{}
	noop := RangeTask(func(*Worker, int, int) {})
	counts := make([]int, p)
	const rounds = 14000
	for r := 0; r < rounds; r++ {
		for _, v := range local {
			pushVictimTask(t, g, noop, v)
		}
		// Every victim is non-empty, so the first successful steal IS the
		// first probe of the rotation.
		first, ok := w.sweepSteal(local, false)
		if !ok {
			t.Fatalf("round %d: sweep failed with every victim non-empty", r)
		}
		counts[first.lo]++
		// Drain the remainder so the next round starts clean (and so no
		// surplus survives to the workers woken at pool close).
		for i := 1; i < len(local); i++ {
			if _, ok := w.sweepSteal(local, false); !ok {
				t.Fatalf("round %d: drain steal %d failed", r, i)
			}
		}
	}

	if counts[w.id] != 0 {
		t.Fatalf("worker %d first-stole from itself %d times", w.id, counts[w.id])
	}
	want := rounds / (p - 1)
	for id := 1; id < p; id++ {
		if c := counts[id]; c < want*9/10 || c > want*11/10 {
			t.Errorf("victim %d first-probed %d times, want ~%d (±10%%) — rotation start is biased",
				id, c, want)
		}
	}
}

// TestPlacementVictimLists pins the victim-list construction under a
// placement: ascending IDs, self excluded, same-socket workers in the
// local tier and everyone else in the remote tier.
func TestPlacementVictimLists(t *testing.T) {
	pool := NewPoolPlaced(4, 7, false, CompactPlacement(2, 2))
	defer pool.Close()

	if got := pool.Placement().Sockets(); got != 2 {
		t.Fatalf("Placement().Sockets() = %d, want 2", got)
	}
	wantSocket := []int{0, 0, 1, 1}
	wantLocal := [][]int{{1}, {0}, {3}, {2}}
	wantRemote := [][]int{{2, 3}, {2, 3}, {0, 1}, {0, 1}}
	ids := func(ws []*Worker) []int {
		out := make([]int, len(ws))
		for i, v := range ws {
			out[i] = v.id
		}
		return out
	}
	eq := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for i := 0; i < pool.P(); i++ {
		w := pool.workers[i]
		if w.Socket() != wantSocket[i] {
			t.Errorf("worker %d on socket %d, want %d", i, w.Socket(), wantSocket[i])
		}
		local, remote := w.Victims()
		if got := ids(local); !eq(got, wantLocal[i]) {
			t.Errorf("worker %d local victims %v, want %v", i, got, wantLocal[i])
		}
		if got := ids(remote); !eq(got, wantRemote[i]) {
			t.Errorf("worker %d remote victims %v, want %v", i, got, wantRemote[i])
		}
	}
}

// TestTryStealPrefersLocalVictim drives the hierarchical sweep against a
// parked 2×2 pool: with both a same-socket and a cross-socket victim
// holding work, trySteal must always take the local task first and only
// then cross the socket boundary — and the distance counters must
// attribute exactly the cross-socket steals as remote.
func TestTryStealPrefersLocalVictim(t *testing.T) {
	pool := NewPoolPlaced(4, 7, false, CompactPlacement(2, 2))
	defer pool.Close()
	waitAllParked(t, pool)
	pool.ResetStats()

	w := pool.workers[0] // socket 0; local victim 1, remote victims 2, 3
	g := &Group{}
	noop := RangeTask(func(*Worker, int, int) {})
	const rounds = 50
	for r := 0; r < rounds; r++ {
		pushVictimTask(t, g, noop, pool.workers[1])
		pushVictimTask(t, g, noop, pool.workers[2])
		s, ok := w.trySteal()
		if !ok || s.lo != 1 {
			t.Fatalf("round %d: first steal came from worker %d (ok=%v), want local victim 1",
				r, s.lo, ok)
		}
		s, ok = w.trySteal()
		if !ok || s.lo != 2 {
			t.Fatalf("round %d: second steal came from worker %d (ok=%v), want remote victim 2",
				r, s.lo, ok)
		}
	}

	st := pool.Stats()
	if st.Steals != 2*rounds || st.RemoteSteals != rounds {
		t.Fatalf("Stats: Steals=%d RemoteSteals=%d, want %d and %d",
			st.Steals, st.RemoteSteals, 2*rounds, rounds)
	}
}

// TestStealWakeChainingUsesSnapshot pins the phantom-notify fix: the
// post-steal wake decision comes from the steal's own validated snapshot
// (Deque.Steal's more result), never a separate Empty() probe. Stealing
// a victim's only task must wake nobody; stealing one of two must chain
// a wakeup to a parked worker, which then finds and runs the survivor.
func TestStealWakeChainingUsesSnapshot(t *testing.T) {
	pool := NewPool(3, 5)
	defer pool.Close()
	waitAllParked(t, pool)
	pool.ResetStats()

	g := &Group{}
	noop := RangeTask(func(*Worker, int, int) {})
	victim, thief := pool.workers[1], pool.workers[2]

	// Singleton steal: more=false, so no notify may fire.
	pushVictimTask(t, g, noop, victim)
	if _, ok := thief.sweepSteal(thief.localVictims, false); !ok {
		t.Fatal("steal of the victim's only task failed")
	}
	time.Sleep(50 * time.Millisecond)
	if parked := pool.ParkedWorkers(); parked != pool.P() {
		t.Fatalf("stealing a victim's last task woke a worker: %d/%d parked",
			parked, pool.P())
	}
	if st := pool.Stats(); st.Tasks != 0 {
		t.Fatalf("%d tasks ran with no work outstanding", st.Tasks)
	}

	// Surplus steal: the snapshot sees a second queued element behind the
	// stolen one, so the thief must chain a wakeup; the woken worker finds
	// the survivor and runs it, then the pool quiesces again.
	pushVictimTask(t, g, noop, victim)
	pushVictimTask(t, g, noop, victim)
	if _, ok := thief.sweepSteal(thief.localVictims, false); !ok {
		t.Fatal("steal with surplus queued failed")
	}
	deadline := time.Now().Add(5 * time.Second)
	for pool.Stats().Tasks != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("woken worker never ran the surviving task (Tasks=%d)",
				pool.Stats().Tasks)
		}
		time.Sleep(100 * time.Microsecond)
	}
	waitAllParked(t, pool)
}
