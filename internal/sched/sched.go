// Package sched implements a user-level fork-join work-stealing runtime —
// the substrate the paper's hybrid scheme plugs into (OpenCilk in the
// paper; built here from scratch over goroutines, per the reproduction
// plan in DESIGN.md).
//
// A Pool owns P workers, each a dedicated goroutine with its own Chase–Lev
// deque. Work is expressed as fork-join tasks: a running task Spawns
// children bound to a Group and Waits on the Group, during which the
// worker *helps* — it pops its own deque and steals from random victims —
// so workers never block while runnable work exists. This mirrors the
// work-first discipline of the paper's Section II substrate: the owner
// executes its deque bottom-up (LIFO, cache-hot), thieves steal top-down
// (FIFO, the biggest remaining piece).
//
// The Pool additionally implements the paper's DoHybridLoop steal
// protocol: active hybrid loops register themselves, and an idle worker w
// that would otherwise steal at random first probes each registered loop's
// partition structure; if w's designated partition A[w] is unclaimed, the
// worker enters the loop's claim sequence with its own worker ID
// (Section III, "Steal protocol for DoHybridLoop frames").
package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hybridloop/internal/deque"
	"hybridloop/internal/rng"
)

// Task is a unit of work executed by a worker. Tasks must not block on
// anything other than Group.Wait (which helps rather than blocking).
type Task func(w *Worker)

// Group tracks a set of spawned tasks for a join, like a sync.WaitGroup
// whose Wait helps execute work instead of blocking the worker.
type Group struct {
	pending atomic.Int64
	panics  atomic.Pointer[taskPanic]
}

// taskPanic carries a panic from the worker that caught it to the task
// that joins on the group.
type taskPanic struct {
	value any
	stack []byte
}

// Add records n tasks that must complete before Wait returns. As with
// sync.WaitGroup, all Adds for a wave of spawns must happen before the
// corresponding Wait begins.
func (g *Group) Add(n int) { g.pending.Add(int64(n)) }

// Done marks one task complete. The runtime calls this automatically for
// tasks spawned with Worker.Spawn; call it manually only for work enrolled
// via Add without Spawn.
func (g *Group) Done() {
	if n := g.pending.Add(-1); n < 0 {
		panic("sched: Group counter went negative")
	}
}

// Finished reports whether all enrolled tasks have completed.
func (g *Group) Finished() bool { return g.pending.Load() <= 0 }

// Protect runs fn, capturing any panic into the group so that the Wait
// joining it re-raises the panic on the waiting worker. Runtime components
// that execute user code outside a spawned task — such as the hybrid
// loop's claim-and-execute path, which runs partitions synchronously on
// whichever worker entered via the steal protocol — use Protect so a
// panicking loop body cannot kill a scheduler worker.
func (g *Group) Protect(fn func()) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if tpe, ok := r.(*TaskPanicError); ok {
			// Already captured once (e.g. by a nested Wait): keep the
			// original stack.
			g.panics.CompareAndSwap(nil, &taskPanic{value: tpe.Value, stack: tpe.Stack})
			return
		}
		g.panics.CompareAndSwap(nil, &taskPanic{value: r, stack: debug.Stack()})
	}()
	fn()
}

// HybridLoop is the interface the Pool's steal protocol uses to let idle
// workers enter a live hybrid loop with their own worker ID. It is
// implemented by the hybrid strategy in internal/loop; sched depends only
// on this abstraction.
type HybridLoop interface {
	// TrySteal gives worker w a chance to enter the loop per the
	// DoHybridLoop steal protocol. It returns true if the worker did work
	// (claimed and executed at least one partition).
	TrySteal(w *Worker) bool
	// Live reports whether the loop may still have unclaimed partitions.
	Live() bool
}

// Stats aggregates scheduler counters across workers.
type Stats struct {
	Tasks        int64 // tasks executed
	Steals       int64 // successful steals
	FailedSteals int64 // steal attempts that found nothing
	LoopEntries  int64 // hybrid-loop entries via the steal protocol
}

// Pool is a work-stealing scheduler with a fixed set of workers.
type Pool struct {
	workers []*Worker

	injectMu sync.Mutex
	inject   []Task // external submissions, consumed by idle workers

	nparked atomic.Int64 // workers announced as parking or parked
	quit    chan struct{}
	closed  atomic.Bool
	wg      sync.WaitGroup

	loopsMu sync.Mutex
	loops   []HybridLoop // registered live hybrid loops
	nloops  atomic.Int32 // fast-path check: number of registered loops
}

// NewPool creates a pool with p workers (p >= 1) and starts them. seed
// makes victim selection deterministic per worker for reproducible tests;
// pass different seeds for statistically independent runs.
func NewPool(p int, seed uint64) *Pool {
	return newPool(p, seed, false)
}

// NewPoolLocked is NewPool with each worker goroutine locked to its own
// OS thread (runtime.LockOSThread). On dedicated multicore machines this
// keeps the Go scheduler from migrating workers between threads, which
// matters when the OS pins threads to cores — the setup under which the
// paper's locality results apply.
func NewPoolLocked(p int, seed uint64) *Pool {
	return newPool(p, seed, true)
}

func newPool(p int, seed uint64, lockThreads bool) *Pool {
	if p < 1 {
		panic(fmt.Sprintf("sched: NewPool with p = %d", p))
	}
	pool := &Pool{
		quit: make(chan struct{}),
	}
	master := rng.NewSplitMix64(seed)
	pool.workers = make([]*Worker, p)
	for i := 0; i < p; i++ {
		pool.workers[i] = &Worker{
			id:   i,
			pool: pool,
			dq:   deque.New(),
			rng:  rng.NewXoshiro256(master.Next()),
			park: make(chan struct{}, 1),
		}
	}
	for _, w := range pool.workers {
		pool.wg.Add(1)
		go func(w *Worker) {
			if lockThreads {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			w.mainLoop()
		}(w)
	}
	return pool
}

// P returns the number of workers.
func (p *Pool) P() int { return len(p.workers) }

// Worker returns worker i (for tests and instrumentation).
func (p *Pool) Worker(i int) *Worker { return p.workers[i] }

// Close shuts the pool down. Outstanding Run calls must have returned;
// Close does not drain pending work.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.quit)
	p.wg.Wait()
}

// Stats returns aggregate scheduler counters.
func (p *Pool) Stats() Stats {
	var s Stats
	for _, w := range p.workers {
		s.Tasks += w.tasks.Load()
		s.Steals += w.steals.Load()
		s.FailedSteals += w.failedSteals.Load()
		s.LoopEntries += w.loopEntries.Load()
	}
	return s
}

// ResetStats zeroes all scheduler counters.
func (p *Pool) ResetStats() {
	for _, w := range p.workers {
		w.tasks.Store(0)
		w.steals.Store(0)
		w.failedSteals.Store(0)
		w.loopEntries.Store(0)
	}
}

// Run executes root on some worker and blocks until it (and everything it
// waited for) returns. It is the entry point for code outside the pool.
// A panic inside root (including a *TaskPanicError re-raised by a Wait)
// propagates to the Run caller rather than killing a worker.
func (p *Pool) Run(root func(w *Worker)) {
	if p.closed.Load() {
		panic("sched: Run on closed pool")
	}
	done := make(chan struct{})
	var rootPanic *taskPanic
	p.submit(func(w *Worker) {
		defer close(done)
		defer func() {
			if r := recover(); r != nil {
				rootPanic = &taskPanic{value: r, stack: debug.Stack()}
			}
		}()
		root(w)
	})
	<-done
	if rootPanic != nil {
		if tpe, ok := rootPanic.value.(*TaskPanicError); ok {
			panic(tpe) // already wrapped by a Wait inside the pool
		}
		panic(&TaskPanicError{Value: rootPanic.value, Stack: rootPanic.stack})
	}
}

// submit places a task on the external injection queue and wakes a worker.
func (p *Pool) submit(t Task) {
	p.injectMu.Lock()
	p.inject = append(p.inject, t)
	p.injectMu.Unlock()
	p.notify()
}

// takeInjected removes one externally submitted task, FIFO.
func (p *Pool) takeInjected() (Task, bool) {
	p.injectMu.Lock()
	defer p.injectMu.Unlock()
	if len(p.inject) == 0 {
		return nil, false
	}
	t := p.inject[0]
	p.inject = p.inject[1:]
	return t, true
}

// notify wakes parked workers after new work was made visible. Workers
// announce parking (nparked) *before* their final sweep for work, so the
// pattern "publish task; read nparked" here cannot lose a wakeup: if the
// read sees zero, the parker's sweep necessarily sees the task.
func (p *Pool) notify() {
	if p.nparked.Load() == 0 {
		return
	}
	for _, w := range p.workers {
		select {
		case w.park <- struct{}{}:
		default: // already has a pending wake token
		}
	}
}

// RegisterLoop enrolls a live hybrid loop in the steal protocol.
// UnregisterLoop must be called when the loop's partitions are exhausted.
func (p *Pool) RegisterLoop(l HybridLoop) {
	p.loopsMu.Lock()
	p.loops = append(p.loops, l)
	p.loopsMu.Unlock()
	p.nloops.Add(1)
	p.notify()
}

// UnregisterLoop removes a hybrid loop from the steal protocol registry.
func (p *Pool) UnregisterLoop(l HybridLoop) {
	p.loopsMu.Lock()
	for i, x := range p.loops {
		if x == l {
			p.loops = append(p.loops[:i], p.loops[i+1:]...)
			break
		}
	}
	p.loopsMu.Unlock()
	p.nloops.Add(-1)
}

// snapshotLoops returns the currently registered loops (copy; callers
// iterate without holding the lock).
func (p *Pool) snapshotLoops() []HybridLoop {
	p.loopsMu.Lock()
	defer p.loopsMu.Unlock()
	return append([]HybridLoop(nil), p.loops...)
}

// Worker is a surrogate of a processing core (Section II): a goroutine
// with its own deque participating in randomized work stealing.
type Worker struct {
	id   int
	pool *Pool
	dq   *deque.Deque
	rng  *rng.Xoshiro256
	park chan struct{} // capacity-1 wake token channel

	pinnedMu sync.Mutex
	pinned   []Task // worker-targeted tasks; FIFO, not stealable

	tasks        atomic.Int64
	steals       atomic.Int64
	failedSteals atomic.Int64
	loopEntries  atomic.Int64
}

// ID returns the worker's ID in [0, P).
func (w *Worker) ID() int { return w.id }

// Pool returns the pool this worker belongs to.
func (w *Worker) Pool() *Pool { return w.pool }

// RNG returns the worker's private random number generator (used by
// strategies that need randomness on the worker's hot path).
func (w *Worker) RNG() *rng.Xoshiro256 { return w.rng }

// Spawn pushes a child task bound to g onto this worker's deque. Spawn
// performs the g.Add(1) itself. If the task panics, the panic is captured
// and re-raised from the Wait call that joins the group (wrapped in a
// TaskPanicError), so a panicking loop body surfaces to the code that
// started the loop instead of killing a scheduler worker.
func (w *Worker) Spawn(g *Group, t Task) {
	g.Add(1)
	w.dq.PushBottom(Task(func(cw *Worker) {
		defer g.Done()
		defer func() {
			if r := recover(); r != nil {
				g.panics.CompareAndSwap(nil, &taskPanic{value: r, stack: debug.Stack()})
			}
		}()
		t(cw)
	}))
	w.pool.notify()
}

// TaskPanicError wraps a panic raised inside a spawned task; Wait
// re-panics with it on the joining worker.
type TaskPanicError struct {
	// Value is the original panic value.
	Value any
	// Stack is the stack of the worker goroutine that caught the panic.
	Stack []byte
}

func (e *TaskPanicError) Error() string {
	return fmt.Sprintf("sched: task panicked: %v\ntask stack:\n%s", e.Value, e.Stack)
}

// SpawnOn enqueues a task bound to g that only worker id may execute —
// the pinned-work primitive used to model team-based schedulers (OpenMP
// static/dynamic/guided, FastFlow) where every thread enters the parallel
// region itself and chunks are not stealable.
func (p *Pool) SpawnOn(id int, g *Group, t Task) {
	g.Add(1)
	w := p.workers[id]
	w.pinnedMu.Lock()
	w.pinned = append(w.pinned, Task(func(cw *Worker) {
		defer g.Done()
		defer func() {
			if r := recover(); r != nil {
				g.panics.CompareAndSwap(nil, &taskPanic{value: r, stack: debug.Stack()})
			}
		}()
		t(cw)
	}))
	w.pinnedMu.Unlock()
	p.notify()
}

// takePinned removes one pinned task, FIFO. Owner only.
func (w *Worker) takePinned() (Task, bool) {
	w.pinnedMu.Lock()
	defer w.pinnedMu.Unlock()
	if len(w.pinned) == 0 {
		return nil, false
	}
	t := w.pinned[0]
	w.pinned = w.pinned[1:]
	return t, true
}

// Wait helps execute work until all tasks enrolled in g have completed.
// If any task in the group panicked, Wait re-panics with a
// *TaskPanicError carrying the first captured panic.
func (w *Worker) Wait(g *Group) {
	backoff := 0
	for !g.Finished() {
		if w.runOne() {
			backoff = 0
			continue
		}
		backoff++
		if backoff < 32 {
			runtime.Gosched()
		} else {
			// All deques are (transiently) empty but the group is not
			// finished: someone else is running our descendants. Yield the
			// CPU meaningfully — this matters on machines with fewer
			// physical cores than workers.
			time.Sleep(20 * time.Microsecond)
		}
	}
	if tp := g.panics.Load(); tp != nil {
		panic(&TaskPanicError{Value: tp.value, Stack: tp.stack})
	}
}

// run executes a task with accounting.
func (w *Worker) run(t Task) {
	w.tasks.Add(1)
	t(w)
}

// runOne executes one unit of work if any can be found: own deque first,
// then the hybrid-loop steal protocol, then a random steal, then the
// injection queue. Returns false if nothing was found.
func (w *Worker) runOne() bool {
	if t, ok := w.takePinned(); ok {
		w.run(t)
		return true
	}
	if t, ok := w.dq.PopBottom(); ok {
		w.run(t.(Task))
		return true
	}
	if w.pool.nloops.Load() > 0 && w.tryLoopProtocol() {
		return true
	}
	if t, ok := w.trySteal(); ok {
		w.run(t)
		return true
	}
	if t, ok := w.pool.takeInjected(); ok {
		w.run(t)
		return true
	}
	return false
}

// tryLoopProtocol probes registered hybrid loops per the DoHybridLoop
// steal protocol; returns true if the worker executed loop work.
func (w *Worker) tryLoopProtocol() bool {
	for _, l := range w.pool.snapshotLoops() {
		if !l.Live() {
			continue
		}
		if l.TrySteal(w) {
			w.loopEntries.Add(1)
			return true
		}
	}
	return false
}

// trySteal makes one randomized steal attempt against each other worker in
// a random starting rotation, returning a stolen task if successful.
func (w *Worker) trySteal() (Task, bool) {
	n := len(w.pool.workers)
	if n == 1 {
		return nil, false
	}
	start := w.rng.Intn(n)
	for k := 0; k < n; k++ {
		v := (start + k) % n
		if v == w.id {
			continue
		}
		if t, ok := w.pool.workers[v].dq.Steal(); ok {
			w.steals.Add(1)
			return t.(Task), true
		}
	}
	w.failedSteals.Add(1)
	return nil, false
}

// mainLoop is the top-level scheduling loop: run work while it exists,
// park when the system is quiescent, exit on pool close.
func (w *Worker) mainLoop() {
	defer w.pool.wg.Done()
	for {
		if w.runOne() {
			continue
		}
		// Announce intent to park, then sweep once more: any task made
		// visible before the announce is found by this sweep, and any task
		// published after it observes nparked > 0 and sends a wake token.
		w.pool.nparked.Add(1)
		if w.runOne() {
			w.pool.nparked.Add(-1)
			continue
		}
		select {
		case <-w.park:
			w.pool.nparked.Add(-1)
		case <-w.pool.quit:
			w.pool.nparked.Add(-1)
			return
		}
	}
}
