// Package sched implements a user-level fork-join work-stealing runtime —
// the substrate the paper's hybrid scheme plugs into (OpenCilk in the
// paper; built here from scratch over goroutines, per the reproduction
// plan in DESIGN.md).
//
// A Pool owns P workers, each a dedicated goroutine with its own Chase–Lev
// deque. Work is expressed as fork-join tasks: a running task Spawns
// children bound to a Group and Waits on the Group, during which the
// worker *helps* — it pops its own deque and steals from random victims —
// so workers never block while runnable work exists. This mirrors the
// work-first discipline of the paper's Section II substrate: the owner
// executes its deque bottom-up (LIFO, cache-hot), thieves steal top-down
// (FIFO, the biggest remaining piece).
//
// The Pool additionally implements the paper's DoHybridLoop steal
// protocol: active hybrid loops register themselves, and an idle worker w
// that would otherwise steal at random first probes each registered loop's
// partition structure; if w's designated partition A[w] is unclaimed, the
// worker enters the loop's claim sequence with its own worker ID
// (Section III, "Steal protocol for DoHybridLoop frames").
//
// # Wake policy
//
// Idle workers park on a per-worker wake-token channel. Making work
// visible (Spawn, external submission, loop registration) wakes exactly
// ONE parked worker, chosen round-robin — never all of them, avoiding the
// thundering herd of a broadcast (cf. Rokos et al., "An Interrupt-Driven
// Work-Sharing For-Loop Scheduler"). Throughput is preserved by wake
// chaining: a worker that acquires work and observes surplus behind it —
// a steal from a victim whose deque is still non-empty, an injected task
// with more queued behind it, or a hybrid-loop claim with partitions
// still unclaimed — wakes the next parked worker before executing, so
// wakeups propagate one hop per surplus observation while work remains.
//
// Lost-wakeup freedom relies on the announce-then-sweep handshake: a
// worker announces parking (its state word, then the pool's nparked
// counter) *before* its final sweep for work, and every producer makes
// work visible *before* reading nparked. If the producer reads
// nparked == 0, the parker's announce — and hence its final sweep —
// happens after the work was published, so the sweep finds it; otherwise
// the producer delivers a wake (or observes one already pending, which
// guarantees a future full sweep by that worker).
//
// Parking itself is a futex-style single-word wait: each worker carries a
// four-state word (active → parking → parked, with notified as the wake
// edge from either of the latter two). The uncontended wake is one CAS;
// only a wake that catches the worker fully parked touches the worker's
// capacity-1 token channel, and a wake that lands during the parking
// announcement is consumed without any channel traffic at all. No path
// allocates. See Worker.wake and Worker.mainLoop.
package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hybridloop/internal/deque"
	"hybridloop/internal/rng"
)

// Task is a unit of work executed by a worker. Tasks must not block on
// anything other than Group.Wait (which helps rather than blocking).
type Task func(w *Worker)

// Group tracks a set of spawned tasks for a join, like a sync.WaitGroup
// whose Wait helps execute work instead of blocking the worker.
type Group struct {
	pending atomic.Int64
	panics  atomic.Pointer[taskPanic]
	// waiter is the single worker (if any) parked inside Wait on this
	// group: the Done that drives pending to zero wakes it directly, so a
	// join whose last task completes elsewhere costs one CAS + one notify
	// instead of the old Gosched/sleep polling ladder. One slot suffices —
	// every loop strategy has exactly one joining worker; a second
	// concurrent waiter falls back to yielding (see Worker.Wait).
	waiter atomic.Pointer[Worker]
	// cancel, when bound, is tripped by the first panic captured into the
	// group, so the loop the group joins halts its surviving workers
	// instead of letting them grind to the Wait that re-raises the panic.
	cancel *Canceller
}

// BindCancel attaches a cancellation token to the group: the first panic
// captured into the group cancels the token (with ErrPanicked as cause).
// Must be called before any task bound to the group is spawned — the
// field is plain, published to workers by the spawn that hands them the
// group.
func (g *Group) BindCancel(c *Canceller) { g.cancel = c }

// taskPanic carries a panic from the worker that caught it to the task
// that joins on the group.
type taskPanic struct {
	value any
	stack []byte
}

// Add records n tasks that must complete before Wait returns. As with
// sync.WaitGroup, all Adds for a wave of spawns must happen before the
// corresponding Wait begins.
func (g *Group) Add(n int) { g.pending.Add(int64(n)) }

// Done marks one task complete. The runtime calls this automatically for
// tasks spawned with Worker.Spawn; call it manually only for work enrolled
// via Add without Spawn. The Done that drives the counter to zero wakes
// the worker parked in Wait, if there is one: the decrement-to-zero and
// the waiter registration in Wait are both sequentially consistent, so
// either Done sees the registered waiter or the waiter's post-announce
// Finished check sees the zero — a lost wakeup would require both reads
// to precede both writes, which no total order allows.
//
//sched:noalloc
func (g *Group) Done() {
	n := g.pending.Add(-1)
	if n < 0 {
		panic("sched: Group counter went negative")
	}
	if n == 0 {
		if w := g.waiter.Load(); w != nil {
			w.wake()
		}
	}
}

// Finished reports whether all enrolled tasks have completed.
func (g *Group) Finished() bool { return g.pending.Load() <= 0 }

// capture records a panic value into the group (first panic wins),
// unwrapping a *TaskPanicError re-raised by a nested Wait so the original
// stack is kept.
func (g *Group) capture(r any) {
	if tpe, ok := r.(*TaskPanicError); ok {
		g.panics.CompareAndSwap(nil, &taskPanic{value: tpe.Value, stack: tpe.Stack})
	} else {
		g.panics.CompareAndSwap(nil, &taskPanic{value: r, stack: debug.Stack()})
	}
	// A panicking body halts the rest of the loop, not just the worker it
	// ran on: trip the bound token so every other participant stops at its
	// next per-chunk poll instead of executing the remaining iterations.
	g.cancel.Cancel(ErrPanicked)
}

// Protect runs fn, capturing any panic into the group so that the Wait
// joining it re-raises the panic on the waiting worker. Runtime components
// that execute user code outside a spawned task — such as the hybrid
// loop's claim-and-execute path, which runs partitions synchronously on
// whichever worker entered via the steal protocol — use Protect so a
// panicking loop body cannot kill a scheduler worker.
func (g *Group) Protect(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			g.capture(r)
		}
	}()
	fn()
}

// HybridLoop is the interface the Pool's steal protocol uses to let idle
// workers enter a live hybrid loop with their own worker ID. It is
// implemented by the hybrid strategy in internal/loop; sched depends only
// on this abstraction.
type HybridLoop interface {
	// TrySteal gives worker w a chance to enter the loop per the
	// DoHybridLoop steal protocol. It returns true if the worker did work
	// (claimed and executed at least one partition).
	TrySteal(w *Worker) bool
	// Live reports whether the loop may still have unclaimed partitions.
	Live() bool
}

// Stats aggregates scheduler counters across workers.
type Stats struct {
	Tasks  int64 // tasks executed
	Steals int64 // successful steals
	// FailedSteals counts unsuccessful steal SWEEPS: one per full
	// round over all P-1 victims that found nothing — not one per
	// victim probed. An idle worker cycling through empty deques
	// increments this once per cycle.
	FailedSteals int64
	LoopEntries  int64 // hybrid-loop entries via the steal protocol
	// RangeSteals counts steal-half operations: a thief CASing off the
	// upper half of a victim's published lazy-split range descriptor.
	// These transfers bypass the deque entirely, so they are NOT included
	// in Steals; each one corresponds to exactly one trace.RangeSplit (or
	// RangeSplitRemote) event when the loop is traced.
	RangeSteals int64
	// RemoteSteals / RemoteRangeSteals are the cross-socket subsets of
	// Steals / RangeSteals under a hierarchical placement: transfers where
	// thief and victim sit on different sockets. Local counts are the
	// differences (Steals−RemoteSteals etc.); with a flat (nil) placement
	// both are always zero.
	RemoteSteals      int64
	RemoteRangeSteals int64
	// Parks counts committed park transitions: a worker actually blocking
	// on its state word after a failed announce-then-sweep, not wakes that
	// land during the announcement. Bumped only on the blocking slow path.
	Parks int64
	// BusyNanos / IdleNanos are the pool-wide sums of the per-worker
	// busy/parked times below. Zero unless SetTimeAccounting(true).
	BusyNanos int64
	IdleNanos int64
	// WorkerBusyNanos[i] is the time worker i spent executing work (bursts
	// of consecutive successful task acquisitions; the clock is read at
	// busy↔idle transitions, not per task, so the counters cost nothing on
	// the per-task hot path). WorkerIdleNanos[i] is the time worker i
	// spent parked. Both all-zero unless SetTimeAccounting(true).
	WorkerBusyNanos []int64
	WorkerIdleNanos []int64
}

// Pool is a work-stealing scheduler with a fixed set of workers.
type Pool struct {
	workers []*Worker
	// placement is the worker→socket map driving hierarchical victim
	// selection; nil is the flat single-socket default. Immutable after
	// construction.
	placement *Placement

	injectMu sync.Mutex
	inject   taskRing // external submissions, consumed by idle workers
	closed   bool     // guarded by injectMu; makes Close/submit mutually exclusive

	nparked    atomic.Int64  // workers announced as parking or parked
	wakeCursor atomic.Uint32 // round-robin start for targeted wakeups
	// demand is the exact count of hungry workers: workers whose last
	// steal sweep covered every victim and found nothing, and which have
	// not yet acquired work or parked. Each worker contributes at most
	// one unit (Worker.hungry); the count retires autonomously as hungry
	// workers find work, so there is no clear operation — and none of the
	// check-then-act races the old pool-wide 0/1 flag had, where a
	// MeetDemand (or a parking worker) could erase a signal raised
	// concurrently by another thief's failed sweep.
	demand    atomic.Int32
	injectedN atomic.Int64 // pending external submissions (for HelpOneInjected)
	timeAcct  atomic.Bool  // busy/idle time accounting enabled
	// quitting is the shutdown edge: set by Close before its wake pass. A
	// worker checks it after winning its park transition (sequentially
	// consistent with Close's store, so a worker that misses the wake pass
	// still observes the flag before blocking) and on every wake.
	//
	//sched:protocol quitflag
	//sched:state running = false
	//sched:state quitting = true
	//sched:trans any -> quitting
	quitting atomic.Bool
	wg       sync.WaitGroup
	// rootCache is a single-slot cache for the per-Run scratch frame: the
	// steady-state submitter (the wake-to-first-task path) recycles one
	// frame with a Swap/CAS pair instead of sync.Pool's pin/unpin round
	// trip. Concurrent Runs overflow to rootCallPool.
	rootCache atomic.Pointer[rootCall]

	loopsMu    sync.Mutex                   // serializes Register/Unregister
	loops      atomic.Pointer[[]*loopEntry] // immutable snapshot, lock-free probes
	nextLoopID atomic.Uint64                // per-pool loop IDs for attribution
}

// loopEntry is one registered loop plus the fairness metadata the steal
// protocol keys on: a pool-unique ID (registration order, the tiebreak),
// a relative weight, and the count of successful steal-protocol entries
// served to the loop so far. Idle workers probe live entries in ascending
// served/weight order, so a freshly registered small loop (served = 0)
// outranks a giant loop that has already absorbed many workers — the
// deficit-weighted round-robin that keeps one loop from starving the rest.
type loopEntry struct {
	l      HybridLoop
	id     uint64
	weight int32
	served atomic.Int64
}

// LoopInfo is a snapshot of one registered loop's fairness state, for
// observability (per-loop attribution in stats endpoints).
type LoopInfo struct {
	ID     uint64 // registration order, unique per pool
	Weight int    // relative service share
	Served int64  // successful steal-protocol entries routed to the loop
	Live   bool   // whether the loop still advertises stealable work
}

// NewPool creates a pool with p workers (p >= 1) and starts them. seed
// makes victim selection deterministic per worker for reproducible tests;
// pass different seeds for statistically independent runs.
func NewPool(p int, seed uint64) *Pool {
	return newPool(p, seed, false, nil)
}

// NewPoolLocked is NewPool with each worker goroutine locked to its own
// OS thread (runtime.LockOSThread). On dedicated multicore machines this
// keeps the Go scheduler from migrating workers between threads, which
// matters when the OS pins threads to cores — the setup under which the
// paper's locality results apply.
func NewPoolLocked(p int, seed uint64) *Pool {
	return newPool(p, seed, true, nil)
}

// NewPoolPlaced is the placement-aware constructor: pl maps workers to
// sockets and both steal paths sweep hierarchically (own socket first,
// larger cross-socket range transfers). A nil placement is the flat
// default, identical to NewPool/NewPoolLocked.
func NewPoolPlaced(p int, seed uint64, lockThreads bool, pl *Placement) *Pool {
	return newPool(p, seed, lockThreads, pl)
}

func newPool(p int, seed uint64, lockThreads bool, pl *Placement) *Pool {
	if p < 1 {
		panic(fmt.Sprintf("sched: NewPool with p = %d", p))
	}
	pool := &Pool{placement: pl}
	master := rng.NewSplitMix64(seed)
	pool.workers = make([]*Worker, p)
	for i := 0; i < p; i++ {
		pool.workers[i] = &Worker{
			id:     i,
			socket: int32(pl.Socket(i)),
			pool:   pool,
			dq:     deque.New(Task(nil), RangeTask(nil), (*Group)(nil)),
			rng:    rng.NewXoshiro256(master.Next()),
			park:   make(chan struct{}, 1),
		}
	}
	// Precompute each worker's hierarchical victim order: own-socket
	// victims first, then every remote worker, both in ascending-ID order
	// excluding the worker itself. The steal sweep rotates through each
	// list from a uniformly drawn start, so excluding self HERE is what
	// makes the first probe unbiased — the old skip-self-in-rotation sweep
	// first-probed the worker right after w.id twice as often as any other
	// victim (both start == w.id and start == w.id+1 landed on it).
	for _, w := range pool.workers {
		for _, v := range pool.workers {
			if v.id == w.id {
				continue
			}
			if v.socket == w.socket {
				w.localVictims = append(w.localVictims, v)
			} else {
				w.remoteVictims = append(w.remoteVictims, v)
			}
		}
	}
	for _, w := range pool.workers {
		pool.wg.Add(1)
		go func(w *Worker) {
			if lockThreads {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			w.mainLoop()
		}(w)
	}
	return pool
}

// P returns the number of workers.
func (p *Pool) P() int { return len(p.workers) }

// Worker returns worker i (for tests and instrumentation).
func (p *Pool) Worker(i int) *Worker { return p.workers[i] }

// Close shuts the pool down. Close and Run are mutually exclusive under
// the injection lock: a Run that wins the race has its root executed
// during the workers' final drain, and a Run that loses panics — it can
// never be stranded with an enqueued-but-never-run root.
func (p *Pool) Close() {
	p.injectMu.Lock()
	if p.closed {
		p.injectMu.Unlock()
		return
	}
	p.closed = true
	p.injectMu.Unlock()
	p.quitting.Store(true)
	// One wake pass suffices: a worker this pass observes active (or mid-
	// announcement) either parks after it — in which case its pre-block
	// quitting check, sequentially consistent with the store above, sees
	// the shutdown — or finds work and re-checks quitting on its next wake.
	for _, w := range p.workers {
		w.wake()
	}
	p.wg.Wait()
}

// SetTimeAccounting enables (or disables) per-worker busy/idle time
// accounting. Off by default: with it off the scheduler reads no clocks
// at all; with it on, the monotonic clock is read once per busy↔idle
// transition — a burst of consecutive tasks costs two reads total, so
// even fine-grained loops see no per-task overhead. Higher layers that
// want the imbalance signal (the adaptive autotuner, Stats consumers)
// turn it on at pool construction.
func (p *Pool) SetTimeAccounting(on bool) { p.timeAcct.Store(on) }

// TimeAccounting reports whether busy/idle time accounting is enabled.
func (p *Pool) TimeAccounting() bool { return p.timeAcct.Load() }

// Stats returns aggregate scheduler counters.
func (p *Pool) Stats() Stats {
	s := Stats{
		WorkerBusyNanos: make([]int64, len(p.workers)),
		WorkerIdleNanos: make([]int64, len(p.workers)),
	}
	for i, w := range p.workers {
		s.Tasks += w.tasks.Load()
		s.Steals += w.steals.Load()
		s.FailedSteals += w.failedSteals.Load()
		s.LoopEntries += w.loopEntries.Load()
		s.RangeSteals += w.rangeSteals.Load()
		s.RemoteSteals += w.remoteSteals.Load()
		s.RemoteRangeSteals += w.remoteRangeSteals.Load()
		s.Parks += w.parks.Load()
		s.WorkerBusyNanos[i] = w.busyNanos.Load()
		s.WorkerIdleNanos[i] = w.idleNanos.Load()
		s.BusyNanos += s.WorkerBusyNanos[i]
		s.IdleNanos += s.WorkerIdleNanos[i]
	}
	return s
}

// ResetStats zeroes all scheduler counters.
func (p *Pool) ResetStats() {
	for _, w := range p.workers {
		w.tasks.Store(0)
		w.steals.Store(0)
		w.failedSteals.Store(0)
		w.loopEntries.Store(0)
		w.rangeSteals.Store(0)
		w.remoteSteals.Store(0)
		w.remoteRangeSteals.Store(0)
		w.parks.Store(0)
		w.busyNanos.Store(0)
		w.idleNanos.Store(0)
	}
}

// WorkerCounters is one worker's scheduling counters, for per-worker
// attribution (the metrics plane's worker-labeled series).
type WorkerCounters struct {
	Worker            int
	Tasks             int64
	Steals            int64
	FailedSteals      int64
	LoopEntries       int64
	RangeSteals       int64
	RemoteSteals      int64
	RemoteRangeSteals int64
	Parks             int64
	BusyNanos         int64
	IdleNanos         int64
}

// PerWorker snapshots every worker's counters. Reads are individually
// atomic, not mutually consistent — monitoring semantics, same as Stats.
func (p *Pool) PerWorker() []WorkerCounters {
	out := make([]WorkerCounters, len(p.workers))
	for i, w := range p.workers {
		out[i] = WorkerCounters{
			Worker:            i,
			Tasks:             w.tasks.Load(),
			Steals:            w.steals.Load(),
			FailedSteals:      w.failedSteals.Load(),
			LoopEntries:       w.loopEntries.Load(),
			RangeSteals:       w.rangeSteals.Load(),
			RemoteSteals:      w.remoteSteals.Load(),
			RemoteRangeSteals: w.remoteRangeSteals.Load(),
			Parks:             w.parks.Load(),
			BusyNanos:         w.busyNanos.Load(),
			IdleNanos:         w.idleNanos.Load(),
		}
	}
	return out
}

// ParkedWorkers returns the number of workers currently announced as
// parking or parked — the idle-capacity gauge.
func (p *Pool) ParkedWorkers() int { return int(p.nparked.Load()) }

// Placement returns the pool's worker→socket placement, or nil for the
// flat default.
func (p *Pool) Placement() *Placement { return p.placement }

// rootCall is the reusable frame of one Pool.Run: the submitted root, the
// completion signal, and the panic carried back to the caller. The task
// closure and the done channel are built once per frame and recycled
// through rootCallPool, so a steady state of external submissions — the
// wake-to-first-task path — allocates nothing per Run.
type rootCall struct {
	root func(w *Worker)
	tp   *taskPanic
	done chan struct{} // capacity 1: the worker's send never blocks
	task Task          // pre-bound closure over this frame
}

var rootCallPool = sync.Pool{New: func() any {
	rc := &rootCall{done: make(chan struct{}, 1)}
	rc.task = func(w *Worker) {
		defer func() {
			if r := recover(); r != nil {
				rc.tp = &taskPanic{value: r, stack: debug.Stack()}
			}
			// The send is the frame's last touch by the worker; the
			// receive in Run orders everything before it, so the caller's
			// reads of rc.tp and its reset-and-recycle are safe.
			rc.done <- struct{}{}
		}()
		rc.root(w)
	}
	return rc
}}

// Run executes root on some worker and blocks until it (and everything it
// waited for) returns. It is the entry point for code outside the pool.
// A panic inside root (including a *TaskPanicError re-raised by a Wait)
// propagates to the Run caller rather than killing a worker. Run on a
// closed pool panics.
func (p *Pool) Run(root func(w *Worker)) {
	rc := p.rootCache.Swap(nil)
	if rc == nil {
		rc = rootCallPool.Get().(*rootCall)
	}
	rc.root = root
	p.submit(rc.task)
	<-rc.done
	tp := rc.tp
	rc.root, rc.tp = nil, nil
	if !p.rootCache.CompareAndSwap(nil, rc) {
		rootCallPool.Put(rc)
	}
	if tp != nil {
		if tpe, ok := tp.value.(*TaskPanicError); ok {
			panic(tpe) // already wrapped by a Wait inside the pool
		}
		panic(&TaskPanicError{Value: tp.value, Stack: tp.stack})
	}
}

// submit places a task on the external injection queue and wakes a worker.
// The closed check happens under the same lock Close takes, so a task is
// enqueued iff it precedes the close — in which case the workers' final
// drain executes it (and a submission that instead wins a direct handoff
// below is guaranteed to run by the reserved worker, even across the
// shutdown edge — see mainLoop's handoff handling).
func (p *Pool) submit(t Task) {
	// Direct-handoff fast path: on an idle pool, reserve a parked worker
	// with the same wParked→wNotified CAS a wake uses, hand it the task
	// through its handoff slot, and deliver the token. The task bypasses
	// the inject queue entirely, and the reserved worker runs it straight
	// off the wake — no injectMu on either side, no deque/steal sweep
	// before the first instruction of the task. This is the dominant term
	// of the wake-to-first-task latency. The CAS makes the reservation
	// exclusive: a concurrent notify that loses the race observes
	// wNotified and treats the wake as already delivered, and the worker
	// cannot retract past wParked without consuming the token (see
	// mainLoop). Skipped when injected tasks are already queued so a
	// burst drains roughly in order.
	if p.injectedN.Load() == 0 && p.nparked.Load() > 0 {
		// Fixed-order scan, not the round-robin cursor: on an idle pool
		// every submission reuses the same (cache-warm) worker, and the
		// shared cursor RMW stays off the latency path. Fairness is a
		// non-issue — a parked worker has nothing to be unfair about.
		for _, w := range p.workers {
			if w.state.Load() == wParked && w.state.CompareAndSwap(wParked, wNotified) {
				// The slot write is ordered before the token send; the
				// worker reads it only after the receive.
				w.handoff = t
				w.park <- struct{}{} // capacity 1, reservation is exclusive: never blocks
				return
			}
		}
	}
	p.injectMu.Lock()
	if p.closed {
		p.injectMu.Unlock()
		panic("sched: Run on closed pool")
	}
	p.inject.push(t)
	p.injectedN.Add(1)
	p.injectMu.Unlock()
	p.notify()
}

// InjectPending reports whether external submissions are queued. One
// uncontended atomic load; loop strategies poll it at chunk boundaries to
// decide whether to detour into HelpOneInjected.
func (p *Pool) InjectPending() bool { return p.injectedN.Load() != 0 }

// maxInjectHelpDepth bounds the recursion of loops helping loops: a
// worker that picks up an injected loop root mid-chunk may, inside that
// loop, pick up another. The bound keeps a flood of submissions from
// growing one worker's stack without limit; submissions beyond it simply
// wait for a worker at lower depth (or a parked one).
const maxInjectHelpDepth = 8

// HelpOneInjected lets a worker that is mid-loop service the external
// submission queue: it pops one injected task (typically a newly
// submitted loop's root) and runs it inline on w, then returns to the
// caller's loop. Loop strategies call it at chunk boundaries so a freshly
// submitted small loop starts within about one chunk even when every
// worker is grinding a giant loop — without it, a new loop's root waits
// until some worker drains its entire partition and returns to runOne,
// which is the cross-loop starvation the multi-tenant serving mode must
// avoid. The caller's own published range descriptor remains stealable
// during the detour, so no work is lost and the interrupted loop keeps
// load balancing underneath the helper.
//
// Returns false when nothing is pending or the worker is already at the
// help-depth bound.
func (p *Pool) HelpOneInjected(w *Worker) bool {
	if w.injectDepth >= maxInjectHelpDepth || p.injectedN.Load() == 0 {
		return false
	}
	t, ok, more := p.takeInjected()
	if !ok {
		return false
	}
	if more {
		p.notify()
	}
	w.injectDepth++
	defer func() { w.injectDepth-- }()
	w.run(t)
	return true
}

// takeInjected removes one externally submitted task, FIFO. more reports
// whether further injected tasks remain (for wake chaining).
func (p *Pool) takeInjected() (t Task, ok, more bool) {
	// Empty-queue fast path: one atomic load instead of a mutex round
	// trip. A submission concurrent with the load is covered by the usual
	// handshake — the producer increments injectedN (under the lock)
	// before its notify, so a sweeper that misses the count here is woken
	// into a sweep ordered after the publication.
	if p.injectedN.Load() == 0 {
		return nil, false, false
	}
	p.injectMu.Lock()
	t, ok = p.inject.pop()
	if ok {
		p.injectedN.Add(-1)
	}
	more = p.inject.len() > 0
	p.injectMu.Unlock()
	return t, ok, more
}

// taskRing is a circular FIFO of injected tasks. Popped slots are nil'ed
// so consumed tasks do not linger in the buffer (the previous
// slice-reslicing queue kept every popped task reachable through the
// shared backing array). It grows by doubling when full; capacity is
// always a power of two.
type taskRing struct {
	buf  []Task
	head int // index of the oldest task
	n    int // number of queued tasks
}

func (r *taskRing) len() int { return r.n }

func (r *taskRing) push(t Task) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = t
	r.n++
}

func (r *taskRing) pop() (Task, bool) {
	if r.n == 0 {
		return nil, false
	}
	t := r.buf[r.head]
	r.buf[r.head] = nil // release the slot: no retention of popped tasks
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return t, true
}

func (r *taskRing) grow() {
	cap := len(r.buf) * 2
	if cap == 0 {
		cap = 16
	}
	buf := make([]Task, cap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// notify wakes ONE parked worker, round-robin, after new work was made
// visible — see the package comment's wake-policy section for why this
// (plus wake chaining) cannot lose a wakeup. A worker already in the
// notified state counts as woken: the pending wake forces a full sweep
// that is ordered after this producer's publication.
//
//sched:noalloc
func (p *Pool) notify() {
	if p.nparked.Load() == 0 {
		return
	}
	ws := p.workers
	n := uint32(len(ws))
	start := p.wakeCursor.Add(1)
	for k := uint32(0); k < n; k++ {
		if ws[(start+k)%n].wake() {
			return
		}
	}
	// No worker was observed parked: every announcer either found work or
	// will announce (and final-sweep) after our publication. Nothing to do.
}

// Notify wakes one parked worker. Runtime components that discover
// surplus work outside the pool's own paths (e.g. the hybrid loop after a
// successful claim with partitions still unclaimed) chain wakeups with it.
func (p *Pool) Notify() { p.notify() }

// WakeAll delivers a wake token to every parked worker. Cancellation uses
// it: tripping a loop's token is not "new work" in the sense the
// round-robin notify distributes, but a pool-wide event every parked
// worker should observe promptly — a woken worker's sweep finds the dying
// loop through the registry and helps drain its remaining claims instead
// of leaving the whole drain to the worker blocked in Wait. Workers that
// find nothing simply re-park; a spurious WakeAll costs one sweep each.
func (p *Pool) WakeAll() {
	if p.nparked.Load() == 0 {
		return
	}
	for _, w := range p.workers {
		w.wake()
	}
}

// Demand reports whether there is evidence of thief demand: a worker is
// parked (idle capacity with nothing to run) or some worker's last steal
// sweep covered every victim without finding work and it is still hungry.
// It costs one or two uncontended atomic loads, cheap enough for a loop
// owner to poll once per executed chunk — the demand signal that drives
// lazy range splitting: with no demand the owner keeps consuming its
// published range in large sequential grains and the loop pays zero
// splitting overhead.
func (p *Pool) Demand() bool {
	return p.nparked.Load() > 0 || p.demand.Load() > 0
}

// MeetDemand responds to a Demand observation by waking one parked worker
// so the surplus the caller is advertising (a published range descriptor
// with more than a chunk left) gets a thief routed to it. Recruitment then
// spreads by the usual wake chaining — a thief that steals half and
// observes the victim still has surplus wakes the next parked worker.
//
// Unlike the old pool-wide demand flag, there is nothing to clear here:
// the demand count is exact per-worker accounting that retires on its own
// when a hungry worker acquires work or parks. The old Load()!=0 →
// Store(0) clear was check-then-act — a hint raised by a concurrent
// failed-steal sweep between the load and the store was silently erased
// before any owner advertised surplus (see TestMeetDemandKeepsConcurrentDemand).
func (p *Pool) MeetDemand() {
	p.notify()
}

// DemandCount returns the number of currently hungry workers (exact
// accounting; see Demand). Exposed for observability and tests.
func (p *Pool) DemandCount() int { return int(p.demand.Load()) }

// notifyWorker wakes one specific worker — required for pinned tasks,
// which only their target worker may execute, so a round-robin wake of
// some other worker would strand them. The same announce-then-sweep
// handshake applies, per worker: if w is not observed parked, its next
// parking announcement is ordered after the task's publication and the
// final sweep finds it.
func (p *Pool) notifyWorker(w *Worker) {
	w.wake()
}

// RegisterLoop enrolls a live hybrid loop in the steal protocol with the
// default weight 1 and wakes one parked worker; further participants are
// recruited by wake chaining as claims observe unclaimed partitions.
func (p *Pool) RegisterLoop(l HybridLoop) {
	p.RegisterLoopWeighted(l, 1)
}

// RegisterLoopWeighted is RegisterLoop with an explicit fairness weight:
// idle workers probe live loops in ascending served/weight order, so a
// loop with weight 2 is entitled to roughly twice the steal-protocol
// entries of a weight-1 loop under contention. Weights below 1 are
// clamped to 1.
func (p *Pool) RegisterLoopWeighted(l HybridLoop, weight int) {
	if weight < 1 {
		weight = 1
	}
	e := &loopEntry{l: l, id: p.nextLoopID.Add(1), weight: int32(weight)}
	p.loopsMu.Lock()
	old := p.loops.Load()
	var ls []*loopEntry
	if old != nil {
		ls = append(ls, *old...)
	}
	ls = append(ls, e)
	p.loops.Store(&ls)
	p.loopsMu.Unlock()
	p.notify()
}

// UnregisterLoop removes a hybrid loop from the steal protocol registry.
// No demand cleanup is needed on the last unregister anymore: the demand
// count is exact per-worker accounting that a hungry worker retires
// itself when it finds work or parks, so it cannot go stale across loops
// the way the old sticky flag could.
func (p *Pool) UnregisterLoop(l HybridLoop) {
	p.loopsMu.Lock()
	defer p.loopsMu.Unlock()
	old := p.loops.Load()
	if old == nil {
		return
	}
	ls := make([]*loopEntry, 0, len(*old))
	for _, e := range *old {
		if e.l != l {
			ls = append(ls, e)
		}
	}
	p.loops.Store(&ls)
}

// loopList returns the current registered-loop snapshot without copying:
// Register/Unregister publish fresh immutable slices, so the per-probe
// copy the old mutex+snapshot scheme made on every idle probe is gone.
func (p *Pool) loopList() []*loopEntry {
	ls := p.loops.Load()
	if ls == nil {
		return nil
	}
	return *ls
}

// LiveLoops snapshots the fairness state of every registered loop, for
// per-loop attribution in stats/trace consumers (the examples/server
// /stats endpoint renders it). Ordered by registration.
func (p *Pool) LiveLoops() []LoopInfo {
	ls := p.loopList()
	out := make([]LoopInfo, len(ls))
	for i, e := range ls {
		out[i] = LoopInfo{
			ID:     e.id,
			Weight: int(e.weight),
			Served: e.served.Load(),
			Live:   e.l.Live(),
		}
	}
	return out
}

// LoopsRegistered returns the number of loops ever registered with this
// pool (the current value of the per-pool loop ID counter).
func (p *Pool) LoopsRegistered() int64 { return int64(p.nextLoopID.Load()) }

// Worker park states: the single word the futex-style park/wake protocol
// runs on. Transitions:
//
//	active  → parking   (owner announces intent, then final-sweeps)
//	parking → parked    (owner CAS: the sweep found nothing, block)
//	parking → notified  (waker CAS: wake landed during the announcement —
//	                     the owner's failed parking→parked CAS consumes it
//	                     with no channel traffic at all)
//	parked  → notified  (waker CAS + one channel send to unblock the owner)
//	*       → active    (owner store on every wake/retract path)
//
// Only the transition out of parked touches the capacity-1 token channel,
// and the notified state admits at most one in-flight send, so the send
// never blocks and no token can go stale. The uncontended wake is one CAS
// plus one buffered-channel send; a wake that observes active or notified
// is a no-op.
const (
	wActive uint32 = iota
	wParking
	wParked
	wNotified
)

// wake delivers a wake to w. It returns true if w was parked or parking —
// the wake was delivered, or one was already pending, and w's next full
// sweep is ordered after the caller's work publication — and false if w
// is active (running; it will announce-then-sweep before ever blocking).
//
//sched:noalloc
func (w *Worker) wake() bool {
	for {
		switch w.state.Load() {
		case wActive:
			return false
		case wNotified:
			return true // pending wake: w is committed to a full re-sweep
		case wParking:
			if w.state.CompareAndSwap(wParking, wNotified) {
				return true // consumed by the owner's failed park CAS
			}
		case wParked:
			if w.state.CompareAndSwap(wParked, wNotified) {
				w.park <- struct{}{} // capacity 1, sole sender: never blocks
				return true
			}
		}
	}
}

// Worker is a surrogate of a processing core (Section II): a goroutine
// with its own deque participating in randomized work stealing.
//
// Workers are allocated individually but land in the same heap size
// class, so the struct is padded to a cache-line multiple (checked by
// schedlint's cacheline analyzer) to keep one worker's hot counters —
// tasks/steals are bumped on every executed task — from sharing a
// boundary line with a neighbor's.
//
//sched:cacheline
type Worker struct {
	id     int
	socket int32 // placement socket housing this worker (0 when flat)
	pool   *Pool
	dq     *deque.Deque
	rng    *rng.Xoshiro256
	// localVictims/remoteVictims are the precomputed hierarchical victim
	// lists: every other worker on this worker's socket, then every worker
	// on a remote socket (ascending IDs, self excluded). Immutable after
	// pool construction. With a flat placement remoteVictims is empty and
	// localVictims holds all P−1 others.
	localVictims  []*Worker
	remoteVictims []*Worker
	park          chan struct{} // capacity-1 unblock channel (parked→notified only)
	// state is the futex-style parking word; the spec below formalizes
	// the narrative protocol at wake, and schedlint's protocol analyzer
	// checks every atomic op on this field against it module-wide.
	//
	//sched:protocol parkword
	//sched:state active = wActive
	//sched:state parking = wParking
	//sched:state parked = wParked
	//sched:state notified = wNotified
	//sched:trans any -> parking
	//sched:trans parking -> parked
	//sched:trans parking -> notified
	//sched:trans parked -> notified
	//sched:trans parked -> active
	//sched:trans any -> active
	state atomic.Uint32 // wActive/wParking/wParked/wNotified (see wake)
	// handoff carries a task delivered by Pool.submit's direct-handoff
	// fast path. Plain field: a producer writes it only between winning
	// the exclusive wParked→wNotified reservation CAS and its token send,
	// and the worker reads it only after receiving that token (or on
	// paths where no reservation can have happened), so the channel
	// orders every cross-goroutine access.
	handoff Task
	// hungry marks a worker whose last steal sweep found nothing and that
	// has not yet acquired work or parked; it mirrors one unit of the
	// pool's demand count. Worker-private: only the owning goroutine reads
	// or writes it (the shared signal is Pool.demand).
	hungry bool
	// injectDepth is the worker's current nesting depth of inline
	// HelpOneInjected detours. Worker-private.
	injectDepth int32

	pinnedMu   sync.Mutex
	pinned     []spawned    // worker-targeted tasks; FIFO, not stealable
	pinnedHead int          // consumed prefix of pinned (slots nil'ed)
	pinnedN    atomic.Int32 // queued pinned tasks; lets runOne skip the lock

	tasks        atomic.Int64
	steals       atomic.Int64
	failedSteals atomic.Int64
	loopEntries  atomic.Int64
	rangeSteals  atomic.Int64
	// remoteSteals/remoteRangeSteals count the cross-socket subsets of
	// steals/rangeSteals (zero with a flat placement); local counts are the
	// differences, so the pair reconciles by construction.
	remoteSteals      atomic.Int64
	remoteRangeSteals atomic.Int64
	parks             atomic.Int64 // committed park transitions (blocking slow path only)
	busyNanos         atomic.Int64 // time in busy bursts (timeAcct only)
	idleNanos         atomic.Int64 // time parked (timeAcct only)

	_ [8]byte // pad to a cache-line multiple (//sched:cacheline)
}

// NoteRangeSteal records one successful steal-half of a published range
// descriptor. Called by the loop strategies (internal/loop), which own
// the steal-half protocol; the counter lives here so Stats aggregates it
// with the other scheduling counters. remote marks a cross-socket
// transfer (thief and victim on different placement sockets).
func (w *Worker) NoteRangeSteal(remote bool) {
	w.rangeSteals.Add(1)
	if remote {
		w.remoteRangeSteals.Add(1)
	}
}

// noteHungry registers this worker's unmet demand after a failed full
// steal sweep. Idempotent per worker: repeated failed sweeps contribute
// one unit until the worker is fed or parks, so the demand count is an
// exact census of hungry workers, never a sticky flag.
func (w *Worker) noteHungry() {
	if !w.hungry {
		w.hungry = true
		w.pool.demand.Add(1)
	}
}

// noteFed retires this worker's demand contribution: called when the
// worker acquires work, and when it parks (from then on its idleness is
// represented by nparked, which Demand() checks first — the park-time
// retirement only ever removes this worker's own unit, so other live
// loops' hungry thieves keep the demand signal raised; the old pool-wide
// flag clear wiped theirs too).
func (w *Worker) noteFed() {
	if w.hungry {
		w.hungry = false
		w.pool.demand.Add(-1)
	}
}

// spawned is the deque/pinned-queue element: the task function plus its
// join group. Panic capture and the group Done happen in runSpawned, so
// enqueuing a task requires no closure allocation. Exactly one of fn/rt
// is set; rt carries its iteration range in lo/hi.
type spawned struct {
	fn     Task
	rt     RangeTask
	g      *Group
	lo, hi int
}

// RangeTask is a task parameterized by an iteration range. SpawnRange
// stores the range inline in the deque slot, so loop lowerings that spawn
// one task per split need no per-spawn closure capturing the bounds —
// the allocation that used to dominate fine-grained loop overhead.
type RangeTask func(w *Worker, lo, hi int)

// packRange packs lo and hi into one non-zero int64 deque word, or
// ok == false if either bound needs more than 32 bits. hi > lo guarantees
// the packed word is non-zero, which is what distinguishes a RangeTask
// element from a plain Task element (packed == 0) in the deque.
func packRange(lo, hi int) (int64, bool) {
	if int(int32(lo)) != lo || int(int32(hi)) != hi {
		return 0, false
	}
	return int64(uint32(lo)) | int64(uint32(hi))<<32, true
}

func unpackRange(ab int64) (lo, hi int) {
	return int(int32(uint32(ab))), int(int32(uint32(ab >> 32)))
}

// decode rebuilds a spawned from the deque's (v, arg, ab) element.
func decode(v, arg any, ab int64) spawned {
	g := arg.(*Group)
	if ab == 0 {
		return spawned{fn: v.(Task), g: g}
	}
	lo, hi := unpackRange(ab)
	return spawned{rt: v.(RangeTask), g: g, lo: lo, hi: hi}
}

// ID returns the worker's ID in [0, P).
func (w *Worker) ID() int { return w.id }

// Pool returns the pool this worker belongs to.
func (w *Worker) Pool() *Pool { return w.pool }

// RNG returns the worker's private random number generator (used by
// strategies that need randomness on the worker's hot path).
func (w *Worker) RNG() *rng.Xoshiro256 { return w.rng }

// Socket returns the placement socket housing this worker (0 when the
// pool has no placement).
func (w *Worker) Socket() int { return int(w.socket) }

// Victims returns the worker's precomputed hierarchical victim lists:
// same-socket workers, then remote-socket workers, both ascending-ID with
// self excluded. The loop strategies use them to sweep published ranges
// in the same socket-local-first order as the deque steal path. Callers
// must not mutate the returned slices.
func (w *Worker) Victims() (local, remote []*Worker) {
	return w.localVictims, w.remoteVictims
}

// Spawn pushes a child task bound to g onto this worker's deque. Spawn
// performs the g.Add(1) itself. If the task panics, the panic is captured
// and re-raised from the Wait call that joins the group (wrapped in a
// TaskPanicError), so a panicking loop body surfaces to the code that
// started the loop instead of killing a scheduler worker.
//
// Spawn does not heap-allocate: the task function and group pointer are
// stored directly in the deque, and the completion/panic bookkeeping runs
// in the executing worker rather than in a per-spawn wrapper closure.
//
//sched:noalloc
func (w *Worker) Spawn(g *Group, t Task) {
	g.Add(1)
	w.dq.PushBottom(t, g, 0)
	w.pool.notify()
}

// SpawnRange is Spawn for a RangeTask over [lo, hi): the bounds travel
// inside the deque slot, so repeated spawns of the same task function over
// different ranges (the shape of every divide-and-conquer loop lowering)
// are allocation-free. Ranges whose bounds exceed 32 bits fall back to a
// heap-allocated wrapper — correct, merely slower, and unreachable for
// any loop this repository runs.
//
//sched:noalloc
func (w *Worker) SpawnRange(g *Group, rt RangeTask, lo, hi int) {
	ab, ok := packRange(lo, hi)
	if !ok {
		// The eager fallback wraps the range in a closure. It is the one
		// deliberate allocation here: reachable only for bounds beyond
		// int32, which no loop in this repository produces.
		//lint:ignore noalloc cold int32-overflow fallback; wrapping closure allocates by design
		w.Spawn(g, func(cw *Worker) { rt(cw, lo, hi) })
		return
	}
	g.Add(1)
	w.dq.PushBottom(rt, g, ab)
	w.pool.notify()
}

// TaskPanicError wraps a panic raised inside a spawned task; Wait
// re-panics with it on the joining worker.
type TaskPanicError struct {
	// Value is the original panic value.
	Value any
	// Stack is the stack of the worker goroutine that caught the panic.
	Stack []byte
}

func (e *TaskPanicError) Error() string {
	return fmt.Sprintf("sched: task panicked: %v\ntask stack:\n%s", e.Value, e.Stack)
}

// SpawnOn enqueues a task bound to g that only worker id may execute —
// the pinned-work primitive used to model team-based schedulers (OpenMP
// static/dynamic/guided, FastFlow) where every thread enters the parallel
// region itself and chunks are not stealable.
func (p *Pool) SpawnOn(id int, g *Group, t Task) {
	g.Add(1)
	w := p.workers[id]
	w.pinnedMu.Lock()
	w.pinned = append(w.pinned, spawned{fn: t, g: g})
	w.pinnedN.Add(1)
	w.pinnedMu.Unlock()
	p.notifyWorker(w)
}

// takePinned removes one pinned task, FIFO. Owner only. Consumed slots
// are zeroed so executed tasks are not retained by the queue.
func (w *Worker) takePinned() (spawned, bool) {
	// Lock-free common case: pinned work is rare outside the team-based
	// strategies, and runOne probes here on every task, so an empty queue
	// must cost one atomic load, not a mutex round trip. A producer
	// increments pinnedN before its notifyWorker, so the park/notify
	// handshake covers a count published after this check.
	if w.pinnedN.Load() == 0 {
		return spawned{}, false
	}
	w.pinnedMu.Lock()
	defer w.pinnedMu.Unlock()
	if w.pinnedHead == len(w.pinned) {
		if w.pinnedHead > 0 {
			w.pinned = w.pinned[:0]
			w.pinnedHead = 0
		}
		return spawned{}, false
	}
	s := w.pinned[w.pinnedHead]
	w.pinned[w.pinnedHead] = spawned{}
	w.pinnedHead++
	w.pinnedN.Add(-1)
	return s, true
}

// Wait helps execute work until all tasks enrolled in g have completed.
// If any task in the group panicked, Wait re-panics with a
// *TaskPanicError carrying the first captured panic.
//
// A waiter that finds nothing runnable parks on its own state word, like
// mainLoop — not on the old Gosched/sleep polling ladder. It registers
// itself in the group's waiter slot first, so the Done that finishes the
// group wakes it directly; and it announces through nparked, so ordinary
// notify/WakeAll traffic (new spawns, injected roots, the cancel edge)
// reaches it too — a parked waiter is genuine idle capacity, and any wake
// sends it through a full runOne sweep before it can block again.
//sched:noalloc
func (w *Worker) Wait(g *Group) {
	backoff := 0
	for !g.Finished() {
		if w.runOne() {
			backoff = 0
			continue
		}
		if !g.waiter.CompareAndSwap(nil, w) {
			// Another worker already waits on this group (user code can
			// share a group across Waits): fall back to yielding.
			backoff++
			if backoff < 32 {
				runtime.Gosched()
			} else {
				time.Sleep(20 * time.Microsecond)
			}
			continue
		}
		// Announce-then-sweep, exactly like mainLoop: after the announce,
		// re-check the join condition and sweep once more. A Done or a
		// work publication that raced the announce is caught here; one
		// that lands after it observes the announce and delivers a wake.
		w.state.Store(wParking)
		w.pool.nparked.Add(1)
		if g.Finished() || w.runOne() {
			g.waiter.CompareAndSwap(w, nil)
			w.unpark()
			continue
		}
		if w.state.CompareAndSwap(wParking, wParked) {
			w.parks.Add(1)
			<-w.park
		}
		w.state.Store(wActive)
		w.pool.nparked.Add(-1)
		g.waiter.CompareAndSwap(w, nil)
		// A parked waiter is indistinguishable from a parked idle worker,
		// so a direct handoff (Pool.submit) may have reserved us: run the
		// delivered root inline — exactly what the sweep above does when
		// it picks an injected root out of the queue — then re-check the
		// join condition.
		if t := w.handoff; t != nil {
			w.handoff = nil
			w.run(t)
		}
	}
	// A worker can leave a join hungry (its final sweeps found nothing
	// because the group finished under it); it is about to resume the
	// task that called Wait, so its demand unit would be stale — retire
	// it here rather than waiting for the next runOne success or park.
	w.noteFed()
	if tp := g.panics.Load(); tp != nil {
		//lint:ignore noalloc cold unwind path: the re-raised panic value must escape
		panic(&TaskPanicError{Value: tp.value, Stack: tp.stack})
	}
}

// run executes a group-less task (external submission) with accounting.
func (w *Worker) run(t Task) {
	w.tasks.Add(1)
	t(w)
}

// runSpawned executes one spawned task: accounting, panic capture into
// the group, and the group Done — the bookkeeping the spawn path used to
// pay two heap-allocated closures for, now performed inline by the
// executing worker.
func (w *Worker) runSpawned(s spawned) {
	w.tasks.Add(1)
	defer func() {
		if r := recover(); r != nil {
			s.g.capture(r)
		}
		s.g.Done()
	}()
	if s.rt != nil {
		s.rt(w, s.lo, s.hi)
		return
	}
	s.fn(w)
}

// runOne executes one unit of work if any can be found: own deque first,
// then the hybrid-loop steal protocol, then a random steal, then the
// injection queue. Returns false if nothing was found. A success feeds
// the worker — its demand contribution (if any) is retired.
func (w *Worker) runOne() bool {
	ok := w.findAndRunOne()
	if ok {
		w.noteFed()
	}
	return ok
}

func (w *Worker) findAndRunOne() bool {
	if s, ok := w.takePinned(); ok {
		w.runSpawned(s)
		return true
	}
	if v, arg, ab, ok := w.dq.PopBottom(); ok {
		w.runSpawned(decode(v, arg, ab))
		return true
	}
	if w.tryLoopProtocol() {
		return true
	}
	// External submissions come before the randomized steal sweep: a
	// freshly woken worker on an otherwise idle pool takes the injected
	// root directly instead of first grinding a full failed sweep over
	// P−1 empty deques — the dominant term of the wake-to-first-task
	// latency. Registered loop work still outranks it (above), so a
	// worker helping a live loop is not diverted.
	if t, ok, more := w.pool.takeInjected(); ok {
		if more {
			// Chain: more external submissions are queued behind this one.
			w.pool.notify()
		}
		w.run(t)
		return true
	}
	if s, ok := w.trySteal(); ok {
		w.runSpawned(s)
		return true
	}
	return false
}

// tryLoopProtocol probes registered hybrid loops per the DoHybridLoop
// steal protocol; returns true if the worker executed loop work. The
// loop itself chains wakeups on successful claims (see Pool.Notify), so
// probing stays wake-silent for workers whose designated partition is
// already claimed.
//
// With more than one live loop registered, probes follow deficit-weighted
// order: the live loop with the smallest served/weight ratio is tried
// first (ties broken by registration order), then the next-smallest, and
// so on. A giant loop that has already absorbed many steal-protocol
// entries therefore cannot monopolize idle workers: a freshly registered
// small or high-weight loop wins the next probe.
func (w *Worker) tryLoopProtocol() bool {
	entries := w.pool.loopList()
	n := len(entries)
	switch {
	case n == 0:
		return false
	case n == 1:
		e := entries[0]
		if e.l.Live() && e.l.TrySteal(w) {
			e.served.Add(1)
			w.loopEntries.Add(1)
			return true
		}
		return false
	case n <= 64:
		var tried uint64
		for {
			i := nextLoopIndex(entries, tried)
			if i < 0 {
				return false
			}
			tried |= 1 << uint(i)
			e := entries[i]
			if e.l.TrySteal(w) {
				e.served.Add(1)
				w.loopEntries.Add(1)
				return true
			}
		}
	default:
		// Degenerate registry sizes (admission control keeps real servers
		// far below this): linear order, still correct, no fairness sort.
		for _, e := range entries {
			if e.l.Live() && e.l.TrySteal(w) {
				e.served.Add(1)
				w.loopEntries.Add(1)
				return true
			}
		}
		return false
	}
}

// nextLoopIndex picks the untried live loop with the smallest
// served/weight ratio (deficit-weighted fairness), or -1 if none remain.
// The comparison a.served/a.weight < b.served/b.weight is evaluated by
// cross-multiplication to stay in integers.
func nextLoopIndex(entries []*loopEntry, tried uint64) int {
	best := -1
	var bestServed, bestWeight int64
	for i, e := range entries {
		if tried&(1<<uint(i)) != 0 || !e.l.Live() {
			continue
		}
		s, wt := e.served.Load(), int64(e.weight)
		if best < 0 || s*bestWeight < bestServed*wt {
			best, bestServed, bestWeight = i, s, wt
		}
	}
	return best
}

// trySteal makes one randomized steal attempt against each other worker,
// sweeping hierarchically: own-socket victims first (a local steal's lines
// come from a shared L3, ~41 cycles per hit), then remote sockets (~515
// cycles, Figure 5). Each tier rotates from a uniformly drawn start over
// its victim list — the lists exclude self by construction, so every
// victim is first-probed with equal probability (the old skip-self
// rotation first-probed worker w.id+1 twice as often). A successful thief
// whose steal snapshot saw further queued work behind the stolen element
// wakes the next parked worker before executing (wake chaining).
func (w *Worker) trySteal() (spawned, bool) {
	if s, ok := w.sweepSteal(w.localVictims, false); ok {
		return s, true
	}
	if s, ok := w.sweepSteal(w.remoteVictims, true); ok {
		return s, true
	}
	w.failedSteals.Add(1)
	// Register the worker's unmet demand (once — repeat failed sweeps by
	// an already-hungry worker touch no shared cacheline): loop owners
	// poll the count and respond by advertising their surplus range. Only
	// worth the shared-line RMW pair (raise here, retire at feed/park)
	// when a registered loop exists to consume the signal — the only
	// Demand() pollers are lazy-range owners, which register for their
	// loop's lifetime. A sweep that races a registration and skips the
	// raise is covered within one poll window: the worker parks almost
	// immediately and nparked, which Demand() checks first, takes over.
	if !w.hungry && len(w.pool.loopList()) > 0 {
		w.noteHungry()
	}
	return spawned{}, false
}

// sweepSteal probes each victim once in a rotation from a uniformly drawn
// start, returning the first stolen task. remote marks the sweep's tier
// for the distance counters. Wake chaining uses the steal's own snapshot
// (Deque.Steal's more result), not a post-steal Empty() probe: the probe
// could race the victim draining its remainder and read a stale bottom,
// notifying a worker into a guaranteed-failed sweep (and, with live loops
// registered, a phantom demand unit).
func (w *Worker) sweepSteal(victims []*Worker, remote bool) (spawned, bool) {
	n := len(victims)
	if n == 0 {
		return spawned{}, false
	}
	start := 0
	if n > 1 {
		start = w.rng.Intn(n)
	}
	for k := 0; k < n; k++ {
		vd := victims[(start+k)%n].dq
		if v, arg, ab, ok, more := vd.Steal(); ok {
			w.steals.Add(1)
			if remote {
				w.remoteSteals.Add(1)
			}
			if more {
				w.pool.notify()
			}
			return decode(v, arg, ab), true
		}
	}
	return spawned{}, false
}

// mainLoop is the top-level scheduling loop: run work while it exists,
// park when the system is quiescent, exit on pool close. With time
// accounting on, the clock is read only at burst boundaries: once when a
// busy burst begins, once when the worker gives up and parks — never per
// task.
//sched:noalloc
func (w *Worker) mainLoop() {
	defer w.pool.wg.Done()
	for {
		acct := w.pool.timeAcct.Load()
		var burstStart time.Time
		if acct {
			burstStart = time.Now()
		}
		worked := false
		// A direct handoff (Pool.submit) rides the wake token: run it
		// before any sweeping — it IS the work the wake announced. The
		// worker was parked an instant before, so instead of the usual
		// unannounced sweep it goes straight to the announce-then-sweep
		// exit protocol below: one failed sweep on the idle round trip
		// instead of two, at the cost of an unpark retraction in the rare
		// case the handed-off root left surviving work behind.
		skipFirst := false
		if t := w.handoff; t != nil {
			w.handoff = nil
			w.run(t)
			worked = true
			skipFirst = true
		}
		for {
			if skipFirst {
				skipFirst = false
			} else if w.runOne() {
				worked = true
				continue
			}
			// Announce intent to park, then sweep once more: any task made
			// visible before the announce is found by this sweep, and any
			// task published after it observes the announce and delivers
			// (or credits) a wake.
			w.state.Store(wParking)
			w.pool.nparked.Add(1)
			if w.runOne() {
				w.unpark()
				worked = true
				continue
			}
			break
		}
		if acct && worked {
			w.busyNanos.Add(time.Since(burstStart).Nanoseconds())
		}
		// Going idle: release whatever consumed deque slots still pin.
		// Pops and steals skip slot clearing on the hot path, so this is
		// where the memory-hygiene debt is settled.
		w.dq.Clean()
		// A parking worker retires its OWN failed-sweep demand unit: from
		// here its idleness is represented by nparked (which Demand()
		// checks first, and which was incremented before this point — so
		// no observer window sees neither signal). Other workers' hungry
		// units are untouched: with several live loops, thieves still
		// actively sweeping on behalf of other loops keep the demand
		// signal raised — the old pool-wide flag clear erased theirs too.
		w.noteFed()
		var idleStart time.Time
		if acct {
			idleStart = time.Now()
		}
		if w.state.CompareAndSwap(wParking, wParked) {
			// Committed-park census: already on the blocking slow path, so
			// the counter costs nothing on the wake-to-first-task edge.
			w.parks.Add(1)
			// Committed to blocking. The quitting check sits between the
			// CAS and the receive: if Close's wake pass missed us (we were
			// active then), our CAS precedes this load in the seq-cst total
			// order while Close's store precedes its wake-pass read of our
			// state — one of the two must observe the other, so either we
			// see quitting here or the pass saw us parked and sent a token.
			// Skipping the receive is only safe if no producer reserved us
			// in the meantime: the wParked→wActive CAS below is mutually
			// exclusive with the wParked→wNotified reservation every waker
			// and direct handoff performs, so either we retract unreserved
			// (skip) or a token — possibly carrying a handoff task — is in
			// flight and must be consumed.
			if !w.pool.quitting.Load() || !w.state.CompareAndSwap(wParked, wActive) {
				<-w.park
			}
		}
		// Woken (or the wake landed during the announcement and the park
		// CAS consumed it with no channel traffic).
		if acct {
			w.idleNanos.Add(time.Since(idleStart).Nanoseconds())
		}
		w.unpark()
		if w.pool.quitting.Load() {
			// Final drain: a Run that won the submit/Close race enqueued
			// its root (or handed it off directly) before Close tripped
			// quitting; execute everything reachable so no Run caller is
			// left blocked on a task that never runs.
			if t := w.handoff; t != nil {
				w.handoff = nil
				w.run(t)
			}
			for w.runOne() {
			}
			return
		}
	}
}

// unpark retracts a parking announcement: back to active, off the parked
// census. The store overwrites a pending wNotified mark, which is safe —
// every unpark path re-enters a full runOne sweep before the worker can
// block again (or the worker is exiting on the quitting edge).
//
//sched:noalloc
func (w *Worker) unpark() {
	w.state.Store(wActive)
	w.pool.nparked.Add(-1)
}
