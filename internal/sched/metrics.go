package sched

import (
	"strconv"

	"hybridloop/internal/metrics"
)

// RegisterMetrics exposes the pool's counters on r as scrape-time
// collectors. The scheduler keeps maintaining exactly the atomics it
// already maintains for Stats — registration adds zero hot-path cost,
// metrics on or off; everything below is read only when /metrics is
// scraped. Nil-safe: a nil registry registers nothing.
//
// Cardinality: per-worker series are bounded by the pool size, per-loop
// series by the admission gate's in-flight budget (LiveLoops only lists
// currently registered loops).
func (p *Pool) RegisterMetrics(r *metrics.Registry) {
	if r == nil || p == nil {
		return
	}
	workerLabels := make([]metrics.Labels, len(p.workers))
	for i := range p.workers {
		workerLabels[i] = metrics.L("worker", strconv.Itoa(i))
	}

	perWorker := func(name, help string, kind metrics.Kind, field func(WorkerCounters) float64) {
		r.OnCollect(name, help, kind, func(emit func(metrics.Labels, float64)) {
			for i, wc := range p.PerWorker() {
				emit(workerLabels[i], field(wc))
			}
		})
	}
	perWorker("hybridloop_sched_tasks_total", "tasks executed per worker", metrics.KindCounter,
		func(wc WorkerCounters) float64 { return float64(wc.Tasks) })
	perWorker("hybridloop_sched_steals_total", "successful deque steals per worker", metrics.KindCounter,
		func(wc WorkerCounters) float64 { return float64(wc.Steals) })
	perWorker("hybridloop_sched_failed_steal_sweeps_total", "full steal sweeps that found nothing, per worker", metrics.KindCounter,
		func(wc WorkerCounters) float64 { return float64(wc.FailedSteals) })
	perWorker("hybridloop_sched_loop_entries_total", "hybrid-loop entries via the steal protocol, per worker", metrics.KindCounter,
		func(wc WorkerCounters) float64 { return float64(wc.LoopEntries) })
	perWorker("hybridloop_sched_range_steals_total", "steal-half range transfers per worker", metrics.KindCounter,
		func(wc WorkerCounters) float64 { return float64(wc.RangeSteals) })
	perWorker("hybridloop_sched_parks_total", "committed park transitions per worker", metrics.KindCounter,
		func(wc WorkerCounters) float64 { return float64(wc.Parks) })
	perWorker("hybridloop_sched_busy_seconds_total", "time in busy bursts per worker (needs time accounting)", metrics.KindCounter,
		func(wc WorkerCounters) float64 { return float64(wc.BusyNanos) / 1e9 })
	perWorker("hybridloop_sched_idle_seconds_total", "time parked per worker (needs time accounting)", metrics.KindCounter,
		func(wc WorkerCounters) float64 { return float64(wc.IdleNanos) / 1e9 })

	// Steal distance under a placement (WithPlacement): pool-level totals
	// labeled by distance, covering both steal paths (deque steals and
	// steal-half range transfers) so the local:remote ratio is one query.
	// Pool-level rather than per-worker to bound cardinality at two
	// series; flat pools emit remote = 0.
	distLocal, distRemote := metrics.L("distance", "local"), metrics.L("distance", "remote")
	r.OnCollect("hybridloop_sched_steals_distance_total",
		"deque + range steals by victim distance (local = same socket, remote = cross-socket)",
		metrics.KindCounter,
		func(emit func(metrics.Labels, float64)) {
			s := p.Stats()
			remote := s.RemoteSteals + s.RemoteRangeSteals
			emit(distLocal, float64(s.Steals+s.RangeSteals-remote))
			emit(distRemote, float64(remote))
		})
	r.OnCollect("hybridloop_sched_sockets", "sockets described by the pool's placement", metrics.KindGauge,
		func(emit func(metrics.Labels, float64)) { emit(nil, float64(p.Placement().Sockets())) })

	r.OnCollect("hybridloop_sched_workers", "pool size", metrics.KindGauge,
		func(emit func(metrics.Labels, float64)) { emit(nil, float64(p.P())) })
	r.OnCollect("hybridloop_sched_parked_workers", "workers currently announced parking or parked", metrics.KindGauge,
		func(emit func(metrics.Labels, float64)) { emit(nil, float64(p.ParkedWorkers())) })
	r.OnCollect("hybridloop_sched_demand", "hungry-worker census (failed full sweeps, not yet fed or parked)", metrics.KindGauge,
		func(emit func(metrics.Labels, float64)) { emit(nil, float64(p.DemandCount())) })
	r.OnCollect("hybridloop_sched_loops_registered_total", "loops ever registered with the steal protocol", metrics.KindCounter,
		func(emit func(metrics.Labels, float64)) { emit(nil, float64(p.LoopsRegistered())) })

	// Per-live-loop fairness state. Loop IDs churn, but the series set is
	// bounded at any scrape by the number of registered loops (capped by
	// admission control), and const collectors emit only what exists now.
	r.OnCollect("hybridloop_sched_loop_served_total", "steal-protocol entries served per live loop", metrics.KindGauge,
		func(emit func(metrics.Labels, float64)) {
			for _, li := range p.LiveLoops() {
				emit(metrics.L("loop", strconv.FormatUint(li.ID, 10)), float64(li.Served))
			}
		})
}

// RegisterMetrics exposes the admission gate's counters on r as
// scrape-time collectors; same zero-hot-path-cost contract as the pool's.
func (g *Gate) RegisterMetrics(r *metrics.Registry) {
	if r == nil || g == nil {
		return
	}
	counter := func(name, help string, read func(GateStats) float64) {
		r.OnCollect(name, help, metrics.KindCounter, func(emit func(metrics.Labels, float64)) {
			emit(nil, read(g.Stats()))
		})
	}
	counter("hybridloop_admission_admitted_total", "loop submissions admitted",
		func(s GateStats) float64 { return float64(s.Admitted) })
	counter("hybridloop_admission_rejected_total", "loop submissions rejected (backpressure)",
		func(s GateStats) float64 { return float64(s.Rejected) })
	counter("hybridloop_admission_waited_total", "admissions that blocked before a slot freed",
		func(s GateStats) float64 { return float64(s.Waited) })
	counter("hybridloop_admission_inline_total", "submissions degraded to serial-inline",
		func(s GateStats) float64 { return float64(s.Inline) })
	r.OnCollect("hybridloop_admission_in_flight", "currently admitted, not-yet-released loops", metrics.KindGauge,
		func(emit func(metrics.Labels, float64)) { emit(nil, float64(g.Stats().InFlight)) })
}
