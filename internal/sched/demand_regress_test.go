package sched

// Regression tests for the two demand-hint races of the old pool-wide
// demand flag (a single sticky 0/1 word):
//
//  1. MeetDemand performed a check-then-act clear (Load() != 0 →
//     Store(0)): a hint raised by a concurrent thief's failed steal sweep
//     between the load and the store was silently erased before any owner
//     advertised surplus, so the thief could keep sweeping while owners
//     saw no demand.
//  2. A parking worker performed the same check-then-act clear on its way
//     down, erasing the demand of *other* live loops' still-active
//     thieves — correct only while benchmarks ran one loop at a time.
//
// Both races are gone structurally: demand is now an exact census of
// hungry workers (one unit per worker, retired by the worker itself when
// it acquires work or parks), so there is no shared clear operation left
// to lose anybody else's signal. The tests below drive the transitions
// directly on a pool whose workers are NOT started, so every interleaving
// is deterministic; under the old flag scheme the equivalent sequences
// read back a cleared signal and fail.

import (
	"sync"
	"testing"
)

// newStoppedPool builds a pool whose worker goroutines are not running,
// so demand transitions can be driven deterministically from the test.
func newStoppedPool(n int) *Pool {
	p := &Pool{}
	p.workers = make([]*Worker, n)
	for i := range p.workers {
		p.workers[i] = &Worker{id: i, pool: p, park: make(chan struct{}, 1)}
	}
	return p
}

// TestMeetDemandKeepsConcurrentDemand: servicing demand (MeetDemand) must
// not erase demand units it did not observe. Old behavior: worker 0's
// failed sweep raises the flag; an owner's MeetDemand clears it; worker
// 1's concurrent failed sweep between the owner's load and store is wiped
// along with it — Demand() reads false while a thief is still hungry.
func TestMeetDemandKeepsConcurrentDemand(t *testing.T) {
	p := newStoppedPool(3)
	w0, w1 := p.workers[0], p.workers[1]

	w0.noteHungry()
	p.MeetDemand() // an owner services the observation
	if !p.Demand() || p.DemandCount() != 1 {
		t.Fatalf("MeetDemand erased a live demand unit: count = %d", p.DemandCount())
	}

	// A second thief goes hungry while owners keep servicing: its unit
	// must survive any number of MeetDemand calls.
	w1.noteHungry()
	for i := 0; i < 100; i++ {
		p.MeetDemand()
	}
	if got := p.DemandCount(); got != 2 {
		t.Fatalf("demand count = %d after concurrent raise + services, want 2", got)
	}

	// Feeding retires exactly the fed worker's unit, nobody else's.
	w0.noteFed()
	if got := p.DemandCount(); got != 1 {
		t.Fatalf("demand count = %d after one worker fed, want 1", got)
	}
	w1.noteFed()
	if p.DemandCount() != 0 || p.Demand() {
		t.Fatal("demand did not quiesce after every hungry worker was fed")
	}
}

// TestMeetDemandRaceStress hammers MeetDemand and Demand from concurrent
// goroutines while two workers flip between hungry and fed (each worker's
// transitions driven by a single goroutine, as in the real scheduler).
// The accounting must end exactly where the transitions left it — under
// the old flag scheme the concurrent clears lose raises nondeterministically.
// Run with -race.
func TestMeetDemandRaceStress(t *testing.T) {
	p := newStoppedPool(4)
	const rounds = 10000
	var wg sync.WaitGroup
	for _, w := range p.workers[:2] {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				w.noteHungry()
				w.noteFed()
			}
			w.noteHungry() // end hungry: the unit must survive the hammering
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			p.MeetDemand()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			p.Demand()
		}
	}()
	wg.Wait()
	if got := p.DemandCount(); got != 2 {
		t.Fatalf("demand count = %d after stress, want 2 (both workers ended hungry)", got)
	}
}

// TestParkingRetainsOtherWorkersDemand: the park-time retirement must be
// scoped to the parking worker's own unit. Old behavior: with two live
// loops, loop A's thief (worker 0) is hungry and still actively sweeping
// when worker 1 — idle because loop B just drained — parks and clears the
// pool-wide flag, erasing worker 0's signal: loop A's owner stops
// advertising surplus although a thief wants it.
func TestParkingRetainsOtherWorkersDemand(t *testing.T) {
	p := newStoppedPool(3)
	w0, w1 := p.workers[0], p.workers[1]

	w0.noteHungry() // loop A's thief, still sweeping
	w1.noteHungry() // about to give up and park

	// The exact mainLoop park sequence: announce, then retire own unit.
	w1.state.Store(wParking)
	p.nparked.Add(1)
	w1.noteFed()

	if got := p.DemandCount(); got != 1 {
		t.Fatalf("parking retired another worker's demand unit: count = %d, want 1", got)
	}
	if !p.Demand() {
		t.Fatal("Demand() = false while another worker is still hungry")
	}

	// After worker 1 wakes again the other thief's unit must still stand.
	w1.state.Store(wActive)
	p.nparked.Add(-1)
	if !p.Demand() || p.DemandCount() != 1 {
		t.Fatalf("demand lost across a park/unpark of an unrelated worker: count = %d", p.DemandCount())
	}
}

// stubLoop is a registry entry with controllable liveness for deficit-
// order unit tests; it never actually feeds a thief.
type stubLoop struct{ live bool }

func (l *stubLoop) Live() bool            { return l.live }
func (l *stubLoop) TrySteal(*Worker) bool { return false }

func mkEntry(id uint64, weight int32, served int64, live bool) *loopEntry {
	e := &loopEntry{l: &stubLoop{live: live}, id: id, weight: weight}
	e.served.Store(served)
	return e
}

// TestNextLoopIndexDeficitOrder pins the probe-order rule: the live,
// untried loop with the smallest served/weight ratio wins; ties go to
// registration order; dead and already-tried loops are skipped.
func TestNextLoopIndexDeficitOrder(t *testing.T) {
	cases := []struct {
		name    string
		entries []*loopEntry
		tried   uint64
		want    int
	}{
		{"fresh loop beats served giant",
			[]*loopEntry{mkEntry(1, 1, 100, true), mkEntry(2, 1, 0, true)}, 0, 1},
		{"weight scales entitlement",
			// 10/10 = 1 < 2/1 = 2: the weighted loop is less over-served.
			[]*loopEntry{mkEntry(1, 10, 10, true), mkEntry(2, 1, 2, true)}, 0, 0},
		{"tie goes to registration order",
			[]*loopEntry{mkEntry(1, 1, 5, true), mkEntry(2, 1, 5, true)}, 0, 0},
		{"dead loops skipped",
			[]*loopEntry{mkEntry(1, 1, 0, false), mkEntry(2, 1, 50, true)}, 0, 1},
		{"tried loops skipped",
			[]*loopEntry{mkEntry(1, 1, 0, true), mkEntry(2, 1, 50, true)}, 1 << 0, 1},
		{"nothing left",
			[]*loopEntry{mkEntry(1, 1, 0, false), mkEntry(2, 1, 0, true)}, 1 << 1, -1},
	}
	for _, c := range cases {
		if got := nextLoopIndex(c.entries, c.tried); got != c.want {
			t.Errorf("%s: nextLoopIndex = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestDeficitOrderConvergesToWeightedShares: repeatedly serving whichever
// loop the deficit rule picks must converge service counts to the weight
// ratio — the weighted-fair-queueing property behind "a priority-8
// request loop keeps receiving workers beside a priority-1 batch loop".
func TestDeficitOrderConvergesToWeightedShares(t *testing.T) {
	a := mkEntry(1, 3, 0, true)
	b := mkEntry(2, 1, 0, true)
	entries := []*loopEntry{a, b}
	for i := 0; i < 400; i++ {
		k := nextLoopIndex(entries, 0)
		entries[k].served.Add(1)
	}
	sa, sb := a.served.Load(), b.served.Load()
	if sa+sb != 400 {
		t.Fatalf("total served = %d, want 400", sa+sb)
	}
	// Exact WFQ would give 300/100; allow ±2 for boundary effects.
	if sa < 298 || sa > 302 {
		t.Fatalf("weight-3 loop served %d of 400, want ~300 (weight-1 got %d)", sa, sb)
	}
}
