// Microbenchmarks for the scheduler hot paths: spawn latency, steal
// throughput, wake-to-first-task latency, and fine-grained parallel-loop
// overhead vs chunk size. Results are recorded in BENCH_sched.json at the
// repo root (regenerate with `make bench`) so perf changes leave a
// trajectory across PRs.
//
// The suite lives in the external test package so it can drive the loop
// strategies (internal/loop imports sched) exactly as the public API does.
package sched_test

import (
	"runtime"
	"testing"

	"hybridloop/internal/loop"
	"hybridloop/internal/sched"
)

func noop(w *sched.Worker) {}

// BenchmarkSpawn measures one Spawn + execute + join on a single worker:
// the pure per-spawn cost of the deque push, the task bookkeeping, and the
// pop-and-run, with no steal traffic. This is the constant the paper's
// T_1/P term multiplies.
func BenchmarkSpawn(b *testing.B) {
	pool := sched.NewPool(1, 1)
	defer pool.Close()
	b.ReportAllocs()
	b.ResetTimer()
	pool.Run(func(w *sched.Worker) {
		var g sched.Group
		for i := 0; i < b.N; i++ {
			w.Spawn(&g, noop)
			w.Wait(&g)
		}
	})
}

// BenchmarkSpawnBatch amortizes the join: spawn 256 tasks, then wait. The
// deque grows past its initial capacity, so ring growth is in the loop.
func BenchmarkSpawnBatch(b *testing.B) {
	pool := sched.NewPool(1, 1)
	defer pool.Close()
	b.ReportAllocs()
	b.ResetTimer()
	pool.Run(func(w *sched.Worker) {
		var g sched.Group
		for i := 0; i < b.N; i += 256 {
			for j := 0; j < 256; j++ {
				w.Spawn(&g, noop)
			}
			w.Wait(&g)
		}
	})
}

// TestSpawnAllocFree pins the allocation count of the steady-state spawn
// path at zero: Spawn must not heap-allocate per task (acceptance
// criterion for the allocation-free spawn path).
func TestSpawnAllocFree(t *testing.T) {
	pool := sched.NewPool(1, 1)
	defer pool.Close()
	pool.Run(func(w *sched.Worker) {
		var g sched.Group
		allocs := testing.AllocsPerRun(1000, func() {
			w.Spawn(&g, noop)
			w.Wait(&g)
		})
		if allocs != 0 {
			t.Errorf("Spawn+Wait allocates %.1f objects per spawn, want 0", allocs)
		}
	})
}

// BenchmarkStealThroughput has one producer spawning tiny tasks while the
// other workers drain them by stealing — the handoff rate of the
// spawn→wake→steal path.
func BenchmarkStealThroughput(b *testing.B) {
	p := runtime.NumCPU()
	if p < 4 {
		p = 4
	}
	pool := sched.NewPool(p, 1)
	defer pool.Close()
	b.ReportAllocs()
	b.ResetTimer()
	pool.Run(func(w *sched.Worker) {
		var g sched.Group
		for i := 0; i < b.N; i++ {
			w.Spawn(&g, noop)
		}
		w.Wait(&g)
	})
}

// BenchmarkWakeToFirstTask measures the external-submission round trip on
// an otherwise idle pool: submit, wake a parked worker, execute, signal
// completion. Dominated by the park/notify handshake.
func BenchmarkWakeToFirstTask(b *testing.B) {
	p := runtime.NumCPU()
	if p < 4 {
		p = 4
	}
	pool := sched.NewPool(p, 1)
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Run(func(w *sched.Worker) {})
	}
}

// benchFor measures a whole fine-grained parallel loop with an empty body:
// pure spawn+join scheduling overhead per loop at P = NumCPU. The chunk
// sizes bracket the paper's fine-grained regime (chunk <= 64) where
// scheduling constants dominate.
func benchFor(b *testing.B, strategy loop.Strategy, chunk int) {
	pool := sched.NewPool(runtime.NumCPU(), 1)
	defer pool.Close()
	const n = 1 << 15
	body := func(lo, hi int) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loop.For(pool, 0, n, body, loop.Options{Strategy: strategy, Chunk: chunk})
	}
}

func BenchmarkForFineHybrid(b *testing.B) {
	for _, chunk := range []int{16, 64, 256} {
		b.Run(benchName(chunk), func(b *testing.B) { benchFor(b, loop.Hybrid, chunk) })
	}
}

func BenchmarkForFineStealing(b *testing.B) {
	for _, chunk := range []int{16, 64, 256} {
		b.Run(benchName(chunk), func(b *testing.B) { benchFor(b, loop.DynamicStealing, chunk) })
	}
}

func benchName(chunk int) string {
	switch chunk {
	case 16:
		return "chunk16"
	case 64:
		return "chunk64"
	case 256:
		return "chunk256"
	}
	return "chunk"
}
