// Microbenchmarks for the scheduler hot paths: spawn latency, steal
// throughput, wake-to-first-task latency, and fine-grained parallel-loop
// overhead vs chunk size. Results are recorded in BENCH_sched.json at the
// repo root (regenerate with `make bench`) so perf changes leave a
// trajectory across PRs.
//
// The suite lives in the external test package so it can drive the loop
// strategies (internal/loop imports sched) exactly as the public API does.
package sched_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"hybridloop/internal/adaptive"
	"hybridloop/internal/loop"
	"hybridloop/internal/sched"
)

func noop(w *sched.Worker) {}

// BenchmarkSpawn measures one Spawn + execute + join on a single worker:
// the pure per-spawn cost of the deque push, the task bookkeeping, and the
// pop-and-run, with no steal traffic. This is the constant the paper's
// T_1/P term multiplies.
func BenchmarkSpawn(b *testing.B) {
	pool := sched.NewPool(1, 1)
	defer pool.Close()
	b.ReportAllocs()
	b.ResetTimer()
	pool.Run(func(w *sched.Worker) {
		var g sched.Group
		for i := 0; i < b.N; i++ {
			w.Spawn(&g, noop)
			w.Wait(&g)
		}
	})
}

// BenchmarkSpawnBatch amortizes the join: spawn 256 tasks, then wait. The
// deque grows past its initial capacity, so ring growth is in the loop.
func BenchmarkSpawnBatch(b *testing.B) {
	pool := sched.NewPool(1, 1)
	defer pool.Close()
	b.ReportAllocs()
	b.ResetTimer()
	pool.Run(func(w *sched.Worker) {
		var g sched.Group
		for i := 0; i < b.N; i += 256 {
			for j := 0; j < 256; j++ {
				w.Spawn(&g, noop)
			}
			w.Wait(&g)
		}
	})
}

// TestSpawnAllocFree pins the allocation count of the steady-state spawn
// path at zero: Spawn must not heap-allocate per task (acceptance
// criterion for the allocation-free spawn path).
func TestSpawnAllocFree(t *testing.T) {
	pool := sched.NewPool(1, 1)
	defer pool.Close()
	pool.Run(func(w *sched.Worker) {
		var g sched.Group
		allocs := testing.AllocsPerRun(1000, func() {
			w.Spawn(&g, noop)
			w.Wait(&g)
		})
		if allocs != 0 {
			t.Errorf("Spawn+Wait allocates %.1f objects per spawn, want 0", allocs)
		}
	})
}

// BenchmarkStealThroughput has one producer spawning tiny tasks while the
// other workers drain them by stealing — the handoff rate of the
// spawn→wake→steal path.
func BenchmarkStealThroughput(b *testing.B) {
	p := runtime.NumCPU()
	if p < 4 {
		p = 4
	}
	pool := sched.NewPool(p, 1)
	defer pool.Close()
	b.ReportAllocs()
	b.ResetTimer()
	pool.Run(func(w *sched.Worker) {
		var g sched.Group
		for i := 0; i < b.N; i++ {
			w.Spawn(&g, noop)
		}
		w.Wait(&g)
	})
}

// BenchmarkWakeToFirstTask measures the external-submission round trip on
// an otherwise idle pool: submit, wake a parked worker, execute, signal
// completion. Dominated by the park/notify handshake; with the pooled
// root call and the single-word park this must stay allocation-free.
func BenchmarkWakeToFirstTask(b *testing.B) {
	p := runtime.NumCPU()
	if p < 4 {
		p = 4
	}
	pool := sched.NewPool(p, 1)
	defer pool.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Run(func(w *sched.Worker) {})
	}
}

// TestRunAllocFree pins the allocation count of the external-submission
// round trip — the full park/wake/execute/re-park cycle — at zero per
// Run: the root-call scratch is pooled and the parking handshake is one
// atomic word, so steady-state submission must not touch the heap.
// (AllocsPerRun reports the rounded-down average, so the occasional
// sync.Pool refill after a GC does not flake the zero.)
func TestRunAllocFree(t *testing.T) {
	p := runtime.NumCPU()
	if p < 4 {
		p = 4
	}
	pool := sched.NewPool(p, 1)
	defer pool.Close()
	allocs := testing.AllocsPerRun(1000, func() {
		pool.Run(func(w *sched.Worker) {})
	})
	if allocs != 0 {
		t.Errorf("Run (park/unpark cycle) allocates %.1f objects per op, want 0", allocs)
	}
}

// TestParkUnparkStress hammers the single-word parking protocol: many
// submitters race Runs against workers cycling through
// active→parking→parked→notified, with inner spawns so wake chaining and
// the Group futex wait see concurrent traffic too. Run under -race by
// `make stress`; the assertion is that no submission is lost and no join
// hangs (a lost wakeup deadlocks the test).
func TestParkUnparkStress(t *testing.T) {
	p := runtime.NumCPU()
	if p < 4 {
		p = 4
	}
	pool := sched.NewPool(p, 7)
	defer pool.Close()
	const submitters, rounds, fanout = 8, 500, 4
	var done atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				pool.Run(func(w *sched.Worker) {
					var g sched.Group
					for j := 0; j < fanout; j++ {
						w.Spawn(&g, func(cw *sched.Worker) { done.Add(1) })
					}
					w.Wait(&g)
					done.Add(1)
				})
			}
		}()
	}
	wg.Wait()
	if want := int64(submitters * rounds * (fanout + 1)); done.Load() != want {
		t.Fatalf("executed %d tasks, want %d", done.Load(), want)
	}
}

// benchFor measures a whole fine-grained parallel loop with an empty body:
// pure spawn+join scheduling overhead per loop at P = NumCPU. The chunk
// sizes bracket the paper's fine-grained regime (chunk <= 64) where
// scheduling constants dominate.
func benchFor(b *testing.B, strategy loop.Strategy, chunk int) {
	pool := sched.NewPool(runtime.NumCPU(), 1)
	defer pool.Close()
	const n = 1 << 15
	body := func(lo, hi int) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loop.For(pool, 0, n, body, loop.Options{Strategy: strategy, Chunk: chunk})
	}
}

func BenchmarkForFineHybrid(b *testing.B) {
	for _, chunk := range []int{16, 64, 256} {
		b.Run(benchName(chunk), func(b *testing.B) { benchFor(b, loop.Hybrid, chunk) })
	}
}

func BenchmarkForFineStealing(b *testing.B) {
	for _, chunk := range []int{16, 64, 256} {
		b.Run(benchName(chunk), func(b *testing.B) { benchFor(b, loop.DynamicStealing, chunk) })
	}
}

// BenchmarkAutoSteadyState measures the per-call overhead a committed
// Auto site adds over running the identical configuration hard-coded.
// The trip count keeps the serial arm in the candidate set and the body
// empty, so the loop itself is a few hundred nanoseconds and the tuner's
// steady-state tax — one site-table probe, one atomic load, one counter
// increment, plus a sampled observed play every 16th call — is a visible
// fraction of the measurement rather than noise. The warm-up loop drives
// the site through exploration so the timed region is pure committed
// steady state.
func BenchmarkAutoSteadyState(b *testing.B) {
	pool := sched.NewPool(runtime.NumCPU(), 1)
	defer pool.Close()
	tuner := adaptive.NewTuner(adaptive.Config{
		Seed:    1,
		Workers: pool.P(),
		Arms:    loop.AutoArms,
		// No periodic refresh and no drift eviction: an empty body's cost
		// is all jitter, and the benchmark measures the committed fast
		// path, not re-exploration churn.
		ReexploreEvery: -1,
		DriftFactor:    1e9,
	})
	const n = 1 << 12
	const site = uintptr(0xBEEF)
	body := func(lo, hi int) {}
	auto := loop.Options{Strategy: loop.Auto, Tuner: tuner, Site: site}
	for i := 0; i < 200; i++ {
		loop.For(pool, 0, n, body, auto)
	}
	committed := loop.Options{Strategy: loop.Hybrid}
	for _, s := range tuner.Sites() {
		if s.State == "committed" && s.Committed >= 0 {
			arm := s.Arms[s.Committed]
			committed.Strategy = loop.Strategy(arm.Strategy)
			if arm.Serial {
				committed.SerialCutoff = n
			}
		}
	}
	b.Run("auto", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			loop.For(pool, 0, n, body, auto)
		}
	})
	b.Run("fixed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			loop.For(pool, 0, n, body, committed)
		}
	})
}

func benchName(chunk int) string {
	switch chunk {
	case 16:
		return "chunk16"
	case 64:
		return "chunk64"
	case 256:
		return "chunk256"
	}
	return "chunk"
}
