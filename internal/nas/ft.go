package nas

import (
	"fmt"
	"math"
	"math/cmplx"

	"hybridloop"
	"hybridloop/internal/rng"
)

// FT is the NPB 3-D fast-Fourier-transform kernel: fill an N1 x N2 x N3
// complex array with pseudo-random values, forward-transform it once, and
// then for each of Iterations time steps multiply by the evolution factors
// exp(-4 pi^2 t |k|^2 / ...) in frequency space, inverse-transform, and
// accumulate a checksum over a fixed index progression — the NPB
// time-evolution of the heat equation by spectral methods.
//
// Each 1-D transform pass is a parallel loop over pencils (lines along the
// transformed dimension); a full 3-D FFT is three passes. Dimensions must
// be powers of two (radix-2 iterative Cooley–Tukey).
type FT struct {
	N1, N2, N3 int // array dimensions, powers of two (class S: 64x64x64)
	Iterations int // evolution steps (NPB: 6)
	Seed       uint64
}

// FTResult carries the per-iteration checksums.
type FTResult struct {
	Checksums []complex128
}

func (f FT) defaults() FT {
	if f.Iterations == 0 {
		f.Iterations = 6
	}
	if f.Seed == 0 {
		f.Seed = 314159265
	}
	for _, n := range []int{f.N1, f.N2, f.N3} {
		if n < 2 || n&(n-1) != 0 {
			panic(fmt.Sprintf("nas: FT dimensions must be powers of two >= 2, got %dx%dx%d", f.N1, f.N2, f.N3))
		}
	}
	return f
}

// fft1 performs an in-place radix-2 decimation-in-time FFT on a line of
// length n (sign = -1 forward, +1 inverse; inverse is unscaled — the
// caller divides by the total volume once, as NPB does).
func fft1(a []complex128, sign float64) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for k := 0; k < length/2; k++ {
				u := a[i+k]
				v := a[i+k+length/2] * w
				a[i+k] = u + v
				a[i+k+length/2] = u - v
				w *= wl
			}
		}
	}
}

// ftState is the 3-D array with helpers. Layout: x[((k*N2)+j)*N1 + i],
// i fastest (dimension 1), matching NPB's Fortran column-major order.
type ftState struct {
	f      FT
	x      []complex128
	volume int
}

func (f FT) setup() *ftState {
	st := &ftState{f: f, volume: f.N1 * f.N2 * f.N3}
	st.x = make([]complex128, st.volume)
	// NPB fills the array with vranlc pseudo-randoms; any deterministic
	// full-spectrum fill preserves the kernel's character.
	g := rng.NewXoshiro256(f.Seed)
	for i := range st.x {
		st.x[i] = complex(g.Float64()-0.5, g.Float64()-0.5)
	}
	return st
}

func (st *ftState) at(i, j, k int) int { return ((k*st.f.N2)+j)*st.f.N1 + i }

// pass1 transforms all lines along dimension 1 (contiguous); the parallel
// loop runs over the N2*N3 pencils.
func (st *ftState) pass1(pf forRange, sign float64) {
	n1 := st.f.N1
	pf(st.f.N2*st.f.N3, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			fft1(st.x[p*n1:(p+1)*n1], sign)
		}
	})
}

// pass2 transforms along dimension 2 (stride N1): pencils are (i, k)
// pairs; each gathers its line into a buffer, transforms, scatters back.
func (st *ftState) pass2(pf forRange, sign float64) {
	n1, n2 := st.f.N1, st.f.N2
	pf(st.f.N1*st.f.N3, func(lo, hi int) {
		line := make([]complex128, n2)
		for p := lo; p < hi; p++ {
			i, k := p%n1, p/n1
			base := st.at(i, 0, k)
			for j := 0; j < n2; j++ {
				line[j] = st.x[base+j*n1]
			}
			fft1(line, sign)
			for j := 0; j < n2; j++ {
				st.x[base+j*n1] = line[j]
			}
		}
	})
}

// pass3 transforms along dimension 3 (stride N1*N2).
func (st *ftState) pass3(pf forRange, sign float64) {
	n1, n2, n3 := st.f.N1, st.f.N2, st.f.N3
	stride := n1 * n2
	pf(n1*n2, func(lo, hi int) {
		line := make([]complex128, n3)
		for p := lo; p < hi; p++ {
			for k := 0; k < n3; k++ {
				line[k] = st.x[p+k*stride]
			}
			fft1(line, sign)
			for k := 0; k < n3; k++ {
				st.x[p+k*stride] = line[k]
			}
		}
	})
}

// fft3 performs the full 3-D transform (sign = -1 forward, +1 inverse).
func (st *ftState) fft3(pf forRange, sign float64) {
	st.pass1(pf, sign)
	st.pass2(pf, sign)
	st.pass3(pf, sign)
}

// freq returns the signed frequency of index i in a dimension of size n.
func freq(i, n int) float64 {
	if i >= n/2 {
		return float64(i - n)
	}
	return float64(i)
}

// evolve multiplies the frequency-space array by the NPB evolution
// factors exp(alpha * t * |k|^2) for time step t.
func (st *ftState) evolve(pf forRange, xbar []complex128, t float64) {
	const alpha = -4 * 1e-6 * math.Pi * math.Pi
	n1, n2, n3 := st.f.N1, st.f.N2, st.f.N3
	pf(n3, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			fk := freq(k, n3)
			for j := 0; j < n2; j++ {
				fj := freq(j, n2)
				for i := 0; i < n1; i++ {
					fi := freq(i, n1)
					k2 := fi*fi + fj*fj + fk*fk
					idx := st.at(i, j, k)
					st.x[idx] = xbar[idx] * complex(math.Exp(alpha*t*k2), 0)
				}
			}
		}
	})
}

// checksum is the NPB checksum: 1024 samples along a fixed modular index
// progression, normalized by the volume.
func (st *ftState) checksum() complex128 {
	var s complex128
	n1, n2, n3 := st.f.N1, st.f.N2, st.f.N3
	for q := 1; q <= 1024; q++ {
		i := q % n1
		j := (3 * q) % n2
		k := (5 * q) % n3
		s += st.x[st.at(i, j, k)]
	}
	return s / complex(float64(st.volume), 0)
}

// run executes the kernel with the given loop driver.
func (f FT) run(pf forRange) FTResult {
	f = f.defaults()
	st := f.setup()
	// Forward transform once; keep the frequency-space copy.
	st.fft3(pf, -1)
	xbar := make([]complex128, len(st.x))
	copy(xbar, st.x)
	res := FTResult{}
	scale := complex(1/float64(st.volume), 0)
	for it := 1; it <= f.Iterations; it++ {
		st.evolve(pf, xbar, float64(it))
		st.fft3(pf, +1)
		// NPB normalizes the inverse transform by the volume.
		pf(len(st.x), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				st.x[i] *= scale
			}
		})
		res.Checksums = append(res.Checksums, st.checksum())
	}
	return res
}

// Sequential runs the kernel without parallel constructs.
func (f FT) Sequential() FTResult {
	return f.run(func(n int, body func(lo, hi int)) { body(0, n) })
}

// Parallel runs the kernel with pencil-parallel FFT passes. Identical
// results to Sequential (each pencil is transformed independently).
func (f FT) Parallel(p Pool, opts ...hybridloop.ForOption) FTResult {
	return f.run(func(n int, body func(lo, hi int)) {
		p.For(0, n, body, opts...)
	})
}

// RoundTripError transforms a copy of the input forward and back and
// returns the max absolute elementwise error — the FFT correctness
// invariant used by tests.
func (f FT) RoundTripError() float64 {
	f = f.defaults()
	st := f.setup()
	orig := make([]complex128, len(st.x))
	copy(orig, st.x)
	seq := func(n int, body func(lo, hi int)) { body(0, n) }
	st.fft3(seq, -1)
	st.fft3(seq, +1)
	var maxErr float64
	inv := 1 / float64(st.volume)
	for i := range st.x {
		if e := cmplx.Abs(st.x[i]*complex(inv, 0) - orig[i]); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}
