package nas

import (
	"math/cmplx"
	"testing"

	"hybridloop"
)

// The official NPB FT class S verification checksums (ft.f verify step,
// relative tolerance 1e-12; we allow 1e-11 to absorb the rounding
// difference between our radix-2 Cooley–Tukey and NPB's Stockham FFT —
// the values agree to the last printed digit).
var npbFTClassS = []complex128{
	complex(5.546087004964e+02, 4.845363331978e+02),
	complex(5.546385409189e+02, 4.865304269511e+02),
	complex(5.546148406171e+02, 4.883910722336e+02),
	complex(5.545423607415e+02, 4.901273169046e+02),
	complex(5.544255039624e+02, 4.917475857993e+02),
	complex(5.542683411902e+02, 4.932597244941e+02),
}

func TestNPBFTClassSVerification(t *testing.T) {
	r := NPBFT(FT{N1: 64, N2: 64, N3: 64, Iterations: 6}, nil)
	if len(r.Checksums) != len(npbFTClassS) {
		t.Fatalf("%d checksums", len(r.Checksums))
	}
	for i, want := range npbFTClassS {
		got := r.Checksums[i]
		if cmplx.Abs(got-want)/cmplx.Abs(want) > 1e-11 {
			t.Fatalf("T=%d checksum %v, official %v", i+1, got, want)
		}
	}
}

func TestNPBFTClassSParallelAllStrategies(t *testing.T) {
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(29))
	defer pool.Close()
	want := NPBFT(FT{N1: 64, N2: 64, N3: 64, Iterations: 6}, nil)
	for _, s := range testStrategies {
		got := NPBFT(FT{N1: 64, N2: 64, N3: 64, Iterations: 6}, pool, hybridloop.WithStrategy(s))
		for i := range want.Checksums {
			if got.Checksums[i] != want.Checksums[i] {
				t.Fatalf("%v: T=%d checksum %v != sequential %v",
					s, i+1, got.Checksums[i], want.Checksums[i])
			}
		}
	}
}

func TestNPBFTClassWVerification(t *testing.T) {
	if testing.Short() {
		t.Skip("class W (128x128x32) takes ~1s")
	}
	// Official NPB FT class W first-step checksum.
	want := complex(5.673612178944e+02, 5.293246849175e+02)
	r := NPBFT(FT{N1: 128, N2: 128, N3: 32, Iterations: 6}, nil)
	if cmplx.Abs(r.Checksums[0]-want)/cmplx.Abs(want) > 1e-11 {
		t.Fatalf("class W T=1 checksum %v, official %v", r.Checksums[0], want)
	}
}
