package nas

import (
	"fmt"

	"hybridloop"
	"hybridloop/internal/rng"
)

// This file implements the NPB IS benchmark's key generation faithfully
// (is.c create_seq): each key is (MaxKey/4) * (r1 + r2 + r3 + r4) where
// the r's are four consecutive randlc draws from the stream seeded
// 314159265 — an Irwin–Hall (bell-shaped) distribution over the key
// range, which loads the middle buckets far more heavily than the tails.
// That distribution is part of what the scheduling study exercises: with
// bucketed ranking, uniform keys would make the histogram trivially
// balanced, while NPB's bell shape is why bucket-parallel versions of IS
// are unbalanced.
//
// The per-round perturbation and ranking match is.c's rank(): iteration i
// sets key[i] = i and key[i + MAX_ITERATIONS] = MaxKey - i, then ranks
// all keys; full_verify checks the final permutation sorts the keys.
// (NPB's partial verification compares five class-specific rank values
// per round; those constants are not reproduced here — full verification
// and sequential/parallel bitwise equality stand in.)

// NPBISClass holds the NPB class constants for IS.
type NPBISClass struct {
	Class      byte
	N          int // total keys (2^16 class S, 2^20 W, 2^23 A)
	MaxKey     int // 2^11 class S, 2^16 W, 2^19 A
	Iterations int // 10 for all classes
}

// NPBISClasses lists the implemented classes.
var NPBISClasses = map[byte]NPBISClass{
	'S': {Class: 'S', N: 1 << 16, MaxKey: 1 << 11, Iterations: 10},
	'W': {Class: 'W', N: 1 << 20, MaxKey: 1 << 16, Iterations: 10},
	'A': {Class: 'A', N: 1 << 23, MaxKey: 1 << 19, Iterations: 10},
}

// createSeq is is.c's key generator.
func createSeq(n, maxKey int) []int32 {
	g := rng.NewNPB(314159265)
	k := maxKey / 4
	keys := make([]int32, n)
	for i := range keys {
		x := g.Next()
		x += g.Next()
		x += g.Next()
		x += g.Next()
		keys[i] = int32(float64(k) * x)
	}
	return keys
}

// NPBIS runs the NPB IS benchmark for the class: Iterations ranking
// rounds with the per-round perturbation, returning the final keys and
// ranks (verify with VerifyRanks). pool nil runs sequentially.
func NPBIS(c NPBISClass, pool Pool, opts ...hybridloop.ForOption) ISResult {
	keys := createSeq(c.N, c.MaxKey)
	is := IS{N: c.N, MaxKey: c.MaxKey, Iterations: c.Iterations}
	if pool == nil {
		return is.runSequentialOn(keys)
	}
	return is.runParallelOn(pool, keys, opts...)
}

// perturbNPB is is.c's per-round modification: key[iteration] = iteration
// and key[iteration + MAX_ITERATIONS] = MAX_KEY - iteration.
func (s IS) perturbNPB(keys []int32, round int) {
	const maxIterations = 10
	keys[round] = int32(round)
	keys[round+maxIterations] = int32(s.MaxKey - round)
}

// runSequentialOn ranks the provided keys for all rounds, sequentially.
func (s IS) runSequentialOn(keys []int32) ISResult {
	s = s.defaults()
	if len(keys) != s.N {
		panic(fmt.Sprintf("nas: %d keys for N=%d", len(keys), s.N))
	}
	var ranks []int32
	for round := 1; round <= s.Iterations; round++ {
		s.perturbNPB(keys, round)
		ranks = s.rankSequential(keys)
	}
	return ISResult{Keys: keys, Ranks: ranks}
}

// runParallelOn ranks the provided keys for all rounds on the pool,
// reproducing the sequential stable ranking exactly.
func (s IS) runParallelOn(p Pool, keys []int32, opts ...hybridloop.ForOption) ISResult {
	s = s.defaults()
	nb := numBlocks(s.N)
	hists := make([][]int32, nb)
	for b := range hists {
		hists[b] = make([]int32, s.MaxKey)
	}
	var ranks []int32
	for round := 1; round <= s.Iterations; round++ {
		s.perturbNPB(keys, round)
		ranks = s.rankParallelOnce(p, keys, hists, opts...)
	}
	return ISResult{Keys: keys, Ranks: ranks}
}

// rankParallelOnce performs one parallel ranking round (the three phases
// of IS.Parallel, factored out for reuse with NPB key sequences).
func (s IS) rankParallelOnce(p Pool, keys []int32, hists [][]int32, opts ...hybridloop.ForOption) []int32 {
	nb := numBlocks(s.N)
	p.For(0, nb, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			h := hists[b]
			for i := range h {
				h[i] = 0
			}
			lo, hi := blockRange(b, s.N)
			for _, k := range keys[lo:hi] {
				h[k]++
			}
		}
	}, opts...)
	var acc int32
	for bucket := 0; bucket < s.MaxKey; bucket++ {
		for b := 0; b < nb; b++ {
			c := hists[b][bucket]
			hists[b][bucket] = acc
			acc += c
		}
	}
	ranks := make([]int32, s.N)
	p.For(0, nb, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			base := hists[b]
			lo, hi := blockRange(b, s.N)
			for i := lo; i < hi; i++ {
				k := keys[i]
				ranks[i] = base[k]
				base[k]++
			}
		}
	}, opts...)
	return ranks
}

// BucketLoads returns, for diagnostic purposes, the histogram of the NPB
// key distribution split into nBuckets coarse buckets — showing the
// Irwin–Hall imbalance (middle buckets ~6x the tails for 16 buckets).
func BucketLoads(c NPBISClass, nBuckets int) []int {
	keys := createSeq(c.N, c.MaxKey)
	loads := make([]int, nBuckets)
	for _, k := range keys {
		loads[int(k)*nBuckets/c.MaxKey]++
	}
	return loads
}
