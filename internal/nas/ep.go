package nas

import (
	"fmt"
	"math"

	"hybridloop"
	"hybridloop/internal/rng"
)

// EP is the NPB "embarrassingly parallel" kernel: generate 2^M uniform
// deviates from the NPB linear-congruential stream, form pairs (x, y) in
// (-1, 1)^2, accept those inside the unit circle, transform them to
// Gaussian deviates by the Marsaglia polar method, and tabulate the sums
// and the annulus counts q[0..9] of max(|X|, |Y|).
//
// The kernel parallelizes over blocks of 2^LogBlock pairs; block k starts
// its private generator at position 2 * k * 2^LogBlock of the single
// global stream via the O(log n) skip-ahead — exactly the NPB scheme, so
// the parallel run produces the same deviates as the sequential one.
type EP struct {
	// M sets the problem size: 2^(M-1) pairs (NPB class S is M=24).
	M int
	// LogBlock is the log2 of pairs per parallel block (NPB's MK = 16;
	// smaller values expose more parallelism for small M).
	LogBlock int
	// Seed is the LCG seed; 0 means the NPB default 271828183.
	Seed uint64
}

// EPResult holds the kernel's outputs.
type EPResult struct {
	Sx, Sy float64   // sums of the Gaussian deviates
	Q      [10]int64 // annulus counts
	Pairs  int64     // accepted pairs (sum of Q)
}

// Counts returns the total accepted pairs.
func (r EPResult) Counts() int64 {
	var t int64
	for _, q := range r.Q {
		t += q
	}
	return t
}

func (e EP) params() (blocks int, pairsPerBlock int64, seed uint64) {
	lb := e.LogBlock
	if lb == 0 {
		lb = 10
	}
	if e.M <= lb {
		panic(fmt.Sprintf("nas: EP M=%d must exceed LogBlock=%d", e.M, lb))
	}
	seed = e.Seed
	if seed == 0 {
		seed = rng.NPBDefaultSeed
	}
	return 1 << (e.M - 1 - lb), 1 << lb, seed
}

// block computes one block's contribution: pairs [first, first+count) of
// the global stream.
func epBlock(seed uint64, first, count int64) EPResult {
	g := rng.NewNPB(seed)
	g.Skip(uint64(2 * first))
	var res EPResult
	for k := int64(0); k < count; k++ {
		x := 2*g.Next() - 1
		y := 2*g.Next() - 1
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(t) / t)
		xk, yk := x*f, y*f
		res.Sx += xk
		res.Sy += yk
		l := int(math.Max(math.Abs(xk), math.Abs(yk)))
		res.Q[l]++
	}
	res.Pairs = res.Counts()
	return res
}

func mergeEP(blocks []EPResult) EPResult {
	var out EPResult
	for _, b := range blocks {
		out.Sx += b.Sx
		out.Sy += b.Sy
		for i := range out.Q {
			out.Q[i] += b.Q[i]
		}
	}
	out.Pairs = out.Counts()
	return out
}

// Sequential runs the kernel on one core without parallel constructs.
func (e EP) Sequential() EPResult {
	nb, ppb, seed := e.params()
	blocks := make([]EPResult, nb)
	for b := 0; b < nb; b++ {
		blocks[b] = epBlock(seed, int64(b)*ppb, ppb)
	}
	return mergeEP(blocks)
}

// Parallel runs the kernel as one parallel loop over blocks. Because each
// block's deviates come from a fixed slice of the global stream and the
// merge folds blocks in index order, the result is bitwise identical to
// Sequential regardless of scheduling.
func (e EP) Parallel(p Pool, opts ...hybridloop.ForOption) EPResult {
	nb, ppb, seed := e.params()
	blocks := make([]EPResult, nb)
	p.For(0, nb, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			blocks[b] = epBlock(seed, int64(b)*ppb, ppb)
		}
	}, opts...)
	return mergeEP(blocks)
}
