package nas

import (
	"math"
	"math/cmplx"
	"testing"

	"hybridloop"
)

func testPool(t *testing.T) *hybridloop.Pool {
	t.Helper()
	p := hybridloop.NewPool(4, hybridloop.WithSeed(42))
	t.Cleanup(p.Close)
	return p
}

var testStrategies = []hybridloop.Strategy{
	hybridloop.Hybrid, hybridloop.Static, hybridloop.DynamicStealing,
	hybridloop.DynamicSharing, hybridloop.Guided,
}

// --- shared reduction helpers ---

func TestParallelSumMatchesSeq(t *testing.T) {
	p := testPool(t)
	f := func(i int) float64 { return math.Sin(float64(i)) * 1e-3 }
	for _, n := range []int{0, 1, 100, reduceBlock, reduceBlock + 1, 10 * reduceBlock} {
		want := seqSum(n, f)
		for _, s := range testStrategies {
			got := parallelSum(p, n, f, hybridloop.WithStrategy(s))
			if got != want {
				t.Fatalf("n=%d %v: parallelSum = %v, want %v (must be bitwise equal)", n, s, got, want)
			}
		}
	}
}

// --- EP ---

func TestEPParallelMatchesSequentialExactly(t *testing.T) {
	p := testPool(t)
	e := EP{M: 16, LogBlock: 8}
	want := e.Sequential()
	for _, s := range testStrategies {
		got := e.Parallel(p, hybridloop.WithStrategy(s))
		if got != want {
			t.Fatalf("%v: EP parallel %+v != sequential %+v", s, got, want)
		}
	}
}

func TestEPStatisticalSanity(t *testing.T) {
	// The accepted fraction of the polar method is pi/4 ~ 0.785, and the
	// Gaussian sums should be near zero relative to the sample count.
	e := EP{M: 18, LogBlock: 10}
	r := e.Sequential()
	pairsTried := int64(1) << (e.M - 1)
	frac := float64(r.Pairs) / float64(pairsTried)
	if math.Abs(frac-math.Pi/4) > 0.01 {
		t.Errorf("acceptance fraction %.4f, want ~%.4f", frac, math.Pi/4)
	}
	if math.Abs(r.Sx)/float64(r.Pairs) > 0.02 || math.Abs(r.Sy)/float64(r.Pairs) > 0.02 {
		t.Errorf("Gaussian sums too far from zero: sx=%v sy=%v pairs=%d", r.Sx, r.Sy, r.Pairs)
	}
	// Annulus counts must decrease sharply (Gaussian tails).
	if !(r.Q[0] > r.Q[1] && r.Q[1] > r.Q[2]) {
		t.Errorf("annulus counts not decreasing: %v", r.Q)
	}
}

func TestEPBlockDecompositionIndependent(t *testing.T) {
	// Changing the block size re-slices the same global LCG stream: the
	// discrete outputs (annulus counts, accepted pairs) must be identical;
	// the floating-point sums may differ only by reassociation error.
	a := EP{M: 14, LogBlock: 9}.Sequential()
	b := EP{M: 14, LogBlock: 7}.Sequential()
	if a.Q != b.Q || a.Pairs != b.Pairs {
		t.Fatalf("block size changed EP counts: %+v vs %+v", a.Q, b.Q)
	}
	if math.Abs(a.Sx-b.Sx) > 1e-9*(1+math.Abs(a.Sx)) ||
		math.Abs(a.Sy-b.Sy) > 1e-9*(1+math.Abs(a.Sy)) {
		t.Fatalf("block size changed EP sums beyond reassociation error: %+v vs %+v", a, b)
	}
}

// --- IS ---

func TestISParallelMatchesSequential(t *testing.T) {
	p := testPool(t)
	is := IS{N: 40000, MaxKey: 512, Iterations: 3}
	want := is.Sequential()
	for _, s := range testStrategies {
		got := is.Parallel(p, hybridloop.WithStrategy(s))
		for i := range want.Ranks {
			if got.Ranks[i] != want.Ranks[i] {
				t.Fatalf("%v: rank[%d] = %d, want %d", s, i, got.Ranks[i], want.Ranks[i])
			}
		}
	}
}

func TestISRanksValid(t *testing.T) {
	p := testPool(t)
	is := IS{N: 30000, MaxKey: 1 << 11}
	r := is.Parallel(p)
	if err := VerifyRanks(r.Keys, r.Ranks); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRanksCatchesCorruption(t *testing.T) {
	is := IS{N: 1000, MaxKey: 64, Iterations: 1}
	r := is.Sequential()
	if err := VerifyRanks(r.Keys, r.Ranks); err != nil {
		t.Fatalf("valid ranking rejected: %v", err)
	}
	bad := append([]int32(nil), r.Ranks...)
	bad[0], bad[1] = bad[1], bad[0]
	if r.Keys[0] != r.Keys[1] { // swap breaks order unless keys equal
		if err := VerifyRanks(r.Keys, bad); err == nil {
			t.Fatal("corrupted ranking accepted")
		}
	}
	bad2 := append([]int32(nil), r.Ranks...)
	bad2[5] = bad2[6]
	if err := VerifyRanks(r.Keys, bad2); err == nil {
		t.Fatal("duplicate rank accepted")
	}
}

// --- CG ---

func TestCGMatrixSymmetricPositiveDefinite(t *testing.T) {
	c := CG{N: 300, NonzerosPerRow: 5}
	a := c.Matrix()
	// Symmetry: collect (i,j,v) and check the transpose entry matches.
	vals := map[[2]int32]float64{}
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			vals[[2]int32{int32(i), a.Col[k]}] = a.Val[k]
		}
	}
	for key, v := range vals {
		if tv, ok := vals[[2]int32{key[1], key[0]}]; !ok || tv != v {
			t.Fatalf("matrix not symmetric at (%d,%d)", key[0], key[1])
		}
	}
	// Strict diagonal dominance (implies PD for symmetric matrices).
	for i := 0; i < a.N; i++ {
		var diag, off float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if int(a.Col[k]) == i {
				diag = a.Val[k]
			} else {
				off += math.Abs(a.Val[k])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not diagonally dominant: %v <= %v", i, diag, off)
		}
	}
}

func TestCGParallelMatchesSequentialExactly(t *testing.T) {
	p := testPool(t)
	c := CG{N: 500, NIters: 3, InnerIters: 10}
	a := c.Matrix()
	want := c.SequentialOn(a)
	for _, s := range testStrategies {
		got := c.ParallelOn(p, a, hybridloop.WithStrategy(s))
		if got.Zeta != want.Zeta || got.Residual != want.Residual {
			t.Fatalf("%v: CG parallel (zeta=%v, res=%v) != sequential (zeta=%v, res=%v)",
				s, got.Zeta, got.Residual, want.Zeta, want.Residual)
		}
	}
}

func TestCGSolvesSystem(t *testing.T) {
	c := CG{N: 800, NIters: 2, InnerIters: 25}
	r := c.Sequential()
	// b = x has norm sqrt(N); after 25 CG iterations on a well-conditioned
	// diagonally dominant system the residual should be tiny.
	if r.Residual > 1e-6*math.Sqrt(float64(c.N)) {
		t.Errorf("CG residual %v too large", r.Residual)
	}
	// Zeta estimates should settle down (successive difference shrinks).
	zs := r.Zetas
	if len(zs) < 2 {
		t.Fatal("missing zeta history")
	}
	if math.Abs(zs[len(zs)-1]-zs[len(zs)-2]) > math.Abs(zs[1]-zs[0])+1e-12 {
		t.Errorf("zeta not converging: %v", zs)
	}
}

// --- MG ---

func TestMGResidualContracts(t *testing.T) {
	m := MG{Log2N: 4, Cycles: 4}
	r := m.Sequential()
	if r.InitialResidual == 0 {
		t.Fatal("zero initial residual")
	}
	prev := r.InitialResidual
	for i, rn := range r.Residuals {
		if rn >= prev {
			t.Fatalf("cycle %d: residual %v did not shrink from %v", i, rn, prev)
		}
		prev = rn
	}
	if r.Final() > 0.2*r.InitialResidual {
		t.Errorf("after %d cycles residual only %v of initial", m.Cycles, r.Final()/r.InitialResidual)
	}
}

func TestMGParallelMatchesSequentialExactly(t *testing.T) {
	p := testPool(t)
	m := MG{Log2N: 4, Cycles: 2}
	want := m.Sequential()
	for _, s := range testStrategies {
		got := m.Parallel(p, hybridloop.WithStrategy(s))
		if got.InitialResidual != want.InitialResidual {
			t.Fatalf("%v: initial residual differs", s)
		}
		for i := range want.Residuals {
			if got.Residuals[i] != want.Residuals[i] {
				t.Fatalf("%v: cycle %d residual %v != %v", s, i, got.Residuals[i], want.Residuals[i])
			}
		}
	}
}

// --- FT ---

func TestFFT1KnownTransform(t *testing.T) {
	// FFT of a delta is all ones; FFT of ones is a scaled delta.
	a := make([]complex128, 8)
	a[0] = 1
	fft1(a, -1)
	for i, v := range a {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("delta transform[%d] = %v, want 1", i, v)
		}
	}
	for i := range a {
		a[i] = 1
	}
	fft1(a, -1)
	if cmplx.Abs(a[0]-8) > 1e-12 {
		t.Fatalf("DC bin = %v, want 8", a[0])
	}
	for i := 1; i < 8; i++ {
		if cmplx.Abs(a[i]) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", i, a[i])
		}
	}
}

func TestFTRoundTrip(t *testing.T) {
	f := FT{N1: 16, N2: 8, N3: 8}
	if err := f.RoundTripError(); err > 1e-12 {
		t.Fatalf("FFT round-trip error %v", err)
	}
}

func TestFTParallelMatchesSequentialExactly(t *testing.T) {
	p := testPool(t)
	f := FT{N1: 16, N2: 16, N3: 8, Iterations: 3}
	want := f.Sequential()
	for _, s := range testStrategies {
		got := f.Parallel(p, hybridloop.WithStrategy(s))
		for i := range want.Checksums {
			if got.Checksums[i] != want.Checksums[i] {
				t.Fatalf("%v: checksum %d = %v, want %v", s, i, got.Checksums[i], want.Checksums[i])
			}
		}
	}
}

func TestFTEvolutionDamps(t *testing.T) {
	// The evolution factors are exp(negative * t * |k|^2): checksum
	// magnitude of the high-frequency content decays over iterations, so
	// successive checksums change smoothly and remain finite.
	f := FT{N1: 16, N2: 16, N3: 16, Iterations: 5}
	r := f.Sequential()
	if len(r.Checksums) != 5 {
		t.Fatalf("%d checksums, want 5", len(r.Checksums))
	}
	for i, c := range r.Checksums {
		if cmplx.IsNaN(c) || cmplx.IsInf(c) {
			t.Fatalf("checksum %d = %v", i, c)
		}
	}
}
