package nas

import (
	"math"
	"sort"

	"hybridloop/internal/rng"
)

// This file implements the NPB CG benchmark's matrix generator `makea`
// faithfully (NPB3.3 cg.f): the matrix is a weighted sum of sparse random
// outer products x_i x_i^T — one per row, with x_i forced to contain
// coordinate i — whose scales decay geometrically from 1 to RCond across
// the rows, plus (RCond - Shift) added to every diagonal element. The
// sparse vectors come from the NPB linear-congruential stream (randlc)
// through the sprnvc/vecset routines, reproduced exactly: positions are
// drawn as int(2^ceil(lg n) * randlc()) with rejection, values are the
// preceding randlc() draws, and the single global stream (seeded
// 314159265, advanced once for the initial zeta draw) threads through
// every call.

// CGClassParams holds the NPB class constants for CG.
type CGClassParams struct {
	Class   byte
	N       int
	Nonzer  int
	Shift   float64
	NIter   int
	RCond   float64
	ZetaRef float64 // published verification value (0 if not pinned here)
}

// CGClasses lists the NPB classes implemented at laptop scale. The class
// S reference zeta is the published verification value from the NPB
// distribution; the larger classes are provided for scaling studies.
var CGClasses = map[byte]CGClassParams{
	'S': {Class: 'S', N: 1400, Nonzer: 7, Shift: 10, NIter: 15, RCond: 0.1, ZetaRef: 8.5971775078648},
	'W': {Class: 'W', N: 7000, Nonzer: 8, Shift: 12, NIter: 15, RCond: 0.1, ZetaRef: 10.362595087124},
	'A': {Class: 'A', N: 14000, Nonzer: 11, Shift: 20, NIter: 15, RCond: 0.1, ZetaRef: 17.130235054029},
	'B': {Class: 'B', N: 75000, Nonzer: 13, Shift: 60, NIter: 75, RCond: 0.1, ZetaRef: 22.712745482631},
}

// npbRandlc mirrors NPB's randlc: advance the stream and return the next
// value in (0,1). The multiplier is fixed at 5^13 (amult in cg.f).
type npbStream struct{ g *rng.NPB }

func newNPBStream() *npbStream {
	return &npbStream{g: rng.NewNPB(314159265)}
}

func (s *npbStream) next() float64 { return s.g.Next() }

// sprnvc generates a sparse vector with nz distinct nonzero positions in
// [1, n] (1-based, as in the Fortran), values from the stream.
func sprnvc(s *npbStream, n, nz int, mark []bool) (v []float64, iv []int) {
	nn1 := 1
	for nn1 < n {
		nn1 <<= 1
	}
	var marked []int
	for len(v) < nz {
		vecelt := s.next()
		vecloc := s.next()
		i := int(float64(nn1)*vecloc) + 1
		if i > n {
			continue
		}
		if !mark[i] {
			mark[i] = true
			marked = append(marked, i)
			v = append(v, vecelt)
			iv = append(iv, i)
		}
	}
	for _, i := range marked {
		mark[i] = false
	}
	return v, iv
}

// vecset forces element i (1-based) to value val, appending if absent.
func vecset(v []float64, iv []int, i int, val float64) ([]float64, []int) {
	for k, pos := range iv {
		if pos == i {
			v[k] = val
			return v, iv
		}
	}
	return append(v, val), append(iv, i)
}

// NPBMatrix generates the CG matrix for the class exactly as cg.f's
// makea does, returning it in CSR form (0-based).
func NPBMatrix(p CGClassParams) *CSR {
	n := p.N
	s := newNPBStream()
	_ = s.next() // the driver's initial "zeta = randlc(tran, amult)" draw

	// Accumulate entries in per-row maps (the role of NPB's sparse()).
	rows := make([]map[int32]float64, n)
	for i := range rows {
		rows[i] = make(map[int32]float64, 2*p.Nonzer*p.Nonzer/n+4)
	}
	mark := make([]bool, n+1)
	size := 1.0
	ratio := math.Pow(p.RCond, 1.0/float64(n))
	for iouter := 1; iouter <= n; iouter++ {
		v, iv := sprnvc(s, n, p.Nonzer, mark)
		v, iv = vecset(v, iv, iouter, 0.5)
		for ivelt := range v {
			jcol := iv[ivelt] - 1
			scale := size * v[ivelt]
			for ivelt1 := range v {
				irow := iv[ivelt1] - 1
				rows[irow][int32(jcol)] += v[ivelt1] * scale
			}
		}
		size *= ratio
	}
	for i := 0; i < n; i++ {
		rows[i][int32(i)] += p.RCond - p.Shift
	}

	a := &CSR{N: n, RowPtr: make([]int32, n+1)}
	type entry struct {
		col int32
		val float64
	}
	for i := 0; i < n; i++ {
		es := make([]entry, 0, len(rows[i]))
		for j, val := range rows[i] {
			es = append(es, entry{j, val})
		}
		sort.Slice(es, func(x, y int) bool { return es[x].col < es[y].col })
		for _, e := range es {
			a.Col = append(a.Col, e.col)
			a.Val = append(a.Val, e.val)
		}
		a.RowPtr[i+1] = int32(len(a.Val))
	}
	return a
}

// NPBCG runs the NPB CG benchmark for the class on the pool (nil pool =
// sequential) and returns the final zeta and last inner residual, exactly
// following the timed phase of cg.f: NIter outer iterations of 25
// conjugate-gradient steps from x = [1...], zeta = shift + 1/(x.z),
// x = z/||z||.
func NPBCG(p CGClassParams, pool Pool) CGResult {
	cfg := CG{
		N:          p.N,
		NIters:     p.NIter,
		InnerIters: 25,
		Shift:      p.Shift,
	}
	a := NPBMatrix(p)
	if pool == nil {
		return cfg.SequentialOn(a)
	}
	return cfg.ParallelOn(pool, a)
}
