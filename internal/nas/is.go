package nas

import (
	"fmt"

	"hybridloop"
	"hybridloop/internal/rng"
)

// IS is the NPB integer-sort kernel: rank N keys drawn from [0, MaxKey)
// by bucketed counting sort, repeated for Iterations rounds. As in NPB,
// each round perturbs two keys (a function of the round number) before
// ranking, so the work cannot be hoisted out of the loop. The parallel
// phases are (1) per-chunk private histograms over the key array and
// (2) rank assignment, both expressed as parallel loops; the bucket
// prefix sum is sequential (it is O(MaxKey), tiny next to O(N)).
//
// Deviation from NPB (documented in DESIGN.md): keys come from our
// xoshiro generator rather than NPB's sum-of-four-randlc recipe — the
// distribution (uniform over the key range) and the ranking algorithm are
// what the scheduling study exercises, not the exact key values.
type IS struct {
	N          int // number of keys (NPB class S: 2^16, W: 2^20, A: 2^23)
	MaxKey     int // key range (NPB: 2^11 .. 2^19 depending on class)
	Iterations int // ranking rounds (NPB: 10)
	Seed       uint64
}

// ISResult carries the final ranks and the verification counters.
type ISResult struct {
	Keys  []int32 // the key array after the final round's perturbations
	Ranks []int32 // Ranks[i] = rank of Keys[i] in the sorted order
}

func (s IS) defaults() IS {
	if s.Iterations == 0 {
		s.Iterations = 10
	}
	if s.MaxKey == 0 {
		s.MaxKey = 1 << 11
	}
	if s.Seed == 0 {
		s.Seed = 314159265
	}
	if s.N <= 0 {
		panic(fmt.Sprintf("nas: IS N=%d", s.N))
	}
	return s
}

// genKeys produces the initial key array (deterministic in the seed).
func (s IS) genKeys() []int32 {
	g := rng.NewXoshiro256(s.Seed)
	keys := make([]int32, s.N)
	for i := range keys {
		keys[i] = int32(g.Intn(s.MaxKey))
	}
	return keys
}

// perturb is NPB's per-iteration modification: place the iteration number
// and its complement at positions derived from the round.
func (s IS) perturb(keys []int32, round int) {
	keys[round] = int32(round % s.MaxKey)
	keys[(round+s.N/2)%s.N] = int32((s.MaxKey - round) % s.MaxKey)
}

// rankSequential ranks keys by counting sort, sequentially.
func (s IS) rankSequential(keys []int32) []int32 {
	hist := make([]int32, s.MaxKey)
	for _, k := range keys {
		hist[k]++
	}
	// Exclusive prefix sum: start rank of each bucket.
	var acc int32
	for b := range hist {
		c := hist[b]
		hist[b] = acc
		acc += c
	}
	ranks := make([]int32, len(keys))
	// Stable within a bucket by index order.
	for i, k := range keys {
		ranks[i] = hist[k]
		hist[k]++
	}
	return ranks
}

// Sequential runs all rounds without parallel constructs.
func (s IS) Sequential() ISResult {
	s = s.defaults()
	keys := s.genKeys()
	var ranks []int32
	for round := 0; round < s.Iterations; round++ {
		s.perturb(keys, round)
		ranks = s.rankSequential(keys)
	}
	return ISResult{Keys: keys, Ranks: ranks}
}

// Parallel runs all rounds with parallel histogram and ranking loops.
// The result is identical to Sequential: per-chunk histograms partition
// the key array at fixed block boundaries, and ranks within a bucket are
// assigned in block order, reproducing the stable sequential ranking.
func (s IS) Parallel(p Pool, opts ...hybridloop.ForOption) ISResult {
	s = s.defaults()
	keys := s.genKeys()
	nb := numBlocks(s.N)
	// hists[b] is block b's private histogram; reused across rounds.
	hists := make([][]int32, nb)
	for b := range hists {
		hists[b] = make([]int32, s.MaxKey)
	}
	var ranks []int32
	for round := 0; round < s.Iterations; round++ {
		s.perturb(keys, round)
		// Phase 1: private histograms per fixed block.
		p.For(0, nb, func(blo, bhi int) {
			for b := blo; b < bhi; b++ {
				h := hists[b]
				for i := range h {
					h[i] = 0
				}
				lo, hi := blockRange(b, s.N)
				for _, k := range keys[lo:hi] {
					h[k]++
				}
			}
		}, opts...)
		// Phase 2 (sequential, O(MaxKey * nb)): for each bucket, compute
		// the starting rank of each block's keys so that ranking is
		// stable by (bucket, block, index) — exactly the sequential
		// counting sort's order.
		starts := make([]int32, s.MaxKey)
		var acc int32
		for bucket := 0; bucket < s.MaxKey; bucket++ {
			starts[bucket] = acc
			for b := 0; b < nb; b++ {
				c := hists[b][bucket]
				hists[b][bucket] = acc
				acc += c
			}
		}
		// Phase 3: assign ranks per block using the block's bucket bases.
		ranks = make([]int32, s.N)
		p.For(0, nb, func(blo, bhi int) {
			for b := blo; b < bhi; b++ {
				base := hists[b]
				lo, hi := blockRange(b, s.N)
				for i := lo; i < hi; i++ {
					k := keys[i]
					ranks[i] = base[k]
					base[k]++
				}
			}
		}, opts...)
	}
	return ISResult{Keys: keys, Ranks: ranks}
}

// VerifyRanks checks the ranking invariants: ranks form a permutation of
// [0, N), and ordering by rank sorts the keys stably.
func VerifyRanks(keys, ranks []int32) error {
	n := len(keys)
	if len(ranks) != n {
		return fmt.Errorf("nas: ranks length %d != keys length %d", len(ranks), n)
	}
	sorted := make([]int32, n)
	seen := make([]bool, n)
	for i, r := range ranks {
		if r < 0 || int(r) >= n {
			return fmt.Errorf("nas: rank %d out of range", r)
		}
		if seen[r] {
			return fmt.Errorf("nas: duplicate rank %d", r)
		}
		seen[r] = true
		sorted[r] = keys[i]
	}
	for i := 1; i < n; i++ {
		if sorted[i-1] > sorted[i] {
			return fmt.Errorf("nas: keys not sorted at rank %d: %d > %d", i, sorted[i-1], sorted[i])
		}
	}
	return nil
}
