package nas

import (
	"fmt"
	"math"
	"sort"

	"hybridloop"
	"hybridloop/internal/rng"
)

// CG is the NPB conjugate-gradient kernel: estimate the smallest
// eigenvalue of a sparse symmetric positive-definite matrix with the
// inverse power method, solving A z = x by NIters rounds of 25 unpre-
// conditioned conjugate-gradient iterations and computing
// zeta = Shift + 1 / (x . z) each round.
//
// The matrix is a randomly generated sparse SPD matrix in CSR form:
// NonzerosPerRow random off-diagonal entries per row, symmetrized, plus a
// dominant diagonal (NPB's makea builds a similar structure from outer
// products; the simplification keeps the irregular row lengths that give
// the kernel its scheduling character and is documented in DESIGN.md).
type CG struct {
	N              int     // matrix dimension (NPB class S: 1400, W: 7000)
	NonzerosPerRow int     // average off-diagonals per row (NPB: 7..15)
	NIters         int     // outer inverse-power iterations (NPB: 15)
	InnerIters     int     // CG iterations per solve (NPB: 25)
	Shift          float64 // eigenvalue shift (NPB: 10..20)
	Seed           uint64
}

// CGResult carries the final eigenvalue estimate and residual.
type CGResult struct {
	Zeta     float64
	Residual float64 // ||r|| of the last inner solve
	Zetas    []float64
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	N      int
	RowPtr []int32
	Col    []int32
	Val    []float64
}

// NNZ returns the number of stored nonzeros.
func (a *CSR) NNZ() int { return len(a.Val) }

func (c CG) defaults() CG {
	if c.NonzerosPerRow == 0 {
		c.NonzerosPerRow = 7
	}
	if c.NIters == 0 {
		c.NIters = 15
	}
	if c.InnerIters == 0 {
		c.InnerIters = 25
	}
	if c.Shift == 0 {
		c.Shift = 10
	}
	if c.Seed == 0 {
		c.Seed = 314159265
	}
	if c.N <= 1 {
		panic(fmt.Sprintf("nas: CG N=%d", c.N))
	}
	return c
}

// Matrix deterministically generates the sparse SPD system.
func (c CG) Matrix() *CSR {
	c = c.defaults()
	g := rng.NewXoshiro256(c.Seed)
	// Collect symmetric off-diagonal entries per row.
	type entry struct {
		col int32
		val float64
	}
	rows := make([]map[int32]float64, c.N)
	for i := range rows {
		rows[i] = make(map[int32]float64, 2*c.NonzerosPerRow)
	}
	for i := 0; i < c.N; i++ {
		for k := 0; k < c.NonzerosPerRow; k++ {
			j := g.Intn(c.N)
			if j == i {
				continue
			}
			v := g.Float64() - 0.5
			rows[i][int32(j)] += v
			rows[j][int32(i)] += v
		}
	}
	a := &CSR{N: c.N, RowPtr: make([]int32, c.N+1)}
	for i := 0; i < c.N; i++ {
		offdiag := make([]entry, 0, len(rows[i])+1)
		for j, v := range rows[i] {
			offdiag = append(offdiag, entry{j, v})
		}
		// Fold |v| in sorted column order, not map order: map iteration
		// is randomized per run, and the diagonal must be the same bits
		// every run for the golden datasets to hold.
		sort.Slice(offdiag, func(x, y int) bool { return offdiag[x].col < offdiag[y].col })
		var rowAbs float64
		for _, e := range offdiag {
			rowAbs += math.Abs(e.val)
		}
		// Dominant diagonal makes A symmetric positive definite.
		d := sort.Search(len(offdiag), func(k int) bool { return offdiag[k].col > int32(i) })
		offdiag = append(offdiag, entry{})
		copy(offdiag[d+1:], offdiag[d:])
		offdiag[d] = entry{int32(i), rowAbs + c.Shift}
		for _, e := range offdiag {
			a.Col = append(a.Col, e.col)
			a.Val = append(a.Val, e.val)
		}
		a.RowPtr[i+1] = int32(len(a.Val))
	}
	return a
}

// spmvRow computes (A x)[i].
func spmvRow(a *CSR, x []float64, i int) float64 {
	var s float64
	for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
		s += a.Val[k] * x[a.Col[k]]
	}
	return s
}

// cgOps abstracts the vector operations so the solver body is written
// once for the sequential and parallel variants.
type cgOps struct {
	spmv func(dst, x []float64)
	dot  func(x, y []float64) float64
	axpy func(dst []float64, alpha float64, x, y []float64) // dst = alpha*x + y
}

// cgSolve runs iters CG iterations on A z = b from z = 0, returning the
// final residual norm. Mirrors the NPB conjgrad routine.
func cgSolve(n, iters int, ops cgOps, b, z []float64) float64 {
	r := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)
	for i := range z {
		z[i] = 0
	}
	copy(r, b)
	copy(p, b)
	rho := ops.dot(r, r)
	for it := 0; it < iters; it++ {
		ops.spmv(q, p)
		alpha := rho / ops.dot(p, q)
		ops.axpy(z, alpha, p, z)
		ops.axpy(r, -alpha, q, r)
		rho0 := rho
		rho = ops.dot(r, r)
		beta := rho / rho0
		ops.axpy(p, beta, p, r)
	}
	return math.Sqrt(rho)
}

// outer runs the NPB outer loop given the vector ops.
func (c CG) outer(a *CSR, ops cgOps) CGResult {
	n := a.N
	x := make([]float64, n)
	z := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	res := CGResult{}
	for it := 0; it < c.NIters; it++ {
		res.Residual = cgSolve(n, c.InnerIters, ops, x, z)
		zeta := c.Shift + 1/ops.dot(x, z)
		res.Zetas = append(res.Zetas, zeta)
		res.Zeta = zeta
		// x = z / ||z||
		inv := 1 / math.Sqrt(ops.dot(z, z))
		for i := range x {
			x[i] = z[i] * inv
		}
	}
	return res
}

// Sequential runs the kernel without parallel constructs.
func (c CG) Sequential() CGResult {
	c = c.defaults()
	a := c.Matrix()
	return c.SequentialOn(a)
}

// SequentialOn runs the outer loop on a pre-built matrix.
func (c CG) SequentialOn(a *CSR) CGResult {
	c = c.defaults()
	ops := cgOps{
		spmv: func(dst, x []float64) {
			for i := 0; i < a.N; i++ {
				dst[i] = spmvRow(a, x, i)
			}
		},
		dot: func(x, y []float64) float64 {
			return seqSum(a.N, func(i int) float64 { return x[i] * y[i] })
		},
		axpy: func(dst []float64, alpha float64, x, y []float64) {
			for i := range dst {
				dst[i] = alpha*x[i] + y[i]
			}
		},
	}
	return c.outer(a, ops)
}

// Parallel runs the kernel with parallel matvec, dot and axpy loops on
// the pool. Dots use the deterministic block reduction, so results match
// Sequential bitwise.
func (c CG) Parallel(p Pool, opts ...hybridloop.ForOption) CGResult {
	c = c.defaults()
	a := c.Matrix()
	return c.ParallelOn(p, a, opts...)
}

// ParallelOn runs the outer loop on a pre-built matrix.
func (c CG) ParallelOn(p Pool, a *CSR, opts ...hybridloop.ForOption) CGResult {
	c = c.defaults()
	ops := cgOps{
		spmv: func(dst, x []float64) {
			p.For(0, a.N, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					dst[i] = spmvRow(a, x, i)
				}
			}, opts...)
		},
		dot: func(x, y []float64) float64 {
			return parallelSum(p, a.N, func(i int) float64 { return x[i] * y[i] }, opts...)
		},
		axpy: func(dst []float64, alpha float64, x, y []float64) {
			p.For(0, len(dst), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					dst[i] = alpha*x[i] + y[i]
				}
			}, opts...)
		},
	}
	return c.outer(a, ops)
}
