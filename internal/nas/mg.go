package nas

import (
	"fmt"

	"hybridloop"
	"hybridloop/internal/rng"
)

// MG is the NPB multigrid kernel: V-cycles of the simple multigrid solver
// for a 3-D discrete Poisson problem with periodic boundaries. It uses the
// NPB operator structure — four-coefficient 27-point stencils classified
// by neighbor distance (center, the 6 faces, the 12 edges, the 8 corners)
// for both the residual operator A and the smoother S, full-weighting
// restriction and trilinear interpolation — on a hierarchy of 2^k grids.
//
// Every grid operation is elementwise-independent, so the parallel run is
// bitwise identical to the sequential one; verification checks the
// multigrid contraction property (the residual norm shrinks every cycle).
type MG struct {
	Log2N  int // fine grid is (2^Log2N)^3, periodic (NPB class S: 5)
	Cycles int // V-cycles (NPB: 4 for S, 20 for larger classes)
	Seed   uint64
}

// NPB stencil coefficients (class A and up for the smoother).
var (
	mgA = [4]float64{-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0}   // residual operator
	mgC = [4]float64{-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0} // smoother
)

// mgAlign sets the coarse-to-fine collocation: coarse point j sits at
// fine point 2j+1, matching NPB's rprj3/interp operator pair exactly —
// with this alignment (and the zran3 right-hand side) the class S
// verification residual reproduces to every published digit. The
// alternative 2j collocation is an equally valid multigrid but yields a
// ~3% different residual trajectory.
const mgAlign = 1

// grid3 is an n^3 periodic grid, n a power of two.
type grid3 struct {
	n    int
	mask int
	v    []float64
}

func newGrid3(n int) *grid3 {
	if n&(n-1) != 0 || n < 2 {
		panic(fmt.Sprintf("nas: grid size %d not a power of two", n))
	}
	return &grid3{n: n, mask: n - 1, v: make([]float64, n*n*n)}
}

func (g *grid3) idx(i, j, k int) int {
	return ((i&g.mask)*g.n+(j&g.mask))*g.n + (k & g.mask)
}

func (g *grid3) zero() {
	for i := range g.v {
		g.v[i] = 0
	}
}

// MGResult reports the residual norms per cycle.
type MGResult struct {
	InitialResidual float64
	Residuals       []float64 // after each V-cycle
}

// Final returns the last residual norm.
func (r MGResult) Final() float64 {
	if len(r.Residuals) == 0 {
		return r.InitialResidual
	}
	return r.Residuals[len(r.Residuals)-1]
}

func (m MG) defaults() MG {
	if m.Cycles == 0 {
		m.Cycles = 4
	}
	if m.Seed == 0 {
		m.Seed = 271828183
	}
	if m.Log2N < 2 {
		panic(fmt.Sprintf("nas: MG Log2N=%d too small", m.Log2N))
	}
	return m
}

// forRange abstracts the parallel-for so the whole solver is written once:
// the sequential variant passes a plain loop, the parallel variant a pool
// loop. All grid operations parallelize over the outer (i) dimension.
type forRange func(n int, body func(lo, hi int))

// stencil27 applies out(i,j,k) = sum of coef-weighted 27-neighborhood of
// in, over planes [lo, hi). With coef[1] == 0 the face term is skipped,
// matching NPB's operator evaluation.
func stencil27(in, out *grid3, coef [4]float64, lo, hi int) {
	n := in.n
	for i := lo; i < hi; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				var faces, edges, corners float64
				for _, d := range [3][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}} {
					faces += in.v[in.idx(i+d[0], j+d[1], k+d[2])] +
						in.v[in.idx(i-d[0], j-d[1], k-d[2])]
				}
				for _, d := range [6][3]int{
					{1, 1, 0}, {1, -1, 0}, {1, 0, 1}, {1, 0, -1}, {0, 1, 1}, {0, 1, -1},
				} {
					edges += in.v[in.idx(i+d[0], j+d[1], k+d[2])] +
						in.v[in.idx(i-d[0], j-d[1], k-d[2])]
				}
				for _, d := range [4][3]int{{1, 1, 1}, {1, 1, -1}, {1, -1, 1}, {1, -1, -1}} {
					corners += in.v[in.idx(i+d[0], j+d[1], k+d[2])] +
						in.v[in.idx(i-d[0], j-d[1], k-d[2])]
				}
				out.v[out.idx(i, j, k)] = coef[0]*in.v[in.idx(i, j, k)] +
					coef[1]*faces + coef[2]*edges + coef[3]*corners
			}
		}
	}
}

// mgState holds the grid hierarchy.
type mgState struct {
	levels []int // grid size per level, levels[0] = coarsest (2)
	u, r   []*grid3
	v      *grid3 // right-hand side on the finest grid
	tmp    []*grid3
	rhs    []*grid3 // per-level right-hand sides (restricted residuals)
}

func (m MG) setup() *mgState {
	n := 1 << m.Log2N
	st := &mgState{}
	for s := 2; s <= n; s *= 2 {
		st.levels = append(st.levels, s)
		st.u = append(st.u, newGrid3(s))
		st.r = append(st.r, newGrid3(s))
		st.tmp = append(st.tmp, newGrid3(s))
		st.rhs = append(st.rhs, newGrid3(s))
	}
	st.v = newGrid3(n)
	// NPB seeds the RHS with +1/-1 at pseudo-random points; a sparse
	// random ±1 charge distribution has the same character.
	g := rng.NewXoshiro256(m.Seed)
	for c := 0; c < 20; c++ {
		i, j, k := g.Intn(n), g.Intn(n), g.Intn(n)
		if c%2 == 0 {
			st.v.v[st.v.idx(i, j, k)] = 1
		} else {
			st.v.v[st.v.idx(i, j, k)] = -1
		}
	}
	return st
}

// residual computes r = v - A u on one level.
func residual(pf forRange, u, v, r, tmp *grid3) {
	pf(u.n, func(lo, hi int) { stencil27(u, tmp, mgA, lo, hi) })
	pf(u.n, func(lo, hi int) {
		n := u.n
		for i := lo; i < hi; i++ {
			base := i * n * n
			for x := base; x < base+n*n; x++ {
				r.v[x] = v.v[x] - tmp.v[x]
			}
		}
	})
}

// smooth applies u += S r (the NPB psinv smoother).
func smooth(pf forRange, u, r, tmp *grid3) {
	pf(r.n, func(lo, hi int) { stencil27(r, tmp, mgC, lo, hi) })
	pf(r.n, func(lo, hi int) {
		n := r.n
		for i := lo; i < hi; i++ {
			base := i * n * n
			for x := base; x < base+n*n; x++ {
				u.v[x] += tmp.v[x]
			}
		}
	})
}

// restrict computes coarse = full weighting of fine (NPB rprj3): the
// coarse point at 2i takes weighted contributions from its 27 fine
// neighbors with weights 1/2, 1/4, 1/8, 1/16 by distance class.
func restrictGrid(pf forRange, fine, coarse *grid3) {
	w := [4]float64{0.5, 0.25, 0.125, 0.0625}
	pf(coarse.n, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			for cj := 0; cj < coarse.n; cj++ {
				for ck := 0; ck < coarse.n; ck++ {
					fi, fj, fk := 2*ci+mgAlign, 2*cj+mgAlign, 2*ck+mgAlign
					var sum float64
					for di := -1; di <= 1; di++ {
						for dj := -1; dj <= 1; dj++ {
							for dk := -1; dk <= 1; dk++ {
								cls := abs(di) + abs(dj) + abs(dk)
								sum += w[cls] * fine.v[fine.idx(fi+di, fj+dj, fk+dk)]
							}
						}
					}
					coarse.v[coarse.idx(ci, cj, ck)] = sum
				}
			}
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// interp adds the trilinear interpolation of coarse into fine (NPB
// interp): a fine point whose coordinate is even in a dimension reads the
// coarse point directly; odd coordinates average the two straddling
// coarse points.
func interp(pf forRange, coarse, fine *grid3) {
	pf(fine.n, func(lo, hi int) {
		for fi := lo; fi < hi; fi++ {
			for fj := 0; fj < fine.n; fj++ {
				for fk := 0; fk < fine.n; fk++ {
					var sum float64
					ci, oi := (fi-mgAlign)>>1, (fi-mgAlign)&1
					cj, oj := (fj-mgAlign)>>1, (fj-mgAlign)&1
					ck, ok := (fk-mgAlign)>>1, (fk-mgAlign)&1
					for di := 0; di <= oi; di++ {
						for dj := 0; dj <= oj; dj++ {
							for dk := 0; dk <= ok; dk++ {
								w := 1.0
								if oi == 1 {
									w /= 2
								}
								if oj == 1 {
									w /= 2
								}
								if ok == 1 {
									w /= 2
								}
								sum += w * coarse.v[coarse.idx(ci+di, cj+dj, ck+dk)]
							}
						}
					}
					fine.v[fine.idx(fi, fj, fk)] += sum
				}
			}
		}
	})
}

// vcycle runs one V-cycle on the hierarchy (NPB mg3P). On entry r[top]
// must hold the current fine-grid residual v - A u; per NPB, the top
// level's u accumulates the correction across cycles while coarser levels
// are recomputed from scratch each cycle.
func (st *mgState) vcycle(pf forRange) {
	top := len(st.levels) - 1
	// Project the residual down the hierarchy.
	for k := top; k > 0; k-- {
		restrictGrid(pf, st.r[k], st.r[k-1])
	}
	// Coarsest grid: u = S r.
	st.u[0].zero()
	smooth(pf, st.u[0], st.r[0], st.tmp[0])
	// Back up: interpolate, recompute the level residual, smooth.
	for k := 1; k < top; k++ {
		copy(st.rhs[k].v, st.r[k].v) // this level's restricted RHS
		st.u[k].zero()
		interp(pf, st.u[k-1], st.u[k])
		residual(pf, st.u[k], st.rhs[k], st.r[k], st.tmp[k])
		smooth(pf, st.u[k], st.r[k], st.tmp[k])
	}
	// Top level: the correction is *added* to the accumulated solution,
	// and the residual is against the true right-hand side v.
	interp(pf, st.u[top-1], st.u[top])
	residual(pf, st.u[top], st.v, st.r[top], st.tmp[top])
	smooth(pf, st.u[top], st.r[top], st.tmp[top])
}

// run executes the kernel with the given loop driver.
func (m MG) run(pf forRange) MGResult {
	m = m.defaults()
	st := m.setup()
	top := len(st.levels) - 1
	// Initial residual: u = 0, so r = v.
	copy(st.r[top].v, st.v.v)
	res := MGResult{InitialResidual: norm2(st.r[top].v)}
	for c := 0; c < m.Cycles; c++ {
		st.vcycle(pf)
		// Report the true fine-grid residual after the cycle's final
		// smoothing step.
		residual(pf, st.u[top], st.v, st.r[top], st.tmp[top])
		res.Residuals = append(res.Residuals, norm2(st.r[top].v))
	}
	return res
}

// Sequential runs the kernel without parallel constructs.
func (m MG) Sequential() MGResult {
	return m.run(func(n int, body func(lo, hi int)) { body(0, n) })
}

// Parallel runs the kernel with every grid sweep as a parallel loop over
// the outer dimension. Identical results to Sequential (all sweeps are
// elementwise-independent).
func (m MG) Parallel(p Pool, opts ...hybridloop.ForOption) MGResult {
	return m.run(func(n int, body func(lo, hi int)) {
		p.For(0, n, body, opts...)
	})
}
