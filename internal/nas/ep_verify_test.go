package nas

import (
	"math"
	"testing"

	"hybridloop"
)

// EPClassParams holds the NPB class constants for EP: 2^MPairs Gaussian
// pairs, with the published verification sums (ep.f verify step uses
// relative tolerance 1e-8).
type epClass struct {
	mPairs int // NPB's M: 2^M pairs
	sx, sy float64
	pairs  int64 // accepted Gaussian pairs, exact
}

var epClasses = map[byte]epClass{
	'S': {mPairs: 24, sx: -3.247834652034740e+3, sy: -6.958407078382297e+3, pairs: 13176389},
	'W': {mPairs: 25, sx: -2.863319731645753e+3, sy: -6.320053679109499e+3, pairs: 26354769},
}

func relErr(got, want float64) float64 {
	return math.Abs((got - want) / want)
}

// TestNPBEPClassSVerification checks the official NPB EP class S
// verification values: the Gaussian sums within the reference tolerance
// and the accepted-pair count exactly. Together with the CG class
// verification this pins the whole randlc/skip-ahead machinery.
func TestNPBEPClassSVerification(t *testing.T) {
	c := epClasses['S']
	r := EP{M: c.mPairs + 1, LogBlock: 16}.Sequential()
	if relErr(r.Sx, c.sx) > 1e-8 || relErr(r.Sy, c.sy) > 1e-8 {
		t.Fatalf("class S sums (%.15e, %.15e) differ from official (%.15e, %.15e)",
			r.Sx, r.Sy, c.sx, c.sy)
	}
	if r.Pairs != c.pairs {
		t.Fatalf("class S accepted pairs = %d, official %d", r.Pairs, c.pairs)
	}
}

func TestNPBEPClassSParallel(t *testing.T) {
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(17))
	defer pool.Close()
	c := epClasses['S']
	r := EP{M: c.mPairs + 1, LogBlock: 16}.Parallel(pool)
	if relErr(r.Sx, c.sx) > 1e-8 || r.Pairs != c.pairs {
		t.Fatalf("parallel class S failed verification: %+v", r)
	}
}

func TestNPBEPClassWVerification(t *testing.T) {
	if testing.Short() {
		t.Skip("class W takes ~1s")
	}
	c := epClasses['W']
	r := EP{M: c.mPairs + 1, LogBlock: 16}.Sequential()
	if relErr(r.Sx, c.sx) > 1e-8 || relErr(r.Sy, c.sy) > 1e-8 || r.Pairs != c.pairs {
		t.Fatalf("class W failed verification: %+v", r)
	}
}
