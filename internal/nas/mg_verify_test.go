package nas

import (
	"math"
	"testing"

	"hybridloop"
)

// The official NPB MG class S verification value (mg.f verify step:
// relative tolerance 1e-8 on the final rnm2 after 4 V-cycles on the
// 32^3 grid).
const npbMGClassS = 0.5307707005734e-04

func TestNPBMGClassSVerification(t *testing.T) {
	r := MG{Log2N: 5, Cycles: 4}.SequentialNPB()
	if math.Abs(r.Final()-npbMGClassS)/npbMGClassS > 1e-8 {
		t.Fatalf("class S rnm2 = %.13e, official %.13e", r.Final(), npbMGClassS)
	}
}

func TestNPBMGClassSParallelAllStrategies(t *testing.T) {
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(23))
	defer pool.Close()
	want := MG{Log2N: 5, Cycles: 4}.SequentialNPB().Final()
	for _, s := range testStrategies {
		r := MG{Log2N: 5, Cycles: 4}.ParallelNPB(pool, hybridloop.WithStrategy(s))
		if r.Final() != want {
			t.Fatalf("%v: rnm2 %.13e != sequential %.13e", s, r.Final(), want)
		}
	}
}

// TestZran3ChargeStructure: exactly ten +1 and ten -1 charges, everything
// else zero, and norm2u3 of the charge field is sqrt(20/n^3).
func TestZran3ChargeStructure(t *testing.T) {
	g := newGrid3(32)
	zran3(g, 32)
	var pos, neg, other int
	for _, v := range g.v {
		switch v {
		case 1:
			pos++
		case -1:
			neg++
		case 0:
		default:
			other++
		}
	}
	if pos != 10 || neg != 10 || other != 0 {
		t.Fatalf("charges: +%d -%d other %d", pos, neg, other)
	}
	want := math.Sqrt(20.0 / float64(32*32*32))
	if got := norm2u3(g); math.Abs(got-want) > 1e-15 {
		t.Fatalf("norm2u3 = %v, want %v", got, want)
	}
}

func TestNPBMGClassWVerification(t *testing.T) {
	if testing.Short() {
		t.Skip("class W (128^3) takes ~3s")
	}
	// Official NPB MG class W verification value.
	const ref = 0.6467329375339e-05
	r := MG{Log2N: 7, Cycles: 4}.SequentialNPB()
	if math.Abs(r.Final()-ref)/ref > 1e-8 {
		t.Fatalf("class W rnm2 = %.13e, official %.13e", r.Final(), ref)
	}
}
