package nas

import (
	"math"

	"hybridloop"
	"hybridloop/internal/rng"
)

// This file implements the NPB FT benchmark's exact computation (ft.f):
// the initial complex field comes from one continuous vranlc stream
// (seed 314159265, pairs of draws per element, x fastest); the forward
// 3-D FFT moves to frequency space once; each of the niter time steps
// multiplies by the one-step evolution factors exp(-4 alpha pi^2 |k|^2)
// (accumulating in u0), inverse-transforms without normalization, and
// reports the checksum sum_{j=1..1024} u2(j mod n1, 3j mod n2, 5j mod n3)
// divided by the volume.

// ftAlpha is NPB's alpha = 1e-6.
const ftAlpha = 1e-6

// NPBFTResult carries the per-iteration checksums (NPB prints one per
// time step; verification compares each to the class reference with
// relative tolerance 1e-12).
type NPBFTResult struct {
	Checksums []complex128
}

// npbFTInit fills the array from the NPB stream: element (i,j,k), i
// fastest, gets the next two draws as (re, im).
func npbFTInit(st *ftState) {
	g := rng.NewNPB(314159265)
	for idx := range st.x {
		re := g.Next()
		im := g.Next()
		st.x[idx] = complex(re, im)
	}
}

// npbTwiddle returns the one-step evolution factor for the element at
// (i, j, k): exp(ap * (kx^2 + ky^2 + kz^2)) with ap = -4 alpha pi^2.
func npbTwiddle(st *ftState, i, j, k int) float64 {
	ap := -4 * ftAlpha * math.Pi * math.Pi
	fi := freq(i, st.f.N1)
	fj := freq(j, st.f.N2)
	fk := freq(k, st.f.N3)
	return math.Exp(ap * (fi*fi + fj*fj + fk*fk))
}

// NPBFT runs the NPB FT benchmark: f gives the dimensions and iteration
// count (class S: 64x64x64, 6 iterations); pool nil runs sequentially.
func NPBFT(f FT, pool Pool, opts ...hybridloop.ForOption) NPBFTResult {
	f = f.defaults()
	var pf forRange
	if pool == nil {
		pf = func(n int, body func(lo, hi int)) { body(0, n) }
	} else {
		pf = func(n int, body func(lo, hi int)) { pool.For(0, n, body, opts...) }
	}

	st := f.setup()
	npbFTInit(st)
	// Precompute the one-step twiddle factors (compute_indexmap).
	twiddle := make([]float64, st.volume)
	pf(f.N3, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			for j := 0; j < f.N2; j++ {
				for i := 0; i < f.N1; i++ {
					twiddle[st.at(i, j, k)] = npbTwiddle(st, i, j, k)
				}
			}
		}
	})

	// u0 = forward FFT of the initial field.
	st.fft3(pf, -1)
	u0 := st.x
	u2 := make([]complex128, st.volume)

	res := NPBFTResult{}
	for it := 1; it <= f.Iterations; it++ {
		// evolve: u0 *= twiddle (accumulating); u1 = u0.
		pf(len(u0), func(lo, hi int) {
			for idx := lo; idx < hi; idx++ {
				u0[idx] *= complex(twiddle[idx], 0)
			}
		})
		copy(u2, u0)
		// u2 = unnormalized inverse FFT of u1.
		st2 := &ftState{f: st.f, x: u2, volume: st.volume}
		st2.fft3(pf, +1)
		// checksum over the fixed index progression, scaled by 1/volume.
		var chk complex128
		for q := 1; q <= 1024; q++ {
			i := q % f.N1
			j := (3 * q) % f.N2
			k := (5 * q) % f.N3
			chk += st2.x[st2.at(i, j, k)]
		}
		res.Checksums = append(res.Checksums, chk/complex(float64(st.volume), 0))
	}
	return res
}
