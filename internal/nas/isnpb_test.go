package nas

import (
	"testing"

	"hybridloop"
)

func TestNPBISKeyDistributionIsBellShaped(t *testing.T) {
	loads := BucketLoads(NPBISClasses['S'], 16)
	total := 0
	for _, l := range loads {
		total += l
	}
	if total != NPBISClasses['S'].N {
		t.Fatalf("loads sum %d", total)
	}
	// Irwin–Hall n=4: middle buckets far heavier than the tails.
	mid := loads[7] + loads[8]
	tails := loads[0] + loads[15]
	if mid < 5*tails {
		t.Fatalf("distribution not bell-shaped: mid %d vs tails %d (%v)", mid, tails, loads)
	}
	// Symmetry within sampling noise.
	if diff := loads[7] - loads[8]; diff > total/50 || diff < -total/50 {
		t.Fatalf("distribution asymmetric: %v", loads)
	}
}

func TestNPBISClassSRanksValidAndDeterministic(t *testing.T) {
	seq := NPBIS(NPBISClasses['S'], nil)
	if err := VerifyRanks(seq.Keys, seq.Ranks); err != nil {
		t.Fatalf("sequential full_verify failed: %v", err)
	}
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(31))
	defer pool.Close()
	for _, s := range testStrategies {
		par := NPBIS(NPBISClasses['S'], pool, hybridloop.WithStrategy(s))
		if err := VerifyRanks(par.Keys, par.Ranks); err != nil {
			t.Fatalf("%v: full_verify failed: %v", s, err)
		}
		for i := range seq.Ranks {
			if par.Ranks[i] != seq.Ranks[i] {
				t.Fatalf("%v: rank[%d] = %d != sequential %d", s, i, par.Ranks[i], seq.Ranks[i])
			}
		}
	}
}

func TestCreateSeqMatchesNPBRecipe(t *testing.T) {
	// First key recomputed by hand from the stream.
	g := newNPBStream()
	x := g.next() + g.next() + g.next() + g.next()
	want := int32(float64(NPBISClasses['S'].MaxKey/4) * x)
	keys := createSeq(16, NPBISClasses['S'].MaxKey)
	if keys[0] != want {
		t.Fatalf("key[0] = %d, want %d", keys[0], want)
	}
	for _, k := range keys {
		if k < 0 || int(k) >= NPBISClasses['S'].MaxKey {
			t.Fatalf("key %d out of range", k)
		}
	}
}
