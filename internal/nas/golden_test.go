package nas

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"hybridloop"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata golden datasets")

// goldenNAS pins the five kernels' parallel outputs for fixed instances
// on a fixed pool (4 workers, hybrid strategy, seeded victim selection).
// The kernels' block reductions make parallel output bitwise equal to
// sequential regardless of scheduling, so these values are stable across
// runs and machines — any drift means the numerics changed, not the
// schedule. Floats are hex strings for exact JSON round-trips; the IS
// arrays are pinned by FNV-1a hash.
type goldenNAS struct {
	EPSx    string   `json:"ep_sx_hex"`
	EPSy    string   `json:"ep_sy_hex"`
	EPQ     []int64  `json:"ep_q"`
	EPPairs int64    `json:"ep_pairs"`
	ISKeys  uint64   `json:"is_keys_fnv"`
	ISRanks uint64   `json:"is_ranks_fnv"`
	CGZeta  string   `json:"cg_zeta_hex"`
	CGResid string   `json:"cg_residual_hex"`
	CGZetas []string `json:"cg_zetas_hex"`
	MGInit  string   `json:"mg_initial_residual_hex"`
	MGResid []string `json:"mg_residuals_hex"`
	FTSums  []string `json:"ft_checksums_hex"` // re, im interleaved
}

func hexF(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func hexFs(vs []float64) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = hexF(v)
	}
	return out
}

func fnvInt32s(vs []int32) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func goldenNASRun() goldenNAS {
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(42))
	defer pool.Close()

	var g goldenNAS
	ep := EP{M: 16, LogBlock: 8}.Parallel(pool)
	g.EPSx, g.EPSy = hexF(ep.Sx), hexF(ep.Sy)
	g.EPQ = append([]int64(nil), ep.Q[:]...)
	g.EPPairs = ep.Pairs

	is := IS{N: 40000, MaxKey: 512, Iterations: 3}.Parallel(pool)
	g.ISKeys = fnvInt32s(is.Keys)
	g.ISRanks = fnvInt32s(is.Ranks)

	cg := CG{N: 500, NonzerosPerRow: 5, NIters: 3, InnerIters: 10}.Parallel(pool)
	g.CGZeta, g.CGResid = hexF(cg.Zeta), hexF(cg.Residual)
	g.CGZetas = hexFs(cg.Zetas)

	mg := MG{Log2N: 4, Cycles: 4}.Parallel(pool)
	g.MGInit = hexF(mg.InitialResidual)
	g.MGResid = hexFs(mg.Residuals)

	ft := FT{N1: 16, N2: 16, N3: 8, Iterations: 3}.Parallel(pool)
	for _, c := range ft.Checksums {
		g.FTSums = append(g.FTSums, hexF(real(c)), hexF(imag(c)))
	}
	return g
}

// TestGoldenEquivalence re-runs the pinned kernel instances and demands
// bit-exact agreement with testdata/golden_nas.json. Regenerate
// deliberately with -update (make golden-regen) when the numerics are
// meant to change.
func TestGoldenEquivalence(t *testing.T) {
	path := filepath.Join("testdata", "golden_nas.json")
	got := goldenNASRun()

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden dataset (regenerate with -update): %v", err)
	}
	var want goldenNAS
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if string(gj) != string(wj) {
		t.Errorf("NAS kernel outputs diverged from golden:\n got %s\nwant %s", gj, wj)
	}
}
