package nas

import (
	"math"
	"sort"

	"hybridloop"
	"hybridloop/internal/rng"
)

// This file implements the NPB MG benchmark's problem setup faithfully:
// zran3 builds the right-hand side by filling the grid with the NPB
// linear-congruential random field (vranlc, with the per-row/per-plane
// seed jumps a^nx and a^(nx*ny)) and then placing +1 at the ten largest
// and -1 at the ten smallest values; norm2u3 is the reported residual
// norm sqrt(sum r^2 / n).

// zran3 fills g with the NPB charge distribution for an n^3 periodic
// grid (g must be n^3).
func zran3(g *grid3, n int) {
	// Seed layout: x0 starts at the NPB seed; per plane it advances by
	// a^(n*n), per row by a^n, and each cell is one randlc step.
	x0 := rng.NewNPB(314159265)
	// The serial code performs randlc(x0, a^0), a no-op; kept for fidelity.
	x0.Skip(0)
	field := make([]float64, n*n*n)
	rowStride := uint64(n)
	planeStride := uint64(n * n)
	for i3 := 0; i3 < n; i3++ {
		x1 := rng.NewNPB(x0.Seed())
		for i2 := 0; i2 < n; i2++ {
			xx := rng.NewNPB(x1.Seed())
			base := (i3*n + i2) * n
			for i1 := 0; i1 < n; i1++ {
				field[base+i1] = xx.Next()
			}
			x1.Skip(rowStride)
		}
		x0.Skip(planeStride)
	}
	// Ten largest -> +1, ten smallest -> -1 (charges at extremal points).
	const mm = 10
	idx := make([]int, len(field))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return field[idx[a]] < field[idx[b]] })
	g.zero()
	for k := 0; k < mm; k++ {
		g.v[idx[k]] = -1
		g.v[idx[len(idx)-1-k]] = +1
	}
}

// norm2u3 returns NPB's rnm2: sqrt(sum r^2 / (nx*ny*nz)).
func norm2u3(g *grid3) float64 {
	var s float64
	for _, v := range g.v {
		s += v * v
	}
	return math.Sqrt(s / float64(len(g.v)))
}

// NPBRHS selects the NPB zran3 right-hand side for MG instead of the
// simplified sparse random charges.
type MGVariant int

const (
	// MGSimplified seeds the RHS with 20 random +/-1 charges (fast,
	// structurally equivalent).
	MGSimplified MGVariant = iota
	// MGNPB builds the RHS with the NPB zran3 field (exact extremal
	// charge placement from the randlc stream).
	MGNPB
)

// runVariant executes the kernel with zran3 setup and NPB norm reporting.
func (m MG) runNPB(pf forRange) MGResult {
	m = m.defaults()
	st := m.setup()
	top := len(st.levels) - 1
	zran3(st.v, 1<<m.Log2N)
	copy(st.r[top].v, st.v.v)
	res := MGResult{InitialResidual: norm2u3(st.r[top])}
	for c := 0; c < m.Cycles; c++ {
		st.vcycle(pf)
		residual(pf, st.u[top], st.v, st.r[top], st.tmp[top])
		res.Residuals = append(res.Residuals, norm2u3(st.r[top]))
	}
	return res
}

// SequentialNPB runs the kernel with the NPB zran3 setup, sequentially,
// reporting norm2u3 residuals.
func (m MG) SequentialNPB() MGResult {
	return m.runNPB(func(n int, body func(lo, hi int)) { body(0, n) })
}

// ParallelNPB runs the NPB-setup kernel on the pool.
func (m MG) ParallelNPB(p Pool, opts ...hybridloop.ForOption) MGResult {
	return m.runNPB(func(n int, body func(lo, hi int)) {
		p.For(0, n, body, opts...)
	})
}
