// Package nas implements the five kernels of the NAS Parallel Benchmarks
// used in the paper's evaluation (Section V) — EP, IS, CG, MG and FT — on
// top of the hybridloop public API, together with sequential reference
// versions used for verification.
//
// The implementations follow the NPB 3.3.1 kernel definitions (the same
// lineage as the C++ port the paper used): EP reproduces the NPB
// linear-congruential stream bit-for-bit including the O(log n) skip-ahead
// that makes it parallel; IS performs the bucketed key ranking; CG runs
// the inverse-power-method outer loop around a conjugate-gradient solve of
// a randomly generated sparse symmetric system; MG runs V-cycles of the
// NPB four-coefficient 27-point stencils on a periodic 3-D grid; FT
// performs the 3-D FFT with per-dimension pencil parallelism and the NPB
// evolve/checksum loop. Where NPB fixes workload classes (S/W/A/...) by
// constants, these kernels take explicit sizes so tests can run
// laptop-scale instances; class checksums are replaced by mathematical
// invariants (documented per kernel) plus parallel-vs-sequential
// equivalence, which the deterministic reductions below make exact.
package nas

import (
	"math"

	"hybridloop"
)

// Pool is the scheduler interface the kernels need; satisfied by
// *hybridloop.Pool.
type Pool = *hybridloop.Pool

// blockPartials is the deterministic parallel-reduction helper: the index
// space [0, n) is cut into fixed blocks (independent of scheduling); the
// parallel loop computes one partial per block, and the caller folds the
// partials in block order. The result is bitwise identical to a
// sequential left fold over the same blocks no matter how the loop was
// scheduled — which is what lets the tests demand exact equality between
// sequential and parallel kernel runs.
const reduceBlock = 1024

func numBlocks(n int) int { return (n + reduceBlock - 1) / reduceBlock }

func blockRange(b, n int) (lo, hi int) {
	lo = b * reduceBlock
	hi = lo + reduceBlock
	if hi > n {
		hi = n
	}
	return lo, hi
}

// parallelSum computes sum_{i in [0,n)} f(i) with a deterministic
// block-wise reduction on the pool.
func parallelSum(p Pool, n int, f func(i int) float64, opts ...hybridloop.ForOption) float64 {
	nb := numBlocks(n)
	partials := make([]float64, nb)
	p.For(0, nb, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := blockRange(b, n)
			var s float64
			for i := lo; i < hi; i++ {
				s += f(i)
			}
			partials[b] = s
		}
	}, opts...)
	var total float64
	for _, s := range partials {
		total += s
	}
	return total
}

// seqSum is the sequential reference fold over the same blocks.
func seqSum(n int, f func(i int) float64) float64 {
	nb := numBlocks(n)
	var total float64
	for b := 0; b < nb; b++ {
		lo, hi := blockRange(b, n)
		var s float64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		total += s
	}
	return total
}

// norm2 returns the Euclidean norm of v computed with the deterministic
// block reduction (sequentially; used by verifications).
func norm2(v []float64) float64 {
	return math.Sqrt(seqSum(len(v), func(i int) float64 { return v[i] * v[i] }))
}
