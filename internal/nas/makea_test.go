package nas

import (
	"math"
	"os"
	"testing"

	"hybridloop"
)

// The NPB verification values for CG (from the official NPB distribution,
// cg.f verify step: |zeta - zeta_verify| <= 1e-10).
const (
	npbZetaS = 8.5971775078648
	npbZetaW = 10.362595087124
	npbEps   = 1e-10
)

// TestNPBCGClassSVerification runs the official NPB CG class S benchmark
// and checks the published verification value — the strongest correctness
// statement available for this kernel: the matrix generator (makea with
// the exact randlc stream), the conjugate-gradient solver, and the
// inverse-power outer loop are all bit-compatible with the reference
// implementation.
func TestNPBCGClassSVerification(t *testing.T) {
	r := NPBCG(CGClasses['S'], nil)
	if math.Abs(r.Zeta-npbZetaS) > npbEps {
		t.Fatalf("class S zeta = %.13f, official value %.13f", r.Zeta, npbZetaS)
	}
}

// TestNPBCGClassSParallelAllStrategies: the parallel runs must reproduce
// the official value under every scheduling strategy (deterministic block
// reductions make them bitwise equal to the sequential run).
func TestNPBCGClassSParallelAllStrategies(t *testing.T) {
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(3))
	defer pool.Close()
	p := CGClasses['S']
	a := NPBMatrix(p)
	cfg := CG{N: p.N, NIters: p.NIter, InnerIters: 25, Shift: p.Shift}
	for _, s := range testStrategies {
		r := cfg.ParallelOn(pool, a, hybridloop.WithStrategy(s))
		if math.Abs(r.Zeta-npbZetaS) > npbEps {
			t.Fatalf("%v: class S zeta = %.13f, official value %.13f", s, r.Zeta, npbZetaS)
		}
	}
}

func TestNPBCGClassWVerification(t *testing.T) {
	if testing.Short() {
		t.Skip("class W takes ~0.5s")
	}
	r := NPBCG(CGClasses['W'], nil)
	if math.Abs(r.Zeta-npbZetaW) > npbEps {
		t.Fatalf("class W zeta = %.13f, official value %.13f", r.Zeta, npbZetaW)
	}
}

// TestMakeaStructure sanity-checks the generated matrix: symmetric
// pattern with the forced diagonal, ~nonzer^2-ish row density.
func TestMakeaStructure(t *testing.T) {
	p := CGClasses['S']
	a := NPBMatrix(p)
	if a.N != p.N {
		t.Fatalf("N = %d", a.N)
	}
	// Every diagonal entry exists (vecset forces coordinate i into x_i,
	// and rcond - shift is added).
	for i := 0; i < a.N; i++ {
		found := false
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if int(a.Col[k]) == i {
				found = true
				if a.Val[k] >= 0 {
					t.Fatalf("diagonal %d = %v, want negative (rcond - shift dominated)", i, a.Val[k])
				}
			}
			if k > a.RowPtr[i] && a.Col[k] <= a.Col[k-1] {
				t.Fatalf("row %d columns not strictly sorted", i)
			}
		}
		if !found {
			t.Fatalf("row %d missing diagonal", i)
		}
	}
	// Symmetry of values: A = sum of outer products + diagonal.
	vals := map[[2]int32]float64{}
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			vals[[2]int32{int32(i), a.Col[k]}] = a.Val[k]
		}
	}
	for key, v := range vals {
		tv, ok := vals[[2]int32{key[1], key[0]}]
		if !ok || math.Abs(tv-v) > 1e-12*(1+math.Abs(v)) {
			t.Fatalf("asymmetry at (%d,%d): %v vs %v", key[0], key[1], v, tv)
		}
	}
	// Average nonzeros per row in a plausible band around nonzer*(nonzer+1).
	avg := float64(a.NNZ()) / float64(a.N)
	if avg < float64(p.Nonzer) || avg > float64(3*(p.Nonzer+1)*(p.Nonzer+1)) {
		t.Fatalf("average row density %.1f implausible for nonzer=%d", avg, p.Nonzer)
	}
}

// TestSprnvcProperties: positions distinct and in range, values in (0,1).
func TestSprnvcProperties(t *testing.T) {
	s := newNPBStream()
	mark := make([]bool, 1001)
	for trial := 0; trial < 50; trial++ {
		v, iv := sprnvc(s, 1000, 9, mark)
		if len(v) != 9 || len(iv) != 9 {
			t.Fatalf("got %d values", len(v))
		}
		seen := map[int]bool{}
		for k := range v {
			if iv[k] < 1 || iv[k] > 1000 || seen[iv[k]] {
				t.Fatalf("bad position %d", iv[k])
			}
			seen[iv[k]] = true
			if v[k] <= 0 || v[k] >= 1 {
				t.Fatalf("value %v outside (0,1)", v[k])
			}
		}
		// The mark array must be clean for the next call.
		for i, m := range mark {
			if m {
				t.Fatalf("mark[%d] left set", i)
			}
		}
	}
}

func TestVecset(t *testing.T) {
	v, iv := []float64{0.1, 0.2}, []int{3, 7}
	v2, iv2 := vecset(v, iv, 7, 0.5)
	if len(v2) != 2 || v2[1] != 0.5 {
		t.Fatalf("overwrite failed: %v %v", v2, iv2)
	}
	v3, iv3 := vecset(v2, iv2, 9, 0.5)
	if len(v3) != 3 || iv3[2] != 9 || v3[2] != 0.5 {
		t.Fatalf("append failed: %v %v", v3, iv3)
	}
}

func TestNPBCGClassAVerification(t *testing.T) {
	if testing.Short() {
		t.Skip("class A takes ~2s")
	}
	p := CGClasses['A']
	r := NPBCG(p, nil)
	if math.Abs(r.Zeta-p.ZetaRef) > npbEps {
		t.Fatalf("class A zeta = %.13f, official value %.13f", r.Zeta, p.ZetaRef)
	}
}

// TestNPBCGClassBVerification is the largest pinned class (~2 minutes);
// enable with NPB_LONG=1.
func TestNPBCGClassBVerification(t *testing.T) {
	if os.Getenv("NPB_LONG") == "" {
		t.Skip("set NPB_LONG=1 to run the ~2-minute class B verification")
	}
	p := CGClasses['B']
	r := NPBCG(p, nil)
	if math.Abs(r.Zeta-p.ZetaRef) > npbEps {
		t.Fatalf("class B zeta = %.13f, official value %.13f", r.Zeta, p.ZetaRef)
	}
}
