// Package plot renders the experiment results as standalone SVG figures —
// line charts for the scalability plots (Figures 1 and 3) and grouped bar
// charts for the affinity and memory-counter tables (Figures 2 and 4).
// Pure standard library; the files open in any browser.
package plot

import (
	"fmt"
	"math"
	"os"
	"strings"
)

// Palette is the series color cycle (hybrid, vanilla, static, dynamic,
// guided, ff — matching the harness ordering).
var Palette = []string{
	"#d62728", // red
	"#1f77b4", // blue
	"#2ca02c", // green
	"#ff7f0e", // orange
	"#9467bd", // purple
	"#8c564b", // brown
	"#17becf", // cyan
	"#7f7f7f", // gray
}

// Series is one line or bar group member.
type Series struct {
	Name string
	Y    []float64
}

// LineChart is a multi-series line chart over categorical X positions.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	XTicks []string
	Series []Series
	// Width and Height in pixels; zero selects 640x420.
	Width, Height int
	// YMax forces the Y-axis maximum; zero auto-scales.
	YMax float64
}

const (
	marginL = 60
	marginR = 150
	marginT = 40
	marginB = 50
)

func (c *LineChart) dims() (w, h int) {
	w, h = c.Width, c.Height
	if w == 0 {
		w = 640
	}
	if h == 0 {
		h = 420
	}
	return w, h
}

func (c *LineChart) yMax() float64 {
	if c.YMax > 0 {
		return c.YMax
	}
	max := 0.0
	for _, s := range c.Series {
		for _, y := range s.Y {
			if y > max {
				max = y
			}
		}
	}
	if max <= 0 {
		return 1
	}
	return niceCeil(max)
}

// niceCeil rounds up to 1, 2, 2.5, 5 x 10^k.
func niceCeil(x float64) float64 {
	if x <= 0 {
		return 1
	}
	exp := math.Floor(math.Log10(x))
	base := math.Pow(10, exp)
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		if x <= m*base {
			return m * base
		}
	}
	return 10 * base
}

// SVG renders the chart.
func (c *LineChart) SVG() string {
	w, h := c.dims()
	plotW := float64(w - marginL - marginR)
	plotH := float64(h - marginT - marginB)
	ymax := c.yMax()
	nx := len(c.XTicks)
	if nx == 0 {
		for _, s := range c.Series {
			if len(s.Y) > nx {
				nx = len(s.Y)
			}
		}
		for i := 0; i < nx; i++ {
			c.XTicks = append(c.XTicks, fmt.Sprint(i))
		}
	}
	xpos := func(i int) float64 {
		if nx <= 1 {
			return float64(marginL) + plotW/2
		}
		return float64(marginL) + plotW*float64(i)/float64(nx-1)
	}
	ypos := func(y float64) float64 {
		return float64(marginT) + plotH*(1-y/ymax)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`, marginL, xmlEscape(c.Title))

	// Axes and gridlines (5 Y ticks).
	for t := 0; t <= 5; t++ {
		yv := ymax * float64(t) / 5
		yy := ypos(yv)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`,
			marginL, yy, w-marginR, yy)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" fill="#444444">%s</text>`,
			marginL-6, yy+4, trimFloat(yv))
	}
	for i, tick := range c.XTicks {
		xx := xpos(i)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" fill="#444444">%s</text>`,
			xx, h-marginB+18, xmlEscape(tick))
	}
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#222222"/>`,
		marginL, h-marginB, w-marginR, h-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#222222"/>`,
		marginL, marginT, marginL, h-marginB)
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" fill="#222222">%s</text>`,
		float64(marginL)+plotW/2, h-12, xmlEscape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.1f" text-anchor="middle" transform="rotate(-90 16 %.1f)" fill="#222222">%s</text>`,
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, xmlEscape(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := Palette[si%len(Palette)]
		var pts []string
		for i, y := range s.Y {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xpos(i), ypos(clamp(y, 0, ymax))))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`,
			strings.Join(pts, " "), color)
		for i, y := range s.Y {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`,
				xpos(i), ypos(clamp(y, 0, ymax)), color)
		}
		// Legend entry.
		ly := marginT + 8 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			w-marginR+10, ly, w-marginR+30, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#222222">%s</text>`,
			w-marginR+36, ly+4, xmlEscape(s.Name))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// WriteFile writes the chart to path.
func (c *LineChart) WriteFile(path string) error {
	return os.WriteFile(path, []byte(c.SVG()), 0o644)
}

// BarChart is a grouped bar chart: one group per X tick, one bar per
// series within each group.
type BarChart struct {
	Title  string
	YLabel string
	Groups []string
	Series []Series
	// Width and Height in pixels; zero selects 640x420.
	Width, Height int
	YMax          float64
}

// SVG renders the chart.
func (c *BarChart) SVG() string {
	w, h := (&LineChart{Width: c.Width, Height: c.Height}).dims()
	plotW := float64(w - marginL - marginR)
	plotH := float64(h - marginT - marginB)
	ymax := c.YMax
	if ymax <= 0 {
		for _, s := range c.Series {
			for _, y := range s.Y {
				if y > ymax {
					ymax = y
				}
			}
		}
		ymax = niceCeil(ymax)
	}
	ng, ns := len(c.Groups), len(c.Series)
	if ng == 0 || ns == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg"></svg>`
	}
	groupW := plotW / float64(ng)
	barW := groupW * 0.8 / float64(ns)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`, marginL, xmlEscape(c.Title))
	for t := 0; t <= 5; t++ {
		yv := ymax * float64(t) / 5
		yy := float64(marginT) + plotH*(1-yv/ymax)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`,
			marginL, yy, w-marginR, yy)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" fill="#444444">%s</text>`,
			marginL-6, yy+4, trimFloat(yv))
	}
	for gi, g := range c.Groups {
		gx := float64(marginL) + groupW*(float64(gi)+0.5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" fill="#444444">%s</text>`,
			gx, h-marginB+18, xmlEscape(g))
		for si, s := range c.Series {
			if gi >= len(s.Y) {
				continue
			}
			y := clamp(s.Y[gi], 0, ymax)
			bh := plotH * y / ymax
			bx := float64(marginL) + groupW*float64(gi) + groupW*0.1 + barW*float64(si)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
				bx, float64(marginT)+plotH-bh, barW, bh, Palette[si%len(Palette)])
		}
	}
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#222222"/>`,
		marginL, h-marginB, w-marginR, h-marginB)
	fmt.Fprintf(&b, `<text x="16" y="%.1f" text-anchor="middle" transform="rotate(-90 16 %.1f)" fill="#222222">%s</text>`,
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, xmlEscape(c.YLabel))
	for si, s := range c.Series {
		ly := marginT + 8 + si*18
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`,
			w-marginR+10, ly-8, Palette[si%len(Palette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#222222">%s</text>`,
			w-marginR+28, ly+3, xmlEscape(s.Name))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// WriteFile writes the chart to path.
func (c *BarChart) WriteFile(path string) error {
	return os.WriteFile(path, []byte(c.SVG()), 0o644)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Gantt renders per-core execution segments as a timeline: one row per
// row label, filled rectangles for busy intervals, colored by series
// label (e.g. which loop or partition a chunk belongs to).
type Gantt struct {
	Title string
	// Rows is the number of horizontal lanes (cores).
	Rows int
	// Spans are the busy intervals.
	Spans []GanttSpan
	// XMax forces the time-axis maximum; zero auto-scales.
	XMax          float64
	Width, Height int
}

// GanttSpan is one busy interval on a lane.
type GanttSpan struct {
	Row        int
	Start, End float64
	Color      int // palette index
}

// SVG renders the timeline.
func (g *Gantt) SVG() string {
	w, h := g.Width, g.Height
	if w == 0 {
		w = 900
	}
	if h == 0 {
		h = 30 + g.Rows*16 + 40
	}
	xmax := g.XMax
	if xmax <= 0 {
		for _, s := range g.Spans {
			if s.End > xmax {
				xmax = s.End
			}
		}
	}
	if xmax <= 0 {
		xmax = 1
	}
	plotW := float64(w - marginL - 20)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="14" font-weight="bold">%s</text>`, marginL, xmlEscape(g.Title))
	rowY := func(r int) int { return 30 + r*16 }
	for r := 0; r < g.Rows; r++ {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end" fill="#444444">c%d</text>`,
			marginL-6, rowY(r)+11, r)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#eeeeee"/>`,
			marginL, rowY(r)+14, w-20, rowY(r)+14)
	}
	for _, s := range g.Spans {
		if s.Row < 0 || s.Row >= g.Rows {
			continue
		}
		x := float64(marginL) + plotW*s.Start/xmax
		wd := plotW * (s.End - s.Start) / xmax
		if wd < 0.5 {
			wd = 0.5
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="12" fill="%s"/>`,
			x, rowY(s.Row), wd, Palette[s.Color%len(Palette)])
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#444444">0</text>`, marginL, h-10)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end" fill="#444444">%s cycles</text>`,
		w-20, h-10, trimFloat(xmax))
	b.WriteString(`</svg>`)
	return b.String()
}

// WriteFile writes the timeline to path.
func (g *Gantt) WriteFile(path string) error {
	return os.WriteFile(path, []byte(g.SVG()), 0o644)
}
