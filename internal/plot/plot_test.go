package plot

import (
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func validXML(t *testing.T, s string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(s))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid XML: %v\n%s", err, s)
		}
	}
}

func sampleLine() *LineChart {
	return &LineChart{
		Title:  "scalability",
		XLabel: "cores",
		YLabel: "T1/TP",
		XTicks: []string{"1", "2", "4", "8"},
		Series: []Series{
			{Name: "hybrid", Y: []float64{1, 2, 4, 8}},
			{Name: "vanilla", Y: []float64{1, 1.9, 3.5, 6}},
		},
	}
}

func TestLineChartWellFormed(t *testing.T) {
	svg := sampleLine().SVG()
	validXML(t, svg)
	for _, want := range []string{"polyline", "hybrid", "vanilla", "scalability", "T1/TP", "circle"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Fatalf("%d polylines, want 2", got)
	}
	if got := strings.Count(svg, "<circle"); got != 8 {
		t.Fatalf("%d markers, want 8", got)
	}
}

func TestLineChartEscapesText(t *testing.T) {
	c := sampleLine()
	c.Title = `a<b & "c"`
	svg := c.SVG()
	validXML(t, svg)
	if strings.Contains(svg, `a<b`) {
		t.Fatal("title not escaped")
	}
}

func TestLineChartAutoTicksAndEmpty(t *testing.T) {
	c := &LineChart{Series: []Series{{Name: "x", Y: []float64{0, 0}}}}
	validXML(t, c.SVG()) // zero data must not divide by zero
	c2 := &LineChart{Series: []Series{{Name: "x", Y: []float64{3}}}}
	svg := c2.SVG()
	validXML(t, svg) // single point: no division by nx-1 = 0
	if !strings.Contains(svg, "circle") {
		t.Fatal("single point not drawn")
	}
}

func TestNiceCeil(t *testing.T) {
	cases := map[float64]float64{
		0.7: 1, 1: 1, 1.2: 2, 2.2: 2.5, 3: 5, 7: 10, 32: 50, 71: 100, 100: 100,
	}
	for in, want := range cases {
		if got := niceCeil(in); got != want {
			t.Errorf("niceCeil(%v) = %v, want %v", in, got, want)
		}
	}
	if niceCeil(-1) != 1 {
		t.Error("negative input")
	}
}

func TestBarChartWellFormed(t *testing.T) {
	c := &BarChart{
		Title:  "affinity",
		YLabel: "%",
		Groups: []string{"balanced", "unbalanced"},
		Series: []Series{
			{Name: "hybrid", Y: []float64{100, 80}},
			{Name: "vanilla", Y: []float64{5, 6}},
		},
		YMax: 100,
	}
	svg := c.SVG()
	validXML(t, svg)
	// 2 groups x 2 series bars + 2 legend swatches + background.
	if got := strings.Count(svg, "<rect"); got != 7 {
		t.Fatalf("%d rects, want 7", got)
	}
}

func TestBarChartEmpty(t *testing.T) {
	validXML(t, (&BarChart{}).SVG())
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "fig.svg")
	if err := sampleLine().WriteFile(p); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil || !strings.HasPrefix(string(data), "<svg") {
		t.Fatalf("written file bad: %v", err)
	}
	bp := filepath.Join(dir, "bar.svg")
	if err := (&BarChart{Groups: []string{"g"}, Series: []Series{{Name: "s", Y: []float64{1}}}}).WriteFile(bp); err != nil {
		t.Fatal(err)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{0: "0", 1: "1", 2.5: "2.5", 0.25: "0.25", 100: "100"}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestGanttWellFormed(t *testing.T) {
	g := &Gantt{
		Title: "cores",
		Rows:  3,
		Spans: []GanttSpan{
			{Row: 0, Start: 0, End: 10, Color: 0},
			{Row: 1, Start: 5, End: 12, Color: 1},
			{Row: 2, Start: 0, End: 0.001, Color: 2}, // sub-pixel span
			{Row: 99, Start: 0, End: 1},              // out of range: skipped
		},
	}
	svg := g.SVG()
	validXML(t, svg)
	// 3 drawn spans + background.
	if got := strings.Count(svg, "<rect"); got != 4 {
		t.Fatalf("%d rects, want 4", got)
	}
	validXML(t, (&Gantt{Rows: 0}).SVG())
}
