package harness

import (
	"fmt"
	"io"

	"hybridloop/internal/loop"
	"hybridloop/internal/memmodel"
	"hybridloop/internal/sim"
	"hybridloop/internal/topology"
)

// DefaultPs is the paper's core sweep.
var DefaultPs = []int{1, 2, 4, 8, 16, 32}

// DefaultStrategies is the paper's comparison set in display order.
var DefaultStrategies = []loop.Strategy{
	loop.Hybrid, loop.DynamicStealing, loop.Static, loop.DynamicSharing, loop.Guided,
}

// FF is the pseudo-strategy key for the FastFlow baseline. The paper ran
// FastFlow with both of its schemes (static and dynamic partitioning with
// work sharing) and displayed only the better-performing one per plot,
// noting that "its performance tends to lag behind other platforms". The
// harness models it the same way: both schemes run on a machine whose
// scheduler costs are scaled up (FastFlow's node-based runtime carries
// more per-loop and per-chunk machinery than OpenMP's), and the better
// result is reported as "ff".
const FF loop.Strategy = -1

// ffMachine returns the machine with FastFlow-weight scheduler costs:
// moderate extra cost per chunk and queue access, and a large per-loop
// cost (farm spin-up/teardown) — which is what makes ff lag most on small
// working sets, exactly the paper's observation ("it is a little
// surprising that the performance of ff also lags behind in the smaller
// working set size, despite the fact that it uses static partitioning").
func ffMachine(m topology.Machine) topology.Machine {
	m.Cost.SharedQueueAccess *= 3
	m.Cost.SharedQueueSerial *= 3
	m.Cost.ChunkDispatch *= 3
	m.Cost.LoopStartup *= 25
	m.Cost.Barrier *= 10
	return m
}

// ffName renders strategy names including the FF pseudo-strategy.
func ffName(s loop.Strategy) string {
	if s == FF {
		return "ff"
	}
	return s.String()
}

// Scalability is a generic scalability experiment over one workload
// (Figures 1 and 3): it measures Ts once, then T1 and TP per strategy,
// averaging over seeds.
type Scalability struct {
	Machine    topology.Machine
	Workload   sim.Workload
	Ps         []int
	Strategies []loop.Strategy
	Seeds      []uint64
	Chunk      int // 0 = the paper's default
	// IncludeFF adds the FastFlow baseline series (see FF).
	IncludeFF bool
}

// ScalResult holds the outcome of a Scalability experiment.
type ScalResult struct {
	Workload string
	Ts       float64
	Ps       []int
	// T1 and TP are indexed by strategy (and core count for TP).
	T1 map[loop.Strategy]Stat
	TP map[loop.Strategy]map[int]Stat
}

// WorkEfficiency returns Ts/T1 for the strategy (the paper's first column).
func (r ScalResult) WorkEfficiency(s loop.Strategy) float64 {
	t1 := r.T1[s].Mean
	if t1 == 0 {
		return 0
	}
	return r.Ts / t1
}

// ScalabilityAt returns T1/TP for the strategy at P cores (the paper's
// scalability axis).
func (r ScalResult) ScalabilityAt(s loop.Strategy, p int) float64 {
	tp := r.TP[s][p].Mean
	if tp == 0 {
		return 0
	}
	return r.T1[s].Mean / tp
}

func (e Scalability) seeds() []uint64 {
	if len(e.Seeds) > 0 {
		return e.Seeds
	}
	return []uint64{1, 2, 3, 4, 5}
}

func (e Scalability) ps() []int {
	if len(e.Ps) > 0 {
		return e.Ps
	}
	return DefaultPs
}

func (e Scalability) strategies() []loop.Strategy {
	if len(e.Strategies) > 0 {
		return e.Strategies
	}
	return DefaultStrategies
}

// Run executes the experiment.
func (e Scalability) Run() ScalResult {
	res := ScalResult{
		Workload: e.Workload.Name,
		Ts:       sim.RunSequential(e.Machine, e.Workload),
		Ps:       e.ps(),
		T1:       map[loop.Strategy]Stat{},
		TP:       map[loop.Strategy]map[int]Stat{},
	}
	for _, s := range e.strategies() {
		res.TP[s] = map[int]Stat{}
		for _, p := range e.ps() {
			var samples []float64
			for _, seed := range e.seeds() {
				r := sim.Run(sim.Config{
					Machine: e.Machine, P: p, Strategy: s, Chunk: e.Chunk, Seed: seed,
				}, e.Workload)
				samples = append(samples, r.Cycles)
			}
			st := NewStat(samples)
			res.TP[s][p] = st
			if p == 1 {
				res.T1[s] = st
			}
		}
		if _, ok := res.T1[s]; !ok {
			// P=1 not in the sweep: measure it anyway; T1 anchors both
			// work efficiency and the scalability ratio.
			var samples []float64
			for _, seed := range e.seeds() {
				r := sim.Run(sim.Config{
					Machine: e.Machine, P: 1, Strategy: s, Chunk: e.Chunk, Seed: seed,
				}, e.Workload)
				samples = append(samples, r.Cycles)
			}
			res.T1[s] = NewStat(samples)
		}
	}
	if e.IncludeFF {
		e.runFF(&res)
	}
	return res
}

// runFF measures the FastFlow baseline: both of its schemes on the
// FF-cost machine, reporting the better per core count.
func (e Scalability) runFF(res *ScalResult) {
	ffm := ffMachine(e.Machine)
	res.TP[FF] = map[int]Stat{}
	ps := e.ps()
	if !containsInt(ps, 1) {
		ps = append([]int{1}, ps...)
	}
	for _, p := range ps {
		var samples []float64
		for _, seed := range e.seeds() {
			best := 0.0
			for _, s := range []loop.Strategy{loop.Static, loop.DynamicSharing} {
				r := sim.Run(sim.Config{
					Machine: ffm, P: p, Strategy: s, Chunk: e.Chunk, Seed: seed,
				}, e.Workload)
				if best == 0 || r.Cycles < best {
					best = r.Cycles
				}
			}
			samples = append(samples, best)
		}
		st := NewStat(samples)
		res.TP[FF][p] = st
		if p == 1 {
			res.T1[FF] = st
		}
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Render writes the experiment as the paper presents it: a work-efficiency
// column followed by a scalability series per strategy.
func (r ScalResult) Render(w io.Writer) {
	eff := Table{
		Title:  fmt.Sprintf("%s — work efficiency (Ts/T1)", r.Workload),
		Header: []string{"strategy", "Ts/T1", "T1 (cycles)"},
	}
	var series []Series
	for _, s := range append(append([]loop.Strategy{}, DefaultStrategies...), FF) {
		if _, ok := r.T1[s]; !ok {
			continue
		}
		eff.AddRow(ffName(s), fmt.Sprintf("%.3f", r.WorkEfficiency(s)), fmt.Sprintf("%.3g", r.T1[s].Mean))
		sr := Series{Name: ffName(s), X: r.Ps}
		for _, p := range r.Ps {
			sr.Y = append(sr.Y, r.ScalabilityAt(s, p))
		}
		series = append(series, sr)
	}
	eff.Render(w)
	fmt.Fprintln(w)
	RenderSeries(w, fmt.Sprintf("%s — scalability (T1/TP)", r.Workload), "T1/TP", series)
}

// Affinity is the Figure 2 experiment: same-core percentages at full
// machine width for each strategy, per workload.
type Affinity struct {
	Machine    topology.Machine
	Workloads  []sim.Workload
	Strategies []loop.Strategy
	P          int
	Seeds      []uint64
}

// AffinityResult maps workload name -> strategy -> mean same-core
// fraction.
type AffinityResult struct {
	P         int
	Workloads []string
	Fracs     map[string]map[loop.Strategy]Stat
}

// Run executes the affinity experiment.
func (e Affinity) Run() AffinityResult {
	p := e.P
	if p == 0 {
		p = e.Machine.P()
	}
	strategies := e.Strategies
	if len(strategies) == 0 {
		strategies = DefaultStrategies
	}
	seeds := e.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1, 2, 3}
	}
	res := AffinityResult{P: p, Fracs: map[string]map[loop.Strategy]Stat{}}
	for _, w := range e.Workloads {
		res.Workloads = append(res.Workloads, w.Name)
		byStrat := map[loop.Strategy]Stat{}
		for _, s := range strategies {
			var samples []float64
			for _, seed := range seeds {
				r := sim.Run(sim.Config{Machine: e.Machine, P: p, Strategy: s, Seed: seed}, w)
				samples = append(samples, r.Affinity)
			}
			byStrat[s] = NewStat(samples)
		}
		res.Fracs[w.Name] = byStrat
	}
	return res
}

// Render writes the Figure 2 table: strategies as rows, workloads as
// columns, cells in percent.
func (r AffinityResult) Render(w io.Writer) {
	t := Table{
		Title:  fmt.Sprintf("Same-core iteration percentage across consecutive loops (P=%d)", r.P),
		Header: append([]string{"scheme"}, r.Workloads...),
	}
	for _, s := range DefaultStrategies {
		row := []string{s.String()}
		any := false
		for _, wn := range r.Workloads {
			if st, ok := r.Fracs[wn][s]; ok {
				row = append(row, fmt.Sprintf("%.2f%%", 100*st.Mean))
				any = true
			} else {
				row = append(row, "-")
			}
		}
		if any {
			t.AddRow(row...)
		}
	}
	t.Render(w)
}

// MemCounts is the Figure 4 experiment: per-level access counts and
// inferred latency at full machine width.
type MemCounts struct {
	Machine    topology.Machine
	Workloads  []sim.Workload
	Strategies []loop.Strategy
	P          int
	Seed       uint64
}

// MemCountsResult maps workload -> strategy -> counts.
type MemCountsResult struct {
	P      int
	Lat    topology.Latencies
	Names  []string
	Counts map[string]map[loop.Strategy]memmodel.Counts
}

// Run executes the counters experiment (single seed: counts are exact in
// simulation, unlike the paper's buggy hardware counters).
func (e MemCounts) Run() MemCountsResult {
	p := e.P
	if p == 0 {
		p = e.Machine.P()
	}
	strategies := e.Strategies
	if len(strategies) == 0 {
		strategies = []loop.Strategy{loop.Hybrid, loop.DynamicStealing, loop.Static}
	}
	res := MemCountsResult{P: p, Lat: e.Machine.Lat, Counts: map[string]map[loop.Strategy]memmodel.Counts{}}
	for _, w := range e.Workloads {
		res.Names = append(res.Names, w.Name)
		byStrat := map[loop.Strategy]memmodel.Counts{}
		for _, s := range strategies {
			r := sim.Run(sim.Config{Machine: e.Machine, P: p, Strategy: s, Seed: e.Seed + 1}, w)
			byStrat[s] = r.Counts
		}
		res.Counts[w.Name] = byStrat
	}
	return res
}

// Render writes the Figure 4 table: one row per (strategy, workload), the
// six per-level counts, and the inferred latency without L1.
func (r MemCountsResult) Render(w io.Writer) {
	t := Table{
		Title: fmt.Sprintf("Memory accesses serviced per hierarchy level (P=%d)", r.P),
		Header: []string{"bench", "L1", "L2", "local L3", "local DRAM",
			"remote L3", "remote DRAM", "inferred latency (no L1)"},
	}
	for _, name := range r.Names {
		for _, s := range []loop.Strategy{loop.Hybrid, loop.DynamicStealing, loop.Static} {
			c, ok := r.Counts[name][s]
			if !ok {
				continue
			}
			t.AddRow(
				fmt.Sprintf("%s %s", s.String(), name),
				fmt.Sprintf("%.2e", float64(c[topology.L1])),
				fmt.Sprintf("%.2e", float64(c[topology.L2])),
				fmt.Sprintf("%.2e", float64(c[topology.LocalL3])),
				fmt.Sprintf("%.2e", float64(c[topology.LocalDRAM])),
				fmt.Sprintf("%.2e", float64(c[topology.RemoteL3])),
				fmt.Sprintf("%.2e", float64(c[topology.RemoteDRAM])),
				fmt.Sprintf("%.2e", c.InferredLatency(r.Lat, false)),
			)
		}
	}
	t.Render(w)
}

// RenderLatencies writes the Figure 5 table: the machine's per-level
// access latencies (the simulator's cost model).
func RenderLatencies(w io.Writer, m topology.Machine) {
	t := Table{
		Title:  "Access latency per memory-hierarchy level (cycles) — Figure 5 / simulator cost model",
		Header: []string{"serviced by", "latency"},
	}
	for l := topology.Level(0); l < topology.NumLevels; l++ {
		t.AddRow(l.String(), fmt.Sprintf("%.1f", m.Lat[l]))
	}
	t.Render(w)
}
