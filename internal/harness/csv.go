package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hybridloop/internal/loop"
	"hybridloop/internal/topology"
)

// CSV emitters: machine-readable data points for external analysis
// (pandas, gnuplot). One row per (strategy, P) or (strategy, level),
// matching the rendered tables.

// CSV returns the scalability experiment's data points.
func (r ScalResult) CSV() string {
	var b strings.Builder
	b.WriteString("workload,strategy,p,tp_mean_cycles,tp_relstd,ts_cycles,t1_mean_cycles,work_efficiency,scalability\n")
	for _, s := range append(append([]loop.Strategy{}, DefaultStrategies...), FF) {
		if _, ok := r.T1[s]; !ok {
			continue
		}
		for _, p := range r.Ps {
			st := r.TP[s][p]
			fmt.Fprintf(&b, "%s,%s,%d,%.6g,%.4f,%.6g,%.6g,%.4f,%.4f\n",
				csvEscape(r.Workload), ffName(s), p,
				st.Mean, st.RelStd(), r.Ts, r.T1[s].Mean,
				r.WorkEfficiency(s), r.ScalabilityAt(s, p))
		}
	}
	return b.String()
}

// CSV returns the affinity experiment's data points.
func (r AffinityResult) CSV() string {
	var b strings.Builder
	b.WriteString("workload,strategy,p,same_core_mean,same_core_relstd\n")
	for _, wn := range r.Workloads {
		for _, s := range DefaultStrategies {
			st, ok := r.Fracs[wn][s]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%s,%s,%d,%.6f,%.4f\n",
				csvEscape(wn), s.String(), r.P, st.Mean, st.RelStd())
		}
	}
	return b.String()
}

// CSV returns the memory-counter experiment's data points.
func (r MemCountsResult) CSV() string {
	var b strings.Builder
	b.WriteString("workload,strategy,p,level,accesses,inferred_latency_no_l1\n")
	for _, name := range r.Names {
		for _, s := range []loop.Strategy{loop.Hybrid, loop.DynamicStealing, loop.Static} {
			c, ok := r.Counts[name][s]
			if !ok {
				continue
			}
			inferred := c.InferredLatency(r.Lat, false)
			for l := topology.Level(0); l < topology.NumLevels; l++ {
				fmt.Fprintf(&b, "%s,%s,%d,%s,%d,%.6g\n",
					csvEscape(name), s.String(), r.P, l.String(), c[l], inferred)
			}
		}
	}
	return b.String()
}

// csvEscape quotes fields containing commas or quotes.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, `",`+"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// WriteCSV writes data into dir/name.csv with the same name sanitization
// as WriteSVG.
func WriteCSV(dir, name, data string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	safe := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			safe = append(safe, r)
		default:
			safe = append(safe, '_')
		}
	}
	return os.WriteFile(filepath.Join(dir, string(safe)+".csv"), []byte(data), 0o644)
}
