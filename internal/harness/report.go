package harness

import (
	"fmt"
	"html"
	"os"
	"strings"
)

// Report assembles experiment output — preformatted tables and SVG
// figures — into one self-contained HTML file, the artifact produced by
// cmd/paperrepro -html.
type Report struct {
	Title    string
	sections []reportSection
}

type reportSection struct {
	title string
	pre   string // preformatted text (escaped on render)
	svg   string // inline SVG (trusted, produced by internal/plot)
}

// AddText appends a preformatted text section (tables, logs).
func (r *Report) AddText(title, text string) {
	r.sections = append(r.sections, reportSection{title: title, pre: text})
}

// AddSVG appends a figure section with an inline SVG chart.
func (r *Report) AddSVG(title, svg string) {
	r.sections = append(r.sections, reportSection{title: title, svg: svg})
}

// Sections returns the number of sections added.
func (r *Report) Sections() int { return len(r.sections) }

// HTML renders the report.
func (r *Report) HTML() string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(r.Title))
	b.WriteString(`<style>
body { font-family: sans-serif; max-width: 1000px; margin: 24px auto; color: #222; }
h1 { border-bottom: 2px solid #d62728; padding-bottom: 8px; }
h2 { margin-top: 36px; color: #444; }
pre { background: #f6f6f6; border: 1px solid #ddd; border-radius: 4px;
      padding: 12px; overflow-x: auto; font-size: 12px; line-height: 1.4; }
figure { margin: 12px 0; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(r.Title))
	for _, s := range r.sections {
		if s.title != "" {
			fmt.Fprintf(&b, "<h2>%s</h2>\n", html.EscapeString(s.title))
		}
		if s.pre != "" {
			fmt.Fprintf(&b, "<pre>%s</pre>\n", html.EscapeString(s.pre))
		}
		if s.svg != "" {
			fmt.Fprintf(&b, "<figure>%s</figure>\n", s.svg)
		}
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	return os.WriteFile(path, []byte(r.HTML()), 0o644)
}
