package harness

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"hybridloop/internal/loop"
	"hybridloop/internal/sim"
	"hybridloop/internal/topology"
	"hybridloop/internal/workload"
)

func TestStat(t *testing.T) {
	s := NewStat([]float64{2, 4})
	if s.Mean != 3 || s.N != 2 {
		t.Fatalf("stat %+v", s)
	}
	if s.Std < 1.41 || s.Std > 1.42 {
		t.Fatalf("std = %v, want ~sqrt(2)", s.Std)
	}
	if rs := s.RelStd(); rs < 0.47 || rs > 0.48 {
		t.Fatalf("RelStd = %v", rs)
	}
	if NewStat(nil).Mean != 0 {
		t.Fatal("empty stat not zero")
	}
	single := NewStat([]float64{5})
	if single.Std != 0 || single.String() != "5" {
		t.Fatalf("single-sample stat %+v -> %q", single, single.String())
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "demo", Header: []string{"a", "bbbb"}}
	tab.AddRow("x", "y")
	tab.AddRow("longer", "z")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "a", "bbbb", "longer", "z", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSeries(t *testing.T) {
	var buf bytes.Buffer
	RenderSeries(&buf, "title", "y", []Series{
		{Name: "one", X: []int{1, 2}, Y: []float64{1, 2}},
		{Name: "two", X: []int{1, 2}, Y: []float64{2, 1}},
	})
	out := buf.String()
	if !strings.Contains(out, "one") || !strings.Contains(out, "2.00") {
		t.Fatalf("series render wrong:\n%s", out)
	}
	// Must not panic on empty input.
	RenderSeries(&buf, "t", "y", nil)
}

func benchWorkload() sim.Workload {
	return workload.Micro(workload.MicroConfig{
		N: 128, OuterLoops: 3, TotalBytes: 4 << 20, Balanced: true, ComputePerLine: 2,
	})
}

func TestScalabilityExperiment(t *testing.T) {
	res := Scalability{
		Machine:    topology.Paper(),
		Workload:   benchWorkload(),
		Ps:         []int{1, 8},
		Strategies: []loop.Strategy{loop.Hybrid, loop.Static},
		Seeds:      []uint64{1, 2},
	}.Run()
	if res.Ts <= 0 {
		t.Fatal("Ts not measured")
	}
	for _, s := range []loop.Strategy{loop.Hybrid, loop.Static} {
		if eff := res.WorkEfficiency(s); eff <= 0.5 || eff > 1.01 {
			t.Fatalf("%v: work efficiency %v", s, eff)
		}
		if sc := res.ScalabilityAt(s, 8); sc < 4 {
			t.Fatalf("%v: scalability at 8 = %v", s, sc)
		}
		if res.ScalabilityAt(s, 1) < 0.99 || res.ScalabilityAt(s, 1) > 1.01 {
			t.Fatalf("%v: scalability at 1 not ~1", s)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "scalability") {
		t.Fatal("render missing scalability section")
	}
}

func TestScalabilityMeasuresT1WhenAbsent(t *testing.T) {
	res := Scalability{
		Machine:    topology.Paper(),
		Workload:   benchWorkload(),
		Ps:         []int{8}, // no P=1 in the sweep
		Strategies: []loop.Strategy{loop.Hybrid},
		Seeds:      []uint64{1},
	}.Run()
	if res.T1[loop.Hybrid].Mean <= 0 {
		t.Fatal("T1 not measured when absent from the sweep")
	}
}

func TestAffinityExperiment(t *testing.T) {
	res := Affinity{
		Machine:    topology.Paper(),
		Workloads:  []sim.Workload{benchWorkload()},
		Strategies: []loop.Strategy{loop.Static, loop.DynamicStealing},
		Seeds:      []uint64{1},
	}.Run()
	st := res.Fracs[res.Workloads[0]][loop.Static]
	if st.Mean != 1.0 {
		t.Fatalf("static affinity %v, want 1", st.Mean)
	}
	dy := res.Fracs[res.Workloads[0]][loop.DynamicStealing]
	if dy.Mean > 0.6 {
		t.Fatalf("dynamic affinity %v unexpectedly high", dy.Mean)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "%") {
		t.Fatal("affinity render missing percentages")
	}
}

func TestMemCountsExperiment(t *testing.T) {
	res := MemCounts{
		Machine:   topology.Paper(),
		Workloads: []sim.Workload{benchWorkload()},
	}.Run()
	counts := res.Counts[res.Names[0]][loop.Hybrid]
	if counts.Total() == 0 {
		t.Fatal("no accesses recorded")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "inferred latency") {
		t.Fatal("memcounts render missing inferred latency")
	}
	RenderLatencies(&buf, topology.Paper())
	if !strings.Contains(buf.String(), "remote DRAM") {
		t.Fatal("latency table missing rows")
	}
}

func TestReportHTML(t *testing.T) {
	r := &Report{Title: "demo <report>"}
	r.AddText("tables & text", "col1  col2\n1     2")
	r.AddSVG("figure", `<svg xmlns="http://www.w3.org/2000/svg"><rect/></svg>`)
	if r.Sections() != 2 {
		t.Fatalf("%d sections", r.Sections())
	}
	h := r.HTML()
	for _, want := range []string{
		"demo &lt;report&gt;", "tables &amp; text", "<pre>", "<svg", "</html>",
	} {
		if !strings.Contains(h, want) {
			t.Fatalf("report missing %q:\n%s", want, h)
		}
	}
	if strings.Contains(h, "<report>") {
		t.Fatal("title not escaped")
	}
}

func TestWriteSVGSanitizesName(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSVG(dir, "fig/1: balanced 12MB", "<svg/>"); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("%d files", len(entries))
	}
	name := entries[0].Name()
	if strings.ContainsAny(name, "/: ") {
		t.Fatalf("unsanitized name %q", name)
	}
}

func TestCSVOutputs(t *testing.T) {
	res := Scalability{
		Machine:    topology.Paper(),
		Workload:   benchWorkload(),
		Ps:         []int{1, 8},
		Strategies: []loop.Strategy{loop.Hybrid},
		Seeds:      []uint64{1},
	}.Run()
	csv := res.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 { // header + 2 P values
		t.Fatalf("%d CSV lines:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "workload,strategy,p,") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.Contains(lines[1], "hybrid,1,") {
		t.Fatalf("bad row %q", lines[1])
	}

	aff := Affinity{
		Machine:    topology.Paper(),
		Workloads:  []sim.Workload{benchWorkload()},
		Strategies: []loop.Strategy{loop.Static},
		Seeds:      []uint64{1},
	}.Run()
	if !strings.Contains(aff.CSV(), "omp_static,32,1.000000") {
		t.Fatalf("affinity CSV wrong:\n%s", aff.CSV())
	}

	mem := MemCounts{Machine: topology.Paper(), Workloads: []sim.Workload{benchWorkload()}}.Run()
	if !strings.Contains(mem.CSV(), "remote DRAM") {
		t.Fatalf("memcounts CSV missing levels:\n%s", mem.CSV())
	}

	dir := t.TempDir()
	if err := WriteCSV(dir, "fig x/y", csv); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 || strings.ContainsAny(entries[0].Name(), "/ ") {
		t.Fatalf("bad CSV file: %v", entries)
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape("plain") != "plain" {
		t.Fatal("plain escaped")
	}
	if csvEscape(`a,b"c`) != `"a,b""c"` {
		t.Fatalf("got %q", csvEscape(`a,b"c`))
	}
}
