package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"hybridloop"
)

// AutoWorkload is one micro-workload of the Auto-vs-fixed ablation: a
// loop of N iterations whose iteration i costs Units(i) spin units.
type AutoWorkload struct {
	Name  string
	N     int
	Units func(i int) int
}

// AutoMicroWorkloads returns the three canonical shapes the ablation
// compares on, mirroring the paper's microbenchmark axes: uniform
// iterations (static affinity should win or tie), a skewed linear ramp
// (load balancing should win), and a fine-grained loop (scheduling
// overhead dominates, chunking and the serial shortcut matter).
func AutoMicroWorkloads() []AutoWorkload {
	return []AutoWorkload{
		{Name: "uniform", N: 2048, Units: func(i int) int { return 400 }},
		// 100..800 units, linear: the last iterations cost 8x the first.
		{Name: "skewed", N: 2048, Units: func(i int) int { return 100 + (700*i)/2048 }},
		{Name: "fine", N: 1 << 15, Units: func(i int) int { return 8 }},
	}
}

// spin burns roughly `units` multiply-adds and returns a value the
// caller must store, so the compiler cannot remove the work.
func spin(units int, seed float64) float64 {
	x := seed
	for i := 0; i < units; i++ {
		x = x*1.0000001 + 0.9999991
	}
	return x
}

// AutoResult is one workload's row of the ablation.
type AutoResult struct {
	Workload string
	// FixedNs maps each fixed strategy's display name to its mean ns/op.
	FixedNs map[string]float64
	// BestFixed / BestNs identify the cheapest fixed strategy.
	BestFixed string
	BestNs    float64
	// AutoNs is Auto's converged cost: the mean over the last quarter of
	// its invocations, after exploration has settled.
	AutoNs float64
	// AutoChoice names the configuration Auto committed to ("hybrid",
	// "vanilla x4 chunk", "serial", ... or "exploring" if it never
	// committed within the run).
	AutoChoice string
	// VsBestPct is Auto's converged overhead relative to the best fixed
	// strategy, in percent (negative: Auto beat every fixed strategy).
	VsBestPct float64
}

// AutoAblation measures, on the real runtime, how the Auto strategy's
// converged configuration compares to each fixed strategy per workload.
// Each (workload, strategy) cell runs on a fresh pool with the same seed,
// so tuning profiles never leak across cells and runs are reproducible
// modulo machine noise.
type AutoAblation struct {
	Workers   int // pool size; <= 0 selects GOMAXPROCS
	Seed      uint64
	Reps      int            // invocations per cell; <= 0 selects 80
	Workloads []AutoWorkload // nil selects AutoMicroWorkloads
}

// autoFixedStrategies is the fixed-strategy comparison set — the same
// candidates the tuner itself chooses among.
var autoFixedStrategies = []hybridloop.Strategy{
	hybridloop.Hybrid, hybridloop.DynamicStealing, hybridloop.Static, hybridloop.Guided,
}

// Run executes the ablation and returns one row per workload.
func (a AutoAblation) Run() []AutoResult {
	reps := a.Reps
	if reps <= 0 {
		reps = 80
	}
	workloads := a.Workloads
	if workloads == nil {
		workloads = AutoMicroWorkloads()
	}
	var results []AutoResult
	for _, wl := range workloads {
		out := make([]float64, wl.N)
		units := wl.Units
		body := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = spin(units(i), float64(i))
			}
		}
		res := AutoResult{Workload: wl.Name, FixedNs: map[string]float64{}}
		for _, s := range autoFixedStrategies {
			pool := hybridloop.NewPool(a.Workers, hybridloop.WithSeed(a.Seed))
			samples := timeLoop(pool, wl.N, body, reps, hybridloop.WithStrategy(s))
			pool.Close()
			// Mean of the second half: past cache warmup, same window
			// length as Auto's convergence window.
			ns := mean(samples[len(samples)/2:])
			res.FixedNs[s.String()] = ns
			if res.BestFixed == "" || ns < res.BestNs {
				res.BestFixed, res.BestNs = s.String(), ns
			}
		}
		pool := hybridloop.NewPool(a.Workers, hybridloop.WithSeed(a.Seed))
		samples := timeLoop(pool, wl.N, body, reps, hybridloop.WithAuto())
		res.AutoNs = mean(samples[len(samples)*3/4:])
		res.AutoChoice = committedChoice(pool.TunerSites())
		pool.Close()
		res.VsBestPct = (res.AutoNs/res.BestNs - 1) * 100
		results = append(results, res)
	}
	return results
}

// timeLoop runs reps invocations of the loop and returns each one's
// wall time in ns per iteration.
func timeLoop(pool *hybridloop.Pool, n int, body hybridloop.Body, reps int, opts ...hybridloop.ForOption) []float64 {
	samples := make([]float64, reps)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		pool.For(0, n, body, opts...)
		samples[r] = float64(time.Since(t0).Nanoseconds()) / float64(n)
	}
	return samples
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// committedChoice renders the configuration the tuner committed to for
// the site with the most decisions, or "exploring" if none committed.
func committedChoice(sites []hybridloop.TunerSite) string {
	var best *hybridloop.TunerSite
	for i := range sites {
		if best == nil || sites[i].Decisions > best.Decisions {
			best = &sites[i]
		}
	}
	if best == nil {
		return "none"
	}
	if best.State != "committed" || best.Committed < 0 || best.Committed >= len(best.Arms) {
		return "exploring"
	}
	arm := best.Arms[best.Committed].Arm
	if arm.Serial {
		return "serial"
	}
	name := hybridloop.Strategy(arm.Strategy).String()
	if arm.ChunkScale != 1 && arm.ChunkScale != 0 {
		name = fmt.Sprintf("%s x%g chunk", name, arm.ChunkScale)
	}
	return name
}

// RenderAutoResults writes the ablation as a table: per workload, every
// fixed strategy's ns/op, Auto's converged ns/op and choice, and Auto's
// distance from the best fixed strategy.
func RenderAutoResults(w io.Writer, results []AutoResult) {
	if len(results) == 0 {
		return
	}
	fixed := make([]string, 0, len(results[0].FixedNs))
	for name := range results[0].FixedNs {
		fixed = append(fixed, name)
	}
	sort.Strings(fixed)
	t := Table{
		Title:  "Auto vs fixed strategies (ns/iter; auto = converged mean of last quarter)",
		Header: append(append([]string{"workload"}, fixed...), "auto", "auto choice", "vs best"),
	}
	for _, r := range results {
		row := []string{r.Workload}
		for _, name := range fixed {
			cell := fmt.Sprintf("%.1f", r.FixedNs[name])
			if name == r.BestFixed {
				cell += "*"
			}
			row = append(row, cell)
		}
		row = append(row,
			fmt.Sprintf("%.1f", r.AutoNs),
			r.AutoChoice,
			fmt.Sprintf("%+.1f%%", r.VsBestPct))
		t.AddRow(row...)
	}
	t.Render(w)
}
