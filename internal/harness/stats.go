// Package harness runs the paper's experiments on the simulator: it
// sweeps strategies, core counts, and seeds, aggregates repetitions into
// means and standard deviations, and renders the same tables and series
// the paper's figures report (work efficiency Ts/T1, scalability T1/TP,
// affinity percentages, and per-level memory-access counts).
package harness

import (
	"fmt"
	"math"
)

// Stat is a mean with its sample standard deviation.
type Stat struct {
	Mean float64
	Std  float64
	N    int
}

// NewStat aggregates the samples.
func NewStat(samples []float64) Stat {
	n := len(samples)
	if n == 0 {
		return Stat{}
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(n)
	var ss float64
	for _, s := range samples {
		d := s - mean
		ss += d * d
	}
	std := 0.0
	if n > 1 {
		std = math.Sqrt(ss / float64(n-1))
	}
	return Stat{Mean: mean, Std: std, N: n}
}

// RelStd returns the standard deviation as a fraction of the mean (the
// paper reports "standard deviation less than 4%").
func (s Stat) RelStd() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Std / s.Mean
}

func (s Stat) String() string {
	if s.N <= 1 {
		return fmt.Sprintf("%.3g", s.Mean)
	}
	return fmt.Sprintf("%.3g±%.1f%%", s.Mean, 100*s.RelStd())
}
