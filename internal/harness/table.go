package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple text table with a title, a header row, and body rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a body row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one named line of a scalability plot: Y value per X (cores).
type Series struct {
	Name string
	X    []int
	Y    []float64
}

// RenderSeries writes a set of series as an aligned text matrix (one row
// per series, one column per X value) followed by an ASCII chart.
func RenderSeries(w io.Writer, title, yLabel string, series []Series) {
	if len(series) == 0 {
		return
	}
	t := Table{Title: title, Header: []string{yLabel + " \\ P"}}
	for _, x := range series[0].X {
		t.Header = append(t.Header, fmt.Sprintf("%d", x))
	}
	for _, s := range series {
		row := []string{s.Name}
		for _, y := range s.Y {
			row = append(row, fmt.Sprintf("%.2f", y))
		}
		t.AddRow(row...)
	}
	t.Render(w)
	renderChart(w, series)
}

// renderChart draws a crude ASCII scatter of the series (rows = value
// bins, columns = X positions), enough to eyeball curve shapes in a
// terminal.
func renderChart(w io.Writer, series []Series) {
	const height = 12
	var max float64
	for _, s := range series {
		for _, y := range s.Y {
			if y > max {
				max = y
			}
		}
	}
	if max <= 0 {
		return
	}
	marks := "hvsdgf" // hybrid, vanilla, static, dynamic, guided, ff
	grid := make([][]byte, height)
	cols := len(series[0].X)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*4))
	}
	for si, s := range series {
		mark := byte('0' + si)
		if si < len(marks) {
			mark = marks[si]
		}
		for xi, y := range s.Y {
			row := int((1 - y/max) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			col := xi*4 + 2
			if grid[row][col] == ' ' {
				grid[row][col] = mark
			} else {
				grid[row][col] = '*' // overlap
			}
		}
	}
	fmt.Fprintf(w, "  %.2f\n", max)
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", cols*4))
	legend := make([]string, 0, len(series))
	for si, s := range series {
		mark := byte('0' + si)
		if si < len(marks) {
			mark = marks[si]
		}
		legend = append(legend, fmt.Sprintf("%c=%s", mark, s.Name))
	}
	fmt.Fprintf(w, "  %s\n", strings.Join(legend, " "))
}
