package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"hybridloop/internal/loop"
	"hybridloop/internal/plot"
	"hybridloop/internal/topology"
)

// SVGChart returns the scalability result as a line chart in the paper's
// Figure 1/3 style (one line per strategy, cores on the X axis).
func (r ScalResult) SVGChart() *plot.LineChart {
	c := &plot.LineChart{
		Title:  fmt.Sprintf("%s — scalability (T1/TP)", r.Workload),
		XLabel: "cores",
		YLabel: "T1/TP",
	}
	for _, p := range r.Ps {
		c.XTicks = append(c.XTicks, fmt.Sprint(p))
	}
	for _, s := range append(append([]loop.Strategy{}, DefaultStrategies...), FF) {
		if _, ok := r.T1[s]; !ok {
			continue
		}
		sr := plot.Series{Name: ffName(s)}
		for _, p := range r.Ps {
			sr.Y = append(sr.Y, r.ScalabilityAt(s, p))
		}
		c.Series = append(c.Series, sr)
	}
	return c
}

// SVGChart returns the affinity result as a grouped bar chart (the
// Figure 2 table as bars: one group per workload, one bar per strategy).
func (r AffinityResult) SVGChart() *plot.BarChart {
	c := &plot.BarChart{
		Title:  fmt.Sprintf("Same-core iteration %% across consecutive loops (P=%d)", r.P),
		YLabel: "same-core %",
		Groups: r.Workloads,
		YMax:   100,
	}
	for _, s := range DefaultStrategies {
		sr := plot.Series{Name: s.String()}
		any := false
		for _, wn := range r.Workloads {
			if st, ok := r.Fracs[wn][s]; ok {
				sr.Y = append(sr.Y, 100*st.Mean)
				any = true
			} else {
				sr.Y = append(sr.Y, 0)
			}
		}
		if any {
			c.Series = append(c.Series, sr)
		}
	}
	return c
}

// SVGCharts returns one bar chart per workload: hierarchy levels as
// groups, strategies as bars, log-free raw counts (the Figure 4 shape).
func (r MemCountsResult) SVGCharts() []*plot.BarChart {
	var out []*plot.BarChart
	for _, name := range r.Names {
		c := &plot.BarChart{
			Title:  fmt.Sprintf("%s — accesses serviced per level (P=%d)", name, r.P),
			YLabel: "accesses",
		}
		for l := topology.Level(0); l < topology.NumLevels; l++ {
			c.Groups = append(c.Groups, l.String())
		}
		for _, s := range []loop.Strategy{loop.Hybrid, loop.DynamicStealing, loop.Static} {
			counts, ok := r.Counts[name][s]
			if !ok {
				continue
			}
			sr := plot.Series{Name: s.String()}
			for l := topology.Level(0); l < topology.NumLevels; l++ {
				sr.Y = append(sr.Y, float64(counts[l]))
			}
			c.Series = append(c.Series, sr)
		}
		out = append(out, c)
	}
	return out
}

// WriteSVG writes the chart-producing result into dir with a sanitized
// file name, creating dir if needed. A nil error means the file exists.
func WriteSVG(dir, name, svg string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	safe := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			safe = append(safe, r)
		default:
			safe = append(safe, '_')
		}
	}
	return os.WriteFile(filepath.Join(dir, string(safe)+".svg"), []byte(svg), 0o644)
}
