package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestAutoAblationSmoke runs a miniature version of the Auto-vs-fixed
// ablation. Machine noise makes tight ratio assertions flaky in CI, so
// this checks structure and sanity: every cell measured, a best fixed
// strategy picked, Auto converged to a nameable choice, and its cost in
// the same order of magnitude as the best fixed strategy. The real 15%
// convergence claim is demonstrated by `loopbench -strategy auto`.
func TestAutoAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation timing loop")
	}
	results := AutoAblation{
		Workers: 4,
		Seed:    42,
		Reps:    48,
		Workloads: []AutoWorkload{
			{Name: "uniform", N: 512, Units: func(i int) int { return 200 }},
			{Name: "fine", N: 1 << 13, Units: func(i int) int { return 8 }},
		},
	}.Run()
	if len(results) != 2 {
		t.Fatalf("2 workloads produced %d results", len(results))
	}
	for _, r := range results {
		if len(r.FixedNs) != 4 {
			t.Fatalf("%s: %d fixed strategies measured, want 4", r.Workload, len(r.FixedNs))
		}
		for name, ns := range r.FixedNs {
			if ns <= 0 {
				t.Fatalf("%s: fixed strategy %s measured %v ns/iter", r.Workload, name, ns)
			}
		}
		if r.BestFixed == "" || r.BestNs <= 0 {
			t.Fatalf("%s: no best fixed strategy: %+v", r.Workload, r)
		}
		if r.AutoNs <= 0 {
			t.Fatalf("%s: auto measured %v ns/iter", r.Workload, r.AutoNs)
		}
		if r.AutoChoice == "" || r.AutoChoice == "none" {
			t.Fatalf("%s: auto left no tuner profile", r.Workload)
		}
		// Very loose sanity bound; the real threshold lives in loopbench.
		if r.AutoNs > 10*r.BestNs {
			t.Fatalf("%s: auto converged to %.1f ns/iter, best fixed is %.1f",
				r.Workload, r.AutoNs, r.BestNs)
		}
	}
	var buf bytes.Buffer
	RenderAutoResults(&buf, results)
	out := buf.String()
	for _, want := range []string{"uniform", "fine", "auto choice", "vanilla"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
