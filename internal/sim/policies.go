package sim

import (
	"fmt"

	"hybridloop/internal/affinity"
	"hybridloop/internal/core"
	"hybridloop/internal/loop"
)

// policy drives one core's scheduling decisions for one loop. step
// performs the core's next action — executing a chunk, grabbing from a
// queue, attempting a steal, claiming a partition — advancing the core's
// clock, and returns false once the core is permanently finished with the
// loop (it will neither find nor receive more work).
type policy interface {
	step(core int) bool
}

func (e *engine) newPolicy(s loop.Strategy, l *Loop, tr *affinity.Tracker, chunk int) policy {
	switch s {
	case loop.Static:
		return newStaticPol(e, l, tr)
	case loop.DynamicSharing:
		return newSharePol(e, l, tr, chunk)
	case loop.Guided:
		return newGuidedPol(e, l, tr, chunk)
	case loop.DynamicStealing:
		return newStealPol(e, l, tr, chunk)
	case loop.Hybrid:
		return newHybridPol(e, l, tr, chunk)
	}
	panic(fmt.Sprintf("sim: unknown strategy %v", s))
}

// span is a mutable half-open iteration range owned by one core.
type span struct{ next, end int }

func (s *span) len() int    { return s.end - s.next }
func (s *span) empty() bool { return s.next >= s.end }
func (s *span) take(n int) (lo, hi int) {
	lo = s.next
	hi = lo + n
	if hi > s.end {
		hi = s.end
	}
	s.next = hi
	return lo, hi
}

// stealHalf removes and returns the upper half of the span (the piece a
// thief takes from the topmost divide-and-conquer frame).
func (s *span) stealHalf() span {
	mid := s.next + (s.end-s.next+1)/2
	st := span{mid, s.end}
	s.end = mid
	return st
}

// stealBack removes and returns the upper num/den fraction of the span
// (at least one iteration, never the whole span) — the larger transfer a
// cross-socket thief takes under the hierarchical policy, mirroring
// deque.RangeSlot.StealBack.
func (s *span) stealBack(num, den int) span {
	take := (s.end - s.next) * num / den
	if take < 1 {
		take = 1
	}
	st := span{s.end - take, s.end}
	s.end -= take
	return st
}

// --- static -----------------------------------------------------------

// staticPol: OpenMP schedule(static) / FastFlow static. Core c owns the
// c-th equal partition; no redistribution ever happens, so an unbalanced
// loop finishes when the most loaded core does.
type staticPol struct {
	e     *engine
	l     *Loop
	tr    *affinity.Tracker
	spans []span
	chunk int
}

func newStaticPol(e *engine, l *Loop, tr *affinity.Tracker) *staticPol {
	parts := (core.Range{Begin: 0, End: l.N}).Split(e.p)
	spans := make([]span, e.p)
	for i, pr := range parts {
		spans[i] = span{pr.Begin, pr.End}
	}
	// Static partitioning is done by the compiler: cores execute their
	// partition in large chunks with negligible per-chunk bookkeeping. We
	// still chunk (for cache-interleaving realism in the event loop) but
	// at a coarse granularity.
	chunk := l.N / (4 * e.p)
	if chunk < 1 {
		chunk = 1
	}
	return &staticPol{e: e, l: l, tr: tr, spans: spans, chunk: chunk}
}

func (p *staticPol) step(core int) bool {
	s := &p.spans[core]
	if s.empty() {
		return false
	}
	lo, hi := s.take(p.chunk)
	p.e.execChunk(core, p.l, p.tr, lo, hi)
	return true
}

// --- dynamic work sharing ----------------------------------------------

// sharePol: OpenMP schedule(dynamic, chunk). All cores grab fixed-size
// chunks from one central queue; concurrent grabs serialize.
type sharePol struct {
	e      *engine
	l      *Loop
	tr     *affinity.Tracker
	next   int
	chunk  int
	freeAt float64 // time the central queue next becomes free
}

func newSharePol(e *engine, l *Loop, tr *affinity.Tracker, chunk int) *sharePol {
	return &sharePol{e: e, l: l, tr: tr, chunk: chunk}
}

// grabCentral models one serialized access to the central queue: the core
// waits for the queue, holds it for SharedQueueSerial cycles, and pays
// SharedQueueAccess total.
func grabCentral(e *engine, core int, freeAt *float64) {
	acquire := e.clock[core]
	if *freeAt > acquire {
		acquire = *freeAt
	}
	*freeAt = acquire + e.m.Cost.SharedQueueSerial
	e.clock[core] = acquire + e.m.Cost.SharedQueueAccess
}

func (p *sharePol) step(core int) bool {
	if p.next >= p.l.N {
		return false
	}
	grabCentral(p.e, core, &p.freeAt)
	lo := p.next
	hi := lo + p.chunk
	if hi > p.l.N {
		hi = p.l.N
	}
	p.next = hi
	p.e.execChunk(core, p.l, p.tr, lo, hi)
	return true
}

// --- guided work sharing -------------------------------------------------

// guidedPol: OpenMP schedule(guided, chunk). Like sharePol but the grabbed
// chunk shrinks in proportion to remaining/(2P), floored at the minimum
// chunk — fewer queue accesses, hence less serialization.
type guidedPol struct {
	e        *engine
	l        *Loop
	tr       *affinity.Tracker
	next     int
	minChunk int
	freeAt   float64
}

func newGuidedPol(e *engine, l *Loop, tr *affinity.Tracker, chunk int) *guidedPol {
	return &guidedPol{e: e, l: l, tr: tr, minChunk: chunk}
}

func (p *guidedPol) step(core int) bool {
	if p.next >= p.l.N {
		return false
	}
	grabCentral(p.e, core, &p.freeAt)
	remaining := p.l.N - p.next
	size := (remaining + 2*p.e.p - 1) / (2 * p.e.p)
	if size < p.minChunk {
		size = p.minChunk
	}
	lo := p.next
	hi := lo + size
	if hi > p.l.N {
		hi = p.l.N
	}
	p.next = hi
	p.e.execChunk(core, p.l, p.tr, lo, hi)
	return true
}

// --- dynamic work stealing (vanilla cilk_for) ----------------------------

// stealPol models the vanilla Cilk cilk_for: the initiating core owns the
// whole range (the root of the divide-and-conquer spawn tree); idle cores
// steal the topmost frame, i.e. the upper half of a victim's remaining
// range — the well-known equivalence between D&C loop spawning and lazy
// binary splitting. Work executes chunk by chunk from the front.
type stealPol struct {
	e         *engine
	l         *Loop
	tr        *affinity.Tracker
	spans     []span
	chunk     int
	remaining int
}

func newStealPol(e *engine, l *Loop, tr *affinity.Tracker, chunk int) *stealPol {
	spans := make([]span, e.p)
	spans[0] = span{0, l.N}
	return &stealPol{e: e, l: l, tr: tr, spans: spans, chunk: chunk, remaining: l.N}
}

func (p *stealPol) step(core int) bool {
	s := &p.spans[core]
	if !s.empty() {
		lo, hi := s.take(p.chunk)
		p.remaining -= hi - lo
		p.e.execChunk(core, p.l, p.tr, lo, hi)
		return true
	}
	if p.remaining <= 0 {
		return false
	}
	stealRound(p.e, core, p.spans, p.chunk)
	return true
}

// stealRound performs one steal round for core under the configured
// victim policy. Each probe costs StealAttempt; success costs
// StealSuccess extra; an empty-handed round costs a backoff before the
// next retry.
func stealRound(e *engine, core int, spans []span, chunk int) bool {
	if e.cfg.Victim == VictimHierarchical {
		return stealRoundHier(e, core, spans, chunk)
	}
	return stealRoundUniform(e, core, spans, chunk)
}

// stealRoundUniform probes all other cores in one random rotation,
// stealing the upper half of the first victim whose span is worth
// splitting (more than chunk iterations). Kept bit-identical to the
// pre-topology behaviour — RNG draws, costs, and rotation (including its
// first-probe bias) — so seeded golden runs are unchanged; remote-steal
// attribution is the only addition (a counter, no cost).
func stealRoundUniform(e *engine, core int, spans []span, chunk int) bool {
	n := len(spans)
	start := e.gen.Intn(n)
	probes := 0
	for k := 0; k < n; k++ {
		v := (start + k) % n
		if v == core {
			continue
		}
		probes++
		if spans[v].len() > chunk {
			var stolen span
			if e.cfg.Steal == StealChunk {
				// Ablation: transfer only one chunk per balancing event.
				stolen = span{spans[v].end - chunk, spans[v].end}
				spans[v].end -= chunk
			} else {
				stolen = spans[v].stealHalf()
			}
			spans[core] = stolen
			e.clock[core] += float64(probes)*e.m.Cost.StealAttempt + e.m.Cost.StealSuccess
			e.steals++
			if e.m.Socket(v) != e.m.Socket(core) {
				e.remoteSteals++
			}
			return true
		}
	}
	e.clock[core] += float64(probes)*e.m.Cost.StealAttempt + e.m.Cost.StealBackoff
	e.failedSteals++
	return false
}

// stealRoundHier sweeps hierarchically: own-socket victims first, then
// remote sockets, each tier rotating from a uniformly drawn start over
// its precomputed self-free list (so every victim is first-probed with
// equal probability — no rotation bias). A cross-socket steal transfers
// ¾ of the victim's remainder instead of half, amortizing the remote-L3
// line cost over more iterations per transfer; the StealChunk ablation
// keeps its one-chunk transfers at either distance.
func stealRoundHier(e *engine, core int, spans []span, chunk int) bool {
	probes := 0
	for tier, victims := range [2][]int{e.localV[core], e.remoteV[core]} {
		n := len(victims)
		if n == 0 {
			continue
		}
		remote := tier == 1
		start := 0
		if n > 1 {
			start = e.gen.Intn(n)
		}
		for k := 0; k < n; k++ {
			v := victims[(start+k)%n]
			probes++
			if spans[v].len() > chunk {
				var stolen span
				switch {
				case e.cfg.Steal == StealChunk:
					stolen = span{spans[v].end - chunk, spans[v].end}
					spans[v].end -= chunk
				case remote:
					stolen = spans[v].stealBack(3, 4)
				default:
					stolen = spans[v].stealHalf()
				}
				spans[core] = stolen
				e.clock[core] += float64(probes)*e.m.Cost.StealAttempt + e.m.Cost.StealSuccess
				e.steals++
				if remote {
					e.remoteSteals++
				}
				return true
			}
		}
	}
	e.clock[core] += float64(probes)*e.m.Cost.StealAttempt + e.m.Cost.StealBackoff
	e.failedSteals++
	return false
}

// --- hybrid ---------------------------------------------------------------

// hybridPol is the paper's scheme in the simulator: each arriving core
// walks its XOR claim sequence over the shared partition structure; a
// claimed partition is executed chunk by chunk and is itself stealable
// (doWork is an ordinary D&C parallel loop). A core whose claim sequence
// is exhausted — or whose designated partition was already taken — reverts
// to randomized work stealing over the other cores' current spans.
type hybridPol struct {
	e         *engine
	l         *Loop
	tr        *affinity.Tracker
	ps        *core.PartitionSet
	claimers  []*core.Claimer
	spans     []span   // current span per core (claimed partition or stolen piece)
	hoard     [][]span // ClaimEager: per-core queues of pre-claimed partitions
	chunk     int
	remaining int
}

func newHybridPol(e *engine, l *Loop, tr *affinity.Tracker, chunk int) *hybridPol {
	rf := e.cfg.RFactor
	if rf < 1 {
		rf = 1
	}
	ps := core.NewPartitionSetR(0, l.N, core.NextPow2(e.p*rf))
	claimers := make([]*core.Claimer, e.p)
	for c := range claimers {
		claimers[c] = core.NewClaimer(ps, c)
	}
	return &hybridPol{
		e: e, l: l, tr: tr,
		ps:        ps,
		claimers:  claimers,
		spans:     make([]span, e.p),
		hoard:     make([][]span, e.p),
		chunk:     chunk,
		remaining: l.N,
	}
}

func (p *hybridPol) step(core int) bool {
	s := &p.spans[core]
	if !s.empty() {
		lo, hi := s.take(p.chunk)
		p.remaining -= hi - lo
		p.e.execChunk(core, p.l, p.tr, lo, hi)
		return true
	}
	// ClaimEager ablation: drain the pre-claimed hoard first.
	if len(p.hoard[core]) > 0 {
		p.spans[core] = p.hoard[core][0]
		p.hoard[core] = p.hoard[core][1:]
		return true
	}
	// Try the claim sequence (Algorithm 3). Charge one Claim per attempt,
	// failed attempts included.
	cl := p.claimers[core]
	if !cl.Done() {
		if p.e.cfg.Claim == ClaimEager {
			// Help-first: walk the whole sequence now, hoarding spans.
			for {
				before := cl.Failed()
				r, ok := cl.Next()
				attempts := cl.Failed() - before
				if ok {
					attempts++
				}
				p.e.clock[core] += float64(attempts) * p.e.m.Cost.Claim
				p.e.claims += int64(attempts)
				p.e.failedClaims += int64(cl.Failed() - before)
				if !ok {
					break
				}
				part := p.ps.Partition(r)
				p.hoard[core] = append(p.hoard[core], span{part.Begin, part.End})
			}
			if len(p.hoard[core]) > 0 {
				p.spans[core] = p.hoard[core][0]
				p.hoard[core] = p.hoard[core][1:]
				return true
			}
		} else {
			before := cl.Failed()
			r, ok := cl.Next()
			attempts := cl.Failed() - before
			if ok {
				attempts++ // the successful attempt
			}
			p.e.clock[core] += float64(attempts) * p.e.m.Cost.Claim
			p.e.claims += int64(attempts)
			p.e.failedClaims += int64(cl.Failed() - before)
			if ok {
				part := p.ps.Partition(r)
				p.spans[core] = span{part.Begin, part.End}
				return true
			}
		}
		// Claim sequence exhausted or designated partition taken: fall
		// through to work stealing on this or a later step.
	}
	if p.remaining <= 0 {
		return false
	}
	// In the eager ablation, hoarded whole partitions are stealable (they
	// would sit in the hoarder's deque under help-first scheduling).
	if p.e.cfg.Claim == ClaimEager && p.stealHoard(core) {
		return true
	}
	stealRound(p.e, core, p.spans, p.chunk)
	return true
}

// stealHoard steals one whole pre-claimed partition from a random victim's
// hoard; returns false if no hoards are populated.
func (p *hybridPol) stealHoard(core int) bool {
	n := p.e.p
	start := p.e.gen.Intn(n)
	probes := 0
	for k := 0; k < n; k++ {
		v := (start + k) % n
		if v == core {
			continue
		}
		probes++
		if len(p.hoard[v]) > 0 {
			last := len(p.hoard[v]) - 1
			p.spans[core] = p.hoard[v][last]
			p.hoard[v] = p.hoard[v][:last]
			p.e.clock[core] += float64(probes)*p.e.m.Cost.StealAttempt + p.e.m.Cost.StealSuccess
			p.e.steals++
			if p.e.m.Socket(v) != p.e.m.Socket(core) {
				p.e.remoteSteals++
			}
			return true
		}
	}
	return false
}
