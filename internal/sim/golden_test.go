package sim_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"hybridloop/internal/loop"
	"hybridloop/internal/sim"
	"hybridloop/internal/topology"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata golden datasets")

// goldenSimEntry pins one simulator run exactly. Floats are stored as
// hex strings (strconv 'x' format) so the JSON round-trip is bit-exact —
// the point of a golden test is exact match, not tolerance.
//
// Entries are keyed by (machine, victim, strategy, p): machine is the
// socket layout ("4x8" is the paper testbed, "8x8"/"8x32" the scaled
// 64/256-core grids) and victim the steal victim-ordering policy. The
// key is what lets new topology grids extend the dataset without
// touching existing rows — see TestGoldenEquivalence.
type goldenSimEntry struct {
	Machine      string `json:"machine"`
	Victim       string `json:"victim"`
	Strategy     string `json:"strategy"`
	P            int    `json:"p"`
	Cycles       string `json:"cycles_hex"`
	Accesses     int64  `json:"accesses"`
	Affinity     string `json:"affinity_hex"`
	Steals       int64  `json:"steals"`
	FailedSteals int64  `json:"failed_steals"`
	RemoteSteals int64  `json:"remote_steals"`
	Claims       int64  `json:"claims"`
	FailedClaims int64  `json:"failed_claims"`
	Chunks       int64  `json:"chunks"`
}

// key identifies the run configuration an entry pins; everything else in
// the entry is the pinned outcome.
func (e goldenSimEntry) key() string {
	return fmt.Sprintf("%s/%s/%s/p%d", e.Machine, e.Victim, e.Strategy, e.P)
}

func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// goldenSimCase is one grid point: a machine shape plus the run config.
type goldenSimCase struct {
	machineName string
	machine     topology.Machine
	victim      sim.VictimPolicy
	strategy    loop.Strategy
	p           int
}

// goldenSimGrid enumerates the pinned configurations:
//
//   - The paper's 4×8 testbed, uniform victim policy, every strategy at
//     P ∈ {4, 32} — the original seeded rows, whose values must never
//     change without a deliberate regen.
//   - Scaled 8-socket machines (8×8 = 64 cores, 8×32 = 256 cores), both
//     victim policies, for the two strategies that steal (vanilla work
//     stealing and the hybrid scheme) at full machine width — the grids
//     behind the hierarchical-stealing experiment in EXPERIMENTS.md.
func goldenSimGrid() []goldenSimCase {
	var cases []goldenSimCase
	for _, s := range allStrategies() {
		for _, p := range []int{4, 32} {
			cases = append(cases, goldenSimCase{
				machineName: "4x8", machine: topology.Paper(),
				victim: sim.VictimUniform, strategy: s, p: p,
			})
		}
	}
	for _, m := range []struct {
		name             string
		sockets, percore int
	}{{"8x8", 8, 8}, {"8x32", 8, 32}} {
		for _, v := range []sim.VictimPolicy{sim.VictimUniform, sim.VictimHierarchical} {
			for _, s := range []loop.Strategy{loop.DynamicStealing, loop.Hybrid} {
				cases = append(cases, goldenSimCase{
					machineName: m.name,
					machine:     topology.Scaled(m.sockets, m.percore),
					victim:      v, strategy: s, p: m.sockets * m.percore,
				})
			}
		}
	}
	return cases
}

func goldenSimRuns() []goldenSimEntry {
	// Unbalanced micro workload: exercises stealing, claims, and the
	// hybrid fallback — the interesting scheduling behaviour to pin.
	w := microWorkload(false, 8)
	var out []goldenSimEntry
	for _, c := range goldenSimGrid() {
		r := sim.Run(sim.Config{
			Machine: c.machine, P: c.p, Strategy: c.strategy,
			Victim: c.victim, Seed: 7,
		}, w)
		out = append(out, goldenSimEntry{
			Machine:      c.machineName,
			Victim:       c.victim.String(),
			Strategy:     c.strategy.String(),
			P:            c.p,
			Cycles:       hexFloat(r.Cycles),
			Accesses:     r.Counts.Total(),
			Affinity:     hexFloat(r.Affinity),
			Steals:       r.Steals,
			FailedSteals: r.FailedSteals,
			RemoteSteals: r.RemoteSteals,
			Claims:       r.Claims,
			FailedClaims: r.FailedClaims,
			Chunks:       r.Chunks,
		})
	}
	return out
}

// TestGoldenEquivalence re-runs the pinned simulator configurations and
// demands exact agreement with testdata/golden_sim.json: same simulated
// cycles to the bit, same steal/claim/chunk counts. A scheduler-policy
// refactor that changes any of these must regenerate the dataset
// deliberately (go test ./internal/sim -run Golden -update, or
// make golden-regen) and justify the diff — "tests still pass" is not
// evidence the policies are unchanged.
//
// Entries are matched by key (machine/victim/strategy/p), and -update
// MERGES rather than rewrites: rows whose key is in the current grid are
// regenerated, rows whose key has left the grid are preserved (and
// logged) so extending the grid — adding a machine shape or victim
// policy — can never silently invalidate previously pinned rows.
func TestGoldenEquivalence(t *testing.T) {
	path := filepath.Join("testdata", "golden_sim.json")
	got := goldenSimRuns()

	if *updateGolden {
		merged := got
		byKey := map[string]bool{}
		for _, e := range got {
			byKey[e.key()] = true
		}
		if data, err := os.ReadFile(path); err == nil {
			var old []goldenSimEntry
			if err := json.Unmarshal(data, &old); err != nil {
				t.Fatalf("parse existing %s before merge: %v", path, err)
			}
			for _, e := range old {
				if !byKey[e.key()] {
					t.Logf("preserving row %s (no longer in the grid)", e.key())
					merged = append(merged, e)
				}
			}
		}
		data, err := json.MarshalIndent(merged, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d runs (%d from the current grid)", path, len(merged), len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden dataset (regenerate with -update): %v", err)
	}
	var want []goldenSimEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	byKey := map[string]goldenSimEntry{}
	for _, e := range want {
		if prev, dup := byKey[e.key()]; dup && prev != e {
			t.Errorf("golden dataset has conflicting rows for %s", e.key())
		}
		byKey[e.key()] = e
	}
	for _, g := range got {
		w, ok := byKey[g.key()]
		if !ok {
			t.Errorf("run %s not pinned in the golden dataset — regenerate with -update", g.key())
			continue
		}
		if g != w {
			t.Errorf("run %s diverged from golden:\n got %+v\nwant %+v", g.key(), g, w)
		}
	}
}

// TestGoldenCoversAllStrategies guards the harness itself: every policy
// in the simulator's strategy set must appear in the pinned grid, so a
// newly added strategy cannot silently ship unpinned; likewise both
// victim policies must be pinned on an 8-socket machine.
func TestGoldenCoversAllStrategies(t *testing.T) {
	strategies := map[string]bool{}
	victims := map[string]bool{}
	for _, e := range goldenSimRuns() {
		strategies[e.Strategy] = true
		if e.Machine != "4x8" {
			victims[e.Victim] = true
		}
	}
	for _, s := range allStrategies() {
		if !strategies[s.String()] {
			t.Errorf("strategy %v missing from the golden grid", s)
		}
	}
	for _, v := range []sim.VictimPolicy{sim.VictimUniform, sim.VictimHierarchical} {
		if !victims[v.String()] {
			t.Errorf("victim policy %v missing from the scaled golden grids", v)
		}
	}
}
