package sim_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"hybridloop/internal/sim"
	"hybridloop/internal/topology"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata golden datasets")

// goldenSimEntry pins one simulator run exactly. Floats are stored as
// hex strings (strconv 'x' format) so the JSON round-trip is bit-exact —
// the point of a golden test is exact match, not tolerance.
type goldenSimEntry struct {
	Strategy     string `json:"strategy"`
	P            int    `json:"p"`
	Cycles       string `json:"cycles_hex"`
	Accesses     int64  `json:"accesses"`
	Affinity     string `json:"affinity_hex"`
	Steals       int64  `json:"steals"`
	FailedSteals int64  `json:"failed_steals"`
	Claims       int64  `json:"claims"`
	FailedClaims int64  `json:"failed_claims"`
	Chunks       int64  `json:"chunks"`
}

func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func goldenSimRuns() []goldenSimEntry {
	// Unbalanced micro workload: exercises stealing, claims, and the
	// hybrid fallback — the interesting scheduling behaviour to pin.
	w := microWorkload(false, 8)
	var out []goldenSimEntry
	for _, s := range allStrategies() {
		for _, p := range []int{4, 32} {
			r := sim.Run(sim.Config{Machine: topology.Paper(), P: p, Strategy: s, Seed: 7}, w)
			out = append(out, goldenSimEntry{
				Strategy:     s.String(),
				P:            p,
				Cycles:       hexFloat(r.Cycles),
				Accesses:     r.Counts.Total(),
				Affinity:     hexFloat(r.Affinity),
				Steals:       r.Steals,
				FailedSteals: r.FailedSteals,
				Claims:       r.Claims,
				FailedClaims: r.FailedClaims,
				Chunks:       r.Chunks,
			})
		}
	}
	return out
}

// TestGoldenEquivalence re-runs the pinned simulator configurations and
// demands exact agreement with testdata/golden_sim.json: same simulated
// cycles to the bit, same steal/claim/chunk counts. A scheduler-policy
// refactor that changes any of these must regenerate the dataset
// deliberately (go test ./internal/sim -run Golden -update, or
// make golden-regen) and justify the diff — "tests still pass" is not
// evidence the policies are unchanged.
func TestGoldenEquivalence(t *testing.T) {
	path := filepath.Join("testdata", "golden_sim.json")
	got := goldenSimRuns()

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d runs", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden dataset (regenerate with -update): %v", err)
	}
	var want []goldenSimEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden dataset has %d runs, harness produced %d — regenerate with -update", len(want), len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("run %s/P=%d diverged from golden:\n got %+v\nwant %+v",
				got[i].Strategy, got[i].P, got[i], want[i])
		}
	}
}

// TestGoldenCoversAllStrategies guards the harness itself: every policy
// in the simulator's strategy set must appear in the pinned grid, so a
// newly added strategy cannot silently ship unpinned.
func TestGoldenCoversAllStrategies(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range goldenSimRuns() {
		seen[e.Strategy] = true
	}
	for _, s := range allStrategies() {
		if !seen[s.String()] {
			t.Errorf("strategy %v missing from the golden grid", s)
		}
	}
}
