// Package sim is a deterministic discrete-event simulator of parallel-loop
// scheduling on a NUMA multicore. It exists because the paper's evaluation
// (Figures 1–4) was run on a 32-core, four-socket machine with hardware
// performance counters, neither of which is available here; the simulator
// reproduces the *relative* behaviour those figures report — scalability
// curves, crossover points, affinity percentages, and the distribution of
// memory accesses over the cache hierarchy — on the paper's topology
// (internal/topology) with an exact cache model (internal/memmodel).
//
// The simulation advances per-core virtual clocks at chunk granularity: a
// core's scheduling action (grab a chunk, attempt a steal, claim a
// partition) costs cycles from the machine's cost model, and executing a
// chunk costs its iterations' compute plus the memory-hierarchy cost of
// the bytes they walk. Cores interleave in global time order through an
// event loop, so cache and NUMA effects play out realistically. All five
// strategies of internal/loop are implemented as simulator policies over
// the same shared algorithm core (internal/core for the hybrid claiming
// heuristic), and every run is exactly reproducible from its seed.
package sim

import (
	"fmt"

	"hybridloop/internal/affinity"
	"hybridloop/internal/loop"
	"hybridloop/internal/memmodel"
	"hybridloop/internal/rng"
	"hybridloop/internal/topology"
)

// Touch is a byte range of one region walked by an iteration.
type Touch struct {
	Region int   // index into the workload's Regions table
	Lo, Hi int64 // byte range [Lo, Hi)
}

// IterCost describes one iteration's demands: pure compute cycles plus
// the memory it walks.
type IterCost struct {
	Compute float64
	Touches []Touch
}

// Loop is one parallel loop of a workload.
type Loop struct {
	// N is the iteration count.
	N int
	// Space identifies the index space for affinity tracking: loops with
	// equal Space and N are "consecutive parallel loops" in the sense of
	// Figure 2. Use distinct spaces for unrelated loops.
	Space int
	// Cost returns the demands of iteration i. It must be pure (the
	// simulator may invoke it once per iteration per run).
	Cost func(i int) IterCost
}

// Workload is a program: memory regions, unmeasured initialization loops
// (which establish first-touch NUMA homing), and the measured sequence of
// parallel loops separated by barriers.
type Workload struct {
	Name    string
	Regions []int64 // region sizes in bytes
	Init    []Loop  // executed first, excluded from counters/affinity
	Loops   []Loop  // the measured loops
}

// TotalIterations returns the iteration count summed over measured loops.
func (w Workload) TotalIterations() int {
	t := 0
	for _, l := range w.Loops {
		t += l.N
	}
	return t
}

// Result is the outcome of one simulated run.
type Result struct {
	Strategy loop.Strategy
	P        int
	// Cycles is the simulated parallel execution time of the measured
	// loops (barrier to barrier).
	Cycles float64
	// Counts are the memory accesses serviced per hierarchy level during
	// the measured loops.
	Counts memmodel.Counts
	// Affinity is the mean fraction of iterations executed by the same
	// core as in the previous loop over the same index space (Figure 2).
	Affinity float64
	// AffinityLoops is how many loop transitions contributed to Affinity.
	AffinityLoops int
	// Steals / FailedSteals count successful and empty-handed steal
	// rounds; Claims / FailedClaims count hybrid claim attempts.
	Steals       int64
	FailedSteals int64
	// RemoteSteals is the subset of Steals whose victim sat on a different
	// socket than the thief (compact pinning). Tracked under every victim
	// policy — attribution only, no cost-model change — so uniform and
	// hierarchical runs are directly comparable.
	RemoteSteals int64
	Claims       int64
	FailedClaims int64
	// Chunks is the number of scheduled chunks (parallel overhead proxy).
	Chunks int64
	// CoreBusy is the time each core spent executing loop chunks (compute
	// plus memory), excluding scheduling actions and idling. Busy/Cycles
	// is the core's utilization; the spread across cores measures load
	// imbalance.
	CoreBusy []float64
	// Segments holds per-chunk execution intervals when Config.Timeline
	// is set (times relative to the start of the measured loops).
	Segments []Segment
}

// Utilization returns mean busy fraction across the cores used.
func (r Result) Utilization() float64 {
	if r.Cycles == 0 || len(r.CoreBusy) == 0 {
		return 0
	}
	var sum float64
	for _, b := range r.CoreBusy {
		sum += b
	}
	return sum / (r.Cycles * float64(len(r.CoreBusy)))
}

// Imbalance returns max(CoreBusy)/mean(CoreBusy) — 1.0 is perfect balance.
func (r Result) Imbalance() float64 {
	if len(r.CoreBusy) == 0 {
		return 0
	}
	var sum, max float64
	for _, b := range r.CoreBusy {
		sum += b
		if b > max {
			max = b
		}
	}
	mean := sum / float64(len(r.CoreBusy))
	if mean == 0 {
		return 0
	}
	return max / mean
}

// StealGranularity selects how much work a successful steal transfers.
type StealGranularity int

const (
	// StealHalf takes the upper half of the victim's remaining range —
	// the divide-and-conquer cilk_for behaviour the paper builds on.
	StealHalf StealGranularity = iota
	// StealChunk takes only one chunk per steal — an ablation showing why
	// stealing big pieces matters (each balancing event costs a steal).
	StealChunk
)

// VictimPolicy selects how a thief orders its steal probes.
type VictimPolicy int

const (
	// VictimUniform probes all other cores in one random rotation — the
	// pre-topology runtime behaviour (including its first-probe bias,
	// kept verbatim so seeded runs stay bit-identical with old goldens).
	VictimUniform VictimPolicy = iota
	// VictimHierarchical probes own-socket victims first (unbiased
	// rotation over the self-free list), then remote sockets, and a
	// cross-socket steal transfers ¾ of the victim's remainder instead of
	// half — the topology-aware policy the real runtime implements via
	// sched.Placement.
	VictimHierarchical
)

func (v VictimPolicy) String() string {
	switch v {
	case VictimUniform:
		return "uniform"
	case VictimHierarchical:
		return "hierarchical"
	}
	return fmt.Sprintf("VictimPolicy(%d)", int(v))
}

// Config configures a simulated run.
type Config struct {
	Machine  topology.Machine
	P        int // cores used (compact pinning); 0 means all
	Strategy loop.Strategy
	// Chunk overrides the default chunk min(2048, N/(8P)); 0 = default.
	Chunk int
	Seed  uint64
	// RFactor multiplies the hybrid partition count: R becomes the next
	// power of two >= P*RFactor (0 and 1 give the paper's R = P). An
	// ablation knob: more partitions buy finer static balance at the cost
	// of more claims and shorter affinity runs.
	RFactor int
	// Steal selects the work granularity of a successful steal.
	Steal StealGranularity
	// Stragglers delays the arrival of that many cores at every loop by
	// StraggleDelay cycles — modeling the paper's observation that "not
	// all P are always available to execute a given parallel loop"
	// because other parallel regions or OS noise occupy them. The
	// delayed cores are chosen pseudo-randomly per loop.
	Stragglers    int
	StraggleDelay float64
	// Timeline records per-chunk execution segments into
	// Result.Segments (capped at 1<<17 segments) for Gantt rendering.
	Timeline bool
	// Claim selects the hybrid claim discipline (see ClaimMode).
	Claim ClaimMode
	// Victim selects the steal victim-ordering policy (see VictimPolicy).
	// The zero value is the uniform-random legacy behaviour.
	Victim VictimPolicy
}

// ClaimMode selects how a hybrid worker's claim loop interleaves with
// partition execution.
type ClaimMode int

const (
	// ClaimExecute is the paper's behaviour under work-first Cilk
	// semantics: after a successful claim the worker executes the
	// partition before claiming again, so concurrent workers interleave
	// claims and late arrivals still find their designated partitions.
	ClaimExecute ClaimMode = iota
	// ClaimEager is the help-first ablation: a worker walks its entire
	// claim sequence up front, hoarding every still-unclaimed partition
	// before executing anything. Early arrivals strip late arrivals of
	// their designated partitions — demonstrating why the scheme depends
	// on work-first scheduling of Algorithm 3's spawn.
	ClaimEager
)

// Segment is one contiguous chunk execution on a core (Timeline mode).
type Segment struct {
	Core       int32
	Start, End float64 // cycles
	Lo, Hi     int32   // iteration range
}

// Run simulates the workload under the configuration and returns the
// result. It panics on invalid configurations (programming errors).
func Run(cfg Config, w Workload) Result {
	m := cfg.Machine
	if err := m.Validate(); err != nil {
		panic(err)
	}
	p := cfg.P
	if p == 0 {
		p = m.P()
	}
	if p < 1 || p > m.P() {
		panic(fmt.Sprintf("sim: P = %d outside machine's %d cores", p, m.P()))
	}
	e := newEngine(m, p, cfg.Seed)
	e.cfg = cfg
	if cfg.Victim == VictimHierarchical {
		e.buildVictimLists()
	}
	for _, size := range w.Regions {
		e.regions = append(e.regions, e.alloc.Alloc(size))
	}
	// Initialization loops always run statically partitioned: they model
	// the paper's explicit NUMA-aware data placement, which distributes
	// pages across sockets in the deterministic static layout no matter
	// which strategy the measured loops use.
	for _, l := range w.Init {
		e.runLoop(l, loop.Static, cfg.Chunk, false)
	}
	e.hier.ResetCounts()
	e.resetStats()
	start := e.maxClock()
	e.segBase = start
	for _, l := range w.Loops {
		e.runLoop(l, cfg.Strategy, cfg.Chunk, true)
	}
	return Result{
		Strategy:      cfg.Strategy,
		P:             p,
		Cycles:        e.maxClock() - start,
		Counts:        e.hier.Counts(),
		Affinity:      e.affin.Mean(),
		AffinityLoops: e.affin.Loops(),
		Steals:        e.steals,
		FailedSteals:  e.failedSteals,
		RemoteSteals:  e.remoteSteals,
		Claims:        e.claims,
		FailedClaims:  e.failedClaims,
		Chunks:        e.chunks,
		CoreBusy:      append([]float64(nil), e.busy...),
		Segments:      e.segments,
	}
}

// RunSequential simulates the pure sequential execution T_s: one core,
// no parallel constructs, no scheduling costs. It is the baseline of the
// paper's work-efficiency column (T_s / T_1).
func RunSequential(m topology.Machine, w Workload) float64 {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	e := newEngine(m, 1, 0)
	for _, size := range w.Regions {
		e.regions = append(e.regions, e.alloc.Alloc(size))
	}
	run := func(l Loop) {
		for i := 0; i < l.N; i++ {
			ic := l.Cost(i)
			e.clock[0] += ic.Compute
			for _, t := range ic.Touches {
				e.clock[0] += e.hier.TouchRange(0, e.regions[t.Region], t.Lo, t.Hi)
			}
		}
	}
	for _, l := range w.Init {
		run(l)
	}
	start := e.clock[0]
	for _, l := range w.Loops {
		run(l)
	}
	return e.clock[0] - start
}

// engine holds the simulated machine state shared across loops.
type engine struct {
	m        topology.Machine
	cfg      Config
	p        int
	hier     *memmodel.Hierarchy
	alloc    *memmodel.Allocator
	regions  []memmodel.Region
	clock    []float64
	busy     []float64 // per-core time spent executing chunks
	gen      *rng.Xoshiro256
	segments []Segment // Timeline mode
	segBase  float64   // measured-phase time origin for segments
	recCount bool      // whether the current loop is measured

	trackers   map[spaceKey]*affinity.Tracker
	seenSpaces map[spaceKey]bool
	affin      affinity.MeanSame

	steals       int64
	failedSteals int64
	remoteSteals int64
	claims       int64
	failedClaims int64
	chunks       int64

	// localV/remoteV are per-core victim lists under VictimHierarchical:
	// same-socket cores first, then every other core, ascending IDs with
	// self excluded (mirroring sched's precomputed Worker victim lists).
	// Nil under VictimUniform.
	localV, remoteV [][]int
}

type spaceKey struct{ space, n int }

func newEngine(m topology.Machine, p int, seed uint64) *engine {
	return &engine{
		m:          m,
		p:          p,
		hier:       memmodel.New(m),
		alloc:      memmodel.NewAllocator(m),
		clock:      make([]float64, p),
		busy:       make([]float64, p),
		gen:        rng.NewXoshiro256(seed ^ 0x9e3779b97f4a7c15),
		trackers:   make(map[spaceKey]*affinity.Tracker),
		seenSpaces: make(map[spaceKey]bool),
	}
}

// buildVictimLists precomputes the hierarchical victim order for each of
// the p cores in use, under the machine's compact pinning.
func (e *engine) buildVictimLists() {
	e.localV = make([][]int, e.p)
	e.remoteV = make([][]int, e.p)
	for c := 0; c < e.p; c++ {
		for v := 0; v < e.p; v++ {
			if v == c {
				continue
			}
			if e.m.Socket(v) == e.m.Socket(c) {
				e.localV[c] = append(e.localV[c], v)
			} else {
				e.remoteV[c] = append(e.remoteV[c], v)
			}
		}
	}
}

func (e *engine) resetStats() {
	e.steals, e.failedSteals, e.claims, e.failedClaims, e.chunks = 0, 0, 0, 0, 0
	e.remoteSteals = 0
	e.affin = affinity.MeanSame{}
	for i := range e.busy {
		e.busy[i] = 0
	}
}

func (e *engine) maxClock() float64 {
	max := e.clock[0]
	for _, c := range e.clock[1:] {
		if c > max {
			max = c
		}
	}
	return max
}

// execChunk charges core for executing iterations [lo, hi) of l and
// records the assignment for affinity tracking.
func (e *engine) execChunk(core int, l *Loop, tr *affinity.Tracker, lo, hi int) {
	cost := e.m.Cost.ChunkDispatch
	for i := lo; i < hi; i++ {
		ic := l.Cost(i)
		cost += ic.Compute
		for _, t := range ic.Touches {
			cost += e.hier.TouchRange(core, e.regions[t.Region], t.Lo, t.Hi)
		}
	}
	if e.cfg.Timeline && e.recCount && len(e.segments) < 1<<17 {
		e.segments = append(e.segments, Segment{
			Core:  int32(core),
			Start: e.clock[core] - e.segBase,
			End:   e.clock[core] + cost - e.segBase,
			Lo:    int32(lo), Hi: int32(hi),
		})
	}
	e.clock[core] += cost
	e.busy[core] += cost
	e.chunks++
	if tr != nil {
		tr.Record(core, lo, hi)
	}
}

// runLoop executes one parallel loop under the strategy with a barrier on
// both sides, in global time order across the P cores.
func (e *engine) runLoop(l Loop, strat loop.Strategy, chunkOpt int, measured bool) {
	if l.N <= 0 {
		return
	}
	e.recCount = measured
	// Barrier: all cores arrive together at the max clock, paying the
	// join cost (the sequential outer loop of the iterative applications).
	start := e.maxClock() + e.m.Cost.Barrier
	for c := range e.clock {
		e.clock[c] = start + e.gen.Float64()*e.m.Cost.BarrierJitter
	}
	if e.cfg.Stragglers > 0 && e.cfg.StraggleDelay > 0 {
		for _, c := range e.gen.PermPrefix(e.p, e.cfg.Stragglers) {
			e.clock[c] += e.cfg.StraggleDelay
		}
	}
	e.clock[0] += e.m.Cost.LoopStartup

	var tr *affinity.Tracker
	if measured {
		key := spaceKey{l.Space, l.N}
		tr = e.trackers[key]
		if tr == nil {
			tr = affinity.NewTracker(l.N)
			e.trackers[key] = tr
		}
	}

	chunk := chunkOpt
	if chunk <= 0 {
		chunk = loop.DefaultChunk(l.N, e.p)
	}
	pol := e.newPolicy(strat, &l, tr, chunk)

	active := make([]bool, e.p)
	remaining := e.p
	for c := range active {
		active[c] = true
	}
	for remaining > 0 {
		// Pick the active core with the smallest clock (P <= 32: linear
		// scan beats a heap).
		best := -1
		for c := 0; c < e.p; c++ {
			if active[c] && (best < 0 || e.clock[c] < e.clock[best]) {
				best = c
			}
		}
		if !pol.step(best) {
			active[best] = false
			remaining--
		}
	}
	if measured && tr != nil {
		key := spaceKey{l.Space, l.N}
		frac := tr.EndLoop()
		if e.seenSpaces[key] {
			// Only loop-to-loop transitions count; the first loop over a
			// space has no predecessor.
			e.affin.Add(frac)
		}
		e.seenSpaces[key] = true
	}
}
