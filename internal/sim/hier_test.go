package sim_test

import (
	"testing"

	"hybridloop/internal/loop"
	"hybridloop/internal/sim"
	"hybridloop/internal/topology"
)

// TestHierarchicalReducesRemoteSteals is the simulated-scale experiment
// behind the hierarchical victim policy, pinned as a test: on 8-socket
// machines (64 and 256 cores) running the unbalanced micro workload
// under vanilla work stealing, socket-local-first victim ordering must
// cut the fraction of steals that cross a socket to less than half of
// what uniform victim selection produces — while still completing the
// identical workload. The run is seeded, so the comparison is exact and
// deterministic; EXPERIMENTS.md quotes the same numbers.
func TestHierarchicalReducesRemoteSteals(t *testing.T) {
	w := microWorkload(false, 8)
	for _, m := range []struct {
		name             string
		sockets, percore int
	}{{"8x8", 8, 8}, {"8x32", 8, 32}} {
		t.Run(m.name, func(t *testing.T) {
			run := func(v sim.VictimPolicy) sim.Result {
				return sim.Run(sim.Config{
					Machine:  topology.Scaled(m.sockets, m.percore),
					P:        m.sockets * m.percore,
					Strategy: loop.DynamicStealing,
					Victim:   v,
					Seed:     7,
				}, w)
			}
			u := run(sim.VictimUniform)
			h := run(sim.VictimHierarchical)

			if u.Counts.Total() != h.Counts.Total() {
				t.Fatalf("policies completed different workloads: %d vs %d accesses",
					u.Counts.Total(), h.Counts.Total())
			}
			if u.Steals == 0 || u.RemoteSteals == 0 {
				t.Fatalf("uniform baseline stole %d (remote %d) — comparison is vacuous",
					u.Steals, u.RemoteSteals)
			}
			if h.Steals == 0 {
				t.Fatal("hierarchical policy never stole — comparison is vacuous")
			}
			uFrac := float64(u.RemoteSteals) / float64(u.Steals)
			hFrac := float64(h.RemoteSteals) / float64(h.Steals)
			t.Logf("remote-steal fraction: uniform %d/%d (%.0f%%), hierarchical %d/%d (%.0f%%)",
				u.RemoteSteals, u.Steals, 100*uFrac, h.RemoteSteals, h.Steals, 100*hFrac)
			if hFrac*2 >= uFrac {
				t.Errorf("hierarchical remote fraction %.2f is not under half of uniform's %.2f",
					hFrac, uFrac)
			}
		})
	}
}
