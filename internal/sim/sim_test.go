package sim_test

import (
	"reflect"
	"testing"

	"hybridloop/internal/loop"
	"hybridloop/internal/sim"
	"hybridloop/internal/topology"
	"hybridloop/internal/workload"
)

func microWorkload(balanced bool, totalMB int64) sim.Workload {
	return workload.Micro(workload.MicroConfig{
		N:              512,
		OuterLoops:     4,
		TotalBytes:     totalMB << 20,
		Balanced:       balanced,
		ComputePerLine: 2,
	})
}

func allStrategies() []loop.Strategy {
	return []loop.Strategy{loop.Static, loop.DynamicStealing, loop.DynamicSharing, loop.Guided, loop.Hybrid}
}

func TestRunDeterministic(t *testing.T) {
	w := microWorkload(true, 8)
	for _, s := range allStrategies() {
		cfg := sim.Config{Machine: topology.Paper(), P: 8, Strategy: s, Seed: 7}
		r1 := sim.Run(cfg, w)
		r2 := sim.Run(cfg, w)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("%v: identical configs diverged:\n%+v\n%+v", s, r1, r2)
		}
	}
}

func TestSeedChangesStealSchedule(t *testing.T) {
	w := microWorkload(false, 8)
	cfg1 := sim.Config{Machine: topology.Paper(), P: 16, Strategy: loop.DynamicStealing, Seed: 1}
	cfg2 := cfg1
	cfg2.Seed = 99
	r1, r2 := sim.Run(cfg1, w), sim.Run(cfg2, w)
	if r1.Cycles == r2.Cycles && r1.Steals == r2.Steals {
		t.Log("different seeds produced identical runs (possible but suspicious)")
	}
	// Totals must agree regardless of seed.
	if r1.Counts.Total() == 0 || r2.Counts.Total() == 0 {
		t.Fatal("no memory accesses recorded")
	}
}

func TestAllIterationsAccountedViaCounters(t *testing.T) {
	// Total line accesses must be identical across strategies and P (the
	// same bytes are walked; only *which level services them* differs).
	w := microWorkload(true, 8)
	var want int64 = -1
	for _, s := range allStrategies() {
		for _, p := range []int{1, 4, 32} {
			r := sim.Run(sim.Config{Machine: topology.Paper(), P: p, Strategy: s, Seed: 3}, w)
			if want < 0 {
				want = r.Counts.Total()
			}
			if r.Counts.Total() != want {
				t.Fatalf("%v P=%d: %d total accesses, want %d", s, p, r.Counts.Total(), want)
			}
		}
	}
}

func TestMoreCoresNotSlowerOnBalanced(t *testing.T) {
	// Scalability sanity: for the balanced workload every strategy must
	// get substantially faster from 1 to 8 cores (single socket).
	w := microWorkload(true, 16)
	for _, s := range allStrategies() {
		t1 := sim.Run(sim.Config{Machine: topology.Paper(), P: 1, Strategy: s, Seed: 5}, w).Cycles
		t8 := sim.Run(sim.Config{Machine: topology.Paper(), P: 8, Strategy: s, Seed: 5}, w).Cycles
		speedup := t1 / t8
		if speedup < 4 {
			t.Errorf("%v: speedup at P=8 is %.2f, want >= 4", s, speedup)
		}
	}
}

func TestStaticSuffersOnUnbalanced(t *testing.T) {
	// The core claim of the paper: with unbalanced iterations, static
	// partitioning is dictated by the most loaded core, while the dynamic
	// schemes (and hybrid) load balance.
	w := microWorkload(false, 16)
	m := topology.Paper()
	tStatic := sim.Run(sim.Config{Machine: m, P: 8, Strategy: loop.Static, Seed: 5}, w).Cycles
	tHybrid := sim.Run(sim.Config{Machine: m, P: 8, Strategy: loop.Hybrid, Seed: 5}, w).Cycles
	tSteal := sim.Run(sim.Config{Machine: m, P: 8, Strategy: loop.DynamicStealing, Seed: 5}, w).Cycles
	if tHybrid >= tStatic {
		t.Errorf("hybrid (%.0f) not faster than static (%.0f) on unbalanced", tHybrid, tStatic)
	}
	if tSteal >= tStatic {
		t.Errorf("vanilla (%.0f) not faster than static (%.0f) on unbalanced", tSteal, tStatic)
	}
}

func TestAffinityOrdering(t *testing.T) {
	// Figure 2's qualitative content: static = 100%, hybrid high,
	// dynamic schemes low.
	w := microWorkload(true, 16)
	m := topology.Paper()
	aff := map[loop.Strategy]float64{}
	for _, s := range allStrategies() {
		r := sim.Run(sim.Config{Machine: m, P: 32, Strategy: s, Seed: 11}, w)
		if r.AffinityLoops == 0 {
			t.Fatalf("%v: no affinity transitions measured", s)
		}
		aff[s] = r.Affinity
	}
	if aff[loop.Static] != 1.0 {
		t.Errorf("static affinity = %.3f, want 1.0", aff[loop.Static])
	}
	if aff[loop.Hybrid] < 0.9 {
		t.Errorf("hybrid affinity on balanced = %.3f, want >= 0.9", aff[loop.Hybrid])
	}
	for _, s := range []loop.Strategy{loop.DynamicStealing, loop.DynamicSharing, loop.Guided} {
		if aff[s] > 0.5 {
			t.Errorf("%v affinity = %.3f, expected low (< 0.5)", s, aff[s])
		}
	}
}

func TestHybridClaimsBounded(t *testing.T) {
	w := microWorkload(true, 8)
	r := sim.Run(sim.Config{Machine: topology.Paper(), P: 32, Strategy: loop.Hybrid, Seed: 2}, w)
	if r.Claims == 0 {
		t.Fatal("hybrid run recorded no claims")
	}
	// Per loop: at most R successful + R lg R failed claims (Theorem 5's
	// O(R lg R) claim work). 5 loops total (1 init is excluded), R = 32.
	loops := int64(4)
	maxClaims := loops * (32 + 32*5)
	if r.Claims > maxClaims {
		t.Errorf("claims = %d exceeds O(R lg R) bound %d", r.Claims, maxClaims)
	}
}

func TestSequentialBaseline(t *testing.T) {
	w := microWorkload(true, 8)
	m := topology.Paper()
	ts := sim.RunSequential(m, w)
	if ts <= 0 {
		t.Fatal("sequential time not positive")
	}
	// T1 (with parallel overhead) must be >= Ts, but within a small
	// factor (work efficiency near 1 — the paper's first column).
	for _, s := range allStrategies() {
		t1 := sim.Run(sim.Config{Machine: m, P: 1, Strategy: s, Seed: 1}, w).Cycles
		if t1 < ts {
			t.Errorf("%v: T1 (%.0f) below Ts (%.0f)", s, t1, ts)
		}
		if eff := ts / t1; eff < 0.7 {
			t.Errorf("%v: work efficiency %.2f too low", s, eff)
		}
	}
}

func TestLocalityCountersCrossSocket(t *testing.T) {
	// With a per-socket footprint that exceeds L3, L3 misses under static
	// and hybrid should be serviced mostly by *local* DRAM, while vanilla
	// leans on remote L3/DRAM (Figure 4's story).
	w := microWorkload(true, 96) // 24 MB per socket at P=32 > 16 MB L3
	m := topology.Paper()
	type dramSplit struct{ local, remote int64 }
	split := map[loop.Strategy]dramSplit{}
	for _, s := range []loop.Strategy{loop.Static, loop.Hybrid, loop.DynamicStealing} {
		r := sim.Run(sim.Config{Machine: m, P: 32, Strategy: s, Seed: 4}, w)
		split[s] = dramSplit{
			local:  r.Counts[topology.LocalDRAM],
			remote: r.Counts[topology.RemoteDRAM] + r.Counts[topology.RemoteL3],
		}
	}
	for _, s := range []loop.Strategy{loop.Static, loop.Hybrid} {
		d := split[s]
		if d.remote > d.local/4 {
			t.Errorf("%v: remote accesses %d vs local %d — locality not retained", s, d.remote, d.local)
		}
	}
	v := split[loop.DynamicStealing]
	h := split[loop.Hybrid]
	if v.remote <= h.remote {
		t.Errorf("vanilla remote accesses (%d) not above hybrid's (%d)", v.remote, h.remote)
	}
}

func TestWorkloadValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	sim.Run(sim.Config{Machine: topology.Paper(), P: 99, Strategy: loop.Static}, microWorkload(true, 1))
}

func TestEmptyLoopSkipped(t *testing.T) {
	w := sim.Workload{
		Name:  "empty",
		Loops: []sim.Loop{{N: 0, Cost: func(int) sim.IterCost { return sim.IterCost{} }}},
	}
	r := sim.Run(sim.Config{Machine: topology.Paper(), P: 4, Strategy: loop.Hybrid, Seed: 1}, w)
	if r.Cycles != 0 {
		t.Fatalf("empty workload took %v cycles", r.Cycles)
	}
}

// TestEveryPolicyExecutesExactlyOnce instruments the workload's Cost
// function (invoked exactly once per executed iteration) to verify that
// every policy — including the ablation variants — covers each iteration
// exactly once.
func TestEveryPolicyExecutesExactlyOnce(t *testing.T) {
	const n = 7777
	configs := []sim.Config{
		{Machine: topology.Paper(), P: 32, Strategy: loop.Static, Seed: 1},
		{Machine: topology.Paper(), P: 32, Strategy: loop.DynamicStealing, Seed: 1},
		{Machine: topology.Paper(), P: 32, Strategy: loop.DynamicSharing, Seed: 1},
		{Machine: topology.Paper(), P: 32, Strategy: loop.Guided, Seed: 1},
		{Machine: topology.Paper(), P: 32, Strategy: loop.Hybrid, Seed: 1},
		{Machine: topology.Paper(), P: 32, Strategy: loop.Hybrid, Seed: 2, RFactor: 4},
		{Machine: topology.Paper(), P: 32, Strategy: loop.DynamicStealing, Seed: 3, Steal: sim.StealChunk},
		{Machine: topology.Paper(), P: 32, Strategy: loop.Hybrid, Seed: 4, Stragglers: 8, StraggleDelay: 1e5},
		{Machine: topology.Paper(), P: 5, Strategy: loop.Hybrid, Seed: 5}, // non-power-of-two P
	}
	for _, cfg := range configs {
		counts := make([]int, n)
		w := sim.Workload{
			Name:    "counting",
			Regions: []int64{1 << 20},
			Loops: []sim.Loop{{
				N: n,
				Cost: func(i int) sim.IterCost {
					counts[i]++
					return sim.IterCost{Compute: float64(i%13) + 1}
				},
			}},
		}
		sim.Run(cfg, w)
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("%+v: iteration %d executed %d times", cfg, i, c)
			}
		}
	}
}

// TestStragglersHurtStaticMost verifies the arrival-delay story: with 8
// late cores, static slows down by roughly the delay while hybrid and
// vanilla absorb it.
func TestStragglersHurtStaticMost(t *testing.T) {
	m := topology.Paper()
	w := microWorkload(true, 16)
	const lag = 2e5
	slowdown := func(s loop.Strategy) float64 {
		base := sim.Run(sim.Config{Machine: m, P: 32, Strategy: s, Seed: 1}, w).Cycles
		lagged := sim.Run(sim.Config{Machine: m, P: 32, Strategy: s, Seed: 1,
			Stragglers: 8, StraggleDelay: lag}, w).Cycles
		return lagged / base
	}
	st := slowdown(loop.Static)
	hy := slowdown(loop.Hybrid)
	if st < 1.2 {
		t.Errorf("static slowdown %.2f — stragglers had no effect", st)
	}
	if hy >= st {
		t.Errorf("hybrid slowdown %.2f not below static's %.2f", hy, st)
	}
}

// TestTimelineSegmentsCoherent: with Timeline on, segments must be
// per-core non-overlapping, time-ordered, within [0, Cycles], and cover
// every iteration exactly once.
func TestTimelineSegmentsCoherent(t *testing.T) {
	w := microWorkload(false, 8)
	r := sim.Run(sim.Config{Machine: topology.Paper(), P: 16, Strategy: loop.Hybrid, Seed: 9, Timeline: true}, w)
	if len(r.Segments) == 0 {
		t.Fatal("no segments recorded")
	}
	lastEnd := map[int32]float64{}
	perLoopCover := map[int32]int{}
	for _, seg := range r.Segments {
		if seg.Start < -1e-9 || seg.End > r.Cycles+1e-6 || seg.End < seg.Start {
			t.Fatalf("segment out of range: %+v (cycles %v)", seg, r.Cycles)
		}
		if seg.Start+1e-9 < lastEnd[seg.Core] {
			t.Fatalf("core %d segments overlap: %+v before %v", seg.Core, seg, lastEnd[seg.Core])
		}
		lastEnd[seg.Core] = seg.End
		for i := seg.Lo; i < seg.Hi; i++ {
			perLoopCover[i]++
		}
	}
	// 4 measured loops over 512 iterations each.
	for i := int32(0); i < 512; i++ {
		if perLoopCover[i] != 4 {
			t.Fatalf("iteration %d covered %d times, want 4", i, perLoopCover[i])
		}
	}
	// Without the flag, no segments.
	r2 := sim.Run(sim.Config{Machine: topology.Paper(), P: 16, Strategy: loop.Hybrid, Seed: 9}, w)
	if len(r2.Segments) != 0 {
		t.Fatal("segments recorded without Timeline")
	}
}

// TestClaimEagerStillExactlyOnce: the help-first ablation must preserve
// Theorem 3 (hoarded partitions execute exactly once, including stolen
// ones).
func TestClaimEagerStillExactlyOnce(t *testing.T) {
	const n = 4096
	counts := make([]int, n)
	w := sim.Workload{
		Name:    "counting",
		Regions: []int64{1 << 20},
		Loops: []sim.Loop{{
			N: n,
			Cost: func(i int) sim.IterCost {
				counts[i]++
				return sim.IterCost{Compute: 50}
			},
		}},
	}
	sim.Run(sim.Config{Machine: topology.Paper(), P: 32, Strategy: loop.Hybrid,
		Seed: 3, Claim: sim.ClaimEager, Stragglers: 8, StraggleDelay: 5e4}, w)
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("iteration %d executed %d times", i, c)
		}
	}
}
