package core

import "fmt"

// WeightedSplit divides [r.Begin, r.End) into n consecutive sub-ranges of
// approximately equal total weight, where weight(i) gives iteration i's
// relative cost. This supports the annotation-driven extension discussed
// in the paper's related work (Tzannes-style programmer hints): when
// per-iteration costs are known, the *static* phase of the hybrid scheme
// can already balance the load, and the claiming heuristic plus work
// stealing only mop up the estimation error.
//
// Boundaries are chosen by walking the prefix sum: partition k ends at the
// first iteration where the accumulated weight reaches (k+1)/n of the
// total. Weights must be non-negative; a zero total degenerates to the
// equal-count Split.
func WeightedSplit(r Range, n int, weight func(i int) float64) []Range {
	if n <= 0 {
		panic("core: WeightedSplit with n <= 0")
	}
	if weight == nil {
		return r.Split(n)
	}
	total := 0.0
	for i := r.Begin; i < r.End; i++ {
		w := weight(i)
		if w < 0 {
			panic(fmt.Sprintf("core: negative weight %v at iteration %d", w, i))
		}
		total += w
	}
	if total <= 0 {
		return r.Split(n)
	}
	out := make([]Range, n)
	begin := r.Begin
	acc := 0.0
	i := r.Begin
	for k := 0; k < n-1; k++ {
		target := total * float64(k+1) / float64(n)
		for i < r.End && acc < target {
			acc += weight(i)
			i++
		}
		out[k] = Range{begin, i}
		begin = i
	}
	// The last partition absorbs everything that remains.
	out[n-1] = Range{begin, r.End}
	return out
}

// NewPartitionSetParts builds a PartitionSet over explicit partition
// ranges. The ranges must be contiguous (each begins where the previous
// ended) and their count must be a power of two — they are typically
// produced by WeightedSplit with R = NextPow2(P).
func NewPartitionSetParts(parts []Range) *PartitionSet {
	r := len(parts)
	if r < 1 || r&(r-1) != 0 {
		panic(fmt.Sprintf("core: %d partitions is not a power of two", r))
	}
	for i := 1; i < r; i++ {
		if parts[i].Begin != parts[i-1].End {
			panic(fmt.Sprintf("core: partitions %d and %d not contiguous", i-1, i))
		}
	}
	ps := NewPartitionSetR(parts[0].Begin, parts[r-1].End, r)
	copy(ps.parts, parts)
	return ps
}
