// Package core implements the heart of the paper's contribution: the
// semi-deterministic claiming heuristic for hybrid parallel loops
// (Algorithms 1–3 of "A Hybrid Scheduling Scheme for Parallel Loops").
//
// A loop of N iterations is divided into R = 2^k partitions, each earmarked
// for one worker. Worker w visits partitions in the order given by the
// worker-specific bijection r = i XOR w for index i = 0, 1, 2, ...; a claim
// on partition r succeeds iff an atomic fetch-and-or on the partition's flag
// observes it unclaimed. On a failed claim at index i > 0 the worker skips
// ahead by the least-significant set bit of i (i += i & -i), which — per
// Lemma 2 — moves to the next index group not already covered by whoever
// beat it to the contested partition. A failed claim at i = 0 means the
// worker's own designated partition is taken and it should fall back to
// ordinary randomized work stealing immediately.
//
// The package is deliberately runtime-agnostic: both the goroutine-based
// scheduler (internal/sched) and the discrete-event simulator (internal/sim)
// drive the same PartitionSet, so the algorithm is written — and proven by
// tests — exactly once.
package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// NextPow2 returns the smallest power of two >= n, and 1 for n <= 1.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Range is a half-open interval [Begin, End) of loop iterations.
type Range struct {
	Begin, End int
}

// Len returns the number of iterations in the range.
func (r Range) Len() int { return r.End - r.Begin }

// Empty reports whether the range contains no iterations.
func (r Range) Empty() bool { return r.End <= r.Begin }

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Begin, r.End) }

// Split divides the range evenly into n consecutive sub-ranges. The first
// (Len mod n) sub-ranges receive one extra iteration, matching static
// partitioning as implemented by OpenMP and the paper's InitHybridLoop.
func (r Range) Split(n int) []Range {
	if n <= 0 {
		panic("core: Split with n <= 0")
	}
	out := make([]Range, n)
	total := r.Len()
	if total < 0 {
		total = 0
	}
	base, extra := total/n, total%n
	begin := r.Begin
	for i := 0; i < n; i++ {
		size := base
		if i < extra {
			size++
		}
		out[i] = Range{begin, begin + size}
		begin += size
	}
	return out
}

// ClaimFlag is one partition's claim word, padded to a full cache line:
// the claim phase has every worker Swap-ing flags of distinct partitions
// concurrently, and the steal protocol's PeekClaimed re-reads them on
// every idle probe, so packing sixteen 4-byte flags into one line would
// make each claim CAS invalidate fifteen unrelated probes. R is at most
// 2·P, so the padding costs under 8 KiB even on a 64-worker pool.
//
//sched:cacheline
type ClaimFlag struct {
	// v is the claim latch of Algorithm 1: Swap(1) owns the transition —
	// exactly one worker observes the 0 return and executes the
	// partition. An unconditional write, so the spec's only transition
	// is any→claimed; there is no way back to unclaimed within one
	// dynamic execution (the set is reallocated per run).
	//
	//sched:protocol claim
	//sched:state unclaimed = 0
	//sched:state claimed = 1
	//sched:trans any -> claimed
	v atomic.Uint32 // 0 = unclaimed, 1 = claimed
	_ [60]byte
}

// PartitionSet is the partition data structure A of Algorithm 1: the
// iteration space divided into R = 2^k partitions with one atomic claim
// flag per partition. A PartitionSet is created once per dynamic execution
// of a hybrid loop and shared by every worker that participates.
type PartitionSet struct {
	iters   Range
	parts   []Range      // partition r covers parts[r]
	flags   []ClaimFlag  // one padded claim word per partition
	logR    int          // lg R
	failed  atomic.Int64 // total failed claims (instrumentation)
	claimed atomic.Int64 // successful claims so far
}

// NewPartitionSet divides [begin, end) into R partitions, where R is the
// smallest power of two >= workers (Section III: if P is not a power of 2,
// R is the next power of 2 and the extra partitions are earmarked for no
// one but still claimed by the sequence). workers must be >= 1.
func NewPartitionSet(begin, end, workers int) *PartitionSet {
	if workers < 1 {
		panic("core: NewPartitionSet with workers < 1")
	}
	return NewPartitionSetR(begin, end, NextPow2(workers))
}

// NewPartitionSetR divides [begin, end) into exactly R partitions.
// R must be a power of two >= 1.
func NewPartitionSetR(begin, end, r int) *PartitionSet {
	if r < 1 || r&(r-1) != 0 {
		panic(fmt.Sprintf("core: R = %d is not a power of two", r))
	}
	return &PartitionSet{
		iters: Range{begin, end},
		parts: (Range{begin, end}).Split(r),
		flags: make([]ClaimFlag, r),
		logR:  bits.TrailingZeros(uint(r)),
	}
}

// R returns the number of partitions (a power of two).
func (ps *PartitionSet) R() int { return len(ps.parts) }

// LogR returns lg R.
func (ps *PartitionSet) LogR() int { return ps.logR }

// Iterations returns the whole iteration range of the loop.
func (ps *PartitionSet) Iterations() Range { return ps.iters }

// Partition returns the iteration range of partition r.
func (ps *PartitionSet) Partition(r int) Range { return ps.parts[r] }

// Claimed reports whether partition r has been claimed.
func (ps *PartitionSet) Claimed(r int) bool { return ps.flags[r].v.Load() != 0 }

// AllClaimed reports whether every partition has been claimed.
func (ps *PartitionSet) AllClaimed() bool {
	for i := range ps.flags {
		if ps.flags[i].v.Load() == 0 {
			return false
		}
	}
	return true
}

// FailedClaims returns the total number of unsuccessful claims recorded
// across all workers — the quantity bounded by Lemma 4 (at most lg R per
// worker entry before it reverts to work stealing).
func (ps *PartitionSet) FailedClaims() int64 { return ps.failed.Load() }

// Claim is Algorithm 2: worker w attempts to claim the partition mapped to
// index i, namely r = i XOR w. It returns the partition number and whether
// the claim succeeded. The fetch-and-or of the paper is realized as an
// atomic swap, which has the identical owns-the-transition property.
//
//sched:noalloc
func (ps *PartitionSet) Claim(i, w int) (r int, ok bool) {
	r = (i ^ w) & (len(ps.parts) - 1)
	if ps.flags[r].v.Swap(1) != 0 {
		ps.failed.Add(1)
		return r, false
	}
	ps.claimed.Add(1)
	return r, true
}

// Unclaimed returns how many partitions remain unclaimed. A loop with
// Unclaimed() == 0 is dead for the steal protocol: no thief can enter it.
func (ps *PartitionSet) Unclaimed() int {
	return len(ps.parts) - int(ps.claimed.Load())
}

// ClaimPartition attempts to claim partition r directly (used by the steal
// protocol, which probes a thief's designated partition r = w XOR 0 = w).
//
//sched:noalloc
func (ps *PartitionSet) ClaimPartition(r int) bool {
	if ps.flags[r].v.Swap(1) != 0 {
		ps.failed.Add(1)
		return false
	}
	ps.claimed.Add(1)
	return true
}

// PeekClaimed reports, without side effects, whether partition w XOR 0 = w
// (worker w's designated partition) is already claimed. The steal protocol
// of Section III uses this read to decide whether a thief enters the loop
// with its own worker ID or performs an ordinary random steal.
//
//sched:noalloc
func (ps *PartitionSet) PeekClaimed(w int) bool {
	return ps.flags[w&(len(ps.parts)-1)].v.Load() != 0
}

// NextIndex returns the index visited after i in worker order when the
// claim at i failed: i plus its least-significant set bit (line 20 of
// Algorithm 3). It must not be called with i = 0 — a failed claim at the
// designated partition exits the heuristic instead.
func NextIndex(i int) int {
	if i <= 0 {
		panic("core: NextIndex on the designated index")
	}
	return i + (i & -i)
}

// Claimer walks the claim sequence of Algorithm 3 for one worker. It is an
// explicit iterator rather than a callback loop so that the scheduler can
// interleave claims with spawning partition work, and the simulator can
// charge simulated time to each step.
type Claimer struct {
	ps        *PartitionSet
	w         int
	i         int
	failed    int
	streak    int // consecutive failures since the last success
	maxStreak int // worst streak seen (bounded by lg R per Lemma 4)
	done      bool
}

// NewClaimer returns a Claimer for worker w over ps, positioned before the
// designated index i = 0.
func NewClaimer(ps *PartitionSet, w int) *Claimer {
	return &Claimer{ps: ps, w: w & (ps.R() - 1)}
}

// Worker returns the worker ID (reduced mod R) this Claimer claims for.
func (c *Claimer) Worker() int { return c.w }

// Failed returns how many claims by this Claimer were unsuccessful.
func (c *Claimer) Failed() int { return c.failed }

// MaxFailStreak returns the largest number of consecutive unsuccessful
// claims between successes — the quantity Lemma 4 bounds by lg R.
func (c *Claimer) MaxFailStreak() int { return c.maxStreak }

// Done reports whether the claim sequence is exhausted.
func (c *Claimer) Done() bool { return c.done || c.i >= c.ps.R() }

// Next advances the claim sequence until a claim succeeds or the sequence
// is exhausted, returning the claimed partition and true, or (0, false)
// when the worker should revert to ordinary work stealing. Per Lemma 4 at
// most lg R failed claims occur before a success or exhaustion.
func (c *Claimer) Next() (r int, ok bool) {
	if c.done {
		return 0, false
	}
	for c.i < c.ps.R() {
		r, ok = c.ps.Claim(c.i, c.w)
		if ok {
			c.i++
			c.streak = 0
			return r, true
		}
		c.failed++
		c.streak++
		if c.streak > c.maxStreak {
			c.maxStreak = c.streak
		}
		if c.i == 0 {
			// Designated partition taken: exit immediately (line 14 of
			// Algorithm 3) and let the caller revert to work stealing.
			c.done = true
			return 0, false
		}
		c.i = NextIndex(c.i)
	}
	c.done = true
	return 0, false
}

// ClaimOrder returns, for worker w and R partitions, the full partition
// visit order assuming every claim succeeds: w XOR 0, w XOR 1, ..., i.e. the
// deterministic sequence the worker walks when running alone. Used by tests
// and by the affinity analysis.
func ClaimOrder(w, r int) []int {
	out := make([]int, r)
	for i := 0; i < r; i++ {
		out[i] = (i ^ w) & (r - 1)
	}
	return out
}

// IndexGroup returns I(x, n) = {x*2^n, ..., x*2^n + 2^n - 1}, the level-n
// index group of the Lemma 2 proof.
func IndexGroup(x, n int) []int {
	out := make([]int, 1<<n)
	for a := range out {
		out[a] = x<<n + a
	}
	return out
}

// PartitionGroup returns G(w, x, n) = w XOR I(x, n), the level-n partition
// group for worker w.
func PartitionGroup(w, x, n int) []int {
	out := IndexGroup(x, n)
	for a := range out {
		out[a] ^= w
	}
	return out
}
