package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedSplitCoversExactly(t *testing.T) {
	weight := func(i int) float64 { return float64(i%7) + 0.5 }
	for _, tc := range []struct{ begin, end, n int }{
		{0, 100, 4}, {0, 1, 4}, {5, 9, 2}, {0, 1000, 7}, {0, 0, 3},
	} {
		parts := WeightedSplit(Range{tc.begin, tc.end}, tc.n, weight)
		if len(parts) != tc.n {
			t.Fatalf("%v: %d parts", tc, len(parts))
		}
		pos := tc.begin
		for i, p := range parts {
			if p.Begin != pos || p.Len() < 0 {
				t.Fatalf("%v: part %d = %v, pos %d", tc, i, p, pos)
			}
			pos = p.End
		}
		if pos != tc.end {
			t.Fatalf("%v: parts end at %d", tc, pos)
		}
	}
}

func TestWeightedSplitBalancesTriangular(t *testing.T) {
	// weight(i) = i: each of the 4 partitions should carry ~25% of the
	// total weight, so boundaries fall at n/2, n*sqrt(2)/2, n*sqrt(3)/2.
	const n = 10000
	parts := WeightedSplit(Range{0, n}, 4, func(i int) float64 { return float64(i) })
	total := float64(n) * float64(n-1) / 2
	for k, p := range parts {
		var w float64
		for i := p.Begin; i < p.End; i++ {
			w += float64(i)
		}
		frac := w / total
		if math.Abs(frac-0.25) > 0.01 {
			t.Errorf("partition %d carries %.3f of the weight, want ~0.25", k, frac)
		}
	}
	// First boundary near n/sqrt(4) = n/2.
	if b := parts[0].End; b < n/2-100 || b > n/2+100 {
		t.Errorf("first boundary at %d, want ~%d", b, n/2)
	}
}

func TestWeightedSplitNilAndZeroWeights(t *testing.T) {
	equal := (Range{0, 100}).Split(4)
	for name, w := range map[string]func(int) float64{
		"nil":  nil,
		"zero": func(int) float64 { return 0 },
	} {
		parts := WeightedSplit(Range{0, 100}, 4, w)
		for i := range equal {
			if parts[i] != equal[i] {
				t.Fatalf("%s weights: partition %d = %v, want equal split %v", name, i, parts[i], equal[i])
			}
		}
	}
}

func TestWeightedSplitNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	WeightedSplit(Range{0, 10}, 2, func(i int) float64 { return -1 })
}

func TestNewPartitionSetParts(t *testing.T) {
	parts := WeightedSplit(Range{0, 1000}, 8, func(i int) float64 { return float64(i + 1) })
	ps := NewPartitionSetParts(parts)
	if ps.R() != 8 {
		t.Fatalf("R = %d", ps.R())
	}
	total := 0
	for r := 0; r < 8; r++ {
		total += ps.Partition(r).Len()
	}
	if total != 1000 {
		t.Fatalf("partitions cover %d iterations", total)
	}
	// Claiming still works over custom partitions.
	c := NewClaimer(ps, 3)
	count := 0
	for {
		if _, ok := c.Next(); !ok {
			break
		}
		count++
	}
	if count != 8 || !ps.AllClaimed() {
		t.Fatalf("claimed %d partitions", count)
	}
}

func TestNewPartitionSetPartsValidation(t *testing.T) {
	for name, parts := range map[string][]Range{
		"non-power-of-two": {{0, 1}, {1, 2}, {2, 3}},
		"gap":              {{0, 1}, {2, 3}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s partitions did not panic", name)
				}
			}()
			NewPartitionSetParts(parts)
		}()
	}
}

// Property: weighted partitions never differ from the ideal quantile by
// more than the largest single weight (the walk overshoots by at most one
// iteration's weight).
func TestQuickWeightedSplitQuantiles(t *testing.T) {
	prop := func(seed uint16, nRaw uint8) bool {
		n := int(nRaw)%200 + 8
		weight := func(i int) float64 {
			x := uint32(i+1) * (uint32(seed) + 3)
			return float64(x%97) + 1
		}
		total := 0.0
		maxW := 0.0
		for i := 0; i < n; i++ {
			total += weight(i)
			if weight(i) > maxW {
				maxW = weight(i)
			}
		}
		parts := WeightedSplit(Range{0, n}, 4, weight)
		acc := 0.0
		for k := 0; k < 3; k++ {
			for i := parts[k].Begin; i < parts[k].End; i++ {
				acc += weight(i)
			}
			target := total * float64(k+1) / 4
			if acc < target-1e-9 || acc > target+maxW+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
