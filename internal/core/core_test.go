package core

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"hybridloop/internal/rng"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{
		-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 7: 8, 8: 8, 9: 16,
		31: 32, 32: 32, 33: 64, 1000: 1024, 1 << 20: 1 << 20,
	}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestRangeSplitCoversExactly(t *testing.T) {
	for _, tc := range []struct{ begin, end, n int }{
		{0, 0, 1}, {0, 1, 1}, {0, 10, 3}, {0, 10, 16}, {5, 29, 4},
		{0, 1024, 32}, {-7, 13, 5}, {0, 100, 7},
	} {
		parts := (Range{tc.begin, tc.end}).Split(tc.n)
		if len(parts) != tc.n {
			t.Fatalf("Split(%d) returned %d parts", tc.n, len(parts))
		}
		pos := tc.begin
		for i, p := range parts {
			if p.Begin != pos {
				t.Fatalf("range %v part %d begins at %d, want %d", tc, i, p.Begin, pos)
			}
			if p.Len() < 0 {
				t.Fatalf("range %v part %d has negative length", tc, i)
			}
			pos = p.End
		}
		if pos != tc.end {
			t.Fatalf("range %v parts end at %d, want %d", tc, pos, tc.end)
		}
	}
}

func TestRangeSplitBalanced(t *testing.T) {
	// Partition sizes may differ by at most one iteration.
	parts := (Range{0, 103}).Split(8)
	min, max := parts[0].Len(), parts[0].Len()
	for _, p := range parts {
		if l := p.Len(); l < min {
			min = l
		} else if l > max {
			max = l
		}
	}
	if max-min > 1 {
		t.Errorf("partition sizes range from %d to %d; want spread <= 1", min, max)
	}
}

func TestClaimOrderIsPermutation(t *testing.T) {
	for r := 1; r <= 64; r *= 2 {
		for w := 0; w < r; w++ {
			seen := make([]bool, r)
			for _, p := range ClaimOrder(w, r) {
				if p < 0 || p >= r || seen[p] {
					t.Fatalf("R=%d w=%d: claim order not a permutation: %v", r, w, ClaimOrder(w, r))
				}
				seen[p] = true
			}
		}
	}
}

func TestClaimOrderStartsAtDesignated(t *testing.T) {
	for r := 1; r <= 128; r *= 2 {
		for w := 0; w < r; w++ {
			if got := ClaimOrder(w, r)[0]; got != w {
				t.Fatalf("R=%d w=%d: first partition %d, want designated %d", r, w, got, w)
			}
		}
	}
}

// TestSoloWorkerClaimsAll verifies Theorem 3 in the degenerate case: a
// single worker running the heuristic alone claims every partition exactly
// once, in its deterministic XOR order, with zero failed claims.
func TestSoloWorkerClaimsAll(t *testing.T) {
	for r := 1; r <= 256; r *= 2 {
		for w := 0; w < r; w++ {
			ps := NewPartitionSetR(0, r*10, r)
			c := NewClaimer(ps, w)
			var got []int
			for {
				p, ok := c.Next()
				if !ok {
					break
				}
				got = append(got, p)
			}
			want := ClaimOrder(w, r)
			if len(got) != len(want) {
				t.Fatalf("R=%d w=%d: claimed %d partitions, want %d", r, w, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("R=%d w=%d: order %v, want %v", r, w, got, want)
				}
			}
			if c.Failed() != 0 {
				t.Fatalf("R=%d w=%d: %d failed claims running solo", r, w, c.Failed())
			}
			if !ps.AllClaimed() {
				t.Fatalf("R=%d w=%d: not all partitions claimed", r, w)
			}
		}
	}
}

// runInterleaved drives one Claimer per participating worker, interleaving
// their Next calls in an arbitrary schedule chosen by pick, and returns the
// per-partition claim counts plus per-worker failed-claim counts.
func runInterleaved(ps *PartitionSet, workers []int, pick func(active []int) int) (claims []int, maxStreaks map[int]int) {
	claims = make([]int, ps.R())
	maxStreaks = make(map[int]int)
	claimers := make(map[int]*Claimer)
	active := append([]int(nil), workers...)
	for _, w := range workers {
		claimers[w] = NewClaimer(ps, w)
	}
	for len(active) > 0 {
		k := pick(active)
		w := active[k]
		c := claimers[w]
		p, ok := c.Next()
		if ok {
			claims[p]++
		}
		if c.Done() {
			maxStreaks[w] = c.MaxFailStreak()
			active = append(active[:k], active[k+1:]...)
		}
	}
	return claims, maxStreaks
}

// TestTheorem3Exhaustive checks, for every R up to 16, every subset size of
// participating workers, and many random interleavings, that every
// partition is claimed exactly once (Theorem 3) and that no worker fails
// more than lg R claims per entry (Lemma 4).
func TestTheorem3Exhaustive(t *testing.T) {
	gen := rng.NewXoshiro256(42)
	for _, r := range []int{1, 2, 4, 8, 16} {
		for nw := 1; nw <= r; nw++ {
			for trial := 0; trial < 50; trial++ {
				ps := NewPartitionSetR(0, 1000, r)
				workers := gen.PermPrefix(r, nw)
				claims, streaks := runInterleaved(ps, workers, func(active []int) int {
					return gen.Intn(len(active))
				})
				for p, n := range claims {
					if n != 1 {
						t.Fatalf("R=%d workers=%v: partition %d claimed %d times", r, workers, p, n)
					}
				}
				lg := bits.TrailingZeros(uint(r))
				for w, s := range streaks {
					if s > lg {
						t.Fatalf("R=%d worker %d: fail streak %d > lg R = %d", r, w, s, lg)
					}
				}
				if !ps.AllClaimed() {
					t.Fatalf("R=%d workers=%v: partitions left unclaimed", r, workers)
				}
			}
		}
	}
}

// TestLemma2GroupIdentity verifies the structural identity used in the
// Lemma 2 proof: a level-n partition group of one worker coincides with a
// level-n partition group of any other worker (with a shifted x), i.e.
// partition groups at each level form the same fixed blocks of partitions
// regardless of worker.
func TestLemma2GroupIdentity(t *testing.T) {
	const logR = 5
	r := 1 << logR
	for n := 0; n <= logR; n++ {
		// The level-n groups of worker 0 are the canonical blocks.
		blocks := make(map[int]int) // partition -> block id under worker 0
		for x := 0; x < r>>n; x++ {
			for _, p := range PartitionGroup(0, x, n) {
				blocks[p] = x
			}
		}
		for w := 0; w < r; w++ {
			for x := 0; x < r>>n; x++ {
				g := PartitionGroup(w, x, n)
				id := blocks[g[0]]
				for _, p := range g {
					if blocks[p] != id {
						t.Fatalf("level %d: worker %d group x=%d spans worker-0 blocks: %v", n, w, x, g)
					}
				}
			}
		}
	}
}

// TestIndexGroupNesting verifies the two index-group properties stated in
// Section IV: I(x,n) = I(2x,n-1) u I(2x+1,n-1), and each I(x,n) lies in a
// single level-(n+1) group.
func TestIndexGroupNesting(t *testing.T) {
	const logR = 6
	for n := 1; n <= logR; n++ {
		for x := 0; x < 1<<(logR-n); x++ {
			want := append(IndexGroup(2*x, n-1), IndexGroup(2*x+1, n-1)...)
			got := IndexGroup(x, n)
			if len(got) != len(want) {
				t.Fatalf("I(%d,%d) has %d elements, want %d", x, n, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("I(%d,%d) = %v, want %v", x, n, got, want)
				}
			}
		}
	}
	for n := 0; n < logR; n++ {
		for x := 0; x < 1<<(logR-n); x++ {
			parent := x / 2
			for _, i := range IndexGroup(x, n) {
				if i>>(n+1) != parent {
					t.Fatalf("I(%d,%d) element %d outside parent group %d", x, n, i, parent)
				}
			}
		}
	}
}

func TestNextIndexSkipsByLowBit(t *testing.T) {
	cases := map[int]int{1: 2, 2: 4, 3: 4, 4: 8, 5: 6, 6: 8, 7: 8, 12: 16, 20: 24}
	for in, want := range cases {
		if got := NextIndex(in); got != want {
			t.Errorf("NextIndex(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNextIndexPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NextIndex(0) did not panic")
		}
	}()
	NextIndex(0)
}

// TestLemma4Bound verifies by exhaustive walk that from any index i, at
// most lg R consecutive failed claims can occur before i >= R.
func TestLemma4Bound(t *testing.T) {
	for logR := 0; logR <= 12; logR++ {
		r := 1 << logR
		for i := 1; i < r; i++ {
			steps := 0
			for j := i; j < r; j = NextIndex(j) {
				steps++
				if steps > logR {
					t.Fatalf("R=%d: more than lg R = %d failures starting at i=%d", r, logR, i)
				}
			}
		}
	}
}

// TestConcurrentClaiming runs real goroutines hammering one PartitionSet
// and checks exactly-once claiming under true concurrency (run with -race).
func TestConcurrentClaiming(t *testing.T) {
	const r = 64
	for trial := 0; trial < 20; trial++ {
		ps := NewPartitionSetR(0, 1<<20, r)
		counts := make([]atomic.Int32, r)
		var wg sync.WaitGroup
		for w := 0; w < r; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := NewClaimer(ps, w)
				for {
					p, ok := c.Next()
					if !ok {
						return
					}
					counts[p].Add(1)
				}
			}(w)
		}
		wg.Wait()
		for p := range counts {
			if n := counts[p].Load(); n != 1 {
				t.Fatalf("trial %d: partition %d executed %d times", trial, p, n)
			}
		}
		if !ps.AllClaimed() {
			t.Fatal("partitions left unclaimed after concurrent run")
		}
	}
}

// TestQuickClaimPermutation is a testing/quick property: for arbitrary
// worker ids and any power-of-two R, the XOR mapping i -> i^w is a
// permutation of the partition space (the bijectivity Claim relies on).
func TestQuickClaimPermutation(t *testing.T) {
	prop := func(wRaw uint8, logR uint8) bool {
		r := 1 << (logR % 9)
		w := int(wRaw) & (r - 1)
		seen := make([]bool, r)
		for i := 0; i < r; i++ {
			p := (i ^ w) & (r - 1)
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickInterleavedExactlyOnce is a testing/quick property over random
// schedules: any interleaving of any worker subset claims each partition
// exactly once.
func TestQuickInterleavedExactlyOnce(t *testing.T) {
	prop := func(seed uint64, logR uint8, nwRaw uint8) bool {
		r := 1 << (logR%6 + 1) // R in {2..64}
		nw := int(nwRaw)%r + 1
		gen := rng.NewXoshiro256(seed)
		ps := NewPartitionSetR(0, 4096, r)
		workers := gen.PermPrefix(r, nw)
		claims, _ := runInterleaved(ps, workers, func(active []int) int {
			return gen.Intn(len(active))
		})
		for _, n := range claims {
			if n != 1 {
				return false
			}
		}
		return ps.AllClaimed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPartitionSetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPartitionSetR(0, 10, 3) did not panic on non-power-of-two R")
		}
	}()
	NewPartitionSetR(0, 10, 3)
}

func TestNewPartitionSetRoundsUp(t *testing.T) {
	ps := NewPartitionSet(0, 100, 5) // P=5 -> R=8
	if ps.R() != 8 {
		t.Fatalf("R = %d, want 8", ps.R())
	}
	// The extra partitions must still be part of the iteration cover.
	total := 0
	for r := 0; r < ps.R(); r++ {
		total += ps.Partition(r).Len()
	}
	if total != 100 {
		t.Fatalf("partitions cover %d iterations, want 100", total)
	}
}

func TestPeekClaimed(t *testing.T) {
	ps := NewPartitionSetR(0, 80, 8)
	if ps.PeekClaimed(3) {
		t.Fatal("fresh partition reported claimed")
	}
	if !ps.ClaimPartition(3) {
		t.Fatal("first direct claim failed")
	}
	if !ps.PeekClaimed(3) {
		t.Fatal("claimed partition reported unclaimed")
	}
	if ps.ClaimPartition(3) {
		t.Fatal("second direct claim succeeded")
	}
	if ps.FailedClaims() != 1 {
		t.Fatalf("FailedClaims = %d, want 1", ps.FailedClaims())
	}
}
