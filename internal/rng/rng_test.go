package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for splitmix64 with seed 1234567, from the public
	// domain reference implementation by Sebastiano Vigna.
	sm := NewSplitMix64(1234567)
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Fatalf("splitmix64 value %d = %d, want %d", i, got, w)
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := NewXoshiro256(99)
	b := NewXoshiro256(99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced diverging sequences")
		}
	}
	c := NewXoshiro256(100)
	same := 0
	a = NewXoshiro256(99)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical values", same)
	}
}

func TestUint64nRange(t *testing.T) {
	x := NewXoshiro256(7)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := x.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) returned %d", n, v)
			}
		}
	}
}

func TestIntnUniformish(t *testing.T) {
	x := NewXoshiro256(11)
	const buckets, samples = 8, 80000
	var count [buckets]int
	for i := 0; i < samples; i++ {
		count[x.Intn(buckets)]++
	}
	want := float64(samples) / buckets
	for b, c := range count {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Errorf("bucket %d has %d samples, want ~%.0f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 returned %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewXoshiro256(1).Intn(0)
}

func TestNPBFirstValues(t *testing.T) {
	// x_1 = 5^13 * 271828183 mod 2^46; check the integer recurrence
	// directly against big-number arithmetic done by hand:
	g := NewNPB(NPBDefaultSeed)
	g.Next()
	want := (uint64(271828183) * 1220703125) & ((1 << 46) - 1)
	if g.Seed() != want {
		t.Fatalf("NPB x_1 = %d, want %d", g.Seed(), want)
	}
}

func TestNPBValuesInUnitInterval(t *testing.T) {
	g := NewNPB(NPBDefaultSeed)
	for i := 0; i < 10000; i++ {
		v := g.Next()
		if v <= 0 || v >= 1 {
			t.Fatalf("NPB value %d = %v outside (0,1)", i, v)
		}
	}
}

func TestNPBSkipMatchesSequential(t *testing.T) {
	for _, n := range []uint64{0, 1, 2, 3, 17, 1000, 65536, 1 << 20} {
		seq := NewNPB(NPBDefaultSeed)
		for i := uint64(0); i < n; i++ {
			seq.Next()
		}
		skip := NewNPB(NPBDefaultSeed)
		skip.Skip(n)
		if seq.Seed() != skip.Seed() {
			t.Fatalf("Skip(%d) state %d, sequential state %d", n, skip.Seed(), seq.Seed())
		}
	}
}

func TestNPBSkipComposes(t *testing.T) {
	prop := func(a, b uint16) bool {
		g1 := NewNPB(NPBDefaultSeed)
		g1.Skip(uint64(a))
		g1.Skip(uint64(b))
		g2 := NewNPB(NPBDefaultSeed)
		g2.Skip(uint64(a) + uint64(b))
		return g1.Seed() == g2.Seed()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := NewXoshiro256(5)
	for _, n := range []int{0, 1, 2, 7, 100} {
		p := x.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermPrefixDistinct(t *testing.T) {
	x := NewXoshiro256(6)
	prop := func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%50 + 1
		k := int(kRaw) % (n + 5)
		p := x.PermPrefix(n, k)
		if k > n && len(p) != n {
			return false
		}
		seen := map[int]bool{}
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	x := NewXoshiro256(8)
	s := []int{1, 1, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range s {
		sum += v
	}
	x.Shuffle(s)
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum || len(s) != 7 {
		t.Fatalf("Shuffle changed contents: %v", s)
	}
}

func BenchmarkXoshiroNext(b *testing.B) {
	x := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Next()
	}
	_ = sink
}

func BenchmarkNPBNext(b *testing.B) {
	g := NewNPB(NPBDefaultSeed)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += g.Next()
	}
	_ = sink
}
