package rng

// Perm returns a uniformly random permutation of [0, n) via Fisher–Yates.
func (x *Xoshiro256) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// PermPrefix returns k distinct values drawn uniformly from [0, n) — the
// first k entries of a random permutation, computed with a partial
// Fisher–Yates shuffle.
func (x *Xoshiro256) PermPrefix(n, k int) []int {
	if k > n {
		k = n
	}
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + x.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}

// Shuffle randomly permutes the elements of a slice of ints in place.
func (x *Xoshiro256) Shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
