// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the runtime and the simulator.
//
// The work-stealing scheduler needs per-worker generators that are cheap
// (a steal attempt is on the hot path), independent (workers must not
// share state), and seedable (the simulator demands exact reproducibility).
// The package provides:
//
//   - SplitMix64: a tiny generator mainly used to seed others and to derive
//     independent streams from a single master seed.
//   - Xoshiro256: xoshiro256** — the general-purpose generator for victim
//     selection and workload generation.
//   - NPB: the linear congruential generator specified by the NAS Parallel
//     Benchmarks (a = 5^13, modulus 2^46), needed by the EP kernel, which
//     defines its output in terms of this exact sequence.
package rng

// SplitMix64 is Steele, Lea & Flood's splitmix64 generator. The zero value
// is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 is Blackman & Vigna's xoshiro256** generator.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is derived from seed via
// SplitMix64, as recommended by the xoshiro authors. Distinct seeds yield
// independent streams for practical purposes.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// Guard against the (astronomically unlikely) all-zero state, which is
	// the one fixed point of the generator.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Next returns the next value in the sequence.
func (x *Xoshiro256) Next() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// It uses Lemire's multiply-shift reduction (without the rejection step;
// the bias is < 2^-64 * n, negligible for victim selection and workloads).
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, _ := mul64(x.Next(), n)
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Next()>>11) / (1 << 53)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	return a1*b1 + t>>32 + w1>>32, a * b
}

// NPB is the pseudo-random number generator specified by the NAS Parallel
// Benchmarks: x_{k+1} = a * x_k mod 2^46 with a = 5^13, returning
// x_k * 2^-46 in (0, 1). The EP kernel's output is defined in terms of this
// exact sequence, so we implement it bit-for-bit (in integer arithmetic
// rather than the Fortran double-double trick).
type NPB struct {
	x uint64
}

// NPBDefaultSeed is the canonical seed used by the NPB reference
// implementations (271828183, the digits of e).
const NPBDefaultSeed = 271828183

const (
	npbA    = 1220703125      // 5^13
	npbMask = (1 << 46) - 1   // modulus 2^46
	npbNorm = 1.0 / (1 << 46) // 2^-46
)

// NewNPB returns an NPB generator with the given seed (x_0).
func NewNPB(seed uint64) *NPB {
	return &NPB{x: seed & npbMask}
}

// Next advances the sequence and returns x_{k+1} * 2^-46 in (0, 1).
func (g *NPB) Next() float64 {
	g.x = (g.x * npbA) & npbMask
	return float64(g.x) * npbNorm
}

// Seed returns the current raw state x_k.
func (g *NPB) Seed() uint64 { return g.x }

// SetSeed sets the raw state to x (mod 2^46).
func (g *NPB) SetSeed(x uint64) { g.x = x & npbMask }

// Skip advances the generator by n steps in O(log n) time using
// exponentiation by squaring: x_{k+n} = a^n * x_k mod 2^46. NPB's EP kernel
// relies on this to give each parallel chunk an independent slice of the
// one global sequence.
func (g *NPB) Skip(n uint64) {
	a := uint64(npbA)
	x := g.x
	for n > 0 {
		if n&1 == 1 {
			x = (x * a) & npbMask
		}
		a = (a * a) & npbMask
		n >>= 1
	}
	g.x = x
}
