package adaptive

import (
	"testing"
	"time"
)

// testArms is a fixed three-arm candidate set: arm 1 is made the
// cheapest by the synthetic cost model in play().
func testArms(n, workers int) []Arm {
	return []Arm{
		{Strategy: 0, ChunkScale: 1},
		{Strategy: 1, ChunkScale: 1},
		{Strategy: 2, ChunkScale: 1, NoBalance: true},
	}
}

func newTestTuner(seed uint64, opts ...func(*Config)) *Tuner {
	cfg := Config{Seed: seed, Workers: 4, Arms: testArms, ReexploreEvery: -1}
	for _, o := range opts {
		o(&cfg)
	}
	return NewTuner(cfg)
}

const testPC = uintptr(0xbeef00)

// play runs one Decide/Report round with cost-per-iteration costs[arm].
func play(t *Tuner, n int, costs []float64) Decision {
	d := t.Decide(testPC, n, 64)
	t.Report(d, Observation{
		Elapsed:    time.Duration(costs[d.ArmIndex] * float64(n)),
		Iterations: n,
		Chunks:     8,
	})
	return d
}

func TestExploreThenCommit(t *testing.T) {
	tu := newTestTuner(1)
	costs := []float64{100, 40, 200}
	// 3 arms x 2 explore plays.
	seen := map[int]int{}
	for i := 0; i < 6; i++ {
		d := play(tu, 1000, costs)
		if !d.Exploring {
			t.Fatalf("play %d: expected exploration, got committed arm %d", i, d.ArmIndex)
		}
		seen[d.ArmIndex]++
	}
	for a := 0; a < 3; a++ {
		if seen[a] != 2 {
			t.Fatalf("arm %d played %d times during exploration, want 2 (%v)", a, seen[a], seen)
		}
	}
	for i := 0; i < 10; i++ {
		d := play(tu, 1000, costs)
		if d.Exploring || d.ArmIndex != 1 {
			t.Fatalf("after exploration: got arm %d (exploring=%v), want committed arm 1",
				d.ArmIndex, d.Exploring)
		}
	}
	sites := tu.Sites()
	if len(sites) != 1 || sites[0].State != "committed" || sites[0].Committed != 1 {
		t.Fatalf("site snapshot: %+v", sites)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	costs := []float64{100, 40, 200}
	run := func() []int {
		tu := newTestTuner(7)
		var order []int
		for i := 0; i < 20; i++ {
			order = append(order, play(tu, 1000, costs).ArmIndex)
		}
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical runs: %v vs %v", i, a, b)
		}
	}
}

func TestBucketsSeparateSites(t *testing.T) {
	tu := newTestTuner(1)
	tu.Decide(testPC, 100, 4)
	tu.Decide(testPC, 100000, 64)
	if got := len(tu.Sites()); got != 2 {
		t.Fatalf("trip counts 100 and 100000 share a profile: %d sites", got)
	}
}

func TestDriftTriggersReexplore(t *testing.T) {
	tu := newTestTuner(3)
	costs := []float64{100, 40, 200}
	for i := 0; i < 12; i++ {
		play(tu, 1000, costs)
	}
	if s := tu.Sites()[0]; s.State != "committed" || s.Committed != 1 {
		t.Fatalf("precondition: not committed to arm 1: %+v", s)
	}
	// The workload shifts: the committed arm becomes 10x more expensive,
	// arm 0 becomes the cheapest.
	shifted := []float64{60, 400, 200}
	for i := 0; i < 60; i++ {
		play(tu, 1000, shifted)
	}
	s := tu.Sites()[0]
	if s.Reexplores == 0 {
		t.Fatal("10x cost drift never triggered re-exploration")
	}
	if s.State != "committed" || s.Committed != 0 {
		t.Fatalf("after drift: state=%s committed=%d, want committed arm 0", s.State, s.Committed)
	}
}

func TestImprovementReanchorsWithoutReexplore(t *testing.T) {
	tu := newTestTuner(4)
	costs := []float64{100, 40, 200}
	for i := 0; i < 12; i++ {
		play(tu, 1000, costs)
	}
	// The committed arm gets 5x cheaper (caches warming): the reference
	// cost must follow it down without abandoning the commitment.
	better := []float64{100, 8, 200}
	for i := 0; i < 40; i++ {
		play(tu, 1000, better)
	}
	s := tu.Sites()[0]
	if s.Reexplores != 0 {
		t.Fatalf("improvement of the committed arm triggered %d re-explorations", s.Reexplores)
	}
	if s.State != "committed" || s.Committed != 1 {
		t.Fatalf("state=%s committed=%d after improvement, want committed arm 1", s.State, s.Committed)
	}
}

func TestImbalanceEvictsNoBalanceArm(t *testing.T) {
	tu := newTestTuner(5)
	// Arm 2 (NoBalance) is the cheapest, so the site commits to it.
	costs := []float64{100, 90, 40}
	for i := 0; i < 12; i++ {
		play(tu, 1000, costs)
	}
	if s := tu.Sites()[0]; s.Committed != 2 {
		t.Fatalf("precondition: committed to %d, want the NoBalance arm 2", s.Committed)
	}
	// Same cost, but the invocation turns heavily imbalanced.
	for i := 0; i < 40; i++ {
		d := tu.Decide(testPC, 1000, 64)
		el := time.Duration(costs[d.ArmIndex] * 1000)
		tu.Report(d, Observation{
			Elapsed: el, Iterations: 1000, Chunks: 8,
			Imbalance: el * 9 / 10,
		})
	}
	if s := tu.Sites()[0]; s.Reexplores == 0 {
		t.Fatal("sustained imbalance on a NoBalance arm never triggered re-exploration")
	}
}

func TestPeriodicReexplore(t *testing.T) {
	tu := newTestTuner(9, func(c *Config) { c.ReexploreEvery = 16 })
	costs := []float64{100, 40, 200}
	explored := 0
	for i := 0; i < 80; i++ {
		if play(tu, 1000, costs).Exploring {
			explored++
		}
	}
	// Initial exploration is 6 plays; periodic refreshes add more.
	if explored <= 6 {
		t.Fatalf("no periodic refresh happened: %d exploring plays", explored)
	}
	// The cutoff can land mid-refresh; finish the in-flight refresh (at
	// most one play per arm) before checking where it recommits.
	for i := 0; i < len(costs) && tu.Sites()[0].State != "committed"; i++ {
		play(tu, 1000, costs)
	}
	if s := tu.Sites()[0]; s.State != "committed" || s.Committed != 1 {
		t.Fatalf("refreshes should recommit to arm 1: %+v", s)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	tu := newTestTuner(1)
	costs := []float64{100, 40, 200}
	for i := 0; i < 12; i++ {
		play(tu, 1000, costs)
	}
	data, err := tu.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}

	fresh := newTestTuner(2)
	if err := fresh.LoadJSON(data); err != nil {
		t.Fatal(err)
	}
	d := fresh.Decide(testPC, 1000, 64)
	if d.Exploring || d.ArmIndex != 1 {
		t.Fatalf("warm-started site should skip exploration: arm %d exploring=%v",
			d.ArmIndex, d.Exploring)
	}

	// A changed arm set degrades to exploration instead of misapplying
	// the committed index.
	other := NewTuner(Config{Seed: 1, Workers: 4, Arms: func(n, w int) []Arm {
		return []Arm{{Strategy: 9, ChunkScale: 1}}
	}})
	if err := other.LoadJSON(data); err != nil {
		t.Fatal(err)
	}
	if d := other.Decide(testPC, 1000, 64); !d.Exploring {
		t.Fatal("committed state transferred onto a different arm set")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	tu := newTestTuner(1)
	if err := tu.LoadJSON([]byte("{nope")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if err := tu.LoadJSON([]byte(`{"version": 99, "sites": []}`)); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func TestDecisionChunkResolution(t *testing.T) {
	tu := NewTuner(Config{Seed: 1, Workers: 4, Arms: func(n, w int) []Arm {
		return []Arm{{Strategy: 0, ChunkScale: 0.25}, {Strategy: 0, ChunkScale: 4}, {Serial: true, ChunkScale: 1}}
	}})
	for i := 0; i < 3; i++ {
		d := tu.Decide(testPC, 500, 100)
		switch {
		case d.Arm.Serial:
			if d.SerialCutoff < 500 {
				t.Fatalf("serial arm: SerialCutoff %d < trip count", d.SerialCutoff)
			}
		case d.Arm.ChunkScale == 0.25:
			if d.Chunk != 25 {
				t.Fatalf("scale 0.25 of base 100: chunk %d", d.Chunk)
			}
		case d.Arm.ChunkScale == 4:
			if d.Chunk != 400 {
				t.Fatalf("scale 4 of base 100: chunk %d", d.Chunk)
			}
		}
		tu.Report(tu.Decide(testPC, 500, 100), Observation{})
	}
}
