package adaptive

import (
	"strconv"

	"hybridloop/internal/metrics"
)

// RegisterMetrics exposes the tuner's per-site state on r as scrape-time
// collectors built from Sites() snapshots — the committed fast path and
// the Decide/Report slow path are untouched. Nil-safe.
//
// Cardinality: one series set per (site, trip-count bucket) profile.
// Sites are static call sites of Auto loops, so the set is bounded by
// the program text, not by traffic. Per-arm detail stays out of the
// exposition (arms × sites would multiply the series count for data the
// JSON snapshot already carries); the committed arm index is exposed as
// a gauge instead.
func (t *Tuner) RegisterMetrics(r *metrics.Registry) {
	if r == nil || t == nil {
		return
	}
	perSite := func(name, help string, kind metrics.Kind, field func(SiteSnapshot) float64) {
		r.OnCollect(name, help, kind, func(emit func(metrics.Labels, float64)) {
			for _, s := range t.Sites() {
				emit(metrics.L("site", s.Site, "bucket", strconv.Itoa(int(s.Bucket))), field(s))
			}
		})
	}
	perSite("hybridloop_tuner_decisions_total", "tuning decisions made per site profile", metrics.KindCounter,
		func(s SiteSnapshot) float64 { return float64(s.Decisions) })
	perSite("hybridloop_tuner_reexplores_total", "drift-triggered re-exploration rounds per site profile", metrics.KindCounter,
		func(s SiteSnapshot) float64 { return float64(s.Reexplores) })
	perSite("hybridloop_tuner_discards_total", "cancelled plays dropped un-reported per site profile", metrics.KindCounter,
		func(s SiteSnapshot) float64 { return float64(s.Discards) })
	perSite("hybridloop_tuner_committed", "1 when the site profile has committed to an arm", metrics.KindGauge,
		func(s SiteSnapshot) float64 {
			if s.State == "committed" {
				return 1
			}
			return 0
		})
	perSite("hybridloop_tuner_committed_arm", "committed arm index (-1 while exploring)", metrics.KindGauge,
		func(s SiteSnapshot) float64 {
			if s.State != "committed" {
				return -1
			}
			return float64(s.Committed)
		})
	perSite("hybridloop_tuner_ewma_cost_ns", "EWMA per-iteration cost of the committed arm, ns", metrics.KindGauge,
		func(s SiteSnapshot) float64 { return s.EWMACost })
	perSite("hybridloop_tuner_imbalance_frac", "busy-time imbalance fraction observed at the site", metrics.KindGauge,
		func(s SiteSnapshot) float64 { return s.Imbalance })
}
