package adaptive

import "sync/atomic"

// The committed-site fast path: once a site commits, steady-state Decide
// must not pay the tuner mutex or a map lookup per invocation — on a
// fine-grained Auto loop that lock round trip is the dominant per-call
// tax. Two lock-free structures remove it:
//
//   - An immutable open-addressed site table (siteTable), republished by
//     lookup whenever a new site or PC alias is created, resolves
//     SiteKey → *site with one hash and a short linear probe.
//   - A per-site inline decision slot (site.fast, an atomic pointer),
//     published by commit and adoptSnapshot and cleared by startExplore,
//     carries everything Decide needs to answer without the lock.
//
// A fast Decide costs one table probe, one pointer load, and one counter
// increment. The counter doubles as the observation sampler: every
// fastSamplePeriod-th play falls through to the locked slow path, which
// folds the skipped plays into the site's counters (so decision counts
// stay exact and ReexploreEvery still fires) and routes that one play
// through site.next — keeping the drift/imbalance re-exploration signals
// alive at 1/fastSamplePeriod of the full observation cost.
//
// Re-exploration swaps the slot: startExplore folds the pending count and
// clears site.fast, so new invocations take the locked path again. An
// invocation that loaded the old slot just before the swap still runs the
// stale committed configuration once — harmless, it was the best known
// configuration a moment ago — and its play count dies with the detached
// slot (decision counts can undercount by at most the in-flight stragglers
// of one swap).

// fastSamplePeriod is the sampling ratio of the committed fast path: one
// invocation in this many is observed (timed, reported, drift-checked);
// the rest run the committed configuration unobserved.
const fastSamplePeriod = 16

// fastDecision is the inline slot of one committed site: an immutable
// copy of everything Decide needs, plus the play counter/sampler.
type fastDecision struct {
	arm       Arm
	armIndex  int
	chunkCost int64 // committed arm's EWMA ns per chunk (poll-stride hint)
	plays     atomic.Int64
}

// decision materializes an unobserved Decision for a loop of n iterations
// with base chunk baseChunk. site is left nil: Report/Discard on it are
// no-ops, and Observe tells the caller to skip measurement entirely.
//
//sched:noalloc
func (fd *fastDecision) decision(n, baseChunk int) Decision {
	d := Decision{
		Arm:            fd.arm,
		ArmIndex:       fd.armIndex,
		ChunkCostNanos: fd.chunkCost,
	}
	if baseChunk < 1 {
		baseChunk = 1
	}
	d.Chunk = baseChunk
	if fd.arm.ChunkScale > 0 && fd.arm.ChunkScale != 1 {
		d.Chunk = int(float64(baseChunk)*fd.arm.ChunkScale + 0.5)
		if d.Chunk < 1 {
			d.Chunk = 1
		}
	}
	if fd.arm.Serial {
		d.SerialCutoff = n
	}
	return d
}

// publishFast installs the inline slot for the site's committed arm.
// Caller holds the tuner lock and has set s.committed.
func (s *site) publishFast() {
	s.fast.Store(&fastDecision{
		arm:       s.arms[s.committed],
		armIndex:  s.committed,
		chunkCost: int64(s.stats[s.committed].ChunkCost),
	})
}

// foldFastPlays folds the unobserved plays accumulated on the fast path
// into the site's counters, minus exclude plays the caller routes through
// site.next itself. Caller holds the tuner lock. Folding keeps Decisions
// exact and advances playsSinceCommit so the periodic refresh fires on
// schedule (at the first sampled play past the threshold).
func (s *site) foldFastPlays(exclude int64) {
	fd := s.fast.Load()
	if fd == nil {
		return
	}
	n := fd.plays.Swap(0) - exclude
	if n <= 0 {
		return
	}
	s.decisions += n
	if s.state == stateCommitted && s.committed >= 0 {
		s.playsSinceCommit += n
		s.stats[s.committed].Plays += n
	}
}

// siteTable is an immutable open-addressed SiteKey → *site index with
// linear probing, sized to at most half full. lookup republishes a fresh
// table on every insertion; readers see either the old or the new one.
type siteTable struct {
	mask    uint64
	entries []tableEntry
}

type tableEntry struct {
	key SiteKey
	s   *site
}

func hashKey(key SiteKey) uint64 {
	h := (uint64(key.PC) ^ uint64(key.Bucket)<<56) * 0x9E3779B97F4A7C15
	return h ^ h>>29
}

// get resolves key, or nil if the table has no entry for it. The probe
// sequence terminates at the first empty slot — correct because the
// table is immutable and was built with the same probe order.
func (t *siteTable) get(key SiteKey) *site {
	for i := hashKey(key); ; i++ {
		e := &t.entries[i&t.mask]
		if e.s == nil {
			return nil
		}
		if e.key == key {
			return e.s
		}
	}
}

// rebuildTable republishes the lock-free site index from t.sites. Caller
// holds the tuner lock.
func (t *Tuner) rebuildTable() {
	n := 8
	for n < 2*(len(t.sites)+1) {
		n *= 2
	}
	tab := &siteTable{mask: uint64(n - 1), entries: make([]tableEntry, n)}
	for key, s := range t.sites {
		for i := hashKey(key); ; i++ {
			e := &tab.entries[i&tab.mask]
			if e.s == nil {
				*e = tableEntry{key: key, s: s}
				break
			}
		}
	}
	t.table.Store(tab)
}
