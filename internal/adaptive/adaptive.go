// Package adaptive implements the online autotuner behind the public
// Auto strategy: no single loop schedule dominates (uniform iterations
// favor static affinity, skewed ones favor stealing, tiny trip counts
// favor running inline), so instead of making the caller hard-code a
// Strategy/Chunk per call, the tuner learns the best configuration per
// *loop call site* from runtime feedback.
//
// Every Auto loop is identified by a SiteKey — the caller's program
// counter plus a log2 trip-count bucket, so the same source line run at
// very different sizes is tuned independently. Per site the Tuner keeps a
// profile: for each candidate configuration ("arm") an estimate of the
// cost per iteration (running mean over the first plays, EWMA after),
// mean per-chunk cost, steal / failed-steal / range-steal rates drawn
// from the scheduler's counters, and the busy-time imbalance
// (max − min worker busy nanoseconds within the invocation, as a
// fraction of the wall time).
//
// The policy is an explore-then-commit bandit: each arm is played
// ExplorePlays times in a schedule shuffled by a generator seeded from
// the pool seed (so runs are reproducible given the same invocation
// sequence and observations), then the tuner commits to the cheapest
// arm. Committed sites keep observing: if the EWMA cost rises beyond
// DriftFactor of the reference cost (the commit-time cost, re-anchored
// downward when the arm improves), or a committed arm without dynamic
// load balancing (Static, or the serial shortcut) shows sustained
// busy-time imbalance, the site re-explores
// with one refresh play per arm; a periodic refresh every ReexploreEvery
// committed plays bounds how long a stale commitment can survive
// workload drift the cost signal alone does not show.
//
// Profiles can be snapshotted to JSON and loaded into a fresh Tuner
// (sites are matched by file:line, which is stable across builds, not by
// raw PC), so iterative applications — the paper's affinity case — start
// from a warmed profile instead of re-exploring.
package adaptive

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hybridloop/internal/rng"
)

// Arm is one candidate configuration the bandit chooses among. Strategy
// holds the caller's strategy enum (internal/loop's Strategy as an int;
// the tuner never interprets it), ChunkScale multiplies the loop's base
// chunk size, Serial marks the run-inline shortcut, and NoBalance marks
// configurations with no dynamic load balancing (Static, Serial) so the
// imbalance signal can evict them when the workload turns skewed.
type Arm struct {
	Strategy   int     `json:"strategy"`
	ChunkScale float64 `json:"chunk_scale"`
	Serial     bool    `json:"serial,omitempty"`
	NoBalance  bool    `json:"no_balance,omitempty"`
}

func (a Arm) equal(b Arm) bool { return a == b }

// Config parameterizes a Tuner.
type Config struct {
	// Seed makes exploration schedules reproducible; derive it from the
	// pool seed.
	Seed uint64
	// Workers is the pool's worker count, passed to Arms.
	Workers int
	// Arms returns the candidate configurations for a loop of n
	// iterations. Required.
	Arms func(n, workers int) []Arm
	// ExplorePlays is how many times each arm is played before the site
	// commits. Default 2.
	ExplorePlays int
	// ReexploreEvery forces a one-play-per-arm refresh after this many
	// committed plays. Default 512; <0 disables.
	ReexploreEvery int
	// DriftFactor is the relative EWMA-cost rise above the commitment's
	// reference cost that triggers re-exploration of a committed site
	// (improvements re-anchor the reference instead). Default 0.75.
	DriftFactor float64
	// ImbalanceLimit is the busy-time imbalance fraction above which a
	// committed NoBalance arm is re-explored. Default 0.35.
	ImbalanceLimit float64
	// Alpha is the EWMA smoothing factor. Default 0.25.
	Alpha float64
}

func (c *Config) fill() {
	if c.ExplorePlays <= 0 {
		c.ExplorePlays = 2
	}
	if c.ReexploreEvery == 0 {
		c.ReexploreEvery = 512
	}
	if c.DriftFactor <= 0 {
		c.DriftFactor = 0.75
	}
	if c.ImbalanceLimit <= 0 {
		c.ImbalanceLimit = 0.35
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.25
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
}

// SiteKey identifies one tuned loop site: the call-site program counter
// plus the log2 bucket of the trip count, so one source line invoked at
// very different sizes keeps independent profiles.
type SiteKey struct {
	PC     uintptr
	Bucket uint8
}

// bucketOf maps a trip count to its log2 bucket.
func bucketOf(n int) uint8 {
	if n < 1 {
		return 0
	}
	return uint8(bits.Len(uint(n)))
}

// Observation is the per-invocation feedback reported back for a
// Decision: wall time, trip count, executed chunks, scheduler counter
// deltas, and the busy-time imbalance across workers.
type Observation struct {
	Elapsed      time.Duration
	Iterations   int
	Chunks       int64
	Steals       int64
	FailedSteals int64
	RangeSteals  int64
	LoopEntries  int64
	// Imbalance is max − min per-worker busy time among the workers that
	// executed at least one chunk of the invocation.
	Imbalance time.Duration
}

// Decision is the tuner's answer for one invocation: the chosen arm and
// the concrete Chunk/SerialCutoff to run with. Pass it back to Report
// with the invocation's Observation.
type Decision struct {
	Arm      Arm
	ArmIndex int
	// Chunk is the resolved chunk size (base chunk times the arm's
	// scale), always >= 1.
	Chunk int
	// SerialCutoff is the trip count at or below which the loop should
	// run inline; it is >= the invocation's trip count exactly when the
	// serial arm was chosen.
	SerialCutoff int
	// Exploring reports whether this play is part of an exploration
	// phase (as opposed to the committed configuration).
	Exploring bool
	// Observe reports whether the tuner wants this invocation measured
	// and Reported. Committed sites sample: most steady-state plays come
	// from the lock-free fast path with Observe false, and the caller can
	// skip wall-clock timing, counter snapshots, and the Report call
	// entirely (Report/Discard on an unobserved Decision are no-ops).
	Observe bool
	// ChunkCostNanos is the tuner's EWMA estimate of the cost of one
	// executed chunk under the chosen arm, in nanoseconds; 0 when the arm
	// has no chunk-cost history yet. Callers use it to derive a poll
	// stride without re-measuring the body.
	ChunkCostNanos int64

	site *site
}

const (
	stateExploring = iota
	stateCommitted
)

// armStats is the per-arm slice of a site profile. The stats slices are
// read and folded under the tuner mutex off the loop hot path, but
// Decide on one site can run concurrently with Report on another whose
// stats share the backing array's cache lines, so each entry is padded
// to a full line — the slices are tiny (one entry per candidate arm)
// and the padding keeps neighboring arms' EWMAs from bouncing.
//
//sched:cacheline
type armStats struct {
	Plays        int64
	CostPerIter  float64 // ns per iteration: mean over the first plays, EWMA after
	ChunkCost    float64 // EWMA mean ns per executed chunk
	Steals       float64 // EWMA steals per invocation (deque steals)
	FailedSteals float64 // EWMA failed steal sweeps per invocation
	RangeSteals  float64 // EWMA steal-half range splits per invocation
	Imbalance    float64 // EWMA busy-time imbalance fraction of wall time

	_ [8]byte // pad to one cache line (//sched:cacheline)
}

// observe folds one cost sample into the arm estimate: a plain running
// mean for the first few plays (converges faster from nothing), EWMA
// afterwards (tracks drift).
func (st *armStats) observe(cost, alpha float64) {
	st.Plays++
	switch {
	case st.Plays == 1:
		st.CostPerIter = cost
	case st.Plays <= 4:
		st.CostPerIter += (cost - st.CostPerIter) / float64(st.Plays)
	default:
		st.CostPerIter += alpha * (cost - st.CostPerIter)
	}
}

func ewma(old, sample, alpha float64) float64 {
	if old == 0 {
		return sample
	}
	return old + alpha*(sample-old)
}

// site is one loop site's profile and bandit state.
type site struct {
	key  SiteKey
	name string // file:line, stable across builds (persistence key)
	n    int    // representative trip count (first seen in the bucket)

	arms  []Arm
	stats []armStats

	state     int
	sched     []int // exploration schedule: arm indexes
	pos       int
	committed int

	commitCost       float64 // cost/iter when the commitment was made
	ewmaCost         float64 // EWMA cost/iter of committed plays
	ewmaVar          float64 // EWMA squared deviation of committed plays
	ewmaImb          float64 // EWMA imbalance fraction of committed plays
	playsSinceCommit int64

	decisions  int64
	reexplores int64
	discards   int64 // cancelled/truncated plays dropped without a Report

	// fast is the lock-free inline slot serving steady-state Decide for
	// this site: non-nil exactly while committed, swapped out by
	// startExplore. See fast.go.
	fast atomic.Pointer[fastDecision]

	rng rng.SplitMix64
}

// startExplore installs a fresh exploration schedule of plays rounds
// over all arms, shuffled by the site's deterministic generator.
func (s *site) startExplore(plays int) {
	// Retire the inline slot first: fold its pending unobserved plays so
	// the decision count stays exact, then clear it so new invocations
	// take the locked path while exploration runs.
	s.foldFastPlays(0)
	s.fast.Store(nil)
	s.state = stateExploring
	s.sched = s.sched[:0]
	for p := 0; p < plays; p++ {
		for a := range s.arms {
			s.sched = append(s.sched, a)
		}
	}
	// Fisher–Yates with the site's private stream: reproducible given the
	// tuner seed, independent across sites.
	for i := len(s.sched) - 1; i > 0; i-- {
		j := int(s.rng.Next() % uint64(i+1))
		s.sched[i], s.sched[j] = s.sched[j], s.sched[i]
	}
	s.pos = 0
}

// commit locks the site onto the cheapest played arm. Returns false if
// no arm has a reported play yet (all reports lost to panics).
func (s *site) commit() bool {
	best, bestCost := -1, 0.0
	for i := range s.stats {
		if s.stats[i].Plays == 0 {
			continue
		}
		if best < 0 || s.stats[i].CostPerIter < bestCost {
			best, bestCost = i, s.stats[i].CostPerIter
		}
	}
	if best < 0 {
		return false
	}
	s.state = stateCommitted
	s.committed = best
	s.commitCost = bestCost
	s.ewmaCost = bestCost
	s.ewmaVar = 0
	s.ewmaImb = 0
	s.playsSinceCommit = 0
	s.publishFast()
	return true
}

// next picks the arm for the site's next invocation.
func (s *site) next(cfg *Config) (arm int, exploring bool) {
	s.decisions++
	if s.state == stateCommitted {
		s.playsSinceCommit++
		if cfg.ReexploreEvery > 0 && s.playsSinceCommit >= int64(cfg.ReexploreEvery) {
			s.reexplores++
			s.startExplore(1)
		} else {
			return s.committed, false
		}
	}
	if s.pos >= len(s.sched) {
		if s.commit() {
			s.playsSinceCommit++
			return s.committed, false
		}
		// Nothing reported yet: extend exploration by one more round.
		s.startExplore(1)
	}
	a := s.sched[s.pos]
	s.pos++
	return a, true
}

// Tuner holds the per-site profiles of one pool. Safe for concurrent
// use; Decide/Report cost one short critical section each, paid only by
// Auto loops.
type Tuner struct {
	cfg Config

	mu     sync.Mutex
	sites  map[SiteKey]*site
	byName map[string]*site         // canonical site per name#bucket (PC aliasing)
	warm   map[string]*SiteSnapshot // loaded profiles keyed by name#bucket

	// table is the immutable lock-free SiteKey index serving the Decide
	// fast path; lookup republishes it on every insertion. See fast.go.
	table atomic.Pointer[siteTable]
}

// NewTuner creates a tuner. cfg.Arms is required.
func NewTuner(cfg Config) *Tuner {
	if cfg.Arms == nil {
		panic("adaptive: Config.Arms is required")
	}
	cfg.fill()
	return &Tuner{cfg: cfg, sites: map[SiteKey]*site{}, byName: map[string]*site{}}
}

// siteName resolves a call-site PC to "file:line" with the file reduced
// to its last two path components — the stable identity persistence
// matches on.
func siteName(pc uintptr) string {
	if pc == 0 {
		return "unknown:0"
	}
	frames := runtime.CallersFrames([]uintptr{pc})
	f, _ := frames.Next()
	if f.File == "" {
		return fmt.Sprintf("pc:%#x", pc)
	}
	file := f.File
	slashes := 0
	for i := len(file) - 1; i >= 0; i-- {
		if file[i] == '/' {
			slashes++
			if slashes == 2 {
				file = file[i+1:]
				break
			}
		}
	}
	return fmt.Sprintf("%s:%d", file, f.Line)
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// lookup finds or creates the profile for (pc, bucket of n).
func (t *Tuner) lookup(pc uintptr, n int) *site {
	key := SiteKey{PC: pc, Bucket: bucketOf(n)}
	if s, ok := t.sites[key]; ok {
		return s
	}
	name := siteName(pc)
	// The compiler can clone one source call site into several PCs (a
	// closure inlined at each of its call sites); letting every clone
	// start its own profile splits the sample stream and none of the
	// fragments ever converges. Alias any PC whose file:line and bucket
	// already have a profile onto that profile — the PC-keyed map stays
	// the fast path, the name merge happens only on first sight of a PC.
	nk := warmKey(name, key.Bucket)
	if s, ok := t.byName[nk]; ok {
		t.sites[key] = s
		t.rebuildTable()
		return s
	}
	s := &site{
		key:       key,
		name:      name,
		n:         n,
		arms:      t.cfg.Arms(n, t.cfg.Workers),
		committed: -1,
		rng:       *rng.NewSplitMix64(t.cfg.Seed ^ fnv64(name) ^ uint64(key.Bucket)<<56),
	}
	s.stats = make([]armStats, len(s.arms))
	if warm := t.warm[warmKey(name, key.Bucket)]; warm != nil {
		s.adoptSnapshot(warm)
	}
	if s.state != stateCommitted {
		s.startExplore(t.cfg.ExplorePlays)
	}
	t.sites[key] = s
	t.byName[nk] = s
	t.rebuildTable()
	return s
}

// Decide picks the configuration for one invocation of the loop at pc
// with n iterations, whose default chunk size would be baseChunk.
//
// Steady state is lock-free: once a site commits, Decide resolves it
// through the immutable site table and answers from the inline slot —
// one hash probe, one pointer load, one counter increment, no mutex.
// Every fastSamplePeriod-th play falls through to the locked path to be
// observed, keeping the drift and re-exploration machinery alive.
//
//sched:noalloc
func (t *Tuner) Decide(pc uintptr, n, baseChunk int) Decision {
	sampled := int64(0)
	if tab := t.table.Load(); tab != nil {
		if s := tab.get(SiteKey{PC: pc, Bucket: bucketOf(n)}); s != nil {
			if fd := s.fast.Load(); fd != nil {
				if fd.plays.Add(1)%fastSamplePeriod != 0 {
					return fd.decision(n, baseChunk)
				}
				sampled = 1 // counted below by s.next, not the fold
			}
		}
	}

	t.mu.Lock()
	s := t.lookup(pc, n)
	s.foldFastPlays(sampled)
	idx, exploring := s.next(&t.cfg)
	chunkCost := int64(s.stats[idx].ChunkCost)
	t.mu.Unlock()

	arm := s.arms[idx]
	d := Decision{
		Arm:            arm,
		ArmIndex:       idx,
		Exploring:      exploring,
		Observe:        true,
		ChunkCostNanos: chunkCost,
		site:           s,
	}
	if baseChunk < 1 {
		baseChunk = 1
	}
	d.Chunk = baseChunk
	if arm.ChunkScale > 0 && arm.ChunkScale != 1 {
		d.Chunk = int(float64(baseChunk)*arm.ChunkScale + 0.5)
		if d.Chunk < 1 {
			d.Chunk = 1
		}
	}
	if arm.Serial {
		d.SerialCutoff = n
	}
	return d
}

// Discard drops the invocation the Decision was issued for without
// folding any statistics: used for cancelled or panicked runs, whose
// elapsed time measures where the cancel landed rather than what the
// configuration costs. The play is simply not observed — a site whose
// exploration plays are all discarded extends exploration instead of
// committing on nothing (see site.next), so discards can never wedge the
// bandit. The per-site discard count is kept for observability.
func (t *Tuner) Discard(d Decision) {
	s := d.site
	if s == nil {
		return
	}
	t.mu.Lock()
	s.discards++
	t.mu.Unlock()
}

// Report feeds an invocation's outcome back into the profile the
// Decision came from.
func (t *Tuner) Report(d Decision, o Observation) {
	s := d.site
	if s == nil || o.Iterations <= 0 || o.Elapsed <= 0 {
		return
	}
	cost := float64(o.Elapsed.Nanoseconds()) / float64(o.Iterations)
	imb := 0.0
	if o.Elapsed > 0 && o.Imbalance > 0 {
		imb = float64(o.Imbalance) / float64(o.Elapsed)
	}
	alpha := t.cfg.Alpha

	t.mu.Lock()
	defer t.mu.Unlock()
	st := &s.stats[d.ArmIndex]
	st.observe(cost, alpha)
	if o.Chunks > 0 {
		st.ChunkCost = ewma(st.ChunkCost, float64(o.Elapsed.Nanoseconds())/float64(o.Chunks), alpha)
	}
	st.Steals = ewma(st.Steals, float64(o.Steals), alpha)
	st.FailedSteals = ewma(st.FailedSteals, float64(o.FailedSteals), alpha)
	st.RangeSteals = ewma(st.RangeSteals, float64(o.RangeSteals), alpha)
	st.Imbalance = ewma(st.Imbalance, imb, alpha)

	if s.state != stateCommitted || d.ArmIndex != s.committed {
		return
	}
	dev := cost - s.ewmaCost
	s.ewmaCost = ewma(s.ewmaCost, cost, alpha)
	s.ewmaVar = ewma(s.ewmaVar, dev*dev, alpha)
	s.ewmaImb = ewma(s.ewmaImb, imb, alpha)
	if s.playsSinceCommit < 4 {
		return // let the EWMAs settle before judging drift
	}
	if s.ewmaCost*(1+t.cfg.DriftFactor) < s.commitCost {
		// The committed arm got cheaper (caches warmed, the machine
		// quieted down): re-anchor the reference cost rather than
		// re-exploring — an improvement is no evidence the choice was
		// wrong, and the periodic refresh still checks whether some other
		// arm improved even more.
		s.commitCost = s.ewmaCost
	}
	drifted := s.ewmaCost > s.commitCost*(1+t.cfg.DriftFactor)
	imbalanced := d.Arm.NoBalance && !d.Arm.Serial && s.ewmaImb > t.cfg.ImbalanceLimit
	if drifted || imbalanced {
		s.reexplores++
		s.startExplore(1)
	}
}

// Sites returns a snapshot of every profile, sorted by site name then
// bucket — the observability surface the harness and the persistence
// layer share.
func (t *Tuner) Sites() []SiteSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Iterate byName, not sites: several PCs may alias one profile and
	// each profile must appear once.
	out := make([]SiteSnapshot, 0, len(t.byName))
	for _, s := range t.byName {
		s.foldFastPlays(0) // count pending fast-path plays in the export
		out = append(out, s.snapshot())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Bucket < out[j].Bucket
	})
	return out
}
