package adaptive

import (
	"encoding/json"
	"fmt"
)

// ArmSnapshot is one arm's persisted statistics.
type ArmSnapshot struct {
	Arm
	Plays        int64   `json:"plays"`
	CostPerIter  float64 `json:"cost_per_iter_ns"`
	ChunkCost    float64 `json:"chunk_cost_ns"`
	Steals       float64 `json:"steals"`
	FailedSteals float64 `json:"failed_steals"`
	RangeSteals  float64 `json:"range_steals"`
	Imbalance    float64 `json:"imbalance_frac"`
}

// SiteSnapshot is one site profile in exportable form. Site is the
// call site's file:line (last two path components), the identity
// snapshots are matched on when loaded into a fresh tuner.
type SiteSnapshot struct {
	Site       string        `json:"site"`
	Bucket     uint8         `json:"bucket"`
	TripCount  int           `json:"trip_count"`
	State      string        `json:"state"` // "exploring" or "committed"
	Committed  int           `json:"committed_arm"`
	CommitCost float64       `json:"commit_cost_ns"`
	EWMACost   float64       `json:"ewma_cost_ns"`
	CostVar    float64       `json:"cost_variance"`
	Imbalance  float64       `json:"imbalance_frac"`
	Decisions  int64         `json:"decisions"`
	Reexplores int64         `json:"reexplores"`
	Discards   int64         `json:"discards,omitempty"` // cancelled plays dropped un-reported
	Arms       []ArmSnapshot `json:"arms"`
}

// snapshotFile is the JSON layout of a persisted tuner.
type snapshotFile struct {
	Version int            `json:"version"`
	Sites   []SiteSnapshot `json:"sites"`
}

const snapshotVersion = 1

func warmKey(name string, bucket uint8) string {
	return fmt.Sprintf("%s#%d", name, bucket)
}

// snapshot exports a site's profile. Caller holds the tuner lock.
func (s *site) snapshot() SiteSnapshot {
	state := "exploring"
	if s.state == stateCommitted {
		state = "committed"
	}
	snap := SiteSnapshot{
		Site:       s.name,
		Bucket:     s.key.Bucket,
		TripCount:  s.n,
		State:      state,
		Committed:  s.committed,
		CommitCost: s.commitCost,
		EWMACost:   s.ewmaCost,
		CostVar:    s.ewmaVar,
		Imbalance:  s.ewmaImb,
		Decisions:  s.decisions,
		Reexplores: s.reexplores,
		Discards:   s.discards,
		Arms:       make([]ArmSnapshot, len(s.arms)),
	}
	if s.state != stateCommitted {
		snap.Committed = -1
	}
	for i := range s.arms {
		st := s.stats[i]
		snap.Arms[i] = ArmSnapshot{
			Arm:          s.arms[i],
			Plays:        st.Plays,
			CostPerIter:  st.CostPerIter,
			ChunkCost:    st.ChunkCost,
			Steals:       st.Steals,
			FailedSteals: st.FailedSteals,
			RangeSteals:  st.RangeSteals,
			Imbalance:    st.Imbalance,
		}
	}
	return snap
}

// adoptSnapshot warm-starts a freshly created site from a loaded
// profile. Statistics transfer arm-by-arm (matched by the Arm value, so
// an arm-set change between runs degrades gracefully); the committed
// state transfers only if the committed arm still exists in the current
// arm set.
func (s *site) adoptSnapshot(snap *SiteSnapshot) {
	for i := range s.arms {
		for j := range snap.Arms {
			if !s.arms[i].equal(snap.Arms[j].Arm) {
				continue
			}
			as := snap.Arms[j]
			s.stats[i] = armStats{
				Plays:        as.Plays,
				CostPerIter:  as.CostPerIter,
				ChunkCost:    as.ChunkCost,
				Steals:       as.Steals,
				FailedSteals: as.FailedSteals,
				RangeSteals:  as.RangeSteals,
				Imbalance:    as.Imbalance,
			}
			break
		}
	}
	if snap.State != "committed" || snap.Committed < 0 || snap.Committed >= len(snap.Arms) {
		return
	}
	want := snap.Arms[snap.Committed].Arm
	for i := range s.arms {
		if s.arms[i].equal(want) && s.stats[i].Plays > 0 {
			s.state = stateCommitted
			s.committed = i
			s.commitCost = snap.CommitCost
			if s.commitCost <= 0 {
				s.commitCost = s.stats[i].CostPerIter
			}
			s.ewmaCost = snap.EWMACost
			if s.ewmaCost <= 0 {
				s.ewmaCost = s.commitCost
			}
			s.ewmaVar = snap.CostVar
			s.ewmaImb = snap.Imbalance
			s.publishFast() // warm-started commits serve the fast path too
			return
		}
	}
}

// SnapshotJSON serializes every site profile.
func (t *Tuner) SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(snapshotFile{Version: snapshotVersion, Sites: t.Sites()}, "", "  ")
}

// LoadJSON registers persisted profiles as warm-start material: a site
// created after the load that matches a loaded profile's file:line and
// trip-count bucket adopts its statistics (and committed choice, if its
// arm still exists) instead of exploring from scratch. Sites already
// live in the tuner are not rewritten.
func (t *Tuner) LoadJSON(data []byte) error {
	var f snapshotFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("adaptive: loading snapshot: %w", err)
	}
	if f.Version != snapshotVersion {
		return fmt.Errorf("adaptive: snapshot version %d (want %d)", f.Version, snapshotVersion)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.warm == nil {
		t.warm = map[string]*SiteSnapshot{}
	}
	for i := range f.Sites {
		snap := f.Sites[i]
		t.warm[warmKey(snap.Site, snap.Bucket)] = &snap
	}
	return nil
}
