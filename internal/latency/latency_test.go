package latency

import (
	"sync"
	"testing"
	"time"
)

func TestPercentilesExact(t *testing.T) {
	s := NewSampler(0)
	// 1ms..100ms: p50 ≈ 50ms, p95 ≈ 95ms, p99 ≈ 99ms, max = 100ms.
	for i := 1; i <= 100; i++ {
		s.Observe(time.Duration(i) * time.Millisecond)
	}
	sum := s.Summary()
	if sum.Count != 100 {
		t.Fatalf("Count = %d, want 100", sum.Count)
	}
	check := func(name string, got, want time.Duration) {
		if got < want-time.Millisecond || got > want+time.Millisecond {
			t.Errorf("%s = %v, want ~%v", name, got, want)
		}
	}
	check("P50", sum.P50, 50*time.Millisecond)
	check("P95", sum.P95, 95*time.Millisecond)
	check("P99", sum.P99, 99*time.Millisecond)
	if sum.Max != 100*time.Millisecond {
		t.Errorf("Max = %v, want 100ms", sum.Max)
	}
}

func TestEmptySummary(t *testing.T) {
	if sum := NewSampler(0).Summary(); sum != (Summary{}) {
		t.Fatalf("empty sampler summary = %+v, want zero", sum)
	}
}

func TestReservoirCapAndMax(t *testing.T) {
	s := NewSampler(64)
	for i := 1; i <= 10000; i++ {
		s.Observe(time.Duration(i) * time.Microsecond)
	}
	sum := s.Summary()
	if sum.Count != 10000 {
		t.Fatalf("Count = %d, want 10000", sum.Count)
	}
	// Max is tracked exactly even when the sample was not retained.
	if sum.Max != 10000*time.Microsecond {
		t.Fatalf("Max = %v, want 10ms", sum.Max)
	}
	// Retained set is uniform over 1..10000µs: p50 must land in the
	// broad middle, not be pinned to the first or last 64 values.
	if sum.P50 < 1*time.Millisecond || sum.P50 > 9*time.Millisecond {
		t.Fatalf("P50 = %v, want within (1ms, 9ms) for a uniform stream", sum.P50)
	}
}

func TestConcurrentObserve(t *testing.T) {
	s := NewSampler(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := s.Count(); got != 8000 {
		t.Fatalf("Count = %d, want 8000", got)
	}
}
