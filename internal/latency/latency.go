// Package latency is a small concurrency-safe latency sampler with
// percentile extraction — the measurement side of the multi-tenant
// serving example (examples/server) and its load generator. It stores
// exact samples (bounded by a configurable cap with uniform reservoir
// replacement past it), so percentiles are exact until the cap and an
// unbiased estimate after.
package latency

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultCap bounds the number of retained samples when NewSampler is
// given cap <= 0. At 16 bytes a sample this is ~4 MiB.
const DefaultCap = 1 << 18

// Sampler accumulates duration samples. The zero value is NOT ready to
// use; construct with NewSampler.
type Sampler struct {
	mu      sync.Mutex
	samples []time.Duration
	seen    int64 // total Observe calls, including replaced ones
	max     time.Duration
	cap     int
	rng     uint64
}

// NewSampler returns a sampler retaining at most cap samples
// (DefaultCap if cap <= 0).
func NewSampler(cap int) *Sampler {
	if cap <= 0 {
		cap = DefaultCap
	}
	return &Sampler{samples: make([]time.Duration, 0, min(cap, 4096)), cap: cap, rng: 0x9e3779b97f4a7c15}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Observe records one sample.
func (s *Sampler) Observe(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen++
	if d > s.max {
		s.max = d
	}
	if len(s.samples) < s.cap {
		s.samples = append(s.samples, d)
		return
	}
	// Reservoir replacement: keep each of the seen samples with equal
	// probability. xorshift is plenty for load-test statistics.
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	if k := int64(s.rng % uint64(s.seen)); k < int64(s.cap) {
		s.samples[k] = d
	}
}

// Count returns how many samples have been observed (not retained).
func (s *Sampler) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen
}

// Summary is a fixed percentile digest of the observed samples.
type Summary struct {
	Count         int64
	P50, P95, P99 time.Duration
	Max           time.Duration
}

// Summary extracts the digest. With no samples all fields are zero.
func (s *Sampler) Summary() Summary {
	s.mu.Lock()
	retained := make([]time.Duration, len(s.samples))
	copy(retained, s.samples)
	out := Summary{Count: s.seen, Max: s.max}
	s.mu.Unlock()
	if len(retained) == 0 {
		return out
	}
	sort.Slice(retained, func(i, j int) bool { return retained[i] < retained[j] })
	out.P50 = quantile(retained, 0.50)
	out.P95 = quantile(retained, 0.95)
	out.P99 = quantile(retained, 0.99)
	return out
}

// quantile reads the q-th quantile from an ascending slice using the
// nearest-rank method.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// String formats the summary for load-test reports.
func (sm Summary) String() string {
	return fmt.Sprintf("n=%d p50=%s p95=%s p99=%s max=%s",
		sm.Count, sm.P50.Round(time.Microsecond), sm.P95.Round(time.Microsecond),
		sm.P99.Round(time.Microsecond), sm.Max.Round(time.Microsecond))
}
