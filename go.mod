module hybridloop

go 1.22
