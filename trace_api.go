package hybridloop

import (
	"io"

	"hybridloop/internal/loop"
	"hybridloop/internal/trace"
)

// TraceLog records scheduling events from loops it is attached to: loop
// boundaries, executed chunks with their worker, and — for hybrid loops —
// claim successes/failures and steal-protocol entries. Attach with
// WithTrace; render with Render (per-worker summary) or Dump (raw
// events). Safe for concurrent use and reusable across loops.
type TraceLog struct {
	l *trace.Log
}

// NewTraceLog returns a log holding at most capacity events (<= 0 picks
// a default of 65536).
func NewTraceLog(capacity int) *TraceLog {
	return &TraceLog{l: trace.New(capacity)}
}

// WithTrace attaches the log to a loop.
func WithTrace(t *TraceLog) ForOption {
	return func(o *loop.Options) { o.Trace = t.l }
}

// Render writes a per-worker summary of the recorded activity.
func (t *TraceLog) Render(w io.Writer) { t.l.Render(w) }

// Dump writes every recorded event, one per line.
func (t *TraceLog) Dump(w io.Writer) { t.l.Dump(w) }

// Reset clears the log and restarts its clock.
func (t *TraceLog) Reset() { t.l.Reset() }

// WorkerSummary aggregates one worker's recorded activity.
type WorkerSummary = trace.WorkerSummary

// Summary returns per-worker aggregates, sorted by worker ID.
func (t *TraceLog) Summary() []WorkerSummary { return t.l.Summary() }
