package hybridloop_test

import (
	"bytes"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"hybridloop"
)

func TestReduceDeterministicAcrossStrategies(t *testing.T) {
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(1))
	defer pool.Close()
	data := make([]float64, 50000)
	for i := range data {
		data[i] = math.Sin(float64(i))
	}
	var want float64
	first := true
	for _, s := range []hybridloop.Strategy{
		hybridloop.Hybrid, hybridloop.Static, hybridloop.DynamicStealing,
		hybridloop.DynamicSharing, hybridloop.Guided,
	} {
		got := hybridloop.Sum(pool, 0, len(data),
			func(i int) float64 { return data[i] }, hybridloop.WithStrategy(s))
		if first {
			want, first = got, false
			continue
		}
		if got != want {
			t.Fatalf("%v: Sum = %v, want bitwise %v", s, got, want)
		}
	}
}

func TestReduceGenericTypes(t *testing.T) {
	pool := hybridloop.NewPool(3)
	defer pool.Close()
	type acc struct {
		min, max int
	}
	got := hybridloop.Reduce(pool, 0, 10000, 128,
		acc{min: 1 << 30, max: -(1 << 30)},
		func(lo, hi int) acc {
			a := acc{min: 1 << 30, max: -(1 << 30)}
			for i := lo; i < hi; i++ {
				v := (i*2654435761 + 17) % 1000
				if v < a.min {
					a.min = v
				}
				if v > a.max {
					a.max = v
				}
			}
			return a
		},
		func(a, b acc) acc {
			if b.min < a.min {
				a.min = b.min
			}
			if b.max > a.max {
				a.max = b.max
			}
			return a
		})
	if got.min < 0 || got.max > 999 || got.min > got.max {
		t.Fatalf("Reduce min/max = %+v", got)
	}
}

func TestReduceEmptyRange(t *testing.T) {
	pool := hybridloop.NewPool(2)
	defer pool.Close()
	got := hybridloop.Reduce(pool, 5, 5, 0, 42,
		func(lo, hi int) int { return 0 },
		func(a, b int) int { return a + b })
	if got != 42 {
		t.Fatalf("empty Reduce = %d, want identity", got)
	}
}

func TestSumMatchesSequential(t *testing.T) {
	pool := hybridloop.NewPool(4)
	defer pool.Close()
	got := hybridloop.Sum(pool, 1, 1001, func(i int) float64 { return float64(i) })
	if got != 500500 {
		t.Fatalf("Sum = %v", got)
	}
}

func TestFor2DCoversSpaceExactlyOnce(t *testing.T) {
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(3))
	defer pool.Close()
	const rows, cols = 61, 83
	var cells [rows][cols]atomic.Int32
	for _, tile := range [][2]int{{0, 0}, {1, 1}, {7, 13}, {64, 64}} {
		for r := range cells {
			for c := range cells[r] {
				cells[r][c].Store(0)
			}
		}
		pool.For2D(0, rows, 0, cols, tile[0], tile[1], func(rlo, rhi, clo, chi int) {
			for r := rlo; r < rhi; r++ {
				for c := clo; c < chi; c++ {
					cells[r][c].Add(1)
				}
			}
		})
		for r := range cells {
			for c := range cells[r] {
				if n := cells[r][c].Load(); n != 1 {
					t.Fatalf("tile %v: cell (%d,%d) visited %d times", tile, r, c, n)
				}
			}
		}
	}
}

func TestFor2DEmpty(t *testing.T) {
	pool := hybridloop.NewPool(2)
	defer pool.Close()
	ran := false
	pool.For2D(3, 3, 0, 10, 4, 4, func(rlo, rhi, clo, chi int) { ran = true })
	pool.For2D(0, 10, 7, 2, 4, 4, func(rlo, rhi, clo, chi int) { ran = true })
	if ran {
		t.Fatal("body ran for empty 2-D space")
	}
}

func TestWithWeightBalancesStatic(t *testing.T) {
	// A triangular workload with weights should give later workers fewer
	// iterations: partition boundaries must shift left relative to the
	// equal split.
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(5))
	defer pool.Close()
	const n = 10000
	tr := hybridloop.NewAffinityTracker(n)
	weight := func(i int) float64 { return float64(i) }
	pool.For(0, n, func(lo, hi int) {}, hybridloop.WithStrategy(hybridloop.Static),
		hybridloop.WithWeight(weight), hybridloop.WithRecorder(tr))
	tr.EndLoop()
	asg := tr.Assignment()
	// Worker 0's partition ends where the weight prefix reaches 1/4 of
	// the total: at i ~ n/2 (sqrt(1/4) of the triangle), not n/4.
	boundary := 0
	for i, w := range asg {
		if w != 0 {
			boundary = i
			break
		}
	}
	if boundary < n/2-500 || boundary > n/2+500 {
		t.Fatalf("weighted boundary at %d, want ~%d", boundary, n/2)
	}
	// And every iteration still executes exactly once under weights for
	// both static and hybrid.
	for _, s := range []hybridloop.Strategy{hybridloop.Static, hybridloop.Hybrid} {
		var count atomic.Int64
		pool.For(0, n, func(lo, hi int) {
			count.Add(int64(hi - lo))
		}, hybridloop.WithStrategy(s), hybridloop.WithWeight(weight))
		if count.Load() != n {
			t.Fatalf("%v with weights covered %d iterations", s, count.Load())
		}
	}
}

func TestQuickFor2DTileSizes(t *testing.T) {
	pool := hybridloop.NewPool(3, hybridloop.WithSeed(9))
	defer pool.Close()
	prop := func(rRaw, cRaw, trRaw, tcRaw uint8) bool {
		rows := int(rRaw)%40 + 1
		cols := int(cRaw)%40 + 1
		tileR := int(trRaw)%45 + 1
		tileC := int(tcRaw)%45 + 1
		var total atomic.Int64
		pool.For2D(0, rows, 0, cols, tileR, tileC, func(rlo, rhi, clo, chi int) {
			total.Add(int64((rhi - rlo) * (chi - clo)))
		})
		return total.Load() == int64(rows*cols)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPanicSurfacesThroughPublicFor(t *testing.T) {
	pool := hybridloop.NewPool(4)
	defer pool.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("panic in loop body did not surface")
		}
	}()
	pool.For(0, 1000, func(lo, hi int) {
		if lo >= 500 {
			panic("body boom")
		}
	}, hybridloop.WithChunk(10))
}

func TestTraceRecordsHybridActivity(t *testing.T) {
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(11))
	defer pool.Close()
	tl := hybridloop.NewTraceLog(0)
	const n = 20000
	pool.For(0, n, func(lo, hi int) {}, hybridloop.WithTrace(tl))
	var chunks, iters int64
	var claims int
	for _, s := range tl.Summary() {
		chunks += int64(s.Chunks)
		iters += s.Iterations
		claims += s.Claims
	}
	if iters != n {
		t.Fatalf("trace saw %d iterations, want %d", iters, n)
	}
	if chunks == 0 || claims == 0 {
		t.Fatalf("trace missing chunks (%d) or claims (%d)", chunks, claims)
	}
	// Claims cover all partitions exactly once: R = 4 for P = 4.
	if claims != 4 {
		t.Fatalf("claims = %d, want 4 (R = P = 4)", claims)
	}
	var buf bytes.Buffer
	tl.Render(&buf)
	if !strings.Contains(buf.String(), "events recorded") {
		t.Fatal("render output malformed")
	}
}

func TestSerialCutoffRunsInline(t *testing.T) {
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(13))
	defer pool.Close()
	tl := hybridloop.NewTraceLog(0)
	pool.For(0, 50, func(lo, hi int) {
		if lo != 0 || hi != 50 {
			t.Errorf("cutoff loop split into [%d,%d)", lo, hi)
		}
	}, hybridloop.WithSerialCutoff(64), hybridloop.WithTrace(tl))
	var chunks int
	for _, s := range tl.Summary() {
		chunks += s.Chunks
	}
	if chunks != 1 {
		t.Fatalf("serial-cutoff loop ran as %d chunks", chunks)
	}
	// Above the cutoff the loop must parallelize normally.
	var count atomic.Int64
	pool.For(0, 500, func(lo, hi int) { count.Add(int64(hi - lo)) },
		hybridloop.WithSerialCutoff(64), hybridloop.WithChunk(10))
	if count.Load() != 500 {
		t.Fatalf("above-cutoff loop covered %d iterations", count.Load())
	}
}

func TestForWorkerNestedParallelism(t *testing.T) {
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(21))
	defer pool.Close()
	var total atomic.Int64
	for _, outer := range []hybridloop.Strategy{
		hybridloop.Hybrid, hybridloop.Guided, hybridloop.DynamicSharing,
	} {
		total.Store(0)
		pool.ForWorker(0, 8, func(w *hybridloop.Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				hybridloop.For(w, 0, 250, func(l2, h2 int) {
					total.Add(int64(h2 - l2))
				}, hybridloop.WithChunk(16))
			}
		}, hybridloop.WithStrategy(outer), hybridloop.WithChunk(1))
		if total.Load() != 2000 {
			t.Fatalf("outer=%v: nested total = %d, want 2000", outer, total.Load())
		}
	}
	// Three levels deep via ForWorkerNested.
	total.Store(0)
	pool.ForWorker(0, 4, func(w *hybridloop.Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			hybridloop.ForWorkerNested(w, 0, 4, func(w2 *hybridloop.Worker, l2, h2 int) {
				for j := l2; j < h2; j++ {
					hybridloop.For(w2, 0, 10, func(l3, h3 int) {
						total.Add(int64(h3 - l3))
					})
				}
			}, hybridloop.WithChunk(1))
		}
	}, hybridloop.WithChunk(1))
	if total.Load() != 160 {
		t.Fatalf("3-level nested total = %d, want 160", total.Load())
	}
}
