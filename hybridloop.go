// Package hybridloop is a task-parallel runtime for scheduling parallel
// loops on shared-memory multicores, implementing the hybrid scheduling
// scheme of Handleman, Rattew, Lee and Schardl, "A Hybrid Scheduling
// Scheme for Parallel Loops" (2021), together with the standard schemes it
// is evaluated against.
//
// The hybrid scheme first partitions a loop statically — R = 2^k
// partitions, one earmarked per worker — and lets each worker claim
// partitions in a semi-deterministic sequence derived from its worker ID
// (r = i XOR w). Claims are single atomic operations; a worker that loses
// its designated partition falls back to ordinary randomized work
// stealing, and the work inside every partition is itself load balanced by
// stealing. The result keeps the loop affinity of static scheduling on
// iterative applications (the same iterations land on the same workers
// loop after loop) while retaining the provable load balancing of dynamic
// scheduling: a loop of n iterations runs in expected time
// T1/P + O(P + lg n + max span of any iteration).
//
// # Quick start
//
//	pool := hybridloop.NewPool(8)
//	defer pool.Close()
//
//	pool.For(0, len(data), func(lo, hi int) {
//		for i := lo; i < hi; i++ {
//			data[i] = process(data[i])
//		}
//	})
//
// Loops default to the hybrid strategy; pass WithStrategy to compare
// against Static, DynamicStealing (a Cilk-style cilk_for), DynamicSharing
// (OpenMP schedule(dynamic)) or Guided (OpenMP schedule(guided)).
// Arbitrary fork-join task parallelism is available through Pool.Run,
// Worker.Spawn and Worker.Wait.
package hybridloop

import (
	"context"
	"runtime"
	"time"

	"hybridloop/internal/adaptive"
	"hybridloop/internal/loop"
	"hybridloop/internal/sched"
)

// Strategy selects how a parallel loop's iterations are scheduled onto
// workers. See the package documentation of each constant.
type Strategy = loop.Strategy

const (
	// Hybrid is the paper's scheme: static partitioning, XOR claiming,
	// work-stealing fallback. The default.
	Hybrid Strategy = loop.Hybrid
	// Static pins the i-th of P equal partitions to worker i, like OpenMP
	// schedule(static): deterministic and cheap, but no load balancing.
	Static Strategy = loop.Static
	// DynamicStealing is dynamic partitioning with randomized work
	// stealing — the classic Cilk cilk_for.
	DynamicStealing Strategy = loop.DynamicStealing
	// DynamicSharing is dynamic partitioning with a central chunk queue,
	// like OpenMP schedule(dynamic, chunk).
	DynamicSharing Strategy = loop.DynamicSharing
	// Guided is work sharing with geometrically decreasing chunks, like
	// OpenMP schedule(guided, chunk).
	Guided Strategy = loop.Guided
	// Auto lets the pool's adaptive autotuner pick the strategy, chunk
	// size, and serial cutoff per call site from runtime feedback: each
	// Auto loop is profiled (cost per iteration, steal rates, busy-time
	// imbalance), candidate configurations are explored a few times in a
	// deterministic seeded order, and the cheapest is committed to — with
	// re-exploration when the observed cost drifts. See WithAuto and
	// Pool.TunerSnapshot.
	Auto Strategy = loop.Auto
)

// Worker is a scheduler worker — the surrogate of a processing core. Loop
// bodies and tasks receive the worker executing them; use it to spawn
// nested work or nested parallel loops.
type Worker = sched.Worker

// Group tracks spawned tasks for a join; Worker.Wait(g) helps execute
// outstanding work instead of blocking.
type Group = sched.Group

// Stats aggregates scheduler counters (tasks run, steals, hybrid loop
// entries); see Pool.Stats.
type Stats = sched.Stats

// Recorder observes which worker executed which iterations; pass one via
// WithRecorder to measure loop affinity.
type Recorder = loop.Recorder

// Body is a parallel loop body. It is invoked with half-open chunks
// [lo, hi) of the iteration space; distinct chunks may run concurrently
// on different workers, and every iteration is covered exactly once.
type Body = loop.Body

// Pool is a work-stealing scheduler with a fixed set of workers.
type Pool struct {
	s           *sched.Pool
	tuner       *adaptive.Tuner
	gate        *sched.Gate      // admission control; nil = ungated
	mreg        *MetricsRegistry // metrics plane; nil = metrics off
	strategy    Strategy
	chunk       int
	seed        uint64
	lockThreads bool
	placement   *sched.Placement
	maxInFlight int
	submitRate  float64
	submitBurst int
}

// Placement maps workers to sockets for topology-aware stealing; build
// one with NewPlacement or CompactPlacement and pass it via
// WithPlacement.
type Placement = sched.Placement

// NewPlacement builds a placement from an explicit worker→socket map
// (worker i runs on socket socketOf[i]; socket numbers must be a
// contiguous range starting at 0).
func NewPlacement(socketOf []int) *Placement { return sched.NewPlacement(socketOf) }

// CompactPlacement describes the compact pinning the paper's experiments
// use: the first coresPerSocket workers on socket 0, the next
// coresPerSocket on socket 1, and so on.
func CompactPlacement(sockets, coresPerSocket int) *Placement {
	return sched.CompactPlacement(sockets, coresPerSocket)
}

// Option configures a Pool.
type Option func(*Pool)

// WithSeed fixes the seed of the workers' random number generators,
// making victim selection reproducible.
func WithSeed(seed uint64) Option {
	return func(p *Pool) { p.seed = seed }
}

// WithDefaultStrategy sets the strategy used by For when no per-loop
// override is given. The default is Hybrid.
func WithDefaultStrategy(s Strategy) Option {
	return func(p *Pool) { p.strategy = s }
}

// WithDefaultChunk sets the default chunk size for loops; 0 keeps the
// paper's rule min(2048, N/(8P)).
func WithDefaultChunk(chunk int) Option {
	return func(p *Pool) { p.chunk = chunk }
}

// WithOSThreads locks each worker goroutine to its own OS thread. Use on
// dedicated multicore machines (ideally with threads pinned to cores by
// the OS) so worker identity corresponds to a physical core and the
// hybrid scheme's affinity translates into cache locality.
func WithOSThreads() Option {
	return func(p *Pool) { p.lockThreads = true }
}

// WithPlacement tells the pool which socket each worker runs on, making
// both steal paths topology-aware: a thief probes victims on its own
// socket first (unbiased rotation) before crossing to remote sockets,
// and a cross-socket range steal transfers a larger fraction of the
// victim's remainder (default ¾ vs the local ½) so the ~515-cycle
// remote-L3 line cost is amortized over more iterations per transfer.
// Combine with WithOSThreads and OS-level thread pinning so worker IDs
// actually correspond to the described cores. Without this option every
// worker is treated as sharing one socket — exactly the old behaviour.
// Steal distance becomes observable via Stats.RemoteSteals /
// RemoteRangeSteals and the metrics plane's steals_distance series.
func WithPlacement(pl *Placement) Option {
	return func(p *Pool) { p.placement = pl }
}

// NewPool creates a pool with the given number of workers and starts
// them; workers <= 0 selects runtime.GOMAXPROCS(0). Close the pool when
// done.
func NewPool(workers int, opts ...Option) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{strategy: Hybrid, seed: 0x484c4f4f50 /* "HLOOP" */}
	for _, o := range opts {
		o(p)
	}
	p.s = sched.NewPoolPlaced(workers, p.seed, p.lockThreads, p.placement)
	// Busy/idle accounting costs two clock reads per busy burst — nothing
	// on the per-task path — and feeds Stats.BusyNanos/IdleNanos plus the
	// tuner's imbalance signal, so it is on for every public pool.
	p.s.SetTimeAccounting(true)
	p.tuner = adaptive.NewTuner(adaptive.Config{
		Seed:    p.seed,
		Workers: p.s.P(),
		Arms:    loop.AutoArms,
	})
	if p.maxInFlight > 0 || p.submitRate > 0 {
		p.gate = sched.NewGate(p.maxInFlight, p.submitRate, p.submitBurst)
	}
	p.registerPoolMetrics()
	return p
}

// Workers returns the number of workers in the pool.
func (p *Pool) Workers() int { return p.s.P() }

// Close shuts down the pool's workers. Outstanding For/Run calls must
// have returned.
func (p *Pool) Close() { p.s.Close() }

// Stats returns aggregate scheduler counters since the last ResetStats.
func (p *Pool) Stats() Stats { return p.s.Stats() }

// ResetStats zeroes the scheduler counters.
func (p *Pool) ResetStats() { p.s.ResetStats() }

// Run executes root on a worker and blocks until it returns. Use it for
// fork-join task parallelism (Worker.Spawn / Worker.Wait) or to host
// nested parallel loops via For.
func (p *Pool) Run(root func(w *Worker)) { p.s.Run(root) }

// ForOption configures a single parallel loop.
type ForOption func(*loop.Options)

// WithStrategy overrides the loop's scheduling strategy.
func WithStrategy(s Strategy) ForOption {
	return func(o *loop.Options) { o.Strategy = s }
}

// WithChunk overrides the number of consecutive iterations executed as
// one sequential unit; 0 means min(2048, N/(8P)).
func WithChunk(chunk int) ForOption {
	return func(o *loop.Options) { o.Chunk = chunk }
}

// WithRecorder attaches an affinity recorder to the loop.
func WithRecorder(r Recorder) ForOption {
	return func(o *loop.Options) { o.Recorder = r }
}

// WithSerialCutoff runs loops of at most n iterations inline on the
// calling worker, skipping the scheduling machinery entirely — useful for
// programs whose loop trip counts vary and sometimes collapse to trivial
// sizes (the adaptive-scheduler shortcut in the paper's related work).
func WithSerialCutoff(n int) ForOption {
	return func(o *loop.Options) { o.SerialCutoff = n }
}

// WithAuto hands this loop to the pool's adaptive autotuner — equivalent
// to WithStrategy(Auto). The tuner profiles the call site and converges
// on the cheapest of {Hybrid, DynamicStealing, Static, Guided}, a chunk
// scale, and possibly the serial shortcut; see the Auto constant.
func WithAuto() ForOption {
	return func(o *loop.Options) { o.Strategy = Auto }
}

// withSite attributes the loop to the given call-site PC for the tuner.
// Internal: wrappers like Reduce and For2D capture their own caller so
// tuning profiles attach to the user's line, not the wrapper's.
func withSite(pc uintptr) ForOption {
	return func(o *loop.Options) { o.Site = pc }
}

// callerPC returns the program counter skip logical frames above
// callerPC's caller (0 = the calling function itself).
func callerPC(skip int) uintptr {
	var pcs [1]uintptr
	if runtime.Callers(skip+2, pcs[:]) == 0 {
		return 0
	}
	return pcs[0]
}

// options materializes a loop's Options. skip is the number of stack
// frames between options and the user's call site, used to capture the
// site identity when — and only when — the loop resolved to Auto, so
// fixed-strategy loops pay nothing for the tuner's existence.
func (p *Pool) options(opts []ForOption, skip int) loop.Options {
	o := loop.Options{Strategy: p.strategy, Chunk: p.chunk}
	for _, fn := range opts {
		fn(&o)
	}
	if o.Strategy == Auto {
		o.Tuner = p.tuner
		if o.Site == 0 {
			o.Site = callerPC(skip + 1)
		}
	}
	return o
}

// For executes body over the iteration space [begin, end) in parallel and
// returns when every iteration has completed. It must be called from
// outside the pool's workers; inside a running task, use the free
// function For with the current Worker.
//
// On a pool with admission control (WithMaxInFlightLoops/WithSubmitRate),
// a submission the gate rejects degrades to a serial inline run: body is
// invoked once with the whole range on the calling goroutine, bypassing
// the scheduler (and therefore trace, recorder, and tuner) entirely.
// Every iteration still executes exactly once; the pool's concurrency
// stays bounded. Use TryFor to observe the rejection instead.
func (p *Pool) For(begin, end int, body Body, opts ...ForOption) {
	if end <= begin {
		return
	}
	if release, inline := p.admitOrInline(); inline {
		if p.mreg != nil {
			defer p.observeInline(time.Now())
		}
		body(begin, end)
		return
	} else if release != nil {
		defer release()
	}
	o := p.options(opts, 1)
	if p.mreg != nil {
		// Arguments are evaluated at the defer statement, so time.Now()
		// captures the submission time and the observation fires at join.
		defer p.observeLoop(&o, time.Now())
	}
	loop.For(p.s, begin, end, body, o)
}

// ForEach is For with a per-index body — more convenient, slightly slower
// for very fine-grained loops. The per-index adapter is built once, in
// the worker-aware form the loop core consumes directly, so ForEach costs
// at most one more allocation per loop than For (it used to wrap body in
// two closure layers re-boxed on every call). Under admission control it
// degrades to a serial inline run exactly as For does.
func (p *Pool) ForEach(begin, end int, body func(i int), opts ...ForOption) {
	if end <= begin {
		return
	}
	if release, inline := p.admitOrInline(); inline {
		if p.mreg != nil {
			defer p.observeInline(time.Now())
		}
		for i := begin; i < end; i++ {
			body(i)
		}
		return
	} else if release != nil {
		defer release()
	}
	o := p.options(opts, 1)
	if p.mreg != nil {
		defer p.observeLoop(&o, time.Now())
	}
	loop.ForW(p.s, begin, end, eachBody(body), o)
}

// eachBody adapts a per-index body to the chunked worker-aware form with
// a single closure allocation.
func eachBody(body func(i int)) loop.BodyW {
	return func(_ *sched.Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	}
}

// BodyW is a loop body that also receives the worker executing its chunk.
// Bodies that start nested parallel loops or spawn tasks MUST use this
// form and route the nested work through the received worker — chunks run
// on whichever worker claimed or stole them, not on the worker that
// started the loop.
type BodyW = loop.BodyW

// ForWorker is For with a worker-aware body, for bodies containing nested
// parallelism. A worker-aware body cannot run without a worker, so under
// admission control a rejected ForWorker waits for admission instead of
// degrading to an inline run (the gate's in-flight slots turn over as
// loops complete, so the wait is bounded by the backlog, like a
// semaphore).
func (p *Pool) ForWorker(begin, end int, body BodyW, opts ...ForOption) {
	if end <= begin {
		return
	}
	if p.gate != nil {
		if err := p.gate.Acquire(context.Background()); err != nil {
			return // unreachable: Background is never done
		}
		defer p.gate.Release()
	}
	o := p.options(opts, 1)
	if p.mreg != nil {
		defer p.observeLoop(&o, time.Now())
	}
	loop.ForW(p.s, begin, end, body, o)
}

// ForWorkerNested runs a worker-aware nested loop from inside a task
// executing on w.
func ForWorkerNested(w *Worker, begin, end int, body BodyW, opts ...ForOption) {
	o := loop.Options{Strategy: Hybrid}
	for _, fn := range opts {
		fn(&o)
	}
	loop.WorkerForW(w, begin, end, body, o)
}

// For runs a nested parallel loop from inside a task executing on w.
func For(w *Worker, begin, end int, body Body, opts ...ForOption) {
	o := loop.Options{Strategy: Hybrid}
	for _, fn := range opts {
		fn(&o)
	}
	loop.WorkerFor(w, begin, end, body, o)
}

// DefaultChunk exposes the paper's chunk rule min(2048, N/(8P)).
func DefaultChunk(n, p int) int { return loop.DefaultChunk(n, p) }

// TunerSite is one Auto call site's learned profile: its source location,
// trip-count bucket, exploration state, committed configuration, and
// per-arm statistics. See Pool.TunerSites.
type TunerSite = adaptive.SiteSnapshot

// TunerSites returns the adaptive tuner's per-site profiles, sorted by
// source location — the observability surface for Auto: which strategy
// each call site converged on, at what cost, after how many decisions.
func (p *Pool) TunerSites() []TunerSite { return p.tuner.Sites() }

// TunerSnapshot serializes the tuner's learned profiles as JSON. Save it
// at shutdown and feed it to LoadTunerSnapshot in the next run so
// iterative applications skip re-exploration and start on the committed
// configuration (profiles are keyed by file:line plus trip-count bucket,
// so they survive rebuilds).
func (p *Pool) TunerSnapshot() ([]byte, error) { return p.tuner.SnapshotJSON() }

// LoadTunerSnapshot warm-starts the tuner from a TunerSnapshot taken by
// an earlier run. Call it before the first Auto loop; sites that already
// started exploring are not rewritten.
func (p *Pool) LoadTunerSnapshot(data []byte) error { return p.tuner.LoadJSON(data) }
