package hybridloop

import (
	"net/http"
	"time"

	"hybridloop/internal/loop"
	"hybridloop/internal/metrics"
	"hybridloop/internal/trace"
)

// MetricsRegistry is the pool's metrics plane: label-based counters,
// gauges, and windowed histograms with Prometheus text-format
// exposition. A nil registry is the "metrics off" state — every producer
// in the runtime is a no-op against it — and pools default to nil, so
// the scheduling hot paths are untouched unless WithMetrics is given.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty registry to pass to WithMetrics
// and mount via MetricsHandler.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// MetricsHandler serves r in Prometheus text exposition format; mount it
// at /metrics. A nil registry serves an empty, valid exposition.
func MetricsHandler(r *MetricsRegistry) http.Handler { return metrics.Handler(r) }

// WithMetrics attaches a metrics registry to the pool. Construction
// registers scrape-time collectors for the scheduler's per-worker
// counters, the demand census and parked-worker gauges, the admission
// gate, and the adaptive tuner's per-site state — all read only when the
// registry is scraped, so even a live registry adds no scheduling-path
// cost. Public loop entry points additionally time each loop into
// windowed duration histograms labeled by site and strategy (one cheap
// observation per loop submission, nothing per chunk or iteration).
//
// Call (*MetricsRegistry).Rotate periodically — or RotateEvery — so the
// windowed histograms' recent-percentile views track current behaviour.
func WithMetrics(r *MetricsRegistry) Option {
	return func(p *Pool) { p.mreg = r }
}

// WithLabel names the loop's call site on the metrics plane: the loop's
// duration series carries site=<label> instead of site="". Use one
// static label per call site (like a route name); never derive labels
// from request data — label cardinality is series cardinality.
func WithLabel(label string) ForOption {
	return func(o *loop.Options) { o.Label = label }
}

// registerPoolMetrics wires the per-layer collectors at construction.
func (p *Pool) registerPoolMetrics() {
	if p.mreg == nil {
		return
	}
	p.s.RegisterMetrics(p.mreg)
	p.gate.RegisterMetrics(p.mreg) // nil-safe: ungated pools register nothing
	p.tuner.RegisterMetrics(p.mreg)
}

// loopDurationWindows is the ring size of the per-(site, strategy)
// duration histograms: with a 10s rotation period, about a minute of
// recent history behind the _recent quantile series.
const loopDurationWindows = 6

// observeLoop records one completed loop submission. Called via defer
// with time.Now() captured at the defer statement, so start is the
// submission time. The registry lookup is two RWMutex read-locked map
// probes per loop — noise next to loop setup, and nothing at all when
// metrics are off (callers check p.mreg first).
func (p *Pool) observeLoop(o *loop.Options, start time.Time) {
	ls := metrics.L("site", o.Label, "strategy", o.Strategy.String())
	p.mreg.Windowed("hybridloop_loop_duration_seconds",
		"wall time of public loop calls, submission to join", ls, nil, loopDurationWindows).
		ObserveSince(start)
	p.mreg.Counter("hybridloop_loops_total", "public loop calls completed", ls).Inc()
}

// observeInline records a loop submission the admission gate degraded to
// a serial inline run (the scheduler never saw it, so observeLoop's
// strategy label would be a lie).
func (p *Pool) observeInline(start time.Time) {
	p.mreg.Windowed("hybridloop_loop_duration_seconds",
		"wall time of public loop calls, submission to join",
		metrics.L("site", "", "strategy", "inline"), nil, loopDurationWindows).
		ObserveSince(start)
	p.mreg.Counter("hybridloop_loops_total", "public loop calls completed",
		metrics.L("site", "", "strategy", "inline")).Inc()
}

// BridgeTraceMetrics post-processes a trace log into r: chunk-size and
// loop-duration histograms, claim/steal/split/cancel counters, all
// labeled site=<label>. Tracing already pays a per-chunk critical
// section, so the bridge runs over the harvested log instead of adding a
// second hot-path producer. Bridge each log once (Reset it afterwards if
// the loop runs again), or the counts double.
func BridgeTraceMetrics(r *MetricsRegistry, label string, l *trace.Log) {
	r.BridgeTrace(label, l)
}
