package hybridloop_test

import (
	"sync/atomic"
	"testing"

	"hybridloop"
	"hybridloop/internal/affinity"
)

func TestQuickstartShape(t *testing.T) {
	pool := hybridloop.NewPool(4)
	defer pool.Close()
	data := make([]float64, 10000)
	pool.For(0, len(data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = float64(i) * 2
		}
	})
	for i, v := range data {
		if v != float64(i)*2 {
			t.Fatalf("data[%d] = %v", i, v)
		}
	}
}

func TestNewPoolDefaultsToGOMAXPROCS(t *testing.T) {
	pool := hybridloop.NewPool(0)
	defer pool.Close()
	if pool.Workers() < 1 {
		t.Fatalf("Workers() = %d", pool.Workers())
	}
}

func TestAllStrategiesViaPublicAPI(t *testing.T) {
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(7))
	defer pool.Close()
	for _, s := range []hybridloop.Strategy{
		hybridloop.Hybrid, hybridloop.Static, hybridloop.DynamicStealing,
		hybridloop.DynamicSharing, hybridloop.Guided,
	} {
		var n atomic.Int64
		pool.For(0, 12345, func(lo, hi int) {
			n.Add(int64(hi - lo))
		}, hybridloop.WithStrategy(s), hybridloop.WithChunk(100))
		if n.Load() != 12345 {
			t.Fatalf("%v: covered %d iterations", s, n.Load())
		}
	}
}

func TestForEach(t *testing.T) {
	pool := hybridloop.NewPool(3)
	defer pool.Close()
	var sum atomic.Int64
	pool.ForEach(1, 101, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 5050 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestWithDefaultStrategyAndChunk(t *testing.T) {
	pool := hybridloop.NewPool(2,
		hybridloop.WithDefaultStrategy(hybridloop.Static),
		hybridloop.WithDefaultChunk(64))
	defer pool.Close()
	tr := affinity.NewTracker(1000)
	for i := 0; i < 3; i++ {
		pool.For(0, 1000, func(lo, hi int) {}, hybridloop.WithRecorder(tr))
		frac := tr.EndLoop()
		if i > 0 && frac != 1.0 {
			t.Fatalf("default static strategy not applied: affinity %v", frac)
		}
	}
}

func TestNestedForFromTask(t *testing.T) {
	pool := hybridloop.NewPool(4)
	defer pool.Close()
	var total atomic.Int64
	pool.Run(func(w *hybridloop.Worker) {
		hybridloop.For(w, 0, 10, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hybridloop.For(w, 0, 100, func(l2, h2 int) {
					total.Add(int64(h2 - l2))
				}, hybridloop.WithChunk(7))
			}
		})
	})
	if total.Load() != 1000 {
		t.Fatalf("nested total = %d", total.Load())
	}
}

func TestSpawnWaitPublicAPI(t *testing.T) {
	pool := hybridloop.NewPool(4)
	defer pool.Close()
	var count atomic.Int64
	pool.Run(func(w *hybridloop.Worker) {
		var g hybridloop.Group
		for i := 0; i < 64; i++ {
			w.Spawn(&g, func(cw *hybridloop.Worker) { count.Add(1) })
		}
		w.Wait(&g)
	})
	if count.Load() != 64 {
		t.Fatalf("count = %d", count.Load())
	}
}

func TestStatsExposed(t *testing.T) {
	pool := hybridloop.NewPool(2)
	defer pool.Close()
	pool.ResetStats()
	pool.For(0, 1000, func(lo, hi int) {}, hybridloop.WithChunk(10))
	if pool.Stats().Tasks == 0 {
		t.Fatal("no tasks recorded")
	}
}

func TestDefaultChunkRule(t *testing.T) {
	if hybridloop.DefaultChunk(1<<20, 4) != 2048 {
		t.Fatal("cap at 2048 missing")
	}
	if hybridloop.DefaultChunk(800, 10) != 10 {
		t.Fatalf("DefaultChunk(800,10) = %d", hybridloop.DefaultChunk(800, 10))
	}
}

func TestWithOSThreads(t *testing.T) {
	pool := hybridloop.NewPool(2, hybridloop.WithOSThreads(), hybridloop.WithSeed(3))
	defer pool.Close()
	var sum atomic.Int64
	pool.For(0, 10000, func(lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		sum.Add(local)
	})
	if sum.Load() != 10000*9999/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

// allocProbeSink absorbs iteration work in the allocation tests; package
// scope so the probe bodies capture nothing and are themselves
// allocation-free.
var allocProbeSink atomic.Int64

// TestForEachAllocations pins down the ForEach fix: the per-index adapter
// is built once per loop in the worker-aware form the core consumes
// directly, so ForEach may cost at most one more allocation per loop than
// For (it used to rebuild a doubly wrapped closure chain on every
// chunk). P=1 keeps the scheduler deterministic enough for
// testing.AllocsPerRun.
func TestForEachAllocations(t *testing.T) {
	pool := hybridloop.NewPool(1, hybridloop.WithSeed(1))
	defer pool.Close()
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			allocProbeSink.Add(int64(i))
		}
	}
	each := func(i int) { allocProbeSink.Add(int64(i)) }
	pool.For(0, 4096, body)     // warm the pool's lazy state
	pool.ForEach(0, 4096, each) // and both entry paths
	allocsFor := testing.AllocsPerRun(50, func() { pool.For(0, 4096, body) })
	allocsEach := testing.AllocsPerRun(50, func() { pool.ForEach(0, 4096, each) })
	if allocsEach > allocsFor+1 {
		t.Fatalf("ForEach allocates %.1f per loop, For %.1f — more than one extra", allocsEach, allocsFor)
	}
}
