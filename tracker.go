package hybridloop

import "hybridloop/internal/affinity"

// AffinityTracker measures loop affinity: the fraction of iterations
// executed by the same worker as in the previous loop over the same index
// space — the paper's Figure 2 metric. Attach it to loops with
// WithRecorder and call EndLoop after each loop completes.
type AffinityTracker struct {
	t *affinity.Tracker
}

// NewAffinityTracker returns a tracker for iterations [0, n).
func NewAffinityTracker(n int) *AffinityTracker {
	return &AffinityTracker{t: affinity.NewTracker(n)}
}

// Record implements Recorder; the runtime calls it per executed chunk.
func (a *AffinityTracker) Record(worker, begin, end int) {
	a.t.Record(worker, begin, end)
}

// EndLoop finishes the current loop and returns the fraction of its
// iterations that ran on the same worker as in the previous loop
// (0 for the first loop).
func (a *AffinityTracker) EndLoop() float64 { return a.t.EndLoop() }

// Assignment returns the completed loop's iteration-to-worker map
// (after EndLoop), -1 for unexecuted iterations.
func (a *AffinityTracker) Assignment() []int32 { return a.t.Assignment() }
