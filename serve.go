package hybridloop

import (
	"time"

	"hybridloop/internal/loop"
	"hybridloop/internal/sched"
)

// ErrBackpressure is returned by TryFor when the pool's admission gate
// rejects the submission: the in-flight loop budget is exhausted or the
// submit-rate token bucket is empty. It is the overload signal of the
// multi-tenant serving mode — callers shed load (an HTTP 503), retry
// later, or fall back to a serial computation, instead of piling more
// concurrent loops onto the fixed worker set.
var ErrBackpressure = sched.ErrBackpressure

// GateStats are the admission gate's counters; see Pool.AdmissionStats.
type GateStats = sched.GateStats

// LoopInfo is a snapshot of one registered loop's fairness state (ID,
// weight, service received); see Pool.LiveLoops.
type LoopInfo = sched.LoopInfo

// WithMaxInFlightLoops bounds how many loops may execute on the pool
// concurrently (the in-flight budget of the admission gate). Submissions
// beyond the bound observe backpressure: For and ForErr degrade to a
// serial inline run on the calling goroutine, TryFor returns
// ErrBackpressure, and ForCtx waits for a slot under its context.
// n <= 0 (the default) leaves the budget unlimited.
func WithMaxInFlightLoops(n int) Option {
	return func(p *Pool) { p.maxInFlight = n }
}

// WithSubmitRate adds a token bucket to the admission gate: at most
// perSecond loop submissions per second on average, with the given burst
// capacity. Rejections behave exactly as for WithMaxInFlightLoops.
// perSecond <= 0 (the default) disables the bucket.
func WithSubmitRate(perSecond float64, burst int) Option {
	return func(p *Pool) { p.submitRate, p.submitBurst = perSecond, burst }
}

// WithPriority sets the loop's cross-loop fairness weight. When several
// loops are live on the pool at once, idle workers are steered to the
// live loop with the smallest served/priority ratio, so a priority-8
// request loop keeps receiving workers while a priority-1 batch loop
// runs beside it — the mechanism that bounds small-loop tail latency
// under a concurrent giant loop. Values below 1 select the default
// weight 1.
func WithPriority(weight int) ForOption {
	return func(o *loop.Options) { o.Priority = weight }
}

// AdmissionStats returns the admission gate's counters; ok is false when
// the pool was built without admission control (no WithMaxInFlightLoops
// or WithSubmitRate option).
func (p *Pool) AdmissionStats() (s GateStats, ok bool) {
	if p.gate == nil {
		return GateStats{}, false
	}
	return p.gate.Stats(), true
}

// LiveLoops snapshots the fairness state of every loop currently
// registered with the pool's steal protocol — per-loop attribution for
// stats endpoints: each entry's ID, weight, and how much steal-protocol
// service it has received.
func (p *Pool) LiveLoops() []LoopInfo { return p.s.LiveLoops() }

// LoopsRegistered returns how many loops have entered the pool's steal
// protocol over its lifetime — a cheap cumulative tenancy counter for
// serving dashboards (LiveLoops is the instantaneous view).
func (p *Pool) LoopsRegistered() int64 { return p.s.LoopsRegistered() }

// TryFor is For with non-blocking admission: if the pool's gate rejects
// the submission it returns ErrBackpressure without executing any
// iteration; otherwise it runs the loop to completion and returns nil.
// On a pool without admission control it is exactly For.
func (p *Pool) TryFor(begin, end int, body Body, opts ...ForOption) error {
	if end <= begin {
		return nil
	}
	if p.gate != nil {
		if !p.gate.TryAcquire() {
			return ErrBackpressure
		}
		defer p.gate.Release()
	}
	o := p.options(opts, 1)
	if p.mreg != nil {
		defer p.observeLoop(&o, time.Now())
	}
	loop.For(p.s, begin, end, body, o)
	return nil
}

// forUngated runs a loop without consulting the admission gate, for
// callers (ForCtx) that performed their own admission. skip = 2: the
// user's call site is two frames above the options materialization.
func (p *Pool) forUngated(begin, end int, body Body, opts []ForOption) {
	o := p.options(opts, 2)
	if p.mreg != nil {
		defer p.observeLoop(&o, time.Now())
	}
	loop.For(p.s, begin, end, body, o)
}

// admitOrInline performs the gated admission of a blocking public loop
// call. inline == true means the gate rejected the submission and the
// caller must degrade to a serial inline run on its own goroutine —
// bounded degradation instead of oversubscription: the pool's worker
// count and the in-flight loop count stay fixed, and the excess
// submission costs only the calling goroutine (which would have blocked
// in the pool anyway). Otherwise release must be called (if non-nil)
// when the loop completes.
func (p *Pool) admitOrInline() (release func(), inline bool) {
	if p.gate == nil {
		return nil, false
	}
	if !p.gate.TryAcquire() {
		p.gate.NoteInline()
		return nil, true
	}
	return p.gate.Release, false
}
