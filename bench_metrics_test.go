package hybridloop_test

import (
	"io"
	"runtime"
	"testing"

	"hybridloop"
)

// benchForFine mirrors internal/sched's BenchmarkForFineHybrid shape —
// empty body, n = 32768, chunk 16, the pure per-chunk-tax worst case —
// but through the public API, so the submission path the metrics plane
// instruments (options materialization, observeLoop defer) is part of
// the measurement.
func benchForFine(b *testing.B, opts ...hybridloop.Option) {
	pool := hybridloop.NewPool(runtime.NumCPU(), opts...)
	defer pool.Close()
	const n = 1 << 15
	body := func(lo, hi int) {}
	forOpts := []hybridloop.ForOption{
		hybridloop.WithStrategy(hybridloop.Hybrid),
		hybridloop.WithChunk(16),
		hybridloop.WithLabel("bench"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.For(0, n, body, forOpts...)
	}
}

// BenchmarkForFineHybridMetrics pins the metrics plane's overhead
// contract from DESIGN.md: with no registry the instrumentation must
// cost nothing (a nil check per loop submission), and with a live
// registry the cost is one windowed-histogram observation plus a
// counter increment per submission — per loop, never per chunk, so the
// two rows should be indistinguishable at this chunk count. Compare:
//
//	go test -bench ForFineHybridMetrics -count 5 .
func BenchmarkForFineHybridMetrics(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchForFine(b)
	})
	b.Run("on", func(b *testing.B) {
		reg := hybridloop.NewMetricsRegistry()
		benchForFine(b, hybridloop.WithMetrics(reg))
		// Scrape once so the registry's exposition path is exercised and
		// the collected series cannot be optimized away.
		b.StopTimer()
		if err := reg.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	})
}
