GO ?= go

SCHED_PKGS := ./internal/sched/... ./internal/deque/... ./internal/loop/...

BENCH_PATTERN := BenchmarkSpawn|BenchmarkSpawnBatch|BenchmarkStealThroughput|BenchmarkWakeToFirstTask|BenchmarkForFine|BenchmarkAutoSteadyState

# The three headline benchmarks the benchgate target re-measures: the
# fine-grained per-chunk tax, the wake latency, and the steal handoff rate.
GATE_PATTERN := BenchmarkForFineHybrid|BenchmarkWakeToFirstTask|BenchmarkStealThroughput

STRESS_PATTERN := TestCancel|TestPanickingOwner|TestDemandRetiredOnPark|TestDemandQuiesces|TestMeetDemand|TestParkingRetains|TestParkUnpark|TestForErr|TestForEachErr|TestForCtx|TestPanicPropagation|TestStealHalf|TestStealBack|TestRangeSlotAbandon|TestGate|TestConcurrentIndependentLoops|TestCrossLoopCancelStress|TestTryForBackpressure|TestForDegradesInline|TestMetricsConcurrentStress|TestStealWakeChaining|TestTryStealPrefersLocal|TestHierarchicalRangeSteal

# Packages carrying seeded golden datasets (testdata/golden_*.json).
GOLDEN_PKGS := ./internal/sim/ ./internal/nas/

.PHONY: check race bench benchdiff benchgate stress lint protodoc servertest golden golden-regen repro

# Every registered schedlint analyzer; `make lint` fails if a
# registration regression drops one.
LINT_ANALYZERS := 8

## check: vet, build and test everything (tier-1 gate)
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

## lint: vet plus the module's own concurrency-invariant analyzers
## (atomicmix, cacheline, lockorder, loopcapture, looperr,
## metricsample, noalloc, protocol — see cmd/schedlint). Asserts the
## registered-analyzer count first, so a registration regression fails
## loudly instead of silently checking less.
lint:
	$(GO) vet ./...
	@n=$$($(GO) run ./cmd/schedlint -list | wc -l); \
	if [ "$$n" -ne "$(LINT_ANALYZERS)" ]; then \
		echo "lint: expected $(LINT_ANALYZERS) registered analyzers, schedlint -list reports $$n" >&2; \
		exit 1; \
	fi
	$(GO) run ./cmd/schedlint ./...

## protodoc: regenerate the protocol tables in DESIGN.md from the
## //sched:protocol annotations (checked in CI by TestProtodocInSync)
protodoc:
	$(GO) run ./cmd/schedlint -protodoc DESIGN.md ./...

## race: race-detect the scheduler hot path and the metrics plane
## (includes the stress tests)
race:
	$(GO) test -race -count=1 $(SCHED_PKGS) ./internal/metrics/

## stress: race-detect the cancellation, error-propagation, steal-path
## and metrics-plane stress tests (public API package included)
stress:
	$(GO) test -race -count=1 -run '$(STRESS_PATTERN)' . $(SCHED_PKGS) ./internal/metrics/

## golden: run the seeded golden-run regression tests — simulator policy
## runs (the 4×8 paper grid plus the scaled 8×8/8×32 victim-policy
## grids) and NAS kernel outputs must match testdata/golden_*.json bit
## for bit (a policy or numerics change must regenerate them
## deliberately; -update merges by run key, so extending a grid never
## silently invalidates previously pinned rows)
golden:
	$(GO) test -count=1 -run TestGolden $(GOLDEN_PKGS)

## golden-regen: regenerate the golden datasets after a deliberate
## policy or numerics change; commit the diff with the change itself
golden-regen:
	$(GO) test -count=1 -run TestGoldenEquivalence -update $(GOLDEN_PKGS)
	$(GO) test -count=1 -run TestGolden $(GOLDEN_PKGS)

## repro: regenerate the paper-reproduction artifacts under out/
## (untracked; see EXPERIMENTS.md for the committed summary)
repro:
	mkdir -p out
	$(GO) run ./cmd/paperrepro -html out/report.html | tee out/paperrepro_output.txt

## bench: run the scheduler benchmarks and regenerate BENCH_sched.json
## (two repeats; benchjson keeps the best per name — scheduling noise on
## a shared machine only ever inflates an op, so min is the stable stat)
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' \
		-benchtime 0.5s -count=2 ./internal/sched/ | tee /tmp/bench_sched.txt
	$(GO) run ./cmd/benchjson -in /tmp/bench_sched.txt -out BENCH_sched.json

## servertest: smoke-test the multi-tenant serving example — self-driving
## load run with a concurrent giant batch loop; exits non-zero if the
## service collapses (zero throughput, unbounded P99, goroutine blow-up)
servertest:
	$(GO) run ./examples/server -bench -duration 3s -clients 8 -giant

## benchdiff: rerun the benchmarks and fail on a >10% ns/op regression
## against the committed BENCH_sched.json (writes nothing)
benchdiff:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' \
		-benchtime 0.5s -count=1 ./internal/sched/ | tee /tmp/bench_sched_diff.txt
	$(GO) run ./cmd/benchjson -in /tmp/bench_sched_diff.txt -out BENCH_sched.json -diff -threshold 0.10

## benchgate: the CI perf gate — run the three headline benchmarks three
## times each (benchjson keeps the best repeat per name, filtering
## one-sided scheduling noise) and fail on a >10% ns/op regression
## against the committed BENCH_sched.json (writes nothing)
benchgate:
	$(GO) test -run '^$$' -bench '$(GATE_PATTERN)' \
		-benchtime 0.5s -count=3 ./internal/sched/ | tee /tmp/bench_sched_gate.txt
	$(GO) run ./cmd/benchjson -in /tmp/bench_sched_gate.txt -out BENCH_sched.json -diff -threshold 0.10
