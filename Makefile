GO ?= go

SCHED_PKGS := ./internal/sched/... ./internal/deque/... ./internal/loop/...

.PHONY: check race bench

## check: vet, build and test everything (tier-1 gate)
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

## race: race-detect the scheduler hot path (includes the stress test)
race:
	$(GO) test -race -count=1 $(SCHED_PKGS)

## bench: run the scheduler benchmarks and regenerate BENCH_sched.json
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSpawn|BenchmarkSpawnBatch|BenchmarkStealThroughput|BenchmarkWakeToFirstTask|BenchmarkForFine' \
		-benchtime 0.5s -count=1 ./internal/sched/ | tee /tmp/bench_sched.txt
	$(GO) run ./cmd/benchjson -in /tmp/bench_sched.txt -out BENCH_sched.json
