package hybridloop

import "hybridloop/internal/loop"

// WithWeight attaches a per-iteration cost hint to a loop: Static and
// Hybrid then partition by equal total weight instead of equal iteration
// count, so a predictably unbalanced loop is balanced already in the
// static phase (the annotation-driven extension discussed in the paper's
// related work); the claiming heuristic and work stealing absorb whatever
// the hint gets wrong. Purely dynamic strategies ignore the hint.
func WithWeight(weight func(i int) float64) ForOption {
	return func(o *loop.Options) { o.Weight = weight }
}

// Reduce computes a parallel reduction over [begin, end): chunk maps each
// range of iterations to a partial value, and combine folds partials. The
// iteration space is cut at fixed block boundaries independent of
// scheduling and partials are combined in block order, so for a given
// blockSize the result is deterministic — identical across runs, worker
// counts and strategies — as long as combine is associative over the
// block partials (it need not be commutative).
//
// blockSize <= 0 selects a default of 1024 iterations per block.
func Reduce[T any](p *Pool, begin, end, blockSize int, identity T,
	chunk func(lo, hi int) T, combine func(a, b T) T, opts ...ForOption) T {
	if end <= begin {
		return identity
	}
	if blockSize <= 0 {
		blockSize = 1024
	}
	n := end - begin
	nb := (n + blockSize - 1) / blockSize
	partials := make([]T, nb)
	// Attribute the inner loop to Reduce's caller (prepended, so an
	// explicit site from a wrapper like Sum wins): under Auto, the tuning
	// profile belongs to the user's reduction, not to this line.
	opts = append([]ForOption{withSite(callerPC(1))}, opts...)
	p.For(0, nb, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo := begin + b*blockSize
			hi := lo + blockSize
			if hi > end {
				hi = end
			}
			partials[b] = chunk(lo, hi)
		}
	}, opts...)
	acc := identity
	for _, pv := range partials {
		acc = combine(acc, pv)
	}
	return acc
}

// Sum is Reduce specialized to float64 addition over a per-index value
// function — the common dot-product/norm shape.
func Sum(p *Pool, begin, end int, f func(i int) float64, opts ...ForOption) float64 {
	opts = append(opts, withSite(callerPC(1)))
	return Reduce(p, begin, end, 0, 0.0,
		func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += f(i)
			}
			return s
		},
		func(a, b float64) float64 { return a + b },
		opts...)
}

// For2D executes body over the 2-D iteration space [r0, r1) x [c0, c1) in
// tiles of tileR x tileC. Tiles are scheduled as a 1-D parallel loop in
// row-major tile order, so with the Hybrid or Static strategy the same
// tiles return to the same workers across repeated sweeps (2-D loop
// affinity). Tile sizes <= 0 pick roughly square tiles that yield about
// 8 tiles per worker.
func (p *Pool) For2D(r0, r1, c0, c1, tileR, tileC int,
	body func(rlo, rhi, clo, chi int), opts ...ForOption) {
	rows, cols := r1-r0, c1-c0
	if rows <= 0 || cols <= 0 {
		return
	}
	if tileR <= 0 || tileC <= 0 {
		t := defaultTile(rows, cols, p.Workers())
		if tileR <= 0 {
			tileR = t
		}
		if tileC <= 0 {
			tileC = t
		}
	}
	tilesR := (rows + tileR - 1) / tileR
	tilesC := (cols + tileC - 1) / tileC
	// One tile per loop iteration: the chunking below must not merge
	// tiles across a row boundary into one body call, so the body is
	// invoked per tile inside the chunk.
	p.For(0, tilesR*tilesC, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			tr, tc := t/tilesC, t%tilesC
			rlo := r0 + tr*tileR
			rhi := rlo + tileR
			if rhi > r1 {
				rhi = r1
			}
			clo := c0 + tc*tileC
			chi := clo + tileC
			if chi > c1 {
				chi = c1
			}
			body(rlo, rhi, clo, chi)
		}
	}, append([]ForOption{WithChunk(1), withSite(callerPC(1))}, opts...)...)
}

// defaultTile picks a square-ish power-of-two tile size giving about 8
// tiles per worker: the largest power of two t with t² ≤ area/(8·workers),
// at least 1. The doubling condition divides instead of multiplying, so it
// cannot overflow — degenerate inputs (a tiny grid, a worker count
// exceeding the grid, an area near the int limit) all land on a valid
// tile size instead of looping forever or returning zero.
func defaultTile(rows, cols, workers int) int {
	if workers < 1 {
		workers = 1
	}
	target := rows * cols / (8 * workers)
	t := 1
	for 2*t <= target/(2*t) {
		t *= 2
	}
	return t
}
