// Command realbench measures the *real* goroutine runtime — not the
// simulator — sweeping worker counts up to the machine's CPUs and
// printing Figure-1-style work efficiency and scalability for the
// microbenchmarks and the real NAS kernels under every strategy.
//
// On a single-CPU machine the sweep degenerates to P = 1 (the simulator
// commands cover the paper's 32-core machine); on a real multicore this
// reproduces the paper's experiment end to end on actual hardware.
//
// Usage: realbench [-maxp n] [-reps n] [-kernels ep,is,cg,mg,ft] [-micro]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"hybridloop"
	"hybridloop/internal/harness"
	"hybridloop/internal/nas"
)

var allStrategies = []hybridloop.Strategy{
	hybridloop.Hybrid, hybridloop.DynamicStealing, hybridloop.Static,
	hybridloop.DynamicSharing, hybridloop.Guided,
}

func main() {
	maxP := flag.Int("maxp", 0, "largest worker count (0 = NumCPU)")
	reps := flag.Int("reps", 3, "repetitions per point (min taken)")
	kernels := flag.String("kernels", "ep,is,cg,mg,ft", "kernel subset")
	micro := flag.Bool("micro", true, "include the balanced/unbalanced microbenchmarks")
	flag.Parse()

	top := *maxP
	if top <= 0 {
		top = runtime.NumCPU()
	}
	var ps []int
	for p := 1; p <= top; p *= 2 {
		ps = append(ps, p)
	}
	if ps[len(ps)-1] != top {
		ps = append(ps, top)
	}
	fmt.Printf("real-runtime sweep on %d CPUs, P in %v, %d reps (min)\n\n",
		runtime.NumCPU(), ps, *reps)

	if *micro {
		runSweep("micro/balanced", ps, *reps, microBench(true))
		runSweep("micro/unbalanced", ps, *reps, microBench(false))
	}
	want := map[string]bool{}
	for _, k := range strings.Split(*kernels, ",") {
		want[strings.TrimSpace(k)] = true
	}
	if want["ep"] {
		runSweep("ep", ps, *reps, func(pool *hybridloop.Pool, s hybridloop.Strategy) {
			nas.EP{M: 20, LogBlock: 10}.Parallel(pool, hybridloop.WithStrategy(s))
		})
	}
	if want["is"] {
		runSweep("is", ps, *reps, func(pool *hybridloop.Pool, s hybridloop.Strategy) {
			nas.NPBIS(nas.NPBISClasses['S'], pool, hybridloop.WithStrategy(s))
		})
	}
	if want["cg"] {
		cg := nas.CG{N: 14000, NIters: 2}
		a := cg.Matrix()
		runSweep("cg", ps, *reps, func(pool *hybridloop.Pool, s hybridloop.Strategy) {
			cg.ParallelOn(pool, a, hybridloop.WithStrategy(s))
		})
	}
	if want["mg"] {
		runSweep("mg", ps, *reps, func(pool *hybridloop.Pool, s hybridloop.Strategy) {
			nas.MG{Log2N: 5, Cycles: 2}.ParallelNPB(pool, hybridloop.WithStrategy(s))
		})
	}
	if want["ft"] {
		runSweep("ft", ps, *reps, func(pool *hybridloop.Pool, s hybridloop.Strategy) {
			nas.FT{N1: 64, N2: 64, N3: 32, Iterations: 2}.Parallel(pool, hybridloop.WithStrategy(s))
		})
	}
}

// microBench returns a runner for the paper's microbenchmark on the real
// runtime: an outer sequential loop of parallel loops whose iterations
// walk disjoint array segments.
func microBench(balanced bool) func(*hybridloop.Pool, hybridloop.Strategy) {
	const n, outer = 512, 6
	const totalBytes = 32 << 20
	data := make([]float64, totalBytes/8)
	offs := make([]int, n+1)
	for i := 0; i < n; i++ {
		size := len(data) / n
		if !balanced {
			size = int(float64(len(data)) * (0.25 + 1.5*float64(i)/float64(n-1)) /
				(float64(n)))
		}
		offs[i+1] = offs[i] + size
		if offs[i+1] > len(data) {
			offs[i+1] = len(data)
		}
	}
	return func(pool *hybridloop.Pool, s hybridloop.Strategy) {
		for rep := 0; rep < outer; rep++ {
			pool.For(0, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					seg := data[offs[i]:offs[i+1]]
					// Stride-13 walk, like the paper's microbenchmark.
					for k := 0; k < len(seg); k += 13 {
						seg[k] += 1
					}
				}
			}, hybridloop.WithStrategy(s))
		}
	}
}

// runSweep measures the workload at each P and prints Ts-normalized rows.
func runSweep(name string, ps []int, reps int, run func(*hybridloop.Pool, hybridloop.Strategy)) {
	t := harness.Table{
		Title:  fmt.Sprintf("%s — wall time and scalability (T1/TP), real runtime", name),
		Header: append([]string{"strategy \\ P"}, intStrings(ps)...),
	}
	for _, s := range allStrategies {
		times := map[int]time.Duration{}
		for _, p := range ps {
			pool := hybridloop.NewPool(p, hybridloop.WithSeed(uint64(p)))
			best := time.Duration(0)
			for r := 0; r < reps; r++ {
				start := time.Now()
				run(pool, s)
				el := time.Since(start)
				if best == 0 || el < best {
					best = el
				}
			}
			pool.Close()
			times[p] = best
		}
		row := []string{s.String()}
		t1 := times[ps[0]]
		for _, p := range ps {
			row = append(row, fmt.Sprintf("%v (%.2fx)",
				times[p].Round(time.Millisecond), float64(t1)/float64(times[p])))
		}
		t.AddRow(row...)
	}
	t.Render(os.Stdout)
	fmt.Println()
}

func intStrings(ps []int) []string {
	out := make([]string, len(ps))
	sorted := append([]int(nil), ps...)
	sort.Ints(sorted)
	for i, p := range sorted {
		out[i] = fmt.Sprint(p)
	}
	return out
}
