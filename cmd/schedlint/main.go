// Command schedlint runs this repository's concurrency-invariant
// static analyzers (internal/lint) over a set of packages:
//
//	go run ./cmd/schedlint ./...
//
// Analyzers: atomicmix (no plain access to atomically-accessed words),
// cacheline (//sched:cacheline structs padded to 64-byte multiples),
// loopcapture (no plain writes to variables captured by parallel loop
// bodies), looperr (no ignored ForErr/ForEachErr/ForCtx results),
// metricsample (no plain writes to words the metrics registry samples
// with sync/atomic at scrape time).
// Deliberate violations are annotated in the source with
// //lint:ignore <analyzer> <reason>.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridloop/internal/lint"
)

func main() {
	var (
		tests = flag.Bool("tests", false, "also analyze in-package _test.go files")
		list  = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: schedlint [-tests] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ctx, err := lint.Load(".", patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(ctx, lint.Analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
