// Command schedlint runs this repository's concurrency-invariant
// static analyzers (internal/lint) over a set of packages:
//
//	go run ./cmd/schedlint ./...
//
// Analyzers: atomicmix (no plain access to atomically-accessed words),
// cacheline (//sched:cacheline structs padded to 64-byte multiples),
// lockorder (no mutex acquisition-order cycles, every lock released on
// every return path), loopcapture (no plain writes to variables
// captured by parallel loop bodies), looperr (no ignored
// ForErr/ForEachErr/ForCtx/TryFor results), metricsample (no plain
// writes to words the metrics registry samples with sync/atomic at
// scrape time), noalloc (//sched:noalloc functions contain no
// allocating construct), protocol (//sched:protocol atomic fields obey
// their declared state machines).
// Deliberate violations are annotated in the source with
// //lint:ignore <analyzer>[,<analyzer>...] <reason>; unknown analyzer
// names and stale suppressions are themselves findings.
//
// -json emits one JSON object per finding (file/line/col/analyzer/
// message) instead of the human-readable line format.
//
// -protodoc <file> regenerates the generated protocol-tables section of
// the given markdown document (DESIGN.md) in place from the
// //sched:protocol specs; "-" writes the section to stdout.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hybridloop/internal/lint"
)

// jsonDiagnostic is the machine-readable finding format emitted by
// -json, one object per line.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	var (
		tests    = flag.Bool("tests", false, "also analyze in-package _test.go files")
		list     = flag.Bool("list", false, "list the analyzers and exit")
		jsonOut  = flag.Bool("json", false, "emit findings as JSON, one object per line")
		protodoc = flag.String("protodoc", "", "regenerate the protocol tables of the given markdown `file` in place (\"-\" for stdout) and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: schedlint [-tests] [-json] [-protodoc file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ctx, err := lint.Load(".", patterns, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}

	if *protodoc != "" {
		if err := writeProtodoc(ctx, *protodoc); err != nil {
			fmt.Fprintln(os.Stderr, "schedlint:", err)
			os.Exit(2)
		}
		return
	}

	diags := lint.Run(ctx, lint.Analyzers)
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *jsonOut {
			enc.Encode(jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			continue
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func writeProtodoc(ctx *lint.Context, target string) error {
	section := lint.ProtocolDoc(ctx)
	if target == "-" {
		fmt.Print(section)
		return nil
	}
	content, err := os.ReadFile(target)
	if err != nil {
		return err
	}
	spliced, err := lint.SpliceProtocolDoc(string(content), section)
	if err != nil {
		return fmt.Errorf("%s: %w", target, err)
	}
	if spliced == string(content) {
		return nil
	}
	return os.WriteFile(target, []byte(spliced), 0o644)
}
