// Command benchjson converts `go test -bench` output into the committed
// BENCH_sched.json. It parses the standard benchmark lines (ns/op, B/op,
// allocs/op), records the machine the run happened on, and — when the
// output file already exists — preserves its "baseline" section and
// shifts the replaced "current" run into a "history" list, so every
// earlier PR's numbers survive regeneration via `make bench`. Duplicate
// benchmark names (a `-count=N` run) collapse to the minimum ns/op — the
// best-of repeat, which is what `make benchgate` compares. For every
// benchmark present in both the baseline and current sections it reports
// the speedup (baseline ns/op divided by current ns/op).
//
// With -diff the tool writes nothing: it compares the freshly parsed run
// against the committed file's current section and exits non-zero if any
// benchmark regressed by more than -threshold (default 10%) in ns/op —
// the `make benchdiff` regression gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result holds one benchmark's parsed metrics.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

// Run is one full benchmark invocation: environment plus results.
type Run struct {
	Date       string            `json:"date,omitempty"`
	Commit     string            `json:"commit,omitempty"`
	GOOS       string            `json:"goos,omitempty"`
	GOARCH     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	GOMAXPROCS int               `json:"gomaxprocs,omitempty"`
	Note       string            `json:"note,omitempty"`
	Results    map[string]Result `json:"results"`
}

// File is the BENCH_sched.json layout. History holds every former
// current run, oldest first, so regenerating never erases a prior PR's
// numbers.
type File struct {
	Description string             `json:"description"`
	Command     string             `json:"command"`
	Baseline    *Run               `json:"baseline,omitempty"`
	History     []*Run             `json:"history,omitempty"`
	Current     *Run               `json:"current"`
	Speedup     map[string]float64 `json:"speedup_vs_baseline,omitempty"`
}

// benchLine also captures the -N GOMAXPROCS suffix the testing package
// appends to each benchmark name, so the environment section can record
// how many procs the run used.
var benchLine = regexp.MustCompile(
	`^(Benchmark[^\s-]+(?:/[^\s-]+)*)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	run := &Run{
		Date:    time.Now().UTC().Format("2006-01-02"),
		Results: map[string]Result{},
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			run.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			run.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			run.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if m[2] != "" && run.GOMAXPROCS == 0 {
			run.GOMAXPROCS, _ = strconv.Atoi(m[2])
		}
		var r Result
		r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		if m[5] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		// Best-of across -count=N repeats: a benchmark name seen more than
		// once keeps its minimum ns/op line. Minimum, not mean — scheduler
		// benchmarks on a shared machine are contaminated one-sidedly (GC,
		// other processes only ever slow an op down), so the fastest repeat
		// is the best estimate of the code's true cost and the stable input
		// for the regression gate.
		if prev, ok := run.Results[m[1]]; !ok || r.NsPerOp < prev.NsPerOp {
			run.Results[m[1]] = r
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(run.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in %s", path)
	}
	return run, nil
}

func main() {
	in := flag.String("in", "", "benchmark output to parse (required)")
	out := flag.String("out", "BENCH_sched.json", "JSON file to write")
	note := flag.String("note", "", "note to attach to this run")
	asBaseline := flag.Bool("baseline", false,
		"record this run as the baseline instead of the current run")
	diff := flag.Bool("diff", false,
		"compare the run against the committed current section and exit 1 on regression; writes nothing")
	threshold := flag.Float64("threshold", 0.10,
		"with -diff: maximum tolerated ns/op regression as a fraction (0.10 = 10%)")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	run, err := parse(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	run.Note = *note
	run.Commit = headCommit()

	if *diff {
		os.Exit(diffAgainst(*out, run, *threshold))
	}

	file := &File{
		Description: "Scheduler hot-path benchmarks (internal/sched/bench_sched_test.go). " +
			"baseline = before the single-wake/zero-alloc spawn overhaul; " +
			"current = the committed code. Regenerate with `make bench`.",
		Command: "go test -run '^$' -bench 'BenchmarkSpawn|BenchmarkSpawnBatch|BenchmarkStealThroughput|BenchmarkWakeToFirstTask|BenchmarkForFine' -benchtime 0.5s ./internal/sched/",
	}
	if prev, err := os.ReadFile(*out); err == nil {
		var old File
		if json.Unmarshal(prev, &old) == nil {
			file.Baseline = old.Baseline
			file.History = old.History
			file.Current = old.Current
		}
	}
	if *asBaseline {
		file.Baseline = run
	} else {
		if file.Current != nil {
			// The replaced current run is history, never discarded.
			file.History = append(file.History, file.Current)
		}
		file.Current = run
	}

	if file.Baseline != nil && file.Current != nil {
		file.Speedup = map[string]float64{}
		for name, base := range file.Baseline.Results {
			if cur, ok := file.Current.Results[name]; ok && cur.NsPerOp > 0 {
				file.Speedup[name] = round2(base.NsPerOp / cur.NsPerOp)
			}
		}
	}

	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks)\n", *out, len(run.Results))
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}

// headCommit returns the short hash of the checked-out commit, or "" when
// git is unavailable (the field is omitempty).
func headCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// diffAgainst compares run's ns/op against the committed file's current
// section and returns the process exit code: 0 if every shared benchmark
// is within threshold, 1 if any regressed beyond it. Benchmarks present
// on only one side are reported but never fail the gate (new benchmarks
// must be recordable before they have a committed reference).
func diffAgainst(path string, run *Run, threshold float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: -diff:", err)
		return 1
	}
	var committed File
	if err := json.Unmarshal(data, &committed); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: -diff: parsing %s: %v\n", path, err)
		return 1
	}
	if committed.Current == nil {
		fmt.Fprintf(os.Stderr, "benchjson: -diff: %s has no current section\n", path)
		return 1
	}
	names := make([]string, 0, len(committed.Current.Results))
	for name := range committed.Current.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	for _, name := range names {
		ref := committed.Current.Results[name]
		cur, ok := run.Results[name]
		if !ok {
			fmt.Printf("  ?  %-40s missing from this run\n", name)
			continue
		}
		delta := cur.NsPerOp/ref.NsPerOp - 1
		mark := "ok "
		if delta > threshold {
			mark = "FAIL"
			failed++
		}
		fmt.Printf("  %-4s %-40s %10.1f -> %10.1f ns/op  (%+.1f%%)\n",
			mark, name, ref.NsPerOp, cur.NsPerOp, delta*100)
	}
	for name := range run.Results {
		if _, ok := committed.Current.Results[name]; !ok {
			fmt.Printf("  new  %-40s %10.1f ns/op (no committed reference)\n",
				name, run.Results[name].NsPerOp)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% vs %s\n",
			failed, threshold*100, path)
		return 1
	}
	fmt.Printf("benchjson: no regression beyond %.0f%% vs %s (%d benchmarks)\n",
		threshold*100, path, len(names))
	return 0
}
