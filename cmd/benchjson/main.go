// Command benchjson converts `go test -bench` output into the committed
// BENCH_sched.json. It parses the standard benchmark lines (ns/op, B/op,
// allocs/op), records the machine the run happened on, and — when the
// output file already exists — preserves its "baseline" section so the
// before/after comparison survives regeneration via `make bench`. For
// every benchmark present in both sections it reports the speedup
// (baseline ns/op divided by current ns/op).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result holds one benchmark's parsed metrics.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

// Run is one full benchmark invocation: environment plus results.
type Run struct {
	Date    string            `json:"date,omitempty"`
	Commit  string            `json:"commit,omitempty"`
	GOOS    string            `json:"goos,omitempty"`
	GOARCH  string            `json:"goarch,omitempty"`
	CPU     string            `json:"cpu,omitempty"`
	Note    string            `json:"note,omitempty"`
	Results map[string]Result `json:"results"`
}

// File is the BENCH_sched.json layout.
type File struct {
	Description string             `json:"description"`
	Command     string             `json:"command"`
	Baseline    *Run               `json:"baseline,omitempty"`
	Current     *Run               `json:"current"`
	Speedup     map[string]float64 `json:"speedup_vs_baseline,omitempty"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark[^\s-]+(?:/[^\s-]+)*)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	run := &Run{
		Date:    time.Now().UTC().Format("2006-01-02"),
		Results: map[string]Result{},
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			run.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			run.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			run.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var r Result
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		run.Results[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(run.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in %s", path)
	}
	return run, nil
}

func main() {
	in := flag.String("in", "", "benchmark output to parse (required)")
	out := flag.String("out", "BENCH_sched.json", "JSON file to write")
	note := flag.String("note", "", "note to attach to this run")
	asBaseline := flag.Bool("baseline", false,
		"record this run as the baseline instead of the current run")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	run, err := parse(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	run.Note = *note

	file := &File{
		Description: "Scheduler hot-path benchmarks (internal/sched/bench_sched_test.go). " +
			"baseline = before the single-wake/zero-alloc spawn overhaul; " +
			"current = the committed code. Regenerate with `make bench`.",
		Command: "go test -run '^$' -bench 'BenchmarkSpawn|BenchmarkSpawnBatch|BenchmarkStealThroughput|BenchmarkWakeToFirstTask|BenchmarkForFine' -benchtime 0.5s ./internal/sched/",
	}
	if prev, err := os.ReadFile(*out); err == nil {
		var old File
		if json.Unmarshal(prev, &old) == nil {
			file.Baseline = old.Baseline
			file.Current = old.Current
		}
	}
	if *asBaseline {
		file.Baseline = run
	} else {
		file.Current = run
	}

	if file.Baseline != nil && file.Current != nil {
		file.Speedup = map[string]float64{}
		for name, base := range file.Baseline.Results {
			if cur, ok := file.Current.Results[name]; ok && cur.NsPerOp > 0 {
				file.Speedup[name] = round2(base.NsPerOp / cur.NsPerOp)
			}
		}
	}

	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks)\n", *out, len(run.Results))
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}
