// Command hybridrun executes the real NAS kernels (internal/nas) on the
// goroutine work-stealing runtime with a selectable scheduling strategy —
// the front-end a user reaches for to run the paper's workloads on their
// own machine.
//
// Usage:
//
//	hybridrun -kernel ep|is|cg|mg|ft [-strategy hybrid|static|stealing|sharing|guided]
//	          [-workers n] [-size s] [-reps n] [-trace] [-verify]
//
// -size scales each kernel's canonical dimension (ep: 2^size numbers,
// is: 2^size keys, cg: matrix dimension, mg: log2 grid edge, ft: cube
// edge). -verify cross-checks the parallel run against the sequential
// reference. -trace prints the per-worker scheduling summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hybridloop"
	"hybridloop/internal/nas"
)

var strategies = map[string]hybridloop.Strategy{
	"hybrid":   hybridloop.Hybrid,
	"static":   hybridloop.Static,
	"stealing": hybridloop.DynamicStealing,
	"sharing":  hybridloop.DynamicSharing,
	"guided":   hybridloop.Guided,
}

func main() {
	kernel := flag.String("kernel", "ep", "kernel: ep, is, cg, mg, ft")
	stratName := flag.String("strategy", "hybrid", "hybrid, static, stealing, sharing, guided")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	size := flag.Int("size", 0, "problem size (kernel-specific; 0 = default)")
	class := flag.String("class", "", "NPB class (S or W): run the official benchmark with verification")
	reps := flag.Int("reps", 1, "repetitions (timings reported per rep)")
	doTrace := flag.Bool("trace", false, "print per-worker scheduling summary")
	verify := flag.Bool("verify", false, "cross-check against the sequential reference")
	flag.Parse()

	strat, ok := strategies[*stratName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *stratName)
		os.Exit(2)
	}
	pool := hybridloop.NewPool(*workers)
	defer pool.Close()

	var opts []hybridloop.ForOption
	opts = append(opts, hybridloop.WithStrategy(strat))
	var tl *hybridloop.TraceLog
	if *doTrace {
		tl = hybridloop.NewTraceLog(1 << 20)
		opts = append(opts, hybridloop.WithTrace(tl))
	}

	var run func() string
	var check func() error
	if *class != "" {
		run, check = buildNPBKernel(*kernel, byte((*class)[0]), pool, opts)
	} else {
		run, check = buildKernel(*kernel, *size, pool, opts)
	}
	if run == nil {
		fmt.Fprintf(os.Stderr, "unknown kernel %q (or class %q not available for it)\n", *kernel, *class)
		os.Exit(2)
	}

	fmt.Printf("kernel=%s strategy=%s workers=%d\n", *kernel, *stratName, pool.Workers())
	for r := 0; r < *reps; r++ {
		start := time.Now()
		desc := run()
		elapsed := time.Since(start)
		fmt.Printf("rep %d: %v  %s\n", r+1, elapsed.Round(time.Microsecond), desc)
	}
	if *verify {
		if err := check(); err != nil {
			fmt.Fprintf(os.Stderr, "VERIFICATION FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("verification: ok")
	}
	if tl != nil {
		fmt.Println()
		tl.Render(os.Stdout)
	}
	s := pool.Stats()
	fmt.Printf("scheduler: %d tasks, %d steals (%d failed rounds), %d hybrid-loop entries\n",
		s.Tasks, s.Steals, s.FailedSteals, s.LoopEntries)
}

// buildKernel returns a runner (executes one parallel rep, returns a
// description) and a verifier for the chosen kernel and size.
func buildKernel(kernel string, size int, pool *hybridloop.Pool, opts []hybridloop.ForOption) (func() string, func() error) {
	switch kernel {
	case "ep":
		if size == 0 {
			size = 22
		}
		ep := nas.EP{M: size, LogBlock: 10}
		var last nas.EPResult
		return func() string {
				last = ep.Parallel(pool, opts...)
				return fmt.Sprintf("pairs=%d sx=%.6f sy=%.6f", last.Pairs, last.Sx, last.Sy)
			}, func() error {
				if seq := ep.Sequential(); seq != last {
					return fmt.Errorf("ep: parallel %+v != sequential %+v", last, seq)
				}
				return nil
			}
	case "is":
		if size == 0 {
			size = 21
		}
		is := nas.IS{N: 1 << size, MaxKey: 1 << 11}
		var last nas.ISResult
		return func() string {
				last = is.Parallel(pool, opts...)
				return fmt.Sprintf("keys=%d rounds=%d", len(last.Keys), 10)
			}, func() error {
				return nas.VerifyRanks(last.Keys, last.Ranks)
			}
	case "cg":
		if size == 0 {
			size = 14000
		}
		cg := nas.CG{N: size, NIters: 5}
		a := cg.Matrix()
		var last nas.CGResult
		return func() string {
				last = cg.ParallelOn(pool, a, opts...)
				return fmt.Sprintf("n=%d nnz=%d zeta=%.8f residual=%.2e", size, a.NNZ(), last.Zeta, last.Residual)
			}, func() error {
				seq := cg.SequentialOn(a)
				if seq.Zeta != last.Zeta {
					return fmt.Errorf("cg: zeta %v != sequential %v", last.Zeta, seq.Zeta)
				}
				return nil
			}
	case "mg":
		if size == 0 {
			size = 5
		}
		mg := nas.MG{Log2N: size, Cycles: 4}
		var last nas.MGResult
		return func() string {
				last = mg.Parallel(pool, opts...)
				return fmt.Sprintf("grid=%d^3 residual %.3e -> %.3e", 1<<size, last.InitialResidual, last.Final())
			}, func() error {
				if last.Final() >= last.InitialResidual {
					return fmt.Errorf("mg: residual did not shrink")
				}
				seq := mg.Sequential()
				if seq.Final() != last.Final() {
					return fmt.Errorf("mg: final residual %v != sequential %v", last.Final(), seq.Final())
				}
				return nil
			}
	case "ft":
		if size == 0 {
			size = 64
		}
		ft := nas.FT{N1: size, N2: size, N3: size, Iterations: 6}
		var last nas.FTResult
		return func() string {
				last = ft.Parallel(pool, opts...)
				cs := last.Checksums[len(last.Checksums)-1]
				return fmt.Sprintf("%d^3 checksum=%v", size, cs)
			}, func() error {
				seq := ft.Sequential()
				for i := range seq.Checksums {
					if seq.Checksums[i] != last.Checksums[i] {
						return fmt.Errorf("ft: checksum %d differs", i)
					}
				}
				return nil
			}
	}
	return nil, nil
}

// buildNPBKernel returns runner/verifier for the official NPB benchmark
// classes with their published verification values.
func buildNPBKernel(kernel string, class byte, pool *hybridloop.Pool, opts []hybridloop.ForOption) (func() string, func() error) {
	switch kernel {
	case "cg":
		p, ok := nas.CGClasses[class]
		if !ok {
			return nil, nil
		}
		var last nas.CGResult
		return func() string {
				last = nas.NPBCG(p, pool)
				return fmt.Sprintf("NPB CG class %c: zeta=%.13f", class, last.Zeta)
			}, func() error {
				if p.ZetaRef != 0 && abs(last.Zeta-p.ZetaRef) > 1e-10 {
					return fmt.Errorf("zeta %.13f differs from official %.13f", last.Zeta, p.ZetaRef)
				}
				return nil
			}
	case "ep":
		var m int
		switch class {
		case 'S':
			m = 25
		case 'W':
			m = 26
		default:
			return nil, nil
		}
		ep := nas.EP{M: m, LogBlock: 16}
		var last nas.EPResult
		return func() string {
				last = ep.Parallel(pool, opts...)
				return fmt.Sprintf("NPB EP class %c: sx=%.12e sy=%.12e pairs=%d", class, last.Sx, last.Sy, last.Pairs)
			}, func() error {
				if seq := ep.Sequential(); seq != last {
					return fmt.Errorf("parallel != sequential")
				}
				return nil
			}
	case "mg":
		if class != 'S' {
			return nil, nil
		}
		mg := nas.MG{Log2N: 5, Cycles: 4}
		var last nas.MGResult
		return func() string {
				last = mg.ParallelNPB(pool, opts...)
				return fmt.Sprintf("NPB MG class S: rnm2=%.13e", last.Final())
			}, func() error {
				const ref = 0.5307707005734e-04
				if abs(last.Final()-ref)/ref > 1e-8 {
					return fmt.Errorf("rnm2 %.13e differs from official %.13e", last.Final(), ref)
				}
				return nil
			}
	case "ft":
		if class != 'S' {
			return nil, nil
		}
		ft := nas.FT{N1: 64, N2: 64, N3: 64, Iterations: 6}
		var last nas.NPBFTResult
		return func() string {
				last = nas.NPBFT(ft, pool, opts...)
				c := last.Checksums[len(last.Checksums)-1]
				return fmt.Sprintf("NPB FT class S: final checksum %.12e %.12e", real(c), imag(c))
			}, func() error {
				want := nas.NPBFT(ft, nil)
				for i := range want.Checksums {
					if want.Checksums[i] != last.Checksums[i] {
						return fmt.Errorf("checksum %d differs from sequential", i)
					}
				}
				return nil
			}
	case "is":
		p, ok := nas.NPBISClasses[class]
		if !ok {
			return nil, nil
		}
		var last nas.ISResult
		return func() string {
				last = nas.NPBIS(p, pool, opts...)
				return fmt.Sprintf("NPB IS class %c: %d keys ranked", class, p.N)
			}, func() error {
				return nas.VerifyRanks(last.Keys, last.Ranks)
			}
	}
	return nil, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
