// Command claimviz visualizes the hybrid scheme's claiming machinery for
// small worker counts — the worked examples of the paper's Sections III
// and IV: per-worker claim orders (the XOR bijection), the failure-skip
// walk (i += i & -i), and the index/partition groups of the Lemma 2
// proof. Useful for building intuition and for checking the structures by
// hand.
//
// Usage: claimviz [-r 8] [-scenario "0:0,1:2"]
//
// The scenario flag simulates workers entering at given claim-step times
// ("worker:step" pairs) and prints who claims what.
package main

import (
	"flag"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hybridloop/internal/core"
)

func main() {
	r := flag.Int("r", 8, "number of partitions (power of two)")
	scenario := flag.String("scenario", "", "comma-separated worker:arrival pairs, e.g. 0:0,2:1,5:3")
	flag.Parse()

	if *r < 1 || *r&(*r-1) != 0 {
		fmt.Printf("r = %d is not a power of two\n", *r)
		return
	}

	fmt.Printf("Claim orders for R = %d (worker w visits partition i XOR w):\n\n", *r)
	for w := 0; w < *r; w++ {
		fmt.Printf("  worker %2d: %v\n", w, core.ClaimOrder(w, *r))
	}

	fmt.Printf("\nFailure skips (i += i & -i), from each index until the sequence ends:\n\n")
	for i := 1; i < *r; i++ {
		path := []int{i}
		for j := core.NextIndex(i); j < *r; j = core.NextIndex(j) {
			path = append(path, j)
		}
		fmt.Printf("  from i=%2d: %v -> exit\n", i, path)
	}

	logR := 0
	for 1<<logR < *r {
		logR++
	}
	fmt.Printf("\nIndex groups I(x, n) (Lemma 2 machinery):\n\n")
	for n := 0; n <= logR; n++ {
		fmt.Printf("  level %d:", n)
		for x := 0; x < *r>>n; x++ {
			fmt.Printf(" %v", core.IndexGroup(x, n))
		}
		fmt.Println()
	}

	if *scenario == "" {
		return
	}
	arrivals, err := parseScenario(*scenario, *r)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("\nScenario %s over %d partitions:\n\n", *scenario, *r)
	runScenario(arrivals, *r)
}

type arrival struct{ worker, step int }

func parseScenario(s string, r int) ([]arrival, error) {
	var out []arrival
	for _, pair := range strings.Split(s, ",") {
		parts := strings.SplitN(pair, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad pair %q", pair)
		}
		w, err1 := strconv.Atoi(parts[0])
		t, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || w < 0 || w >= r || t < 0 {
			return nil, fmt.Errorf("bad pair %q", pair)
		}
		out = append(out, arrival{w, t})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].step < out[j].step })
	return out, nil
}

// runScenario steps time forward; at each step every arrived worker makes
// one claim attempt (round-robin in arrival order), printing the outcome.
func runScenario(arrivals []arrival, r int) {
	ps := core.NewPartitionSetR(0, r*100, r)
	claimers := map[int]*core.Claimer{}
	var active []int
	next := 0
	for step := 0; ; step++ {
		for next < len(arrivals) && arrivals[next].step <= step {
			w := arrivals[next].worker
			claimers[w] = core.NewClaimer(ps, w)
			active = append(active, w)
			fmt.Printf("  t=%2d: worker %d enters the loop\n", step, w)
			next++
		}
		if len(active) == 0 && next >= len(arrivals) {
			break
		}
		var still []int
		for _, w := range active {
			c := claimers[w]
			p, ok := c.Next()
			if ok {
				fmt.Printf("  t=%2d: worker %d claims partition %d (failed so far: %d)\n",
					step, w, p, c.Failed())
			}
			if c.Done() {
				fmt.Printf("  t=%2d: worker %d exits to work stealing (claimed sequence done)\n", step, w)
			} else {
				still = append(still, w)
			}
		}
		active = still
		if next >= len(arrivals) && len(active) == 0 {
			break
		}
	}
	fmt.Printf("\n  all partitions claimed: %v, total failed claims: %d\n",
		ps.AllClaimed(), ps.FailedClaims())
}
