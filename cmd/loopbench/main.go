// Command loopbench regenerates Figure 1 of the paper: work efficiency and
// scalability of the balanced and unbalanced microbenchmarks at the three
// working-set sizes, for all five scheduling strategies, on the simulated
// 32-core four-socket machine.
//
// Usage:
//
//	loopbench [-scale f] [-seeds n] [-outer n] [-iters n]
//	loopbench -strategy auto [-workers n] [-reps n]
//
// -scale shrinks the working sets (use e.g. 0.25 for a quick look).
// -strategy auto skips the simulator and instead runs the real-runtime
// autotuning ablation: per micro-workload, the Auto strategy's converged
// configuration is timed against every fixed strategy.
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridloop/internal/harness"
	"hybridloop/internal/topology"
	"hybridloop/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1.0, "working-set scale factor")
	seeds := flag.Int("seeds", 5, "repetitions per data point (the paper used 5)")
	outer := flag.Int("outer", 8, "sequential outer-loop repetitions")
	iters := flag.Int("iters", 1024, "parallel iterations per loop")
	svgDir := flag.String("svg", "", "also write each panel as an SVG chart into this directory")
	csvDir := flag.String("csv", "", "also write each panel's data points as CSV into this directory")
	strategy := flag.String("strategy", "", "\"auto\": run the real-runtime Auto-vs-fixed ablation instead of the simulated Figure 1")
	workers := flag.Int("workers", 0, "workers for -strategy auto (0 = GOMAXPROCS)")
	reps := flag.Int("reps", 120, "invocations per cell for -strategy auto")
	flag.Parse()

	if *strategy != "" {
		if *strategy != "auto" {
			fmt.Fprintf(os.Stderr, "loopbench: unknown -strategy %q (only \"auto\" is supported; fixed strategies are covered by the default Figure 1 sweep)\n", *strategy)
			os.Exit(2)
		}
		results := harness.AutoAblation{Workers: *workers, Seed: 1, Reps: *reps}.Run()
		harness.RenderAutoResults(os.Stdout, results)
		return
	}

	m := topology.Paper()
	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}

	for _, balanced := range []bool{true, false} {
		for _, size := range workload.PaperSizes(m.Sockets) {
			total := int64(float64(size) * *scale)
			w := workload.Micro(workload.MicroConfig{
				N:              *iters,
				OuterLoops:     *outer,
				TotalBytes:     total,
				Balanced:       balanced,
				ComputePerLine: 2,
			})
			exp := harness.Scalability{
				Machine:   m,
				Workload:  w,
				Seeds:     seedList,
				IncludeFF: true,
			}
			res := exp.Run()
			res.Render(os.Stdout)
			fmt.Println()
			if *svgDir != "" {
				if err := harness.WriteSVG(*svgDir, "fig1_"+w.Name, res.SVGChart().SVG()); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
			}
			if *csvDir != "" {
				if err := harness.WriteCSV(*csvDir, "fig1_"+w.Name, res.CSV()); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
			}
		}
	}
}
