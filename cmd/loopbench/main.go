// Command loopbench regenerates Figure 1 of the paper: work efficiency and
// scalability of the balanced and unbalanced microbenchmarks at the three
// working-set sizes, for all five scheduling strategies, on the simulated
// 32-core four-socket machine.
//
// Usage:
//
//	loopbench [-scale f] [-seeds n] [-outer n] [-iters n]
//
// -scale shrinks the working sets (use e.g. 0.25 for a quick look).
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridloop/internal/harness"
	"hybridloop/internal/topology"
	"hybridloop/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1.0, "working-set scale factor")
	seeds := flag.Int("seeds", 5, "repetitions per data point (the paper used 5)")
	outer := flag.Int("outer", 8, "sequential outer-loop repetitions")
	iters := flag.Int("iters", 1024, "parallel iterations per loop")
	svgDir := flag.String("svg", "", "also write each panel as an SVG chart into this directory")
	csvDir := flag.String("csv", "", "also write each panel's data points as CSV into this directory")
	flag.Parse()

	m := topology.Paper()
	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}

	for _, balanced := range []bool{true, false} {
		for _, size := range workload.PaperSizes(m.Sockets) {
			total := int64(float64(size) * *scale)
			w := workload.Micro(workload.MicroConfig{
				N:              *iters,
				OuterLoops:     *outer,
				TotalBytes:     total,
				Balanced:       balanced,
				ComputePerLine: 2,
			})
			exp := harness.Scalability{
				Machine:   m,
				Workload:  w,
				Seeds:     seedList,
				IncludeFF: true,
			}
			res := exp.Run()
			res.Render(os.Stdout)
			fmt.Println()
			if *svgDir != "" {
				if err := harness.WriteSVG(*svgDir, "fig1_"+w.Name, res.SVGChart().SVG()); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
			}
			if *csvDir != "" {
				if err := harness.WriteCSV(*csvDir, "fig1_"+w.Name, res.CSV()); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
			}
		}
	}
}
