// Command memcounts regenerates Figures 4 and 5 of the paper: the number
// of memory accesses serviced at each level of the hierarchy (L1, L2,
// local L3, local DRAM, remote L3, remote DRAM) for the NAS kernel
// profiles at 32 simulated cores, with the latency-weighted "inferred
// latency" column, plus the per-level latency table of the simulated
// machine.
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridloop/internal/harness"
	"hybridloop/internal/topology"
	"hybridloop/internal/workload"
)

func main() {
	latOnly := flag.Bool("latencies", false, "print only the Figure 5 latency table")
	svgDir := flag.String("svg", "", "also write per-kernel charts as SVGs into this directory")
	flag.Parse()

	m := topology.Paper()
	harness.RenderLatencies(os.Stdout, m)
	if *latOnly {
		return
	}
	fmt.Println()
	res := harness.MemCounts{Machine: m, Workloads: workload.NASProfiles()}.Run()
	res.Render(os.Stdout)
	if *svgDir != "" {
		for i, c := range res.SVGCharts() {
			if err := harness.WriteSVG(*svgDir, fmt.Sprintf("fig4_%s", res.Names[i]), c.SVG()); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
}
