// Command nasbench regenerates Figure 3 of the paper: work efficiency and
// scalability of loop profiles mirroring the five NAS kernels (mg, ep,
// ft, is, cg) on the simulated 32-core four-socket machine.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hybridloop/internal/harness"
	"hybridloop/internal/topology"
	"hybridloop/internal/workload"
)

func main() {
	seeds := flag.Int("seeds", 3, "repetitions per data point (the paper used 10)")
	only := flag.String("only", "", "comma-separated kernel subset (mg,ep,ft,is,cg)")
	svgDir := flag.String("svg", "", "also write each panel as an SVG chart into this directory")
	csvDir := flag.String("csv", "", "also write each panel's data points as CSV into this directory")
	flag.Parse()

	m := topology.Paper()
	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}
	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		if k != "" {
			want[k] = true
		}
	}

	for _, w := range workload.NASProfiles() {
		if len(want) > 0 && !want[w.Name] {
			continue
		}
		res := harness.Scalability{Machine: m, Workload: w, Seeds: seedList, IncludeFF: true}.Run()
		res.Render(os.Stdout)
		fmt.Println()
		if *svgDir != "" {
			if err := harness.WriteSVG(*svgDir, "fig3_"+w.Name, res.SVGChart().SVG()); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		if *csvDir != "" {
			if err := harness.WriteCSV(*csvDir, "fig3_"+w.Name, res.CSV()); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
}
