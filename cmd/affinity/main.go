// Command affinity regenerates Figure 2 of the paper: the percentage of
// loop iterations executed by the same core in consecutive parallel loops
// of the balanced and unbalanced microbenchmarks, on 32 simulated cores,
// at the paper's three working-set sizes.
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridloop/internal/harness"
	"hybridloop/internal/sim"
	"hybridloop/internal/topology"
	"hybridloop/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1.0, "working-set scale factor")
	seeds := flag.Int("seeds", 3, "repetitions per data point")
	outer := flag.Int("outer", 8, "sequential outer-loop repetitions")
	iters := flag.Int("iters", 1024, "parallel iterations per loop")
	svgDir := flag.String("svg", "", "also write the chart as an SVG into this directory")
	flag.Parse()

	m := topology.Paper()
	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}
	var ws []sim.Workload
	for _, balanced := range []bool{true, false} {
		for _, size := range workload.PaperSizes(m.Sockets) {
			ws = append(ws, workload.Micro(workload.MicroConfig{
				N:              *iters,
				OuterLoops:     *outer,
				TotalBytes:     int64(float64(size) * *scale),
				Balanced:       balanced,
				ComputePerLine: 2,
			}))
		}
	}
	res := harness.Affinity{Machine: m, Workloads: ws, Seeds: seedList}.Run()
	res.Render(os.Stdout)
	if *svgDir != "" {
		if err := harness.WriteSVG(*svgDir, "fig2_affinity", res.SVGChart().SVG()); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}
