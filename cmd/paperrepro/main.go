// Command paperrepro regenerates every figure of the paper in one run —
// the end-to-end reproduction driver:
//
//	Figure 1: microbenchmark work efficiency and scalability
//	Figure 2: same-core (affinity) percentages at 32 cores
//	Figure 3: NAS kernel profile scalability
//	Figure 4: memory accesses serviced per hierarchy level + inferred latency
//	Figure 5: the machine's per-level latency table
//
// It also runs the *real* NAS kernels (internal/nas) on the goroutine
// runtime and verifies each one, demonstrating that the library executes
// the paper's workloads for real, not only in simulation.
//
// Use -quick for a reduced-size pass (~seconds); the default sizes match
// the experiment commands' defaults (a few minutes).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"hybridloop"
	"hybridloop/internal/harness"
	"hybridloop/internal/nas"
	"hybridloop/internal/sim"
	"hybridloop/internal/topology"
	"hybridloop/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "reduced problem sizes for a fast pass")
	htmlPath := flag.String("html", "", "also write a self-contained HTML report (tables + SVG figures)")
	flag.Parse()

	report := &harness.Report{Title: "A Hybrid Scheduling Scheme for Parallel Loops — reproduction report"}

	scale, seeds, outer := 1.0, 3, 8
	if *quick {
		scale, seeds, outer = 0.25, 1, 4
	}
	m := topology.Paper()
	seedList := make([]uint64, seeds)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}

	banner("Figure 1: microbenchmark work efficiency and scalability")
	var micro []sim.Workload
	for _, balanced := range []bool{true, false} {
		for _, size := range workload.PaperSizes(m.Sockets) {
			micro = append(micro, workload.Micro(workload.MicroConfig{
				N:              1024,
				OuterLoops:     outer,
				TotalBytes:     int64(float64(size) * scale),
				Balanced:       balanced,
				ComputePerLine: 2,
			}))
		}
	}
	for _, w := range micro {
		res := harness.Scalability{Machine: m, Workload: w, Seeds: seedList, IncludeFF: true}.Run()
		var buf bytes.Buffer
		res.Render(io.MultiWriter(os.Stdout, &buf))
		fmt.Println()
		report.AddText("Figure 1 — "+w.Name, buf.String())
		report.AddSVG("", res.SVGChart().SVG())
	}

	banner("Figure 2: same-core iteration percentage (affinity), 32 cores")
	affRes := harness.Affinity{Machine: m, Workloads: micro, Seeds: seedList}.Run()
	{
		var buf bytes.Buffer
		affRes.Render(io.MultiWriter(os.Stdout, &buf))
		report.AddText("Figure 2 — affinity", buf.String())
		report.AddSVG("", affRes.SVGChart().SVG())
	}
	fmt.Println()

	banner("Figure 3: NAS kernel profiles, work efficiency and scalability")
	profiles := workload.NASProfiles()
	if *quick {
		profiles = []sim.Workload{
			workload.MGProfile(5, 3),
			workload.EPProfile(1024, 1024),
			workload.FTProfile(32, 32, 32, 3),
			workload.ISProfile(1<<21, 3),
			workload.CGProfile(1<<16, 6, 2, 8, 271828),
		}
	}
	for _, w := range profiles {
		res := harness.Scalability{Machine: m, Workload: w, Seeds: seedList, IncludeFF: true}.Run()
		var buf bytes.Buffer
		res.Render(io.MultiWriter(os.Stdout, &buf))
		fmt.Println()
		report.AddText("Figure 3 — "+w.Name, buf.String())
		report.AddSVG("", res.SVGChart().SVG())
	}

	banner("Figure 4: memory accesses per hierarchy level, 32 cores")
	memRes := harness.MemCounts{Machine: m, Workloads: profiles}.Run()
	{
		var buf bytes.Buffer
		memRes.Render(io.MultiWriter(os.Stdout, &buf))
		report.AddText("Figure 4 — memory hierarchy counts", buf.String())
		for _, c := range memRes.SVGCharts() {
			report.AddSVG("", c.SVG())
		}
	}
	fmt.Println()

	banner("Figure 5: per-level access latency (simulator cost model)")
	{
		var buf bytes.Buffer
		harness.RenderLatencies(io.MultiWriter(os.Stdout, &buf), m)
		report.AddText("Figure 5 — access latencies", buf.String())
	}
	fmt.Println()

	banner("Real NAS kernels on the goroutine work-stealing runtime")
	{
		var buf bytes.Buffer
		runRealKernels(*quick, io.MultiWriter(os.Stdout, &buf))
		report.AddText("Real NAS kernels (goroutine runtime)", buf.String())
	}

	if *htmlPath != "" {
		if err := report.WriteFile(*htmlPath); err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote HTML report to %s (%d sections)\n", *htmlPath, report.Sections())
	}
}

func banner(s string) {
	fmt.Printf("==== %s ====\n\n", s)
}

// runRealKernels executes and verifies the actual kernel implementations
// under the hybrid strategy.
func runRealKernels(quick bool, out io.Writer) {
	pool := hybridloop.NewPool(runtime.GOMAXPROCS(0))
	defer pool.Close()

	check := func(name string, ok bool, detail string) {
		status := "ok"
		if !ok {
			status = "FAILED"
		}
		fmt.Fprintf(out, "  %-4s %-6s %s\n", name, status, detail)
	}

	t0 := time.Now()
	epSize := 20
	if quick {
		epSize = 16
	}
	ep := nas.EP{M: epSize, LogBlock: 10}
	epPar := ep.Parallel(pool)
	epSeq := ep.Sequential()
	check("ep", epPar == epSeq, fmt.Sprintf("2^%d pairs, %d accepted, sums match sequential exactly (%.2fs)",
		epSize-1, epPar.Pairs, time.Since(t0).Seconds()))

	t0 = time.Now()
	isN := 1 << 20
	if quick {
		isN = 1 << 17
	}
	is := nas.IS{N: isN, MaxKey: 1 << 11}
	isRes := is.Parallel(pool)
	err := nas.VerifyRanks(isRes.Keys, isRes.Ranks)
	check("is", err == nil, fmt.Sprintf("%d keys ranked and verified sorted (%.2fs)", isN, time.Since(t0).Seconds()))

	t0 = time.Now()
	cgN := 20000
	if quick {
		cgN = 4000
	}
	cg := nas.CG{N: cgN, NIters: 3}
	cgRes := cg.Parallel(pool)
	check("cg", cgRes.Residual < 1e-4, fmt.Sprintf("n=%d, final residual %.2e, zeta %.6f (%.2fs)",
		cgN, cgRes.Residual, cgRes.Zeta, time.Since(t0).Seconds()))

	t0 = time.Now()
	mgSize := 5
	if quick {
		mgSize = 4
	}
	mg := nas.MG{Log2N: mgSize, Cycles: 4}
	mgRes := mg.Parallel(pool)
	check("mg", mgRes.Final() < 0.2*mgRes.InitialResidual,
		fmt.Sprintf("grid %d^3, residual %.3e -> %.3e over %d cycles (%.2fs)",
			1<<mgSize, mgRes.InitialResidual, mgRes.Final(), mg.Cycles, time.Since(t0).Seconds()))

	t0 = time.Now()
	ftDim := 64
	if quick {
		ftDim = 16
	}
	ft := nas.FT{N1: ftDim, N2: ftDim, N3: ftDim, Iterations: 3}
	ftRes := ft.Parallel(pool)
	rt := ft.RoundTripError()
	check("ft", rt < 1e-10 && len(ftRes.Checksums) == 3,
		fmt.Sprintf("%d^3, FFT round-trip error %.2e, checksum %v (%.2fs)",
			ftDim, rt, ftRes.Checksums[len(ftRes.Checksums)-1], time.Since(t0).Seconds()))
}
