package hybridloop

import (
	"context"
	"time"

	"hybridloop/internal/loop"
	"hybridloop/internal/sched"
)

// ErrLoopCancelled is returned by ForCtx when the loop was cancelled
// without a more specific cause. ForCtx normally returns ctx.Err()
// (context.Canceled or context.DeadlineExceeded); this sentinel only
// surfaces if the token was tripped through some other path.
var ErrLoopCancelled = sched.ErrCancelled

// ForErr executes body over [begin, end) in parallel like For, but the
// body may fail: the first non-nil error cancels the loop and is
// returned. Cancellation is cooperative with per-chunk granularity —
// every other worker finishes at most the chunk it is currently
// executing, then stops; unclaimed partitions, published steal-half
// ranges, and unconsumed shared-counter iterations are abandoned without
// running their bodies. On the error-free path the loop behaves exactly
// like For and returns nil; iterations are then executed exactly once.
// After an error, which iterations ran is unspecified beyond "every
// executed iteration ran exactly once".
//
// A panicking body is not converted to an error: the panic cancels the
// remaining workers the same way and then propagates to the caller as a
// *sched.TaskPanicError, exactly as it does from For.
func (p *Pool) ForErr(begin, end int, body func(lo, hi int) error, opts ...ForOption) error {
	return p.forErr(begin, end, body, opts, 2)
}

// ForEachErr is ForErr with a per-index body. The erroring worker stops
// mid-chunk at the failing index; other workers stop at their next chunk
// boundary.
func (p *Pool) ForEachErr(begin, end int, body func(i int) error, opts ...ForOption) error {
	return p.forErr(begin, end, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := body(i); err != nil {
				return err
			}
		}
		return nil
	}, opts, 2)
}

// forErr is the shared lowering of ForErr/ForEachErr. skip is the frame
// distance to the user's call site for Auto-loop attribution. Under
// admission control a rejected submission degrades to a serial inline
// run, exactly as For does: body is called once with the whole range on
// the calling goroutine and its error (if any) returned.
func (p *Pool) forErr(begin, end int, body func(lo, hi int) error, opts []ForOption, skip int) error {
	if end <= begin {
		return nil
	}
	if release, inline := p.admitOrInline(); inline {
		if p.mreg != nil {
			defer p.observeInline(time.Now())
		}
		return body(begin, end)
	} else if release != nil {
		defer release()
	}
	c := new(sched.Canceller)
	o := p.options(opts, skip)
	o.Cancel = c
	if p.mreg != nil {
		defer p.observeLoop(&o, time.Now())
	}
	s := p.s
	loop.ForW(s, begin, end, func(_ *Worker, lo, hi int) {
		if err := body(lo, hi); err != nil && c.Cancel(err) {
			// First error: wake every parked worker so the drain of the
			// dying loop (claim releases, slot poisoning) is not left to
			// the one worker blocked in the join.
			s.WakeAll()
		}
	}, o)
	return c.Err()
}

// ForCtx executes body over [begin, end) in parallel like For, stopping
// early if ctx is cancelled or its deadline passes. It returns nil when
// the loop ran to completion and ctx.Err() when it was cancelled; as with
// ForErr, cancellation is cooperative with per-chunk granularity, so the
// bound on extra work after the deadline is one chunk per worker. A ctx
// that can never be cancelled (context.Background()) adds no overhead
// beyond plain For.
//
// The body itself is not passed the context: chunk sizes are chosen small
// enough that checking between chunks is the intended granularity. Bodies
// with very long single iterations should consult ctx themselves.
func (p *Pool) ForCtx(ctx context.Context, begin, end int, body Body, opts ...ForOption) error {
	if end <= begin {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// ForCtx is the blocking-with-ctx admission variant: a submission the
	// gate cannot admit immediately waits for an in-flight slot (and a
	// rate token) under ctx, so callers get bounded queueing with a
	// deadline instead of an inline fallback — the natural shape for an
	// HTTP handler holding a request context.
	if p.gate != nil {
		if err := p.gate.Acquire(ctx); err != nil {
			return err
		}
		defer p.gate.Release()
	}
	if ctx.Done() == nil {
		p.forUngated(begin, end, body, opts)
		return nil
	}
	c := new(sched.Canceller)
	o := p.options(opts, 1)
	o.Cancel = c
	if p.mreg != nil {
		defer p.observeLoop(&o, time.Now())
	}
	s := p.s
	stop := context.AfterFunc(ctx, func() {
		if c.Cancel(ctx.Err()) {
			s.WakeAll()
		}
	})
	defer stop()
	loop.For(s, begin, end, body, o)
	return c.Err()
}
