package hybridloop_test

// Multi-tenant serving tests: many independent loops submitted to one
// pool concurrently (the regime examples/server runs in), plus the
// admission-control behaviors of the public API — TryFor's
// ErrBackpressure, For's inline degradation, and ForCtx's bounded
// blocking admission.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hybridloop"
)

// TestConcurrentIndependentLoops submits For, ForErr, and Reduce loops
// from many goroutines at once and verifies every iteration of every
// loop ran exactly once — the loop registry, demand accounting, and
// cross-loop steal protocol must not leak iterations between tenants.
func TestConcurrentIndependentLoops(t *testing.T) {
	before := runtime.NumGoroutine()
	p := hybridloop.NewPool(4)

	const (
		tenants = 12
		n       = 5000
	)
	hits := make([][]int32, tenants)
	for i := range hits {
		hits[i] = make([]int32, n)
	}
	var wg sync.WaitGroup
	for g := 0; g < tenants; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := hits[g]
			switch g % 3 {
			case 0:
				p.For(0, n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&h[i], 1)
					}
				})
			case 1:
				if err := p.ForErr(0, n, func(lo, hi int) error {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&h[i], 1)
					}
					return nil
				}); err != nil {
					t.Errorf("tenant %d: ForErr = %v", g, err)
				}
			case 2:
				got := hybridloop.Reduce(p, 0, n, 256, 0,
					func(lo, hi int) int {
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&h[i], 1)
						}
						return hi - lo
					},
					func(a, b int) int { return a + b })
				if got != n {
					t.Errorf("tenant %d: Reduce = %d, want %d", g, got, n)
				}
			}
		}(g)
	}
	wg.Wait()

	for g := range hits {
		for i, c := range hits[g] {
			if c != 1 {
				t.Fatalf("tenant %d iteration %d ran %d times, want exactly once", g, i, c)
			}
		}
	}

	p.Close()
	// No goroutine leaks: workers exit on Close and no per-loop helpers
	// linger. Allow slack for runtime background goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// autoSiteA/autoSiteB give the tuner two distinct call sites. Each runs
// its loop with a very different body cost so cross-contamination of the
// learned profiles would be visible in the site table.
func autoSiteA(p *hybridloop.Pool, n int, sink *int64) {
	p.For(0, n, func(lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		atomic.AddInt64(sink, s)
	}, hybridloop.WithAuto())
}

func autoSiteB(p *hybridloop.Pool, n int, sink *int64) {
	p.For(0, n, func(lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i) * int64(i%7)
		}
		atomic.AddInt64(sink, s)
	}, hybridloop.WithAuto())
}

// TestTunerSitesNotCrossContaminated runs two Auto call sites from
// concurrent goroutines and checks the tuner kept them as separate
// sites with sane trip counts — concurrent tenants must not blend
// their profiles into one site or lose trips.
func TestTunerSitesNotCrossContaminated(t *testing.T) {
	p := hybridloop.NewPool(4)
	defer p.Close()

	const trips = 20
	var sink int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < trips; i++ {
			autoSiteA(p, 4096, &sink)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < trips; i++ {
			autoSiteB(p, 4096, &sink)
		}
	}()
	wg.Wait()

	// Sites are keyed by file:line of the For call, so the two helpers
	// must appear as two distinct entries, each having observed exactly
	// its own trips-many decisions — no blending, no lost trips.
	var mine []string
	sites := p.TunerSites()
	for _, s := range sites {
		if !containsStr(s.Site, "multitenant_test.go") {
			continue
		}
		mine = append(mine, s.Site)
		if s.Decisions != trips {
			t.Errorf("site %s saw %d decisions, want %d", s.Site, s.Decisions, trips)
		}
	}
	if len(mine) != 2 || mine[0] == mine[1] {
		t.Fatalf("tuner sites for the two Auto helpers = %v, want 2 distinct entries", mine)
	}
}

// occupyPool fills every in-flight slot of p's gate with loops whose
// bodies block on the returned release function. It waits until the gate
// reports all slots held before returning.
func occupyPool(t *testing.T, p *hybridloop.Pool, slots int) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.For(0, 1, func(lo, hi int) { <-ch })
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s, ok := p.AdmissionStats(); ok && s.InFlight >= slots {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("occupying loops never acquired the gate")
		}
		time.Sleep(time.Millisecond)
	}
	return func() { close(ch); wg.Wait() }
}

func TestTryForBackpressure(t *testing.T) {
	p := hybridloop.NewPool(2, hybridloop.WithMaxInFlightLoops(1))
	defer p.Close()

	release := occupyPool(t, p, 1)

	var ran atomic.Int64
	err := p.TryFor(0, 100, func(lo, hi int) { ran.Add(int64(hi - lo)) })
	if !errors.Is(err, hybridloop.ErrBackpressure) {
		t.Fatalf("TryFor under full gate = %v, want ErrBackpressure", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("rejected TryFor executed %d iterations, want 0", ran.Load())
	}

	release()
	if err := p.TryFor(0, 100, func(lo, hi int) { ran.Add(int64(hi - lo)) }); err != nil {
		t.Fatalf("TryFor after release = %v, want nil", err)
	}
	if ran.Load() != 100 {
		t.Fatalf("admitted TryFor executed %d iterations, want 100", ran.Load())
	}
	if s, _ := p.AdmissionStats(); s.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", s.Rejected)
	}
}

// TestForDegradesInlineUnderBackpressure: a blocking For/ForErr that the
// gate rejects must still complete — serially, on the calling goroutine —
// with every iteration run exactly once.
func TestForDegradesInlineUnderBackpressure(t *testing.T) {
	p := hybridloop.NewPool(2, hybridloop.WithMaxInFlightLoops(1))
	defer p.Close()

	release := occupyPool(t, p, 1)
	defer release()

	const n = 1000
	hits := make([]int32, n)
	p.For(0, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, c := range hits {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times under inline degradation", i, c)
		}
	}

	wantErr := errors.New("boom")
	if err := p.ForErr(0, 10, func(lo, hi int) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("inline ForErr = %v, want %v", err, wantErr)
	}
	if s, _ := p.AdmissionStats(); s.Inline < 2 {
		t.Fatalf("Inline = %d, want >= 2", s.Inline)
	}
}

// TestForCtxAdmissionTimeout: ForCtx queues for admission under its
// context; if no slot frees before the deadline it returns ctx's error
// without executing any iteration.
func TestForCtxAdmissionTimeout(t *testing.T) {
	p := hybridloop.NewPool(2, hybridloop.WithMaxInFlightLoops(1))
	defer p.Close()

	release := occupyPool(t, p, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	var ran atomic.Int64
	err := p.ForCtx(ctx, 0, 100, func(lo, hi int) { ran.Add(1) })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ForCtx under full gate = %v, want DeadlineExceeded", err)
	}
	if ran.Load() != 0 {
		t.Fatal("timed-out ForCtx executed iterations")
	}

	// And the waiting variant: a slot freeing admits the queued loop.
	done := make(chan error, 1)
	go func() {
		done <- p.ForCtx(context.Background(), 0, 100, func(lo, hi int) { ran.Add(int64(hi - lo)) })
	}()
	time.Sleep(10 * time.Millisecond)
	release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued ForCtx = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued ForCtx never admitted after slot freed")
	}
	if ran.Load() != 100 {
		t.Fatalf("queued ForCtx executed %d iterations, want 100", ran.Load())
	}
}

// TestSmallLoopLatencyUnderGiantLoop is the behavioral fairness check
// behind examples/server: with a giant low-priority loop saturating the
// pool, a small high-priority loop must still complete promptly instead
// of waiting for the giant loop's partitions to drain. The bound is
// deliberately generous (CI machines); pre-fix the small loop waited for
// a whole giant-loop partition (~hundreds of ms here).
func TestSmallLoopLatencyUnderGiantLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	p := hybridloop.NewPool(4)
	defer p.Close()

	stop := make(chan struct{})
	giantDone := make(chan struct{})
	go func() {
		defer close(giantDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// ~1s of serial work per pass, cut into many chunks so
			// inject-yield points occur at chunk boundaries.
			p.For(0, 1<<22, func(lo, hi int) {
				s := 0.0
				for i := lo; i < hi; i++ {
					s += float64(i % 97)
				}
				if s < 0 {
					panic("unreachable")
				}
			}, hybridloop.WithPriority(1))
		}
	}()

	// Wait for the giant loop to be running before measuring.
	time.Sleep(50 * time.Millisecond)

	var worst time.Duration
	for r := 0; r < 20; r++ {
		start := time.Now()
		p.For(0, 256, func(lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			_ = s
		}, hybridloop.WithPriority(8))
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	close(stop)
	<-giantDone

	// The small loop is microseconds of work; 250ms of budget absorbs CI
	// noise while still catching "waited for a giant partition to drain".
	if worst > 250*time.Millisecond {
		t.Fatalf("small-loop worst latency %v beside giant loop, want < 250ms", worst)
	}
}

// TestCrossLoopCancelStress pins the Abandon/StealHalf interleaving
// under cross-loop cancellation (run under -race and in the stress job):
// many concurrent ForErr loops, some of which fail mid-flight while
// workers from dying loops steal into live ones. Iterations of loops
// that complete must run exactly once; errors must propagate; nothing
// may deadlock or trip the race detector.
func TestCrossLoopCancelStress(t *testing.T) {
	p := hybridloop.NewPool(4)
	defer p.Close()

	errBoom := errors.New("boom")
	const (
		rounds  = 30
		tenants = 8
		n       = 20000
	)
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for g := 0; g < tenants; g++ {
			wg.Add(1)
			go func(g, r int) {
				defer wg.Done()
				if g%2 == 0 {
					// Failing tenant: cancel somewhere mid-range.
					trip := (r*1021 + g*797) % n
					err := p.ForErr(0, n, func(lo, hi int) error {
						if lo <= trip && trip < hi {
							return errBoom
						}
						return nil
					})
					if err != nil && !errors.Is(err, errBoom) {
						t.Errorf("ForErr = %v, want boom or nil", err)
					}
				} else {
					// Surviving tenant: must see exactly-once execution.
					var cnt atomic.Int64
					if err := p.ForErr(0, n, func(lo, hi int) error {
						cnt.Add(int64(hi - lo))
						return nil
					}); err != nil {
						t.Errorf("clean ForErr = %v", err)
					} else if cnt.Load() != n {
						t.Errorf("clean ForErr ran %d iterations, want %d", cnt.Load(), n)
					}
				}
			}(g, r)
		}
		wg.Wait()
	}
}
