package hybridloop_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	hybridloop "hybridloop"
	"hybridloop/internal/sched"
)

var errBody = errors.New("body failed")

var errStrategies = []hybridloop.Strategy{
	hybridloop.Hybrid, hybridloop.DynamicStealing, hybridloop.Static,
	hybridloop.DynamicSharing, hybridloop.Guided,
}

// TestForErrNoError: the error-free path behaves exactly like For —
// every iteration exactly once, nil returned — for every strategy.
func TestForErrNoError(t *testing.T) {
	p := hybridloop.NewPool(4)
	defer p.Close()
	const n = 1 << 14
	for _, s := range errStrategies {
		counts := make([]atomic.Int32, n)
		err := p.ForErr(0, n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				counts[i].Add(1)
			}
			return nil
		}, hybridloop.WithStrategy(s), hybridloop.WithChunk(32))
		if err != nil {
			t.Fatalf("%v: ForErr = %v on the error-free path", s, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("%v: iteration %d executed %d times", s, i, c)
			}
		}
	}
}

// TestForErrFirstErrorWins: a failing chunk cancels the loop and its
// error is returned; no iteration runs more than once; the pool stays
// usable.
func TestForErrFirstErrorWins(t *testing.T) {
	p := hybridloop.NewPool(4)
	defer p.Close()
	const n = 1 << 15
	for _, s := range errStrategies {
		counts := make([]atomic.Int32, n)
		err := p.ForErr(0, n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				counts[i].Add(1)
			}
			if lo <= n/4 && n/4 < hi {
				return errBody
			}
			return nil
		}, hybridloop.WithStrategy(s), hybridloop.WithChunk(16))
		if !errors.Is(err, errBody) {
			t.Fatalf("%v: ForErr = %v, want errBody", s, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c > 1 {
				t.Fatalf("%v: iteration %d executed %d times", s, i, c)
			}
		}
		// Follow-up loop must be untouched by the cancellation.
		var ran atomic.Int64
		if err := p.ForErr(0, 1000, func(lo, hi int) error {
			ran.Add(int64(hi - lo))
			return nil
		}, hybridloop.WithStrategy(s)); err != nil || ran.Load() != 1000 {
			t.Fatalf("%v: pool degraded after error (err=%v, ran=%d)", s, err, ran.Load())
		}
	}
}

// TestForErrDistinctErrors: when several workers fail concurrently,
// exactly one of their errors is returned (first to trip the token).
func TestForErrDistinctErrors(t *testing.T) {
	p := hybridloop.NewPool(4)
	defer p.Close()
	errA, errB := errors.New("a"), errors.New("b")
	err := p.ForErr(0, 1<<14, func(lo, hi int) error {
		if lo < 1<<13 {
			return errA
		}
		return errB
	}, hybridloop.WithChunk(16))
	if !errors.Is(err, errA) && !errors.Is(err, errB) {
		t.Fatalf("ForErr = %v, want one of the injected errors", err)
	}
}

// TestForErrAuto: the error path composes with the autotuner — a
// cancelled invocation is discarded, not learned from, and subsequent
// tuned invocations still work.
func TestForErrAuto(t *testing.T) {
	p := hybridloop.NewPool(4)
	defer p.Close()
	for round := 0; round < 30; round++ {
		fail := round%5 == 0
		err := p.ForErr(0, 4096, func(lo, hi int) error {
			if fail && lo == 0 {
				return errBody
			}
			return nil
		}, hybridloop.WithAuto())
		if fail && !errors.Is(err, errBody) {
			t.Fatalf("round %d: err = %v, want errBody", round, err)
		}
		if !fail && err != nil {
			t.Fatalf("round %d: err = %v on clean round", round, err)
		}
	}
	sites := p.TunerSites()
	if len(sites) != 1 {
		t.Fatalf("expected one tuned site, got %d", len(sites))
	}
	if sites[0].Discards == 0 {
		t.Fatal("erroring rounds were not discarded by the tuner")
	}
}

// TestForEachErrStopsMidChunk: the erroring worker stops at the failing
// index — later indexes of the same chunk never run.
func TestForEachErrStopsMidChunk(t *testing.T) {
	p := hybridloop.NewPool(1) // single worker: deterministic chunk order
	defer p.Close()
	const n, failAt = 1 << 10, 100
	counts := make([]atomic.Int32, n)
	err := p.ForEachErr(0, n, func(i int) error {
		counts[i].Add(1)
		if i == failAt {
			return errBody
		}
		return nil
	}, hybridloop.WithChunk(64), hybridloop.WithStrategy(hybridloop.DynamicSharing))
	if !errors.Is(err, errBody) {
		t.Fatalf("ForEachErr = %v, want errBody", err)
	}
	if counts[failAt].Load() != 1 {
		t.Fatal("failing index did not run")
	}
	if counts[failAt+1].Load() != 0 {
		t.Fatal("index after the failure ran in the same chunk")
	}
}

// TestForCtxCompletes: an uncancelled context behaves like For.
func TestForCtxCompletes(t *testing.T) {
	p := hybridloop.NewPool(4)
	defer p.Close()
	var ran atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.ForCtx(ctx, 0, 10000, func(lo, hi int) {
		ran.Add(int64(hi - lo))
	}); err != nil {
		t.Fatalf("ForCtx = %v on live context", err)
	}
	if ran.Load() != 10000 {
		t.Fatalf("ran %d of 10000 iterations", ran.Load())
	}
}

// TestForCtxBackgroundFastPath: a never-cancellable context takes the
// plain For path and returns nil.
func TestForCtxBackgroundFastPath(t *testing.T) {
	p := hybridloop.NewPool(2)
	defer p.Close()
	var ran atomic.Int64
	if err := p.ForCtx(context.Background(), 0, 1000, func(lo, hi int) {
		ran.Add(int64(hi - lo))
	}); err != nil || ran.Load() != 1000 {
		t.Fatalf("ForCtx(Background) err=%v ran=%d", err, ran.Load())
	}
}

// TestForCtxPreCancelled: an already-expired context runs nothing and
// returns its error.
func TestForCtxPreCancelled(t *testing.T) {
	p := hybridloop.NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := p.ForCtx(ctx, 0, 10000, func(lo, hi int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForCtx = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d chunks ran under a pre-cancelled context", ran.Load())
	}
}

// TestForCtxCancelMidLoop: cancelling the context mid-loop stops the
// workers early and returns context.Canceled.
func TestForCtxCancelMidLoop(t *testing.T) {
	p := hybridloop.NewPool(4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 1 << 20
	var ran atomic.Int64
	err := p.ForCtx(ctx, 0, n, func(lo, hi int) {
		if ran.Add(int64(hi-lo)) >= 1<<12 {
			cancel()
			// Keep post-cancel chunks slow so the AfterFunc goroutine
			// trips the token while the loop is still running; an empty
			// body could otherwise finish all 1M iterations first.
			time.Sleep(100 * time.Microsecond)
		}
	}, hybridloop.WithChunk(64))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForCtx = %v, want context.Canceled", err)
	}
	if ran.Load() >= n/2 {
		t.Fatalf("%d of %d iterations ran after an early cancel", ran.Load(), n)
	}
}

// TestForCtxDeadline: a deadline expiring mid-loop surfaces as
// DeadlineExceeded with the tail of the iteration space abandoned.
func TestForCtxDeadline(t *testing.T) {
	p := hybridloop.NewPool(4)
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	var ran atomic.Int64
	err := p.ForCtx(ctx, 0, 1<<20, func(lo, hi int) {
		ran.Add(int64(hi - lo))
		time.Sleep(100 * time.Microsecond) // slow body so the deadline lands mid-loop
	}, hybridloop.WithChunk(64))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ForCtx = %v, want context.DeadlineExceeded", err)
	}
	if ran.Load() >= 1<<20 {
		t.Fatal("every iteration ran despite the deadline")
	}
}

// recoverPanic runs fn and returns the recovered value.
func recoverPanic(fn func()) (r any) {
	defer func() { r = recover() }()
	fn()
	return nil
}

// checkTaskPanic asserts r is a *sched.TaskPanicError carrying the
// injected payload and a captured body stack.
func checkTaskPanic(t *testing.T, what string, r any) {
	t.Helper()
	if r == nil {
		t.Fatalf("%s: panic did not propagate", what)
	}
	tpe, ok := r.(*sched.TaskPanicError)
	if !ok {
		t.Fatalf("%s: recovered %T, want *sched.TaskPanicError", what, r)
	}
	if !strings.Contains(tpe.Error(), "injected:"+what) {
		t.Fatalf("%s: panic value lost: %v", what, tpe.Value)
	}
	if len(tpe.Stack) == 0 || !strings.Contains(string(tpe.Stack), "cancel_test") {
		t.Fatalf("%s: TaskPanicError does not carry the body stack", what)
	}
}

// TestPanicPropagationWrappers is the satellite-3 coverage: a body panic
// inside Reduce, Sum, and For2D surfaces to the caller as a
// *sched.TaskPanicError carrying the body's stack, only one panic wins,
// and the pool remains fully usable afterwards. Run with -race.
func TestPanicPropagationWrappers(t *testing.T) {
	p := hybridloop.NewPool(4)
	defer p.Close()

	checkTaskPanic(t, "reduce", recoverPanic(func() {
		hybridloop.Reduce(p, 0, 1<<14, 64, 0,
			func(lo, hi int) int { panic("injected:reduce") },
			func(a, b int) int { return a + b })
	}))
	checkTaskPanic(t, "sum", recoverPanic(func() {
		hybridloop.Sum(p, 0, 1<<14, func(i int) float64 {
			if i == 7777 {
				panic("injected:sum")
			}
			return 1
		})
	}))
	checkTaskPanic(t, "for2d", recoverPanic(func() {
		p.For2D(0, 256, 0, 256, 16, 16, func(rlo, rhi, clo, chi int) {
			if rlo >= 128 {
				panic("injected:for2d")
			}
		})
	}))

	// After three panics the pool must still schedule perfectly: an
	// exact reduction and an exact 2-D sweep.
	got := hybridloop.Sum(p, 0, 100000, func(i int) float64 { return 1 })
	if got != 100000 {
		t.Fatalf("post-panic Sum = %v, want 100000", got)
	}
	var cells atomic.Int64
	p.For2D(0, 100, 0, 100, 8, 8, func(rlo, rhi, clo, chi int) {
		cells.Add(int64((rhi - rlo) * (chi - clo)))
	})
	if cells.Load() != 100*100 {
		t.Fatalf("post-panic For2D covered %d cells, want 10000", cells.Load())
	}
}

// BenchmarkForErrFine measures the never-erroring ForErr path at the
// acceptance benchmark's shape (64k iterations, chunk 64): the cost of
// cancellation support on a loop that never cancels — one token
// allocation per loop and one atomic load per chunk.
func BenchmarkForErrFine(b *testing.B) {
	p := hybridloop.NewPool(0)
	defer p.Close()
	body := func(lo, hi int) error { return nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.ForErr(0, 1<<16, body, hybridloop.WithChunk(64)); err != nil {
			b.Fatal(err)
		}
	}
}
