// Simulate: drive the discrete-event multicore simulator directly — build
// a custom workload, run it under two strategies on the paper's 32-core
// machine, and inspect time, affinity, steal counts and the memory-
// hierarchy counters. This is the machinery behind cmd/loopbench and
// friends, usable for what-if studies (e.g. changing the topology).
package main

import (
	"flag"
	"fmt"

	"hybridloop/internal/loop"
	"hybridloop/internal/plot"
	"hybridloop/internal/sim"
	"hybridloop/internal/topology"
	"hybridloop/internal/workload"
)

func main() {
	gantt := flag.String("gantt", "", "write per-strategy core timelines (Gantt SVGs) into this directory")
	flag.Parse()
	m := topology.Paper()
	fmt.Printf("machine: %d sockets x %d cores, L3 %d MiB/socket\n\n",
		m.Sockets, m.CoresPerSocket, m.L3Size>>20)

	w := workload.Micro(workload.MicroConfig{
		N:              512,
		OuterLoops:     6,
		TotalBytes:     64 << 20,
		Balanced:       false,
		ComputePerLine: 2,
	})
	ts := sim.RunSequential(m, w)
	fmt.Printf("workload %q: sequential time %.3g cycles\n\n", w.Name, ts)

	for _, s := range []loop.Strategy{loop.Hybrid, loop.Static, loop.DynamicStealing} {
		r := sim.Run(sim.Config{Machine: m, P: 32, Strategy: s, Seed: 1, Timeline: *gantt != ""}, w)
		if *gantt != "" {
			writeGantt(*gantt, s, r)
		}
		fmt.Printf("%-12v T32 = %.3g cycles (scalability vs Ts: %.1fx)\n",
			s, r.Cycles, ts/r.Cycles)
		fmt.Printf("             affinity %.1f%%, %d steals, %d claims (%d failed)\n",
			100*r.Affinity, r.Steals, r.Claims, r.FailedClaims)
		fmt.Printf("             accesses: L1 %.2g | L2 %.2g | L3 %.2g | DRAM local %.2g remote %.2g\n\n",
			float64(r.Counts[topology.L1]), float64(r.Counts[topology.L2]),
			float64(r.Counts[topology.LocalL3]+r.Counts[topology.RemoteL3]),
			float64(r.Counts[topology.LocalDRAM]), float64(r.Counts[topology.RemoteDRAM]))
	}

	// What-if: the same workload on a hypothetical 8-socket machine with
	// slower interconnect — the locality gap widens.
	m2 := m
	m2.Sockets = 8
	m2.TimeLat[topology.RemoteDRAM] *= 1.5
	m2.TimeLat[topology.RemoteL3] *= 1.5
	rHybrid := sim.Run(sim.Config{Machine: m2, P: 64, Strategy: loop.Hybrid, Seed: 1}, w)
	rSteal := sim.Run(sim.Config{Machine: m2, P: 64, Strategy: loop.DynamicStealing, Seed: 1}, w)
	fmt.Printf("what-if (8 sockets, 1.5x remote penalty, P=64): hybrid %.3g vs vanilla %.3g cycles (%.2fx)\n",
		rHybrid.Cycles, rSteal.Cycles, rSteal.Cycles/rHybrid.Cycles)
}

// writeGantt renders the run's per-core busy timeline, coloring chunks by
// the socket their iterations were designated to under static placement
// (so migrated work is visually off-color for its lane).
func writeGantt(dir string, s loop.Strategy, r sim.Result) {
	g := &plot.Gantt{
		Title: fmt.Sprintf("%v — core timeline (P=%d)", s, r.P),
		Rows:  r.P,
		XMax:  r.Cycles,
	}
	for _, seg := range r.Segments {
		homeSocket := int(seg.Lo) * 4 / 512 // 512 iterations over 4 sockets
		g.Spans = append(g.Spans, plot.GanttSpan{
			Row: int(seg.Core), Start: seg.Start, End: seg.End, Color: homeSocket,
		})
	}
	path := fmt.Sprintf("%s/timeline_%v.svg", dir, s)
	if err := g.WriteFile(path); err != nil {
		fmt.Println("gantt:", err)
		return
	}
	fmt.Printf("wrote %s (%d segments)\n", path, len(r.Segments))
}
