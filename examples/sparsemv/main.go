// Sparsemv: an unbalanced workload — repeated sparse matrix-vector
// products where row lengths vary wildly (a power-law-ish distribution),
// so static partitioning suffers while the hybrid scheme load balances
// via its work-stealing fallback without giving up affinity on the rows
// it keeps. This is the "unbalanced iterations" scenario of the paper's
// Section V, as a real program.
package main

import (
	"fmt"
	"time"

	"hybridloop"
)

// lcg is a tiny deterministic generator so the example needs nothing
// beyond the public API and the standard library.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g) >> 11
}
func (g *lcg) intn(n int) int   { return int(g.next() % uint64(n)) }
func (g *lcg) float64() float64 { return float64(g.next()%(1<<52)) / (1 << 52) }

type csr struct {
	n      int
	rowPtr []int32
	col    []int32
	val    []float64
}

// buildMatrix creates a matrix whose last rows are much denser than the
// first (deterministic imbalance, like the unbalanced microbenchmark).
func buildMatrix(n int, seed uint64) *csr {
	g := lcg(seed)
	m := &csr{n: n, rowPtr: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		// Row density ramps from 2 to ~200 nonzeros.
		nnz := 2 + (i*198)/n + g.intn(3)
		for k := 0; k < nnz; k++ {
			m.col = append(m.col, int32(g.intn(n)))
			m.val = append(m.val, g.float64()-0.5)
		}
		m.rowPtr[i+1] = int32(len(m.val))
	}
	return m
}

func (m *csr) multiply(pool *hybridloop.Pool, x, y []float64, opts ...hybridloop.ForOption) {
	pool.For(0, m.n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
				s += m.val[k] * x[m.col[k]]
			}
			y[i] = s
		}
	}, opts...)
}

func main() {
	const n, iters = 100000, 40
	pool := hybridloop.NewPool(0, hybridloop.WithSeed(2))
	defer pool.Close()
	m := buildMatrix(n, 99)
	fmt.Printf("sparse matvec: n=%d, nnz=%d (row density ramps 2..200), %d iterations, %d workers\n\n",
		n, len(m.val), iters, pool.Workers())

	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	for _, s := range []hybridloop.Strategy{
		hybridloop.Hybrid, hybridloop.Static, hybridloop.DynamicStealing,
		hybridloop.DynamicSharing, hybridloop.Guided,
	} {
		start := time.Now()
		for it := 0; it < iters; it++ {
			m.multiply(pool, x, y, hybridloop.WithStrategy(s))
		}
		fmt.Printf("%-16v %v\n", s, time.Since(start).Round(time.Millisecond))
	}
}
