// Stencil: an iterative application — 2-D heat diffusion by Jacobi
// sweeps — the workload class the hybrid scheme is designed for. The
// program runs a sequence of parallel loops over the same rows; because
// the hybrid scheme keeps each row on the same worker across sweeps
// (loop affinity), each worker's rows stay hot in its cache. The example
// measures the affinity directly with a recorder and compares strategies.
package main

import (
	"fmt"
	"time"

	"hybridloop"
)

const (
	rows, cols = 512, 2048
	sweeps     = 50
)

func sweep(pool *hybridloop.Pool, src, dst []float64, opts ...hybridloop.ForOption) {
	pool.For(1, rows-1, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			for c := 1; c < cols-1; c++ {
				i := r*cols + c
				dst[i] = 0.25 * (src[i-1] + src[i+1] + src[i-cols] + src[i+cols])
			}
		}
	}, opts...)
}

func run(pool *hybridloop.Pool, strategy hybridloop.Strategy) (time.Duration, float64) {
	grid := make([]float64, rows*cols)
	next := make([]float64, rows*cols)
	// Hot edge as the boundary condition.
	for c := 0; c < cols; c++ {
		grid[c] = 100
		next[c] = 100
	}
	tr := hybridloop.NewAffinityTracker(rows)
	var affSum float64
	start := time.Now()
	for s := 0; s < sweeps; s++ {
		sweep(pool, grid, next,
			hybridloop.WithStrategy(strategy), hybridloop.WithRecorder(tr))
		grid, next = next, grid
		if frac := tr.EndLoop(); s > 0 {
			affSum += frac
		}
	}
	return time.Since(start), affSum / float64(sweeps-1)
}

func main() {
	pool := hybridloop.NewPool(0, hybridloop.WithSeed(1))
	defer pool.Close()
	fmt.Printf("2-D heat diffusion, %dx%d grid, %d Jacobi sweeps, %d workers\n\n",
		rows, cols, sweeps, pool.Workers())
	fmt.Printf("%-16s %-12s %s\n", "strategy", "time", "row affinity across sweeps")
	for _, s := range []hybridloop.Strategy{
		hybridloop.Hybrid, hybridloop.Static, hybridloop.DynamicStealing,
		hybridloop.DynamicSharing, hybridloop.Guided,
	} {
		elapsed, aff := run(pool, s)
		fmt.Printf("%-16v %-12v %.1f%%\n", s, elapsed.Round(time.Millisecond), 100*aff)
	}
}
