// Multi-tenant loop serving: an HTTP service that runs a data-parallel
// computation per request on ONE shared hybridloop pool, beside a giant
// low-priority batch loop — the serving regime the admission gate and
// cross-loop fairness machinery exist for.
//
// Endpoints:
//
//	GET /score?n=N  — parallel scoring over N items via TryFor at
//	                  priority 8; answers 503 when the admission gate
//	                  sheds the request (ErrBackpressure).
//	GET /stats      — JSON: scheduler counters, admission gate counters,
//	                  per-loop fairness attribution, latency digest.
//	GET /metrics    — Prometheus text exposition of the pool's metrics
//	                  plane: per-worker scheduler counters, admission gate
//	                  counters, tuner state, and windowed loop-duration
//	                  histograms labeled by site (score/giant) and
//	                  strategy, with _recent P50/P95/P99 summaries over
//	                  the last minute of windows. Scrape it like any
//	                  Prometheus target.
//
// Run it as a server:
//
//	go run ./examples/server -addr :8080 -maxloops 8 -giant
//
// Or as a self-driving load test (starts the server on a loopback port,
// hammers it with concurrent clients while the giant loop runs, prints a
// latency report, exits non-zero if the service collapsed):
//
//	go run ./examples/server -bench -duration 5s -clients 16 -giant
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hybridloop"
	"hybridloop/internal/latency"
	"hybridloop/internal/metrics"
)

var (
	addr     = flag.String("addr", ":8080", "listen address (server mode)")
	workers  = flag.Int("workers", 0, "pool workers (0 = GOMAXPROCS)")
	maxloops = flag.Int("maxloops", 8, "in-flight loop budget (0 = unlimited)")
	rate     = flag.Float64("rate", 0, "submit rate limit, loops/sec (0 = unlimited)")
	burst    = flag.Int("burst", 32, "submit rate burst capacity")
	giant    = flag.Bool("giant", false, "run a giant priority-1 batch loop in the background")
	sockets  = flag.Int("sockets", 0, "describe the machine as this many sockets (compact worker placement; 0 = flat)")
	bench    = flag.Bool("bench", false, "self-driving load test instead of serving")
	duration = flag.Duration("duration", 5*time.Second, "bench: load duration")
	clients  = flag.Int("clients", 16, "bench: concurrent client goroutines")
	reqN     = flag.Int("n", 1<<14, "bench: items scored per request")
)

// server holds the shared pool and the per-endpoint latency samplers.
type server struct {
	pool       *hybridloop.Pool
	metrics    *hybridloop.MetricsRegistry
	stopRotate func()
	lat        *latency.Sampler
	shed       atomic.Int64 // requests answered 503
	served     atomic.Int64 // requests answered 200
	stopBkg    chan struct{}
	bkgDone    chan struct{}
}

func newServer() *server {
	reg := hybridloop.NewMetricsRegistry()
	opts := []hybridloop.Option{hybridloop.WithMetrics(reg)}
	if *maxloops > 0 {
		opts = append(opts, hybridloop.WithMaxInFlightLoops(*maxloops))
	}
	if *rate > 0 {
		opts = append(opts, hybridloop.WithSubmitRate(*rate, *burst))
	}
	if *sockets > 1 {
		// Topology-aware stealing: spread the workers compactly over the
		// described sockets so thieves prefer socket-local victims. The
		// local/remote split shows up in the steals_distance metric series.
		w := *workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		per := (w + *sockets - 1) / *sockets
		opts = append(opts, hybridloop.WithPlacement(hybridloop.CompactPlacement(*sockets, per)))
	}
	s := &server{
		pool:    hybridloop.NewPool(*workers, opts...),
		metrics: reg,
		// The windowed aggregator: loop-duration histograms keep six
		// 10-second windows of recent history behind the _recent
		// quantile series, merging evicted windows into the cumulative
		// exposition so totals stay monotone.
		stopRotate: reg.RotateEvery(10 * time.Second),
		lat:        latency.NewSampler(0),
		stopBkg:    make(chan struct{}),
		bkgDone:    make(chan struct{}),
	}
	if *giant {
		go s.runGiantLoop()
	} else {
		close(s.bkgDone)
	}
	return s
}

// runGiantLoop is the batch tenant: an endless sequence of large
// priority-1 loops. Under the fairness protocol it soaks up every idle
// worker yet cannot starve the priority-8 request loops.
func (s *server) runGiantLoop() {
	defer close(s.bkgDone)
	sink := 0.0
	for {
		select {
		case <-s.stopBkg:
			return
		default:
		}
		s.pool.For(0, 1<<22, func(lo, hi int) {
			acc := 0.0
			for i := lo; i < hi; i++ {
				acc += math.Sqrt(float64(i%4096) + 1)
			}
			if acc < 0 {
				panic("unreachable")
			}
		}, hybridloop.WithPriority(1), hybridloop.WithLabel("giant"))
		sink++
	}
}

// score is the per-request data-parallel computation: a toy feature
// scoring over n items, reduced to one float64.
func (s *server) score(n int) (float64, error) {
	var mu sync.Mutex
	total := 0.0
	err := s.pool.TryFor(0, n, func(lo, hi int) {
		acc := 0.0
		for i := lo; i < hi; i++ {
			x := float64(i)
			acc += math.Sqrt(x+1) * math.Log1p(x)
		}
		mu.Lock()
		total += acc
		mu.Unlock()
	}, hybridloop.WithPriority(8), hybridloop.WithChunk(1024), hybridloop.WithLabel("score"))
	if err != nil {
		return 0, err
	}
	return total, nil
}

func (s *server) handleScore(w http.ResponseWriter, r *http.Request) {
	n := *reqN
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 || v > 1<<24 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	start := time.Now()
	total, err := s.score(n)
	if errors.Is(err, hybridloop.ErrBackpressure) {
		s.shed.Add(1)
		http.Error(w, "overloaded, retry later", http.StatusServiceUnavailable)
		return
	}
	s.lat.Observe(time.Since(start))
	s.served.Add(1)
	fmt.Fprintf(w, "%.6g\n", total)
}

// statsPayload is the /stats JSON shape: pool counters, admission gate
// counters, per-loop fairness attribution, and the latency digest.
type statsPayload struct {
	Sched      hybridloop.Stats      `json:"sched"`
	Admission  *hybridloop.GateStats `json:"admission,omitempty"`
	LiveLoops  []hybridloop.LoopInfo `json:"live_loops"`
	Served     int64                 `json:"served"`
	Shed       int64                 `json:"shed"`
	LatencyP50 string                `json:"latency_p50"`
	LatencyP99 string                `json:"latency_p99"`
	Goroutines int                   `json:"goroutines"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	sum := s.lat.Summary()
	p := statsPayload{
		Sched:      s.pool.Stats(),
		LiveLoops:  s.pool.LiveLoops(),
		Served:     s.served.Load(),
		Shed:       s.shed.Load(),
		LatencyP50: sum.P50.String(),
		LatencyP99: sum.P99.String(),
		Goroutines: runtime.NumGoroutine(),
	}
	if g, ok := s.pool.AdmissionStats(); ok {
		p.Admission = &g
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(p)
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/score", s.handleScore)
	m.HandleFunc("/stats", s.handleStats)
	m.Handle("/metrics", hybridloop.MetricsHandler(s.metrics))
	return m
}

func (s *server) close() {
	close(s.stopBkg)
	<-s.bkgDone
	s.stopRotate()
	s.pool.Close()
}

func main() {
	flag.Parse()
	if *bench {
		os.Exit(runBench())
	}
	s := newServer()
	defer s.close()
	fmt.Printf("serving on %s  (workers=%d maxloops=%d rate=%g giant=%v)\n",
		*addr, s.pool.Workers(), *maxloops, *rate, *giant)
	if err := http.ListenAndServe(*addr, s.mux()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runBench starts the server on a loopback port and drives it with
// concurrent clients for the configured duration, reporting throughput,
// shed rate, and latency percentiles. Returns the process exit code:
// non-zero when the service collapsed (zero throughput, an unbounded
// P99, or an unbounded goroutine count).
func runBench() int {
	s := newServer()
	defer s.close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	hs := &http.Server{Handler: s.mux()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	fmt.Printf("bench: %d clients × %s against %s (workers=%d maxloops=%d giant=%v, n=%d/request)\n",
		*clients, *duration, base, s.pool.Workers(), *maxloops, *giant, *reqN)

	var (
		ok503, okResp, fails atomic.Int64
		maxGoroutines        atomic.Int64
		wg                   sync.WaitGroup
	)
	clientLat := latency.NewSampler(0)
	stop := time.Now().Add(*duration)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := &http.Client{Timeout: 10 * time.Second}
			url := base + "/score"
			for time.Now().Before(stop) {
				t0 := time.Now()
				resp, err := cl.Get(url)
				if err != nil {
					fails.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					clientLat.Observe(time.Since(t0))
					okResp.Add(1)
				case http.StatusServiceUnavailable:
					ok503.Add(1)
				default:
					fails.Add(1)
				}
				if g := int64(runtime.NumGoroutine()); g > maxGoroutines.Load() {
					maxGoroutines.Store(g)
				}
			}
		}()
	}

	// Scrape /metrics mid-run and again after the load stops: the key
	// series must be present both times and monotone between them.
	time.Sleep(*duration / 2)
	mid, midErr := scrapeMetrics(base)
	wg.Wait()
	end, endErr := scrapeMetrics(base)

	sum := clientLat.Summary()
	total := okResp.Load() + ok503.Load()
	fmt.Printf("done: %d requests (%d ok, %d shed, %d failed), %.0f req/s\n",
		total, okResp.Load(), ok503.Load(), fails.Load(),
		float64(total)/duration.Seconds())
	fmt.Printf("latency (ok responses): %s\n", sum)
	if g, ok := s.pool.AdmissionStats(); ok {
		fmt.Printf("admission: admitted=%d rejected=%d waited=%d inline=%d in-flight=%d\n",
			g.Admitted, g.Rejected, g.Waited, g.Inline, g.InFlight)
	}
	fmt.Printf("loops registered over run: %d; peak goroutines: %d\n",
		s.pool.LoopsRegistered(), maxGoroutines.Load())

	// Collapse criteria. The P99 bound is generous — the point is
	// "bounded beside a giant loop", not a hard SLO: pre-fairness the
	// small loops waited for whole giant-loop partitions to drain.
	exit := 0
	if okResp.Load() == 0 {
		fmt.Println("FAIL: zero successful requests")
		exit = 1
	}
	if sum.P99 > 2*time.Second {
		fmt.Printf("FAIL: P99 %s exceeds 2s — small loops starved\n", sum.P99)
		exit = 1
	}
	// Bounded degradation: goroutines ≈ clients + workers + HTTP
	// plumbing; a leak per request would blow far past this.
	bound := int64(*clients*4 + s.pool.Workers() + 64)
	if maxGoroutines.Load() > bound {
		fmt.Printf("FAIL: peak goroutines %d exceeds bound %d\n", maxGoroutines.Load(), bound)
		exit = 1
	}
	if err := checkMetrics(mid, midErr, end, endErr); err != nil {
		fmt.Printf("FAIL: metrics: %v\n", err)
		exit = 1
	} else {
		rejected := end.Sum("hybridloop_admission_rejected_total")
		loops := end.Sum("hybridloop_loop_duration_seconds_count")
		localSteals, _ := end.Value(`hybridloop_sched_steals_distance_total{distance="local"}`)
		remoteSteals, _ := end.Value(`hybridloop_sched_steals_distance_total{distance="remote"}`)
		fmt.Printf("metrics: scrape ok (%d series), admission rejects %.0f, loop durations observed %.0f, steals local/remote %.0f/%.0f\n",
			len(end.Values), rejected, loops, localSteals, remoteSteals)
	}
	if exit == 0 {
		fmt.Println("PASS")
	}
	return exit
}

// scrapeMetrics fetches and parses the /metrics exposition.
func scrapeMetrics(base string) (*metrics.Scrape, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	return metrics.ParseText(resp.Body)
}

// checkMetrics asserts the bench's key series: the admission reject
// counter and the score loop's duration histogram are present in both
// scrapes and monotone between them, and the per-worker scheduler
// counters exist. Presence holds even at zero — the collectors are
// registered at pool construction, not on first event.
func checkMetrics(mid *metrics.Scrape, midErr error, end *metrics.Scrape, endErr error) error {
	if midErr != nil {
		return fmt.Errorf("mid-run scrape: %w", midErr)
	}
	if endErr != nil {
		return fmt.Errorf("end scrape: %w", endErr)
	}
	keys := []string{
		"hybridloop_admission_rejected_total",
		"hybridloop_admission_admitted_total",
		`hybridloop_loop_duration_seconds_count{site="score",strategy="hybrid"}`,
		`hybridloop_sched_tasks_total{worker="0"}`,
		// Steal-distance attribution: both series exist from construction
		// (a flat pool just never moves the remote one off zero).
		`hybridloop_sched_steals_distance_total{distance="local"}`,
		`hybridloop_sched_steals_distance_total{distance="remote"}`,
	}
	for _, k := range keys {
		m, ok := mid.Value(k)
		if !ok {
			return fmt.Errorf("series %s missing from mid-run scrape", k)
		}
		e, ok := end.Value(k)
		if !ok {
			return fmt.Errorf("series %s missing from end scrape", k)
		}
		if e < m {
			return fmt.Errorf("series %s not monotone: %.0f then %.0f", k, m, e)
		}
	}
	if n := end.Sum("hybridloop_loop_duration_seconds_count"); n == 0 {
		return fmt.Errorf("no loop durations observed across any site")
	}
	return nil
}
