// Quickstart: the smallest useful hybridloop program — parallel map and
// parallel reduction over a slice, plus a look at what the scheduler did.
package main

import (
	"fmt"
	"math"

	"hybridloop"
)

func main() {
	pool := hybridloop.NewPool(0) // one worker per CPU
	defer pool.Close()

	// Parallel map: loops default to the paper's hybrid strategy.
	const n = 1 << 20
	data := make([]float64, n)
	pool.For(0, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = math.Sqrt(float64(i))
		}
	})

	// Parallel reduction: fixed per-chunk partials folded afterwards.
	// (Chunks are disjoint, so no synchronization is needed inside.)
	partials := make([]float64, pool.Workers()*64)
	pool.For(0, n, func(lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += data[i]
		}
		// Each chunk writes a distinct slot: derive it from the range.
		partials[lo*len(partials)/n] += s
	}, hybridloop.WithChunk(n/len(partials)))
	var sum float64
	for _, p := range partials {
		sum += p
	}
	fmt.Printf("sum of sqrt(0..%d) = %.4e (closed form ~ %.4e)\n",
		n-1, sum, 2.0/3.0*math.Pow(n, 1.5))

	// The same loop under a different strategy, for comparison.
	pool.For(0, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = math.Sqrt(data[i])
		}
	}, hybridloop.WithStrategy(hybridloop.DynamicStealing))

	s := pool.Stats()
	fmt.Printf("scheduler: %d tasks, %d steals, %d hybrid-loop entries\n",
		s.Tasks, s.Steals, s.LoopEntries)
}
