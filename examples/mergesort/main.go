// Mergesort: fork-join task parallelism (Spawn/Wait) combined with
// parallel loops — a divide-and-conquer sort whose merge phase is a
// hybrid-scheduled parallel loop. Demonstrates the general task API that
// underlies the loop schedulers, including nesting loops inside tasks via
// the worker handle.
package main

import (
	"fmt"
	"sort"
	"time"

	"hybridloop"
)

const (
	sortCutoff  = 1 << 13 // below this, sort.Slice sequentially
	mergeCutoff = 1 << 12 // below this, merge sequentially
)

// parSort sorts src into dst (both len n), using buf as scratch.
func parSort(w *hybridloop.Worker, src, dst []float64) {
	n := len(src)
	if n <= sortCutoff {
		copy(dst, src)
		sort.Float64s(dst)
		return
	}
	mid := n / 2
	var g hybridloop.Group
	// Sort both halves in place of src (using dst halves as scratch via
	// recursion parity: sort into src halves, then merge into dst).
	w.Spawn(&g, func(cw *hybridloop.Worker) {
		parSort(cw, src[:mid], dst[:mid])
		copy(src[:mid], dst[:mid])
	})
	parSort(w, src[mid:], dst[mid:])
	copy(src[mid:], dst[mid:])
	w.Wait(&g)
	parMerge(w, src[:mid], src[mid:], dst)
}

// parMerge merges sorted a and b into out, in parallel: a is cut into
// equal pieces, each piece's matching range of b is found by binary
// search, and the piece pairs merge independently — output offsets follow
// from the two range starts. Elements of b equal to a split value all go
// to the right piece (lower-bound search), which keeps pieces disjoint
// and the concatenation globally sorted.
func parMerge(w *hybridloop.Worker, a, b, out []float64) {
	n := len(a) + len(b)
	if n <= mergeCutoff {
		seqMerge(a, b, out)
		return
	}
	const pieces = 16
	// Precompute the split points sequentially (16 binary searches).
	aCut := make([]int, pieces+1)
	bCut := make([]int, pieces+1)
	aCut[pieces] = len(a)
	bCut[pieces] = len(b)
	for p := 1; p < pieces; p++ {
		aCut[p] = p * len(a) / pieces
		bCut[p] = sort.SearchFloat64s(b, a[aCut[p]])
	}
	hybridloop.ForWorkerNested(w, 0, pieces, func(cw *hybridloop.Worker, plo, phi int) {
		for p := plo; p < phi; p++ {
			oLo := aCut[p] + bCut[p]
			oHi := aCut[p+1] + bCut[p+1]
			seqMerge(a[aCut[p]:aCut[p+1]], b[bCut[p]:bCut[p+1]], out[oLo:oHi])
		}
	}, hybridloop.WithChunk(1))
}

func seqMerge(a, b, out []float64) {
	i, j := 0, 0
	for k := range out {
		if j >= len(b) || (i < len(a) && a[i] <= b[j]) {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
	}
}

func main() {
	pool := hybridloop.NewPool(0, hybridloop.WithSeed(7))
	defer pool.Close()

	const n = 1 << 21
	data := make([]float64, n)
	out := make([]float64, n)
	state := uint64(42)
	for i := range data {
		state = state*6364136223846793005 + 1442695040888963407
		data[i] = float64(state>>11) / (1 << 53)
	}

	start := time.Now()
	pool.Run(func(w *hybridloop.Worker) { parSort(w, data, out) })
	elapsed := time.Since(start)

	sorted := sort.Float64sAreSorted(out)
	fmt.Printf("parallel mergesort of %d float64s: %v (sorted: %v, workers: %d)\n",
		n, elapsed.Round(time.Millisecond), sorted, pool.Workers())
	s := pool.Stats()
	fmt.Printf("scheduler: %d tasks, %d steals\n", s.Tasks, s.Steals)
	if !sorted {
		panic("output not sorted")
	}
}
