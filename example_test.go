package hybridloop_test

import (
	"fmt"
	"sync/atomic"

	"hybridloop"
)

// The basic parallel loop: the body receives disjoint chunks covering
// [0, n) exactly once; scheduling defaults to the hybrid scheme.
func ExamplePool_For() {
	pool := hybridloop.NewPool(4)
	defer pool.Close()

	data := make([]int, 1000)
	pool.For(0, len(data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = i * i
		}
	})
	fmt.Println(data[3], data[999])
	// Output: 9 998001
}

// Strategies are selectable per loop; all cover the iteration space
// identically and differ only in how iterations map to workers.
func ExampleWithStrategy() {
	pool := hybridloop.NewPool(4)
	defer pool.Close()

	var count atomic.Int64
	for _, s := range []hybridloop.Strategy{
		hybridloop.Hybrid, hybridloop.Static, hybridloop.DynamicStealing,
	} {
		pool.For(0, 100, func(lo, hi int) {
			count.Add(int64(hi - lo))
		}, hybridloop.WithStrategy(s))
	}
	fmt.Println(count.Load())
	// Output: 300
}

// Reduce folds fixed-size block partials in block order, so the result is
// deterministic no matter how the blocks were scheduled.
func ExampleReduce() {
	pool := hybridloop.NewPool(4)
	defer pool.Close()

	sum := hybridloop.Reduce(pool, 1, 101, 16, 0,
		func(lo, hi int) int {
			s := 0
			for i := lo; i < hi; i++ {
				s += i
			}
			return s
		},
		func(a, b int) int { return a + b })
	fmt.Println(sum)
	// Output: 5050
}

// Sum is the common special case of Reduce.
func ExampleSum() {
	pool := hybridloop.NewPool(2)
	defer pool.Close()

	dot := hybridloop.Sum(pool, 0, 4, func(i int) float64 {
		return float64(i) * 2
	})
	fmt.Println(dot)
	// Output: 12
}

// For2D tiles a two-dimensional space; tiles are scheduled like loop
// iterations, so repeated sweeps keep tiles on the same workers.
func ExamplePool_For2D() {
	pool := hybridloop.NewPool(4)
	defer pool.Close()

	var cells atomic.Int64
	pool.For2D(0, 30, 0, 40, 8, 8, func(rlo, rhi, clo, chi int) {
		cells.Add(int64((rhi - rlo) * (chi - clo)))
	})
	fmt.Println(cells.Load())
	// Output: 1200
}

// Bodies that start nested parallel loops must use the worker-aware form
// and route nested work through the executing worker.
func ExamplePool_ForWorker() {
	pool := hybridloop.NewPool(4)
	defer pool.Close()

	var total atomic.Int64
	pool.ForWorker(0, 4, func(w *hybridloop.Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			hybridloop.For(w, 0, 25, func(l2, h2 int) {
				total.Add(int64(h2 - l2))
			})
		}
	})
	fmt.Println(total.Load())
	// Output: 100
}

// Fork-join task parallelism underlies the loop schedulers and is
// available directly: Wait helps execute outstanding work, it never
// blocks the worker.
func ExamplePool_Run() {
	pool := hybridloop.NewPool(4)
	defer pool.Close()

	var fib func(w *hybridloop.Worker, n int) int
	fib = func(w *hybridloop.Worker, n int) int {
		if n < 2 {
			return n
		}
		var g hybridloop.Group
		var a int
		w.Spawn(&g, func(cw *hybridloop.Worker) { a = fib(cw, n-1) })
		b := fib(w, n-2)
		w.Wait(&g)
		return a + b
	}
	var result int
	pool.Run(func(w *hybridloop.Worker) { result = fib(w, 12) })
	fmt.Println(result)
	// Output: 144
}

// An affinity tracker measures the fraction of iterations that stayed on
// the same worker across consecutive loops — with the Static strategy it
// is always 100%.
func ExampleNewAffinityTracker() {
	pool := hybridloop.NewPool(4, hybridloop.WithSeed(1))
	defer pool.Close()

	tr := hybridloop.NewAffinityTracker(1000)
	for sweep := 0; sweep < 3; sweep++ {
		pool.For(0, 1000, func(lo, hi int) {},
			hybridloop.WithStrategy(hybridloop.Static),
			hybridloop.WithRecorder(tr))
		frac := tr.EndLoop()
		if sweep > 0 {
			fmt.Printf("sweep %d: %.0f%%\n", sweep, 100*frac)
		}
	}
	// Output:
	// sweep 1: 100%
	// sweep 2: 100%
}

// Weight hints shift static and hybrid partition boundaries so partitions
// carry equal cost instead of equal iteration counts.
func ExampleWithWeight() {
	pool := hybridloop.NewPool(2, hybridloop.WithSeed(1))
	defer pool.Close()

	tr := hybridloop.NewAffinityTracker(100)
	// Iteration i costs i: the first partition must cover ~70 iterations
	// to carry half of the total weight (sqrt(1/2) of the triangle).
	pool.For(0, 100, func(lo, hi int) {},
		hybridloop.WithStrategy(hybridloop.Static),
		hybridloop.WithWeight(func(i int) float64 { return float64(i) }),
		hybridloop.WithRecorder(tr))
	tr.EndLoop()
	asg := tr.Assignment()
	boundary := 0
	for i, w := range asg {
		if w != 0 {
			boundary = i
			break
		}
	}
	fmt.Println(boundary > 60 && boundary < 80)
	// Output: true
}
