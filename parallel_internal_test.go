package hybridloop

import (
	"math"
	"testing"
)

// TestDefaultTileDegenerate pins the degenerate cases of the automatic
// tile-size rule: tiny grids, worker counts exceeding the grid, and areas
// near the int limit. The pre-fix doubling condition multiplied the tile
// count back in (t*t*tiles < area) and overflowed for large areas — t
// then wrapped to zero and the loop never terminated.
func TestDefaultTileDegenerate(t *testing.T) {
	cases := []struct {
		rows, cols, workers int
	}{
		{1, 1, 1},
		{1, 1, 64},   // workers far exceed the grid
		{2, 3, 64},   // tiny grid, many workers
		{1, 1000, 8}, // degenerate aspect ratio
		{1000, 1, 8},
		{100, 100, 4},
		{1 << 20, 1 << 20, 8}, // 1T iterations
		{math.MaxInt, 1, 1},   // area at the int limit: used to loop forever
		{3037000499, 3037000499 / 8, 4},
		{5, 5, 0}, // workers clamped to >= 1
	}
	for _, c := range cases {
		tile := defaultTile(c.rows, c.cols, c.workers)
		if tile < 1 {
			t.Errorf("defaultTile(%d, %d, %d) = %d, want >= 1", c.rows, c.cols, c.workers, tile)
		}
		if tile&(tile-1) != 0 {
			t.Errorf("defaultTile(%d, %d, %d) = %d, not a power of two", c.rows, c.cols, c.workers, tile)
		}
		// The tile must not exceed the target area per tile: t^2 <=
		// max(1, area/(8*workers)), checked divide-first to stay
		// overflow-free like the implementation.
		w := c.workers
		if w < 1 {
			w = 1
		}
		target := c.rows * c.cols / (8 * w)
		if tile > 1 && tile > target/tile {
			t.Errorf("defaultTile(%d, %d, %d) = %d: tile^2 exceeds area/(8*workers) = %d",
				c.rows, c.cols, c.workers, tile, target)
		}
	}
}
